package repro_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/queueing"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/volt"
)

// TestEndToEndPipelineQuick exercises the whole stack once: calibration,
// the three policies, figure generation, claim checking and plotting —
// the quick-mode equivalent of `cmd/report`.
func TestEndToEndPipelineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bundle, err := sweep.BaselineBundle(context.Background(), sweep.Options{Quick: true, Points: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var tables []sweep.Table
	tables = append(tables, sweep.Fig2(bundle)...)
	tables = append(tables, sweep.Fig4(bundle)...)
	tables = append(tables, sweep.Fig5(sweep.Options{Quick: true})...)
	tables = append(tables, sweep.Fig6(bundle)...)
	tables = append(tables, sweep.Summary(bundle)...)

	verdicts := report.Check(report.BaselineClaims(), tables)
	failed := 0
	for _, v := range verdicts {
		if v.Err != nil {
			t.Errorf("claim %s errored: %v", v.Claim.ID, v.Err)
			continue
		}
		if !v.Pass {
			failed++
			t.Logf("claim %s deviated: measured %g outside [%g, %g]",
				v.Claim.ID, v.Measured, v.Claim.Lo, v.Claim.Hi)
		}
	}
	// Quick mode is noisy; tolerate at most one deviation of the nine
	// baseline claims, and require the anomaly claim itself to hold.
	if failed > 1 {
		t.Errorf("%d/%d baseline claims deviated in quick mode", failed, len(verdicts))
	}
	for _, v := range verdicts {
		if v.Claim.ID == "fig2b-nonmonotonic" && !v.Pass {
			t.Error("the headline anomaly claim failed")
		}
	}

	// The figure tables must render and plot without error.
	var sb strings.Builder
	for i := range tables {
		if err := tables[i].Format(&sb); err != nil {
			t.Fatal(err)
		}
	}
	plot, err := sweep.PlotTable(tables[1], 40, 10, "nodvfs_delay_ns", "rmsd_delay_ns")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plot, "*") {
		t.Error("plot rendered no points")
	}
}

// TestSimulatorAgreesWithQueueingModelOnShape compares the cycle-accurate
// simulator against the analytic M/M/1 model on the two qualitative
// predictions that matter: the RMSD delay peaks at λmin, and the RMSD
// delay decreases with load inside the scaling range.
func TestSimulatorAgreesWithQueueingModelOnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Analytic prediction.
	qm := queueing.New()
	const rho = 0.9
	want := rho * volt.FMin / volt.FMax // ρ·(333 MHz / 1 GHz)
	lminFrac := qm.LambdaMin(rho) / qm.MaxArrivalRate()
	if math.Abs(lminFrac-want) > 1e-9 {
		t.Fatalf("analytic λmin fraction %g, want %g", lminFrac, want)
	}

	// Simulation: delays at ~0.5 λmin, λmin, and 2 λmin.
	s := core.Scenario{Noc: noc.DefaultConfig(), Pattern: "uniform", Quick: true}
	cal, err := core.Calibrate(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	lmin := cal.LambdaMax / 3
	delay := func(rate float64) float64 {
		res, err := core.RunOne(context.Background(), s, core.RMSD, rate, cal)
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgDelayNs
	}
	below := delay(0.5 * lmin)
	peak := delay(lmin)
	above := delay(2 * lmin)
	if !(peak > below && peak > above) {
		t.Errorf("simulated peak not at λmin: d(0.5λmin)=%.0f d(λmin)=%.0f d(2λmin)=%.0f",
			below, peak, above)
	}
}

// TestPacketLogThroughCoreScenario verifies the trace plumbing end to end
// through the public experiment API.
func TestPacketLogThroughCoreScenario(t *testing.T) {
	plog := trace.NewLog(1 << 16)
	s := core.Scenario{
		Noc:       noc.DefaultConfig(),
		Pattern:   "neighbor",
		Quick:     true,
		PacketLog: plog,
	}
	res, err := core.RunOne(context.Background(), s, core.NoDVFS, 0.2, core.Calibration{SaturationRate: 0.9, LambdaMax: 0.8, TargetDelayNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if int64(plog.Len()) != res.Packets {
		t.Fatalf("log %d records vs %d measured packets", plog.Len(), res.Packets)
	}
	// Neighbor traffic: every flow is a single-hop (x+1) pair except the
	// wraparound column, which crosses the row. Check hops per flow match
	// the pattern definition.
	cfg := s.Noc
	for _, f := range plog.Flows() {
		want := cfg.Distance(f.Src, f.Dst)
		if f.Hops != want {
			t.Fatalf("flow %d->%d hops %d, want %d", f.Src, f.Dst, f.Hops, want)
		}
	}
}
