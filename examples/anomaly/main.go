// Anomaly: reproduce the paper's headline observation (Sec. III, Fig. 2b)
// two independent ways and plot both in the terminal:
//
//  1. Cycle-accurate simulation (through the public nocsim API): RMSD
//     delay in nanoseconds vs injection rate on the baseline 5x5 NoC —
//     non-monotonic with a peak at λmin.
//  2. The single-server M/M/1 model of the paper's reference [12]
//     (internal/queueing), which predicts the same shape analytically.
//
// The anomaly: latency in *cycles* is flat under RMSD, but the clock
// slows proportionally to the load, so delay in *seconds* explodes at low
// load and then falls as 1/rate — the opposite of every fixed-frequency
// latency curve.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/queueing"
	"repro/internal/sweep"
	"repro/nocsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// --- analytic model -------------------------------------------------
	qm := queueing.New()
	const rho = 0.9
	law := func(l float64) float64 { return qm.FreqRMSD(l, rho) }
	pts := qm.Sweep(law, rho*0.98, 48)
	ax := make([]float64, len(pts))
	ay := make([]float64, len(pts))
	for i, p := range pts {
		ax[i] = p.Lambda / qm.MaxArrivalRate()
		ay[i] = p.DelayS * 1e9
	}
	fmt.Println(sweep.AsciiPlot(
		"M/M/1 analogue: RMSD sojourn time (ns) vs normalized arrival rate",
		56, 12, sweep.Series{Name: "analytic rmsd", Marker: '*', X: ax, Y: ay}))
	fmt.Printf("analytic peak at λmin = %.3f of capacity; peak/No-DVFS ratio %.1fx\n\n",
		qm.LambdaMin(rho)/qm.MaxArrivalRate(), qm.RMSDPeakRatio(rho))

	// --- cycle-accurate simulation --------------------------------------
	s, err := nocsim.New(nocsim.WithPattern("uniform"), nocsim.WithQuick())
	if err != nil {
		log.Fatal(err)
	}
	cal, err := nocsim.Calibrate(ctx, s)
	if err != nil {
		log.Fatal(err)
	}
	var loads []float64
	for i := 1; i <= 8; i++ {
		loads = append(loads, 0.9*cal.SaturationRate*float64(i)/8)
	}
	results, err := nocsim.Sweep(ctx, nocsim.Grid{
		Base:     s,
		Loads:    loads,
		Policies: []nocsim.PolicyKind{nocsim.NoDVFS, nocsim.RMSD},
	}, nocsim.WithCalibration(cal))
	if err != nil {
		log.Fatal(err)
	}
	var sx, sGHzDelay, sBaseDelay []float64
	for i, load := range loads {
		sx = append(sx, load)
		sBaseDelay = append(sBaseDelay, results[i].AvgDelayNs)          // No-DVFS block
		sGHzDelay = append(sGHzDelay, results[len(loads)+i].AvgDelayNs) // RMSD block
	}
	fmt.Println(sweep.AsciiPlot(
		"Simulated 5x5 NoC: packet delay (ns) vs injection rate",
		56, 12,
		sweep.Series{Name: "rmsd", Marker: '*', X: sx, Y: sGHzDelay},
		sweep.Series{Name: "nodvfs", Marker: 'o', X: sx, Y: sBaseDelay}))
	fmt.Printf("simulated λmin = %.3f (λmax %.3f x FMin/FMax); both curves peak there\n",
		cal.LambdaMax/3, cal.LambdaMax)
	fmt.Println("\nThe queueing model and the cycle-accurate NoC agree on the shape:")
	fmt.Println("rate-based DVFS turns the familiar monotone latency curve into a")
	fmt.Println("non-monotonic delay curve with its worst case at light load.")
}
