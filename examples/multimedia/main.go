// Multimedia workloads (the paper's Sec. VI / Fig. 10): drive the H.264
// encoder (4x4 mesh) and the Video Conference Encoder (5x5 mesh)
// communication graphs at increasing application speed and watch the
// power-delay trade-off of the three DVFS policies on realistic traffic.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/noc"
)

func main() {
	log.SetFlags(0)

	for _, app := range apps.Apps() {
		app := app
		s := core.Scenario{
			Noc:   noc.DefaultConfig(),
			App:   &app,
			Quick: true,
		}
		s.Noc.Width, s.Noc.Height = app.Width, app.Height

		cal, err := core.Calibrate(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on a %dx%d mesh (%d blocks, %d edges, %.0f packets/frame)\n",
			app.Name, app.Width, app.Height, len(app.Blocks), len(app.Edges),
			app.TotalPacketsPerFrame())

		speeds := []float64{0.25, 0.5, 0.75, 1.0} // 1.0 ≡ 75 frames/s
		cmp, err := core.ComparePolicies(s, speeds, core.AllPolicies(), cal)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("speed    No-DVFS          RMSD             DMSD")
		fmt.Println("         mW     ns        mW     ns        mW     ns")
		for i, sp := range speeds {
			n := cmp.Sweeps[core.NoDVFS].Points[i].Result
			r := cmp.Sweeps[core.RMSD].Points[i].Result
			d := cmp.Sweeps[core.DMSD].Points[i].Result
			fmt.Printf("%.2f   %6.1f %6.0f   %6.1f %6.0f   %6.1f %6.0f\n",
				sp,
				n.AvgPowerMW, n.AvgDelayNs,
				r.AvgPowerMW, r.AvgDelayNs,
				d.AvgPowerMW, d.AvgDelayNs)
		}
		fmt.Println()
	}
	fmt.Println("Even on realistic application traffic, RMSD's additional power")
	fmt.Println("saving costs a large delay increase that would directly inflate")
	fmt.Println("the encoders' application latency (the paper's Sec. VI argument).")
}
