// Multimedia workloads (the paper's Sec. VI / Fig. 10): drive the H.264
// encoder (4x4 mesh) and the Video Conference Encoder (5x5 mesh)
// communication graphs at increasing application speed and watch the
// power-delay trade-off of the three DVFS policies on realistic traffic.
// The workloads are selected by name through the public nocsim API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/nocsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	for _, app := range nocsim.Apps() {
		s, err := nocsim.New(
			nocsim.WithApp(app.Name),
			nocsim.WithQuick(),
		)
		if err != nil {
			log.Fatal(err)
		}
		cal, err := nocsim.Calibrate(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on a %dx%d mesh (%d blocks, %d edges, %.0f packets/frame)\n",
			app.Name, app.Width, app.Height, app.Blocks, app.Edges, app.PacketsPerFrame)

		speeds := []float64{0.25, 0.5, 0.75, 1.0} // 1.0 ≡ 75 frames/s
		results, err := nocsim.Sweep(ctx, nocsim.Grid{
			Base:     s,
			Loads:    speeds,
			Policies: nocsim.AllPolicies(),
		}, nocsim.WithCalibration(cal))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("speed    No-DVFS          RMSD             DMSD")
		fmt.Println("         mW     ns        mW     ns        mW     ns")
		for i, sp := range speeds {
			// Sweep orders points policy-major: No-DVFS block, then RMSD,
			// then DMSD, each over the speed grid.
			n := results[i]
			r := results[len(speeds)+i]
			d := results[2*len(speeds)+i]
			fmt.Printf("%.2f   %6.1f %6.0f   %6.1f %6.0f   %6.1f %6.0f\n",
				sp,
				n.AvgPowerMW, n.AvgDelayNs,
				r.AvgPowerMW, r.AvgDelayNs,
				d.AvgPowerMW, d.AvgDelayNs)
		}
		fmt.Println()
	}
	fmt.Println("Even on realistic application traffic, RMSD's additional power")
	fmt.Println("saving costs a large delay increase that would directly inflate")
	fmt.Println("the encoders' application latency (the paper's Sec. VI argument).")
}
