// Synthetic-traffic study (the paper's Sec. V / Fig. 7): compare the three
// DVFS policies across the four synthetic patterns — tornado,
// bit-complement, transpose and neighbor — at half the per-pattern
// saturation rate, and report the per-pattern power savings and delay
// penalties.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)

	fmt.Println("pattern      sat     No-DVFS          RMSD             DMSD")
	fmt.Println("                     mW     ns        mW     ns        mW     ns")
	for _, pattern := range traffic.PaperPatterns() {
		s := core.Scenario{
			Noc:     noc.DefaultConfig(),
			Pattern: pattern,
			Quick:   true,
		}
		cal, err := core.Calibrate(s)
		if err != nil {
			log.Fatal(err)
		}
		rate := 0.5 * cal.SaturationRate
		cmp, err := core.ComparePolicies(s, []float64{rate}, core.AllPolicies(), cal)
		if err != nil {
			log.Fatal(err)
		}
		n := cmp.Sweeps[core.NoDVFS].Points[0].Result
		r := cmp.Sweeps[core.RMSD].Points[0].Result
		d := cmp.Sweeps[core.DMSD].Points[0].Result
		fmt.Printf("%-11s  %.3f  %6.1f %6.0f   %6.1f %6.0f   %6.1f %6.0f\n",
			pattern, cal.SaturationRate,
			n.AvgPowerMW, n.AvgDelayNs,
			r.AvgPowerMW, r.AvgDelayNs,
			d.AvgPowerMW, d.AvgDelayNs)
	}
	fmt.Println("\nAcross every pattern both policies save power over No-DVFS, and")
	fmt.Println("RMSD's extra saving over DMSD comes with a multiple of its delay —")
	fmt.Println("the pattern-independence claim of the paper's Sec. V.")
}
