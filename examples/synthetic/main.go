// Synthetic-traffic study (the paper's Sec. V / Fig. 7): compare the three
// DVFS policies across the four synthetic patterns — tornado,
// bit-complement, transpose and neighbor — at half the per-pattern
// saturation rate, and report the per-pattern power savings and delay
// penalties. Everything runs through the public nocsim API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/nocsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	fmt.Println("pattern      sat     No-DVFS          RMSD             DMSD")
	fmt.Println("                     mW     ns        mW     ns        mW     ns")
	for _, pattern := range nocsim.PaperPatterns() {
		s, err := nocsim.New(
			nocsim.WithPattern(pattern),
			nocsim.WithQuick(),
		)
		if err != nil {
			log.Fatal(err)
		}
		cal, err := nocsim.Calibrate(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		results, err := nocsim.Sweep(ctx, nocsim.Grid{
			Base:     s,
			Loads:    []float64{0.5 * cal.SaturationRate},
			Policies: nocsim.AllPolicies(),
		}, nocsim.WithCalibration(cal))
		if err != nil {
			log.Fatal(err)
		}
		n, r, d := results[0], results[1], results[2]
		fmt.Printf("%-11s  %.3f  %6.1f %6.0f   %6.1f %6.0f   %6.1f %6.0f\n",
			pattern, cal.SaturationRate,
			n.AvgPowerMW, n.AvgDelayNs,
			r.AvgPowerMW, r.AvgDelayNs,
			d.AvgPowerMW, d.AvgDelayNs)
	}
	fmt.Println("\nAcross every pattern both policies save power over No-DVFS, and")
	fmt.Println("RMSD's extra saving over DMSD comes with a multiple of its delay —")
	fmt.Println("the pattern-independence claim of the paper's Sec. V.")
}
