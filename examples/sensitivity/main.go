// Sensitivity mini-study (the paper's Fig. 8): vary one router parameter
// at a time — virtual channels, buffers per VC, packet size, mesh size —
// and verify that the DMSD-over-RMSD trade-off conclusion survives every
// variation: RMSD always saves more power, DMSD always has (much) lower
// delay.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noc"
)

func main() {
	log.SetFlags(0)

	type variant struct {
		label  string
		mutate func(*noc.Config)
	}
	variants := []variant{
		{"baseline (8 VC, 4 buf, 20 flits, 5x5)", func(c *noc.Config) {}},
		{"2 VCs", func(c *noc.Config) { c.VCs = 2 }},
		{"4 VCs", func(c *noc.Config) { c.VCs = 4 }},
		{"8 buffers/VC", func(c *noc.Config) { c.BufDepth = 8 }},
		{"10-flit packets", func(c *noc.Config) { c.PacketSize = 10 }},
		{"4x4 mesh", func(c *noc.Config) { c.Width, c.Height = 4, 4 }},
	}

	fmt.Println("variant                                  sat    RMSD-vs-DMSD: power  delay")
	ok := true
	for _, v := range variants {
		s := core.Scenario{Noc: noc.DefaultConfig(), Pattern: "uniform", Quick: true}
		v.mutate(&s.Noc)
		cal, err := core.Calibrate(s)
		if err != nil {
			log.Fatal(err)
		}
		rate := 0.5 * cal.SaturationRate
		cmp, err := core.ComparePolicies(s, []float64{rate}, []core.PolicyKind{core.RMSD, core.DMSD}, cal)
		if err != nil {
			log.Fatal(err)
		}
		r := cmp.Sweeps[core.RMSD].Points[0].Result
		d := cmp.Sweeps[core.DMSD].Points[0].Result
		powAdv := d.AvgPowerMW / r.AvgPowerMW
		delayPen := r.AvgDelayNs / d.AvgDelayNs
		fmt.Printf("%-40s %.3f  %17.2fx  %5.2fx\n", v.label, cal.SaturationRate, powAdv, delayPen)
		if powAdv < 1 || delayPen < 1 {
			ok = false
		}
	}
	if ok {
		fmt.Println("\nIn every variant DMSD pays a modest power premium (>1x) and buys a")
		fmt.Println("multiple of delay reduction — the paper's sensitivity conclusion.")
	} else {
		fmt.Println("\nWARNING: at least one variant broke the expected ordering.")
	}
}
