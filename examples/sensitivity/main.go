// Sensitivity mini-study (the paper's Fig. 8): vary one router parameter
// at a time — virtual channels, buffers per VC, packet size, mesh size —
// and verify that the DMSD-over-RMSD trade-off conclusion survives every
// variation: RMSD always saves more power, DMSD always has (much) lower
// delay. Each variant is one option applied on top of the baseline
// scenario of the public nocsim API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/nocsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	type variant struct {
		label string
		opt   nocsim.Option
	}
	variants := []variant{
		{"baseline (8 VC, 4 buf, 20 flits, 5x5)", nocsim.WithVCs(8)},
		{"2 VCs", nocsim.WithVCs(2)},
		{"4 VCs", nocsim.WithVCs(4)},
		{"8 buffers/VC", nocsim.WithBuffers(8)},
		{"10-flit packets", nocsim.WithPacketSize(10)},
		{"4x4 mesh", nocsim.WithMesh(4, 4)},
	}

	fmt.Println("variant                                  sat    RMSD-vs-DMSD: power  delay")
	ok := true
	for _, v := range variants {
		s, err := nocsim.New(
			nocsim.WithPattern("uniform"),
			nocsim.WithQuick(),
			v.opt,
		)
		if err != nil {
			log.Fatal(err)
		}
		cal, err := nocsim.Calibrate(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		results, err := nocsim.Sweep(ctx, nocsim.Grid{
			Base:     s,
			Loads:    []float64{0.5 * cal.SaturationRate},
			Policies: []nocsim.PolicyKind{nocsim.RMSD, nocsim.DMSD},
		}, nocsim.WithCalibration(cal))
		if err != nil {
			log.Fatal(err)
		}
		r, d := results[0], results[1]
		powAdv := d.AvgPowerMW / r.AvgPowerMW
		delayPen := r.AvgDelayNs / d.AvgDelayNs
		fmt.Printf("%-40s %.3f  %17.2fx  %5.2fx\n", v.label, cal.SaturationRate, powAdv, delayPen)
		if powAdv < 1 || delayPen < 1 {
			ok = false
		}
	}
	if ok {
		fmt.Println("\nIn every variant DMSD pays a modest power premium (>1x) and buys a")
		fmt.Println("multiple of delay reduction — the paper's sensitivity conclusion.")
	} else {
		fmt.Println("\nWARNING: at least one variant broke the expected ordering.")
	}
}
