// Quickstart: simulate the paper's baseline NoC (5x5 mesh, 8 VCs, 20-flit
// packets, uniform traffic at 0.2 flits/node/cycle) under the three DVFS
// policies and print the power-delay trade-off that is the paper's core
// result: RMSD saves the most power but pays for it with a large delay;
// DMSD holds the delay at its target for a modest extra power cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noc"
)

func main() {
	log.SetFlags(0)

	scenario := core.Scenario{
		Noc:     noc.DefaultConfig(), // the paper's router and mesh
		Pattern: "uniform",
		Quick:   true, // short windows so the example runs in seconds
	}

	// Calibrate once: find the saturation rate, set the RMSD target rate
	// 10% below it, and set the DMSD delay target to the near-saturation
	// delay (exactly the paper's recipe).
	cal, err := core.Calibrate(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saturation %.3f flits/node/cycle -> λmax %.3f, DMSD target %.0f ns\n\n",
		cal.SaturationRate, cal.LambdaMax, cal.TargetDelayNs)

	const rate = 0.2
	fmt.Printf("uniform traffic at %.2f flits/node/cycle:\n\n", rate)
	fmt.Printf("%-8s  %12s  %12s  %10s\n", "policy", "delay (ns)", "power (mW)", "freq (MHz)")
	var base core.Point
	for _, kind := range core.AllPolicies() {
		res, err := core.RunOne(scenario, kind, rate, cal)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %12.1f  %12.1f  %10.0f\n",
			kind, res.AvgDelayNs, res.AvgPowerMW, res.AvgFreqHz/1e6)
		if kind == core.NoDVFS {
			base = core.Point{Load: rate, Result: res}
		}
		if kind == core.RMSD {
			fmt.Printf("%-8s  (%.1fx the No-DVFS delay, %.0f%% power saving)\n", "",
				res.AvgDelayNs/base.Result.AvgDelayNs,
				100*(1-res.AvgPowerMW/base.Result.AvgPowerMW))
		}
	}
	fmt.Println("\nThe trade-off the paper reports: RMSD minimizes power but inflates")
	fmt.Println("delay severely; DMSD gives back 20-50% of the saving to keep the")
	fmt.Println("delay pinned at the target.")
}
