// Quickstart: simulate the paper's baseline NoC (5x5 mesh, 8 VCs, 20-flit
// packets, uniform traffic at 0.2 flits/node/cycle) under the three DVFS
// policies and print the power-delay trade-off that is the paper's core
// result: RMSD saves the most power but pays for it with a large delay;
// DMSD holds the delay at its target for a modest extra power cost.
//
// The whole example uses only the public nocsim API: build a Scenario
// with options, Calibrate once, Sweep the three policies.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/nocsim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	scenario, err := nocsim.New(
		nocsim.WithPattern("uniform"), // the paper's baseline traffic
		nocsim.WithLoad(0.2),          // flits per node per node cycle
		nocsim.WithQuick(),            // short windows so the example runs in seconds
	)
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate once: find the saturation rate, set the RMSD target rate
	// 10% below it, and set the DMSD delay target to the near-saturation
	// delay (exactly the paper's recipe).
	cal, err := nocsim.Calibrate(ctx, scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saturation %.3f flits/node/cycle -> λmax %.3f, DMSD target %.0f ns\n\n",
		cal.SaturationRate, cal.LambdaMax, cal.TargetDelayNs)

	fmt.Printf("uniform traffic at %.2f flits/node/cycle:\n\n", scenario.Load)
	fmt.Printf("%-8s  %12s  %12s  %10s\n", "policy", "delay (ns)", "power (mW)", "freq (MHz)")
	results, err := nocsim.Sweep(ctx, nocsim.Grid{
		Base:     scenario,
		Policies: nocsim.AllPolicies(),
	}, nocsim.WithCalibration(cal))
	if err != nil {
		log.Fatal(err)
	}
	base := results[0] // No-DVFS comes first in AllPolicies order
	for _, res := range results {
		fmt.Printf("%-8s  %12.1f  %12.1f  %10.0f\n",
			res.Scenario.Policy, res.AvgDelayNs, res.AvgPowerMW, res.AvgFreqHz/1e6)
		if res.Scenario.Policy == nocsim.RMSD {
			fmt.Printf("%-8s  (%.1fx the No-DVFS delay, %.0f%% power saving)\n", "",
				res.AvgDelayNs/base.AvgDelayNs,
				100*(1-res.AvgPowerMW/base.AvgPowerMW))
		}
	}
	fmt.Println("\nThe trade-off the paper reports: RMSD minimizes power but inflates")
	fmt.Println("delay severely; DMSD gives back 20-50% of the saving to keep the")
	fmt.Println("delay pinned at the target.")
}
