package repro_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/report"
	"repro/internal/sweep"
)

// kneeFromTables extracts the saturation knee of the No-DVFS delay curve
// from a rendered fig2b table, plus the table's load span.
func kneeFromTables(t *testing.T, tables []sweep.Table) (knee, maxLoad float64) {
	t.Helper()
	for i := range tables {
		if tables[i].ID != "fig2b" {
			continue
		}
		loads, ok := tables[i].Column("rate")
		if !ok {
			t.Fatal("fig2b has no rate column")
		}
		delays, ok := tables[i].Column("nodvfs_delay_ns")
		if !ok {
			t.Fatal("fig2b has no nodvfs_delay_ns column")
		}
		knee, _ := sweep.Knee(loads, delays)
		return knee, loads[len(loads)-1]
	}
	t.Fatal("no fig2b table rendered")
	return 0, 0
}

// TestAdaptiveSweepMatchesFixedGridWithFewerPoints is the PR's headline
// acceptance: the adaptive two-phase planner reproduces the Fig. 2 sweep
// — same saturation knee (within one coarse grid step) and the same
// claim verdicts — while simulating at most a third of the points the
// fixed grid pays for.
func TestAdaptiveSweepMatchesFixedGridWithFewerPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()

	fixedOpts := sweep.Options{Quick: true, Points: 18, Seed: 1}
	fixed, complete, err := sweep.Generate(ctx, "baseline", fixedOpts, nil, false, 0)
	if err != nil || !complete {
		t.Fatalf("fixed-grid run: (complete=%v, %v)", complete, err)
	}
	fixedSims := fixedOpts.Points * 3 // three policies per load

	adaptOpts := sweep.Options{Quick: true, Points: 4, Seed: 1}
	const budget = 6
	adaptive, stats, err := sweep.GenerateAdaptive(ctx, "baseline", adaptOpts, nil, false, budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive: %d coarse + %d refined = %d points vs %d fixed",
		stats.CoarsePoints, stats.RefinedPoints, stats.Total(), fixedSims)
	if stats.Total()*3 > fixedSims {
		t.Fatalf("adaptive run simulated %d points, want <= 1/3 of the fixed grid's %d",
			stats.Total(), fixedSims)
	}
	if stats.RefinedPoints > budget {
		t.Fatalf("refinement spent %d points over budget %d", stats.RefinedPoints, budget)
	}

	// The knee the dense grid finds must be bracketed by the adaptive run
	// to within one coarse grid step (the resolution the coarse pass has
	// before refinement sharpens it).
	fixedKnee, maxLoad := kneeFromTables(t, fixed)
	adaptKnee, _ := kneeFromTables(t, adaptive)
	coarseStep := maxLoad / float64(adaptOpts.Points)
	if diff := math.Abs(fixedKnee - adaptKnee); diff > coarseStep+1e-9 {
		t.Fatalf("knee: fixed %.4f vs adaptive %.4f, |diff| %.4f > one coarse step %.4f",
			fixedKnee, adaptKnee, diff, coarseStep)
	}

	// The merged tables must pass the paper's claim bands exactly like a
	// fixed-grid run (quick mode tolerates one deviation, as in
	// TestEndToEndPipelineQuick — the grids are noisy, the bands are not).
	all := append(adaptive, sweep.Fig5(adaptOpts)...)
	failed := 0
	for _, v := range report.Check(report.BaselineClaims(), all) {
		if v.Err != nil {
			t.Errorf("claim %s errored: %v", v.Claim.ID, v.Err)
			continue
		}
		if !v.Pass {
			failed++
			t.Logf("claim %s deviated: measured %g outside [%g, %g]",
				v.Claim.ID, v.Measured, v.Claim.Lo, v.Claim.Hi)
		}
	}
	if failed > 1 {
		t.Errorf("%d baseline claims deviated on the adaptive tables", failed)
	}
}
