// Command resultsd is the results service: the query API and live
// dashboard over the persistent single-file results store that
// coordinators (nocsimd -results) and backfill imports write.
//
// Serve mode follows a store read-only — safe to run while a
// coordinator is still appending to it — and serves stored plans,
// filtered point queries, and on-demand table rendering with renders
// cached by plan fingerprint:
//
//	resultsd -addr 127.0.0.1:9091 -store runs/results.jsonl
//
// With -coordinator the dashboard at / also shows the live fleet —
// points/s, per-manifest progress, per-worker attribution — by proxying
// the coordinator's /metrics (attaching -auth-token/$NOCSIM_TOKEN, so
// the browser needs no fleet credentials):
//
//	resultsd -store runs/results.jsonl -coordinator http://10.0.0.7:9090
//
// Backfill mode ingests the journals of an existing -manifest directory
// into the store and exits; -export writes one plan back out in exactly
// the journal's line format (byte-identical for serially written
// journals):
//
//	resultsd -store runs/results.jsonl -import runs/dist
//	resultsd -store runs/results.jsonl -export fig7 > fig7.points.jsonl
//
// -compact rewrites the store in place, dropping plans superseded by a
// newer plan of the same name (adaptive refinement re-runs, re-planned
// figures) and duplicate point lines; queries answer identically before
// and after. Like -import it opens the store read-write, so it must not
// run while a coordinator is ingesting or followers are serving:
//
//	resultsd -store runs/results.jsonl -compact
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/queue"
	"repro/internal/resultsrv"
	"repro/nocsim/manifest"
	"repro/nocsim/results"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resultsd: ")

	var (
		addr        = flag.String("addr", "127.0.0.1:9091", "serve: listen address")
		storePath   = flag.String("store", "", "results store file (required)")
		importDir   = flag.String("import", "", "backfill: ingest this manifest directory's journals into the store, then exit")
		compact     = flag.Bool("compact", false, "rewrite the store dropping superseded plans and duplicate points, then exit")
		exportRef   = flag.String("export", "", "write one plan (name or fingerprint) to stdout as points-journal lines, then exit")
		coordinator = flag.String("coordinator", "", "serve: proxy this coordinator's /metrics for the live dashboard")
		authToken   = cli.AuthTokenFlag("bearer token attached when proxying a -coordinator that runs with -auth-token")
	)
	flag.Parse()

	if *storePath == "" {
		log.Fatal("-store is required")
	}
	token := cli.AuthToken(*authToken)

	if *importDir != "" || *compact || *exportRef != "" {
		if err := oneShot(*storePath, *importDir, *compact, *exportRef); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	if err := serve(ctx, *addr, *storePath, *coordinator, token); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}

// oneShot runs the import, compact and/or export maintenance modes
// (in that order: ingest first, shrink what it superseded, then read
// out). Import and compact open the store read-write, so they must not
// run against a store a live coordinator is ingesting into.
func oneShot(storePath, importDir string, compact bool, exportRef string) error {
	if importDir != "" {
		st, err := manifest.NewDirStore(importDir)
		if err != nil {
			return err
		}
		s, err := results.Open(storePath)
		if err != nil {
			return err
		}
		plans, points, err := s.ImportDir(st)
		if err != nil {
			s.Close()
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		log.Printf("imported %s: %d manifest(s), %d new point(s) into %s", importDir, plans, points, storePath)
	}
	if compact {
		s, err := results.Open(storePath)
		if err != nil {
			return err
		}
		plans, points, err := s.Compact()
		if err != nil {
			s.Close()
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		log.Printf("compacted %s: dropped %d superseded plan(s), %d dead point line(s)", storePath, plans, points)
	}
	if exportRef != "" {
		s, err := results.OpenReadOnly(storePath)
		if err != nil {
			return err
		}
		sum, ok := s.Resolve(exportRef)
		if !ok {
			return errors.New("unknown plan " + exportRef)
		}
		if err := s.ExportJournal(os.Stdout, sum); err != nil {
			return err
		}
	}
	return nil
}

func serve(ctx context.Context, addr, storePath, coordinator, token string) error {
	// Read-only: the coordinator (or an import) owns the file's tail;
	// this process follows it, picking up new records per query.
	store, err := results.OpenReadOnly(storePath)
	if err != nil {
		return err
	}
	srv := &resultsrv.Server{Store: store}
	if coordinator != "" {
		srv.Coordinator = &queue.Client{Base: strings.TrimRight(coordinator, "/"), Token: token}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()
	if coordinator != "" {
		log.Printf("serving %s on %s (dashboard at /, live fleet via %s)", storePath, ln.Addr(), coordinator)
	} else {
		log.Printf("serving %s on %s (dashboard at /, store-only mode)", storePath, ln.Addr())
	}

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return server.Shutdown(shutdownCtx)
	case err := <-serveErr:
		return err
	}
}
