// Command nocsimd is the distributed manifest work-queue daemon: the
// coordinator (serve mode) and the worker (with -worker) behind
// horizontally scaled figure runs.
//
// Serve mode plans — or, with -resume, reloads — figure manifests and
// serves their points over HTTP as expiring leases, journaling every
// posted result through the manifest directory so a crashed coordinator
// resumes where it stopped:
//
//	nocsimd -addr 127.0.0.1:9090 -fig fig7 -quick -manifest runs/dist
//
// Worker mode attaches to a coordinator and computes leased points until
// the coordinator reports all work done:
//
//	nocsimd -worker http://127.0.0.1:9090 -workers 8
//
// Workers are stateless: kill one mid-run and its leases expire and are
// re-issued; results are bit-identical wherever a point executes, so the
// tables reassembled from a distributed run match a single-process run
// byte for byte (cmd/figures -coordinator does the reassembly).
//
// For real fleets: -auth-token SECRET (or NOCSIM_TOKEN in the
// environment, which keeps the secret out of process listings) makes the
// coordinator reject every request that doesn't carry the token as
// "Authorization: Bearer SECRET" — pass the same flag/env to workers and
// to figures/report -coordinator. GET /metrics serves Prometheus-format
// counters (leases outstanding, points/s, re-issued leases, per-worker
// attribution). Lease deadlines adapt to each manifest's observed point
// latencies once enough have been seen; -lease-ttl is the fallback until
// then.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/queue"
	"repro/internal/sweep"
	"repro/nocsim"
	"repro/nocsim/manifest"
	"repro/nocsim/results"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsimd: ")

	var (
		workerURL   = flag.String("worker", "", "run as a worker against this coordinator URL (instead of serving)")
		addr        = flag.String("addr", "127.0.0.1:9090", "serve: listen address")
		figs        = flag.String("fig", "all", "serve: comma-separated figures to plan and serve — same tokens as cmd/figures -fig (paper numbers or manifest names) or 'all'")
		quick       = flag.Bool("quick", false, "serve: plan with shorter windows and smaller grids")
		points      = flag.Int("points", 0, "serve: samples per curve (0 = default)")
		seed        = flag.Int64("seed", 1, "serve: random seed")
		dir         = flag.String("manifest", "", "serve: journal manifests and posted points under this directory (enables crash resume)")
		resultsDB   = flag.String("results", "", "serve: also mirror every plan and accepted point into this results-store file (what cmd/resultsd serves)")
		resume      = flag.Bool("resume", false, "serve: with -manifest, reuse stored manifests and journaled points")
		leaseTTL    = flag.Duration("lease-ttl", 60*time.Second, "serve: fallback lease time before an unanswered point is re-issued (adapts to observed point latencies once warmed up)")
		maxLeases   = flag.Int("max-leases", 1024, "serve: cap on outstanding leases across all manifests")
		exitDone    = flag.Bool("exit-when-done", false, "serve: exit once every served manifest is complete")
		workers     = cli.WorkersFlag("concurrent simulations in this process (planning calibrations in serve mode, leased points in worker mode)")
		poll        = flag.Duration("poll", 500*time.Millisecond, "worker: back-off between lease attempts while no point is available")
		authToken   = cli.AuthTokenFlag("shared bearer token: serve mode requires it of every request, worker mode attaches it; empty disables auth")
		stepWorkers = cli.StepWorkersFlag()
	)
	cpuProfile, memProfile := cli.ProfileFlags()
	flag.Parse()

	if err := cli.CheckWorkers(*workers); err != nil {
		log.Fatal(err)
	}
	if err := cli.CheckStepWorkers(*stepWorkers); err != nil {
		log.Fatal(err)
	}
	// A zero or negative TTL would re-issue every lease immediately and a
	// non-positive cap would grant no leases at all: refuse loudly at
	// startup instead of silently substituting the library defaults.
	if *leaseTTL <= 0 {
		log.Fatalf("-lease-ttl must be positive (got %s)", *leaseTTL)
	}
	if *maxLeases <= 0 {
		log.Fatalf("-max-leases must be positive (got %d)", *maxLeases)
	}
	token := cli.AuthToken(*authToken)
	exp.SetLeafBudget(*workers)
	nocsim.SetDefaultStepWorkers(*stepWorkers)
	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	ctx, stop := cli.SignalContext()
	defer stop()

	if *workerURL != "" {
		if err := work(ctx, *workerURL, *workers, *poll, token); err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
		return
	}
	if err := serve(ctx, serveConfig{
		addr: *addr, figs: *figs, dir: *dir, results: *resultsDB, resume: *resume,
		leaseTTL: *leaseTTL, maxLeases: *maxLeases, exitDone: *exitDone,
		authToken: token,
		opts:      sweep.Options{Quick: *quick, Points: *points, Seed: *seed, Workers: *workers},
	}); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}

func work(ctx context.Context, url string, workers int, poll time.Duration, token string) error {
	w := &queue.Worker{
		Client:  &queue.Client{Base: strings.TrimRight(url, "/"), Token: token},
		Workers: workers,
		Poll:    poll,
		OnPoint: func(name string, index int) { log.Printf("posted %s point %d", name, index) },
	}
	log.Printf("worker attached to %s (%d lease loops)", url, workers)
	if err := w.Run(ctx); err != nil {
		return err
	}
	log.Print("coordinator reports all work done")
	return nil
}

type serveConfig struct {
	addr      string
	figs      string
	dir       string
	results   string
	resume    bool
	leaseTTL  time.Duration
	maxLeases int
	exitDone  bool
	authToken string
	opts      sweep.Options
}

// selectFigs resolves the -fig list (sweep.ResolveFigures: the same
// vocabulary cmd/figures accepts) into the manifest figures to serve.
func selectFigs(figs string) ([]string, error) {
	out, fig5, err := sweep.ResolveFigures(figs)
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		if fig5 {
			return nil, fmt.Errorf("fig 5 is analytic: it has no simulation points to serve")
		}
		return nil, fmt.Errorf("nothing selected by -fig %q", figs)
	}
	return out, nil
}

func serve(ctx context.Context, cfg serveConfig) error {
	figs, err := selectFigs(cfg.figs)
	if err != nil {
		return err
	}
	var store *manifest.DirStore
	if cfg.dir != "" {
		if store, err = manifest.NewDirStore(cfg.dir); err != nil {
			return err
		}
	} else if cfg.resume {
		return fmt.Errorf("-resume needs -manifest")
	}
	var resultsStore *results.Store
	if cfg.results != "" {
		if resultsStore, err = results.Open(cfg.results); err != nil {
			return err
		}
		defer resultsStore.Close()
	}

	coord := queue.New(queue.Config{
		LeaseTTL: cfg.leaseTTL, MaxLeases: cfg.maxLeases,
		AuthToken: cfg.authToken, Store: store, Results: resultsStore,
	})
	defer coord.Close()

	// Bind before planning: workers and -coordinator clients can connect
	// immediately and poll until their manifest appears.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: coord.Handler()}

	// shutdown is the graceful exit: stop granting leases, drain the
	// HTTP server's in-flight requests (late posts still land), then
	// flush and fsync the journals and the results store so nothing a
	// worker paid for is lost to the exit.
	shutdown := func() error {
		coord.Quiesce()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := server.Shutdown(shutdownCtx)
		if cerr := coord.Close(); err == nil {
			err = cerr
		}
		if resultsStore != nil {
			if cerr := resultsStore.Close(); err == nil {
				err = cerr
			}
		}
		log.Print("journals flushed and synced; exiting")
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()
	if cfg.authToken != "" {
		log.Printf("serving on %s (bearer-token auth required; metrics at /metrics)", ln.Addr())
	} else {
		log.Printf("serving on %s (no auth token — any peer may lease and post; metrics at /metrics)", ln.Addr())
	}

	for _, fig := range figs {
		m, have, err := sweep.PlanOrResume(ctx, fig, cfg.opts, store, cfg.resume)
		if err != nil {
			server.Close()
			return fmt.Errorf("planning %s: %w", fig, err)
		}
		if err := coord.Add(m, have); err != nil {
			server.Close()
			return err
		}
		log.Printf("serving %s: %d points (%d already journaled)", fig, m.NumPoints(), len(have))
	}
	// Sealing tells unscoped workers that "everything complete" now
	// really means done — before this, it would mean "planning not
	// finished, wait for more work".
	coord.Seal()
	log.Printf("all %d manifest(s) planned; fallback lease TTL %s (adapts to observed latencies), max %d outstanding leases",
		len(figs), cfg.leaseTTL, cfg.maxLeases)

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			log.Print("signal received; draining leases and flushing journals")
			return shutdown()
		case err := <-serveErr:
			return err
		case <-ticker.C:
			if cfg.exitDone && coord.Complete() {
				log.Print("all manifests complete; exiting")
				return shutdown()
			}
		}
	}
}
