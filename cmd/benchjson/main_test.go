package main

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkFoo-8 \t 12  345.6 ns/op  7 B/op")
	if !ok {
		t.Fatal("rejected a valid benchmark line")
	}
	if e.Name != "BenchmarkFoo-8" || e.Iterations != 12 {
		t.Errorf("parsed %+v", e)
	}
	if e.Metrics["ns/op"] != 345.6 || e.Metrics["B/op"] != 7 {
		t.Errorf("metrics %v", e.Metrics)
	}
	for _, bad := range []string{"ok  repro/internal/noc 0.3s", "PASS", "Benchmark", "BenchmarkX notanumber"} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestParseLineDropsNonFiniteMetrics pins the sanitization: a NaN or ±Inf
// custom metric (a degenerate b.ReportMetric ratio) is dropped rather than
// poisoning the record — json.Encode rejects non-finite values, and one
// broken metric must not cost CI the whole baseline artifact.
func TestParseLineDropsNonFiniteMetrics(t *testing.T) {
	e, ok := parseLine("BenchmarkFoo-8 4 345.6 ns/op NaN delay-ratio +Inf x/op -Inf y/op")
	if !ok {
		t.Fatal("rejected a benchmark line with non-finite metrics")
	}
	if len(e.Metrics) != 1 || e.Metrics["ns/op"] != 345.6 {
		t.Errorf("metrics %v, want only the finite ns/op", e.Metrics)
	}
	rec, _, err := parse(strings.NewReader("BenchmarkFoo-8 4 345.6 ns/op NaN delay-ratio\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(io.Discard).Encode(rec); err != nil {
		t.Errorf("sanitized record does not encode: %v", err)
	}
}

func TestParseDetectsFail(t *testing.T) {
	rec, failed, err := parse(strings.NewReader("BenchmarkA 1 5 ns/op\nFAIL\trepro/x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("FAIL line not detected")
	}
	if len(rec.Entries) != 1 {
		t.Errorf("entries = %d, want 1", len(rec.Entries))
	}
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo-128":    "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFig2_RMSD":  "BenchmarkFig2_RMSD",
		"BenchmarkSub/case-4": "BenchmarkSub/case",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func mkRecord(entries ...Entry) Record { return Record{Entries: entries} }

func entry(name string, ns float64) Entry {
	return Entry{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestDiffGate(t *testing.T) {
	base := mkRecord(entry("BenchmarkA-8", 100), entry("BenchmarkB-8", 100), entry("BenchmarkGone-8", 1))
	var out strings.Builder

	// Within tolerance and improved: no regressions.
	cur := mkRecord(entry("BenchmarkA-4", 250), entry("BenchmarkB-4", 10), entry("BenchmarkNew-4", 1))
	if n := diff(&out, base, cur, "ns/op", 3.0); n != 0 {
		t.Errorf("regressions = %d, want 0\n%s", n, out.String())
	}
	report := out.String()
	for _, want := range []string{"BenchmarkNew", "no baseline", "BenchmarkGone", "in baseline only", "improved"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Beyond tolerance: gate trips.
	out.Reset()
	cur = mkRecord(entry("BenchmarkA-8", 301))
	if n := diff(&out, base, cur, "ns/op", 3.0); n != 1 {
		t.Errorf("regressions = %d, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("report missing REGRESSED:\n%s", out.String())
	}

	// Missing metric on either side is skipped, not a crash or a failure.
	out.Reset()
	cur = mkRecord(Entry{Name: "BenchmarkA-8", Metrics: map[string]float64{"rmsd/x": 1}})
	if n := diff(&out, base, cur, "ns/op", 3.0); n != 0 {
		t.Errorf("regressions = %d, want 0 for missing metric", n)
	}
}
