// Command benchjson converts `go test -bench` text output on stdin into
// a JSON benchmark record on stdout, for the CI bench-baseline artifact:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH.json
//
// Each benchmark line becomes one entry carrying the iteration count and
// every reported metric (ns/op, B/op, and the custom b.ReportMetric
// values like delay-ratio-rmsd/dmsd). Non-benchmark lines (PASS, ok,
// package headers) are skipped; a FAIL line makes the exit status
// non-zero so CI does not archive a broken baseline.
//
// With -baseline FILE the new record is additionally diffed against a
// previously committed record, and the exit status is non-zero when any
// benchmark present in both regressed by more than -tolerance on the
// compared metric (default ns/op):
//
//	go test ... -bench . ./... | benchjson -baseline BENCH_5.json > BENCH_6.json
//
// Benchmarks that exist on only one side are reported but never fail the
// gate, so adding or retiring benchmarks does not require touching the
// baseline in the same change. Non-finite metric values (a NaN or ±Inf
// from a degenerate b.ReportMetric ratio) are dropped from the entry —
// JSON cannot encode them, and one broken metric must not cost CI the
// whole baseline artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	// Name is the benchmark name with its -cpu suffix intact
	// (e.g. "BenchmarkFig7_Tornado-8").
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit to its value, e.g.
	// {"ns/op": 1.2e9, "delay-ratio-rmsd/dmsd": 2.5}.
	Metrics map[string]float64 `json:"metrics"`
}

// Record is the whole artifact: host context plus the parsed entries.
type Record struct {
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Entries   []Entry `json:"entries"`
}

// parseLine parses one "BenchmarkName-N  iters  v1 unit1  v2 unit2 ..."
// line, returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		// A degenerate custom metric (b.ReportMetric of a 0/0 ratio prints
		// NaN, an x/0 prints ±Inf) has no JSON encoding: json.Encode would
		// reject the whole record and CI would lose the baseline. Drop the
		// one metric, keep the benchmark.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

// parse consumes bench text from r into a Record, reporting whether a FAIL
// line was seen.
func parse(r io.Reader) (Record, bool, error) {
	rec := Record{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Entries:   []Entry{},
	}
	failed := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "FAIL") {
			failed = true
		}
		if e, ok := parseLine(line); ok {
			rec.Entries = append(rec.Entries, e)
		}
	}
	return rec, failed, sc.Err()
}

// metric returns the entry's value for unit, if reported.
func (e Entry) metric(unit string) (float64, bool) {
	v, ok := e.Metrics[unit]
	return v, ok
}

// baseName strips the -cpu suffix so records taken on machines with
// different core counts still line up ("BenchmarkFoo-8" -> "BenchmarkFoo").
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// diff compares cur against base on the given metric. A benchmark regresses
// when cur > base*tolerance; it returns the number of regressions and
// writes a human-readable report to w.
func diff(w io.Writer, base, cur Record, unit string, tolerance float64) int {
	baseBy := map[string]Entry{}
	for _, e := range base.Entries {
		baseBy[baseName(e.Name)] = e
	}
	regressions := 0
	for _, e := range cur.Entries {
		name := baseName(e.Name)
		b, ok := baseBy[name]
		if !ok {
			fmt.Fprintf(w, "  new       %-46s (no baseline)\n", name)
			continue
		}
		delete(baseBy, name)
		cv, cok := e.metric(unit)
		bv, bok := b.metric(unit)
		if !cok || !bok || bv == 0 {
			continue
		}
		ratio := cv / bv
		switch {
		case ratio > tolerance:
			regressions++
			fmt.Fprintf(w, "  REGRESSED %-46s %12.4g -> %12.4g %s (%.2fx > %.2fx tolerance)\n",
				name, bv, cv, unit, ratio, tolerance)
		case ratio < 1/tolerance:
			fmt.Fprintf(w, "  improved  %-46s %12.4g -> %12.4g %s (%.2fx)\n", name, bv, cv, unit, ratio)
		default:
			fmt.Fprintf(w, "  ok        %-46s %12.4g -> %12.4g %s (%.2fx)\n", name, bv, cv, unit, ratio)
		}
	}
	for name := range baseBy {
		fmt.Fprintf(w, "  retired   %-46s (in baseline only)\n", name)
	}
	return regressions
}

func main() {
	baseline := flag.String("baseline", "", "baseline record to diff against; regressions fail the exit status")
	unit := flag.String("metric", "ns/op", "metric compared against the baseline")
	tolerance := flag.Float64("tolerance", 3.0, "regression threshold as a current/baseline ratio")
	flag.Parse()

	rec, failed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains FAIL")
		os.Exit(1)
	}
	if len(rec.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Record
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: diff vs %s (%s, tolerance %.2fx):\n", *baseline, *unit, *tolerance)
		if n := diff(os.Stderr, base, rec, *unit, *tolerance); n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed\n", n)
			os.Exit(1)
		}
	}
}
