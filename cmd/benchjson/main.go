// Command benchjson converts `go test -bench` text output on stdin into
// a JSON benchmark record on stdout, for the CI bench-baseline artifact:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH.json
//
// Each benchmark line becomes one entry carrying the iteration count and
// every reported metric (ns/op, B/op, and the custom b.ReportMetric
// values like delay-ratio-rmsd/dmsd). Non-benchmark lines (PASS, ok,
// package headers) are skipped; a FAIL line makes the exit status
// non-zero so CI does not archive a broken baseline.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	// Name is the benchmark name with its -cpu suffix intact
	// (e.g. "BenchmarkFig7_Tornado-8").
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit to its value, e.g.
	// {"ns/op": 1.2e9, "delay-ratio-rmsd/dmsd": 2.5}.
	Metrics map[string]float64 `json:"metrics"`
}

// Record is the whole artifact: host context plus the parsed entries.
type Record struct {
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Entries   []Entry `json:"entries"`
}

// parseLine parses one "BenchmarkName-N  iters  v1 unit1  v2 unit2 ..."
// line, returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

func main() {
	rec := Record{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Entries:   []Entry{},
	}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "FAIL") {
			failed = true
		}
		if e, ok := parseLine(line); ok {
			rec.Entries = append(rec.Entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains FAIL")
		os.Exit(1)
	}
	if len(rec.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
}
