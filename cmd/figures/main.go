// Command figures regenerates the paper's tables and figures as numeric
// tables on stdout (or CSV files with -csv).
//
//	figures -fig all            # everything (takes several minutes)
//	figures -fig 2,4,6 -quick   # the baseline trio with short windows
//	figures -fig 5              # the voltage-frequency curve (instant)
//	figures -fig 10 -points 6   # multimedia panels with 6 speed samples
//
// With -manifest DIR every figure is planned as a resolved-grid JSON
// manifest (DIR/<fig>.manifest.json) and each completed simulation point
// is appended to DIR/<fig>.points.jsonl as it finishes. An interrupted
// run therefore keeps everything it paid for: re-running with -resume
// reloads the manifest (skipping calibration) and computes only the
// missing points before reassembling the tables.
//
//	figures -fig 8 -manifest runs/fig8            # restartable run
//	figures -fig 8 -manifest runs/fig8 -resume    # finish an interrupted run
//
// With -coordinator URL the figures are not computed (only) here: the
// manifests are served by a nocsimd coordinator, this process joins as
// one more worker, and the tables are reassembled from the
// coordinator's journal once every point is posted — byte-identical to
// a single-process run of the same options.
//
//	figures -fig 7 -quick -coordinator http://10.0.0.7:9090
//
// With -adaptive each manifest-backed figure runs as a two-phase
// adaptive sweep: the planned grid becomes a coarse pass, a refinement
// manifest is derived from its results (extra load samples where the
// curves bend and around the saturation knee, at most -refine-budget
// points), and the tables merge both passes onto one load axis. Works
// with -manifest (the refinement is journaled and resumable like any
// figure) and with -coordinator (the refinement is posted to the live
// coordinator and drained by the same fleet, no restart).
//
//	figures -fig 2 -adaptive -refine-budget 12 -manifest runs/fig2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/queue"
	"repro/internal/sweep"
	"repro/nocsim"
	"repro/nocsim/manifest"
)

// reportProgress polls the exp engine's cumulative point counters and
// logs completion, throughput and the in-flight leaf-simulation count
// until the process exits. The scheduled total grows as nested sweeps
// enqueue work, so the ETA firms up as the run proceeds.
func reportProgress(interval time.Duration) {
	start := time.Now()
	for range time.Tick(interval) {
		scheduled, done := exp.Stats()
		if done == 0 {
			continue
		}
		elapsed := time.Since(start)
		rate := float64(done) / elapsed.Seconds()
		inFlight, _ := exp.LeafStats()
		msg := fmt.Sprintf("progress: %d/%d points, %.1f points/s, %d sims in flight",
			done, scheduled, rate, inFlight)
		if left := scheduled - done; left > 0 && rate > 0 {
			eta := time.Duration(float64(left) / rate * float64(time.Second))
			msg += fmt.Sprintf(", eta >= %s", eta.Round(time.Second))
		}
		log.Print(msg)
	}
}

// selection maps the user's -fig tokens to the manifest-backed figures
// to run (the vocabulary lives in sweep.ResolveFigures, shared with
// cmd/nocsimd), whether the analytic Fig. 5 is wanted, and the table-ID
// prefixes to keep from the shared baseline manifest.
func selection(figs string) (run []string, fig5 bool, baselineIDs map[string]bool, err error) {
	run, fig5, err = sweep.ResolveFigures(figs)
	if err != nil {
		return nil, false, nil, err
	}
	want := map[string]bool{}
	for _, f := range strings.Split(figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	baselineIDs = map[string]bool{}
	for token, prefix := range map[string]string{"2": "fig2", "4": "fig4", "6": "fig6", "summary": "summary"} {
		if all || want[token] {
			baselineIDs[prefix] = true
		}
	}
	if want["baseline"] {
		// The manifest name selects the whole shared study: every view.
		for _, prefix := range []string{"fig2", "fig4", "fig6", "summary"} {
			baselineIDs[prefix] = true
		}
	}
	return run, fig5, baselineIDs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var (
		figs        = flag.String("fig", "all", "comma-separated figure list: 2,4,5,6,7,8,10,pi,summary,ablation (or period,gains,levels,routing,breakdown individually) or 'all'")
		quick       = flag.Bool("quick", false, "shorter windows and smaller grids")
		points      = flag.Int("points", 0, "samples per curve (0 = default)")
		seed        = flag.Int64("seed", 1, "random seed")
		csvDir      = flag.String("csv", "", "also write one CSV per table into this directory")
		workers     = cli.WorkersFlag("concurrent simulation points (default GOMAXPROCS, 1 = serial); results are identical either way")
		progress    = flag.Bool("progress", false, "log point completion and ETA every few seconds")
		manifestDir = flag.String("manifest", "", "persist resolved-grid manifests and completed points under this directory")
		resume      = flag.Bool("resume", false, "with -manifest: reuse stored manifests and completed points, running only the missing ones")
		maxPoints   = flag.Int("max-points", 0, "stop each figure after this many new points (0 = no limit); for testing interrupted runs")
		coordinator = flag.String("coordinator", "", "compute through this nocsimd coordinator URL and reassemble tables from its journal")
		authToken   = cli.AuthTokenFlag("bearer token for a -coordinator that runs with -auth-token")
		stepWorkers = cli.StepWorkersFlag()
	)
	adaptive, refineBudget := cli.RefineFlags()
	cpuProfile, memProfile := cli.ProfileFlags()
	flag.Parse()

	if err := cli.CheckWorkers(*workers); err != nil {
		log.Fatal(err)
	}
	if err := cli.CheckStepWorkers(*stepWorkers); err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()
	nocsim.SetDefaultStepWorkers(*stepWorkers)
	if *maxPoints < 0 {
		log.Fatalf("-max-points must be >= 0 (got %d); 0 means no limit", *maxPoints)
	}
	if err := cli.CheckRefine(*adaptive, *refineBudget, cli.FlagWasSet("refine-budget"),
		*manifestDir != "" || *coordinator != ""); err != nil {
		log.Fatal(err)
	}
	if *adaptive && *maxPoints > 0 {
		log.Fatal("-adaptive is exclusive with -max-points: refinement needs the whole coarse pass (interrupt and -resume instead)")
	}

	// The leaf budget is the process-wide cap on concurrently executing
	// simulations: nested panels stack worker pools, but never sims.
	exp.SetLeafBudget(*workers)

	// Interrupt cancels the context, which aborts in-flight simulations
	// promptly (the engine loop observes it).
	ctx, stop := cli.SignalContext()
	defer stop()

	o := sweep.Options{Quick: *quick, Points: *points, Seed: *seed, Workers: *workers}
	run, fig5, baselineIDs, err := selection(*figs)
	if err != nil {
		log.Fatal(err)
	}
	if len(run) == 0 && !fig5 {
		log.Fatalf("nothing selected by -fig %q", *figs)
	}

	var qc *queue.Client
	if *coordinator != "" {
		if *manifestDir != "" || *resume || *maxPoints > 0 {
			log.Fatal("-coordinator is exclusive with -manifest/-resume/-max-points: the coordinator owns the journal")
		}
		qc = &queue.Client{Base: strings.TrimRight(*coordinator, "/"), Token: cli.AuthToken(*authToken)}
	}
	if *progress {
		if qc != nil {
			// The exp counters track the local engine's grid points, which a
			// coordinator-mode run does not schedule; polling them would
			// print nothing (or nonsense) for the whole run.
			log.Print("-progress has no local view in -coordinator mode; watch the coordinator's logs or GET /v1/status/<fig>")
		} else {
			go reportProgress(3 * time.Second)
		}
	}
	var store *manifest.DirStore
	if *manifestDir != "" {
		if store, err = manifest.NewDirStore(*manifestDir); err != nil {
			log.Fatal(err)
		}
	} else if *resume {
		log.Fatal("-resume needs -manifest")
	} else if *maxPoints > 0 {
		// Without a store the interrupted run's points would be computed
		// and thrown away, with no way to resume.
		log.Fatal("-max-points needs -manifest")
	}

	var tables []sweep.Table
	incomplete := 0
	for _, fig := range run {
		var ts []sweep.Table
		var stats *sweep.AdaptiveStats
		complete := true
		switch {
		case *adaptive && qc != nil:
			log.Printf("running %s adaptively via coordinator %s...", fig, *coordinator)
			ts, stats, err = sweep.GenerateRemoteAdaptive(ctx, fig, o, qc, *refineBudget)
		case *adaptive:
			log.Printf("running %s adaptively...", fig)
			ts, stats, err = sweep.GenerateAdaptive(ctx, fig, o, store, *resume, *refineBudget)
		case qc != nil:
			log.Printf("running %s via coordinator %s...", fig, *coordinator)
			ts, err = sweep.GenerateRemote(ctx, fig, o, qc)
		default:
			log.Printf("running %s...", fig)
			ts, complete, err = sweep.Generate(ctx, fig, o, store, *resume, *maxPoints)
		}
		if err != nil {
			log.Fatal(err)
		}
		if stats != nil {
			if stats.ChildName == "" {
				log.Printf("%s: adaptive run simulated %d points, refinement found nothing worth adding", fig, stats.Total())
			} else {
				log.Printf("%s: adaptive run simulated %d points (%d coarse + %d refined as %s)",
					fig, stats.Total(), stats.CoarsePoints, stats.RefinedPoints, stats.ChildName)
			}
		}
		if !complete {
			incomplete++
			log.Printf("%s: stopped after -max-points %d new points; finish it with -resume", fig, *maxPoints)
			continue
		}
		if fig == "baseline" {
			for _, t := range ts {
				for prefix := range baselineIDs {
					if strings.HasPrefix(t.ID, prefix) {
						tables = append(tables, t)
						break
					}
				}
			}
			continue
		}
		tables = append(tables, ts...)
	}
	if fig5 {
		tables = append(tables, sweep.Fig5(o)...)
	}
	if incomplete > 0 {
		log.Printf("%d figure(s) left incomplete (manifest saved under %s)", incomplete, *manifestDir)
		return
	}

	for i := range tables {
		if err := tables[i].Format(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i := range tables {
			path := filepath.Join(*csvDir, tables[i].ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := tables[i].CSV(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(tables), *csvDir)
	}
}
