// Command figures regenerates the paper's tables and figures as numeric
// tables on stdout (or CSV files with -csv).
//
//	figures -fig all            # everything (takes several minutes)
//	figures -fig 2,4,6 -quick   # the baseline trio with short windows
//	figures -fig 5              # the voltage-frequency curve (instant)
//	figures -fig 10 -points 6   # multimedia panels with 6 speed samples
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/sweep"
)

// reportProgress polls the exp engine's cumulative point counters and
// logs completion and throughput until the process exits. The scheduled
// total grows as nested sweeps enqueue work, so the ETA firms up as the
// run proceeds.
func reportProgress(interval time.Duration) {
	start := time.Now()
	for range time.Tick(interval) {
		scheduled, done := exp.Stats()
		if done == 0 {
			continue
		}
		elapsed := time.Since(start)
		rate := float64(done) / elapsed.Seconds()
		msg := fmt.Sprintf("progress: %d/%d points, %.1f points/s", done, scheduled, rate)
		if left := scheduled - done; left > 0 && rate > 0 {
			eta := time.Duration(float64(left) / rate * float64(time.Second))
			msg += fmt.Sprintf(", eta >= %s", eta.Round(time.Second))
		}
		log.Print(msg)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var (
		figs     = flag.String("fig", "all", "comma-separated figure list: 2,4,5,6,7,8,10,pi,summary,ablation or 'all'")
		quick    = flag.Bool("quick", false, "shorter windows and smaller grids")
		points   = flag.Int("points", 0, "samples per curve (0 = default)")
		seed     = flag.Int64("seed", 1, "random seed")
		csvDir   = flag.String("csv", "", "also write one CSV per table into this directory")
		workers  = flag.Int("workers", 0, "concurrent simulation points (0 = GOMAXPROCS, 1 = serial); results are identical either way")
		progress = flag.Bool("progress", false, "log point completion and ETA every few seconds")
	)
	flag.Parse()

	// Interrupt cancels the context, which aborts in-flight simulations
	// promptly (the engine loop observes it).
	ctx, stop := cli.SignalContext()
	defer stop()

	o := sweep.Options{Quick: *quick, Points: *points, Seed: *seed, Workers: *workers}
	if *progress {
		go reportProgress(3 * time.Second)
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	needBundle := all || want["2"] || want["4"] || want["6"] || want["summary"]

	var bundle *sweep.Bundle
	if needBundle {
		log.Println("running baseline three-policy sweep (figs 2/4/6/summary)...")
		var err error
		bundle, err = sweep.BaselineBundle(ctx, o)
		if err != nil {
			log.Fatal(err)
		}
	}

	var tables []sweep.Table
	add := func(ts []sweep.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		tables = append(tables, ts...)
	}
	if all || want["2"] {
		add(sweep.Fig2(bundle), nil)
	}
	if all || want["4"] {
		add(sweep.Fig4(bundle), nil)
	}
	if all || want["5"] {
		add(sweep.Fig5(o), nil)
	}
	if all || want["6"] {
		add(sweep.Fig6(bundle), nil)
	}
	if all || want["7"] {
		log.Println("running synthetic-pattern sweeps (fig 7)...")
		add(sweep.Fig7(ctx, o))
	}
	if all || want["8"] {
		log.Println("running sensitivity sweeps (fig 8)...")
		add(sweep.Fig8(ctx, o))
	}
	if all || want["10"] {
		log.Println("running multimedia sweeps (fig 10)...")
		add(sweep.Fig10(ctx, o))
	}
	if all || want["pi"] {
		log.Println("running PI transient (pi)...")
		add(sweep.PIStep(ctx, o))
	}
	if all || want["summary"] {
		add(sweep.Summary(bundle), nil)
	}
	if all || want["ablation"] {
		log.Println("running ablations (control period, gains, levels, routing, breakdown)...")
		add(sweep.AblationControlPeriod(ctx, o))
		add(sweep.AblationGains(ctx, o))
		add(sweep.AblationDiscreteLevels(ctx, o))
		add(sweep.AblationRouting(ctx, o))
		add(sweep.PowerBreakdown(ctx, o))
	}
	if len(tables) == 0 {
		log.Fatalf("nothing selected by -fig %q", *figs)
	}

	for i := range tables {
		if err := tables[i].Format(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i := range tables {
			path := filepath.Join(*csvDir, tables[i].ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := tables[i].CSV(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(tables), *csvDir)
	}
}
