// Command nocsim runs a single NoC simulation at one operating point and
// prints the measured latency, delay, throughput, frequency and power.
// It is a thin flag-to-Scenario translation over the public nocsim
// package: every flag maps onto one option, and -scenario accepts the
// same JSON wire form that nocsim.Scenario marshals to.
//
// Examples:
//
//	nocsim -pattern uniform -rate 0.2 -policy nodvfs
//	nocsim -pattern tornado -rate 0.15 -policy rmsd -lambda-max 0.3
//	nocsim -pattern uniform -rate 0.2 -policy dmsd -target 150
//	nocsim -app h264 -speed 0.8 -policy dmsd -target 120
//	nocsim -scenario job.json
//	nocsim -pattern uniform -rate 0.2 -dump-scenario   # print the wire form
//
// Beyond-paper workloads (see the README's scenario cookbook):
//
//	nocsim -pattern uniform -rate 0.2 -capture-trace t.json   # record
//	nocsim -trace t.json                                      # replay bit-identically
//	nocsim -pattern uniform -rate 0.2 -source mmpp -burst-ratio 6
//	nocsim -pattern uniform -rate 0.2 -faulty-links "6>7,7>6"
//	nocsim -pattern uniform -rate 0.2 -islands "0,0,2,4@0.5"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/nocsim"
)

// dumpLogs writes the requested per-packet and per-flow CSVs.
func dumpLogs(plog *nocsim.PacketLog, packetPath, flowPath string) error {
	write := func(path string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(packetPath, func(f *os.File) error { return plog.WriteCSV(f) }); err != nil {
		return err
	}
	if err := write(flowPath, func(f *os.File) error { return plog.WriteFlowsCSV(f) }); err != nil {
		return err
	}
	if plog.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "packet log full: %d packets dropped\n", plog.Dropped())
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsim: ")

	var (
		width   = flag.Int("width", 5, "mesh width")
		height  = flag.Int("height", 5, "mesh height")
		vcs     = flag.Int("vcs", 8, "virtual channels per port")
		bufs    = flag.Int("buffers", 4, "flit buffers per VC")
		pkt     = flag.Int("packet", 20, "packet size in flits")
		routing = flag.String("routing", "xy", "routing algorithm: xy, yx, o1turn")

		pattern = flag.String("pattern", "uniform", "synthetic pattern (uniform, tornado, bitcomp, transpose, neighbor, bitrev, shuffle)")
		rate    = flag.Float64("rate", 0.2, "injection rate, flits per node per node cycle")
		appName = flag.String("app", "", "multimedia app instead of a pattern: h264 or vce")
		speed   = flag.Float64("speed", 1.0, "app speed, 1.0 = 75 frames/s")

		policy    = flag.String("policy", "nodvfs", "DVFS policy: nodvfs, rmsd, dmsd")
		lambdaMax = flag.Float64("lambda-max", 0, "RMSD target network rate (0 = auto-calibrate)")
		target    = flag.Float64("target", 0, "DMSD target delay in ns (0 = auto-calibrate)")

		traceRef     = flag.String("trace", "", "replay a recorded injection-trace JSON file instead of a pattern or app")
		captureTrace = flag.String("capture-trace", "", "record this run's injections into a trace file (replay with -trace)")
		source       = flag.String("source", "", "bursty arrival process under the pattern: mmpp or pareto")
		burstRatio   = flag.Float64("burst-ratio", 0, "ON rate over mean rate for -source (0 = default 4)")
		burstLen     = flag.Float64("burst-len", 0, "mean ON sojourn in node cycles for -source (0 = default 64)")
		paretoAlpha  = flag.Float64("pareto-alpha", 0, "sojourn tail index for -source pareto (0 = default 1.5)")
		faultyLinks  = flag.String("faulty-links", "", `comma-separated directed channels to mask, each "from>to"`)
		islands      = flag.String("islands", "", `V/F islands as "x0,y0,x1,y1@speed" items separated by ';'`)

		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "shorter warmup/measurement windows")

		scenarioPath = flag.String("scenario", "", "run a JSON scenario file instead of building one from flags")
		dumpScenario = flag.Bool("dump-scenario", false, "print the scenario's JSON wire form and exit without running")

		packetLog = flag.String("packet-log", "", "write per-packet lifecycle CSV to this file")
		flowLog   = flag.String("flow-log", "", "write per-flow aggregate CSV to this file")
	)
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	var s nocsim.Scenario
	var err error
	if *scenarioPath != "" {
		// The file is the whole scenario; warn about shaping flags that
		// would otherwise be silently ignored.
		shaping := map[string]bool{
			"width": true, "height": true, "vcs": true, "buffers": true,
			"packet": true, "routing": true, "pattern": true, "rate": true,
			"app": true, "speed": true, "policy": true, "lambda-max": true,
			"target": true, "seed": true, "quick": true, "trace": true,
			"source": true, "burst-ratio": true, "burst-len": true,
			"pareto-alpha": true, "faulty-links": true, "islands": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if shaping[f.Name] {
				fmt.Fprintf(os.Stderr, "nocsim: -%s is ignored when -scenario is given\n", f.Name)
			}
		})
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(data, &s); err != nil {
			log.Fatalf("parsing %s: %v", *scenarioPath, err)
		}
		// Partial wire scenarios are legal: fill the documented defaults
		// before validating, exactly as Run would.
		s = s.Normalized()
		if err := s.Validate(); err != nil {
			log.Fatal(err)
		}
	} else {
		opts := []nocsim.Option{
			nocsim.WithMesh(*width, *height),
			nocsim.WithVCs(*vcs),
			nocsim.WithBuffers(*bufs),
			nocsim.WithPacketSize(*pkt),
			nocsim.WithRouting(nocsim.Routing(*routing)),
			nocsim.WithPolicy(nocsim.PolicyKind(*policy)),
			nocsim.WithSeed(*seed),
		}
		switch {
		case *traceRef != "":
			opts = append(opts, nocsim.WithTrace(*traceRef))
		case *appName != "":
			opts = append(opts, nocsim.WithApp(*appName), nocsim.WithLoad(*speed))
		default:
			opts = append(opts, nocsim.WithPattern(*pattern), nocsim.WithLoad(*rate))
		}
		switch *source {
		case "":
		case "mmpp":
			opts = append(opts, nocsim.WithMMPP(*burstRatio, *burstLen))
		case "pareto":
			opts = append(opts, nocsim.WithParetoOnOff(*burstRatio, *burstLen, *paretoAlpha))
		default:
			log.Fatalf("unknown -source %q (want mmpp or pareto)", *source)
		}
		if *faultyLinks != "" {
			links := strings.Split(*faultyLinks, ",")
			for i := range links {
				links[i] = strings.TrimSpace(links[i])
			}
			opts = append(opts, nocsim.WithFaultyLinks(links...))
		}
		if *islands != "" {
			isl, err := parseIslands(*islands)
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, nocsim.WithIslands(isl...))
		}
		if *quick {
			opts = append(opts, nocsim.WithQuick())
		}
		if *lambdaMax > 0 || *target > 0 {
			// Partial manual calibration: fill what the user gave, guess
			// the rest conservatively. Validation rejects a policy whose
			// own operating point is missing.
			opts = append(opts, nocsim.WithCalibration(nocsim.Calibration{
				SaturationRate: *lambdaMax / 0.9,
				LambdaMax:      *lambdaMax,
				TargetDelayNs:  *target,
			}))
		}
		if s, err = nocsim.New(opts...); err != nil {
			log.Fatal(err)
		}
	}

	var plog *nocsim.PacketLog
	if *packetLog != "" || *flowLog != "" {
		plog = nocsim.NewPacketLog(0)
		if s, err = s.With(nocsim.WithPacketLog(plog)); err != nil {
			log.Fatal(err)
		}
	}
	var sink *nocsim.Trace
	if *captureTrace != "" {
		sink = nocsim.NewTrace()
		if s, err = s.With(nocsim.WithTraceCapture(sink)); err != nil {
			log.Fatal(err)
		}
	}

	if *dumpScenario {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	res, err := nocsim.Run(ctx, s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario:    %s\n", describe(res.Scenario))
	fmt.Printf("policy:      %s\n", res.Scenario.Policy)
	fmt.Printf("latency:     %.1f network cycles\n", res.AvgLatencyCycles)
	fmt.Printf("delay:       %.1f ns (p99 %.0f ns)\n", res.AvgDelayNs, res.P99DelayNs)
	fmt.Printf("throughput:  %.4f flits/node/cycle (offered %.4f)\n", res.Throughput, res.OfferedRate)
	fmt.Printf("frequency:   %.1f MHz (avg), voltage %.3f V\n", res.AvgFreqHz/1e6, res.AvgVolts)
	fmt.Printf("power:       %.1f mW\n", res.AvgPowerMW)
	fmt.Printf("packets:     %d measured over %.1f µs (wall %s)\n",
		res.Packets, res.ElapsedNs/1e3, res.Meta.WallTime.Round(time.Millisecond))
	if plog != nil {
		if err := dumpLogs(plog, *packetLog, *flowLog); err != nil {
			log.Fatal(err)
		}
	}
	if sink != nil {
		if err := sink.Save(*captureTrace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace:       %d injections over %d cycles -> %s\n",
			sink.Len(), sink.Cycles(), *captureTrace)
	}
	if res.Saturated {
		fmt.Println("WARNING:     network saturated at this load")
		os.Exit(2)
	}
}

func describe(s nocsim.Scenario) string {
	traffic := s.Pattern
	loadLabel := fmt.Sprintf("rate %.3f", s.Load)
	switch {
	case s.TraceRef != "":
		traffic = "trace " + s.TraceRef
		loadLabel = "recorded load"
	case s.App != "":
		traffic = s.App
		loadLabel = fmt.Sprintf("speed %.2f", s.Load)
	}
	if s.Source != nil {
		traffic += "+" + s.Source.Kind
	}
	var extra string
	if n := len(s.FaultyLinks); n > 0 {
		extra += fmt.Sprintf(", %d faulty links", n)
	}
	if n := len(s.Islands); n > 0 {
		extra += fmt.Sprintf(", %d islands", n)
	}
	return fmt.Sprintf("%dx%d mesh, %d VCs, %d buf/VC, %d-flit packets, %s routing, %s traffic, %s%s",
		s.Mesh.Width, s.Mesh.Height, s.Mesh.VCs, s.Mesh.BufDepth, s.Mesh.PacketSize,
		s.Mesh.Routing, traffic, loadLabel, extra)
}

// parseIslands parses the -islands flag: "x0,y0,x1,y1@speed" items
// separated by semicolons, e.g. "0,0,2,4@0.5;3,0,4,4@0.75".
func parseIslands(spec string) ([]nocsim.Island, error) {
	var out []nocsim.Island
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		var isl nocsim.Island
		if _, err := fmt.Sscanf(item, "%d,%d,%d,%d@%f",
			&isl.X0, &isl.Y0, &isl.X1, &isl.Y1, &isl.Speed); err != nil {
			return nil, fmt.Errorf(`island %q: want "x0,y0,x1,y1@speed"`, item)
		}
		out = append(out, isl)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("island spec %q holds no islands", spec)
	}
	return out, nil
}
