// Command nocsim runs a single NoC simulation at one operating point and
// prints the measured latency, delay, throughput, frequency and power.
//
// Examples:
//
//	nocsim -pattern uniform -rate 0.2 -policy nodvfs
//	nocsim -pattern tornado -rate 0.15 -policy rmsd -lambda-max 0.3
//	nocsim -pattern uniform -rate 0.2 -policy dmsd -target 150
//	nocsim -app h264 -speed 0.8 -policy dmsd -target 120 -width 4 -height 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/trace"
)

// dumpLogs writes the requested per-packet and per-flow CSVs.
func dumpLogs(plog *trace.Log, packetPath, flowPath string) error {
	write := func(path string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(packetPath, func(f *os.File) error { return plog.WriteCSV(f) }); err != nil {
		return err
	}
	if err := write(flowPath, func(f *os.File) error { return plog.WriteFlowsCSV(f) }); err != nil {
		return err
	}
	if plog.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "packet log full: %d packets dropped\n", plog.Dropped())
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsim: ")

	var (
		width   = flag.Int("width", 5, "mesh width")
		height  = flag.Int("height", 5, "mesh height")
		vcs     = flag.Int("vcs", 8, "virtual channels per port")
		bufs    = flag.Int("buffers", 4, "flit buffers per VC")
		pkt     = flag.Int("packet", 20, "packet size in flits")
		routing = flag.String("routing", "xy", "routing algorithm: xy, yx, o1turn")

		pattern = flag.String("pattern", "uniform", "synthetic pattern (uniform, tornado, bitcomp, transpose, neighbor, bitrev, shuffle)")
		rate    = flag.Float64("rate", 0.2, "injection rate, flits per node per node cycle")
		appName = flag.String("app", "", "multimedia app instead of a pattern: h264 or vce")
		speed   = flag.Float64("speed", 1.0, "app speed, 1.0 = 75 frames/s")

		policy    = flag.String("policy", "nodvfs", "DVFS policy: nodvfs, rmsd, dmsd")
		lambdaMax = flag.Float64("lambda-max", 0, "RMSD target network rate (0 = auto-calibrate)")
		target    = flag.Float64("target", 0, "DMSD target delay in ns (0 = auto-calibrate)")

		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "shorter warmup/measurement windows")

		packetLog = flag.String("packet-log", "", "write per-packet lifecycle CSV to this file")
		flowLog   = flag.String("flow-log", "", "write per-flow aggregate CSV to this file")
	)
	flag.Parse()

	ralgo, err := noc.ParseRouting(*routing)
	if err != nil {
		log.Fatal(err)
	}
	s := core.Scenario{
		Noc: noc.Config{
			Width: *width, Height: *height, VCs: *vcs,
			BufDepth: *bufs, PacketSize: *pkt, Routing: ralgo,
		},
		Seed:  *seed,
		Quick: *quick,
	}
	var plog *trace.Log
	if *packetLog != "" || *flowLog != "" {
		plog = trace.NewLog(0)
		s.PacketLog = plog
	}
	load := *rate
	if *appName != "" {
		var app apps.App
		switch *appName {
		case "h264":
			app = apps.H264()
		case "vce":
			app = apps.VCE()
		default:
			log.Fatalf("unknown app %q (want h264 or vce)", *appName)
		}
		s.App = &app
		s.Noc.Width, s.Noc.Height = app.Width, app.Height
		load = *speed
	} else {
		s.Pattern = *pattern
	}

	kind := core.PolicyKind(*policy)
	cal := core.Calibration{}
	if *lambdaMax > 0 || *target > 0 {
		// Partial manual calibration: fill what the user gave, guess the
		// rest conservatively.
		cal = core.Calibration{
			SaturationRate: *lambdaMax / 0.9,
			LambdaMax:      *lambdaMax,
			TargetDelayNs:  *target,
		}
		if kind == core.RMSD && *lambdaMax == 0 {
			log.Fatal("-policy rmsd needs -lambda-max (or leave both unset for auto-calibration)")
		}
		if kind == core.DMSD && *target == 0 {
			log.Fatal("-policy dmsd needs -target (or leave both unset for auto-calibration)")
		}
	}

	res, err := core.RunOne(s, kind, load, cal)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario:    %s\n", describe(s, load))
	fmt.Printf("policy:      %s\n", kind)
	fmt.Printf("latency:     %.1f network cycles\n", res.AvgLatencyCycles)
	fmt.Printf("delay:       %.1f ns (p99 %.0f ns)\n", res.AvgDelayNs, res.P99DelayNs)
	fmt.Printf("throughput:  %.4f flits/node/cycle (offered %.4f)\n", res.Throughput, res.OfferedRate)
	fmt.Printf("frequency:   %.1f MHz (avg), voltage %.3f V\n", res.AvgFreqHz/1e6, res.AvgVolts)
	fmt.Printf("power:       %.1f mW\n", res.AvgPowerMW)
	fmt.Printf("packets:     %d measured over %.1f µs\n", res.Packets, res.ElapsedNs/1e3)
	if plog != nil {
		if err := dumpLogs(plog, *packetLog, *flowLog); err != nil {
			log.Fatal(err)
		}
	}
	if res.Saturated {
		fmt.Println("WARNING:     network saturated at this load")
		os.Exit(2)
	}
}

func describe(s core.Scenario, load float64) string {
	traffic := s.Pattern
	loadLabel := fmt.Sprintf("rate %.3f", load)
	if s.App != nil {
		traffic = s.App.Name
		loadLabel = fmt.Sprintf("speed %.2f", load)
	}
	return fmt.Sprintf("%dx%d mesh, %d VCs, %d buf/VC, %d-flit packets, %s routing, %s traffic, %s",
		s.Noc.Width, s.Noc.Height, s.Noc.VCs, s.Noc.BufDepth, s.Noc.PacketSize,
		s.Noc.Routing, traffic, loadLabel)
}
