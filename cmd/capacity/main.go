// Command capacity reports, for a network configuration and traffic
// pattern, the theoretical channel-load capacity and the empirically
// measured saturation rate, plus the RMSD calibration derived from them.
// It is a thin flag translation over the public nocsim package.
//
//	capacity -pattern uniform
//	capacity -pattern tornado -width 8 -height 8 -quick
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cli"
	"repro/nocsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("capacity: ")

	var (
		width   = flag.Int("width", 5, "mesh width")
		height  = flag.Int("height", 5, "mesh height")
		vcs     = flag.Int("vcs", 8, "virtual channels per port")
		bufs    = flag.Int("buffers", 4, "flit buffers per VC")
		pkt     = flag.Int("packet", 20, "packet size in flits")
		routing = flag.String("routing", "xy", "routing algorithm")
		pattern = flag.String("pattern", "uniform", "traffic pattern")
		seed    = flag.Int64("seed", 1, "random seed")
		quick   = flag.Bool("quick", false, "shorter simulations")
		workers = cli.WorkersFlag("concurrent saturation probes (default GOMAXPROCS, 1 = serial); the measured rate is identical either way")
	)
	flag.Parse()

	if err := cli.CheckWorkers(*workers); err != nil {
		log.Fatal(err)
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	opts := []nocsim.Option{
		nocsim.WithMesh(*width, *height),
		nocsim.WithVCs(*vcs),
		nocsim.WithBuffers(*bufs),
		nocsim.WithPacketSize(*pkt),
		nocsim.WithRouting(nocsim.Routing(*routing)),
		nocsim.WithPattern(*pattern),
		nocsim.WithSeed(*seed),
		nocsim.WithWorkers(*workers),
	}
	if *quick {
		opts = append(opts, nocsim.WithQuick())
	}
	s, err := nocsim.New(opts...)
	if err != nil {
		log.Fatal(err)
	}

	theo, err := nocsim.TheoreticalCapacity(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration:         %dx%d mesh, %d VCs, %d buf/VC, %d-flit packets, %s routing\n",
		s.Mesh.Width, s.Mesh.Height, s.Mesh.VCs, s.Mesh.BufDepth, s.Mesh.PacketSize, s.Mesh.Routing)
	fmt.Printf("pattern:               %s\n", s.Pattern)
	fmt.Printf("theoretical capacity:  %.4f flits/node/cycle (1 / max channel load)\n", theo)

	cal, err := nocsim.Calibrate(ctx, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured saturation:   %.4f flits/node/cycle\n", cal.SaturationRate)
	fmt.Printf("allocator efficiency:  %.0f%% of theoretical\n", 100*cal.SaturationRate/theo)
	fmt.Printf("RMSD lambda-max:       %.4f (90%% of saturation)\n", cal.LambdaMax)
	fmt.Printf("DMSD target delay:     %.1f ns (delay at lambda-max, full speed)\n", cal.TargetDelayNs)
}
