// Command capacity reports, for a network configuration and traffic
// pattern, the theoretical channel-load capacity and the empirically
// measured saturation rate, plus the RMSD calibration derived from them.
//
//	capacity -pattern uniform
//	capacity -pattern tornado -width 8 -height 8 -quick
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("capacity: ")

	var (
		width   = flag.Int("width", 5, "mesh width")
		height  = flag.Int("height", 5, "mesh height")
		vcs     = flag.Int("vcs", 8, "virtual channels per port")
		bufs    = flag.Int("buffers", 4, "flit buffers per VC")
		pkt     = flag.Int("packet", 20, "packet size in flits")
		routing = flag.String("routing", "xy", "routing algorithm")
		pattern = flag.String("pattern", "uniform", "traffic pattern")
		seed    = flag.Int64("seed", 1, "random seed")
		quick   = flag.Bool("quick", false, "shorter simulations")
		workers = flag.Int("workers", 0, "concurrent saturation probes (0 = GOMAXPROCS, 1 = serial); the measured rate is identical either way")
	)
	flag.Parse()

	ralgo, err := noc.ParseRouting(*routing)
	if err != nil {
		log.Fatal(err)
	}
	cfg := noc.Config{
		Width: *width, Height: *height, VCs: *vcs,
		BufDepth: *bufs, PacketSize: *pkt, Routing: ralgo,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	pat, err := traffic.ByName(*pattern, cfg)
	if err != nil {
		log.Fatal(err)
	}
	theo := noc.TheoreticalCapacity(cfg, traffic.Matrix(pat, cfg))
	fmt.Printf("configuration:         %dx%d mesh, %d VCs, %d buf/VC, %d-flit packets, %s routing\n",
		cfg.Width, cfg.Height, cfg.VCs, cfg.BufDepth, cfg.PacketSize, cfg.Routing)
	fmt.Printf("pattern:               %s\n", pat.Name())
	fmt.Printf("theoretical capacity:  %.4f flits/node/cycle (1 / max channel load)\n", theo)

	s := core.Scenario{Noc: cfg, Pattern: *pattern, Seed: *seed, Quick: *quick, Workers: *workers}
	cal, err := core.Calibrate(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured saturation:   %.4f flits/node/cycle\n", cal.SaturationRate)
	fmt.Printf("allocator efficiency:  %.0f%% of theoretical\n", 100*cal.SaturationRate/theo)
	fmt.Printf("RMSD lambda-max:       %.4f (90%% of saturation)\n", cal.LambdaMax)
	fmt.Printf("DMSD target delay:     %.1f ns (delay at lambda-max, full speed)\n", cal.TargetDelayNs)
}
