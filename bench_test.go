// Benchmarks mapping one-to-one onto the paper's tables and figures.
// Each benchmark regenerates the corresponding figure's data (in Quick
// mode with a reduced grid) and reports paper-relevant metrics alongside
// ns/op. Run them with:
//
//	go test -bench=. -benchmem            # everything
//	go test -bench=BenchmarkFig6 -benchtime=1x
//
// The correspondence to the paper:
//
//	BenchmarkFig2_*  — Fig. 2: RMSD vs No-DVFS latency/delay anomaly
//	BenchmarkFig4_*  — Fig. 4: frequency and delay, three policies
//	BenchmarkFig5_*  — Fig. 5: 28-nm F(Vdd) curve
//	BenchmarkFig6_*  — Fig. 6: network power, three policies
//	BenchmarkFig7_*  — Fig. 7: four synthetic patterns
//	BenchmarkFig8_*  — Fig. 8: sensitivity (VCs, buffers, packet, mesh)
//	BenchmarkFig10_* — Fig. 10: H.264 and VCE multimedia workloads
//	BenchmarkPI*     — Sec. IV: PI transient/stability
//	BenchmarkSummary — Sec. I/VII headline numbers
package repro_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sweep"
	"repro/internal/volt"
	"repro/nocsim"
)

// benchOpts returns reduced-size options so one benchmark iteration stays
// in the seconds range while exercising the full figure pipeline.
func benchOpts() sweep.Options { return sweep.Options{Quick: true, Points: 3, Seed: 1} }

// benchBundle caches the baseline three-policy sweep shared by the
// Fig. 2/4/6/summary benchmarks (the paper derives them from one study).
var benchBundle *sweep.Bundle

func getBenchBundle(b *testing.B) *sweep.Bundle {
	b.Helper()
	if benchBundle == nil {
		bundle, err := sweep.BaselineBundle(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		benchBundle = bundle
	}
	return benchBundle
}

func reportDelayRatio(b *testing.B, bundle *sweep.Bundle) {
	b.Helper()
	rm := bundle.Curve(nocsim.RMSD)
	dm := bundle.Curve(nocsim.DMSD)
	mid := len(rm) / 2
	if len(dm) > mid && dm[mid].AvgDelayNs > 0 {
		b.ReportMetric(rm[mid].AvgDelayNs/dm[mid].AvgDelayNs, "delay-ratio-rmsd/dmsd")
	}
}

func BenchmarkFig2_RMSDAnomaly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bundle := getBenchBundle(b)
		tables := sweep.Fig2(bundle)
		if len(tables) != 2 {
			b.Fatal("fig2 incomplete")
		}
	}
	bundle := getBenchBundle(b)
	no := bundle.Curve(nocsim.NoDVFS)
	rm := bundle.Curve(nocsim.RMSD)
	b.ReportMetric(rm[0].AvgDelayNs/no[0].AvgDelayNs, "rmsd/nodvfs-delay@low")
}

func BenchmarkFig4_FrequencyAndDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bundle := getBenchBundle(b)
		if len(sweep.Fig4(bundle)) != 2 {
			b.Fatal("fig4 incomplete")
		}
	}
	reportDelayRatio(b, getBenchBundle(b))
}

func BenchmarkFig5_VFCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := sweep.Fig5(benchOpts())
		if len(tables) != 1 || len(tables[0].Rows) < 4 {
			b.Fatal("fig5 incomplete")
		}
	}
	m := volt.New()
	b.ReportMetric(m.Alpha(), "alpha")
	b.ReportMetric(m.VoltageFor(666e6), "vdd@666MHz")
}

func BenchmarkFig6_Power(b *testing.B) {
	var tables []sweep.Table
	for i := 0; i < b.N; i++ {
		tables = sweep.Fig6(getBenchBundle(b))
		if len(tables) != 1 {
			b.Fatal("fig6 incomplete")
		}
	}
	// Report the paper's annotated ratio (≈2.2x) at the mid-grid point.
	bundle := getBenchBundle(b)
	no := bundle.Curve(nocsim.NoDVFS)
	rm := bundle.Curve(nocsim.RMSD)
	mid := len(no) / 2
	if rm[mid].AvgPowerMW > 0 {
		b.ReportMetric(no[mid].AvgPowerMW/rm[mid].AvgPowerMW, "power-ratio-nodvfs/rmsd")
	}
}

func benchFig7Pattern(b *testing.B, pattern string) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		s := core.Scenario{Noc: noc.DefaultConfig(), Pattern: pattern, Quick: true, Seed: o.Seed}
		cal, err := core.Calibrate(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		grid := core.LoadGrid(0.8*cal.SaturationRate, 2)
		cmp, err := core.ComparePolicies(context.Background(), s, grid, core.AllPolicies(), cal)
		if err != nil {
			b.Fatal(err)
		}
		rm := cmp.Sweeps[core.RMSD].Points
		dm := cmp.Sweeps[core.DMSD].Points
		last := len(rm) - 1
		if dm[last].Result.AvgDelayNs > 0 {
			b.ReportMetric(rm[last].Result.AvgDelayNs/dm[last].Result.AvgDelayNs, "delay-ratio")
		}
	}
}

func BenchmarkFig7_Tornado(b *testing.B)       { benchFig7Pattern(b, "tornado") }
func BenchmarkFig7_BitComplement(b *testing.B) { benchFig7Pattern(b, "bitcomp") }
func BenchmarkFig7_Transpose(b *testing.B)     { benchFig7Pattern(b, "transpose") }
func BenchmarkFig7_Neighbor(b *testing.B)      { benchFig7Pattern(b, "neighbor") }

func benchFig8Variant(b *testing.B, mutate func(*noc.Config)) {
	for i := 0; i < b.N; i++ {
		s := core.Scenario{Noc: noc.DefaultConfig(), Pattern: "uniform", Quick: true, Seed: 1}
		mutate(&s.Noc)
		cal, err := core.Calibrate(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := core.ComparePolicies(context.Background(), s, []float64{0.5 * cal.SaturationRate}, core.AllPolicies(), cal)
		if err != nil {
			b.Fatal(err)
		}
		rm := cmp.Sweeps[core.RMSD].Points[0].Result
		dm := cmp.Sweeps[core.DMSD].Points[0].Result
		if rm.AvgPowerMW > 0 {
			b.ReportMetric(dm.AvgPowerMW/rm.AvgPowerMW, "power-ratio-dmsd/rmsd")
		}
	}
}

func BenchmarkFig8_VC2(b *testing.B)   { benchFig8Variant(b, func(c *noc.Config) { c.VCs = 2 }) }
func BenchmarkFig8_VC4(b *testing.B)   { benchFig8Variant(b, func(c *noc.Config) { c.VCs = 4 }) }
func BenchmarkFig8_Buf8(b *testing.B)  { benchFig8Variant(b, func(c *noc.Config) { c.BufDepth = 8 }) }
func BenchmarkFig8_Buf16(b *testing.B) { benchFig8Variant(b, func(c *noc.Config) { c.BufDepth = 16 }) }
func BenchmarkFig8_Pkt10(b *testing.B) {
	benchFig8Variant(b, func(c *noc.Config) { c.PacketSize = 10 })
}
func BenchmarkFig8_Pkt15(b *testing.B) {
	benchFig8Variant(b, func(c *noc.Config) { c.PacketSize = 15 })
}
func BenchmarkFig8_Mesh4x4(b *testing.B) {
	benchFig8Variant(b, func(c *noc.Config) { c.Width, c.Height = 4, 4 })
}
func BenchmarkFig8_Mesh8x8(b *testing.B) {
	benchFig8Variant(b, func(c *noc.Config) { c.Width, c.Height = 8, 8 })
}

func benchFig10App(b *testing.B, name string) {
	o := benchOpts()
	o.Points = 2
	for i := 0; i < b.N; i++ {
		tables, err := sweep.Fig10(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, t := range tables {
			if t.ID == "fig10_"+name+"_delay" {
				found = true
			}
		}
		if !found {
			b.Fatalf("fig10 missing %s", name)
		}
	}
}

func BenchmarkFig10_Multimedia(b *testing.B) { benchFig10App(b, "h264") }

// BenchmarkAdaptiveSweep_Fig2 is the adaptive planner end to end: coarse
// pass, refinement, merged render. Compare against
// BenchmarkFixedSweep_Fig2 — the dense grid it replaces — for the
// wall-clock and simulated-point saving (BENCH_8.json tracks both).
func BenchmarkAdaptiveSweep_Fig2(b *testing.B) {
	o := sweep.Options{Quick: true, Points: 3, Seed: 1}
	var stats *sweep.AdaptiveStats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = sweep.GenerateAdaptive(context.Background(), "baseline", o, nil, false, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Total()), "points-simulated")
}

func BenchmarkFixedSweep_Fig2(b *testing.B) {
	o := sweep.Options{Quick: true, Points: 9, Seed: 1}
	for i := 0; i < b.N; i++ {
		_, complete, err := sweep.Generate(context.Background(), "baseline", o, nil, false, 0)
		if err != nil || !complete {
			b.Fatalf("fixed sweep: (complete=%v, %v)", complete, err)
		}
	}
	b.ReportMetric(float64(o.Points*3), "points-simulated")
}

func BenchmarkPIConvergence(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		tables, err := sweep.PIStep(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != 1 || len(tables[0].Rows) < 5 {
			b.Fatal("pi transient incomplete")
		}
		// Report how close the final window delay sits to the target.
		rows := tables[0].Rows
		b.ReportMetric(rows[len(rows)-1][1], "final-freq-ghz")
	}
}

func BenchmarkSummary_Headline(b *testing.B) {
	var tables []sweep.Table
	for i := 0; i < b.N; i++ {
		tables = sweep.Summary(getBenchBundle(b))
		if len(tables) != 1 {
			b.Fatal("summary incomplete")
		}
	}
	rows := tables[0].Rows
	mid := len(rows) / 2
	b.ReportMetric(rows[mid][1], "rmsd-power-saving-pct")
	b.ReportMetric(rows[mid][4], "rmsd/dmsd-delay-ratio")
}
