// Package repro reproduces Casu & Giaccone, "Rate-based vs Delay-based
// Control for DVFS in NoC" (DATE 2015): a cycle-accurate virtual-channel
// mesh NoC simulator with a global DVFS domain, the paper's two policies
// (rate-based RMSD and delay-based DMSD with a PI loop), a 28-nm
// FDSOI-calibrated voltage/frequency and power model, and a benchmark
// harness that regenerates every figure of the paper's evaluation.
//
// # Public API
//
// The module's exported face is the nocsim package: a context-aware,
// JSON-serializable Scenario/Run/Sweep API. Build a scenario with
// functional options, run it under a cancellable context, or cross it
// with loads × policies into a Grid whose points are self-contained
// jobs:
//
//	s, _ := nocsim.New(nocsim.WithPattern("uniform"), nocsim.WithLoad(0.2))
//	res, err := nocsim.Run(ctx, s)
//
// See the nocsim package documentation and README.md for the quickstart.
//
// # Internals
//
// The substrates live under internal/:
//
//	internal/noc      cycle-accurate VC wormhole router mesh (the Booksim substitute)
//	internal/traffic  synthetic patterns, traffic matrices, node-clock injection
//	internal/apps     H.264 and VCE multimedia communication graphs (Fig. 9)
//	internal/volt     28-nm FDSOI F(Vdd) model (Fig. 5)
//	internal/dvfs     No-DVFS, RMSD, DMSD policies and the PI controller
//	internal/power    event-energy power model and integrator
//	internal/stats    streaming statistics
//	internal/sim      the two-clock-domain simulation engine (context-aware)
//	internal/exp      parallel deterministic experiment runner (worker pool)
//	internal/core     experiments: calibration, saturation search, sweeps
//	internal/sweep    figure/table planners and renderers for the evaluation
//	internal/queue    HTTP work-queue: lease coordinator, client, worker loop
//	internal/resultsrv  results-service HTTP API: queries, cached renders, dashboard
//
// Every experiment grid — policy comparisons, saturation searches, figure
// panels, ablations — is fanned out across GOMAXPROCS workers by
// internal/exp. Each grid point is a self-contained closure owning an
// independent RNG stream derived from the root seed (exp.Seed, a
// SplitMix64 finalizer), results are collected in grid order, a panicking
// point is captured with its stack, and cancellation or first failure
// stops the grid — the engine loop itself observes the context, so
// in-flight simulations abort promptly. Output is byte-identical for any
// worker count — Workers=1 is the serial reference the
// golden-determinism tests compare against.
//
// Scheduling is depth-aware: worker pools bound goroutines per grid, but
// only leaf simulation runs hold slots of one process-wide budget
// (exp.SetLeafBudget), so nested grids — a figure panel whose points fan
// out their own sub-grids — never multiply the number of concurrently
// executing simulations beyond W, and since panel jobs never hold slots
// the scheme cannot deadlock.
//
// # Manifests, resume, and distributed runs
//
// Every figure and ablation in internal/sweep is planned as a manifest
// (package nocsim/manifest): the panels' nocsim.Grids are resolved
// (calibration pinned) up front, making each simulation point a
// self-contained JSON job addressed by one global index. The manifest
// plus its (index, result) journal — crash-safe, fsynced per line, torn
// tails skipped — is the single source of truth every executor shares:
//
//   - in-process: manifest.Run fans the missing points across the exp
//     engine (cmd/figures and cmd/report persist with -manifest DIR and
//     finish interrupted runs with -resume);
//   - distributed: cmd/nocsimd serves the points over HTTP as expiring
//     {manifest, index} leases (internal/queue); stateless workers
//     (nocsimd -worker) lease, run nocsim.Run, and post back with retry.
//     A dead worker's leases expire and are re-issued; the first result
//     for a point wins, so the journal holds each point exactly once,
//     and a restarted coordinator resumes from its journal.
//
// The work-queue is hardened for untrusted fleets: -auth-token (or
// $NOCSIM_TOKEN, kept out of process listings) makes the coordinator
// demand "Authorization: Bearer <token>" on every request — workers and
// -coordinator clients attach it, and wrong credentials fail fast with
// 401 instead of retrying. GET /metrics exposes Prometheus-format
// counters (leases outstanding, windowed points/s, re-issued leases,
// per-worker attribution):
//
//	curl -H "Authorization: Bearer $NOCSIM_TOKEN" http://HOST:9090/metrics
//
// Lease deadlines adapt per manifest from observed point latencies
// (decayed mean + variance, ~3×p95 clamped to [2s, 10m]); the static
// -lease-ttl only serves until the estimate warms up.
//
// Since every point carries its own derived RNG stream, tables
// reassembled from any mix of local, resumed and remote execution are
// byte-identical — cmd/figures -coordinator URL and cmd/report
// -coordinator URL join the computation as one more worker and render
// from the journal; CI smoke-tests the equivalence with a worker killed
// mid-run and an unauthenticated worker rejected. See README.md for the
// quickstart.
//
// # Adaptive sweeps
//
// Fixed grids spend most of their points on flat curve regions, while
// the claims live at the saturation knee and the policy crossovers.
// With -adaptive, cmd/figures and cmd/report run each figure as a
// two-phase plan (internal/sweep): the planned grid is the coarse
// pass; sweep.Refine scores every load interval by delay gradient,
// curvature and proximity to the measured knee and emits the winning
// midpoints — bounded by -refine-budget — as a child manifest whose
// name derives from the parent plan's fingerprint
// ("<fig>-refine-<sum>"). Because the child is an ordinary
// resolved-grid manifest, the journal, the coordinator, the workers
// and the results store execute it unchanged, and sweep.MergeRefined
// renders both passes as one monotone load axis. Refinement is
// deterministic: identical coarse results yield a byte-identical child
// manifest (golden-tested), so resumed runs reuse its journal and a
// re-posted refinement converges instead of conflicting.
//
// Distributed, the adaptive client registers the refinement name
// before the coarse pass completes (POST /v1/expect/<name>): a
// coordinator running -exit-when-done and its unscoped workers then
// stay attached through the gap between the coarse pass draining and
// the follow-on manifest arriving (POST /v1/manifest), and a
// refinement that finds nothing withdraws the expectation. The
// acceptance test reproduces the Fig. 2 sweep inside the paper's claim
// bands from a third of the fixed grid's simulated points.
//
// # Results service
//
// Beyond per-run journals, package nocsim/results is a persistent
// single-file results store built on the same crash-safe journal codec:
// one writing process (the coordinator with -results, or a resultsd
// -import backfill) appends plans and points durably, any number of
// read-only followers replay the file incrementally. cmd/resultsd
// (internal/resultsrv) serves it over HTTP: stored plans, point queries
// filtered by figure/policy/pattern/mesh/load, table rendering through
// the same internal/sweep renderer cmd/figures uses (byte-identical
// output), and a live dashboard proxying the coordinator's /metrics.
// Renders are memoized keyed by the manifest plan fingerprint
// (manifest.Sum) — identical plans share one render, any changed
// planning knob misses — and -export writes a plan's journal lines back
// out byte-identically. resultsd -compact rewrites the store in place,
// dropping plans superseded by a newer same-name plan (re-planned or
// re-refined figures) and duplicate point lines; every query answers
// identically before and after. The daemons shut down gracefully on
// SIGINT/SIGTERM: quiesce leases, drain in-flight posts, flush and
// fsync journals and store.
//
// Entry points: cmd/nocsim (single run or JSON scenario), cmd/figures
// (regenerate the evaluation), cmd/capacity (saturation analysis),
// cmd/report (paper-vs-measured report), cmd/nocsimd (work-queue
// coordinator and worker), cmd/resultsd (results store, query API and
// dashboard), and examples/ — all thin translations over the nocsim
// package.
//
// # Benchmarks
//
// The benchmarks in bench_test.go map one-to-one onto the paper's tables
// and figures; see EXPERIMENTS.md for measured-vs-paper comparisons.
// Below them, per-subsystem benchmarks (bench_*_test.go in internal/noc,
// internal/traffic and internal/sim) attribute the cost of a figure run
// to its layers — router pipeline stages, ring-buffer primitives,
// injector draws, engine loop — and paired "Naive" variants re-run the
// same load with quiescent skip-ahead disabled so the fast-path win is
// measured rather than assumed. Steady-state Network.Step is
// allocation-free, asserted by testing.AllocsPerRun in internal/noc.
// cmd/benchjson turns `go test -bench` output into the committed
// BENCH_*.json baseline and gates CI on regressions against it; see
// README.md for the workflow.
package repro
