// Package repro reproduces Casu & Giaccone, "Rate-based vs Delay-based
// Control for DVFS in NoC" (DATE 2015): a cycle-accurate virtual-channel
// mesh NoC simulator with a global DVFS domain, the paper's two policies
// (rate-based RMSD and delay-based DMSD with a PI loop), a 28-nm
// FDSOI-calibrated voltage/frequency and power model, and a benchmark
// harness that regenerates every figure of the paper's evaluation.
//
// The implementation lives under internal/:
//
//	internal/noc      cycle-accurate VC wormhole router mesh (the Booksim substitute)
//	internal/traffic  synthetic patterns, traffic matrices, node-clock injection
//	internal/apps     H.264 and VCE multimedia communication graphs (Fig. 9)
//	internal/volt     28-nm FDSOI F(Vdd) model (Fig. 5)
//	internal/dvfs     No-DVFS, RMSD, DMSD policies and the PI controller
//	internal/power    event-energy power model and integrator
//	internal/stats    streaming statistics
//	internal/sim      the two-clock-domain simulation engine
//	internal/exp      parallel deterministic experiment runner (worker pool)
//	internal/core     experiments: calibration, saturation search, sweeps
//	internal/sweep    figure/table generators for the whole evaluation
//
// Every experiment grid — policy comparisons, saturation searches, figure
// panels, ablations — is fanned out across GOMAXPROCS workers by
// internal/exp. Each grid point is a self-contained closure owning its
// RNG (every point builds its own injector, which derives one stream per
// node from the scenario seed), results are collected in grid order, a
// panicking point is captured with its stack, and the first failure
// cancels the remaining grid via context. Output is byte-identical for
// any worker count — Workers=1 is the serial reference the
// golden-determinism tests compare against.
//
// Entry points: cmd/nocsim (single run), cmd/figures (regenerate the
// evaluation), cmd/capacity (saturation analysis), and examples/.
//
// The benchmarks in bench_test.go map one-to-one onto the paper's tables
// and figures; see EXPERIMENTS.md for measured-vs-paper comparisons.
package repro
