package nocsim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// exampleScenarios mirrors every scenario shape the examples and the
// sweep harness construct: the baseline, each synthetic pattern, each
// sensitivity variant, and both multimedia workloads.
func exampleScenarios(t *testing.T) map[string]Scenario {
	t.Helper()
	cal := Calibration{SaturationRate: 0.42, LambdaMax: 0.378, TargetDelayNs: 150}
	set := map[string][]Option{
		"baseline":     {WithPattern("uniform"), WithLoad(0.2), WithQuick()},
		"rmsd":         {WithPattern("uniform"), WithLoad(0.2), WithPolicy(RMSD), WithCalibration(cal), WithQuick()},
		"dmsd":         {WithPattern("uniform"), WithLoad(0.2), WithPolicy(DMSD), WithCalibration(cal), WithQuick()},
		"tornado":      {WithPattern("tornado"), WithLoad(0.15), WithQuick()},
		"bitcomp":      {WithPattern("bitcomp"), WithLoad(0.15), WithQuick()},
		"transpose":    {WithPattern("transpose"), WithLoad(0.1), WithQuick()},
		"neighbor":     {WithPattern("neighbor"), WithLoad(0.3), WithQuick()},
		"vc2":          {WithPattern("uniform"), WithVCs(2), WithLoad(0.15), WithQuick()},
		"buf8":         {WithPattern("uniform"), WithBuffers(8), WithLoad(0.2), WithQuick()},
		"pkt10":        {WithPattern("uniform"), WithPacketSize(10), WithLoad(0.2), WithQuick()},
		"mesh4x4":      {WithPattern("uniform"), WithMesh(4, 4), WithLoad(0.2), WithQuick()},
		"mesh8x8":      {WithPattern("uniform"), WithMesh(8, 8), WithLoad(0.2), WithQuick()},
		"yx":           {WithPattern("uniform"), WithRouting(RoutingYX), WithLoad(0.2), WithQuick()},
		"o1turn":       {WithPattern("uniform"), WithRouting(RoutingO1Turn), WithLoad(0.2), WithQuick()},
		"h264":         {WithApp("h264"), WithLoad(0.5), WithQuick()},
		"vce":          {WithApp("vce"), WithLoad(0.75), WithQuick()},
		"seeded":       {WithPattern("uniform"), WithLoad(0.2), WithSeed(77), WithWorkers(3), WithQuick()},
		"slow-clock":   {WithPattern("uniform"), WithLoad(0.2), WithNodeClock(8e8), WithQuick()},
		"narrow-range": {WithPattern("uniform"), WithLoad(0.2), WithFreqRange(5e8, 1e9), WithQuick()},
		"mmpp":         {WithPattern("uniform"), WithLoad(0.2), WithMMPP(4, 64), WithQuick()},
		"pareto":       {WithPattern("uniform"), WithLoad(0.15), WithParetoOnOff(3, 32, 1.5), WithQuick()},
		"trace":        {WithTrace("testdata/trace.golden.json"), WithMesh(3, 3), WithQuick()},
		"faulty":       {WithPattern("uniform"), WithLoad(0.1), WithFaultyLinks("6>7", "7>6"), WithQuick()},
		"islands":      {WithPattern("uniform"), WithLoad(0.1), WithIslands(Island{X0: 0, Y0: 0, X1: 1, Y1: 1, Speed: 0.5}), WithQuick()},
		"mesh6x3":      {WithPattern("uniform"), WithMesh(6, 3), WithLoad(0.2), WithQuick()},
	}
	out := make(map[string]Scenario, len(set))
	for name, opts := range set {
		s, err := New(opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = s
	}
	return out
}

// TestScenarioJSONRoundTrip is the wire-form contract: every scenario
// the examples and sweeps construct survives Marshal → Unmarshal exactly,
// and re-marshalling the recovered value reproduces the same bytes.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for name, s := range exampleScenarios(t) {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s: round trip changed the scenario:\nbefore %+v\nafter  %+v", name, s, back)
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if string(data) != string(again) {
			t.Errorf("%s: re-marshal differs:\n%s\n%s", name, data, again)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: recovered scenario invalid: %v", name, err)
		}
	}
}

// TestScenarioGoldenJSON pins the wire form: an encoding change (field
// renamed, tag touched, default moved) must show up as a golden diff, not
// as a silent incompatibility between fleet members.
func TestScenarioGoldenJSON(t *testing.T) {
	s := MustNew(
		WithPattern("uniform"),
		WithLoad(0.2),
		WithPolicy(DMSD),
		WithCalibration(Calibration{SaturationRate: 0.42, LambdaMax: 0.378, TargetDelayNs: 150}),
		WithSeed(7),
		WithQuick(),
	)
	got, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "scenario.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("wire form drifted from %s (run with UPDATE_GOLDEN=1 to regenerate):\ngot:\n%swant:\n%s",
			golden, got, want)
	}
}

// TestScenarioDiversityGoldenJSON pins the wire form of the scenario-
// diversity fields (source, faulty links, islands, trace references) the
// same way the baseline golden pins the original fields.
func TestScenarioDiversityGoldenJSON(t *testing.T) {
	s := MustNew(
		WithPattern("uniform"),
		WithLoad(0.2),
		WithMMPP(4, 64),
		WithFaultyLinks("6>7", "7>6"),
		WithIslands(Island{X0: 0, Y0: 0, X1: 1, Y1: 4, Speed: 0.5}),
		WithSeed(7),
		WithQuick(),
	)
	got, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "diversity.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("wire form drifted from %s (run with UPDATE_GOLDEN=1 to regenerate):\ngot:\n%swant:\n%s",
			golden, got, want)
	}
}

// TestOldManifestStillDecodes: a manifest written before the scenario-
// diversity fields existed (the baseline golden file) must decode,
// normalize and validate unchanged, with every new field at its zero
// value — the backward-compatibility contract for stored manifests and
// fleet jobs.
func TestOldManifestStillDecodes(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "scenario.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("old manifest no longer decodes: %v", err)
	}
	if s.TraceRef != "" || s.Source != nil || len(s.FaultyLinks) != 0 || len(s.Islands) != 0 {
		t.Errorf("old manifest grew diversity fields: %+v", s)
	}
	n := s.Normalized()
	if err := n.Validate(); err != nil {
		t.Errorf("old manifest invalid after normalization: %v", err)
	}
	if n.Pattern != "uniform" || n.Policy != DMSD {
		t.Errorf("old manifest lost its settings: pattern %q policy %q", n.Pattern, n.Policy)
	}
}

// TestGridJSONRoundTrip: a Grid — the distributed-sweep job description —
// must survive the wire exactly like a Scenario.
func TestGridJSONRoundTrip(t *testing.T) {
	g := Grid{
		Base:     MustNew(WithPattern("tornado"), WithQuick(), WithSeed(3)),
		Loads:    []float64{0.05, 0.1, 0.15},
		Policies: AllPolicies(),
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Grid
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, back) {
		t.Errorf("grid round trip changed the grid:\nbefore %+v\nafter  %+v", g, back)
	}
	if back.Len() != 9 {
		t.Errorf("recovered grid has %d points, want 9", back.Len())
	}
}

func TestNewValidatesEagerly(t *testing.T) {
	cases := map[string][]Option{
		"unknown pattern":   {WithPattern("zipf")},
		"unknown app":       {WithApp("doom")},
		"unknown policy":    {WithPolicy(PolicyKind("magic"))},
		"negative load":     {WithLoad(-0.1)},
		"zero seed":         {WithSeed(0)},
		"bad mesh":          {WithMesh(0, 5)},
		"bad range":         {WithFreqRange(1e9, 333e6)},
		"rmsd no lambda":    {WithPolicy(RMSD), WithCalibration(Calibration{TargetDelayNs: 100})},
		"dmsd no target":    {WithPolicy(DMSD), WithCalibration(Calibration{LambdaMax: 0.3})},
		"negative workers":  {WithWorkers(-1)},
		"bad routing":       {WithRouting(Routing("zigzag"))},
		"app mesh mismatch": {WithApp("h264"), WithMesh(5, 5)},
		"transpose non-sq":  {WithPattern("transpose"), WithMesh(4, 5)},
		"empty trace ref":   {WithTrace("")},
		"trace + pattern":   {WithTrace("t.json"), WithPattern("uniform")},
		"trace + dvfs":      {WithTrace("t.json"), WithPolicy(RMSD)},
		"trace + source":    {WithPattern("uniform"), WithMMPP(4, 64), WithTrace("t.json"), WithMMPP(4, 64)},
		"source + app":      {WithApp("h264"), WithMMPP(4, 64)},
		"low burst ratio":   {WithPattern("uniform"), WithMMPP(0.5, 64)},
		"short burst":       {WithPattern("uniform"), WithMMPP(4, 0.25)},
		"bad pareto alpha":  {WithPattern("uniform"), WithParetoOnOff(4, 64, 3)},
		"bad fault form":    {WithFaultyLinks("1-2")},
		"fault non-adj":     {WithFaultyLinks("0>7")},
		"fault o1turn":      {WithRouting(RoutingO1Turn), WithFaultyLinks("0>1")},
		"island outside":    {WithIslands(Island{X0: 0, Y0: 0, X1: 9, Y1: 9, Speed: 0.5})},
		"island zero speed": {WithIslands(Island{X1: 1, Y1: 1})},
	}
	for name, opts := range cases {
		if _, err := New(opts...); err == nil {
			t.Errorf("%s: New accepted an invalid scenario", name)
		}
	}
}

func TestWithDoesNotMutateReceiver(t *testing.T) {
	s := MustNew(WithPattern("uniform"), WithLoad(0.2))
	if _, err := s.With(WithLoad(0.4), WithPolicy(RMSD), WithCalibration(Calibration{LambdaMax: 0.3})); err != nil {
		t.Fatal(err)
	}
	if s.Load != 0.2 || s.Policy != NoDVFS || s.Calibration != nil {
		t.Errorf("With mutated its receiver: %+v", s)
	}
}

func TestNormalizedFillsDefaults(t *testing.T) {
	// A minimal hand-written wire scenario gets the documented defaults.
	var s Scenario
	if err := json.Unmarshal([]byte(`{"pattern": "uniform", "load": 0.1}`), &s); err != nil {
		t.Fatal(err)
	}
	n := s.Normalized()
	if n.Mesh != DefaultMesh() || n.Policy != NoDVFS || n.Seed != 1 || n.FNodeHz != 1e9 {
		t.Errorf("Normalized() = %+v", n)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("normalized minimal scenario invalid: %v", err)
	}

	// A partially specified mesh gets the paper's router parameters
	// field by field: a job that only states the dimensions it changed
	// is still complete.
	var p Scenario
	if err := json.Unmarshal([]byte(`{"mesh": {"width": 7, "height": 7}, "pattern": "uniform", "load": 0.2}`), &p); err != nil {
		t.Fatal(err)
	}
	pn := p.Normalized()
	want := DefaultMesh()
	want.Width, want.Height = 7, 7
	if pn.Mesh != want {
		t.Errorf("partial mesh normalized to %+v, want %+v", pn.Mesh, want)
	}
	if err := pn.Validate(); err != nil {
		t.Errorf("partial-mesh scenario invalid after normalization: %v", err)
	}

	// An app-only wire scenario defaults its mesh to the app's mapping,
	// matching WithApp — the distribution story must not require the
	// sender to spell out the mesh.
	var a Scenario
	if err := json.Unmarshal([]byte(`{"app": "h264", "load": 0.5}`), &a); err != nil {
		t.Fatal(err)
	}
	an := a.Normalized()
	if an.Mesh.Width != 4 || an.Mesh.Height != 4 {
		t.Errorf("app scenario normalized to %dx%d mesh, want 4x4", an.Mesh.Width, an.Mesh.Height)
	}
	if err := an.Validate(); err != nil {
		t.Errorf("app-only scenario invalid after normalization: %v", err)
	}

	// A trace scenario must NOT inherit the "uniform" pattern default —
	// trace replay and patterns are mutually exclusive.
	var tr Scenario
	if err := json.Unmarshal([]byte(`{"trace": "t.json"}`), &tr); err != nil {
		t.Fatal(err)
	}
	if n := tr.Normalized(); n.Pattern != "" {
		t.Errorf("trace scenario normalized to pattern %q, want none", n.Pattern)
	}

	// A source spec that only names its kind gets the documented
	// parameter defaults, without mutating the original spec.
	var b Scenario
	if err := json.Unmarshal([]byte(`{"pattern": "uniform", "source": {"kind": "pareto"}}`), &b); err != nil {
		t.Fatal(err)
	}
	bn := b.Normalized()
	if bn.Source.BurstRatio != 4 || bn.Source.BurstLen != 64 || bn.Source.ParetoAlpha != 1.5 {
		t.Errorf("source defaults not filled: %+v", bn.Source)
	}
	if b.Source.BurstRatio != 0 {
		t.Error("Normalized mutated the receiver's source spec")
	}
	if err := bn.Validate(); err != nil {
		t.Errorf("defaulted source scenario invalid: %v", err)
	}
}
