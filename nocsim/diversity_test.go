package nocsim

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureQuickTrace runs a quick Bernoulli scenario with a trace sink
// attached and returns the sink plus the capture run's result.
func captureQuickTrace(t *testing.T, opts ...Option) (*Trace, Result) {
	t.Helper()
	sink := NewTrace()
	s, err := New(append(append([]Option(nil), opts...), WithTraceCapture(sink))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Fatal("capture recorded no events")
	}
	return sink, res
}

// TestTraceCaptureReplayBitIdentical is the tentpole's round-trip
// contract: a captured trace, saved to its golden-file form and replayed
// through WithTrace, reproduces the capture run's network evolution bit
// for bit. Only OfferedRate legitimately differs: the capture reports the
// nominal Bernoulli rate, the replay the trace's realized rate.
func TestTraceCaptureReplayBitIdentical(t *testing.T) {
	sink, capRes := captureQuickTrace(t,
		WithPattern("uniform"), WithLoad(0.15), WithQuick(), WithSeed(7))

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := sink.Save(path); err != nil {
		t.Fatal(err)
	}
	replay, err := New(WithTrace(path), WithQuick(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	repRes, err := Run(context.Background(), replay)
	if err != nil {
		t.Fatal(err)
	}

	if math.Abs(repRes.Metrics.OfferedRate-capRes.Metrics.OfferedRate) > 0.01 {
		t.Errorf("replay offered rate %.4f far from capture %.4f",
			repRes.Metrics.OfferedRate, capRes.Metrics.OfferedRate)
	}
	capM, repM := capRes.Metrics, repRes.Metrics
	capM.OfferedRate, repM.OfferedRate = 0, 0
	if got, want := metricsJSON(t, Result{Metrics: repM}), metricsJSON(t, Result{Metrics: capM}); got != want {
		t.Errorf("replay diverged from capture:\ncapture %s\nreplay  %s", want, got)
	}
}

// TestTraceGoldenCapture pins the trace wire form: a fixed-seed quick
// capture on a 3x3 mesh must reproduce testdata/trace.golden.json byte
// for byte — capture determinism and file format in one check.
func TestTraceGoldenCapture(t *testing.T) {
	sink, _ := captureQuickTrace(t,
		WithPattern("uniform"), WithMesh(3, 3), WithLoad(0.05), WithQuick(), WithSeed(7))
	var buf strings.Builder
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if buf.String() != string(want) {
		t.Errorf("captured trace drifted from %s (run with UPDATE_GOLDEN=1 to regenerate after intentional engine changes)", golden)
	}
}

// TestTraceGoldenReplayRuns: the checked-in golden trace keeps replaying —
// the compatibility guarantee for traces recorded by older builds.
func TestTraceGoldenReplayRuns(t *testing.T) {
	golden := filepath.Join("testdata", "trace.golden.json")
	tr, err := LoadTrace(golden)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(WithTrace(golden), WithMesh(3, 3), WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.OfferedRate-tr.MeanRate()) > 1e-9 {
		t.Errorf("replay offered rate %.6f, trace mean rate %.6f", res.Metrics.OfferedRate, tr.MeanRate())
	}
	if res.Metrics.Throughput <= 0 {
		t.Error("golden replay delivered nothing")
	}
}

// TestTraceReplayUnderDMSD: a DVFS-controlled replay measures the same
// node-cycle window the capture run did. DMSD's adaptive warmup would
// otherwise idle past the end of the recorded events and measure an
// empty network (a regression this test pins).
func TestTraceReplayUnderDMSD(t *testing.T) {
	sink, _ := captureQuickTrace(t,
		WithPattern("uniform"), WithLoad(0.15), WithQuick(), WithSeed(7))
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := sink.Save(path); err != nil {
		t.Fatal(err)
	}
	s, err := New(WithTrace(path), WithQuick(), WithPolicy(DMSD),
		WithCalibration(Calibration{SaturationRate: 0.46, LambdaMax: 0.41, TargetDelayNs: 186}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Throughput <= 0 {
		t.Error("DMSD replay measured an empty network")
	}
	if res.Metrics.AvgFreqHz >= 1e9 {
		t.Errorf("DMSD replay never throttled: avg freq %.0f Hz", res.Metrics.AvgFreqHz)
	}
}

// TestBurstSourceChangesDynamicsNotLoad: an MMPP source redistributes the
// same offered traffic in time — the measured stream differs from the
// Bernoulli run, the delivered volume stays close, and the burstier
// arrivals cost latency.
func TestBurstSourceChangesDynamicsNotLoad(t *testing.T) {
	ctx := context.Background()
	base := quickBase(t, WithSeed(21))
	mmpp := quickBase(t, WithSeed(21), WithMMPP(6, 80))
	pres, err := Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := Run(ctx, mmpp)
	if err != nil {
		t.Fatal(err)
	}
	if metricsJSON(t, pres) == metricsJSON(t, mres) {
		t.Error("MMPP run identical to Bernoulli run")
	}
	p, m := pres.Metrics.Throughput, mres.Metrics.Throughput
	if math.Abs(p-m) > p*0.15 {
		t.Errorf("MMPP throughput %.4f far from Bernoulli %.4f (mean should be preserved)", m, p)
	}
	if mres.Metrics.AvgLatencyCycles <= pres.Metrics.AvgLatencyCycles {
		t.Errorf("MMPP latency %.2f not above Bernoulli %.2f — bursts should queue",
			mres.Metrics.AvgLatencyCycles, pres.Metrics.AvgLatencyCycles)
	}
}

// TestParetoSourceRuns: the self-similar source completes and preserves
// throughput like the MMPP one.
func TestParetoSourceRuns(t *testing.T) {
	s := quickBase(t, WithSeed(5), WithParetoOnOff(4, 60, 1.4))
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Throughput-0.15) > 0.03 {
		t.Errorf("Pareto throughput %.4f, want ≈ 0.15", res.Metrics.Throughput)
	}
}

// TestFaultyLinksRun: traffic routes around masked channels (the engine
// panics if anything crosses one), and a disconnecting fault set fails
// with a clear error instead of hanging.
func TestFaultyLinksRun(t *testing.T) {
	s := quickBase(t, WithFaultyLinks("6>7", "7>6", "16>17"))
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Throughput <= 0 {
		t.Error("faulted mesh delivered nothing")
	}

	dead := quickBase(t)
	dead.FaultyLinks = []string{"0>1", "0>5"}
	if _, err := Run(context.Background(), dead); err == nil || !strings.Contains(err.Error(), "disconnect") {
		t.Errorf("disconnecting fault set: err = %v", err)
	}
}

// TestIslandsSlowTheMesh: a half-speed island across the mesh raises the
// measured latency of the identical traffic script.
func TestIslandsSlowTheMesh(t *testing.T) {
	ctx := context.Background()
	base := quickBase(t, WithSeed(3))
	slowed := quickBase(t, WithSeed(3), WithIslands(Island{X0: 0, Y0: 0, X1: 4, Y1: 4, Speed: 0.5}))
	bres, err := Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(ctx, slowed)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Metrics.AvgLatencyCycles <= bres.Metrics.AvgLatencyCycles {
		t.Errorf("island latency %.2f not above full-speed %.2f",
			sres.Metrics.AvgLatencyCycles, bres.Metrics.AvgLatencyCycles)
	}
}

// TestNonSquareMeshDeterministic: rectangular fabrics run and stay
// bit-identical across engine thread counts like square ones.
func TestNonSquareMeshDeterministic(t *testing.T) {
	ctx := context.Background()
	s := quickBase(t, WithMesh(6, 3), WithSeed(9))
	serial, err := Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := s.With(WithStepWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	banded, err := Run(ctx, s4)
	if err != nil {
		t.Fatal(err)
	}
	if metricsJSON(t, serial) != metricsJSON(t, banded) {
		t.Error("6x3 mesh diverges across step-worker counts")
	}
}
