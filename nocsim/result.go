package nocsim

import (
	"time"

	"repro/internal/sim"
)

// Metrics are the paper's measured steady-state quantities for one run.
// They are a pure function of the Scenario: the same scenario — including
// one recovered from its JSON form — reproduces them bit for bit.
type Metrics struct {
	// AvgLatencyCycles is the mean packet latency in network clock cycles
	// (Fig. 2a's metric).
	AvgLatencyCycles float64 `json:"avg_latency_cycles"`
	// AvgDelayNs is the mean packet delay in nanoseconds (Fig. 2b's
	// metric: latency integrated over the frequency trajectory).
	AvgDelayNs float64 `json:"avg_delay_ns"`
	// P99DelayNs approximates the 99th-percentile delay.
	P99DelayNs float64 `json:"p99_delay_ns"`
	// Packets is the number of packets measured.
	Packets int64 `json:"packets"`
	// OfferedRate is the offered load in flits per node per node cycle.
	OfferedRate float64 `json:"offered_rate"`
	// Throughput is the accepted rate in flits per node per node cycle.
	Throughput float64 `json:"throughput"`
	// AvgFreqHz and AvgVolts are time-weighted averages over the
	// measurement window.
	AvgFreqHz float64 `json:"avg_freq_hz"`
	AvgVolts  float64 `json:"avg_volts"`
	// AvgPowerMW is the average network power in milliwatts;
	// SwitchingMW, ClockMW and LeakageMW decompose it.
	AvgPowerMW  float64 `json:"avg_power_mw"`
	SwitchingMW float64 `json:"switching_mw"`
	ClockMW     float64 `json:"clock_mw"`
	LeakageMW   float64 `json:"leakage_mw"`
	// Saturated reports whether the run hit a saturation guard.
	Saturated bool `json:"saturated"`
	// ElapsedNs is the simulated real time of the measurement window.
	ElapsedNs float64 `json:"elapsed_ns"`
	// NetCycles is the number of network cycles simulated in total.
	NetCycles int64 `json:"net_cycles"`
}

// RunMeta records how a result was produced, as opposed to what was
// measured: reproducibility inputs and the wall-clock cost. Two runs of
// the same scenario agree on Metrics but may differ here.
type RunMeta struct {
	// Seed is the RNG seed the run actually used.
	Seed int64 `json:"seed"`
	// Workers is the concurrency bound the run was configured with.
	Workers int `json:"workers"`
	// StepWorkers is the number of engine threads that stepped the
	// network (0 and 1 both mean serial).
	StepWorkers int `json:"step_workers,omitempty"`
	// WallTime is the host time the run took, calibration included.
	WallTime time.Duration `json:"wall_time_ns"`
	// PointIndex is the position of this result in its Sweep grid, and 0
	// for a standalone Run.
	PointIndex int `json:"point_index"`
}

// TraceSample is one point of a transient run's frequency/delay trace
// (one per control period).
type TraceSample struct {
	// TimeNs is the simulated time of the sample.
	TimeNs float64 `json:"time_ns"`
	// FreqHz and Volts are the commanded operating point.
	FreqHz float64 `json:"freq_hz"`
	Volts  float64 `json:"volts"`
	// DelayNs is the window-average delay reported to the controller.
	DelayNs float64 `json:"delay_ns"`
}

// Result is the outcome of one Run: the fully resolved scenario (with
// any automatic calibration filled in), the paper's metrics, and the run
// metadata.
type Result struct {
	// Scenario is the scenario as executed: normalized, and with the
	// calibration that was used (automatic or supplied). Re-running it
	// reproduces Metrics exactly.
	Scenario Scenario `json:"scenario"`
	Metrics
	// Trace holds the per-control-period frequency/delay trajectory when
	// the scenario was run with Transient set, nil otherwise.
	Trace []TraceSample `json:"trace,omitempty"`
	Meta  RunMeta       `json:"meta"`
}

// metricsFrom converts an engine result to the public metrics form.
func metricsFrom(r sim.Result) Metrics {
	return Metrics{
		AvgLatencyCycles: r.AvgLatencyCycles,
		AvgDelayNs:       r.AvgDelayNs,
		P99DelayNs:       r.P99DelayNs,
		Packets:          r.Packets,
		OfferedRate:      r.OfferedRate,
		Throughput:       r.Throughput,
		AvgFreqHz:        r.AvgFreqHz,
		AvgVolts:         r.AvgVolts,
		AvgPowerMW:       r.AvgPowerMW,
		SwitchingMW:      r.SwitchingMW,
		ClockMW:          r.ClockMW,
		LeakageMW:        r.LeakageMW,
		Saturated:        r.Saturated,
		ElapsedNs:        r.ElapsedNs,
		NetCycles:        r.NetCycles,
	}
}
