package nocsim

import (
	"io"

	"repro/internal/apps"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// AppInfo describes one of the built-in multimedia workloads (the
// paper's Fig. 9 communication graphs).
type AppInfo struct {
	// Name is the identifier WithApp accepts.
	Name string `json:"name"`
	// Width and Height are the mesh the application is mapped on.
	Width  int `json:"width"`
	Height int `json:"height"`
	// Blocks and Edges count the graph's computation vertices and
	// communication arcs.
	Blocks int `json:"blocks"`
	Edges  int `json:"edges"`
	// PacketsPerFrame is the total traffic demand per encoded frame.
	PacketsPerFrame float64 `json:"packets_per_frame"`
}

// Apps lists the built-in multimedia workloads: the H.264 encoder (4x4
// mesh) and the Video Conference Encoder (5x5 mesh).
func Apps() []AppInfo {
	var infos []AppInfo
	for _, a := range apps.Apps() {
		infos = append(infos, AppInfo{
			Name:            a.Name,
			Width:           a.Width,
			Height:          a.Height,
			Blocks:          len(a.Blocks),
			Edges:           len(a.Edges),
			PacketsPerFrame: a.TotalPacketsPerFrame(),
		})
	}
	return infos
}

// PaperPatterns lists the four synthetic patterns of the paper's Fig. 7
// in presentation order: tornado, bitcomp, transpose, neighbor.
func PaperPatterns() []string { return traffic.PaperPatterns() }

// PacketLog records the lifecycle of every packet delivered during a
// run's measurement window. Attach one to a scenario with WithPacketLog;
// it is a runtime object, not part of the scenario's wire form.
type PacketLog struct {
	log *trace.Log
}

// NewPacketLog returns a log bounded to capacity records (0 means a
// generous default); packets beyond the bound are counted as dropped.
func NewPacketLog(capacity int) *PacketLog {
	return &PacketLog{log: trace.NewLog(capacity)}
}

// Len returns the number of packet records captured.
func (l *PacketLog) Len() int { return l.log.Len() }

// Dropped returns how many packets were discarded because the log was
// full.
func (l *PacketLog) Dropped() int64 { return l.log.Dropped() }

// WriteCSV writes one row per recorded packet.
func (l *PacketLog) WriteCSV(w io.Writer) error { return l.log.WriteCSV(w) }

// WriteFlowsCSV writes one row per source-destination flow, aggregated
// over the recorded packets.
func (l *PacketLog) WriteFlowsCSV(w io.Writer) error { return l.log.WriteFlowsCSV(w) }

// Trace is a recorded injection trace: every packet a run generated,
// with its injection cycle, source, destination and (under o1turn
// routing) the dimension order it drew. Capture one with
// WithTraceCapture, persist it with Save or WriteJSON, and replay it
// bit-identically with WithTrace. Like PacketLog it is a runtime
// object, not part of the scenario wire form.
type Trace struct {
	inj trace.Injection
}

// NewTrace returns an empty trace sink for WithTraceCapture.
func NewTrace() *Trace { return &Trace{} }

// Len returns the number of recorded injection events (packets).
func (t *Trace) Len() int { return len(t.inj.Events) }

// Cycles returns the recorded run length in node cycles.
func (t *Trace) Cycles() int64 { return t.inj.Cycles }

// MeanRate returns the trace's mean injection rate in flits per node
// per node cycle.
func (t *Trace) MeanRate() float64 { return t.inj.MeanRate() }

// WriteJSON writes the trace wire form.
func (t *Trace) WriteJSON(w io.Writer) error { return t.inj.WriteJSON(w) }

// Save writes the trace to path — the file WithTrace replays.
func (t *Trace) Save(path string) error { return trace.SaveInjection(path, &t.inj) }

// LoadTrace reads a trace file saved with Save, for inspection; Run
// loads trace files itself from Scenario.TraceRef.
func LoadTrace(path string) (*Trace, error) {
	tr, err := trace.LoadInjection(path)
	if err != nil {
		return nil, err
	}
	return &Trace{inj: *tr}, nil
}
