package results

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/nocsim"
	"repro/nocsim/manifest"
)

// testManifest builds a small resolved manifest: three policies crossed
// with loads, calibration pinned, so points resolve without simulating.
func testManifest(t *testing.T, name string, loads ...float64) *manifest.Manifest {
	t.Helper()
	base := nocsim.Scenario{Mesh: nocsim.DefaultMesh(), Pattern: "uniform", Quick: true, Seed: 1}.Normalized()
	base.Calibration = &nocsim.Calibration{SaturationRate: 0.6, LambdaMax: 0.54, TargetDelayNs: 100}
	return &manifest.Manifest{Name: name, Quick: true, Points: len(loads), Seed: 1, Panels: []manifest.Panel{
		{Label: "uniform", Grid: nocsim.Grid{Base: base, Loads: loads, Policies: nocsim.AllPolicies()}},
	}}
}

// fakeResult synthesizes a result whose scenario is the manifest's
// resolved point i — so scenario-level query filters see realistic
// policy/pattern/load values without running a simulation.
func fakeResult(t *testing.T, m *manifest.Manifest, i int) nocsim.Result {
	t.Helper()
	_, sc, err := m.Point(i)
	if err != nil {
		t.Fatal(err)
	}
	var r nocsim.Result
	r.Scenario = sc
	r.AvgDelayNs = float64(100 + i)
	r.Meta.PointIndex = i
	return r
}

func openStore(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStorePersistsAcrossReopen pins the single-file contract: plans and
// points ingested by one store are fully indexed by a fresh open over
// the same file, and duplicates are never stored twice.
func TestStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	m := testManifest(t, "fig7", 0.1, 0.2)
	s := openStore(t, path)
	sum, err := s.AddManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := s.AddManifest(m); again != sum {
		t.Fatalf("re-add changed sum: %s vs %s", again, sum)
	}
	for i := 0; i < m.NumPoints(); i++ {
		if err := s.AddPoint(sum, i, fakeResult(t, m, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate point: first result wins, no growth.
	other := fakeResult(t, m, 0)
	other.AvgDelayNs = 9999
	if err := s.AddPoint(sum, 0, other); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, path)
	defer s2.Close()
	plans := s2.Plans()
	if len(plans) != 1 || plans[0].Sum != sum || !plans[0].Complete || plans[0].Done != m.NumPoints() {
		t.Fatalf("reopened plans = %+v, want one complete plan %s", plans, sum)
	}
	pts, ok := s2.PointsOf(sum)
	if !ok || len(pts) != m.NumPoints() {
		t.Fatalf("reopened points = (%d, %v), want %d", len(pts), ok, m.NumPoints())
	}
	if pts[0].AvgDelayNs != 100 {
		t.Fatalf("duplicate overwrote first result: AvgDelayNs = %g, want 100", pts[0].AvgDelayNs)
	}
}

// TestStoreTornTailRecovery crashes mid-append (simulated by writing a
// partial line) and requires a fresh writable open to truncate it and
// keep everything before it.
func TestStoreTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	m := testManifest(t, "fig7", 0.1)
	s := openStore(t, path)
	sum, err := s.AddManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPoint(sum, 0, fakeResult(t, m, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"point","sum":"` + sum + `","point":{"ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, path)
	defer s2.Close()
	if pts, _ := s2.PointsOf(sum); len(pts) != 1 {
		t.Fatalf("recovered store holds %d points, want 1", len(pts))
	}
	// And the torn bytes are really gone: appending works and a reopen
	// still parses every line.
	if err := s2.AddPoint(sum, 1, fakeResult(t, m, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, path)
	defer s3.Close()
	if pts, _ := s3.PointsOf(sum); len(pts) != 2 {
		t.Fatalf("store after torn-tail append holds %d points, want 2", len(pts))
	}
}

// TestReadOnlyFollowerRefresh pins the live-dashboard mode: a read-only
// store over the same file sees new records after Refresh, never
// truncates the writer's tail, and refuses appends.
func TestReadOnlyFollowerRefresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	m := testManifest(t, "fig7", 0.1, 0.2)
	w := openStore(t, path)
	defer w.Close()
	sum, err := w.AddManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPoint(sum, 0, fakeResult(t, m, 0)); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	if pts, _ := ro.PointsOf(sum); len(pts) != 1 {
		t.Fatalf("follower sees %d points, want 1", len(pts))
	}
	// Writer appends more (all but the last point); the follower only
	// sees it after Refresh.
	for i := 1; i < m.NumPoints()-1; i++ {
		if err := w.AddPoint(sum, i, fakeResult(t, m, i)); err != nil {
			t.Fatal(err)
		}
	}
	if pts, _ := ro.PointsOf(sum); len(pts) != 1 {
		t.Fatalf("follower saw appends without Refresh: %d points", len(pts))
	}
	if err := ro.Refresh(); err != nil {
		t.Fatal(err)
	}
	if pts, _ := ro.PointsOf(sum); len(pts) != m.NumPoints()-1 {
		t.Fatalf("follower after Refresh sees %d points, want %d", len(pts), m.NumPoints()-1)
	}
	// A point the store does not hold yet cannot be appended read-only
	// (duplicates of stored points are still acknowledged idempotently).
	last := m.NumPoints() - 1
	if err := ro.AddPoint(sum, last, fakeResult(t, m, last)); err == nil {
		t.Fatal("read-only store accepted an append")
	}
}

// TestBackfillRoundTripByteIdentical is the backfill acceptance test: a
// serially written DirStore journal imported into the store exports back
// out byte-identical — and the import is idempotent.
func TestBackfillRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := manifest.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "fig7", 0.1, 0.2, 0.3)
	if err := st.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	j, err := st.Journal("fig7")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumPoints(); i++ {
		if err := j.Append(i, fakeResult(t, m, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	original, err := os.ReadFile(st.PointsPath("fig7"))
	if err != nil {
		t.Fatal(err)
	}

	s := openStore(t, filepath.Join(dir, "results.jsonl"))
	defer s.Close()
	plans, points, err := s.ImportDir(st)
	if err != nil {
		t.Fatal(err)
	}
	if plans != 1 || points != m.NumPoints() {
		t.Fatalf("import = (%d plans, %d points), want (1, %d)", plans, points, m.NumPoints())
	}
	sum, ok := s.Resolve("fig7")
	if !ok {
		t.Fatal("imported plan not resolvable by name")
	}
	var out bytes.Buffer
	if err := s.ExportJournal(&out, sum); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), original) {
		t.Fatalf("export is not byte-identical to the journal:\n--- journal ---\n%s--- export ---\n%s", original, out.Bytes())
	}

	// Idempotent: importing again adds nothing and the export is stable.
	if _, points, err = s.ImportDir(st); err != nil || points != 0 {
		t.Fatalf("re-import = (%d points, %v), want (0, nil)", points, err)
	}
	var again bytes.Buffer
	if err := s.ExportJournal(&again, sum); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), original) {
		t.Fatal("export changed after re-import")
	}
}

// TestSelectFilters drives the query contract: filters on plan, panel,
// policy, pattern, mesh and load ranges, combined.
func TestSelectFilters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s := openStore(t, path)
	defer s.Close()
	m := testManifest(t, "fig7", 0.1, 0.2) // 3 policies x 2 loads
	sum, err := s.AddManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumPoints(); i++ {
		if err := s.AddPoint(sum, i, fakeResult(t, m, i)); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 6},
		{"by name", Query{Plan: "fig7"}, 6},
		{"by sum", Query{Plan: sum}, 6},
		{"policy", Query{Policy: "rmsd"}, 2},
		{"policy+load", Query{Policy: "dmsd", MinLoad: 0.15}, 1},
		{"load band", Query{MinLoad: 0.05, MaxLoad: 0.15}, 3},
		{"pattern", Query{Pattern: "uniform"}, 6},
		{"pattern miss", Query{Pattern: "tornado"}, 0},
		{"mesh", Query{Mesh: "5x5"}, 6},
		{"mesh miss", Query{Mesh: "8x8"}, 0},
		{"panel", Query{Panel: "uniform"}, 6},
		{"limit", Query{Limit: 4}, 4},
	}
	for _, tc := range cases {
		pts, err := s.Select(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(pts) != tc.want {
			t.Errorf("%s: %d points, want %d", tc.name, len(pts), tc.want)
		}
	}
	if _, err := s.Select(Query{Plan: "nosuch"}); err == nil {
		t.Error("select on unknown plan did not error")
	}

	// Points carry their location: panel label and index.
	pts, _ := s.Select(Query{Policy: "nodvfs"})
	for _, p := range pts {
		if p.Panel != "uniform" || p.Name != "fig7" || p.Sum != sum {
			t.Errorf("point location = %+v", p)
		}
	}
}

// TestParseQuery pins the HTTP parameter vocabulary, including the
// rejection of unknown keys.
func TestParseQuery(t *testing.T) {
	q, err := ParseQuery(map[string]string{"fig": "fig7", "policy": "rmsd", "min_load": "0.2", "limit": "5"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Plan != "fig7" || q.Policy != "rmsd" || q.MinLoad != 0.2 || q.Limit != 5 {
		t.Fatalf("parsed = %+v", q)
	}
	if _, err := ParseQuery(map[string]string{"polcy": "rmsd"}); err == nil {
		t.Fatal("typoed key accepted")
	}
	if _, err := ParseQuery(map[string]string{"min_load": "abc"}); err == nil {
		t.Fatal("bad min_load accepted")
	}
}
