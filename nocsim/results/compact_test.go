package results

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/nocsim/manifest"
)

// TestCompactRoundTrip pins the compaction contract: superseded plans
// and duplicate point lines leave the file, the file shrinks, and every
// query surface — Plans, Resolve, PointsOf, ExportJournal — answers
// byte-identically before and after, across a reopen.
func TestCompactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s := openStore(t, path)

	// An old plan under the name "fig7", fully ingested…
	old := testManifest(t, "fig7", 0.1, 0.2)
	oldSum, err := s.AddManifest(old)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < old.NumPoints(); i++ {
		if err := s.AddPoint(oldSum, i, fakeResult(t, old, i)); err != nil {
			t.Fatal(err)
		}
	}
	// …superseded by a re-planned "fig7", plus an unrelated live plan.
	cur := testManifest(t, "fig7", 0.1, 0.2, 0.3)
	curSum, err := s.AddManifest(cur)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cur.NumPoints(); i++ {
		if err := s.AddPoint(curSum, i, fakeResult(t, cur, i)); err != nil {
			t.Fatal(err)
		}
	}
	live := testManifest(t, "baseline", 0.4)
	liveSum, err := s.AddManifest(live)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < live.NumPoints(); i++ {
		if err := s.AddPoint(liveSum, i, fakeResult(t, live, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A duplicate point line on disk — the kind a re-imported journal
	// leaves behind. The index collapses it; only compaction removes it.
	dup, err := json.Marshal(&record{Kind: kindPoint, Sum: curSum,
		Point: &manifest.Record{Index: 0, Result: fakeResult(t, cur, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(dup, '\n')); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	exportOf := func(s *Store, sum string) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := s.ExportJournal(&buf, sum); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	s = openStore(t, path)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	wantCur, wantLive := exportOf(s, curSum), exportOf(s, liveSum)

	droppedPlans, droppedPoints, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if droppedPlans != 1 {
		t.Fatalf("dropped %d plans, want 1 (the superseded fig7)", droppedPlans)
	}
	// The superseded plan's points plus the duplicate line.
	if want := old.NumPoints() + 1; droppedPoints != want {
		t.Fatalf("dropped %d point lines, want %d", droppedPoints, want)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("file did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}

	check := func(s *Store, label string, wantPlans int) {
		t.Helper()
		if got := exportOf(s, curSum); !bytes.Equal(got, wantCur) {
			t.Fatalf("%s: fig7 export changed across compaction", label)
		}
		if got := exportOf(s, liveSum); !bytes.Equal(got, wantLive) {
			t.Fatalf("%s: baseline export changed across compaction", label)
		}
		if sum, ok := s.Resolve("fig7"); !ok || sum != curSum {
			t.Fatalf("%s: Resolve(fig7) = (%s, %v), want %s", label, sum, ok, curSum)
		}
		if _, ok := s.Resolve(oldSum); ok {
			t.Fatalf("%s: superseded plan %s still resolvable", label, oldSum)
		}
		plans := s.Plans()
		if len(plans) != wantPlans {
			t.Fatalf("%s: %d plans, want %d: %+v", label, len(plans), wantPlans, plans)
		}
		for _, p := range plans {
			if (p.Sum == curSum || p.Sum == liveSum) && !p.Complete {
				t.Fatalf("%s: plan %s incomplete after compaction: %+v", label, p.Sum, p)
			}
		}
	}
	check(s, "compacted store", 2)

	// The compacted store stays writable: appends land after the rewrite.
	extra := testManifest(t, "extra", 0.5)
	extraSum, err := s.AddManifest(extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPoint(extraSum, 0, fakeResult(t, extra, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, path)
	defer s2.Close()
	check(s2, "reopened store", 3)
	if pts, ok := s2.PointsOf(extraSum); !ok || len(pts) != 1 {
		t.Fatalf("post-compaction append lost: (%d, %v)", len(pts), ok)
	}
}

// TestCompactRefusesReadOnly pins the guard: a follower must never
// rewrite the file under the writer.
func TestCompactRefusesReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s := openStore(t, path)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ro.Compact(); err == nil {
		t.Fatal("read-only compaction accepted")
	}
	if _, _, err := s.Compact(); err == nil {
		t.Fatal("closed-store compaction accepted")
	}
}
