// Package results is the persistent, queryable results layer behind the
// results service: one single-file store holding every completed
// simulation point of every plan ever ingested, as the durable source of
// truth that many readers can query concurrently while sweeps are still
// running.
//
// The container ships no database, so the store is built on the same
// line-per-record JSON codec as the manifest journals: an append-only
// file of records — each either a full manifest (a plan, identified by
// its manifest.Sum fingerprint) or one completed point of a plan — with
// every append flushed and fsynced, torn tails skipped on load, and an
// in-memory index (by plan, by name, by point) rebuilt on open. The
// query contract, not the storage engine, is the interface: filter
// points by manifest/panel/policy/pattern/app/mesh/load, fetch a plan's
// complete result set for rendering, and export a plan back out as a
// byte-identical points journal.
//
// Concurrency model: exactly one writer may have the file open
// read-write (the queue coordinator ingesting live results, or a
// backfill import); any number of read-only stores may follow the same
// file concurrently, picking up newly appended records with Refresh.
// A read-only open never truncates the live writer's torn tail — it
// simply stops at the last complete line and resumes there.
package results

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/nocsim"
	"repro/nocsim/manifest"
)

// record is one line of the store file. Exactly one of Manifest and
// Point is set, per Kind.
type record struct {
	// Kind is "manifest" (a plan registration) or "point" (one completed
	// point of a previously registered plan).
	Kind string `json:"kind"`
	// Sum is the plan fingerprint (manifest.Sum) the record belongs to.
	Sum string `json:"sum"`
	// Manifest is the full plan, for kind "manifest".
	Manifest *manifest.Manifest `json:"manifest,omitempty"`
	// Point is the completed point in exactly the journal's Record form,
	// for kind "point" — which is what makes exporting a plan back out as
	// a points journal byte-identical.
	Point *manifest.Record `json:"point,omitempty"`
}

const (
	kindManifest = "manifest"
	kindPoint    = "point"
)

// plan is the in-memory index of one ingested manifest.
type plan struct {
	sum    string
	m      *manifest.Manifest
	offs   []int // panel offsets, for point → panel label resolution
	points map[int]nocsim.Result
}

// PlanInfo summarizes one stored plan for listings and the dashboard.
type PlanInfo struct {
	Sum    string `json:"sum"`
	Name   string `json:"name"`
	Quick  bool   `json:"quick,omitempty"`
	Points int    `json:"points"`
	Seed   int64  `json:"seed"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	// Complete reports whether every point of the plan is stored — the
	// precondition for rendering its tables.
	Complete bool `json:"complete"`
}

// Store is the single-file results store. All methods are safe for
// concurrent use.
type Store struct {
	path     string
	readOnly bool

	mu    sync.Mutex
	f     *os.File // nil in read-only mode and after Close
	w     *bufio.Writer
	off   int64               // bytes of the file consumed by the index
	plans map[string]*plan    // keyed by manifest.Sum
	order []string            // sums in first-ingested order
	names map[string][]string // manifest name -> sums in first-ingested order
}

// Open opens (creating if needed) the store for reading and writing:
// the mode for the single ingesting process. Any torn tail a crash left
// behind is truncated before the index is rebuilt.
func Open(path string) (*Store, error) {
	if err := manifest.TruncatePartialTail(path); err != nil {
		return nil, err
	}
	s := newStore(path, false)
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// OpenReadOnly opens the store as a follower: queries only, no appends,
// and never a truncation (the live writer owns the file's tail). A
// missing file is an empty store; Refresh picks the records up once the
// writer creates it.
func OpenReadOnly(path string) (*Store, error) {
	s := newStore(path, true)
	if err := s.replay(); err != nil {
		return nil, err
	}
	return s, nil
}

func newStore(path string, readOnly bool) *Store {
	return &Store{
		path:     path,
		readOnly: readOnly,
		plans:    map[string]*plan{},
		names:    map[string][]string{},
	}
}

// replay scans the file from s.off, indexing every complete line, and
// advances s.off past the consumed bytes. A torn tail (no trailing
// newline yet) is left for the next call. Callers hold s.mu (or own the
// store exclusively, during open).
func (s *Store) replay() error {
	f, err := os.Open(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(s.off, io.SeekStart); err != nil {
		return err
	}
	rd := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := rd.ReadBytes('\n')
		if err == io.EOF {
			return nil // torn or empty tail: wait for the writer to finish it
		}
		if err != nil {
			return err
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("results: %s at offset %d: %w", s.path, s.off, err)
		}
		if err := s.indexLocked(&rec); err != nil {
			return fmt.Errorf("results: %s at offset %d: %w", s.path, s.off, err)
		}
		s.off += int64(len(line))
	}
}

// indexLocked folds one record into the in-memory index. Callers hold
// s.mu.
func (s *Store) indexLocked(rec *record) error {
	switch rec.Kind {
	case kindManifest:
		if rec.Manifest == nil || rec.Sum == "" {
			return errors.New("manifest record without manifest or sum")
		}
		if _, ok := s.plans[rec.Sum]; ok {
			return nil // re-ingested plan: first registration stands
		}
		p := &plan{
			sum:    rec.Sum,
			m:      rec.Manifest,
			offs:   rec.Manifest.Offsets(),
			points: map[int]nocsim.Result{},
		}
		s.plans[rec.Sum] = p
		s.order = append(s.order, rec.Sum)
		s.names[p.m.Name] = append(s.names[p.m.Name], rec.Sum)
		return nil
	case kindPoint:
		if rec.Point == nil || rec.Sum == "" {
			return errors.New("point record without point or sum")
		}
		p, ok := s.plans[rec.Sum]
		if !ok {
			return fmt.Errorf("point for unregistered plan %s", rec.Sum)
		}
		i := rec.Point.Index
		if i < 0 || i >= p.m.NumPoints() {
			return fmt.Errorf("plan %s point %d out of range [0, %d)", rec.Sum, i, p.m.NumPoints())
		}
		if _, ok := p.points[i]; ok {
			return nil // duplicate: first result wins, like the journal
		}
		p.points[i] = rec.Point.Result
		return nil
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
}

// appendLocked writes one record line durably: marshal, write, flush,
// fsync. Callers hold s.mu.
func (s *Store) appendLocked(rec *record) error {
	if s.readOnly {
		return errors.New("results: store is read-only")
	}
	if s.f == nil {
		return errors.New("results: store is closed")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// AddManifest registers a plan, returning its fingerprint. Re-adding a
// plan already stored (same sum) is a no-op — restarted coordinators and
// repeated backfills converge instead of duplicating.
func (s *Store) AddManifest(m *manifest.Manifest) (string, error) {
	sum, err := manifest.Sum(m)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.plans[sum]; ok {
		return sum, nil
	}
	rec := &record{Kind: kindManifest, Sum: sum, Manifest: m}
	if err := s.appendLocked(rec); err != nil {
		return "", err
	}
	return sum, s.indexLocked(rec)
}

// AddPoint stores one completed point of a registered plan. The first
// result for a (plan, index) pair wins; a duplicate is acknowledged
// without a second line, so exporting the plan yields each point exactly
// once.
func (s *Store) AddPoint(sum string, index int, r nocsim.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.plans[sum]
	if !ok {
		return fmt.Errorf("results: point for unregistered plan %s", sum)
	}
	if index < 0 || index >= p.m.NumPoints() {
		return fmt.Errorf("results: plan %s point %d out of range [0, %d)", sum, index, p.m.NumPoints())
	}
	if _, ok := p.points[index]; ok {
		return nil
	}
	rec := &record{Kind: kindPoint, Sum: sum, Point: &manifest.Record{Index: index, Result: r}}
	if err := s.appendLocked(rec); err != nil {
		return err
	}
	return s.indexLocked(rec)
}

// Refresh folds in any records other processes appended since the last
// open or Refresh — the read-only follower's poll. On a writable store
// it is a cheap no-op (the writer's own appends are already indexed).
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.readOnly {
		return nil
	}
	return s.replay()
}

// Plans lists the stored plans in first-ingested order.
func (s *Store) Plans() []PlanInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PlanInfo, 0, len(s.order))
	for _, sum := range s.order {
		out = append(out, s.plans[sum].info())
	}
	return out
}

func (p *plan) info() PlanInfo {
	total := p.m.NumPoints()
	return PlanInfo{
		Sum: p.sum, Name: p.m.Name, Quick: p.m.Quick, Points: p.m.Points, Seed: p.m.Seed,
		Total: total, Done: len(p.points), Complete: len(p.points) == total,
	}
}

// Manifest returns a stored plan by fingerprint.
func (s *Store) Manifest(sum string) (*manifest.Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.plans[sum]
	if !ok {
		return nil, false
	}
	return p.m, true
}

// Resolve maps a plan reference — a fingerprint, or a manifest name —
// to a stored plan's fingerprint. A name picks the most recently
// ingested plan with that name (new plans supersede old ones in the
// service's eyes; older ones stay addressable by sum).
func (s *Store) Resolve(ref string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.plans[ref]; ok {
		return ref, true
	}
	sums := s.names[ref]
	if len(sums) == 0 {
		return "", false
	}
	return sums[len(sums)-1], true
}

// PointsOf returns a copy of the plan's stored results keyed by point
// index.
func (s *Store) PointsOf(sum string) (map[int]nocsim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.plans[sum]
	if !ok {
		return nil, false
	}
	out := make(map[int]nocsim.Result, len(p.points))
	for i, r := range p.points {
		out[i] = r
	}
	return out, true
}

// Complete reports whether every point of the plan is stored, and the
// plan's manifest. Rendering a plan's tables starts here.
func (s *Store) Complete(sum string) (m *manifest.Manifest, done, total int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.plans[sum]
	if !ok {
		return nil, 0, 0, false
	}
	return p.m, len(p.points), p.m.NumPoints(), true
}

// ExportJournal writes the plan's points, sorted by index, in exactly
// the manifest journal's line format — the byte-identical way back out
// of the store: exporting a plan that was imported from a (serially
// written) journal reproduces that journal byte for byte.
func (s *Store) ExportJournal(w io.Writer, sum string) error {
	s.mu.Lock()
	p, ok := s.plans[sum]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("results: unknown plan %s", sum)
	}
	idx := make([]int, 0, len(p.points))
	for i := range p.points {
		idx = append(idx, i)
	}
	recs := make([]manifest.Record, 0, len(idx))
	sort.Ints(idx)
	for _, i := range idx {
		recs = append(recs, manifest.Record{Index: i, Result: p.points[i]})
	}
	s.mu.Unlock()
	bw := bufio.NewWriter(w)
	for i := range recs {
		data, err := json.Marshal(&recs[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Compact rewrites the store file down to its live contents: for every
// manifest name only the most recently ingested plan survives (older
// same-name plans are superseded — Resolve already ignores them), and
// every surviving plan is written as one manifest record followed by its
// points in index order, which drops duplicate point lines the index
// collapsed on ingest. Queries and ExportJournal answer identically
// before and after; only dead bytes leave the file.
//
// Compact requires the writable store and must not run while read-only
// followers are attached: the rewrite replaces the file they are
// tailing, and their saved offsets would point into the old bytes. Run
// it from the one-shot maintenance mode (resultsd -compact), like
// imports.
func (s *Store) Compact() (droppedPlans, droppedPoints int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return 0, 0, errors.New("results: store is read-only")
	}
	if s.f == nil {
		return 0, 0, errors.New("results: store is closed")
	}
	if err := s.w.Flush(); err != nil {
		return 0, 0, err
	}
	if err := s.f.Sync(); err != nil {
		return 0, 0, err
	}

	// The file is the only witness of duplicate point lines (the index
	// collapsed them on ingest), so count its point records for the
	// dropped-points report.
	pointLines, err := s.countPointLinesLocked()
	if err != nil {
		return 0, 0, err
	}

	keep := map[string]bool{}
	for _, sums := range s.names {
		keep[sums[len(sums)-1]] = true
	}

	tmp := s.path + ".compact"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	bw := bufio.NewWriter(tf)
	var written int64
	keptPoints := 0
	writeRec := func(rec *record) error {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		n, err := bw.Write(append(data, '\n'))
		written += int64(n)
		return err
	}
	for _, sum := range s.order {
		if !keep[sum] {
			continue
		}
		p := s.plans[sum]
		if err := writeRec(&record{Kind: kindManifest, Sum: sum, Manifest: p.m}); err != nil {
			tf.Close()
			os.Remove(tmp)
			return 0, 0, err
		}
		idx := make([]int, 0, len(p.points))
		for i := range p.points {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			r := p.points[i]
			if err := writeRec(&record{Kind: kindPoint, Sum: sum, Point: &manifest.Record{Index: i, Result: r}}); err != nil {
				tf.Close()
				os.Remove(tmp)
				return 0, 0, err
			}
			keptPoints++
		}
	}
	if err := bw.Flush(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}

	// Swap the append handle onto the new file; the old handle still
	// points at the replaced (unlinked) bytes.
	old := s.f
	s.f = nil
	old.Close()
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, 0, err
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.off = written

	order := make([]string, 0, len(keep))
	plans := make(map[string]*plan, len(keep))
	names := make(map[string][]string, len(keep))
	for _, sum := range s.order {
		if !keep[sum] {
			droppedPlans++
			continue
		}
		p := s.plans[sum]
		order = append(order, sum)
		plans[sum] = p
		names[p.m.Name] = append(names[p.m.Name], sum)
	}
	s.order, s.plans, s.names = order, plans, names
	return droppedPlans, pointLines - keptPoints, nil
}

// countPointLinesLocked scans the (flushed) file and counts its point
// records. Callers hold s.mu.
func (s *Store) countPointLinesLocked() (int, error) {
	f, err := os.Open(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	rd := bufio.NewReaderSize(f, 1<<20)
	n := 0
	for {
		line, err := rd.ReadBytes('\n')
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		var k struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &k); err != nil {
			return 0, fmt.Errorf("results: %s: %w", s.path, err)
		}
		if k.Kind == kindPoint {
			n++
		}
	}
}

// Sync flushes and fsyncs the file (writable stores only).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly || s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes, fsyncs and closes the store. Closing twice (or closing
// a read-only store) is a no-op, so shutdown paths can close defensively.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly || s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	if err := s.w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
