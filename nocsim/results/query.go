package results

import (
	"fmt"
	"sort"
	"strings"

	"repro/nocsim"
)

// Query selects stored points. Every zero-valued field means "any";
// set fields combine with AND. Scenario-level filters (policy, pattern,
// app, mesh, load) match against the fully resolved scenario each result
// carries, so they need no knowledge of how the plan laid out its grid.
type Query struct {
	// Plan restricts to one plan: a fingerprint or a manifest name (a
	// name picks the latest plan with that name, as Store.Resolve does).
	Plan string `json:"plan,omitempty"`
	// Panel restricts to one panel label within the plan(s).
	Panel string `json:"panel,omitempty"`
	// Policy, Pattern, App and Mesh filter on the executed scenario.
	// Mesh is "WxH", e.g. "5x5".
	Policy  string `json:"policy,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	App     string `json:"app,omitempty"`
	Mesh    string `json:"mesh,omitempty"`
	// MinLoad and MaxLoad bound the operating point (inclusive); a zero
	// MaxLoad means unbounded.
	MinLoad float64 `json:"min_load,omitempty"`
	MaxLoad float64 `json:"max_load,omitempty"`
	// Limit caps the number of returned points; zero means no cap.
	Limit int `json:"limit,omitempty"`
}

// Point is one query hit: where the result lives in its plan, plus the
// result itself.
type Point struct {
	Name  string `json:"name"`
	Sum   string `json:"sum"`
	Panel string `json:"panel"`
	Index int    `json:"index"`
	nocsim.Result
}

// Select returns the stored points matching q, ordered by plan ingest
// order then point index.
func (s *Store) Select(q Query) ([]Point, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	scope := s.order
	if q.Plan != "" {
		sum := q.Plan
		if _, ok := s.plans[sum]; !ok {
			sums := s.names[q.Plan]
			if len(sums) == 0 {
				return nil, fmt.Errorf("results: unknown plan %q", q.Plan)
			}
			sum = sums[len(sums)-1]
		}
		scope = []string{sum}
	}
	var out []Point
	for _, sum := range scope {
		p := s.plans[sum]
		idx := make([]int, 0, len(p.points))
		for i := range p.points {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			r := p.points[i]
			label := p.label(i)
			if !q.matches(label, &r) {
				continue
			}
			out = append(out, Point{Name: p.m.Name, Sum: sum, Panel: label, Index: i, Result: r})
			if q.Limit > 0 && len(out) >= q.Limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// label returns the panel label of global point index i.
func (p *plan) label(i int) string {
	pi := sort.SearchInts(p.offs[1:], i+1)
	if pi >= len(p.m.Panels) {
		return ""
	}
	return p.m.Panels[pi].Label
}

func (q *Query) matches(panel string, r *nocsim.Result) bool {
	sc := &r.Scenario
	switch {
	case q.Panel != "" && panel != q.Panel:
		return false
	case q.Policy != "" && string(sc.Policy) != q.Policy:
		return false
	case q.Pattern != "" && sc.Pattern != q.Pattern:
		return false
	case q.App != "" && sc.App != q.App:
		return false
	case q.Mesh != "" && fmt.Sprintf("%dx%d", sc.Mesh.Width, sc.Mesh.Height) != q.Mesh:
		return false
	case sc.Load < q.MinLoad:
		return false
	case q.MaxLoad > 0 && sc.Load > q.MaxLoad:
		return false
	}
	return true
}

// ParseQuery builds a Query from URL-style key=value parameters — the
// shared vocabulary of the HTTP API and tests. Unknown keys error, so a
// typoed filter cannot silently select everything.
func ParseQuery(params map[string]string) (Query, error) {
	var q Query
	for k, v := range params {
		switch k {
		case "plan", "fig", "manifest":
			q.Plan = v
		case "panel":
			q.Panel = v
		case "policy":
			q.Policy = v
		case "pattern":
			q.Pattern = v
		case "app":
			q.App = v
		case "mesh":
			q.Mesh = v
		case "min_load":
			if _, err := fmt.Sscanf(v, "%g", &q.MinLoad); err != nil {
				return Query{}, fmt.Errorf("results: bad min_load %q", v)
			}
		case "max_load":
			if _, err := fmt.Sscanf(v, "%g", &q.MaxLoad); err != nil {
				return Query{}, fmt.Errorf("results: bad max_load %q", v)
			}
		case "limit":
			if _, err := fmt.Sscanf(v, "%d", &q.Limit); err != nil {
				return Query{}, fmt.Errorf("results: bad limit %q", v)
			}
		default:
			return Query{}, fmt.Errorf("results: unknown query parameter %q (want plan/panel/policy/pattern/app/mesh/min_load/max_load/limit)", k)
		}
	}
	if strings.Contains(q.Mesh, " ") {
		return Query{}, fmt.Errorf("results: bad mesh %q (want WxH, e.g. 5x5)", q.Mesh)
	}
	return q, nil
}
