package results

import (
	"fmt"
	"sort"

	"repro/nocsim"
	"repro/nocsim/manifest"
)

// countLocked returns how many points of the plan are stored.
func (s *Store) count(sum string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.plans[sum]; ok {
		return len(p.points)
	}
	return 0
}

// ImportJournal ingests one manifest and its completed points (a loaded
// DirStore journal) into the store, returning the plan's fingerprint and
// how many points were newly stored. Points are ingested in index order,
// so a store populated only by this import exports the same journal a
// serial run would have written, byte for byte (see ExportJournal). The
// import is idempotent: re-importing converges instead of duplicating.
func (s *Store) ImportJournal(m *manifest.Manifest, points map[int]nocsim.Result) (sum string, added int, err error) {
	sum, err = s.AddManifest(m)
	if err != nil {
		return "", 0, err
	}
	before := s.count(sum)
	idx := make([]int, 0, len(points))
	for i := range points {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		if err := s.AddPoint(sum, i, points[i]); err != nil {
			return sum, s.count(sum) - before, err
		}
	}
	return sum, s.count(sum) - before, nil
}

// ImportDir backfills every manifest stored in a DirStore directory —
// the journals accumulated by local -manifest runs and by coordinators —
// into the results store. It returns the number of manifests processed
// and points newly ingested.
func (s *Store) ImportDir(st *manifest.DirStore) (plans, points int, err error) {
	names, err := st.Names()
	if err != nil {
		return 0, 0, err
	}
	for _, name := range names {
		m, err := st.LoadManifest(name)
		if err != nil {
			return plans, points, err
		}
		if m == nil {
			continue
		}
		have, err := st.LoadPoints(name)
		if err != nil {
			return plans, points, fmt.Errorf("results: importing %s: %w", name, err)
		}
		_, added, err := s.ImportJournal(m, have)
		if err != nil {
			return plans, points, fmt.Errorf("results: importing %s: %w", name, err)
		}
		plans++
		points += added
	}
	return plans, points, nil
}
