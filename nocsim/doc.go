// Package nocsim is the public face of the repro module: a cycle-accurate
// mesh NoC simulator with a global DVFS domain, reproducing Casu &
// Giaccone, "Rate-based vs Delay-based Control for DVFS in NoC" (DATE
// 2015).
//
// The API is three ideas:
//
//   - A Scenario is one self-contained simulation job — fabric, traffic,
//     load, policy, seed — built with functional options, validated
//     eagerly, and JSON-round-trippable, so it doubles as a wire format.
//   - Run executes one scenario under a context.Context that is observed
//     all the way inside the engine loop, so runs can be cancelled
//     promptly.
//   - A Grid crosses a base scenario with loads × policies; Sweep fans
//     its points across a worker pool, and Grid.Point(i) yields the
//     self-contained scenario of any single point — the unit of work for
//     distributing sweeps across machines.
//
// # Quickstart
//
//	s, err := nocsim.New(
//		nocsim.WithPattern("uniform"),
//		nocsim.WithLoad(0.2),
//		nocsim.WithPolicy(nocsim.DMSD),
//		nocsim.WithQuick(),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	res, err := nocsim.Run(ctx, s)
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Printf("delay %.1f ns at %.1f mW\n", res.AvgDelayNs, res.AvgPowerMW)
//
// Sweeping the three policies over a load grid:
//
//	results, err := nocsim.Sweep(ctx, nocsim.Grid{
//		Base:     s,
//		Loads:    []float64{0.05, 0.1, 0.15, 0.2},
//		Policies: nocsim.AllPolicies(),
//	})
//
// # Determinism
//
// Every run is a pure function of its Scenario: the same scenario —
// including one recovered from JSON — reproduces the same Metrics bit
// for bit, for any Workers setting. Sweep derives one independent RNG
// stream per grid point from the base seed (a SplitMix64 finalizer), so
// replication and variance analysis across points see uncorrelated
// samples.
//
// Determinism extends inside a single simulation: WithStepWorkers(n)
// splits every engine step across n goroutines on a static router
// partition, so the result is bit-identical to serial stepping for any
// n. Step workers multiply against sweep-level Workers; under a leaf
// budget each simulation acquires its full worker count, so the global
// cap holds.
//
// # Calibration
//
// The RMSD and DMSD controllers need operating points (λmax, the delay
// setpoint). Run and Sweep derive them automatically with the paper's
// recipe when no Calibration is attached, and record the resolved values
// in their results; pin them with WithCalibration to skip the search —
// in particular before shipping Grid points to remote workers.
//
// # Beyond-paper workloads
//
// Three scenario families extend the paper's Poisson-only evaluation
// (the README's scenario cookbook walks through each with runnable
// commands):
//
//   - Trace replay: WithTraceCapture records every injection of a run
//     into a Trace; Trace.Save writes it as JSON, and WithTrace replays
//     the file bit-identically — replay consumes no randomness, so the
//     network evolution reproduces the capture run exactly.
//   - Bursty sources: WithMMPP and WithParetoOnOff layer an on-off
//     modulation under any synthetic pattern. The long-run mean rate
//     stays exactly the scenario's Load; burstiness only redistributes
//     the same traffic in time.
//   - Heterogeneous meshes: non-square dimensions (WithMesh accepts any
//     width × height ≥ 2), masked faulty channels routed around by a
//     fault-aware minimal table (WithFaultyLinks), and rectangular V/F
//     islands running at a fraction of the network clock (WithIslands).
//
// # JSON wire form
//
// Scenario marshals losslessly to JSON; a partial hand-written document
// is completed by Normalized and checked by Validate (Run, Sweep and the
// CLIs do both). The reference below lists every wire field with its
// default, its validation rule, and the cmd/nocsim flag that sets it
// ("—" when only the API or a JSON file can).
//
// Fabric (object "mesh"):
//
//	mesh.width, mesh.height   int     default 5x5 as a pair (an app scenario
//	                                  defaults to the mesh its graph is mapped
//	                                  on). Naming only one of the two is
//	                                  rejected; both must be ≥ 2. Any
//	                                  rectangle is legal — meshes need not be
//	                                  square. Flags -width, -height.
//	mesh.vcs                  int     virtual channels per input port;
//	                                  default 8, must be ≥ 1. Flag -vcs.
//	mesh.buf_depth            int     flit slots per VC buffer; default 4,
//	                                  must be ≥ 1. Flag -buffers.
//	mesh.packet_size          int     packet length in flits; default 20,
//	                                  must be ≥ 1. Flag -packet.
//	mesh.routing              string  "xy" (default), "yx" or "o1turn".
//	                                  Flag -routing.
//
// Traffic — exactly one of pattern, app and trace:
//
//	pattern       string   synthetic pattern: "uniform" (default when app
//	                       and trace are empty), "tornado", "bitcomp",
//	                       "transpose", "neighbor", "bitrev", "shuffle".
//	                       Some patterns constrain the mesh (e.g.
//	                       "transpose" needs width == height); the pattern
//	                       constructor's error is reported by Validate.
//	                       Flag -pattern.
//	app           string   multimedia workload "h264" or "vce"; the mesh
//	                       must match the app's mapping (4x4 for h264,
//	                       5x5 for vce). Flag -app.
//	peak_rate     float    busiest-node injection rate at app speed 1.0;
//	                       default 0.40, must be ≥ 0. Flag —.
//	trace         string   path of a recorded injection trace to replay
//	                       (captured with WithTraceCapture / the
//	                       -capture-trace flag and saved with Trace.Save).
//	                       Excludes pattern, app and source; RMSD/DMSD
//	                       trace scenarios must pin a calibration (the
//	                       saturation search varies load, which a fixed
//	                       trace ignores). The file is read at Run time,
//	                       not at validation. Flag -trace.
//	source        object   bursty generation process layered under the
//	                       pattern (patterns only — not apps or traces):
//	                       source.kind          "mmpp" or "pareto" (required)
//	                       source.burst_ratio   ON-rate multiplier β > 1,
//	                                            default 4
//	                       source.burst_len     mean ON sojourn in node
//	                                            cycles ≥ 1, default 64
//	                       source.pareto_alpha  sojourn tail index in (1, 2],
//	                                            default 1.5 (pareto only)
//	                       The ON rate β × load must stay below one packet
//	                       per node cycle, checked when the injector is
//	                       built. Flags -source, -burst-ratio, -burst-len,
//	                       -pareto-alpha.
//
// Heterogeneity:
//
//	faulty_links  []string directed channels masked out of the fabric,
//	                       each "from>to" with from/to the node ids of
//	                       adjacent routers (mask both directions for a
//	                       fully dead wire). Routing around faults needs a
//	                       deterministic table, so "o1turn" is rejected; a
//	                       fault set that disconnects the mesh fails at
//	                       Run time. Flag -faulty-links (comma-separated).
//	islands       []object rectangular V/F islands, later entries winning
//	                       on overlap:
//	                       x0, y0, x1, y1  inclusive corners, inside the
//	                                       mesh with x0 ≤ x1, y0 ≤ y1
//	                       speed           clock fraction in (0, 1]
//	                       Flag -islands ("x0,y0,x1,y1@speed;...").
//
// Operating point:
//
//	load          float    injection rate in flits/node/node-cycle for
//	                       patterns, relative speed (1.0 ≡ 75 frames/s)
//	                       for apps; default 0.2, must be > 0. Ignored by
//	                       trace replay (the trace fixes the load).
//	                       Flags -rate, -speed.
//	policy        string   "nodvfs" (default), "rmsd" or "dmsd".
//	                       Flag -policy.
//	calibration   object   pinned policy operating points; omitted → Run
//	                       calibrates automatically and records the result:
//	                       calibration.saturation_rate  measured saturation
//	                                                    in flits/node/cycle
//	                       calibration.lambda_max       RMSD target rate,
//	                                                    > 0 when policy is
//	                                                    rmsd
//	                       calibration.target_delay_ns  DMSD setpoint, > 0
//	                                                    when policy is dmsd
//	                       Flags -lambda-max, -target (partial fill).
//
// Clocks:
//
//	fnode_hz      float    node clock in Hz; default 1e9, must be > 0.
//	                       Flag —.
//	fmin_hz       float    DVFS actuation floor; default 333e6, must be
//	                       > 0. Flag —.
//	fmax_hz       float    DVFS actuation ceiling; default 1e9, must be
//	                       ≥ fmin_hz. Flag —.
//
// Controller details:
//
//	control_period int     DVFS update period in node cycles; 0 (default)
//	                       = the paper's 10 000, or the shortened Quick
//	                       period; must be ≥ 0. Flag —.
//	ki, kp         float   DMSD PI gains; 0 = the paper's published
//	                       values; must be ≥ 0. Flag —.
//	freq_levels    int     discrete frequency levels; 0 (default) =
//	                       continuous actuation, otherwise ≥ 2. Flag —.
//	transient      bool    capture the cold-start transient instead of the
//	                       steady state (per-period trace in the Result).
//	                       Flag —.
//
// Execution:
//
//	seed          int      root RNG seed; default 1. Flag -seed.
//	quick         bool     shrink warmup/measurement windows ~4x.
//	                       Flag -quick.
//	workers       int      concurrent points in Sweep/Calibrate (0 =
//	                       GOMAXPROCS, 1 = serial); must be ≥ 0; results
//	                       are identical for every value. Flag —.
//	step_workers  int      engine threads per simulation (0 = process
//	                       default, 1 = serial); must be ≥ 0; results are
//	                       bit-identical for every value. Flag —.
//
// Runtime attachments (a PacketLog from WithPacketLog, a Trace sink from
// WithTraceCapture) are deliberately not part of the wire form: they do
// not survive JSON marshalling, and they force sweeps to run serially.
//
// The nocsim/manifest subpackage builds on Grid: a Manifest bundles
// resolved grids into one globally indexed list of points with a
// crash-safe on-disk journal — the shared job layer behind restartable
// figure runs and the distributed work-queue (internal/queue,
// cmd/nocsimd).
package nocsim
