// Package nocsim is the public face of the repro module: a cycle-accurate
// mesh NoC simulator with a global DVFS domain, reproducing Casu &
// Giaccone, "Rate-based vs Delay-based Control for DVFS in NoC" (DATE
// 2015).
//
// The API is three ideas:
//
//   - A Scenario is one self-contained simulation job — fabric, traffic,
//     load, policy, seed — built with functional options, validated
//     eagerly, and JSON-round-trippable, so it doubles as a wire format.
//   - Run executes one scenario under a context.Context that is observed
//     all the way inside the engine loop, so runs can be cancelled
//     promptly.
//   - A Grid crosses a base scenario with loads × policies; Sweep fans
//     its points across a worker pool, and Grid.Point(i) yields the
//     self-contained scenario of any single point — the unit of work for
//     distributing sweeps across machines.
//
// # Quickstart
//
//	s, err := nocsim.New(
//		nocsim.WithPattern("uniform"),
//		nocsim.WithLoad(0.2),
//		nocsim.WithPolicy(nocsim.DMSD),
//		nocsim.WithQuick(),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	res, err := nocsim.Run(ctx, s)
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Printf("delay %.1f ns at %.1f mW\n", res.AvgDelayNs, res.AvgPowerMW)
//
// Sweeping the three policies over a load grid:
//
//	results, err := nocsim.Sweep(ctx, nocsim.Grid{
//		Base:     s,
//		Loads:    []float64{0.05, 0.1, 0.15, 0.2},
//		Policies: nocsim.AllPolicies(),
//	})
//
// # Determinism
//
// Every run is a pure function of its Scenario: the same scenario —
// including one recovered from JSON — reproduces the same Metrics bit
// for bit, for any Workers setting. Sweep derives one independent RNG
// stream per grid point from the base seed (a SplitMix64 finalizer), so
// replication and variance analysis across points see uncorrelated
// samples.
//
// Determinism extends inside a single simulation: WithStepWorkers(n)
// splits every engine step across n goroutines on a static router
// partition, so the result is bit-identical to serial stepping for any
// n. Step workers multiply against sweep-level Workers; under a leaf
// budget each simulation acquires its full worker count, so the global
// cap holds.
//
// # Calibration
//
// The RMSD and DMSD controllers need operating points (λmax, the delay
// setpoint). Run and Sweep derive them automatically with the paper's
// recipe when no Calibration is attached, and record the resolved values
// in their results; pin them with WithCalibration to skip the search —
// in particular before shipping Grid points to remote workers.
//
// The nocsim/manifest subpackage builds on Grid: a Manifest bundles
// resolved grids into one globally indexed list of points with a
// crash-safe on-disk journal — the shared job layer behind restartable
// figure runs and the distributed work-queue (internal/queue,
// cmd/nocsimd).
package nocsim
