package nocsim

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"
)

// quickBase returns a small fast scenario with a pinned calibration, so
// tests exercise single runs rather than the saturation search.
func quickBase(t *testing.T, opts ...Option) Scenario {
	t.Helper()
	base := []Option{
		WithPattern("uniform"),
		WithLoad(0.15),
		WithQuick(),
		WithCalibration(Calibration{SaturationRate: 0.42, LambdaMax: 0.378, TargetDelayNs: 150}),
	}
	s, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// metricsJSON renders the measured part of a result for byte-exact
// comparison (Meta is excluded: wall time legitimately differs).
func metricsJSON(t *testing.T, r Result) string {
	t.Helper()
	data, err := json.Marshal(r.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRunAlreadyCancelled: a context that is cancelled before Run is
// called must return ctx.Err() promptly, without simulating anything.
func TestRunAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, quickBase(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled Run took %v, want prompt return", d)
	}
}

// TestRunMidRunCancel: cancelling while the engine loop is running must
// abort the simulation promptly with ctx.Err() and leak no goroutines.
func TestRunMidRunCancel(t *testing.T) {
	// Full (non-quick) windows on a loaded 8x8 mesh: several seconds of
	// serial work, so a 100 ms cancel lands mid-run with a wide margin.
	s, err := New(
		WithPattern("uniform"),
		WithMesh(8, 8),
		WithLoad(0.3),
	)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(100*time.Millisecond, cancel)

	start := time.Now()
	_, err = Run(ctx, s)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("mid-run cancel returned after %v, want prompt return", elapsed)
	}
	waitForGoroutines(t, before)
}

// TestSweepMidRunCancel: cancelling a Sweep aborts its worker pool and
// every in-flight point, returns ctx.Err(), and leaks no goroutines.
func TestSweepMidRunCancel(t *testing.T) {
	s, err := New(
		WithPattern("uniform"),
		WithMesh(8, 8),
		WithLoad(0.3),
		WithWorkers(4),
		WithCalibration(Calibration{SaturationRate: 0.42, LambdaMax: 0.378, TargetDelayNs: 150}),
	)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(100*time.Millisecond, cancel)

	start := time.Now()
	_, err = Sweep(ctx, Grid{
		Base:     s,
		Loads:    []float64{0.1, 0.2, 0.3, 0.35},
		Policies: []PolicyKind{NoDVFS, RMSD},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("cancelled Sweep returned after %v, want prompt return", elapsed)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines asserts the goroutine count returns to the baseline
// (with a little slack for runtime helpers) within a grace period.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunReproducible: the same scenario run twice yields byte-identical
// metrics — the determinism contract behind the wire form.
func TestRunReproducible(t *testing.T) {
	s := quickBase(t)
	a, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if metricsJSON(t, a) != metricsJSON(t, b) {
		t.Errorf("two runs of the same scenario differ:\n%s\n%s", metricsJSON(t, a), metricsJSON(t, b))
	}
}

// TestStepWorkersBitIdentical is the public determinism contract of
// WithStepWorkers: intra-simulation parallelism must not change a single
// metric bit, and the setting must survive the JSON wire form.
func TestStepWorkersBitIdentical(t *testing.T) {
	serial, err := Run(context.Background(), quickBase(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		s := quickBase(t, WithStepWorkers(w))
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.StepWorkers != w {
			t.Fatalf("step_workers lost on the wire: %d, want %d", back.StepWorkers, w)
		}
		res, err := Run(context.Background(), back)
		if err != nil {
			t.Fatal(err)
		}
		if metricsJSON(t, res) != metricsJSON(t, serial) {
			t.Errorf("StepWorkers=%d metrics differ from serial:\nparallel %s\nserial   %s",
				w, metricsJSON(t, res), metricsJSON(t, serial))
		}
		if res.Meta.StepWorkers != w {
			t.Errorf("Meta.StepWorkers = %d, want %d", res.Meta.StepWorkers, w)
		}
	}
}

// TestJSONRoundTripRunByteIdentical is the wire-form determinism
// contract end to end: a scenario that crosses the wire must Run to
// byte-identical metrics on the other side.
func TestJSONRoundTripRunByteIdentical(t *testing.T) {
	scenarios := []Scenario{
		quickBase(t),
		quickBase(t, WithPolicy(RMSD)),
	}
	if !testing.Short() {
		scenarios = append(scenarios,
			quickBase(t, WithPolicy(DMSD)),
			quickBase(t, WithPattern("neighbor"), WithLoad(0.3)),
			MustNew(WithApp("h264"), WithLoad(0.5), WithQuick(),
				WithCalibration(Calibration{SaturationRate: 0.9, LambdaMax: 0.3, TargetDelayNs: 120})),
		)
	}
	for _, s := range scenarios {
		direct, err := Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		wire, err := Run(context.Background(), back)
		if err != nil {
			t.Fatal(err)
		}
		if metricsJSON(t, direct) != metricsJSON(t, wire) {
			t.Errorf("%s/%s: run after JSON round trip differs:\ndirect %s\nwire   %s",
				s.Pattern+s.App, s.Policy, metricsJSON(t, direct), metricsJSON(t, wire))
		}
	}
}

// TestRunRecordsResolvedCalibration: auto-calibration must surface in
// the result's scenario so the run can be repeated without the search.
func TestRunRecordsResolvedCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs a saturation search")
	}
	s := MustNew(WithPattern("uniform"), WithLoad(0.15), WithPolicy(RMSD), WithQuick())
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	cal := res.Scenario.Calibration
	if cal == nil || cal.LambdaMax <= 0 || cal.TargetDelayNs <= 0 {
		t.Fatalf("resolved calibration not recorded: %+v", cal)
	}
	// Re-running the recorded scenario skips the search and reproduces
	// the metrics exactly.
	again, err := Run(context.Background(), res.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if metricsJSON(t, res) != metricsJSON(t, again) {
		t.Errorf("re-run with recorded calibration differs")
	}
}

// TestRunPacketLog: the runtime packet-log attachment records exactly
// the measured packets.
func TestRunPacketLog(t *testing.T) {
	plog := NewPacketLog(1 << 16)
	s, err := quickBase(t).With(WithPacketLog(plog))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if int64(plog.Len()) != res.Packets {
		t.Errorf("log has %d records, result measured %d packets", plog.Len(), res.Packets)
	}
}
