package nocsim

import (
	"context"
	"testing"
)

func testGrid(t *testing.T) Grid {
	t.Helper()
	return Grid{
		Base:     quickBase(t),
		Loads:    []float64{0.1, 0.2},
		Policies: []PolicyKind{NoDVFS, RMSD},
	}
}

// TestSweepMatchesPointRuns is the distributed-job contract: running
// Grid.Point(i) standalone — as a remote worker would after receiving
// the resolved grid over the wire — reproduces exactly what Sweep
// reports at index i.
func TestSweepMatchesPointRuns(t *testing.T) {
	ctx := context.Background()
	g, err := testGrid(t).Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Sweep(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != g.Len() {
		t.Fatalf("got %d results, want %d", len(results), g.Len())
	}
	for i := range results {
		p, err := g.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := Run(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if metricsJSON(t, results[i]) != metricsJSON(t, solo) {
			t.Errorf("point %d: standalone run differs from sweep:\nsweep %s\nsolo  %s",
				i, metricsJSON(t, results[i]), metricsJSON(t, solo))
		}
		if results[i].Meta.PointIndex != i {
			t.Errorf("point %d: meta index %d", i, results[i].Meta.PointIndex)
		}
	}
}

// TestSweepWorkerDeterminism: the sweep output must be byte-identical
// for every worker bound.
func TestSweepWorkerDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func(workers int) []Result {
		g := testGrid(t)
		g.Base.Workers = workers
		results, err := Sweep(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if metricsJSON(t, serial[i]) != metricsJSON(t, parallel[i]) {
			t.Errorf("point %d differs between worker counts", i)
		}
	}
}

// TestGridPointSeeds: neighbouring points get distinct derived streams,
// and the derivation is stable (pure in base seed and index).
func TestGridPointSeeds(t *testing.T) {
	g := testGrid(t)
	seen := make(map[int64]int)
	for i := 0; i < g.Len(); i++ {
		p, err := g.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		if p.Seed == g.Base.Seed {
			t.Errorf("point %d reuses the root seed", i)
		}
		if j, dup := seen[p.Seed]; dup {
			t.Errorf("points %d and %d share seed %d", j, i, p.Seed)
		}
		seen[p.Seed] = i
		again, err := g.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		if again.Seed != p.Seed {
			t.Errorf("point %d seed not stable", i)
		}
	}
}

// TestGridPointRange: out-of-range indices are rejected.
func TestGridPointRange(t *testing.T) {
	g := testGrid(t)
	if _, err := g.Point(-1); err == nil {
		t.Error("accepted point -1")
	}
	if _, err := g.Point(g.Len()); err == nil {
		t.Errorf("accepted point %d", g.Len())
	}
}

// TestSweepDefaultsToBasePoint: an empty grid is one point — the base
// scenario itself.
func TestSweepDefaultsToBasePoint(t *testing.T) {
	ctx := context.Background()
	results, err := Sweep(ctx, Grid{Base: quickBase(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if results[0].Scenario.Load != 0.15 || results[0].Scenario.Policy != NoDVFS {
		t.Errorf("base point altered: %+v", results[0].Scenario)
	}
}

// TestResolveCalibratesOnce: resolving a grid with a policy that needs
// operating points pins a calibration on the base.
func TestResolveCalibratesOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs a saturation search")
	}
	g := Grid{
		Base:     MustNew(WithPattern("uniform"), WithQuick()),
		Loads:    []float64{0.1},
		Policies: []PolicyKind{NoDVFS, DMSD},
	}
	resolved, err := g.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Base.Calibration == nil {
		t.Fatal("Resolve did not pin a calibration")
	}
	p, err := resolved.Point(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Calibration == nil || *p.Calibration != *resolved.Base.Calibration {
		t.Error("points do not carry the pinned calibration")
	}
}
