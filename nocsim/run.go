package nocsim

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Run executes one simulation and returns its measured Result. The
// context is observed all the way inside the engine loop: cancelling ctx
// aborts an in-flight simulation promptly and returns ctx.Err(), and a
// context that is already cancelled returns before any work starts.
//
// When the scenario's policy needs a calibration and none is attached,
// Run calibrates first (a saturation search plus one reference run) and
// records the resolved calibration in the returned Result's Scenario, so
// repeating or distributing the run skips the search.
func Run(ctx context.Context, s Scenario) (Result, error) {
	start := time.Now()
	s = s.normalized()
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if s.Calibration == nil && s.Policy != NoDVFS {
		cal, err := Calibrate(ctx, s)
		if err != nil {
			return Result{}, err
		}
		s.Calibration = &cal
	}
	cs, err := s.toCore()
	if err != nil {
		return Result{}, err
	}
	res, err := core.RunOne(ctx, cs, core.PolicyKind(s.Policy), s.Load, s.coreCal())
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Scenario: s,
		Metrics:  metricsFrom(res),
		Meta:     RunMeta{Seed: s.Seed, Workers: s.Workers, StepWorkers: s.stepWorkers(), WallTime: time.Since(start)},
	}
	for _, sm := range res.Trace {
		out.Trace = append(out.Trace, TraceSample{TimeNs: sm.TimeNs, FreqHz: sm.FreqHz, Volts: sm.Volts, DelayNs: sm.DelayNs})
	}
	return out, nil
}

// Calibrate runs the paper's calibration recipe for the scenario:
// measure the saturation rate (load and policy fields are ignored), set
// λmax 10% below it, and set the DMSD target to the full-speed delay at
// λmax. The search fans its probe simulations across Scenario.Workers;
// the result is identical for every worker count.
func Calibrate(ctx context.Context, s Scenario) (Calibration, error) {
	s = s.normalized()
	if err := s.Validate(); err != nil {
		return Calibration{}, err
	}
	cs, err := s.toCore()
	if err != nil {
		return Calibration{}, err
	}
	cal, err := core.Calibrate(ctx, cs)
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{
		SaturationRate: cal.SaturationRate,
		LambdaMax:      cal.LambdaMax,
		TargetDelayNs:  cal.TargetDelayNs,
	}, nil
}

// FindSaturation measures the scenario's saturation injection rate (the
// first stage of Calibrate) in flits per node per node cycle.
func FindSaturation(ctx context.Context, s Scenario) (float64, error) {
	s = s.normalized()
	if err := s.Validate(); err != nil {
		return 0, err
	}
	cs, err := s.toCore()
	if err != nil {
		return 0, err
	}
	return core.FindSaturation(ctx, cs)
}

// TheoreticalCapacity returns the scenario's theoretical channel-load
// capacity in flits per node per node cycle: the injection rate at which
// the busiest channel reaches unit load under the scenario's traffic
// matrix. It is the analytic upper bound the measured saturation rate is
// compared against.
func TheoreticalCapacity(s Scenario) (float64, error) {
	s = s.normalized()
	if err := s.Validate(); err != nil {
		return 0, err
	}
	cfg, err := s.Mesh.toNoc()
	if err != nil {
		return 0, err
	}
	var m [][]float64
	if s.TraceRef != "" {
		tr, err := trace.LoadInjection(s.TraceRef)
		if err != nil {
			return 0, err
		}
		if err := tr.Validate(cfg); err != nil {
			return 0, err
		}
		m = tr.Matrix()
	} else if s.App != "" {
		app, err := appByName(s.App)
		if err != nil {
			return 0, err
		}
		if m, err = app.Matrix(); err != nil {
			return 0, err
		}
	} else {
		p, err := traffic.ByName(s.Pattern, cfg)
		if err != nil {
			return 0, err
		}
		m = traffic.Matrix(p, cfg)
	}
	return noc.TheoreticalCapacity(cfg, m), nil
}
