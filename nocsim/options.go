package nocsim

import "fmt"

// Option mutates a Scenario under construction. Options are applied in
// order by New and With; the resulting scenario is validated eagerly, so
// an impossible combination fails at construction time, not at Run time.
type Option func(*Scenario) error

// New builds a Scenario from the paper's baseline defaults (5x5 mesh,
// uniform traffic at rate 0.2, No-DVFS, 1 GHz node clock, seed 1) with
// the given options applied, and validates it eagerly.
func New(opts ...Option) (Scenario, error) {
	s := Scenario{}.normalized()
	return s.With(opts...)
}

// MustNew is New but panics on error; for tests and package-level
// variables with options known to be valid.
func MustNew(opts ...Option) Scenario {
	s, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// With returns a copy of the scenario with the options applied and
// validated. The receiver is not modified.
func (s Scenario) With(opts ...Option) (Scenario, error) {
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return Scenario{}, err
		}
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// WithMesh sets the mesh dimensions.
func WithMesh(width, height int) Option {
	return func(s *Scenario) error {
		s.Mesh.Width, s.Mesh.Height = width, height
		return nil
	}
}

// WithVCs sets the number of virtual channels per input port.
func WithVCs(n int) Option {
	return func(s *Scenario) error { s.Mesh.VCs = n; return nil }
}

// WithBuffers sets the flit buffer depth per virtual channel.
func WithBuffers(n int) Option {
	return func(s *Scenario) error { s.Mesh.BufDepth = n; return nil }
}

// WithPacketSize sets the packet length in flits.
func WithPacketSize(n int) Option {
	return func(s *Scenario) error { s.Mesh.PacketSize = n; return nil }
}

// WithRouting selects the routing algorithm.
func WithRouting(r Routing) Option {
	return func(s *Scenario) error { s.Mesh.Routing = r; return nil }
}

// WithPattern selects a synthetic traffic pattern and clears any app.
func WithPattern(name string) Option {
	return func(s *Scenario) error {
		s.Pattern, s.App = name, ""
		return nil
	}
}

// WithApp selects a multimedia workload by name ("h264" or "vce"),
// clears any synthetic pattern, and resizes the mesh to the workload's
// mapping (4x4 for h264, 5x5 for vce).
func WithApp(name string) Option {
	return func(s *Scenario) error {
		app, err := appByName(name)
		if err != nil {
			return err
		}
		s.App, s.Pattern = name, ""
		s.Mesh.Width, s.Mesh.Height = app.Width, app.Height
		if s.PeakRate == 0 {
			s.PeakRate = defaultPeakRate()
		}
		return nil
	}
}

// WithPeakRate sets the busiest-node injection rate at app speed 1.0.
func WithPeakRate(rate float64) Option {
	return func(s *Scenario) error { s.PeakRate = rate; return nil }
}

// WithLoad sets the operating point: the injection rate for synthetic
// patterns, the relative speed for apps.
func WithLoad(load float64) Option {
	return func(s *Scenario) error { s.Load = load; return nil }
}

// WithPolicy selects the DVFS controller.
func WithPolicy(kind PolicyKind) Option {
	return func(s *Scenario) error { s.Policy = kind; return nil }
}

// WithCalibration pins the policy operating points, skipping automatic
// calibration in Run and Sweep.
func WithCalibration(c Calibration) Option {
	return func(s *Scenario) error { s.Calibration = &c; return nil }
}

// WithAutoCalibration clears any pinned calibration so Run and Sweep
// calibrate automatically.
func WithAutoCalibration() Option {
	return func(s *Scenario) error { s.Calibration = nil; return nil }
}

// WithNodeClock sets the node clock frequency in Hz.
func WithNodeClock(hz float64) Option {
	return func(s *Scenario) error { s.FNodeHz = hz; return nil }
}

// WithFreqRange bounds the DVFS actuation range in Hz.
func WithFreqRange(fminHz, fmaxHz float64) Option {
	return func(s *Scenario) error {
		s.FMinHz, s.FMaxHz = fminHz, fmaxHz
		return nil
	}
}

// WithSeed sets the root RNG seed. The seed must be non-zero: on the
// JSON wire form an absent seed defaults to 1, so zero cannot name a
// distinct stream, and passing it here is rejected rather than silently
// remapped.
func WithSeed(seed int64) Option {
	return func(s *Scenario) error {
		if seed == 0 {
			return fmt.Errorf("nocsim: seed must be non-zero")
		}
		s.Seed = seed
		return nil
	}
}

// WithControlPeriod overrides the DVFS control update period in node
// cycles (the paper's Sec. IV period ablation; 0 restores the default).
func WithControlPeriod(cycles int64) Option {
	return func(s *Scenario) error { s.ControlPeriod = cycles; return nil }
}

// WithGains overrides the DMSD PI gains (0 keeps the paper's published
// value for that gain).
func WithGains(ki, kp float64) Option {
	return func(s *Scenario) error { s.KI, s.KP = ki, kp; return nil }
}

// WithFreqLevels quantizes the actuation range into n discrete frequency
// levels (the paper's footnote 2; 0 restores continuous actuation).
func WithFreqLevels(n int) Option {
	return func(s *Scenario) error { s.FreqLevels = n; return nil }
}

// WithTransient captures the controller's cold-start transient instead
// of the steady state: the run starts at FMax with no warm start, and
// the Result carries a per-control-period frequency/delay trace.
func WithTransient() Option {
	return func(s *Scenario) error { s.Transient = true; return nil }
}

// WithQuick shrinks warmup and measurement windows roughly 4x, for smoke
// tests and examples that must run in seconds.
func WithQuick() Option {
	return func(s *Scenario) error { s.Quick = true; return nil }
}

// WithWorkers bounds how many simulation points run concurrently in
// Sweep, Calibrate and FindSaturation (0 = GOMAXPROCS, 1 = serial).
func WithWorkers(n int) Option {
	return func(s *Scenario) error { s.Workers = n; return nil }
}

// WithStepWorkers sets the number of engine threads stepping each
// simulation's network (0 or 1 = serial). Results are bit-identical for
// every value; a run stepped by k threads charges k slots of the
// process-wide leaf budget (see exp.SetLeafBudget), so grid concurrency
// and intra-simulation concurrency share one core pool.
func WithStepWorkers(n int) Option {
	return func(s *Scenario) error { s.StepWorkers = n; return nil }
}

// WithPacketLog attaches a per-packet lifecycle log to the scenario's
// runs. The log is a runtime attachment — it does not survive JSON
// marshalling — and forces sweeps to run serially so records do not
// interleave.
func WithPacketLog(l *PacketLog) Option {
	return func(s *Scenario) error { s.packetLog = l; return nil }
}

// WithTrace replays the recorded injection trace in the file at ref
// instead of generating traffic, clearing any pattern, app or bursty
// source. Replay consumes no randomness, so it reproduces the capture
// run bit for bit; runs longer than the trace stop injecting when the
// recorded events are exhausted. RMSD and DMSD scenarios must carry a
// pinned calibration (the calibration search varies load, which a
// fixed trace ignores). The file is read when the scenario runs.
func WithTrace(ref string) Option {
	return func(s *Scenario) error {
		if ref == "" {
			return fmt.Errorf("nocsim: empty trace reference")
		}
		s.TraceRef = ref
		s.Pattern, s.App, s.Source = "", "", nil
		return nil
	}
}

// WithTraceCapture records every packet the run generates into t as
// injection-trace events; save the result with Trace.Save and replay
// it with WithTrace. The sink is a runtime attachment — it does not
// survive JSON marshalling — and forces sweeps and calibration probes
// to run serially; the sink then holds the events of the last run that
// used it (the main measurement run, for Run with auto-calibration).
func WithTraceCapture(t *Trace) Option {
	return func(s *Scenario) error { s.traceCapture = t; return nil }
}

// WithMMPP layers a two-state Markov-modulated source under the
// scenario's synthetic pattern: each node alternates between OFF (no
// injection) and ON at burstRatio times its nominal rate, with
// geometric sojourns of mean burstLen cycles ON and
// burstLen·(burstRatio−1) cycles OFF. The long-run mean rate stays
// exactly the scenario's load; pass 0 for either parameter to use its
// default (ratio 4, length 64).
func WithMMPP(burstRatio, burstLen float64) Option {
	return func(s *Scenario) error {
		sp := SourceSpec{Kind: SourceMMPP, BurstRatio: burstRatio, BurstLen: burstLen}
		s.Source = sp.withDefaults()
		return nil
	}
}

// WithParetoOnOff layers an on-off source with Pareto-tailed sojourn
// times (tail index alpha in (1, 2], heavier tails as it approaches 1)
// under the scenario's synthetic pattern, producing self-similar burst
// trains with the same mean sojourns as WithMMPP. Pass 0 for any
// parameter to use its default (ratio 4, length 64, alpha 1.5).
func WithParetoOnOff(burstRatio, burstLen, alpha float64) Option {
	return func(s *Scenario) error {
		sp := SourceSpec{Kind: SourcePareto, BurstRatio: burstRatio, BurstLen: burstLen, ParetoAlpha: alpha}
		s.Source = sp.withDefaults()
		return nil
	}
}

// WithFaultyLinks masks the named directed mesh channels out of the
// fabric, each in the "from>to" form (ids of adjacent routers; mask
// both directions for a fully dead wire). The network routes around
// faults with a minimal fault-aware table; o1turn routing is rejected,
// and a fault set that disconnects the mesh fails at Run time.
func WithFaultyLinks(links ...string) Option {
	return func(s *Scenario) error {
		s.FaultyLinks = append([]string(nil), links...)
		return nil
	}
}

// WithIslands declares rectangular V/F islands: regions of routers
// advancing only a Speed fraction of network cycles, layered under the
// global DVFS frequency. Overlapping islands resolve in favour of the
// later one listed.
func WithIslands(islands ...Island) Option {
	return func(s *Scenario) error {
		s.Islands = append([]Island(nil), islands...)
		return nil
	}
}
