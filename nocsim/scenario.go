package nocsim

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/noc"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/volt"
)

// Routing names a deterministic routing algorithm.
type Routing string

// The supported routing algorithms.
const (
	// RoutingXY is dimension-ordered routing, X first (the paper's choice).
	RoutingXY Routing = "xy"
	// RoutingYX is dimension-ordered routing, Y first.
	RoutingYX Routing = "yx"
	// RoutingO1Turn picks XY or YX uniformly at random per packet.
	RoutingO1Turn Routing = "o1turn"
)

// PolicyKind names one of the paper's three DVFS controllers.
type PolicyKind string

// The three policies of the paper.
const (
	// NoDVFS pins the network clock at the node clock (the baseline).
	NoDVFS PolicyKind = "nodvfs"
	// RMSD is the rate-based policy: frequency proportional to the
	// offered rate.
	RMSD PolicyKind = "rmsd"
	// DMSD is the delay-based policy: a PI loop holding the measured
	// delay at a setpoint.
	DMSD PolicyKind = "dmsd"
)

// AllPolicies returns the paper's comparison set in presentation order.
func AllPolicies() []PolicyKind { return []PolicyKind{NoDVFS, RMSD, DMSD} }

// Mesh describes the network fabric.
type Mesh struct {
	// Width and Height are the mesh dimensions in routers.
	Width  int `json:"width"`
	Height int `json:"height"`
	// VCs is the number of virtual channels per input port.
	VCs int `json:"vcs"`
	// BufDepth is the number of flit slots per virtual-channel buffer.
	BufDepth int `json:"buf_depth"`
	// PacketSize is the packet length in flits.
	PacketSize int `json:"packet_size"`
	// Routing selects the routing algorithm.
	Routing Routing `json:"routing"`
}

// DefaultMesh returns the paper's baseline fabric: a 5x5 mesh with XY
// routing, 8 virtual channels, 4 flit buffers per channel and 20-flit
// packets (Sec. III, Fig. 2).
func DefaultMesh() Mesh {
	return Mesh{Width: 5, Height: 5, VCs: 8, BufDepth: 4, PacketSize: 20, Routing: RoutingXY}
}

// toNoc converts the mesh to the engine's fabric configuration.
func (m Mesh) toNoc() (noc.Config, error) {
	r, err := noc.ParseRouting(string(m.Routing))
	if err != nil {
		return noc.Config{}, err
	}
	return noc.Config{
		Width: m.Width, Height: m.Height, VCs: m.VCs,
		BufDepth: m.BufDepth, PacketSize: m.PacketSize, Routing: r,
	}, nil
}

// Source kinds accepted by SourceSpec and the -source CLI flag.
const (
	// SourceMMPP is a two-state Markov-modulated process: each source
	// alternates between OFF (rate 0) and ON (rate BurstRatio × nominal)
	// with geometric sojourn times, preserving the mean rate.
	SourceMMPP = traffic.SourceMMPP
	// SourcePareto is the same on-off alternation with Pareto-tailed
	// sojourn times, producing self-similar burst trains.
	SourcePareto = traffic.SourcePareto
)

// SourceSpec selects a bursty packet-generation process layered under a
// synthetic destination pattern, replacing the default Bernoulli
// (Poisson-like) process. The long-run mean rate is always the
// scenario's Load: burstiness redistributes the same traffic in time, it
// never adds traffic.
type SourceSpec struct {
	// Kind is SourceMMPP ("mmpp") or SourcePareto ("pareto").
	Kind string `json:"kind"`
	// BurstRatio is the ON-state rate multiplier β > 1. A source is ON a
	// 1/β fraction of the time at β times the nominal rate (default 4).
	BurstRatio float64 `json:"burst_ratio,omitempty"`
	// BurstLen is the mean ON sojourn in node cycles, at least 1
	// (default 64). The mean OFF sojourn is BurstLen·(β−1).
	BurstLen float64 `json:"burst_len,omitempty"`
	// ParetoAlpha is the Pareto tail index in (1, 2], heavier tails as
	// it approaches 1 (default 1.5); used only by SourcePareto.
	ParetoAlpha float64 `json:"pareto_alpha,omitempty"`
}

// withDefaults returns a copy of the spec with every zero parameter
// replaced by its documented default (ratio 4, length 64, alpha 1.5);
// the receiver is never mutated. A spec with an empty Kind is returned
// unchanged: defaults only make sense once a process is selected.
func (sp SourceSpec) withDefaults() *SourceSpec {
	if sp.Kind == "" {
		return &sp
	}
	if sp.BurstRatio == 0 {
		sp.BurstRatio = 4
	}
	if sp.BurstLen == 0 {
		sp.BurstLen = 64
	}
	if sp.Kind == SourcePareto && sp.ParetoAlpha == 0 {
		sp.ParetoAlpha = 1.5
	}
	return &sp
}

// toTraffic converts the spec to the internal source configuration.
func (sp *SourceSpec) toTraffic() traffic.SourceConfig {
	if sp == nil {
		return traffic.SourceConfig{}
	}
	return traffic.SourceConfig{
		Kind: sp.Kind, BurstRatio: sp.BurstRatio,
		BurstLen: sp.BurstLen, ParetoAlpha: sp.ParetoAlpha,
	}
}

// Island is a rectangular region of routers running at a reduced clock:
// the island's routers advance only a Speed fraction of network cycles,
// layered under whatever global frequency the DVFS policy actuates.
// Rectangles are inclusive of both corners; overlapping islands resolve
// in favour of the later one in the scenario's list.
type Island struct {
	// X0, Y0 and X1, Y1 are the inclusive corner coordinates.
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
	// Speed is the island's clock divider in (0, 1]; 1 means full speed.
	Speed float64 `json:"speed"`
}

func (i Island) toNoc() noc.Island {
	return noc.Island{X0: i.X0, Y0: i.Y0, X1: i.X1, Y1: i.Y1, Speed: i.Speed}
}

// Calibration fixes the policy operating points of a scenario, following
// the paper's recipe (Sec. III/IV): λmax 10% below the measured
// saturation rate, and the DMSD setpoint equal to the full-speed delay at
// λmax. Obtain one with Calibrate, or fill the fields manually.
type Calibration struct {
	// SaturationRate is the measured saturation injection rate in flits
	// per node per node cycle.
	SaturationRate float64 `json:"saturation_rate"`
	// LambdaMax is the RMSD target network rate (0.9 × saturation).
	LambdaMax float64 `json:"lambda_max"`
	// TargetDelayNs is the DMSD setpoint.
	TargetDelayNs float64 `json:"target_delay_ns"`
}

func (c Calibration) toCore() core.Calibration {
	return core.Calibration{SaturationRate: c.SaturationRate, LambdaMax: c.LambdaMax, TargetDelayNs: c.TargetDelayNs}
}

// Scenario is one self-contained simulation job: fabric, traffic, load,
// policy and seed. Build one with New and the With... options; the zero
// value is not usable. A Scenario marshals to and from JSON losslessly,
// so it doubles as the wire form for distributing work: ship the bytes,
// Unmarshal, Run.
type Scenario struct {
	// Mesh is the network fabric.
	Mesh Mesh `json:"mesh"`
	// Pattern is a synthetic traffic pattern name ("uniform", "tornado",
	// "bitcomp", "transpose", "neighbor", "bitrev", "shuffle"). Exactly
	// one of Pattern and App is set.
	Pattern string `json:"pattern,omitempty"`
	// App selects a multimedia workload by name ("h264" or "vce")
	// instead of a synthetic pattern.
	App string `json:"app,omitempty"`
	// PeakRate is the busiest-node injection rate at App speed 1.0
	// (default 0.40 flits/node/cycle, the apps' calibrated peak).
	PeakRate float64 `json:"peak_rate,omitempty"`
	// TraceRef names a recorded injection-trace file (captured with
	// WithTraceCapture and saved with Trace.Save) to replay instead of
	// generating traffic. Replay is bit-identical to the capture run.
	// Pattern, App and Source must be empty, and RMSD/DMSD need a pinned
	// Calibration — the calibration search varies load, which a fixed
	// trace ignores. The file is read when the scenario runs, not when
	// it validates.
	TraceRef string `json:"trace,omitempty"`
	// Source layers a bursty generation process (MMPP or Pareto on-off)
	// under the synthetic pattern; nil is the plain Bernoulli process.
	// Sources combine with patterns only, not apps or traces.
	Source *SourceSpec `json:"source,omitempty"`

	// FaultyLinks lists directed mesh channels masked out of the fabric,
	// each in the "from>to" wire form (node ids of adjacent routers).
	// The network routes around them with a minimal fault-aware table
	// that reduces exactly to dimension-ordered routing when the fault
	// set is empty; o1turn routing cannot respect faults and is
	// rejected. A fault set that disconnects the mesh fails at Run time.
	FaultyLinks []string `json:"faulty_links,omitempty"`
	// Islands are rectangular V/F islands running at reduced clock
	// speed, layered under the global DVFS frequency.
	Islands []Island `json:"islands,omitempty"`

	// Load is the operating point: the injection rate in flits per node
	// per node cycle for synthetic patterns, or the relative application
	// speed (1.0 ≡ 75 frames/s) for apps.
	Load float64 `json:"load"`
	// Policy is the DVFS controller to run.
	Policy PolicyKind `json:"policy"`
	// Calibration fixes the policy operating points. When nil, Run
	// calibrates automatically (and records the result in its Result).
	Calibration *Calibration `json:"calibration,omitempty"`

	// FNodeHz is the node clock frequency in Hz (default 1 GHz).
	FNodeHz float64 `json:"fnode_hz"`
	// FMinHz and FMaxHz bound the DVFS actuation range (defaults
	// 333 MHz and 1 GHz, the paper's 28-nm range).
	FMinHz float64 `json:"fmin_hz"`
	FMaxHz float64 `json:"fmax_hz"`

	// ControlPeriod overrides the DVFS control update period in node
	// cycles (0 = the paper's 10 000, or the shortened Quick period).
	ControlPeriod int64 `json:"control_period,omitempty"`
	// KI and KP override the DMSD PI gains (0 = the paper's published
	// values).
	KI float64 `json:"ki,omitempty"`
	KP float64 `json:"kp,omitempty"`
	// FreqLevels quantizes the actuation range into this many discrete
	// frequency levels (0 = continuous actuation; the paper's footnote 2
	// studies discrete tables).
	FreqLevels int `json:"freq_levels,omitempty"`
	// Transient captures the controller's cold-start transient instead
	// of the steady state: no equilibrium warm start, a short fixed
	// warmup, a long measurement window, and a per-control-period
	// frequency/delay trace in the Result.
	Transient bool `json:"transient,omitempty"`

	// Seed is the root RNG seed (default 1). Sweep derives one
	// independent stream per grid point from it.
	Seed int64 `json:"seed"`
	// Quick shrinks warmup/measurement windows roughly 4x for smoke
	// tests and examples.
	Quick bool `json:"quick,omitempty"`
	// Workers bounds how many simulation points run concurrently in
	// Sweep, Calibrate and FindSaturation (0 = GOMAXPROCS, 1 = serial).
	// Results are byte-identical for every value.
	Workers int `json:"workers,omitempty"`
	// StepWorkers is the number of engine threads stepping each
	// simulation's network (0 = the process default set with
	// SetDefaultStepWorkers, 1 = serial). Results are bit-identical for
	// every value; the threads only spread each cycle's router sweeps
	// across contiguous mesh bands. A run stepped by k threads charges
	// k slots of the process-wide leaf budget, so the total number of
	// in-flight engine threads stays under the configured core budget no
	// matter how grid concurrency and intra-run concurrency combine.
	StepWorkers int `json:"step_workers,omitempty"`

	// packetLog, when attached with WithPacketLog, records every
	// measured packet's lifecycle. It is a runtime attachment, not part
	// of the wire form, and forces sweeps to run serially.
	packetLog *PacketLog
	// traceCapture, when attached with WithTraceCapture, records every
	// generated packet as an injection-trace event. Like packetLog it is
	// a runtime attachment that forces sweeps to run serially.
	traceCapture *Trace
}

// Normalized returns the scenario with every unset field replaced by
// the documented default, so a partial hand-written JSON scenario
// behaves like one built with New. Run, Sweep, Calibrate and
// FindSaturation normalize internally; call it directly when a wire
// scenario must be validated or displayed before running.
func (s Scenario) Normalized() Scenario { return s.normalized() }

// normalized implements Normalized. Router parameters (VCs, buffers,
// packet size, routing) default one by one, so a job that only states
// what it changed is still complete; the mesh dimensions default as a
// pair — a job naming just one of width/height is ambiguous and is left
// for Validate to reject.
func (s Scenario) normalized() Scenario {
	d := DefaultMesh()
	if s.Mesh.Width == 0 && s.Mesh.Height == 0 {
		s.Mesh.Width, s.Mesh.Height = d.Width, d.Height
		// An app scenario defaults to the mesh its graph is mapped on
		// (4x4 for h264, 5x5 for vce), exactly as WithApp would set it;
		// an unknown app name is left for Validate to report.
		if s.App != "" {
			if app, err := appByName(s.App); err == nil {
				s.Mesh.Width, s.Mesh.Height = app.Width, app.Height
			}
		}
	}
	if s.Mesh.VCs == 0 {
		s.Mesh.VCs = d.VCs
	}
	if s.Mesh.BufDepth == 0 {
		s.Mesh.BufDepth = d.BufDepth
	}
	if s.Mesh.PacketSize == 0 {
		s.Mesh.PacketSize = d.PacketSize
	}
	if s.Mesh.Routing == "" {
		s.Mesh.Routing = d.Routing
	}
	if s.Pattern == "" && s.App == "" && s.TraceRef == "" {
		s.Pattern = "uniform"
	}
	if s.App != "" && s.PeakRate == 0 {
		s.PeakRate = apps.DefaultPeakRate
	}
	if s.Source != nil {
		s.Source = s.Source.withDefaults()
	}
	if s.Load == 0 {
		s.Load = 0.2 // the paper's reference operating point
	}
	if s.Policy == "" {
		s.Policy = NoDVFS
	}
	if s.FNodeHz == 0 {
		s.FNodeHz = 1e9
	}
	if s.FMinHz == 0 {
		s.FMinHz = volt.FMin
	}
	if s.FMaxHz == 0 {
		s.FMaxHz = volt.FMax
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate reports whether the scenario is internally consistent. New and
// With validate eagerly; Run validates again so scenarios arriving over
// the wire get the same checks.
func (s Scenario) Validate() error {
	var errs []error
	cfg, err := s.Mesh.toNoc()
	cfgOK := err == nil
	if err != nil {
		errs = append(errs, err)
	} else if err := cfg.Validate(); err != nil {
		cfgOK = false
		errs = append(errs, err)
	}
	switch {
	case s.TraceRef != "":
		if s.Pattern != "" || s.App != "" {
			errs = append(errs, errors.New("nocsim: trace replay excludes patterns and apps"))
		}
		if s.Source != nil {
			errs = append(errs, errors.New("nocsim: trace replay excludes bursty sources"))
		}
		if (s.Policy == RMSD || s.Policy == DMSD) && s.Calibration == nil {
			errs = append(errs, errors.New("nocsim: trace scenarios cannot auto-calibrate (the saturation search varies load, which a fixed trace ignores); pin a calibration"))
		}
	case s.Pattern == "" && s.App == "":
		errs = append(errs, errors.New("nocsim: scenario needs a pattern, an app or a trace"))
	case s.Pattern != "" && s.App != "":
		errs = append(errs, errors.New("nocsim: scenario has both a pattern and an app"))
	case s.Pattern != "":
		if cfgOK {
			if _, err := traffic.ByName(s.Pattern, cfg); err != nil {
				errs = append(errs, err)
			}
		}
	default:
		app, err := appByName(s.App)
		if err != nil {
			errs = append(errs, err)
		} else if s.Mesh.Width != app.Width || s.Mesh.Height != app.Height {
			errs = append(errs, fmt.Errorf("nocsim: app %q is mapped on a %dx%d mesh, scenario has %dx%d",
				s.App, app.Width, app.Height, s.Mesh.Width, s.Mesh.Height))
		}
	}
	if sp := s.Source; sp != nil {
		switch {
		case sp.Kind == "":
			errs = append(errs, errors.New(`nocsim: source needs a kind ("mmpp" or "pareto")`))
		case s.App != "":
			errs = append(errs, errors.New("nocsim: bursty sources combine with patterns only, not apps"))
		default:
			if err := sp.toTraffic().Validate(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if len(s.FaultyLinks) > 0 {
		links, err := parseFaults(s.FaultyLinks)
		if err != nil {
			errs = append(errs, err)
		} else if cfgOK {
			if err := noc.ValidateFaults(cfg, links); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if len(s.Islands) > 0 && cfgOK {
		if err := noc.ValidateIslands(cfg, s.nocIslands()); err != nil {
			errs = append(errs, err)
		}
	}
	switch s.Policy {
	case NoDVFS, RMSD, DMSD:
	default:
		errs = append(errs, fmt.Errorf("nocsim: unknown policy %q", s.Policy))
	}
	if s.Load <= 0 {
		errs = append(errs, fmt.Errorf("nocsim: load %g must be positive", s.Load))
	}
	if s.FNodeHz <= 0 {
		errs = append(errs, fmt.Errorf("nocsim: node clock %g Hz", s.FNodeHz))
	}
	if s.FMinHz <= 0 || s.FMaxHz < s.FMinHz {
		errs = append(errs, fmt.Errorf("nocsim: frequency range [%g, %g] Hz", s.FMinHz, s.FMaxHz))
	}
	if s.PeakRate < 0 {
		errs = append(errs, fmt.Errorf("nocsim: peak rate %g", s.PeakRate))
	}
	if s.Workers < 0 {
		errs = append(errs, fmt.Errorf("nocsim: workers %d", s.Workers))
	}
	if s.StepWorkers < 0 {
		errs = append(errs, fmt.Errorf("nocsim: step workers %d", s.StepWorkers))
	}
	if s.ControlPeriod < 0 {
		errs = append(errs, fmt.Errorf("nocsim: control period %d", s.ControlPeriod))
	}
	if s.FreqLevels < 0 || s.FreqLevels == 1 {
		errs = append(errs, fmt.Errorf("nocsim: %d frequency levels (want 0 for continuous or >= 2)", s.FreqLevels))
	}
	if s.KI < 0 || s.KP < 0 {
		errs = append(errs, fmt.Errorf("nocsim: negative PI gains KI=%g KP=%g", s.KI, s.KP))
	}
	if c := s.Calibration; c != nil {
		if s.Policy == RMSD && c.LambdaMax <= 0 {
			errs = append(errs, errors.New("nocsim: rmsd needs calibration.lambda_max > 0"))
		}
		if s.Policy == DMSD && c.TargetDelayNs <= 0 {
			errs = append(errs, errors.New("nocsim: dmsd needs calibration.target_delay_ns > 0"))
		}
	}
	return errors.Join(errs...)
}

// toCore converts the scenario to the internal experiment representation.
// The scenario must be normalized and valid.
func (s Scenario) toCore() (core.Scenario, error) {
	cfg, err := s.Mesh.toNoc()
	if err != nil {
		return core.Scenario{}, err
	}
	cs := core.Scenario{
		Noc:           cfg,
		Pattern:       s.Pattern,
		PeakRate:      s.PeakRate,
		Source:        s.Source.toTraffic(),
		Islands:       s.nocIslands(),
		FNode:         s.FNodeHz,
		Range:         dvfs.Range{FMin: s.FMinHz, FMax: s.FMaxHz},
		Seed:          s.Seed,
		Quick:         s.Quick,
		Workers:       s.Workers,
		StepWorkers:   s.stepWorkers(),
		ControlPeriod: s.ControlPeriod,
		KI:            s.KI,
		KP:            s.KP,
		FreqLevels:    s.FreqLevels,
		Transient:     s.Transient,
	}
	if s.App != "" {
		app, err := appByName(s.App)
		if err != nil {
			return core.Scenario{}, err
		}
		cs.App = &app
	}
	if len(s.FaultyLinks) > 0 {
		faults, err := parseFaults(s.FaultyLinks)
		if err != nil {
			return core.Scenario{}, err
		}
		cs.Faults = faults
	}
	if s.TraceRef != "" {
		tr, err := trace.LoadInjection(s.TraceRef)
		if err != nil {
			return core.Scenario{}, fmt.Errorf("nocsim: loading trace: %w", err)
		}
		cs.Trace = tr
	}
	if s.packetLog != nil {
		cs.PacketLog = s.packetLog.log
	}
	if s.traceCapture != nil {
		cs.TraceCapture = &s.traceCapture.inj
	}
	return cs, nil
}

// parseFaults converts the "from>to" wire form of the fault list.
func parseFaults(refs []string) ([]noc.Link, error) {
	links := make([]noc.Link, 0, len(refs))
	for _, r := range refs {
		l, err := noc.ParseLink(r)
		if err != nil {
			return nil, err
		}
		links = append(links, l)
	}
	return links, nil
}

// nocIslands converts the scenario's islands to the engine form.
func (s Scenario) nocIslands() []noc.Island {
	if len(s.Islands) == 0 {
		return nil
	}
	out := make([]noc.Island, len(s.Islands))
	for i, isl := range s.Islands {
		out[i] = isl.toNoc()
	}
	return out
}

// defaultStepWorkers is the process-wide fallback for scenarios whose
// StepWorkers field is zero. It is execution configuration, not part of
// the scenario wire form: manifests and shipped jobs stay
// host-independent, and each host applies its own default when it runs
// them — exactly like the worker bound a manifest runner passes locally.
var defaultStepWorkers atomic.Int32

// SetDefaultStepWorkers sets the process-wide engine-thread count
// applied to every run whose scenario leaves StepWorkers at zero
// (n <= 1 restores serial stepping). Results are bit-identical for
// every value, so changing the default never changes what a job
// computes, only how many leaf-budget slots it charges while running.
func SetDefaultStepWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultStepWorkers.Store(int32(n))
}

// stepWorkers resolves the effective engine-thread count for this
// scenario: its own StepWorkers, or the process default when unset.
func (s Scenario) stepWorkers() int {
	if s.StepWorkers != 0 {
		return s.StepWorkers
	}
	return int(defaultStepWorkers.Load())
}

// coreCal returns the scenario's calibration in internal form, zero when
// none is attached.
func (s Scenario) coreCal() core.Calibration {
	if s.Calibration == nil {
		return core.Calibration{}
	}
	return s.Calibration.toCore()
}

// defaultPeakRate is the apps' calibrated busiest-node rate at speed 1.0.
func defaultPeakRate() float64 { return apps.DefaultPeakRate }

// appByName resolves a multimedia workload by its name.
func appByName(name string) (apps.App, error) {
	for _, a := range apps.Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return apps.App{}, fmt.Errorf("nocsim: unknown app %q (want h264 or vce)", name)
}
