package manifest

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/nocsim"
)

func testBase(t *testing.T) nocsim.Scenario {
	t.Helper()
	base := nocsim.Scenario{Mesh: nocsim.DefaultMesh(), Pattern: "uniform"}.Normalized()
	base.Calibration = &nocsim.Calibration{SaturationRate: 0.6, LambdaMax: 0.6, TargetDelayNs: 100}
	return base
}

func TestPointResolution(t *testing.T) {
	base := testBase(t)
	m := &Manifest{Name: "x", Panels: []Panel{
		{Label: "a", Grid: nocsim.Grid{Base: base, Loads: []float64{0.1, 0.2}, Policies: nocsim.AllPolicies()}},
		{Label: "b", Grid: nocsim.Grid{Base: base, Loads: []float64{0.3}, Policies: []nocsim.PolicyKind{nocsim.NoDVFS}}},
	}}
	if n := m.NumPoints(); n != 7 {
		t.Fatalf("NumPoints = %d, want 7", n)
	}
	if off := m.Offsets(); !reflect.DeepEqual(off, []int{0, 6, 7}) {
		t.Fatalf("Offsets = %v, want [0 6 7]", off)
	}
	// Global indices 0..5 live in panel a, 6 in panel b.
	for i, wantPanel := range []int{0, 0, 0, 0, 0, 0, 1} {
		panel, sc, err := m.Point(i)
		if err != nil {
			t.Fatalf("Point(%d): %v", i, err)
		}
		if panel != wantPanel {
			t.Errorf("Point(%d) panel = %d, want %d", i, panel, wantPanel)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("Point(%d) scenario invalid: %v", i, err)
		}
	}
	if _, _, err := m.Point(7); err == nil {
		t.Error("Point(7) out of range, want error")
	}
	if _, _, err := m.Point(-1); err == nil {
		t.Error("Point(-1), want error")
	}
}

// TestSumIsPlanIdentity pins the fingerprint contract shared by the
// work-queue identity checks and the results service's render cache:
// equal plans hash equal, any changed knob changes the hash, and the
// hash is stable across a JSON round-trip (a reloaded manifest is the
// same plan).
func TestSumIsPlanIdentity(t *testing.T) {
	mk := func() *Manifest {
		return &Manifest{Name: "x", Quick: true, Points: 2, Seed: 1, Panels: []Panel{
			{Label: "a", Grid: nocsim.Grid{Base: testBase(t), Loads: []float64{0.1, 0.2}, Policies: nocsim.AllPolicies()}},
		}}
	}
	sum, err := Sum(mk())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 16 {
		t.Fatalf("Sum = %q, want 16 hex chars", sum)
	}
	if again, _ := Sum(mk()); again != sum {
		t.Fatalf("equal plans hash differently: %s vs %s", sum, again)
	}

	data, err := json.Marshal(mk())
	if err != nil {
		t.Fatal(err)
	}
	var reloaded Manifest
	if err := json.Unmarshal(data, &reloaded); err != nil {
		t.Fatal(err)
	}
	if rsum, _ := Sum(&reloaded); rsum != sum {
		t.Fatalf("JSON round-trip changed sum: %s vs %s", rsum, sum)
	}

	for name, mutate := range map[string]func(*Manifest){
		"name":   func(m *Manifest) { m.Name = "y" },
		"quick":  func(m *Manifest) { m.Quick = false },
		"seed":   func(m *Manifest) { m.Seed = 2 },
		"load":   func(m *Manifest) { m.Panels[0].Grid.Loads[1] = 0.25 },
		"policy": func(m *Manifest) { m.Panels[0].Grid.Policies = m.Panels[0].Grid.Policies[:2] },
		"mesh":   func(m *Manifest) { m.Panels[0].Grid.Base.Mesh.Width = 8 },
	} {
		m := mk()
		mutate(m)
		if msum, err := Sum(m); err != nil || msum == sum {
			t.Errorf("mutating %s: sum %s (err %v), want a different sum", name, msum, err)
		}
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := st.LoadManifest("x"); err != nil || m != nil {
		t.Fatalf("LoadManifest on empty store = (%v, %v), want (nil, nil)", m, err)
	}
	base := testBase(t)
	m := &Manifest{Name: "x", Points: 2, Seed: 1, Panels: []Panel{
		{Label: "a", Grid: nocsim.Grid{Base: base, Loads: []float64{0.1, 0.2}, Policies: nocsim.AllPolicies()}},
	}}
	if err := st.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadManifest("x")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("manifest did not round-trip:\n got %+v\nwant %+v", got, m)
	}

	r := nocsim.Result{Scenario: base}
	r.AvgDelayNs = 42
	j, err := st.Journal("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(3, r); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	have, err := st.LoadPoints("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(have) != 1 || have[3].AvgDelayNs != 42 {
		t.Errorf("LoadPoints = %v, want point 3 with delay 42", have)
	}

	// Re-saving the manifest invalidates recorded points.
	if err := st.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	if have, err = st.LoadPoints("x"); err != nil || len(have) != 0 {
		t.Errorf("stale points survived a manifest rewrite: (%v, %v)", have, err)
	}
}

// TestJournalTornTail is the crash-safety contract of the points
// journal: a torn final line (the process died mid-append) is skipped on
// load without losing any earlier point, and the next Journal truncates
// it away so later appends cannot merge into it.
func TestJournalTornTail(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testBase(t)
	j, err := st.Journal("x")
	if err != nil {
		t.Fatal(err)
	}
	r := nocsim.Result{Scenario: base}
	for i := 0; i < 3; i++ {
		r.AvgDelayNs = float64(10 * (i + 1))
		if err := j.Append(i, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a crash mid-append leaves a partial record with no
	// trailing newline.
	f, err := os.OpenFile(st.PointsPath("x"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":3,"result":{"avg_del`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	have, err := st.LoadPoints("x")
	if err != nil {
		t.Fatalf("LoadPoints with torn tail: %v", err)
	}
	if len(have) != 3 || have[0].AvgDelayNs != 10 || have[2].AvgDelayNs != 30 {
		t.Errorf("torn tail lost earlier points: %v", have)
	}

	// A new journal truncates the torn tail before appending, so the file
	// stays loadable once further lines follow.
	j, err = st.Journal("x")
	if err != nil {
		t.Fatal(err)
	}
	r.AvgDelayNs = 40
	if err := j.Append(3, r); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if have, err = st.LoadPoints("x"); err != nil {
		t.Fatalf("LoadPoints after post-crash append: %v", err)
	}
	if len(have) != 4 || have[3].AvgDelayNs != 40 {
		t.Errorf("post-crash append corrupted the journal: %v", have)
	}
	data, err := os.ReadFile(st.PointsPath("x"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 4 {
		t.Errorf("journal holds %d lines, want 4 (torn tail replaced, one per point)", lines)
	}
}

// TestLegacyFigKeyLoads pins backwards compatibility with manifest
// files written before the identifier key was renamed "fig" -> "name":
// they still load (Name filled from the legacy key), and a file with
// neither key is rejected up front instead of failing at render time.
func TestLegacyFigKeyLoads(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Name: "fig8", Points: 2, Seed: 1, Panels: []Panel{
		{Label: "a", Grid: nocsim.Grid{Base: testBase(t), Loads: []float64{0.1}}},
	}}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	legacy := strings.Replace(string(data), `"name":"fig8"`, `"fig":"fig8"`, 1)
	if legacy == string(data) {
		t.Fatal("test setup: name key not found to rewrite")
	}
	if err := os.WriteFile(st.ManifestPath("fig8"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadManifest("fig8")
	if err != nil {
		t.Fatalf("legacy manifest failed to load: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("legacy manifest did not round-trip:\n got %+v\nwant %+v", got, m)
	}

	// No identifier under either key: refuse at load.
	nameless := strings.Replace(string(data), `"name":"fig8"`, `"name":""`, 1)
	if err := os.WriteFile(st.ManifestPath("bad"), []byte(nameless), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadManifest("bad"); err == nil {
		t.Error("nameless manifest loaded, want error")
	}
}
