// Package manifest is the shared job layer between planning a sweep and
// executing it anywhere: a Manifest is an ordered list of panels, each a
// resolved nocsim.Grid, flattened into one global index space of
// self-contained simulation points. Because the grids are resolved
// (calibration pinned) before the manifest is written, any point can be
// re-run on any machine — after a crash, from a resumed local run, or on
// a remote worker leasing points from a coordinator — and reproduce its
// number bit for bit.
//
// The package owns the three pieces every executor shares:
//
//   - Manifest and Point(i): global index → self-contained Scenario;
//   - Run: the in-process executor (fan missing points across the exp
//     worker pool, saving each completed point as it lands);
//   - DirStore and Journal: the on-disk form — <name>.manifest.json for
//     the plan, <name>.points.jsonl as the crash-safe (index, result)
//     journal that resumed runs and the queue coordinator both reassemble
//     from.
//
// internal/sweep plans manifests and renders their results into tables;
// internal/queue serves their points as expiring leases over HTTP. Both
// are consumers of this package.
package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/nocsim"
)

// A Manifest is the serialized job form of one study: every panel's
// resolved nocsim.Grid, flattened into one ordered list of
// self-contained points.
type Manifest struct {
	// Name identifies the manifest; stores and coordinators key their
	// files and jobs by it ("fig7", "period", ...).
	Name string `json:"name"`
	// Quick, Points and Seed record the planning options the manifest was
	// built with; rendering reads them, and a resumed or distributed run
	// must reuse them.
	Quick  bool  `json:"quick,omitempty"`
	Points int   `json:"points"`
	Seed   int64 `json:"seed"`
	// Panels are the study's sub-grids in presentation order.
	Panels []Panel `json:"panels"`
}

// UnmarshalJSON accepts both the current wire form and the legacy one
// that keyed the identifier as "fig" (written while the manifest
// machinery lived inside internal/sweep), so stored manifest
// directories from before the rename still resume.
func (m *Manifest) UnmarshalJSON(data []byte) error {
	type plain Manifest // no methods: avoids recursing into this func
	aux := struct {
		*plain
		Fig string `json:"fig"`
	}{plain: (*plain)(m)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if m.Name == "" {
		m.Name = aux.Fig
	}
	return nil
}

// Panel is one sub-study of a manifest: a label ("tornado", "vc2", ...)
// and the resolved grid that measures it.
type Panel struct {
	Label string      `json:"label"`
	Grid  nocsim.Grid `json:"grid"`
}

// NumPoints returns the total number of simulation points across the
// manifest's panels.
func (m *Manifest) NumPoints() int {
	n := 0
	for _, p := range m.Panels {
		n += p.Grid.Len()
	}
	return n
}

// Offsets returns the starting global point index of each panel, plus a
// final entry holding NumPoints — the map renderers use to slice a flat
// result list back into panels.
func (m *Manifest) Offsets() []int {
	off := make([]int, len(m.Panels)+1)
	for i, p := range m.Panels {
		off[i+1] = off[i] + p.Grid.Len()
	}
	return off
}

// Sum fingerprints a resolved plan: the hex digest of the manifest's
// canonical JSON form. Two manifests share a sum exactly when every
// planning knob — name, options, panel labels, resolved grids including
// pinned calibrations — is identical, so the sum is a safe identity for
// cross-machine result exchange (the queue coordinator stamps it on
// leases and checks it on posts) and for caches of anything derived from
// a complete plan (the results service keys rendered tables by it).
func Sum(m *Manifest) (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8]), nil
}

// Point resolves global point index i to its panel and self-contained
// scenario. The scenario carries its own derived RNG stream (see
// nocsim.Grid.Point), so running it with nocsim.Run reproduces the same
// result on any machine.
func (m *Manifest) Point(i int) (panel int, sc nocsim.Scenario, err error) {
	off := m.Offsets()
	if i < 0 || i >= off[len(off)-1] {
		return 0, nocsim.Scenario{}, fmt.Errorf("manifest: point %d out of range [0, %d)", i, off[len(off)-1])
	}
	panel = sort.SearchInts(off[1:], i+1)
	sc, err = m.Panels[panel].Grid.Point(i - off[panel])
	return panel, sc, err
}
