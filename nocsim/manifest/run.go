package manifest

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/exp"
	"repro/nocsim"
)

// Run executes the manifest's points that are not already in have (keyed
// by global point index), fanning them across the exp engine under the
// given worker bound. Each completed point is handed to save (when
// non-nil) before the call returns, so an interrupted run loses at most
// the in-flight points. When limit > 0, at most limit missing points
// (lowest indices first) are scheduled — the hook behind cmd/figures
// -max-points and the CI resume smoke test.
//
// It returns the full results in point order and whether the manifest is
// now complete; when incomplete (limit cut the run short), the result
// slice holds zero values at the missing indices and must not be
// rendered.
func Run(ctx context.Context, m *Manifest, workers int, have map[int]nocsim.Result, save func(int, nocsim.Result) error, limit int) ([]nocsim.Result, bool, error) {
	n := m.NumPoints()
	var missing []int
	for i := 0; i < n; i++ {
		if _, ok := have[i]; !ok {
			missing = append(missing, i)
		}
	}
	scheduled := missing
	if limit > 0 && limit < len(missing) {
		scheduled = missing[:limit]
	}
	var saveMu sync.Mutex
	ran, err := exp.Map(ctx, workers, len(scheduled),
		func(ctx context.Context, j int) (nocsim.Result, error) {
			gi := scheduled[j]
			_, sc, err := m.Point(gi)
			if err != nil {
				return nocsim.Result{}, err
			}
			r, err := nocsim.Run(ctx, sc)
			if err != nil {
				return nocsim.Result{}, fmt.Errorf("%s point %d: %w", m.Name, gi, err)
			}
			r.Meta.PointIndex = gi
			if save != nil {
				saveMu.Lock()
				err = save(gi, r)
				saveMu.Unlock()
				if err != nil {
					return nocsim.Result{}, fmt.Errorf("%s point %d: saving: %w", m.Name, gi, err)
				}
			}
			return r, nil
		})
	if err != nil {
		return nil, false, err
	}
	results := make([]nocsim.Result, n)
	for i, r := range have {
		if i >= 0 && i < n {
			results[i] = r
		}
	}
	for j, r := range ran {
		results[scheduled[j]] = r
	}
	return results, len(scheduled) == len(missing), nil
}
