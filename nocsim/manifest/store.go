package manifest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/nocsim"
)

// DirStore persists manifests and their completed points under one
// directory: <name>.manifest.json holds the resolved grids, and
// <name>.points.jsonl accumulates one completed result per line,
// appended as points finish so an interrupted run keeps everything it
// paid for. The same journal is the queue coordinator's durable state: a
// coordinator restarted over the directory resumes from it.
type DirStore struct {
	Dir string
}

// NewDirStore creates (if needed) and opens a manifest directory.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{Dir: dir}, nil
}

// ManifestPath returns the path of the named manifest file.
func (st *DirStore) ManifestPath(name string) string {
	return filepath.Join(st.Dir, name+".manifest.json")
}

// PointsPath returns the path of the named points journal.
func (st *DirStore) PointsPath(name string) string {
	return filepath.Join(st.Dir, name+".points.jsonl")
}

// Names lists the manifests stored in the directory (every
// <name>.manifest.json), sorted. It is how a backfill over an existing
// manifest directory discovers what there is to ingest.
func (st *DirStore) Names() ([]string, error) {
	entries, err := os.ReadDir(st.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".manifest.json"); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadManifest reads a stored manifest; it returns (nil, nil) when none
// exists.
func (st *DirStore) LoadManifest(name string) (*Manifest, error) {
	data, err := os.ReadFile(st.ManifestPath(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", st.ManifestPath(name), err)
	}
	if m.Name == "" {
		// Neither "name" nor the legacy "fig" key: whatever wrote this
		// file, resuming against it would fail much later (render time)
		// with a baffling error.
		return nil, fmt.Errorf("manifest: %s carries no manifest name; re-plan without -resume", st.ManifestPath(name))
	}
	return &m, nil
}

// SaveManifest writes a manifest (atomically, via a rename) and
// truncates any stale points file: a fresh manifest invalidates results
// recorded against an older plan.
func (st *DirStore) SaveManifest(m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := st.ManifestPath(m.Name) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, st.ManifestPath(m.Name)); err != nil {
		return err
	}
	if err := os.Remove(st.PointsPath(m.Name)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// Record is one line of a points journal: the global point index and its
// measured result.
type Record struct {
	Index  int           `json:"index"`
	Result nocsim.Result `json:"result"`
}

// LoadPoints reads a manifest's completed points. A trailing line that
// does not parse (a crash mid-append) is dropped; a malformed line
// elsewhere is an error.
func (st *DirStore) LoadPoints(name string) (map[int]nocsim.Result, error) {
	f, err := os.Open(st.PointsPath(name))
	if errors.Is(err, os.ErrNotExist) {
		return map[int]nocsim.Result{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	have := make(map[int]nocsim.Result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	var parseErr error
	for sc.Scan() {
		if parseErr != nil {
			return nil, fmt.Errorf("manifest: points %s: %w", st.PointsPath(name), parseErr)
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			parseErr = err // fatal only if more lines follow
			continue
		}
		have[rec.Index] = rec.Result
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return have, nil
}

// A Journal is an open, crash-safe appender for one manifest's points
// file. Each Append writes one Record line through a buffered writer,
// flushes it, and fsyncs the file before returning, so a line either
// reaches the disk whole or — if the process dies mid-write — is left as
// a torn tail that LoadPoints skips and the next Journal truncates away.
// Append is safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// Journal opens the manifest's points file for appending, first cutting
// any partial line a crash mid-append left behind — appending after it
// would merge two records into one malformed mid-file line that poisons
// every later LoadPoints. Close the journal when the run finishes.
func (st *DirStore) Journal(name string) (*Journal, error) {
	path := st.PointsPath(name)
	if err := TruncatePartialTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, nil
}

// Append records one completed point: marshal, write, flush, sync. When
// Append returns nil the line is durable; when it returns an error the
// journal may hold a torn tail, which readers skip.
func (j *Journal) Append(i int, r nocsim.Result) error {
	data, err := json.Marshal(Record{Index: i, Result: r})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes, fsyncs and closes the journal file, so a graceful
// shutdown leaves every accepted line durable even if some Append was
// interrupted between its write and its sync.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// TruncatePartialTail cuts an append-only record file back to its last
// complete (newline-terminated) line — the crash-recovery step shared by
// the points Journal and the results store, which reuse the same
// line-per-record codec. A missing file is fine; so is a healthy one —
// the common case costs one stat and one 1-byte read.
func TruncatePartialTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, size-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return err
	}
	keep := int64(bytes.LastIndexByte(data, '\n') + 1)
	return f.Truncate(keep)
}
