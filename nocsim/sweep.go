package nocsim

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
)

// Grid describes a sweep: one base scenario crossed with a list of loads
// and a list of policies. Like Scenario it marshals to and from JSON
// losslessly, so a resolved grid plus a point index is a complete,
// self-contained job description — the unit of work for distributing a
// sweep across machines.
type Grid struct {
	// Base is the scenario every point starts from.
	Base Scenario `json:"base"`
	// Loads are the operating points to sweep. Empty means Base.Load
	// only.
	Loads []float64 `json:"loads,omitempty"`
	// Policies are the controllers to sweep. Empty means Base.Policy
	// only.
	Policies []PolicyKind `json:"policies,omitempty"`
}

// Len returns the number of points in the grid.
func (g Grid) Len() int {
	return max(1, len(g.Policies)) * max(1, len(g.Loads))
}

// Point returns grid point i as a self-contained Scenario: policies are
// the outer dimension and loads the inner one, so point i carries policy
// i/len(loads) at load i%len(loads). The point's seed is an independent
// RNG stream derived from the base seed and i (SplitMix64), so
// neighbouring points — and replications that re-run the grid under
// different root seeds — see uncorrelated samples. Running the returned
// scenario with Run reproduces exactly the result Sweep reports at index
// i, provided the grid was resolved first (see Resolve).
func (g Grid) Point(i int) (Scenario, error) {
	if i < 0 || i >= g.Len() {
		return Scenario{}, fmt.Errorf("nocsim: grid point %d out of range [0, %d)", i, g.Len())
	}
	s := g.Base.normalized()
	nl := max(1, len(g.Loads))
	if len(g.Policies) > 0 {
		s.Policy = g.Policies[i/nl]
	}
	if len(g.Loads) > 0 {
		s.Load = g.Loads[i%nl]
	}
	s.Seed = exp.Seed(s.Seed, i)
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Resolve returns the grid with its base scenario normalized and — when
// any swept policy needs one and none is attached — calibrated once.
// Resolving before shipping points to remote workers is what keeps a
// distributed sweep identical to a local one: every point then carries
// the same pinned calibration instead of re-deriving its own.
func (g Grid) Resolve(ctx context.Context) (Grid, error) {
	g.Base = g.Base.normalized()
	if err := g.Base.Validate(); err != nil {
		return Grid{}, err
	}
	needsCal := g.Base.Policy != NoDVFS && len(g.Policies) == 0
	for _, p := range g.Policies {
		if p != NoDVFS {
			needsCal = true
		}
	}
	if needsCal && g.Base.Calibration == nil {
		cal, err := Calibrate(ctx, g.Base)
		if err != nil {
			return Grid{}, err
		}
		g.Base.Calibration = &cal
	}
	return g, nil
}

// LoadGrid returns n evenly spaced loads in (0, max], excluding zero —
// the standard load axis for comparison grids (core's helper, re-exported
// so grid planners never drift from the internal convention).
func LoadGrid(max float64, n int) []float64 {
	return core.LoadGrid(max, n)
}

// Sweep resolves the grid (applying any options to its base scenario
// first) and runs every point, fanning them across the experiment
// engine's worker pool under Base.Workers. Results arrive in point
// order and are byte-identical for every worker count: each point is the
// self-contained scenario Grid.Point returns, with its own derived RNG
// stream. Cancelling ctx aborts in-flight points promptly and returns
// ctx.Err().
func Sweep(ctx context.Context, g Grid, opts ...Option) ([]Result, error) {
	var err error
	if len(opts) > 0 {
		if g.Base, err = g.Base.normalized().With(opts...); err != nil {
			return nil, err
		}
	}
	if g, err = g.Resolve(ctx); err != nil {
		return nil, err
	}
	workers := g.Base.Workers
	if g.Base.packetLog != nil || g.Base.traceCapture != nil {
		// A shared packet log or trace sink would interleave records
		// across concurrent points; keep the capture coherent by running
		// serially.
		workers = 1
	}
	results, err := exp.Map(ctx, workers, g.Len(),
		func(ctx context.Context, i int) (Result, error) {
			p, err := g.Point(i)
			if err != nil {
				return Result{}, err
			}
			r, err := Run(ctx, p)
			if err != nil {
				return Result{}, err
			}
			r.Meta.PointIndex = i
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}
