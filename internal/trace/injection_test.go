package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/noc"
)

func exampleTrace() *Injection {
	return &Injection{
		Width: 3, Height: 3, PacketSize: 4, Cycles: 100,
		Events: []InjectionEvent{
			{Cycle: 0, Src: 0, Dst: 8},
			{Cycle: 0, Src: 4, Dst: 1},
			{Cycle: 7, Src: 2, Dst: 6, Dim: 1},
			{Cycle: 99, Src: 8, Dst: 0},
		},
	}
}

func cfg3() noc.Config {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height, cfg.PacketSize = 3, 3, 4
	return cfg
}

func TestInjectionValidate(t *testing.T) {
	if err := exampleTrace().Validate(cfg3()); err != nil {
		t.Fatalf("example trace invalid: %v", err)
	}
	mutate := map[string]func(*Injection){
		"mesh mismatch":   func(tr *Injection) { tr.Width = 4 },
		"packet mismatch": func(tr *Injection) { tr.PacketSize = 20 },
		"zero cycles":     func(tr *Injection) { tr.Cycles = 0 },
		"event past end":  func(tr *Injection) { tr.Events[3].Cycle = 100 },
		"out of order":    func(tr *Injection) { tr.Events[0].Cycle = 50 },
		"src out of mesh": func(tr *Injection) { tr.Events[1].Src = 9 },
		"self traffic":    func(tr *Injection) { tr.Events[1].Dst = 4 },
	}
	for name, fn := range mutate {
		tr := exampleTrace()
		fn(tr)
		if err := tr.Validate(cfg3()); err == nil {
			t.Errorf("%s: Validate accepted the mutated trace", name)
		}
	}
}

func TestInjectionSortRestoresOrder(t *testing.T) {
	tr := exampleTrace()
	tr.Events[0], tr.Events[3] = tr.Events[3], tr.Events[0]
	if err := tr.Validate(cfg3()); err == nil {
		t.Fatal("shuffled trace validated")
	}
	tr.Sort()
	if err := tr.Validate(cfg3()); err != nil {
		t.Fatalf("sorted trace still invalid: %v", err)
	}
}

func TestInjectionMeanRateAndMatrix(t *testing.T) {
	tr := exampleTrace()
	want := float64(len(tr.Events)) * 4 / 100 / 9
	if got := tr.MeanRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRate() = %g, want %g", got, want)
	}
	m := tr.Matrix()
	if m[0][8] != 1 || m[4][1] != 1 || m[2][6] != 1 || m[8][0] != 1 {
		t.Errorf("Matrix() missing recorded flows: %v", m)
	}
}

func TestInjectionJSONRoundTrip(t *testing.T) {
	tr := exampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInjection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Errorf("round trip changed the trace:\nbefore %+v\nafter  %+v", tr, back)
	}
}

func TestInjectionSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr := exampleTrace()
	if err := SaveInjection(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := LoadInjection(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Errorf("save/load changed the trace")
	}
	if _, err := LoadInjection(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}
