package trace

import (
	"strings"
	"testing"

	"repro/internal/noc"
)

func rec(id int64, src, dst noc.NodeID, create, inject, arrive int64, delay float64) Record {
	return Record{
		ID: id, Src: src, Dst: dst, Hops: 3,
		CreateCycle: create, InjectCycle: inject, ArriveCycle: arrive, DelayNs: delay,
	}
}

func TestRecordDerivedMetrics(t *testing.T) {
	r := rec(1, 0, 5, 100, 110, 160, 60)
	if r.LatencyCycles() != 60 {
		t.Errorf("latency = %d", r.LatencyCycles())
	}
	if r.QueueCycles() != 10 {
		t.Errorf("queueing = %d", r.QueueCycles())
	}
}

func TestLogCapacityAndDropping(t *testing.T) {
	l := NewLog(2)
	for i := int64(0); i < 5; i++ {
		l.Add(rec(i, 0, 1, 0, 1, 2, 1))
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	if l.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", l.Dropped())
	}
}

func TestNewLogDefaultCapacity(t *testing.T) {
	l := NewLog(0)
	l.Add(rec(1, 0, 1, 0, 1, 2, 1))
	if l.Len() != 1 || l.Dropped() != 0 {
		t.Error("default-capacity log misbehaves")
	}
}

func TestAddPacket(t *testing.T) {
	l := NewLog(10)
	p := &noc.Packet{ID: 7, Src: 2, Dst: 9, Hops: 4, CreateCycle: 5, InjectCycle: 6, ArriveCycle: 50}
	l.AddPacket(p, 45.5)
	r := l.Records()[0]
	if r.ID != 7 || r.Src != 2 || r.Dst != 9 || r.Hops != 4 || r.DelayNs != 45.5 {
		t.Errorf("record %+v", r)
	}
}

func TestWriteCSV(t *testing.T) {
	l := NewLog(10)
	l.Add(rec(1, 0, 5, 100, 110, 160, 60))
	var sb strings.Builder
	if err := l.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,src,dst") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",60,") { // latency column
		t.Errorf("row = %q", lines[1])
	}
}

func TestFlowsAggregation(t *testing.T) {
	l := NewLog(100)
	// Two flows: 0->5 (3 packets), 1->2 (1 packet).
	l.Add(rec(1, 0, 5, 0, 2, 10, 10))
	l.Add(rec(2, 0, 5, 5, 6, 25, 20))
	l.Add(rec(3, 0, 5, 9, 12, 39, 30))
	l.Add(rec(4, 1, 2, 0, 1, 8, 8))
	flows := l.Flows()
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	top := flows[0]
	if top.Src != 0 || top.Dst != 5 || top.Packets != 3 {
		t.Fatalf("top flow %+v", top)
	}
	if top.MeanDelayNs != 20 {
		t.Errorf("mean delay = %g, want 20", top.MeanDelayNs)
	}
	if top.MaxDelayNs != 30 {
		t.Errorf("max delay = %g, want 30", top.MaxDelayNs)
	}
	if top.MeanLatency != 20 { // latencies 10, 20, 30
		t.Errorf("mean latency = %g", top.MeanLatency)
	}
	if top.MeanQueueing != 2 { // queueing 2, 1, 3
		t.Errorf("mean queueing = %g", top.MeanQueueing)
	}
}

func TestFlowsSortStability(t *testing.T) {
	l := NewLog(10)
	l.Add(rec(1, 3, 4, 0, 1, 5, 5))
	l.Add(rec(2, 1, 2, 0, 1, 5, 5))
	flows := l.Flows()
	// Equal packet counts: sorted by src then dst.
	if flows[0].Src != 1 || flows[1].Src != 3 {
		t.Errorf("flow order %v", flows)
	}
}

func TestWriteFlowsCSV(t *testing.T) {
	l := NewLog(10)
	l.Add(rec(1, 0, 5, 0, 2, 10, 10))
	var sb strings.Builder
	if err := l.WriteFlowsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "src,dst,hops,packets") {
		t.Error("missing flows header")
	}
}
