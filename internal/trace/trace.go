// Package trace records per-packet lifecycle events from a simulation —
// creation, injection, arrival, hops, latency and delay — and exports them
// as CSV or aggregated per-flow statistics. It is the repo's counterpart
// of Booksim's watch/trace facilities: the paper's methodology (importing
// simulated activity into the power flow, measuring per-packet delays at
// the receivers) relies on exactly this kind of per-packet visibility.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/noc"
)

// Record is one packet's lifecycle.
type Record struct {
	ID          int64
	Src, Dst    noc.NodeID
	Hops        int
	CreateCycle int64
	InjectCycle int64
	ArriveCycle int64
	// DelayNs is the end-to-end delay in nanoseconds (real time).
	DelayNs float64
}

// LatencyCycles returns the packet latency in network clock cycles,
// including source-queue time.
func (r Record) LatencyCycles() int64 { return r.ArriveCycle - r.CreateCycle }

// QueueCycles returns the cycles spent waiting in the source queue before
// the head flit entered the network.
func (r Record) QueueCycles() int64 { return r.InjectCycle - r.CreateCycle }

// Log collects packet records up to a capacity; beyond it, new records
// are dropped and counted, keeping memory bounded on long runs.
type Log struct {
	records []Record
	cap     int
	dropped int64
}

// NewLog creates a log holding at most capacity records (<=0 means a
// default of 1<<20).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	return &Log{cap: capacity}
}

// Add records one packet if capacity remains.
func (l *Log) Add(r Record) {
	if len(l.records) >= l.cap {
		l.dropped++
		return
	}
	l.records = append(l.records, r)
}

// AddPacket converts a delivered noc.Packet into a Record.
func (l *Log) AddPacket(p *noc.Packet, delayNs float64) {
	l.Add(Record{
		ID:          p.ID,
		Src:         p.Src,
		Dst:         p.Dst,
		Hops:        p.Hops,
		CreateCycle: p.CreateCycle,
		InjectCycle: p.InjectCycle,
		ArriveCycle: p.ArriveCycle,
		DelayNs:     delayNs,
	})
}

// Len returns the number of stored records.
func (l *Log) Len() int { return len(l.records) }

// Dropped returns the number of records discarded after the log filled.
func (l *Log) Dropped() int64 { return l.dropped }

// Records returns the stored records (shared slice; callers must not
// mutate).
func (l *Log) Records() []Record { return l.records }

// WriteCSV dumps the log with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "id,src,dst,hops,create_cycle,inject_cycle,arrive_cycle,latency_cycles,queue_cycles,delay_ns"); err != nil {
		return err
	}
	for _, r := range l.records {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f\n",
			r.ID, r.Src, r.Dst, r.Hops, r.CreateCycle, r.InjectCycle,
			r.ArriveCycle, r.LatencyCycles(), r.QueueCycles(), r.DelayNs); err != nil {
			return err
		}
	}
	return nil
}

// FlowStat aggregates one source-destination flow.
type FlowStat struct {
	Src, Dst     noc.NodeID
	Packets      int64
	MeanDelayNs  float64
	MaxDelayNs   float64
	MeanLatency  float64
	MeanQueueing float64
	Hops         int
}

// Flows aggregates the log per (src, dst) pair, sorted by descending
// packet count.
func (l *Log) Flows() []FlowStat {
	type key struct{ s, d noc.NodeID }
	agg := make(map[key]*FlowStat)
	for _, r := range l.records {
		k := key{r.Src, r.Dst}
		st, ok := agg[k]
		if !ok {
			st = &FlowStat{Src: r.Src, Dst: r.Dst, Hops: r.Hops}
			agg[k] = st
		}
		st.Packets++
		n := float64(st.Packets)
		st.MeanDelayNs += (r.DelayNs - st.MeanDelayNs) / n
		st.MeanLatency += (float64(r.LatencyCycles()) - st.MeanLatency) / n
		st.MeanQueueing += (float64(r.QueueCycles()) - st.MeanQueueing) / n
		if r.DelayNs > st.MaxDelayNs {
			st.MaxDelayNs = r.DelayNs
		}
	}
	out := make([]FlowStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// WriteFlowsCSV dumps the per-flow aggregation.
func (l *Log) WriteFlowsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "src,dst,hops,packets,mean_delay_ns,max_delay_ns,mean_latency_cycles,mean_queue_cycles"); err != nil {
		return err
	}
	for _, f := range l.Flows() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%.3f,%.3f,%.2f,%.2f\n",
			f.Src, f.Dst, f.Hops, f.Packets, f.MeanDelayNs, f.MaxDelayNs,
			f.MeanLatency, f.MeanQueueing); err != nil {
			return err
		}
	}
	return nil
}
