package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/noc"
)

// InjectionEvent is one recorded packet generation: at node cycle Cycle,
// source Src offered a packet for Dst (Dim is the O1TURN dimension order,
// 0 for deterministic routing). Events carry everything the injector
// decided by random draw, so replaying them reproduces the source run's
// packet stream exactly.
type InjectionEvent struct {
	Cycle int64      `json:"cycle"`
	Src   noc.NodeID `json:"src"`
	Dst   noc.NodeID `json:"dst"`
	Dim   uint8      `json:"dim,omitempty"`
}

// Injection is a per-source injection trace: the golden file format of
// the capture→replay loop. The header pins the mesh shape and packet
// size the trace was captured under, so a replay against a different
// topology fails loudly instead of silently skewing.
type Injection struct {
	// Width, Height and PacketSize are the capture run's mesh shape and
	// packet size; a replay validates its config against them.
	Width      int `json:"width"`
	Height     int `json:"height"`
	PacketSize int `json:"packet_size"`
	// Cycles is the number of node cycles the capture covered (events
	// all have Cycle < Cycles once the capture run finishes).
	Cycles int64 `json:"cycles"`
	// Events are the recorded generations in injection order: ascending
	// by cycle, and within one cycle in ascending source order (the
	// order the injector visits nodes).
	Events []InjectionEvent `json:"events"`
}

// Validate checks the trace is internally consistent and matches cfg.
func (t *Injection) Validate(cfg noc.Config) error {
	if t.Width != cfg.Width || t.Height != cfg.Height {
		return fmt.Errorf("trace: captured on a %dx%d mesh, config is %dx%d",
			t.Width, t.Height, cfg.Width, cfg.Height)
	}
	if t.PacketSize != cfg.PacketSize {
		return fmt.Errorf("trace: captured with packet size %d, config uses %d",
			t.PacketSize, cfg.PacketSize)
	}
	if t.Cycles <= 0 {
		return fmt.Errorf("trace: non-positive cycle count %d", t.Cycles)
	}
	nodes := noc.NodeID(cfg.Nodes())
	prev := int64(-1)
	prevSrc := noc.NodeID(-1)
	for i, e := range t.Events {
		if e.Cycle < 0 || e.Cycle >= t.Cycles {
			return fmt.Errorf("trace: event %d at cycle %d outside [0, %d)", i, e.Cycle, t.Cycles)
		}
		if e.Cycle < prev || (e.Cycle == prev && e.Src < prevSrc) {
			return fmt.Errorf("trace: event %d out of injection order", i)
		}
		if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes {
			return fmt.Errorf("trace: event %d references node outside the mesh", i)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("trace: event %d is self traffic at node %d", i, e.Src)
		}
		prev, prevSrc = e.Cycle, e.Src
	}
	return nil
}

// MeanRate returns the trace's average offered rate in flits per node
// per node cycle — the replayed counterpart of Injector.MeanRate.
func (t *Injection) MeanRate() float64 {
	nodes := t.Width * t.Height
	if t.Cycles == 0 || nodes == 0 {
		return 0
	}
	flits := float64(len(t.Events)) * float64(t.PacketSize)
	return flits / float64(t.Cycles) / float64(nodes)
}

// Matrix returns the packet-count traffic matrix of the trace, indexed
// by mesh node id. Replay injectors use it to expose the same
// NormalizedMatrix capacity estimates a synthetic pattern would.
func (t *Injection) Matrix() [][]float64 {
	n := t.Width * t.Height
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for _, e := range t.Events {
		m[e.Src][e.Dst]++
	}
	return m
}

// Sort orders events into canonical injection order (ascending cycle,
// then source). Captures already produce this order; Sort makes
// hand-assembled traces valid.
func (t *Injection) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		if t.Events[i].Cycle != t.Events[j].Cycle {
			return t.Events[i].Cycle < t.Events[j].Cycle
		}
		return t.Events[i].Src < t.Events[j].Src
	})
}

// WriteJSON writes the trace as indented JSON (the golden-file form).
func (t *Injection) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadInjection parses a trace previously written with WriteJSON.
func ReadInjection(r io.Reader) (*Injection, error) {
	var t Injection
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding injection trace: %w", err)
	}
	return &t, nil
}

// SaveInjection writes the trace to path, creating or truncating it.
func SaveInjection(path string, t *Injection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadInjection reads a trace file written with SaveInjection.
func LoadInjection(path string) (*Injection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInjection(f)
}
