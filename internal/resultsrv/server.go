// Package resultsrv is the HTTP face of the persistent results store:
// the query API and live dashboard behind cmd/resultsd. It reads a
// nocsim/results store (typically as a read-only follower of the file a
// coordinator is ingesting into), serves filtered point queries, renders
// completed plans into the same tables cmd/figures prints — byte for
// byte, via internal/sweep's Render — and memoizes those renders keyed
// by the plan fingerprint, so a repeated query is a map lookup no matter
// how many users ask.
package resultsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/queue"
	"repro/internal/sweep"
	"repro/nocsim"
	"repro/nocsim/results"
)

// Server serves one results store over HTTP. The zero value of the
// counters is ready; construct with the Store (required) and an optional
// Coordinator client for the live-fleet feed.
type Server struct {
	// Store is the results store to serve. With a read-only store the
	// server refreshes it before answering, so queries observe points a
	// live coordinator appended moments ago.
	Store *results.Store
	// Coordinator, when non-nil, is proxied for the dashboard's live
	// feed: GET /api/coordinator/metrics forwards the coordinator's
	// Prometheus text (with the client's token attached), so the browser
	// needs no fleet credentials.
	Coordinator *queue.Client

	mu      sync.Mutex
	cache   map[string][]sweep.Table // rendered tables keyed by plan fingerprint
	queries int64                    // API queries answered
	hits    int64                    // renders served from the cache
	misses  int64                    // renders that had to run
}

// Stats is the service's own instrumentation, served as /api/stats and
// (in Prometheus form) /metrics. CacheHits counting up while repeated
// identical queries come in is the observable proof that rendering is
// O(1) after the first hit.
type Stats struct {
	Queries     int64 `json:"queries"`
	CacheHits   int64 `json:"render_cache_hits"`
	CacheMisses int64 `json:"render_cache_misses"`
	Plans       int   `json:"plans"`
	Points      int   `json:"points"`
}

// Stats returns a snapshot of the service counters and store contents.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{Queries: s.queries, CacheHits: s.hits, CacheMisses: s.misses}
	s.mu.Unlock()
	for _, p := range s.Store.Plans() {
		st.Plans++
		st.Points += p.Done
	}
	return st
}

// IncompleteError reports a render request against a plan whose points
// are not all stored yet; it carries the progress so callers (and the
// dashboard) can say how far along the sweep is.
type IncompleteError struct {
	Sum   string
	Name  string
	Done  int
	Total int
}

func (e *IncompleteError) Error() string {
	return fmt.Sprintf("resultsrv: plan %s (%s) is %d/%d complete; tables render only from complete plans", e.Sum, e.Name, e.Done, e.Total)
}

// Tables renders a stored plan's tables, by fingerprint or manifest
// name. Identical plans share one cached render: the first call for a
// fingerprint renders and memoizes, every later call is a cache hit.
// Any changed planning knob changes the fingerprint (see manifest.Sum)
// and therefore misses — there is no way for a stale table to be served
// against a new plan. The bool reports whether this call was a cache
// hit.
func (s *Server) Tables(ref string) ([]sweep.Table, bool, error) {
	sum, ok := s.Store.Resolve(ref)
	if !ok {
		return nil, false, fmt.Errorf("resultsrv: unknown plan %q", ref)
	}
	s.mu.Lock()
	if tables, ok := s.cache[sum]; ok {
		s.hits++
		s.mu.Unlock()
		return tables, true, nil
	}
	s.mu.Unlock()

	m, done, total, ok := s.Store.Complete(sum)
	if !ok {
		return nil, false, fmt.Errorf("resultsrv: unknown plan %q", ref)
	}
	if done < total {
		return nil, false, &IncompleteError{Sum: sum, Name: m.Name, Done: done, Total: total}
	}
	have, _ := s.Store.PointsOf(sum)
	flat := make([]nocsim.Result, total)
	for i := 0; i < total; i++ {
		flat[i] = have[i]
	}
	tables, err := sweep.Render(m, flat)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.cache[sum]; ok {
		// A concurrent request rendered the same plan first; count this
		// one as the hit it effectively is and share the cached tables.
		s.hits++
		return cached, true, nil
	}
	if s.cache == nil {
		s.cache = map[string][]sweep.Table{}
	}
	s.cache[sum] = tables
	s.misses++
	return tables, false, nil
}

// FormatTables renders tables to the aligned-text form cmd/figures
// prints on stdout — concatenated Table.Format output, which is what
// the CI smoke diffs byte-for-byte against a figures run.
func FormatTables(tables []sweep.Table) ([]byte, error) {
	var buf bytes.Buffer
	for i := range tables {
		if err := tables[i].Format(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// countQuery bumps the query counter and, for read-only stores, folds in
// freshly appended records so the answer reflects the live file.
func (s *Server) countQuery() error {
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
	return s.Store.Refresh()
}

// Handler returns the service's HTTP API:
//
//	GET /                         -> live dashboard (HTML)
//	GET /api/plans                -> stored plans with progress
//	GET /api/points?...           -> filtered points (results.ParseQuery vocabulary)
//	GET /api/tables/{ref}         -> rendered tables; ?format=text (default) or json
//	GET /api/stats                -> Stats (cache hit/miss counters)
//	GET /api/coordinator/metrics  -> proxied coordinator Prometheus text (when configured)
//	GET /metrics                  -> the service's own Prometheus counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	})
	mux.HandleFunc("GET /api/plans", func(w http.ResponseWriter, r *http.Request) {
		if err := s.countQuery(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, s.Store.Plans())
	})
	mux.HandleFunc("GET /api/points", func(w http.ResponseWriter, r *http.Request) {
		if err := s.countQuery(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		params := map[string]string{}
		for k, vs := range r.URL.Query() {
			if len(vs) > 0 {
				params[k] = vs[0]
			}
		}
		q, err := results.ParseQuery(params)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pts, err := s.Store.Select(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if pts == nil {
			pts = []results.Point{}
		}
		writeJSON(w, pts)
	})
	mux.HandleFunc("GET /api/tables/{ref}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.countQuery(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		tables, hit, err := s.Tables(r.PathValue("ref"))
		if err != nil {
			if inc, ok := err.(*IncompleteError); ok {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusConflict)
				json.NewEncoder(w).Encode(map[string]any{"error": inc.Error(), "done": inc.Done, "total": inc.Total})
				return
			}
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("X-Render-Cache", cacheHeader(hit))
		switch r.URL.Query().Get("format") {
		case "", "text":
			text, err := FormatTables(tables)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write(text)
		case "json":
			writeJSON(w, tables)
		default:
			http.Error(w, "unknown format (want text or json)", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("GET /api/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /api/coordinator/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.Coordinator == nil {
			http.Error(w, "no coordinator configured (-coordinator)", http.StatusNotFound)
			return
		}
		text, err := s.Coordinator.Metrics(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(text)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# HELP nocsim_results_queries_total API queries answered by this results service.\n# TYPE nocsim_results_queries_total counter\nnocsim_results_queries_total %d\n", st.Queries)
		fmt.Fprintf(w, "# HELP nocsim_results_render_cache_hits_total Table renders served from the fingerprint-keyed cache.\n# TYPE nocsim_results_render_cache_hits_total counter\nnocsim_results_render_cache_hits_total %d\n", st.CacheHits)
		fmt.Fprintf(w, "# HELP nocsim_results_render_cache_misses_total Table renders that had to run.\n# TYPE nocsim_results_render_cache_misses_total counter\nnocsim_results_render_cache_misses_total %d\n", st.CacheMisses)
		fmt.Fprintf(w, "# HELP nocsim_results_plans Plans in the store.\n# TYPE nocsim_results_plans gauge\nnocsim_results_plans %d\n", st.Plans)
		fmt.Fprintf(w, "# HELP nocsim_results_points Points in the store.\n# TYPE nocsim_results_points gauge\nnocsim_results_points %d\n", st.Points)
	})
	return mux
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
