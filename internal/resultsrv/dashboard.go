package resultsrv

// dashboardHTML is the live fleet dashboard served at /: a single
// self-contained page (no external assets — the service may run on an
// air-gapped cluster) polling the query API for stored plans and the
// proxied coordinator /metrics for fleet throughput, per-manifest
// progress and per-worker attribution. With no coordinator configured
// the fleet panel simply reports the store-only mode.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>nocsim results</title>
<style>
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; margin: .5rem 0; }
  th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #ddd; font-variant-numeric: tabular-nums; }
  th { border-bottom: 2px solid #999; }
  .num { text-align: right; }
  .stat { display: inline-block; margin-right: 2rem; }
  .stat b { font-size: 1.4rem; display: block; }
  .muted { color: #777; }
  progress { width: 10rem; }
  a { color: #0b57d0; }
  code { background: #f2f2f2; padding: 0 .25rem; }
</style>
</head>
<body>
<h1>nocsim results service</h1>
<div>
  <span class="stat"><b id="points-s">–</b>fleet points/s</span>
  <span class="stat"><b id="store-points">–</b>points stored</span>
  <span class="stat"><b id="cache-hits">–</b>render cache hits</span>
  <span class="stat"><b id="cache-misses">–</b>render cache misses</span>
</div>

<h2>Stored plans</h2>
<table id="plans"><thead><tr>
  <th>name</th><th>plan</th><th>options</th><th class="num">done</th><th class="num">total</th><th>progress</th><th>tables</th>
</tr></thead><tbody></tbody></table>

<h2>Fleet <span id="fleet-note" class="muted"></span></h2>
<table id="manifests"><thead><tr>
  <th>manifest</th><th class="num">done</th><th class="num">total</th><th>progress</th><th class="num">lease TTL (s)</th>
</tr></thead><tbody></tbody></table>
<table id="workers"><thead><tr>
  <th>worker</th><th class="num">points</th><th>last seen</th>
</tr></thead><tbody></tbody></table>

<p class="muted">Query API: <code>/api/plans</code>, <code>/api/points?plan=fig7&amp;policy=rmsd&amp;min_load=0.2</code>,
<code>/api/tables/fig7?format=text</code>, <code>/api/stats</code>.</p>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const esc = (s) => String(s).replace(/[&<>"]/g, (c) => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[c]));

// parseProm turns Prometheus text into [{name, labels:{k:v}, value}].
function parseProm(text) {
  const out = [];
  for (const line of text.split('\n')) {
    if (!line || line.startsWith('#')) continue;
    const m = line.match(/^(\w+)(?:\{(.*)\})? (.+)$/);
    if (!m) continue;
    const labels = {};
    if (m[2]) for (const kv of m[2].match(/\w+="(?:[^"\\]|\\.)*"/g) || []) {
      const eq = kv.indexOf('=');
      labels[kv.slice(0, eq)] = JSON.parse(kv.slice(eq + 1));
    }
    out.push({name: m[1], labels, value: parseFloat(m[3])});
  }
  return out;
}

async function refreshStore() {
  const [plans, stats] = await Promise.all([
    fetch('api/plans').then(r => r.json()),
    fetch('api/stats').then(r => r.json()),
  ]);
  $('store-points').textContent = stats.points;
  $('cache-hits').textContent = stats.render_cache_hits;
  $('cache-misses').textContent = stats.render_cache_misses;
  $('plans').tBodies[0].innerHTML = (plans || []).map(p => {
    const opts = (p.quick ? 'quick, ' : '') + p.points + ' pts/curve, seed ' + p.seed;
    const link = p.complete ? '<a href="api/tables/' + esc(p.sum) + '?format=text">text</a> <a href="api/tables/' + esc(p.sum) + '?format=json">json</a>' : '<span class="muted">incomplete</span>';
    return '<tr><td>' + esc(p.name) + '</td><td><code>' + esc(p.sum) + '</code></td><td>' + esc(opts) +
      '</td><td class="num">' + p.done + '</td><td class="num">' + p.total +
      '</td><td><progress max="' + p.total + '" value="' + p.done + '"></progress></td><td>' + link + '</td></tr>';
  }).join('');
}

async function refreshFleet() {
  const resp = await fetch('api/coordinator/metrics');
  if (!resp.ok) {
    $('fleet-note').textContent = resp.status === 404 ?
      '(no coordinator configured; store-only mode)' : '(coordinator unreachable)';
    return;
  }
  const series = parseProm(await resp.text());
  const one = (name) => { const s = series.find(x => x.name === name); return s ? s.value : NaN; };
  $('points-s').textContent = one('nocsim_points_per_second').toFixed(2);
  $('fleet-note').textContent = '(' + one('nocsim_leases_outstanding') + ' leases outstanding, ' +
    one('nocsim_points_completed_total') + ' points completed)';
  const totals = {}, dones = {}, ttls = {};
  for (const s of series) {
    if (s.name === 'nocsim_manifest_points_total') totals[s.labels.manifest] = s.value;
    if (s.name === 'nocsim_manifest_points_done') dones[s.labels.manifest] = s.value;
    if (s.name === 'nocsim_lease_ttl_seconds') ttls[s.labels.manifest] = s.value;
  }
  $('manifests').tBodies[0].innerHTML = Object.keys(totals).sort().map(m =>
    '<tr><td>' + esc(m) + '</td><td class="num">' + (dones[m] || 0) + '</td><td class="num">' + totals[m] +
    '</td><td><progress max="' + totals[m] + '" value="' + (dones[m] || 0) + '"></progress></td><td class="num">' +
    (ttls[m] === undefined ? '' : ttls[m].toFixed(1)) + '</td></tr>').join('');
  const workers = series.filter(s => s.name === 'nocsim_worker_points_completed_total');
  const seen = {};
  for (const s of series) if (s.name === 'nocsim_worker_last_seen_timestamp_seconds') seen[s.labels.worker] = s.value;
  $('workers').tBodies[0].innerHTML = workers.sort((a, b) => b.value - a.value).map(s => {
    const ago = seen[s.labels.worker] ? Math.max(0, Date.now() / 1000 - seen[s.labels.worker]).toFixed(0) + 's ago' : '';
    return '<tr><td>' + esc(s.labels.worker) + '</td><td class="num">' + s.value + '</td><td>' + ago + '</td></tr>';
  }).join('');
}

async function tick() {
  try { await refreshStore(); } catch (e) { /* transient */ }
  try { await refreshFleet(); } catch (e) { $('fleet-note').textContent = '(coordinator unreachable)'; }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
