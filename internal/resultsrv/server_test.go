package resultsrv

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/nocsim"
	"repro/nocsim/manifest"
	"repro/nocsim/results"
)

// testManifest builds a renderable fig7-shaped manifest (three policies
// over the given loads, calibration pinned) without running simulations.
func testManifest(t *testing.T, loads ...float64) *manifest.Manifest {
	t.Helper()
	base := nocsim.Scenario{Mesh: nocsim.DefaultMesh(), Pattern: "uniform", Quick: true, Seed: 1}.Normalized()
	base.Calibration = &nocsim.Calibration{SaturationRate: 0.6, LambdaMax: 0.54, TargetDelayNs: 100}
	return &manifest.Manifest{Name: "fig7", Quick: true, Points: len(loads), Seed: 1, Panels: []manifest.Panel{
		{Label: "uniform", Grid: nocsim.Grid{Base: base, Loads: loads, Policies: nocsim.AllPolicies()}},
	}}
}

func fakeResult(t *testing.T, m *manifest.Manifest, i int) nocsim.Result {
	t.Helper()
	_, sc, err := m.Point(i)
	if err != nil {
		t.Fatal(err)
	}
	var r nocsim.Result
	r.Scenario = sc
	r.AvgDelayNs = float64(100 + i)
	r.Meta.PointIndex = i
	return r
}

// storeWith opens a store and ingests the manifest with all (or the
// first n, if n >= 0) of its points filled in.
func storeWith(t *testing.T, path string, n int, ms ...*manifest.Manifest) *results.Store {
	t.Helper()
	s, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for _, m := range ms {
		sum, err := s.AddManifest(m)
		if err != nil {
			t.Fatal(err)
		}
		limit := m.NumPoints()
		if n >= 0 && n < limit {
			limit = n
		}
		for i := 0; i < limit; i++ {
			if err := s.AddPoint(sum, i, fakeResult(t, m, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// TestRenderCacheKeying is the cache-keying acceptance test: identical
// plan fingerprints share one cached render (hits counting up), and
// changing any planning knob yields a new fingerprint and a cache miss.
func TestRenderCacheKeying(t *testing.T) {
	dir := t.TempDir()
	m1 := testManifest(t, 0.1, 0.2)
	srv := &Server{Store: storeWith(t, filepath.Join(dir, "r.jsonl"), -1, m1)}
	sum1, _ := manifest.Sum(m1)

	if _, hit, err := srv.Tables(sum1); err != nil || hit {
		t.Fatalf("first render = (hit=%v, %v), want a miss", hit, err)
	}
	for i := 0; i < 3; i++ {
		if _, hit, err := srv.Tables(sum1); err != nil || !hit {
			t.Fatalf("repeat render %d = (hit=%v, %v), want a hit", i, hit, err)
		}
	}
	// By name resolves to the same fingerprint, so it hits too.
	if _, hit, err := srv.Tables("fig7"); err != nil || !hit {
		t.Fatalf("render by name = (hit=%v, %v), want a hit", hit, err)
	}
	st := srv.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 4 {
		t.Fatalf("stats = %d misses / %d hits, want 1 / 4", st.CacheMisses, st.CacheHits)
	}

	// One changed knob — a single load value — is a different plan: new
	// fingerprint, cache miss.
	m2 := testManifest(t, 0.1, 0.25)
	sum2, err := srv.Store.AddManifest(m2)
	if err != nil {
		t.Fatal(err)
	}
	if sum2 == sum1 {
		t.Fatalf("changed load kept fingerprint %s", sum1)
	}
	for i := 0; i < m2.NumPoints(); i++ {
		if err := srv.Store.AddPoint(sum2, i, fakeResult(t, m2, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, hit, err := srv.Tables(sum2); err != nil || hit {
		t.Fatalf("render of changed plan = (hit=%v, %v), want a miss", hit, err)
	}
	if st := srv.Stats(); st.CacheMisses != 2 {
		t.Fatalf("misses after changed plan = %d, want 2", st.CacheMisses)
	}
	// Every other knob also moves the fingerprint.
	for name, mutate := range map[string]func(*manifest.Manifest){
		"seed":    func(m *manifest.Manifest) { m.Seed = 2 },
		"quick":   func(m *manifest.Manifest) { m.Quick = false },
		"pattern": func(m *manifest.Manifest) { m.Panels[0].Grid.Base.Pattern = "tornado" },
		"mesh":    func(m *manifest.Manifest) { m.Panels[0].Grid.Base.Mesh.Width = 8 },
	} {
		m := testManifest(t, 0.1, 0.2)
		mutate(m)
		if sum, _ := manifest.Sum(m); sum == sum1 {
			t.Errorf("changing %s kept fingerprint %s", name, sum1)
		}
	}
}

// TestTablesByteIdenticalToFigures pins the acceptance criterion that the
// query API's text rendering matches what cmd/figures prints for the
// same manifest and results: both are sweep.Render + Table.Format.
func TestTablesByteIdenticalToFigures(t *testing.T) {
	m := testManifest(t, 0.1, 0.2, 0.3)
	srv := &Server{Store: storeWith(t, filepath.Join(t.TempDir(), "r.jsonl"), -1, m)}

	flat := make([]nocsim.Result, m.NumPoints())
	for i := range flat {
		flat[i] = fakeResult(t, m, i)
	}
	want, err := sweep.Render(m, flat)
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	for i := range want {
		if err := want[i].Format(&ref); err != nil {
			t.Fatal(err)
		}
	}
	if ref.Len() == 0 {
		t.Fatal("reference render is empty; the comparison proves nothing")
	}

	tables, _, err := srv.Tables("fig7")
	if err != nil {
		t.Fatal(err)
	}
	got, err := FormatTables(tables)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatalf("service tables differ from direct render:\n--- direct ---\n%s--- service ---\n%s", ref.Bytes(), got)
	}
}

// TestHandler drives the HTTP API end to end: plans, filtered points,
// tables with the cache header, the 409 for incomplete plans, stats and
// Prometheus metrics.
func TestHandler(t *testing.T) {
	m := testManifest(t, 0.1, 0.2)
	srv := &Server{Store: storeWith(t, filepath.Join(t.TempDir(), "r.jsonl"), -1, m)}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/api/plans")
	var plans []results.PlanInfo
	if err := json.Unmarshal(body, &plans); err != nil || resp.StatusCode != 200 {
		t.Fatalf("plans: status %d, err %v", resp.StatusCode, err)
	}
	if len(plans) != 1 || plans[0].Name != "fig7" || !plans[0].Complete {
		t.Fatalf("plans = %+v", plans)
	}

	resp, body = get("/api/points?plan=fig7&policy=rmsd&min_load=0.15")
	var pts []results.Point
	if err := json.Unmarshal(body, &pts); err != nil || resp.StatusCode != 200 {
		t.Fatalf("points: status %d, err %v", resp.StatusCode, err)
	}
	if len(pts) != 1 || pts[0].Scenario.Policy != nocsim.RMSD {
		t.Fatalf("filtered points = %+v", pts)
	}
	if resp, _ = get("/api/points?bogus=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus filter: status %d, want 400", resp.StatusCode)
	}

	resp, first := get("/api/tables/fig7?format=text")
	if resp.StatusCode != 200 || resp.Header.Get("X-Render-Cache") != "miss" {
		t.Fatalf("first tables: status %d, cache %q", resp.StatusCode, resp.Header.Get("X-Render-Cache"))
	}
	resp, second := get("/api/tables/fig7?format=text")
	if resp.Header.Get("X-Render-Cache") != "hit" {
		t.Fatalf("second tables: cache %q, want hit", resp.Header.Get("X-Render-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached render differs from the original")
	}
	if resp, _ = get("/api/tables/fig7?format=yaml"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", resp.StatusCode)
	}
	if resp, _ = get("/api/tables/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown plan: status %d, want 404", resp.StatusCode)
	}

	resp, body = get("/api/stats")
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil || resp.StatusCode != 200 {
		t.Fatalf("stats: status %d, err %v", resp.StatusCode, err)
	}
	// Hits: the second text request plus the format=yaml one (the cache
	// lookup precedes the format check). Misses: only the first render.
	if st.CacheHits != 2 || st.CacheMisses != 1 || st.Plans != 1 || st.Points != m.NumPoints() {
		t.Fatalf("stats = %+v", st)
	}

	_, body = get("/metrics")
	for _, series := range []string{
		"nocsim_results_queries_total",
		"nocsim_results_render_cache_hits_total 2",
		"nocsim_results_render_cache_misses_total 1",
		"nocsim_results_plans 1",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("metrics missing %q:\n%s", series, body)
		}
	}

	// No coordinator configured: the proxy route says so.
	if resp, _ = get("/api/coordinator/metrics"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("coordinator proxy without coordinator: status %d, want 404", resp.StatusCode)
	}

	// The dashboard is served at / only.
	if resp, _ = get("/"); resp.StatusCode != 200 {
		t.Fatalf("dashboard: status %d", resp.StatusCode)
	}
	if resp, _ = get("/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

// TestIncompletePlanConflict: rendering a plan that is still missing
// points reports 409 with progress, and nothing is cached for it.
func TestIncompletePlanConflict(t *testing.T) {
	m := testManifest(t, 0.1, 0.2)
	srv := &Server{Store: storeWith(t, filepath.Join(t.TempDir(), "r.jsonl"), 2, m)}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/tables/fig7")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("incomplete plan: status %d, want 409", resp.StatusCode)
	}
	var progress struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}
	if err := json.Unmarshal(body, &progress); err != nil {
		t.Fatal(err)
	}
	if progress.Done != 2 || progress.Total != m.NumPoints() {
		t.Fatalf("progress = %+v, want 2/%d", progress, m.NumPoints())
	}
	if st := srv.Stats(); st.CacheHits+st.CacheMisses != 0 {
		t.Fatalf("incomplete render touched the cache: %+v", st)
	}
}
