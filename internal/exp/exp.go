// Package exp is the parallel experiment engine: it fans a list of
// independent simulation points out across a bounded pool of worker
// goroutines and collects their results in input order.
//
// The evaluation behind the paper is a large grid of mutually independent
// runs (policies × traffic patterns × injection rates × mesh sizes), and
// every harness layer — core's saturation search and calibration, sweep's
// figure and ablation generators, the cmd front-ends — funnels its grid
// through this package instead of looping serially.
//
// # Determinism
//
// The engine never lets concurrency leak into results. Each point is a
// self-contained closure: it owns its RNG state (constructed inside the
// point from a deterministic seed — the sweeps reuse their scenario
// seed per point; Seed derives per-point streams for grids that want
// them), shares no mutable state with other points, and its result
// lands at its own index of the output slice.
// Consequently the output is byte-identical for any worker count,
// including Workers=1, which is the serial reference the golden tests
// compare against: the engine runs points one at a time on the calling
// goroutine, in index order, with no goroutines at all.
//
// # Leaf budget
//
// Worker pools bound goroutines per Run call, not work per process:
// nested grids (a panel point that fans out its own sub-grid) stack
// pools multiplicatively. The process-wide leaf budget (SetLeafBudget,
// AcquireLeaf, AcquireLeafN) is the depth-aware bound: only the
// innermost unit of work — one simulation — holds budget slots while it
// executes, so total in-flight simulation threads never exceed the
// budget no matter how deeply grids nest, and since panel jobs never
// hold slots the scheme cannot deadlock. The budget is weighted: a
// simulation stepped by k engine workers acquires k slots (AcquireLeafN),
// so intra-simulation parallelism and grid parallelism draw from the
// same pool of cores.
//
// # Cancellation and failure
//
// Run derives a child context and cancels it on the first point error (or
// panic). No new points start, and in-flight points that observe the
// context (sim.RunContext does, inside the engine loop) abort promptly.
// Errors are reported as *PointError values, joined in index order; a
// panicking point is captured with its stack instead of taking down the
// process. Cancellation casualties — points that failed only because an
// earlier point's error tore down the grid — are dropped from the joined
// error so the root cause stays visible.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is one snapshot of a running grid, delivered to
// Runner.OnProgress after each point completes.
type Progress struct {
	// Done and Total count points of this Run call.
	Done, Total int
	// Elapsed is the wall time since the Run started.
	Elapsed time.Duration
	// Remaining estimates the time to completion by linear extrapolation
	// of the observed per-point rate (an ETA, not a promise).
	Remaining time.Duration
}

// Runner configures one grid execution.
type Runner struct {
	// Workers bounds the number of concurrently running points. Zero or
	// negative means GOMAXPROCS. Workers=1 selects the serial reference
	// path: points run on the calling goroutine in index order.
	Workers int
	// OnProgress, when non-nil, is invoked after every completed point.
	// Calls are serialized; keep the callback fast.
	OnProgress func(Progress)
	// Counters, when non-nil, additionally receives this run's
	// scheduled/done increments, scoping progress to one Runner. The
	// package-level Stats view stays the process-wide aggregate, which
	// over-counts any single grid when nested grids run concurrently.
	Counters *Counters
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PointError carries the failure of one grid point.
type PointError struct {
	// Index is the point's position in the grid.
	Index int
	// Err is the point's error, or a wrapped panic value.
	Err error
	// Stack is the goroutine stack when the point panicked, nil otherwise.
	Stack []byte
}

func (e *PointError) Error() string {
	if e.Stack != nil {
		return fmt.Sprintf("exp: point %d panicked: %v\n%s", e.Index, e.Err, e.Stack)
	}
	return fmt.Sprintf("exp: point %d: %v", e.Index, e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }

// Seed derives the RNG seed of grid point index from a root seed, using a
// SplitMix64 finalizer so neighbouring indices map to statistically
// independent streams. The derivation is pure: the same (root, index)
// always yields the same seed, which is what keeps parallel execution
// byte-identical to serial execution. The core sweeps
// (core.ComparePolicies) and the public nocsim.Grid derive their
// per-point streams here, so replications and variance analysis across
// points see uncorrelated samples; any new grid should do the same.
func Seed(root int64, index int) int64 {
	z := uint64(root) + 0x9E3779B97F4A7C15*(uint64(index)+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Counters accumulates scheduled/done point counts for the Run calls
// that share it (attach one via Runner.Counters). Unlike the package
// aggregate it is scoped: a figure generator can give each of its grids —
// or all of them — one Counters value and read progress that is not
// inflated by unrelated grids running concurrently in the same process.
type Counters struct {
	scheduled, done atomic.Int64
}

// Stats returns the cumulative points scheduled and completed by the Run
// calls this Counters was attached to.
func (c *Counters) Stats() (scheduled, done int64) {
	return c.scheduled.Load(), c.done.Load()
}

// Package-wide cumulative point counters: the aggregate of every Run
// call in the process, for coarse progress reporting across nested grids
// (cmd/figures polls them).
var (
	statScheduled atomic.Int64
	statDone      atomic.Int64
)

// Stats returns the cumulative number of points scheduled and completed
// by every Run call in the process, across all (possibly nested) grids.
// For progress scoped to one grid, attach a Counters to its Runner.
func Stats() (scheduled, done int64) {
	return statScheduled.Load(), statDone.Load()
}

// Leaf budget: one process-wide cap on concurrently held *leaf* slots.
// Worker pools bound goroutines per Run call, so nested grids (a figure
// panel whose points each fan out their own sub-grid) multiply pools up
// to W² goroutines; the budget is what bounds the actual work. Only leaf
// work — a single simulation, wrapped in AcquireLeaf/AcquireLeafN by the
// layer that runs it — holds slots; panel/outer jobs never do, so a
// blocked leaf only ever waits on other leaves, which always finish:
// nesting cannot deadlock (a naive per-level semaphore would, with a
// panel holding a slot while its children wait for one).
//
// The semaphore is weighted: a leaf that itself runs on k engine threads
// (a simulation with k step workers) charges k slots, so "budget = CPU
// cores" keeps meaning "about one busy core per slot" whether the
// parallelism lives between simulations or inside one. Waiters are
// served strictly FIFO; the queue head blocks the line, so a wide
// request cannot be starved by a stream of narrow ones.
type leafWaiter struct {
	want    int
	granted int
	ready   chan struct{}
}

var (
	leafMu      sync.Mutex
	leafCap     int // 0 until first use; then the configured budget
	leafInUse   int
	leafPeakN   int
	leafWaiters []*leafWaiter
)

// leafCapLocked returns the budget, defaulting to GOMAXPROCS on first
// use. Callers hold leafMu.
func leafCapLocked() int {
	if leafCap == 0 {
		leafCap = runtime.GOMAXPROCS(0)
	}
	return leafCap
}

// leafGrantLocked hands slots to queued waiters, in FIFO order, while
// they fit. Callers hold leafMu.
func leafGrantLocked() {
	budget := leafCapLocked()
	for len(leafWaiters) > 0 {
		w := leafWaiters[0]
		take := w.want
		if take > budget {
			take = budget
		}
		if leafInUse+take > budget {
			return
		}
		leafInUse += take
		if leafInUse > leafPeakN {
			leafPeakN = leafInUse
		}
		w.granted = take
		close(w.ready)
		leafWaiters[0] = nil
		leafWaiters = leafWaiters[1:]
	}
}

// SetLeafBudget caps the number of concurrently held leaf slots
// process-wide at n (n <= 0 restores the default, GOMAXPROCS). Slots
// already held keep counting against the new budget: shrinking below the
// current in-flight load admits no new leaves until enough slots drain;
// growing re-examines the wait queue immediately.
func SetLeafBudget(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	leafMu.Lock()
	defer leafMu.Unlock()
	leafCap = n
	leafGrantLocked()
}

// AcquireLeaf blocks until a leaf slot is free (or ctx is done) and
// returns the release function. Wrap exactly the execution of one leaf
// simulation: never hold a slot across code that acquires another, or
// the no-deadlock argument above is void.
func AcquireLeaf(ctx context.Context) (release func(), err error) {
	return AcquireLeafN(ctx, 1)
}

// AcquireLeafN blocks until n leaf slots are free (or ctx is done) and
// returns the release function for all of them. A leaf simulation that
// runs on n engine threads acquires weight n, so intra-simulation
// parallelism spends the same budget as inter-simulation parallelism.
// Requests wider than the whole budget are clamped to it (they would
// never be satisfiable otherwise); n < 1 acquires one slot. The
// acquisition is all-or-nothing — a waiter never holds a partial grant
// while blocked, so concurrent wide acquirers cannot deadlock.
func AcquireLeafN(ctx context.Context, n int) (release func(), err error) {
	if n < 1 {
		n = 1
	}
	leafMu.Lock()
	budget := leafCapLocked()
	take := n
	if take > budget {
		take = budget
	}
	if len(leafWaiters) == 0 && leafInUse+take <= budget {
		leafInUse += take
		if leafInUse > leafPeakN {
			leafPeakN = leafInUse
		}
		leafMu.Unlock()
		return leafRelease(take), nil
	}
	w := &leafWaiter{want: n, ready: make(chan struct{})}
	leafWaiters = append(leafWaiters, w)
	leafMu.Unlock()
	select {
	case <-w.ready:
		return leafRelease(w.granted), nil
	case <-ctx.Done():
		leafMu.Lock()
		for i, q := range leafWaiters {
			if q == w {
				leafWaiters = append(leafWaiters[:i], leafWaiters[i+1:]...)
				// Removing the queue head can unblock the next waiter.
				leafGrantLocked()
				leafMu.Unlock()
				return nil, ctx.Err()
			}
		}
		// Lost the race: the grant landed before cancellation was seen.
		// Give the slots back.
		leafInUse -= w.granted
		leafGrantLocked()
		leafMu.Unlock()
		return nil, ctx.Err()
	}
}

// leafRelease builds the (idempotent) release function for n held slots.
func leafRelease(n int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			leafMu.Lock()
			leafInUse -= n
			leafGrantLocked()
			leafMu.Unlock()
		})
	}
}

// LeafStats reports the number of leaf slots held right now and the
// high-water mark since the last ResetLeafPeak. The peak is the
// instrumented proof of the budget: it never exceeds the configured cap.
func LeafStats() (inFlight, peak int64) {
	leafMu.Lock()
	defer leafMu.Unlock()
	return int64(leafInUse), int64(leafPeakN)
}

// ResetLeafPeak clears the leaf high-water mark (for tests and for
// per-phase reporting).
func ResetLeafPeak() {
	leafMu.Lock()
	defer leafMu.Unlock()
	leafPeakN = leafInUse
}

// Run executes fn(ctx, i) for every i in [0, n) across the runner's
// worker pool and returns the results in index order. The returned error
// is nil only if every point succeeded; otherwise it joins the collected
// *PointError values in index order. On the first failure the derived
// context is cancelled and unstarted points are abandoned (their result
// slots keep the zero value).
//
// Nested Run calls are safe: a point may itself fan out a sub-grid. Each
// call bounds only its own pool, so deep nesting can oversubscribe the
// CPU, which costs some cache locality but never deadlocks.
func Run[T any](ctx context.Context, r Runner, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	statScheduled.Add(int64(n))
	if r.Counters != nil {
		r.Counters.scheduled.Add(int64(n))
	}
	start := time.Now()
	errs := make([]error, n)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	done := 0
	finish := func(i int, err error) {
		statDone.Add(1)
		if r.Counters != nil {
			r.Counters.done.Add(1)
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		errs[i] = err
		if err != nil {
			cancel()
		}
		if r.OnProgress != nil {
			p := Progress{Done: done, Total: n, Elapsed: time.Since(start)}
			if done < n {
				p.Remaining = p.Elapsed / time.Duration(done) * time.Duration(n-done)
			}
			r.OnProgress(p)
		}
	}

	if w := min(r.workers(), n); w == 1 {
		// Serial reference path: index order on the calling goroutine.
		for i := 0; i < n && cctx.Err() == nil; i++ {
			finish(i, runPoint(cctx, i, fn, &results[i]))
		}
	} else {
		idx := make(chan int)
		go func() {
			defer close(idx)
			for i := 0; i < n; i++ {
				select {
				case idx <- i:
				case <-cctx.Done():
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for range w {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					finish(i, runPoint(cctx, i, fn, &results[i]))
				}
			}()
		}
		wg.Wait()
	}

	// Partition failures: points that observed the cancellation of the
	// grid (in-flight sims abort with the context error once any point
	// fails) are casualties, not causes. When a genuine error exists,
	// report only the genuine ones; when every failure is a cancellation
	// (the caller's ctx was cancelled), keep them so errors.Is still
	// matches ctx.Err().
	var all, cancelled []error
	for _, e := range errs {
		switch {
		case e == nil:
		case errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded):
			cancelled = append(cancelled, e)
		default:
			all = append(all, e)
		}
	}
	if len(all) == 0 {
		all = cancelled
	}
	if len(all) == 0 && ctx.Err() != nil {
		all = append(all, ctx.Err())
	}
	return results, errors.Join(all...)
}

// runPoint executes one point, converting a panic into a *PointError with
// the offending stack attached.
func runPoint[T any](ctx context.Context, i int, fn func(context.Context, int) (T, error), out *T) (err error) {
	defer func() {
		if p := recover(); p != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PointError{Index: i, Err: fmt.Errorf("panic: %v", p), Stack: buf}
		}
	}()
	v, err := fn(ctx, i)
	if err != nil {
		return &PointError{Index: i, Err: err}
	}
	*out = v
	return nil
}

// Map is Run without progress reporting: fn over [0, n) with the given
// worker bound (<=0 means GOMAXPROCS), results in index order.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return Run(ctx, Runner{Workers: workers}, n, fn)
}
