package exp

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// simulatePoint is a small deterministic CPU-bound stand-in for one
// simulation run: a seeded random walk whose value depends only on the
// seed, never on scheduling.
func simulatePoint(seed int64, steps int) float64 {
	rng := rand.New(rand.NewSource(seed))
	x := 0.0
	for i := 0; i < steps; i++ {
		x += rng.Float64() - 0.5
	}
	return x
}

func TestRunOrdersResults(t *testing.T) {
	got, err := Map(context.Background(), 8, 100, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	const n = 64
	point := func(_ context.Context, i int) (float64, error) {
		return simulatePoint(Seed(42, i), 2000), nil
	}
	serial, err := Map(context.Background(), 1, n, point)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		par, err := Map(context.Background(), workers, n, point)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: result[%d] = %v, serial %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestRunZeroPoints(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for empty grid")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRunErrorCancelsAndReports(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := Map(context.Background(), 2, 50, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		// Give the canceller time to take effect so late points are skipped.
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the point error", err)
	}
	var pe *PointError
	if !errors.As(err, &pe) || pe.Index != 3 {
		t.Fatalf("error %v is not a PointError for index 3", err)
	}
	if n := started.Load(); n == 50 {
		t.Error("cancellation did not stop scheduling new points")
	}
}

// TestRunRealErrorNotBuriedByCancellations: when one point genuinely
// fails, in-flight points that abort with the grid's cancellation must
// not appear in the joined error — the root cause stays visible.
func TestRunRealErrorNotBuriedByCancellations(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), 4, 12, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		// Context-observing points (like sim.RunContext) report the
		// cancellation the failing point triggered.
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(50 * time.Millisecond):
			return i, nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the real failure", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("joined error %q includes cancellation casualties", err)
	}
}

func TestRunPanicCapture(t *testing.T) {
	res, err := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a PointError", err)
	}
	if pe.Index != 5 || pe.Stack == nil {
		t.Fatalf("PointError %+v missing index/stack", pe)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error %q does not mention the panic value", err)
	}
	if res[5] != 0 {
		t.Errorf("panicked point left non-zero result %d", res[5])
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	go func() {
		for done.Load() < 5 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, err := Map(ctx, 2, 10_000, func(ctx context.Context, i int) (int, error) {
		done.Add(1)
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v is not context.Canceled", err)
	}
	if n := done.Load(); n == 10_000 {
		t.Error("cancellation did not stop the grid")
	}
}

func TestRunProgressAndETA(t *testing.T) {
	var snaps []Progress
	r := Runner{Workers: 3, OnProgress: func(p Progress) { snaps = append(snaps, p) }}
	_, err := Run(context.Background(), r, 20, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 20 {
		t.Fatalf("got %d progress callbacks, want 20", len(snaps))
	}
	prev := 0
	for _, p := range snaps {
		if p.Total != 20 {
			t.Fatalf("Total = %d", p.Total)
		}
		if p.Done != prev+1 {
			t.Fatalf("Done jumped from %d to %d", prev, p.Done)
		}
		prev = p.Done
		if p.Done < p.Total && p.Elapsed > 0 && p.Remaining < 0 {
			t.Fatalf("negative ETA %v", p.Remaining)
		}
	}
	if last := snaps[len(snaps)-1]; last.Remaining != 0 {
		t.Errorf("final Remaining = %v, want 0", last.Remaining)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s0, d0 := Stats()
	if _, err := Map(context.Background(), 4, 25, func(_ context.Context, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	s1, d1 := Stats()
	if s1-s0 != 25 || d1-d0 != 25 {
		t.Errorf("Stats moved by (%d, %d), want (25, 25)", s1-s0, d1-d0)
	}
}

func TestRunnerCountersScopedPerRunner(t *testing.T) {
	var mine, other Counters
	run := func(c *Counters, n int) {
		t.Helper()
		if _, err := Run(context.Background(), Runner{Workers: 4, Counters: c}, n,
			func(_ context.Context, i int) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s0, d0 := Stats()
	run(&mine, 7)
	run(&other, 5) // concurrent unrelated grid: must not leak into mine
	run(&mine, 3)
	if s, d := mine.Stats(); s != 10 || d != 10 {
		t.Errorf("mine = (%d, %d), want (10, 10)", s, d)
	}
	if s, d := other.Stats(); s != 5 || d != 5 {
		t.Errorf("other = (%d, %d), want (5, 5)", s, d)
	}
	// The package-level view stays the process-wide aggregate.
	if s1, d1 := Stats(); s1-s0 != 15 || d1-d0 != 15 {
		t.Errorf("aggregate moved by (%d, %d), want (15, 15)", s1-s0, d1-d0)
	}
}

// TestLeafBudgetCapsNestedGrids is the depth-aware scheduling contract:
// an outer grid of panels, each fanning out its own leaf sub-grid, piles
// up outer×inner workers, yet the number of concurrently *executing*
// leaves — the only thing holding budget slots — never exceeds the
// budget.
func TestLeafBudgetCapsNestedGrids(t *testing.T) {
	const budget = 3
	SetLeafBudget(budget)
	defer SetLeafBudget(0)
	ResetLeafPeak()

	leaf := func(ctx context.Context) (int64, error) {
		release, err := AcquireLeaf(ctx)
		if err != nil {
			return 0, err
		}
		defer release()
		busy, _ := LeafStats()
		time.Sleep(time.Millisecond) // hold the slot long enough to overlap
		return busy, nil
	}
	// 4 panels × 6 leaves with generous worker pools: up to 24 goroutines
	// want to simulate at once.
	got, err := Map(context.Background(), 4, 4, func(ctx context.Context, i int) (int64, error) {
		inner, err := Map(ctx, 6, 6, func(ctx context.Context, j int) (int64, error) {
			return leaf(ctx)
		})
		if err != nil {
			return 0, err
		}
		m := int64(0)
		for _, b := range inner {
			m = max(m, b)
		}
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b > budget {
			t.Errorf("panel %d observed %d in-flight leaves, budget %d", i, b, budget)
		}
	}
	if inFlight, peak := LeafStats(); inFlight != 0 || peak > budget {
		t.Errorf("LeafStats = (%d, %d), want (0, <= %d)", inFlight, peak, budget)
	}
	if _, peak := LeafStats(); peak < 2 {
		t.Errorf("peak %d: leaves never overlapped, the test proved nothing", peak)
	}
}

// TestLeafBudgetOneNoDeadlock pins the no-deadlock argument: even a
// budget of 1 under deep nesting completes, because panel jobs never
// hold slots while waiting on their children (a naive per-level
// semaphore would deadlock here immediately).
func TestLeafBudgetOneNoDeadlock(t *testing.T) {
	SetLeafBudget(1)
	defer SetLeafBudget(0)
	done := make(chan error, 1)
	go func() {
		_, err := Map(context.Background(), 8, 8, func(ctx context.Context, i int) (int, error) {
			inner, err := Map(ctx, 4, 4, func(ctx context.Context, j int) (int, error) {
				release, err := AcquireLeaf(ctx)
				if err != nil {
					return 0, err
				}
				defer release()
				return i*10 + j, nil
			})
			if err != nil {
				return 0, err
			}
			return len(inner), nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested grids deadlocked under leaf budget 1")
	}
}

func TestAcquireLeafHonorsCancellation(t *testing.T) {
	SetLeafBudget(1)
	defer SetLeafBudget(0)
	release, err := AcquireLeaf(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := AcquireLeaf(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked AcquireLeaf returned %v, want deadline exceeded", err)
	}
	release()
	// The slot really was freed: a fresh acquire succeeds immediately.
	release2, err := AcquireLeaf(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release2()
}

func TestAcquireLeafReleaseIdempotent(t *testing.T) {
	SetLeafBudget(2)
	defer SetLeafBudget(0)
	release, err := AcquireLeaf(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // double release must not free a second slot or go negative
	if busy, _ := LeafStats(); busy != 0 {
		t.Fatalf("busy = %d after double release, want 0", busy)
	}
}

// TestAcquireLeafNWeighted pins the weighted-semaphore contract: a leaf
// holding n step workers charges n slots, so the peak proves intra-sim
// parallelism spends the same budget as inter-sim parallelism.
func TestAcquireLeafNWeighted(t *testing.T) {
	SetLeafBudget(4)
	defer SetLeafBudget(0)
	ResetLeafPeak()
	rel3, err := AcquireLeafN(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if busy, _ := LeafStats(); busy != 3 {
		t.Fatalf("busy = %d after AcquireLeafN(3), want 3", busy)
	}
	rel1, err := AcquireLeafN(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3+1 fill the budget: a second wide request must block until both
	// release, not sneak past with a partial grant.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := AcquireLeafN(ctx, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-budget AcquireLeafN returned %v, want deadline exceeded", err)
	}
	rel3()
	rel1()
	if inFlight, peak := LeafStats(); inFlight != 0 || peak != 4 {
		t.Errorf("LeafStats = (%d, %d), want (0, 4)", inFlight, peak)
	}
}

// TestAcquireLeafNNoPartialDeadlock is the reason the budget is not a
// channel semaphore: two acquirers each wanting 3 of 4 slots must resolve
// one after the other, never deadlock holding 2 slots each.
func TestAcquireLeafNNoPartialDeadlock(t *testing.T) {
	SetLeafBudget(4)
	defer SetLeafBudget(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for iter := 0; iter < 50; iter++ {
					release, err := AcquireLeafN(context.Background(), 3)
					if err != nil {
						t.Error(err)
						return
					}
					release()
				}
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent wide acquirers deadlocked")
	}
	if busy, _ := LeafStats(); busy != 0 {
		t.Fatalf("busy = %d after all releases, want 0", busy)
	}
}

// TestAcquireLeafNClampsOversize: a request wider than the entire budget
// is unsatisfiable as asked; it clamps to the budget instead of hanging.
func TestAcquireLeafNClampsOversize(t *testing.T) {
	SetLeafBudget(2)
	defer SetLeafBudget(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	release, err := AcquireLeafN(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if busy, _ := LeafStats(); busy != 2 {
		t.Fatalf("busy = %d after oversize acquire, want clamp to 2", busy)
	}
	release()
}

// TestAcquireLeafNFIFO: the queue head blocks the line, so a wide waiter
// is not starved by narrow requests that would individually fit.
func TestAcquireLeafNFIFO(t *testing.T) {
	SetLeafBudget(2)
	defer SetLeafBudget(0)
	rel1, err := AcquireLeafN(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	wideGranted := make(chan func(), 1)
	go func() {
		rel, err := AcquireLeafN(context.Background(), 2)
		if err != nil {
			t.Error(err)
			return
		}
		wideGranted <- rel
	}()
	// Wait until the wide request is actually queued.
	for {
		if func() bool { leafMu.Lock(); defer leafMu.Unlock(); return len(leafWaiters) == 1 }() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// A narrow request arriving behind the queued wide one must wait its
	// turn even though one slot is free.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := AcquireLeafN(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("narrow acquire jumped the FIFO queue: %v", err)
	}
	rel1()
	select {
	case rel := <-wideGranted:
		rel()
	case <-time.After(5 * time.Second):
		t.Fatal("wide waiter never granted after slots freed")
	}
	if busy, _ := LeafStats(); busy != 0 {
		t.Fatalf("busy = %d, want 0", busy)
	}
}

func TestSeedDeterministicAndSpread(t *testing.T) {
	if Seed(1, 0) != Seed(1, 0) {
		t.Fatal("Seed not deterministic")
	}
	seen := map[int64]bool{}
	for root := int64(0); root < 4; root++ {
		for i := 0; i < 256; i++ {
			s := Seed(root, i)
			if seen[s] {
				t.Fatalf("seed collision at root %d index %d", root, i)
			}
			seen[s] = true
		}
	}
	// Adjacent indices must not produce correlated low bits (a plain
	// root+index seed would).
	if Seed(7, 1)-Seed(7, 0) == 1 {
		t.Error("adjacent seeds differ by 1: finalizer not mixing")
	}
}

func TestNestedRuns(t *testing.T) {
	got, err := Map(context.Background(), 4, 8, func(ctx context.Context, i int) (int, error) {
		inner, err := Map(ctx, 2, 4, func(_ context.Context, j int) (int, error) {
			return i*10 + j, nil
		})
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := i*40 + 6
		if v != want {
			t.Fatalf("nested result[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestWorkerPoolSpeedup demonstrates the engine's wall-clock win on
// CPU-bound points. It needs real parallel hardware, so it skips below 4
// cores (the sim-level speedup test in internal/core has the same gate).
func TestWorkerPoolSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need >= 4 cores for a meaningful speedup, have %d", cores)
	}
	const n = 64
	point := func(_ context.Context, i int) (float64, error) {
		return simulatePoint(Seed(9, i), 3_000_000), nil
	}
	timeIt := func(workers int) time.Duration {
		start := time.Now()
		if _, err := Map(context.Background(), workers, n, point); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	timeIt(cores) // warm up
	serial := timeIt(1)
	parallel := timeIt(cores)
	t.Logf("serial %v, parallel %v on %d cores (%.1fx)", serial, parallel, cores,
		float64(serial)/float64(parallel))
	if parallel > serial/2 {
		t.Errorf("parallel %v not >= 2x faster than serial %v on %d cores", parallel, serial, cores)
	}
}

func BenchmarkRunSerial(b *testing.B) {
	benchRun(b, 1)
}

func BenchmarkRunParallel(b *testing.B) {
	benchRun(b, 0)
}

func benchRun(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), workers, 32, func(_ context.Context, j int) (float64, error) {
			return simulatePoint(Seed(int64(i), j), 100_000), nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
