package sim

import (
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/trace"
)

func TestPacketLogCollectsMeasuredPackets(t *testing.T) {
	plog := trace.NewLog(1 << 16)
	p := testParams(t, 0.15, dvfs.NewNoDVFS(1e9))
	p.PacketLog = plog
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if int64(plog.Len()) != res.Packets {
		t.Errorf("log has %d records, result reports %d packets", plog.Len(), res.Packets)
	}
	// Log-derived mean delay must match the engine's.
	var sum float64
	for _, r := range plog.Records() {
		sum += r.DelayNs
	}
	mean := sum / float64(plog.Len())
	if math.Abs(mean-res.AvgDelayNs) > 0.5 {
		t.Errorf("log mean delay %.2f vs result %.2f", mean, res.AvgDelayNs)
	}
	// Flow aggregation must cover every record.
	var pkts int64
	for _, f := range plog.Flows() {
		pkts += f.Packets
	}
	if pkts != int64(plog.Len()) {
		t.Errorf("flows cover %d packets of %d", pkts, plog.Len())
	}
}

func TestPowerBreakdownSumsToTotal(t *testing.T) {
	res, err := Run(testParams(t, 0.2, dvfs.NewNoDVFS(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	sum := res.SwitchingMW + res.ClockMW + res.LeakageMW
	if math.Abs(sum-res.AvgPowerMW) > res.AvgPowerMW*0.01 {
		t.Errorf("breakdown %.2f+%.2f+%.2f = %.2f != total %.2f",
			res.SwitchingMW, res.ClockMW, res.LeakageMW, sum, res.AvgPowerMW)
	}
	if res.SwitchingMW <= 0 || res.ClockMW <= 0 || res.LeakageMW <= 0 {
		t.Error("breakdown has non-positive component")
	}
}

func TestBreakdownShiftsUnderDVFS(t *testing.T) {
	// At low frequency and voltage the switching component (same flits,
	// lower V²) shrinks less than the clock component (V²F): the clock
	// share of total power must fall under RMSD relative to No-DVFS.
	base, err := Run(testParams(t, 0.2, dvfs.NewNoDVFS(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	rmsd, err := Run(testParams(t, 0.2, newRMSD(t)))
	if err != nil {
		t.Fatal(err)
	}
	baseClockShare := base.ClockMW / base.AvgPowerMW
	rmsdClockShare := rmsd.ClockMW / rmsd.AvgPowerMW
	if rmsdClockShare >= baseClockShare {
		t.Errorf("clock share did not fall under RMSD: %.3f vs %.3f",
			rmsdClockShare, baseClockShare)
	}
}

func TestLatencyCyclesConstantUnderRMSDInScalingRange(t *testing.T) {
	// Fig. 2a: within [λmin, λmax] the RMSD latency in *cycles* is
	// roughly constant because the network always runs at λmax.
	lat := func(rate float64) float64 {
		res, err := Run(testParams(t, rate, newRMSD(t)))
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLatencyCycles
	}
	l1 := lat(0.20)
	l2 := lat(0.30)
	if math.Abs(l1-l2)/l1 > 0.35 {
		t.Errorf("RMSD latency not ~constant in scaling range: %.1f vs %.1f cycles", l1, l2)
	}
}

func TestElapsedTimeConsistentWithFrequency(t *testing.T) {
	// A No-DVFS run at 1 GHz must report measurement wall time equal to
	// the measured node cycles (1 ns per cycle).
	p := testParams(t, 0.1, dvfs.NewNoDVFS(1e9))
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	wantNs := float64(p.Measure) // 1 ns per node cycle at 1 GHz
	if math.Abs(res.ElapsedNs-wantNs)/wantNs > 0.01 {
		t.Errorf("elapsed %.0f ns, want ~%.0f", res.ElapsedNs, wantNs)
	}
	// An RMSD run pinned at FMin spans the same wall time (the window is
	// defined in node cycles) but executes ~3x fewer network cycles.
	pr := testParams(t, 0.05, newRMSD(t))
	resR, err := Run(pr)
	if err != nil {
		t.Fatal(err)
	}
	totalNode := float64(pr.Warmup + pr.Measure)
	if float64(resR.NetCycles) > totalNode*0.55 {
		t.Errorf("FMin-pinned run executed %d network cycles for %v node cycles, want ~1/3",
			resR.NetCycles, totalNode)
	}
}

func TestNodeCycleAccountingAcrossFrequencies(t *testing.T) {
	// Throughput is measured per node cycle; at any fixed frequency the
	// accepted rate must match the offered rate below saturation — this
	// exercises the fractional node-cycle accumulator at a non-integer
	// Fnode/Fnoc ratio.
	pol := dvfs.NewNoDVFS(700e6) // Fnode/Fnoc = 1.428...
	p := testParams(t, 0.1, pol)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-0.1) > 0.012 {
		t.Errorf("accepted %.4f flits/node/node-cycle, want 0.1", res.Throughput)
	}
	// Delay in ns must reflect the slower clock: latency_cycles / 0.7 GHz.
	wantDelay := res.AvgLatencyCycles / 0.7
	if math.Abs(res.AvgDelayNs-wantDelay)/wantDelay > 0.05 {
		t.Errorf("delay %.1f ns, want latency/0.7 = %.1f", res.AvgDelayNs, wantDelay)
	}
}
