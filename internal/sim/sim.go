// Package sim is the experiment engine: it couples the cycle-accurate
// network (package noc), the node-clock injection processes (package
// traffic), a global DVFS policy (package dvfs), the voltage-frequency
// model (package volt) and the power integrator (package power) into a
// single simulation with two clock domains, mirroring the paper's modified
// Booksim with a network clock decoupled from the node clock.
//
// The engine advances one *network* cycle at a time. Each network cycle
// lasts 1/Fnoc seconds, during which Fnode/Fnoc node clock cycles elapse;
// the engine carries the fractional remainder so the node clock never
// drifts. Injection (and the DVFS control period) live in the node domain;
// router pipelines live in the network domain. Delay in nanoseconds is
// accumulated at the then-current network frequency, so a packet's delay
// is its latency integrated over the frequency trajectory — exactly the
// Lnoc/Fnoc relationship of Sec. III when the frequency is constant.
package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/volt"
)

// Params configures one simulation run. Zero-value durations fall back to
// the defaults documented on each field.
type Params struct {
	// Noc is the network fabric configuration.
	Noc noc.Config
	// Injector supplies the offered traffic (node clock domain).
	Injector *traffic.Injector
	// Policy is the global DVFS controller. Use dvfs.NewNoDVFS for the
	// baseline.
	Policy dvfs.Policy
	// VF maps commanded frequencies to supply voltages.
	VF volt.Model
	// Power, when non-nil, enables energy accounting.
	Power *power.Model

	// Faults lists directed mesh channels masked out of the fabric; the
	// network installs a fault-aware minimal route table for them (see
	// noc.NewNetworkWithFaults).
	Faults []noc.Link
	// Islands are per-region V/F clock dividers layered under the global
	// DVFS frequency (see noc.SetIslands).
	Islands []noc.Island

	// FNode is the node clock frequency in Hz (default 1 GHz, the paper's
	// Fnode = Fmax).
	FNode float64

	// ControlPeriod is the DVFS control update period in node clock
	// cycles (default dvfs.ControlPeriodNodeCycles = 10 000).
	ControlPeriod int64
	// Warmup is the number of node cycles before measurement starts
	// (default 30 000). With AdaptiveWarmup it is the *minimum* warmup.
	Warmup int64
	// Measure is the measurement window length in node cycles (default
	// 60 000).
	Measure int64
	// AdaptiveWarmup delays measurement until the commanded frequency has
	// been stable (relative change below 0.3%, stabilityRelTol) for
	// SettlePeriods consecutive control periods, capped at MaxWarmup node
	// cycles. Closed-loop policies (DMSD) need it; open-loop policies
	// settle within a period or two anyway.
	AdaptiveWarmup bool
	// SettlePeriods is the stability run length required by
	// AdaptiveWarmup (default 5).
	SettlePeriods int
	// MaxWarmup caps adaptive warmup (default 1 000 000 node cycles).
	MaxWarmup int64

	// SatLatencyCycles marks the run saturated when the measured average
	// latency exceeds this many network cycles (default 1 000).
	SatLatencyCycles float64
	// SatBacklogPerNode marks the run saturated when the average source
	// backlog exceeds this many packets per node (default 25); at twice
	// the cap the run aborts early.
	SatBacklogPerNode float64

	// StepWorkers is the number of engine threads stepping the network
	// (0 or 1 = serial). Results are bit-identical for every value; the
	// workers only spread the per-cycle router sweeps across contiguous
	// mesh bands. Callers holding an exp leaf-budget slot should acquire
	// StepWorkers slots instead (exp.AcquireLeafN), so intra-run threads
	// are charged against the same core budget as parallel runs.
	StepWorkers int

	// TraceFreq, when true, records one Sample per control period.
	TraceFreq bool
	// PacketLog, when non-nil, records the lifecycle of every packet
	// delivered during the measurement window.
	PacketLog *trace.Log

	// disableSkipAhead forces the network to tick every quiescent cycle
	// through the full step path. Only tests set it, to prove the
	// skip-ahead and active-list fast paths are exact.
	disableSkipAhead bool
}

// Sample is one point of the frequency/voltage trace.
type Sample struct {
	TimeNs  float64
	FreqHz  float64
	Volts   float64
	DelayNs float64 // window average delay reported to the controller
}

// Result carries the measured steady-state metrics of one run.
type Result struct {
	// AvgLatencyCycles is the mean packet latency in network clock cycles
	// (Fig. 2a's metric).
	AvgLatencyCycles float64
	// AvgDelayNs is the mean packet delay in nanoseconds (Fig. 2b's
	// metric).
	AvgDelayNs float64
	// P99DelayNs approximates the 99th-percentile delay.
	P99DelayNs float64
	// Packets is the number of packets measured.
	Packets int64
	// OfferedRate is the measured offered load in flits per node per node
	// cycle.
	OfferedRate float64
	// Throughput is the accepted rate in flits per node per node cycle.
	Throughput float64
	// AvgFreqHz and AvgVolts are time-weighted averages over the
	// measurement window.
	AvgFreqHz float64
	AvgVolts  float64
	// AvgPowerMW is the average network power in milliwatts over the
	// measurement window (0 when Params.Power is nil).
	AvgPowerMW float64
	// SwitchingMW, ClockMW and LeakageMW decompose AvgPowerMW.
	SwitchingMW, ClockMW, LeakageMW float64
	// MeasuredNodeCycles is the actual length of the measurement window in
	// node cycles; it equals Params.Measure unless the run aborted early.
	MeasuredNodeCycles int64
	// Saturated reports whether the run hit a saturation guard.
	Saturated bool
	// ElapsedNs is the simulated real time of the measurement window.
	ElapsedNs float64
	// NetCycles is the number of network cycles simulated in total.
	NetCycles int64
	// Trace holds the frequency trace when Params.TraceFreq is set.
	Trace []Sample
}

func (p *Params) setDefaults() {
	if p.FNode == 0 {
		p.FNode = 1e9
	}
	if p.ControlPeriod == 0 {
		p.ControlPeriod = dvfs.ControlPeriodNodeCycles
	}
	if p.Warmup == 0 {
		p.Warmup = 30000
	}
	if p.Measure == 0 {
		p.Measure = 60000
	}
	if p.SatLatencyCycles == 0 {
		p.SatLatencyCycles = 1000
	}
	if p.SatBacklogPerNode == 0 {
		p.SatBacklogPerNode = 25
	}
	if p.SettlePeriods == 0 {
		p.SettlePeriods = 5
	}
	if p.MaxWarmup == 0 {
		p.MaxWarmup = 1_000_000
	}
}

func (p *Params) validate() error {
	var errs []error
	if err := p.Noc.Validate(); err != nil {
		errs = append(errs, err)
	}
	if p.Injector == nil {
		errs = append(errs, errors.New("sim: nil injector"))
	}
	if p.Policy == nil {
		errs = append(errs, errors.New("sim: nil policy"))
	}
	if p.FNode <= 0 {
		errs = append(errs, fmt.Errorf("sim: node frequency %g", p.FNode))
	}
	if p.ControlPeriod < 1 {
		errs = append(errs, fmt.Errorf("sim: control period %d", p.ControlPeriod))
	}
	if p.Warmup < 0 || p.Measure < 1 {
		errs = append(errs, fmt.Errorf("sim: warmup %d / measure %d", p.Warmup, p.Measure))
	}
	return errors.Join(errs...)
}

// Run executes one simulation and returns its measured Result. It is
// RunContext with a background context: the run cannot be cancelled.
func Run(p Params) (Result, error) {
	return RunContext(context.Background(), p)
}

// ctxCheckCycles is how many network cycles elapse between context
// checks inside the engine loop. At the slowest network clock (333 MHz)
// 1024 cycles are ~3 µs of simulated time and far less wall time, so
// cancellation latency stays well under a millisecond while the check
// cost is amortized to noise.
const ctxCheckCycles = 1024

// RunContext executes one simulation under ctx and returns its measured
// Result. The engine polls the context every few thousand network cycles:
// when ctx is cancelled mid-run the simulation stops promptly, discards
// its partial measurement, and returns ctx.Err(). A context that is
// already cancelled on entry returns before the network is even built.
func RunContext(ctx context.Context, p Params) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	p.setDefaults()
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	net, err := noc.NewNetworkWithFaults(p.Noc, p.Faults)
	if err != nil {
		return Result{}, err
	}
	if err := net.SetIslands(p.Islands); err != nil {
		return Result{}, err
	}
	if p.disableSkipAhead {
		net.SetSkipAhead(false)
	}
	if p.StepWorkers > 1 {
		net.SetStepWorkers(p.StepWorkers)
		defer net.Close()
	}
	p.Policy.Reset()

	var integ *power.Integrator
	if p.Power != nil {
		integ, err = power.NewIntegrator(*p.Power, p.Noc.Nodes())
		if err != nil {
			return Result{}, err
		}
	}

	eng := &engine{
		p:     p,
		net:   net,
		integ: integ,
		f:     p.Policy.Freq(),
	}
	eng.v = p.VF.VoltageFor(eng.f)
	if err := eng.run(ctx); err != nil {
		return Result{}, err
	}
	return eng.result(), nil
}

// engine holds the mutable state of one run.
type engine struct {
	p     Params
	net   *noc.Network
	integ *power.Integrator

	f, v  float64 // current network frequency (Hz) and voltage (V)
	nowNs float64 // simulated real time
	frac  float64 // fractional node cycles carried between network cycles

	nodeCycles int64 // whole node cycles elapsed

	measuring     bool
	measStartNs   float64
	measStartNode int64 // node cycle when measurement started
	measFlits     int64 // flits ejected during measurement
	stableRuns    int   // consecutive control periods with a stable F
	// Integrator snapshot at measurement start, so reported power covers
	// only the measurement window.
	measStartEnergy float64
	measStartTime   float64
	measStartSwitch float64
	measStartClock  float64
	measStartLeak   float64

	latency stats.Stream // network cycles
	delay   stats.Stream // nanoseconds
	delayH  *stats.Histogram

	ctrlDelay stats.Window // per-control-period delay average (ns)

	// Power/frequency segment accounting (constant f,v per segment).
	segStartCycle int64
	segAct        noc.RouterActivity
	fTimeSum      float64 // ∫f dt over measurement
	vTimeSum      float64 // ∫v dt over measurement
	measTime      float64 // measurement wall time (seconds)

	saturated bool
	aborted   bool

	trace []Sample
}

// p99HistMaxNs caps the auto-extension of the delay histogram. Doubling
// from the initial 5 µs range reaches it in ten steps, at which point one
// bin spans 5.12 µs — coarse, but saturated runs report delays of that
// magnitude, not sub-microsecond ones.
const p99HistMaxNs = 5_120_000

func (e *engine) run(ctx context.Context) error {
	p := &e.p
	// The range extends on demand so P99 is never clamped at the initial
	// upper bound when the network saturates.
	e.delayH, _ = stats.NewExtendingHistogram(0, 5000, 1000, p99HistMaxNs)
	e.net.OnArrive = func(pk *noc.Packet, cycle int64) {
		d := e.nowNs - pk.CreateTime
		e.ctrlDelay.Add(d)
		if e.measuring {
			e.latency.Add(float64(pk.ArriveCycle - pk.CreateCycle))
			e.delay.Add(d)
			e.delayH.Add(d)
			if p.PacketLog != nil {
				p.PacketLog.AddPacket(pk, d)
			}
		}
	}

	nextCtrl := p.ControlPeriod
	p.Injector.WindowReset()

	done := ctx.Done()
	ctxCheck := int64(ctxCheckCycles)
	for !e.aborted && (!e.measuring || e.nodeCycles < e.measStartNode+p.Measure) {
		if done != nil {
			if ctxCheck--; ctxCheck <= 0 {
				ctxCheck = ctxCheckCycles
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
		dtNs := 1e9 / e.f
		e.nowNs += dtNs

		// Node clock domain: Fnode/Fnoc node cycles per network cycle.
		e.frac += p.FNode / e.f
		for e.frac >= 1 {
			e.frac--
			// Start of measurement window.
			if !e.measuring && e.warmupDone() {
				e.beginMeasurement()
			}
			p.Injector.NodeCycle(e.net, e.nowNs)
			e.nodeCycles++
			if e.nodeCycles == nextCtrl {
				nextCtrl += p.ControlPeriod
				e.controlUpdate()
			}
			// End the measurement window at the exact node cycle. When
			// the network clock is slower than the node clock, a network
			// cycle spans several node cycles; without this check the
			// window would overshoot by up to FNode/Fnoc−1 node cycles.
			if e.measuring && e.nodeCycles >= e.measStartNode+p.Measure {
				break
			}
		}

		e.net.Step()

		if e.measuring {
			dt := dtNs * 1e-9
			e.fTimeSum += e.f * dt
			e.vTimeSum += e.v * dt
			e.measTime += dt
		}
	}
	e.closeSegment()
	// Final saturation assessment on the measured latency.
	if e.latency.N() > 0 && e.latency.Mean() > p.SatLatencyCycles {
		e.saturated = true
	}
	if float64(e.net.SourceBacklog()) > p.SatBacklogPerNode*float64(p.Noc.Nodes()) {
		e.saturated = true
	}
	return nil
}

// warmupDone reports whether measurement may begin at the current node
// cycle.
func (e *engine) warmupDone() bool {
	p := &e.p
	if e.nodeCycles < p.Warmup {
		return false
	}
	if !p.AdaptiveWarmup {
		return true
	}
	return e.stableRuns >= p.SettlePeriods || e.nodeCycles >= p.MaxWarmup
}

func (e *engine) beginMeasurement() {
	e.measuring = true
	e.measStartNs = e.nowNs
	e.measStartNode = e.nodeCycles
	_, _, _, ejected := e.net.Stats()
	e.measFlits = -ejected // count from here: final ejected + this offset
	e.closeSegment()
	if e.integ != nil {
		e.measStartEnergy = e.integ.EnergyJ()
		e.measStartTime = e.integ.TimeS()
		e.measStartSwitch, e.measStartClock, e.measStartLeak = e.integ.Components()
	}
}

// controlUpdate runs once per control period: it reports the window
// measurement to the policy, actuates the commanded frequency/voltage, and
// closes the power segment when the operating point changes.
func (e *engine) controlUpdate() {
	p := &e.p
	delaySum, delayCount := e.ctrlDelay.Drain()
	offered := p.Injector.WindowFlits()
	p.Injector.WindowReset()

	m := dvfs.Measurement{
		NodeCycles:   float64(p.ControlPeriod),
		OfferedFlits: offered,
		Nodes:        p.Noc.Nodes(),
		DelaySamples: delayCount,
	}
	if delayCount > 0 {
		m.AvgDelayNs = delaySum / float64(delayCount)
	}
	newF := p.Policy.Next(m)
	e.updateStability(m, newF)
	if newF != e.f {
		e.closeSegment()
		e.f = newF
		e.v = p.VF.VoltageFor(newF)
	}
	if p.TraceFreq {
		e.trace = append(e.trace, Sample{TimeNs: e.nowNs, FreqHz: e.f, Volts: e.v, DelayNs: m.AvgDelayNs})
	}

	// Saturation abort: runaway backlog means the offered load cannot be
	// delivered at any frequency in range; finishing the run would only
	// waste time.
	if float64(e.net.SourceBacklog()) > 2*p.SatBacklogPerNode*float64(p.Noc.Nodes()) {
		e.saturated = true
		e.aborted = true
	}
}

// delayTargeter is implemented by closed-loop policies with a delay
// setpoint (DMSD); the engine uses it to judge loop convergence.
type delayTargeter interface{ TargetNs() float64 }

// updateStability advances the adaptive-warmup settling detector. A control
// period counts as stable when the commanded frequency barely moved
// (covers open-loop policies and closed-loop policies pinned at a range
// limit) or, for delay-targeting policies, when the measured delay sits
// near the setpoint (covers limit-cycling around a steep plant, where the
// frequency keeps dithering but the loop has converged).
// stabilityRelTol is the relative frequency change below which one control
// period counts as stable for AdaptiveWarmup, as documented on
// Params.AdaptiveWarmup.
const stabilityRelTol = 0.003

func (e *engine) updateStability(m dvfs.Measurement, newF float64) {
	stable := false
	if rel := (newF - e.f) / e.f; rel < stabilityRelTol && rel > -stabilityRelTol {
		stable = true
	}
	if dt, ok := e.p.Policy.(delayTargeter); ok && m.DelaySamples > 0 {
		if errRel := (m.AvgDelayNs - dt.TargetNs()) / dt.TargetNs(); errRel < 0.15 && errRel > -0.15 {
			stable = true
		}
	}
	if stable {
		e.stableRuns++
	} else {
		e.stableRuns = 0
	}
}

// closeSegment accounts the elapsed constant-(f,v) segment into the power
// integrator.
func (e *engine) closeSegment() {
	cycles := e.net.Cycle() - e.segStartCycle
	if cycles <= 0 {
		return
	}
	if e.integ != nil {
		act := e.net.Activity().RouterActivity
		delta := act.Sub(e.segAct)
		e.integ.Slice(delta, cycles, e.v, float64(cycles)/e.f)
		e.segAct = act
	}
	e.segStartCycle = e.net.Cycle()
}

func (e *engine) result() Result {
	p := &e.p
	_, _, _, ejected := e.net.Stats()
	measured := ejected + e.measFlits
	// The exact window end in run() makes this p.Measure for completed
	// runs; aborted runs measured fewer node cycles, and the throughput
	// denominator must match what was actually measured.
	measCycles := int64(0)
	if e.measuring {
		measCycles = e.nodeCycles - e.measStartNode
	}
	measNode := float64(measCycles)
	if measNode <= 0 {
		measNode = 1
	}
	res := Result{
		AvgLatencyCycles:   e.latency.Mean(),
		AvgDelayNs:         e.delay.Mean(),
		P99DelayNs:         e.delayH.Quantile(0.99),
		Packets:            e.latency.N(),
		Throughput:         float64(measured) / measNode / float64(p.Noc.Nodes()),
		OfferedRate:        p.Injector.MeanRate(),
		MeasuredNodeCycles: measCycles,
		Saturated:          e.saturated,
		ElapsedNs:          e.nowNs - e.measStartNs,
		NetCycles:          e.net.Cycle(),
		Trace:              e.trace,
	}
	if e.measTime > 0 {
		res.AvgFreqHz = e.fTimeSum / e.measTime
		res.AvgVolts = e.vTimeSum / e.measTime
	} else {
		// Aborted before measuring: report the operating point the
		// controller had commanded when the run gave up.
		res.AvgFreqHz = e.f
		res.AvgVolts = e.v
	}
	if e.integ != nil {
		if dt := e.integ.TimeS() - e.measStartTime; dt > 0 {
			res.AvgPowerMW = (e.integ.EnergyJ() - e.measStartEnergy) / dt * 1e3
			sw, ck, lk := e.integ.Components()
			res.SwitchingMW = (sw - e.measStartSwitch) / dt * 1e3
			res.ClockMW = (ck - e.measStartClock) / dt * 1e3
			res.LeakageMW = (lk - e.measStartLeak) / dt * 1e3
		}
	}
	return res
}
