package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/traffic"
	"repro/internal/volt"
)

// testParams builds a baseline-parameter run with reduced windows to keep
// the test suite fast.
func testParams(t *testing.T, rate float64, policy dvfs.Policy) Params {
	t.Helper()
	cfg := noc.DefaultConfig()
	inj, err := traffic.NewInjector(cfg, traffic.NewUniform(cfg), rate, 1234)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.Default28nm()
	return Params{
		Noc:      cfg,
		Injector: inj,
		Policy:   policy,
		VF:       volt.New(),
		Power:    &pm,
		Warmup:   10000,
		Measure:  30000,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Params{}); err == nil {
		t.Error("Run accepted empty params")
	}
	p := testParams(t, 0.1, dvfs.NewNoDVFS(1e9))
	p.Injector = nil
	if _, err := Run(p); err == nil {
		t.Error("Run accepted nil injector")
	}
	p = testParams(t, 0.1, nil)
	if _, err := Run(p); err == nil {
		t.Error("Run accepted nil policy")
	}
	p = testParams(t, 0.1, dvfs.NewNoDVFS(1e9))
	p.Noc.VCs = 0
	if _, err := Run(p); err == nil {
		t.Error("Run accepted invalid noc config")
	}
}

func TestNoDVFSLatencyEqualsDelay(t *testing.T) {
	// At a fixed 1 GHz network clock, 1 cycle = 1 ns, so latency in cycles
	// and delay in ns must agree.
	res, err := Run(testParams(t, 0.15, dvfs.NewNoDVFS(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets < 1000 {
		t.Fatalf("only %d packets measured", res.Packets)
	}
	if res.Saturated {
		t.Fatal("saturated at 0.15 load")
	}
	if math.Abs(res.AvgLatencyCycles-res.AvgDelayNs) > 1.5 {
		t.Errorf("latency %.2f cycles vs delay %.2f ns: should match at 1 GHz",
			res.AvgLatencyCycles, res.AvgDelayNs)
	}
	if math.Abs(res.AvgFreqHz-1e9) > 1 {
		t.Errorf("AvgFreq = %g, want 1 GHz", res.AvgFreqHz)
	}
	if math.Abs(res.AvgVolts-0.9) > 1e-6 {
		t.Errorf("AvgVolts = %g, want 0.9", res.AvgVolts)
	}
}

func TestThroughputMatchesOffered(t *testing.T) {
	res, err := Run(testParams(t, 0.2, dvfs.NewNoDVFS(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-0.2) > 0.02 {
		t.Errorf("throughput %.3f, want ~0.2", res.Throughput)
	}
	if math.Abs(res.OfferedRate-0.2) > 1e-9 {
		t.Errorf("offered %.3f", res.OfferedRate)
	}
}

func newRMSD(t *testing.T) *dvfs.RMSD {
	t.Helper()
	p, err := dvfs.NewRMSD(1e9, 0.378, dvfs.DefaultRange())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRMSDFrequencyFollowsEq2(t *testing.T) {
	// In the scaling range the average frequency must sit near
	// Fnode·λ/λmax (Eq. 2).
	for _, rate := range []float64{0.2, 0.3} {
		res, err := Run(testParams(t, rate, newRMSD(t)))
		if err != nil {
			t.Fatal(err)
		}
		want := 1e9 * rate / 0.378
		if math.Abs(res.AvgFreqHz-want)/want > 0.06 {
			t.Errorf("rate %.2f: avg freq %.3g, want %.3g ± 6%%", rate, res.AvgFreqHz, want)
		}
		if res.Saturated {
			t.Errorf("rate %.2f: RMSD saturated below λmax", rate)
		}
	}
}

func TestRMSDClipsAtFMinBelowLambdaMin(t *testing.T) {
	res, err := Run(testParams(t, 0.05, newRMSD(t)))
	if err != nil {
		t.Fatal(err)
	}
	// λmin = 0.378/3 ≈ 0.126 > 0.05, so the clock pins at FMin.
	if math.Abs(res.AvgFreqHz-333e6)/333e6 > 0.02 {
		t.Errorf("avg freq %.3g, want FMin", res.AvgFreqHz)
	}
}

func TestRMSDDelayExceedsNoDVFS(t *testing.T) {
	// The headline observation: RMSD's delay in ns is far above the
	// No-DVFS delay at moderate load.
	base, err := Run(testParams(t, 0.2, dvfs.NewNoDVFS(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	rmsd, err := Run(testParams(t, 0.2, newRMSD(t)))
	if err != nil {
		t.Fatal(err)
	}
	if rmsd.AvgDelayNs < 2*base.AvgDelayNs {
		t.Errorf("RMSD delay %.1f ns not well above No-DVFS %.1f ns",
			rmsd.AvgDelayNs, base.AvgDelayNs)
	}
	// And the power ordering must be the reverse.
	if rmsd.AvgPowerMW >= base.AvgPowerMW {
		t.Errorf("RMSD power %.1f mW not below No-DVFS %.1f mW",
			rmsd.AvgPowerMW, base.AvgPowerMW)
	}
}

func TestRMSDNonMonotonicDelay(t *testing.T) {
	// Fig. 2b: the RMSD delay peaks near λmin and *decreases* with rising
	// rate inside [λmin, λmax].
	delay := func(rate float64) float64 {
		res, err := Run(testParams(t, rate, newRMSD(t)))
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgDelayNs
	}
	low := delay(0.04)     // below λmin, lightly loaded at FMin
	peak := delay(0.12)    // at λmin: loaded and slow — the peak
	midHigh := delay(0.30) // inside scaling range: faster clock
	if !(peak > low && peak > midHigh) {
		t.Errorf("delay curve not non-monotonic: d(0.04)=%.0f d(0.12)=%.0f d(0.30)=%.0f",
			low, peak, midHigh)
	}
}

func newDMSD(t *testing.T, target float64) *dvfs.DMSD {
	t.Helper()
	p, err := dvfs.NewDMSD(target, dvfs.DefaultRange())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDMSDTracksTargetDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: PI settling needs long windows")
	}
	// With a 150 ns target and moderate load, the measured delay must sit
	// near the target (Fig. 4b's flat DMSD curve).
	p := testParams(t, 0.2, newDMSD(t, 150))
	p.AdaptiveWarmup = true // let the PI loop settle before measuring
	p.Measure = 150000      // average over several limit-cycle periods
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgDelayNs-150)/150 > 0.25 {
		t.Errorf("DMSD delay %.1f ns, want 150 ± 25%%", res.AvgDelayNs)
	}
	if res.Saturated {
		t.Error("DMSD saturated at 0.2 load")
	}
}

func TestDMSDWarmStartSkipsTransient(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: PI settling needs long windows")
	}
	// A warm-started controller must settle far faster: with the initial
	// frequency near the setpoint, the fixed short warmup suffices.
	pol := newDMSD(t, 150)
	p := testParams(t, 0.2, pol)
	p.AdaptiveWarmup = true
	res1, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	settled := pol.Freq()
	pol.WarmStart(settled)
	p2 := testParams(t, 0.2, pol)
	p2.Warmup = 30000
	res2, err := Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.AvgDelayNs-res1.AvgDelayNs)/res1.AvgDelayNs > 0.25 {
		t.Errorf("warm-started delay %.1f ns far from converged %.1f ns",
			res2.AvgDelayNs, res1.AvgDelayNs)
	}
}

func TestPowerOrderingRMSDBelowDMSDBelowBase(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: PI settling needs long windows")
	}
	// Fig. 6 at 0.2 injection rate: P(RMSD) < P(DMSD) < P(No-DVFS).
	mk := func(pol dvfs.Policy) Result {
		p := testParams(t, 0.2, pol)
		p.AdaptiveWarmup = true
		p.Measure = 60000
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mk(dvfs.NewNoDVFS(1e9))
	rmsd := mk(newRMSD(t))
	dmsd := mk(newDMSD(t, 150))
	if !(rmsd.AvgPowerMW < dmsd.AvgPowerMW && dmsd.AvgPowerMW < base.AvgPowerMW) {
		t.Errorf("power ordering violated: RMSD %.1f, DMSD %.1f, No-DVFS %.1f mW",
			rmsd.AvgPowerMW, dmsd.AvgPowerMW, base.AvgPowerMW)
	}
	// And delay ordering is the mirror image.
	if !(rmsd.AvgDelayNs > dmsd.AvgDelayNs) {
		t.Errorf("delay ordering violated: RMSD %.1f ns vs DMSD %.1f ns",
			rmsd.AvgDelayNs, dmsd.AvgDelayNs)
	}
}

func TestSaturationFlag(t *testing.T) {
	res, err := Run(testParams(t, 0.9, dvfs.NewNoDVFS(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Error("0.9 load on 5x5 uniform should saturate")
	}
}

func TestTraceCollection(t *testing.T) {
	p := testParams(t, 0.2, newDMSD(t, 150))
	p.TraceFreq = true
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace samples collected")
	}
	// Trace must be time-ordered with in-range frequencies.
	prev := -1.0
	for _, s := range res.Trace {
		if s.TimeNs <= prev {
			t.Fatal("trace not time-ordered")
		}
		prev = s.TimeNs
		if s.FreqHz < 333e6-1 || s.FreqHz > 1e9+1 {
			t.Fatalf("trace frequency %g out of range", s.FreqHz)
		}
		if s.Volts < 0.5 || s.Volts > 0.91 {
			t.Fatalf("trace voltage %g out of range", s.Volts)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	r1, err := Run(testParams(t, 0.25, newRMSD(t)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testParams(t, 0.25, newRMSD(t)))
	if err != nil {
		t.Fatal(err)
	}
	if r1.AvgLatencyCycles != r2.AvgLatencyCycles || r1.AvgPowerMW != r2.AvgPowerMW ||
		r1.Packets != r2.Packets {
		t.Errorf("identical runs diverged: %+v vs %+v", r1, r2)
	}
}

// TestRepeatedRunsFullyDeterministic is the strong form of the
// determinism contract the parallel experiment engine builds on: for
// every policy class, repeating a run from the same seed must reproduce
// the *entire* Result — every float, counter and trace sample — bit for
// bit.
func TestRepeatedRunsFullyDeterministic(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Params
	}{
		{"nodvfs", func() Params { return testParams(t, 0.2, dvfs.NewNoDVFS(1e9)) }},
		{"rmsd", func() Params { return testParams(t, 0.25, newRMSD(t)) }},
		{"dmsd-traced", func() Params {
			p := testParams(t, 0.2, newDMSD(t, 150))
			p.TraceFreq = true
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r1, err := Run(tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("repeated %s runs diverged:\nfirst:  %+v\nsecond: %+v", tc.name, r1, r2)
			}
		})
	}
}

func TestRunWithoutPowerModel(t *testing.T) {
	p := testParams(t, 0.1, dvfs.NewNoDVFS(1e9))
	p.Power = nil
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPowerMW != 0 {
		t.Errorf("power %g without a model", res.AvgPowerMW)
	}
	if res.Packets == 0 {
		t.Error("no packets measured")
	}
}

func TestMatrixTrafficRuns(t *testing.T) {
	cfg := noc.DefaultConfig()
	w := make([][]float64, 25)
	for i := range w {
		w[i] = make([]float64, 25)
	}
	w[0][24] = 5
	w[6][18] = 2
	mp, err := traffic.NewMatrixPattern("pair", cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := traffic.RowRates(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rates {
		rates[i] *= 0.3
	}
	inj, err := traffic.NewInjectorRates(cfg, mp, rates, 7)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.Default28nm()
	res, err := Run(Params{
		Noc: cfg, Injector: inj, Policy: dvfs.NewNoDVFS(1e9),
		VF: volt.New(), Power: &pm, Warmup: 5000, Measure: 15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Error("matrix traffic produced no packets")
	}
}

func TestP99AboveMean(t *testing.T) {
	res, err := Run(testParams(t, 0.25, dvfs.NewNoDVFS(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	if res.P99DelayNs < res.AvgDelayNs {
		t.Errorf("P99 %.1f below mean %.1f", res.P99DelayNs, res.AvgDelayNs)
	}
}
