package sim

import (
	"reflect"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/trace"
)

// TestSetDefaults pins every documented Params default so doc and code
// cannot drift apart silently again (MaxWarmup once said 1 000 000 in the
// doc while setDefaults used 500 000).
func TestSetDefaults(t *testing.T) {
	p := Params{}
	p.setDefaults()
	if p.FNode != 1e9 {
		t.Errorf("FNode default = %g, want 1e9", p.FNode)
	}
	if p.ControlPeriod != dvfs.ControlPeriodNodeCycles {
		t.Errorf("ControlPeriod default = %d, want %d", p.ControlPeriod, dvfs.ControlPeriodNodeCycles)
	}
	if p.Warmup != 30000 {
		t.Errorf("Warmup default = %d, want 30000", p.Warmup)
	}
	if p.Measure != 60000 {
		t.Errorf("Measure default = %d, want 60000", p.Measure)
	}
	if p.SatLatencyCycles != 1000 {
		t.Errorf("SatLatencyCycles default = %g, want 1000", p.SatLatencyCycles)
	}
	if p.SatBacklogPerNode != 25 {
		t.Errorf("SatBacklogPerNode default = %g, want 25", p.SatBacklogPerNode)
	}
	if p.SettlePeriods != 5 {
		t.Errorf("SettlePeriods default = %d, want 5", p.SettlePeriods)
	}
	if p.MaxWarmup != 1_000_000 {
		t.Errorf("MaxWarmup default = %d, want 1000000 (as documented)", p.MaxWarmup)
	}
}

// TestSetDefaultsPreservesExplicit checks that explicitly set values are
// not overwritten.
func TestSetDefaultsPreservesExplicit(t *testing.T) {
	p := Params{FNode: 2e9, Warmup: 7, Measure: 9, MaxWarmup: 42}
	p.setDefaults()
	if p.FNode != 2e9 || p.Warmup != 7 || p.Measure != 9 || p.MaxWarmup != 42 {
		t.Errorf("setDefaults clobbered explicit values: %+v", p)
	}
}

// TestStabilityThreshold pins the adaptive-warmup stability tolerance to
// the documented 0.3% and checks the detector's accept/reset behaviour
// right at the boundary.
func TestStabilityThreshold(t *testing.T) {
	if stabilityRelTol != 0.003 {
		t.Fatalf("stabilityRelTol = %g, want 0.003 (documented on Params.AdaptiveWarmup)", stabilityRelTol)
	}
	e := &engine{f: 1e9, p: Params{Policy: dvfs.NewNoDVFS(1e9)}}
	e.updateStability(dvfs.Measurement{}, 1e9*(1+0.9*stabilityRelTol))
	if e.stableRuns != 1 {
		t.Errorf("change below tolerance: stableRuns = %d, want 1", e.stableRuns)
	}
	e.updateStability(dvfs.Measurement{}, 1e9*(1-0.9*stabilityRelTol))
	if e.stableRuns != 2 {
		t.Errorf("negative change below tolerance: stableRuns = %d, want 2", e.stableRuns)
	}
	e.updateStability(dvfs.Measurement{}, 1e9*(1+1.5*stabilityRelTol))
	if e.stableRuns != 0 {
		t.Errorf("change above tolerance must reset the run: stableRuns = %d, want 0", e.stableRuns)
	}
}

// TestMeasurementWindowExactAtSlowClock is the regression test for the
// window-overshoot bug: with the network clock at a third of the node
// clock, each network cycle spans three node cycles, and the old per-
// network-cycle end check overran the window by up to two node cycles
// while the throughput denominator assumed exactly Measure.
func TestMeasurementWindowExactAtSlowClock(t *testing.T) {
	p := testParams(t, 0.05, dvfs.NewNoDVFS(1e9))
	p.FNode = 3e9 // Fnoc = FNode/3
	p.Warmup = 6000
	p.Measure = 10_001 // not a multiple of 3: the window must end mid network cycle
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredNodeCycles != p.Measure {
		t.Errorf("MeasuredNodeCycles = %d, want exactly %d", res.MeasuredNodeCycles, p.Measure)
	}
	if res.Packets == 0 || res.Throughput <= 0 {
		t.Errorf("degenerate run: packets=%d throughput=%g", res.Packets, res.Throughput)
	}
}

// TestMeasurementWindowExactAtEqualClocks covers the common Fnoc == FNode
// case, where the fix must be a no-op.
func TestMeasurementWindowExactAtEqualClocks(t *testing.T) {
	p := testParams(t, 0.1, dvfs.NewNoDVFS(1e9))
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredNodeCycles != p.Measure {
		t.Errorf("MeasuredNodeCycles = %d, want %d", res.MeasuredNodeCycles, p.Measure)
	}
}

// TestP99ExtendsBeyondInitialRange drives the network deep into saturation
// so source-queue delays dwarf the histogram's initial 5 µs span; the
// extending histogram must report the real tail instead of clamping P99 at
// exactly 5000 ns.
func TestP99ExtendsBeyondInitialRange(t *testing.T) {
	p := testParams(t, 0.8, dvfs.NewNoDVFS(1e9))
	p.SatBacklogPerNode = 1e9 // keep the run alive: no early abort
	p.Warmup = 20000
	p.Measure = 30000
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("0.8 uniform load should saturate the 5x5 mesh")
	}
	if res.P99DelayNs <= 5000 {
		t.Errorf("P99 = %.0f ns, still clamped at the initial histogram range", res.P99DelayNs)
	}
	if res.P99DelayNs < res.AvgDelayNs {
		t.Errorf("P99 %.0f ns below mean %.0f ns", res.P99DelayNs, res.AvgDelayNs)
	}
}

// TestSkipAheadGoldenEquivalence runs the same simulation with the
// skip-ahead/active-list fast paths enabled and disabled and requires
// bit-identical Results — including the frequency trace and the per-packet
// log. The load is low enough that many cycles are genuinely quiescent, so
// the fast path actually exercises its skip.
func TestSkipAheadGoldenEquivalence(t *testing.T) {
	run := func(disable bool) (Result, []trace.Record) {
		rmsd, err := dvfs.NewRMSD(1e9, 0.378, dvfs.DefaultRange())
		if err != nil {
			t.Fatal(err)
		}
		p := testParams(t, 0.02, rmsd)
		p.TraceFreq = true
		p.PacketLog = trace.NewLog(0)
		p.disableSkipAhead = disable
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res, p.PacketLog.Records()
	}
	fast, fastLog := run(false)
	naive, naiveLog := run(true)
	if !reflect.DeepEqual(fast, naive) {
		t.Errorf("Results differ between skip-ahead and naive stepping:\nfast:  %+v\nnaive: %+v", fast, naive)
	}
	if !reflect.DeepEqual(fastLog, naiveLog) {
		t.Errorf("packet logs differ: %d vs %d records", len(fastLog), len(naiveLog))
	}
	if fast.Packets == 0 {
		t.Error("degenerate run: no packets measured")
	}
}

// TestStepWorkersGoldenEquivalence asserts the engine-level determinism
// contract of Params.StepWorkers: the banded parallel network produces a
// bit-identical Result and packet log for every worker count, DVFS loop
// and all.
func TestStepWorkersGoldenEquivalence(t *testing.T) {
	run := func(workers int) (Result, []trace.Record) {
		rmsd, err := dvfs.NewRMSD(1e9, 0.378, dvfs.DefaultRange())
		if err != nil {
			t.Fatal(err)
		}
		p := testParams(t, 0.02, rmsd)
		p.TraceFreq = true
		p.PacketLog = trace.NewLog(0)
		p.StepWorkers = workers
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res, p.PacketLog.Records()
	}
	serial, serialLog := run(1)
	if serial.Packets == 0 {
		t.Fatal("degenerate run: no packets measured")
	}
	for _, w := range []int{2, 4} {
		res, log := run(w)
		if !reflect.DeepEqual(res, serial) {
			t.Errorf("StepWorkers=%d Result differs from serial:\nparallel: %+v\nserial:   %+v", w, res, serial)
		}
		if !reflect.DeepEqual(log, serialLog) {
			t.Errorf("StepWorkers=%d packet log differs: %d vs %d records", w, len(log), len(serialLog))
		}
	}
}
