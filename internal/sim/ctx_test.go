package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/dvfs"
	"repro/internal/noc"
	"repro/internal/traffic"
	"repro/internal/volt"
)

// ctxParams returns engine parameters for the cancellation tests: a
// loaded 8x8 mesh with long windows, several seconds of serial work.
func ctxParams(t *testing.T) Params {
	t.Helper()
	cfg := noc.Config{Width: 8, Height: 8, VCs: 8, BufDepth: 4, PacketSize: 20, Routing: noc.RoutingXY}
	inj, err := traffic.NewInjector(cfg, traffic.NewUniform(cfg), 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Params{
		Noc:      cfg,
		Injector: inj,
		Policy:   dvfs.NewNoDVFS(1e9),
		VF:       volt.New(),
		Measure:  2_000_000, // far longer than any test will let it run
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, ctxParams(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := RunContext(ctx, ctxParams(t))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The engine checks the context every ctxCheckCycles network cycles;
	// the return must come promptly after the cancel, not after the
	// configured 2M-node-cycle measurement window.
	if elapsed > time.Second {
		t.Errorf("mid-run cancel returned after %v", elapsed)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, ctxParams(t))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunMatchesRunContextBackground: the convenience wrapper and an
// uncancelled context produce identical results.
func TestRunMatchesRunContextBackground(t *testing.T) {
	p := ctxParams(t)
	p.Warmup = 2000
	p.Measure = 5000
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the injector: Params carries live RNG state.
	p2 := ctxParams(t)
	p2.Warmup = 2000
	p2.Measure = 5000
	b, err := RunContext(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Run and RunContext(Background) differ:\n%+v\n%+v", a, b)
	}
}
