package sim

import (
	"testing"

	"repro/internal/dvfs"
	"repro/internal/noc"
	"repro/internal/traffic"
	"repro/internal/volt"
)

// benchRun measures a complete (small) engine run: network construction,
// warmup, measurement, result extraction. It is the end-to-end cost of one
// sweep point, scaled down ~10x from production windows.
func benchRun(b *testing.B, rate float64, policy func() dvfs.Policy) {
	cfg := noc.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj, err := traffic.NewInjector(cfg, traffic.NewUniform(cfg), rate, 1234)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(Params{
			Noc:      cfg,
			Injector: inj,
			Policy:   policy(),
			VF:       volt.New(),
			Warmup:   2000,
			Measure:  6000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Packets == 0 {
			b.Fatal("no packets measured")
		}
	}
}

func BenchmarkEngineRunNoDVFS(b *testing.B) {
	benchRun(b, 0.1, func() dvfs.Policy { return dvfs.NewNoDVFS(1e9) })
}

func BenchmarkEngineRunRMSD(b *testing.B) {
	benchRun(b, 0.1, func() dvfs.Policy {
		p, err := dvfs.NewRMSD(1e9, 0.378, dvfs.DefaultRange())
		if err != nil {
			b.Fatal(err)
		}
		return p
	})
}

// BenchmarkEngineRunLowLoad is dominated by quiescent and near-quiescent
// cycles, so it tracks the skip-ahead and active-list win at fleet-typical
// low sweep points.
func BenchmarkEngineRunLowLoad(b *testing.B) {
	benchRun(b, 0.01, func() dvfs.Policy { return dvfs.NewNoDVFS(1e9) })
}
