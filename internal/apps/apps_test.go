package apps

import (
	"math"
	"testing"

	"repro/internal/noc"
)

func TestH264Valid(t *testing.T) {
	a := H264()
	if err := a.Validate(); err != nil {
		t.Fatalf("H.264 graph invalid: %v", err)
	}
	if a.Width != 4 || a.Height != 4 {
		t.Errorf("H.264 mesh = %dx%d, want 4x4 (Fig. 9a)", a.Width, a.Height)
	}
	if len(a.Blocks) != 15 {
		t.Errorf("H.264 has %d blocks, want 15", len(a.Blocks))
	}
	if len(a.Edges) != 19 {
		t.Errorf("H.264 has %d edges, want 19", len(a.Edges))
	}
}

func TestVCEValid(t *testing.T) {
	a := VCE()
	if err := a.Validate(); err != nil {
		t.Fatalf("VCE graph invalid: %v", err)
	}
	if a.Width != 5 || a.Height != 5 {
		t.Errorf("VCE mesh = %dx%d, want 5x5 (Fig. 9b)", a.Width, a.Height)
	}
	if len(a.Blocks) != 25 {
		t.Errorf("VCE has %d blocks, want 25 (fully used mesh)", len(a.Blocks))
	}
	if len(a.Edges) != 31 {
		t.Errorf("VCE has %d edges, want 31", len(a.Edges))
	}
}

func TestH264WeightMultisetFromFigure(t *testing.T) {
	// The edge weights must be exactly the multiset printed in Fig. 9(a).
	want := map[float64]int{
		420: 2, 840: 1, 280: 3, 560: 1, 140: 1, 210: 1, 66: 2, 3: 2,
		228: 2, 24: 2, 60: 1, 221: 1,
	}
	got := map[float64]int{}
	for _, e := range H264().Edges {
		got[e.PacketsPerFrame]++
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("weight %g appears %d times, want %d", w, got[w], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("weight alphabet size %d, want %d", len(got), len(want))
	}
}

func TestVCEWeightMultisetFromFigure(t *testing.T) {
	want := map[float64]int{
		4200: 3, 8400: 1, 2800: 3, 5600: 1, 1400: 1, 30: 3, 2280: 2,
		2210: 1, 240: 2, 660: 2, 2100: 1, 640: 2, 2000: 1, 600: 1,
		620: 1, 90: 4, 20: 2,
	}
	got := map[float64]int{}
	for _, e := range VCE().Edges {
		got[e.PacketsPerFrame]++
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("weight %g appears %d times, want %d", w, got[w], n)
		}
	}
}

func TestAppsList(t *testing.T) {
	list := Apps()
	if len(list) != 2 || list[0].Name != "h264" || list[1].Name != "vce" {
		t.Errorf("Apps() = %v", list)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	base := H264()
	tests := []struct {
		name   string
		mutate func(*App)
	}{
		{"duplicate block", func(a *App) { a.Blocks = append(a.Blocks, Block{"video_in", 3, 3}) }},
		{"shared tile", func(a *App) { a.Blocks = append(a.Blocks, Block{"extra", 0, 0}) }},
		{"off mesh", func(a *App) { a.Blocks[0].X = 7 }},
		{"unknown edge source", func(a *App) { a.Edges[0].From = "nope" }},
		{"unknown edge target", func(a *App) { a.Edges[0].To = "nope" }},
		{"self edge", func(a *App) { a.Edges[0].To = a.Edges[0].From }},
		{"zero weight", func(a *App) { a.Edges[0].PacketsPerFrame = 0 }},
		{"disconnected", func(a *App) {
			a.Edges = a.Edges[:1] // only video_in -> yuv_gen remains
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := base
			a.Blocks = append([]Block(nil), base.Blocks...)
			a.Edges = append([]Edge(nil), base.Edges...)
			tc.mutate(&a)
			if err := a.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestNodeLookup(t *testing.T) {
	a := H264()
	id, err := a.Node("quant")
	if err != nil {
		t.Fatal(err)
	}
	// quant is at (3,1) on a 4-wide mesh: id 7.
	if id != 7 {
		t.Errorf("Node(quant) = %d, want 7", id)
	}
	if _, err := a.Node("bogus"); err == nil {
		t.Error("Node accepted unknown block")
	}
}

func TestMatrixTotals(t *testing.T) {
	for _, a := range Apps() {
		m, err := a.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for s := range m {
			for d, w := range m[s] {
				if w > 0 && s == d {
					t.Errorf("%s: self traffic at %d", a.Name, s)
				}
				total += w
			}
		}
		if math.Abs(total-a.TotalPacketsPerFrame()) > 1e-9 {
			t.Errorf("%s: matrix total %g != edge total %g", a.Name, total, a.TotalPacketsPerFrame())
		}
	}
}

func TestInjectorScalesWithSpeed(t *testing.T) {
	a := H264()
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	full, err := a.Injector(cfg, 1.0, DefaultPeakRate, 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := a.Injector(cfg, 0.5, DefaultPeakRate, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.MeanRate()-full.MeanRate()/2) > 1e-12 {
		t.Errorf("speed 0.5 mean rate %g, want half of %g", half.MeanRate(), full.MeanRate())
	}
}

func TestInjectorRejectsWrongMesh(t *testing.T) {
	a := H264()
	cfg := noc.DefaultConfig() // 5x5, but H.264 needs 4x4
	if _, err := a.Injector(cfg, 1, DefaultPeakRate, 1); err == nil {
		t.Error("accepted wrong mesh size")
	}
}

func TestInjectorRejectsBadSpeed(t *testing.T) {
	a := H264()
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	if _, err := a.Injector(cfg, -1, DefaultPeakRate, 1); err == nil {
		t.Error("accepted negative speed")
	}
	if _, err := a.Injector(cfg, 1, 0, 1); err == nil {
		t.Error("accepted zero peak")
	}
}

func TestBusiestNodeGetsPeakRate(t *testing.T) {
	// At speed 1 the maximum per-node rate must equal the peak parameter.
	a := VCE()
	cfg := noc.DefaultConfig()
	m, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	// Find busiest row.
	maxRow, busiest := 0.0, -1
	for s := range m {
		sum := 0.0
		for _, w := range m[s] {
			sum += w
		}
		if sum > maxRow {
			maxRow, busiest = sum, s
		}
	}
	// yuv_gen sends 8400+5600+2100 = 16100 packets/frame — the most.
	yuv, err := a.Node("yuv_gen")
	if err != nil {
		t.Fatal(err)
	}
	if noc.NodeID(busiest) != yuv {
		t.Errorf("busiest node %d, want yuv_gen (%d)", busiest, yuv)
	}
	inj, err := a.Injector(cfg, 1.0, 0.35, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = inj
	if maxRow != 16100 {
		t.Errorf("yuv_gen row sum = %g, want 16100", maxRow)
	}
}

func TestTheoreticalCapacityOfAppMatrices(t *testing.T) {
	// Both app matrices must admit a positive theoretical capacity on
	// their meshes under XY routing.
	for _, a := range Apps() {
		m, err := a.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		// Normalize rows for the capacity computation.
		norm := make([][]float64, len(m))
		for s := range m {
			norm[s] = make([]float64, len(m[s]))
			sum := 0.0
			for _, w := range m[s] {
				sum += w
			}
			if sum == 0 {
				continue
			}
			for d, w := range m[s] {
				norm[s][d] = w / sum
			}
		}
		cfg := noc.Config{Width: a.Width, Height: a.Height, Routing: noc.RoutingXY}
		cap := noc.TheoreticalCapacity(cfg, norm)
		if cap <= 0 {
			t.Errorf("%s: non-positive capacity", a.Name)
		}
	}
}
