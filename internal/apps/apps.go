// Package apps provides the two multimedia workloads of the paper's
// Sec. VI: an H.264/MPEG-4 encoder mapped on a 4x4 mesh and a Video
// Conference Encoder (VCE) mapped on a 5x5 mesh, both taken from Latif's
// MPSoC design-space-exploration benchmark suite (paper ref. [13]) and
// shown as annotated communication graphs in Fig. 9.
//
// Each application is a directed graph: vertices are computation blocks
// pinned to mesh tiles, and edge weights are packets exchanged per encoded
// frame. The graphs below are a best-effort transcription of Fig. 9: the
// block lists and the edge-weight multiset come straight from the figure,
// while a handful of edge endpoints that are ambiguous in the figure
// artwork were resolved from the standard dataflow of an H.264 encoder
// (ME/MC prediction loop, DCT->Q->IQ->IDCT reconstruction, deblocking
// reference path, entropy-coded output). The experiments depend on the
// weighted hop-length distribution of the traffic, which this
// reconstruction preserves; see DESIGN.md for the substitution note.
package apps

import (
	"errors"
	"fmt"

	"repro/internal/noc"
	"repro/internal/traffic"
)

// Block is one computation vertex of an application graph, pinned to a
// mesh tile.
type Block struct {
	Name string
	X, Y int
}

// Edge is one communication arc with its traffic demand in packets per
// encoded frame.
type Edge struct {
	From, To        string
	PacketsPerFrame float64
}

// App is a mapped application communication graph.
type App struct {
	// Name identifies the application ("h264" or "vce").
	Name string
	// Width and Height are the mesh the mapping targets (4x4 for H.264,
	// 5x5 for VCE, as in Fig. 9).
	Width, Height int
	// Blocks are the computation vertices with their tile coordinates.
	Blocks []Block
	// Edges are the communication arcs.
	Edges []Edge
}

// H264 returns the MPEG-4/H.264 encoder graph of Fig. 9(a): 15 blocks on
// a 4x4 mesh (one tile idle), 19 edges.
func H264() App {
	return App{
		Name:  "h264",
		Width: 4, Height: 4,
		Blocks: []Block{
			{"video_in", 0, 0}, {"yuv_gen", 1, 0}, {"padding_mv", 2, 0}, {"motion_est", 3, 0},
			{"chroma_resampler", 0, 1}, {"motion_comp", 1, 1}, {"dct", 2, 1}, {"quant", 3, 1},
			{"predictor", 0, 2}, {"idct", 1, 2}, {"iq", 2, 2}, {"entropy_enc", 3, 2},
			{"sample_hold", 0, 3}, {"deblocking", 1, 3}, {"stream_out", 2, 3},
		},
		Edges: []Edge{
			{"video_in", "yuv_gen", 420},
			{"yuv_gen", "padding_mv", 840},
			{"padding_mv", "motion_est", 280},
			{"yuv_gen", "motion_est", 280},
			{"motion_est", "motion_comp", 280},
			{"yuv_gen", "motion_comp", 560},
			{"motion_comp", "dct", 140},
			{"dct", "quant", 420},
			{"quant", "iq", 210},
			{"quant", "entropy_enc", 66},
			{"iq", "idct", 3},
			{"idct", "predictor", 3},
			{"predictor", "motion_comp", 228},
			{"entropy_enc", "stream_out", 66},
			{"deblocking", "sample_hold", 24},
			{"idct", "deblocking", 60},
			{"sample_hold", "stream_out", 24},
			{"chroma_resampler", "predictor", 221},
			{"deblocking", "motion_est", 228},
		},
	}
}

// VCE returns the Video Conference Encoder graph of Fig. 9(b): 25 blocks
// on a 5x5 mesh (video encoder, audio encoder, and OFDM transmit chain),
// 31 edges.
func VCE() App {
	return App{
		Name:  "vce",
		Width: 5, Height: 5,
		Blocks: []Block{
			{"video_in_mem", 0, 0}, {"yuv_gen", 1, 0}, {"padding_mv", 2, 0}, {"motion_est", 3, 0}, {"deblocking", 4, 0},
			{"chroma_resampler", 0, 1}, {"motion_comp", 1, 1}, {"dct", 2, 1}, {"quant", 3, 1}, {"iq", 4, 1},
			{"predictor", 0, 2}, {"sample_hold", 1, 2}, {"idct", 2, 2}, {"entropy_enc", 3, 2}, {"stream_mux", 4, 2},
			{"audio_in", 0, 3}, {"filter_bank", 1, 3}, {"mdct", 2, 3}, {"psts_mux", 3, 3}, {"sram", 4, 3},
			{"quantizer_a", 0, 4}, {"huffman", 1, 4}, {"fft", 2, 4}, {"ifft", 3, 4}, {"ofdm", 4, 4},
		},
		Edges: []Edge{
			// Video encoder pipeline (mirrors the H.264 graph at VCE scale).
			{"video_in_mem", "yuv_gen", 4200},
			{"yuv_gen", "padding_mv", 8400},
			{"padding_mv", "motion_est", 2800},
			{"motion_est", "motion_comp", 2800},
			{"yuv_gen", "motion_comp", 5600},
			{"motion_comp", "dct", 2800},
			{"dct", "quant", 1400},
			{"quant", "iq", 2280},
			{"quant", "entropy_enc", 4200},
			{"iq", "idct", 2280},
			{"idct", "deblocking", 2210},
			{"deblocking", "motion_est", 4200},
			{"deblocking", "sample_hold", 240},
			{"sample_hold", "predictor", 240},
			{"predictor", "motion_comp", 660},
			{"chroma_resampler", "predictor", 660},
			{"yuv_gen", "chroma_resampler", 2100},
			{"idct", "predictor", 30},
			// Stream assembly and OFDM transmit chain.
			{"entropy_enc", "stream_mux", 640},
			{"stream_mux", "psts_mux", 2000},
			{"psts_mux", "sram", 600},
			{"sram", "fft", 640},
			{"sram", "ifft", 620},
			{"ifft", "ofdm", 90},
			{"fft", "psts_mux", 90},
			{"sram", "ofdm", 30},
			// Audio encoder chain.
			{"audio_in", "filter_bank", 90},
			{"filter_bank", "mdct", 30},
			{"mdct", "quantizer_a", 20},
			{"quantizer_a", "huffman", 20},
			{"huffman", "psts_mux", 90},
		},
	}
}

// Apps returns both paper applications.
func Apps() []App { return []App{H264(), VCE()} }

// Validate checks structural consistency: unique block names, unique tile
// positions inside the mesh, edges referencing existing distinct blocks
// with positive weights, and a weakly connected graph.
func (a App) Validate() error {
	var errs []error
	byName := make(map[string]Block, len(a.Blocks))
	byTile := make(map[[2]int]string, len(a.Blocks))
	if len(a.Blocks) > a.Width*a.Height {
		errs = append(errs, fmt.Errorf("%d blocks exceed %dx%d mesh", len(a.Blocks), a.Width, a.Height))
	}
	for _, b := range a.Blocks {
		if _, dup := byName[b.Name]; dup {
			errs = append(errs, fmt.Errorf("duplicate block %q", b.Name))
		}
		byName[b.Name] = b
		if b.X < 0 || b.X >= a.Width || b.Y < 0 || b.Y >= a.Height {
			errs = append(errs, fmt.Errorf("block %q at (%d,%d) outside %dx%d mesh", b.Name, b.X, b.Y, a.Width, a.Height))
		}
		if prev, dup := byTile[[2]int{b.X, b.Y}]; dup {
			errs = append(errs, fmt.Errorf("blocks %q and %q share tile (%d,%d)", prev, b.Name, b.X, b.Y))
		}
		byTile[[2]int{b.X, b.Y}] = b.Name
	}
	adj := make(map[string][]string)
	for _, e := range a.Edges {
		if _, ok := byName[e.From]; !ok {
			errs = append(errs, fmt.Errorf("edge from unknown block %q", e.From))
			continue
		}
		if _, ok := byName[e.To]; !ok {
			errs = append(errs, fmt.Errorf("edge to unknown block %q", e.To))
			continue
		}
		if e.From == e.To {
			errs = append(errs, fmt.Errorf("self edge at %q", e.From))
		}
		if e.PacketsPerFrame <= 0 {
			errs = append(errs, fmt.Errorf("edge %s->%s has non-positive weight", e.From, e.To))
		}
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	if len(a.Blocks) > 0 && len(errs) == 0 {
		seen := map[string]bool{a.Blocks[0].Name: true}
		stack := []string{a.Blocks[0].Name}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		if len(seen) != len(a.Blocks) {
			errs = append(errs, fmt.Errorf("graph not connected: reached %d of %d blocks", len(seen), len(a.Blocks)))
		}
	}
	return errors.Join(errs...)
}

// Node returns the mesh node id of a named block.
func (a App) Node(name string) (noc.NodeID, error) {
	for _, b := range a.Blocks {
		if b.Name == name {
			return noc.NodeID(b.Y*a.Width + b.X), nil
		}
	}
	return 0, fmt.Errorf("apps: unknown block %q", name)
}

// Matrix returns the packets-per-frame traffic matrix on mesh node ids.
func (a App) Matrix() ([][]float64, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("apps: invalid %s graph: %w", a.Name, err)
	}
	n := a.Width * a.Height
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for _, e := range a.Edges {
		from, err := a.Node(e.From)
		if err != nil {
			return nil, err
		}
		to, err := a.Node(e.To)
		if err != nil {
			return nil, err
		}
		m[from][to] += e.PacketsPerFrame
	}
	return m, nil
}

// TotalPacketsPerFrame sums all edge demands.
func (a App) TotalPacketsPerFrame() float64 {
	total := 0.0
	for _, e := range a.Edges {
		total += e.PacketsPerFrame
	}
	return total
}

// DefaultPeakRate is the busiest node's injection rate (flits per node per
// node cycle) at application speed 1.0. The paper normalizes speed to 75
// frames/s without stating absolute link utilizations; this default puts
// the busiest node at a moderate-to-high load where the No-DVFS delay has
// risen visibly above zero-load but the network is not saturated, matching
// the qualitative shape of Fig. 10. See EXPERIMENTS.md.
const DefaultPeakRate = 0.40

// Injector builds the traffic injector for the application at the given
// relative speed (1.0 ≡ 75 frames/s in the paper's normalization). The
// busiest source injects speed·peak flits per node cycle; all other
// sources scale proportionally to their row sums. cfg must match the
// application's mesh.
func (a App) Injector(cfg noc.Config, speed, peak float64, seed int64) (*traffic.Injector, error) {
	if cfg.Width != a.Width || cfg.Height != a.Height {
		return nil, fmt.Errorf("apps: %s needs a %dx%d mesh, config is %dx%d",
			a.Name, a.Width, a.Height, cfg.Width, cfg.Height)
	}
	if speed < 0 || peak <= 0 {
		return nil, fmt.Errorf("apps: bad speed %g / peak %g", speed, peak)
	}
	m, err := a.Matrix()
	if err != nil {
		return nil, err
	}
	pattern, err := traffic.NewMatrixPattern(a.Name, cfg, m)
	if err != nil {
		return nil, err
	}
	rates, err := traffic.RowRates(m)
	if err != nil {
		return nil, err
	}
	for i := range rates {
		rates[i] *= speed * peak
	}
	return traffic.NewInjectorRates(cfg, pattern, rates, seed)
}
