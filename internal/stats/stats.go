// Package stats provides the streaming statistics used by the simulator:
// Welford accumulators, fixed-bin histograms for latency distributions,
// and windowed accumulators for the DVFS control loop.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates count, mean, variance, min and max of a sequence of
// observations in a single pass (Welford's algorithm). The zero value is
// ready to use.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 with none).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 with none).
func (s *Stream) Max() float64 { return s.max }

// Reset discards all observations.
func (s *Stream) Reset() { *s = Stream{} }

// Merge combines another stream into s (parallel Welford merge).
func (s *Stream) Merge(o Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// String summarizes the stream.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Histogram is a fixed-width-bin histogram over [lo, hi) with overflow and
// underflow bins, supporting approximate quantiles. A histogram built with
// NewExtendingHistogram additionally widens its range on demand (trading
// resolution for coverage) so quantiles are never silently clamped at hi.
type Histogram struct {
	lo, hi float64
	// maxHi > hi enables range extension: when a sample lands at or above
	// hi, the range doubles in place (adjacent bin pairs merge) until the
	// sample fits or maxHi is reached. 0 disables extension.
	maxHi float64
	bins  []int64
	under int64
	over  int64
	n     int64
	sum   float64
}

// NewHistogram creates a histogram with nbins bins spanning [lo, hi).
// Samples at or above hi land in an overflow bin and clamp Quantile at hi;
// use NewExtendingHistogram when the upper range is not known in advance.
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if !(lo < hi) || nbins < 1 {
		return nil, fmt.Errorf("stats: bad histogram spec [%g,%g)/%d", lo, hi, nbins)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}, nil
}

// NewExtendingHistogram creates a histogram spanning [lo, hi) that doubles
// its range in place — merging adjacent bin pairs, so no allocation — each
// time a sample lands at or above the current hi, up to maxHi. nbins must
// be even so pairs merge cleanly.
func NewExtendingHistogram(lo, hi float64, nbins int, maxHi float64) (*Histogram, error) {
	if nbins%2 != 0 {
		return nil, fmt.Errorf("stats: extending histogram needs an even bin count, got %d", nbins)
	}
	if !(maxHi > hi) {
		return nil, fmt.Errorf("stats: extension limit %g must exceed hi %g", maxHi, hi)
	}
	h, err := NewHistogram(lo, hi, nbins)
	if err != nil {
		return nil, err
	}
	h.maxHi = maxHi
	return h, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	if x < h.lo {
		h.under++
		return
	}
	for x >= h.hi && h.hi < h.maxHi {
		h.extend()
	}
	if x >= h.hi {
		h.over++
		return
	}
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if i == len(h.bins) { // guard rounding at the top edge
		i--
	}
	h.bins[i]++
}

// extend doubles the histogram range in place: adjacent bin pairs merge
// into the lower half and the upper half opens up at twice the bin width.
func (h *Histogram) extend() {
	half := len(h.bins) / 2
	for i := 0; i < half; i++ {
		h.bins[i] = h.bins[2*i] + h.bins[2*i+1]
	}
	for i := half; i < len(h.bins); i++ {
		h.bins[i] = 0
	}
	h.hi = h.lo + 2*(h.hi-h.lo)
}

// Bounds returns the current [lo, hi) range; hi grows when an extending
// histogram widens.
func (h *Histogram) Bounds() (lo, hi float64) { return h.lo, h.hi }

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) using
// bin midpoints; underflow maps to lo and overflow to hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	cum := h.under
	if cum >= target {
		return h.lo
	}
	w := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		cum += c
		if cum >= target {
			return h.lo + (float64(i)+0.5)*w
		}
	}
	return h.hi
}

// Counts returns copies of the bin counts plus the underflow and overflow
// counts.
func (h *Histogram) Counts() (bins []int64, under, over int64) {
	out := make([]int64, len(h.bins))
	copy(out, h.bins)
	return out, h.under, h.over
}

// Window accumulates a sum and count that the caller periodically drains;
// it backs the DVFS controllers' per-control-period measurements.
type Window struct {
	sum   float64
	count int64
}

// Add records one observation.
func (w *Window) Add(x float64) { w.sum += x; w.count++ }

// AddN records a pre-aggregated quantity (e.g. "this cycle injected k
// flits").
func (w *Window) AddN(sum float64, count int64) { w.sum += sum; w.count += count }

// Count returns the number of observations in the current window.
func (w *Window) Count() int64 { return w.count }

// Sum returns the observation sum in the current window.
func (w *Window) Sum() float64 { return w.sum }

// Mean returns the mean of the current window, or fallback when empty.
func (w *Window) Mean(fallback float64) float64 {
	if w.count == 0 {
		return fallback
	}
	return w.sum / float64(w.count)
}

// Drain returns the window's sum and count and resets it.
func (w *Window) Drain() (sum float64, count int64) {
	sum, count = w.sum, w.count
	w.sum, w.count = 0, 0
	return sum, count
}

// Percentile returns the p-th percentile (0-100) of xs by sorting a copy;
// it is a convenience for offline analysis of small samples.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}
