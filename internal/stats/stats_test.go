package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestStreamBasics(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %g, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %g, want %g", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Error("empty stream should report zeros")
	}
}

func TestStreamSingleObservation(t *testing.T) {
	var s Stream
	s.Add(3.5)
	if s.Variance() != 0 {
		t.Errorf("variance of single obs = %g", s.Variance())
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("min/max of single obs wrong")
	}
}

func TestStreamReset(t *testing.T) {
	var s Stream
	s.Add(1)
	s.Add(2)
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 {
		t.Error("reset did not clear stream")
	}
}

func TestStreamMatchesNaiveQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Stream
		sum := 0.0
		for _, r := range raw {
			s.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		if !almostEqual(s.Mean(), mean, 1e-9) {
			return false
		}
		if len(raw) > 1 {
			ss := 0.0
			for _, r := range raw {
				d := float64(r) - mean
				ss += d * d
			}
			if !almostEqual(s.Variance(), ss/float64(len(raw)-1), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamMergeEquivalentToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, b, all Stream
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N=%d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %g, want %g", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged variance %g, want %g", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max wrong")
	}
}

func TestStreamMergeEmptyCases(t *testing.T) {
	var a, b Stream
	a.Merge(b) // both empty
	if a.N() != 0 {
		t.Error("merging empties should stay empty")
	}
	b.Add(5)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Error("merging into empty failed")
	}
	var c Stream
	a.Merge(c)
	if a.N() != 1 {
		t.Error("merging empty into nonempty changed N")
	}
}

func TestStreamString(t *testing.T) {
	var s Stream
	s.Add(1)
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("accepted lo==hi")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("accepted zero bins")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("accepted lo>hi")
	}
}

func TestHistogramCountsAndMean(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 0.5, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	bins, under, over := h.Counts()
	if under != 1 {
		t.Errorf("under = %d, want 1", under)
	}
	if over != 2 {
		t.Errorf("over = %d, want 2 (10 and 42)", over)
	}
	if bins[0] != 2 {
		t.Errorf("bin0 = %d, want 2", bins[0])
	}
	if bins[5] != 1 || bins[9] != 1 {
		t.Errorf("bins = %v", bins)
	}
	want := (-1 + 0 + 0.5 + 5 + 9.99 + 10 + 42) / 7
	if !almostEqual(h.Mean(), want, 1e-12) {
		t.Errorf("mean = %g, want %g", h.Mean(), want)
	}
	if h.N() != 7 {
		t.Errorf("N = %d, want 7", h.N())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	// The median of 0..99 is ~49.5; bin midpoints give 49.5.
	if q := h.Quantile(0.5); math.Abs(q-49.5) > 1.0 {
		t.Errorf("median = %g, want ~49.5", q)
	}
	if q := h.Quantile(0.99); math.Abs(q-98.5) > 1.5 {
		t.Errorf("p99 = %g, want ~98.5", q)
	}
	if q := h.Quantile(0); math.Abs(q-0.5) > 1 {
		t.Errorf("q0 = %g, want first bin", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Error("quantile of empty histogram should be 0")
	}
}

func TestHistogramQuantileOverflowDominant(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	for i := 0; i < 10; i++ {
		h.Add(5) // all overflow
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("overflow median = %g, want hi=1", q)
	}
}

func TestWindowDrain(t *testing.T) {
	var w Window
	w.Add(2)
	w.Add(4)
	w.AddN(10, 2)
	if w.Count() != 4 || w.Sum() != 16 {
		t.Fatalf("count/sum = %d/%g, want 4/16", w.Count(), w.Sum())
	}
	if got := w.Mean(-1); got != 4 {
		t.Errorf("mean = %g, want 4", got)
	}
	sum, count := w.Drain()
	if sum != 16 || count != 4 {
		t.Errorf("drain = %g/%d", sum, count)
	}
	if w.Count() != 0 || w.Sum() != 0 {
		t.Error("drain did not reset")
	}
	if got := w.Mean(-1); got != -1 {
		t.Errorf("empty mean fallback = %g, want -1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 9}, {50, 5}, {25, 3}, {75, 7},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Error("Percentile mutated input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("interpolated median = %g, want 5", got)
	}
}

func TestExtendingHistogramValidation(t *testing.T) {
	if _, err := NewExtendingHistogram(0, 10, 5, 100); err == nil {
		t.Error("accepted odd bin count")
	}
	if _, err := NewExtendingHistogram(0, 10, 4, 10); err == nil {
		t.Error("accepted maxHi == hi")
	}
	if _, err := NewExtendingHistogram(0, 10, 4, 5); err == nil {
		t.Error("accepted maxHi < hi")
	}
	if _, err := NewExtendingHistogram(10, 10, 4, 100); err == nil {
		t.Error("accepted lo == hi")
	}
}

func TestExtendingHistogramGrowsRange(t *testing.T) {
	h, err := NewExtendingHistogram(0, 10, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i)) // one per bin
	}
	// A sample at 35 forces two doublings: 10 -> 20 -> 40.
	h.Add(35)
	if _, hi := h.Bounds(); hi != 40 {
		t.Fatalf("hi = %g after extension, want 40", hi)
	}
	bins, under, over := h.Counts()
	if under != 0 || over != 0 {
		t.Errorf("under=%d over=%d, want 0/0 after extension", under, over)
	}
	// Original ten samples merged into the bottom fourth (bin width 4).
	var lowCount int64
	for _, c := range bins[:3] {
		lowCount += c
	}
	if lowCount != 10 {
		t.Errorf("low bins hold %d samples, want all 10 originals", lowCount)
	}
	if bins[8] != 1 { // 35 lands in [32,36)
		t.Errorf("bins = %v, want the extension sample in bin 8", bins)
	}
	if h.N() != 11 {
		t.Errorf("N = %d, want 11", h.N())
	}
	wantMean := (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 35) / 11.0
	if !almostEqual(h.Mean(), wantMean, 1e-12) {
		t.Errorf("mean = %g, want %g (must stay exact through extension)", h.Mean(), wantMean)
	}
}

func TestExtendingHistogramQuantileNotClamped(t *testing.T) {
	h, err := NewExtendingHistogram(0, 10, 10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i * 50)) // 0..4950, far past the initial hi
	}
	if _, hi := h.Bounds(); hi < 4950 {
		t.Fatalf("hi = %g, did not extend to cover samples", hi)
	}
	q := h.Quantile(0.99)
	if q <= 10 {
		t.Fatalf("p99 = %g, clamped at the initial range", q)
	}
	if math.Abs(q-4900) > 700 { // one doubled-bin width of slack
		t.Errorf("p99 = %g, want ~4900", q)
	}
}

func TestExtendingHistogramRespectsMax(t *testing.T) {
	h, err := NewExtendingHistogram(0, 10, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1e9)
	if _, hi := h.Bounds(); hi != 40 {
		t.Errorf("hi = %g, want extension capped at 40", hi)
	}
	if _, _, over := h.Counts(); over != 1 {
		t.Errorf("overflow = %d, want 1 once the cap is hit", over)
	}
}

func TestFixedHistogramNeverExtends(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1e9)
	if _, hi := h.Bounds(); hi != 10 {
		t.Errorf("fixed histogram extended to hi=%g", hi)
	}
	if _, _, over := h.Counts(); over != 1 {
		t.Errorf("overflow = %d, want 1", over)
	}
}
