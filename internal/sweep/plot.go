package sweep

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve for ASCII plotting.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// AsciiPlot renders one or more series on a shared text canvas — enough
// to eyeball the reproduced figure shapes in a terminal (the delay
// anomaly, the flat DMSD curve) without any plotting dependency.
func AsciiPlot(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			r := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[r][c] = s.Marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%10.4g ┤%s\n", ymax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", ymin, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s  %-8.4g%s%8.4g\n", "", xmin,
		strings.Repeat(" ", maxInt(0, width-16)), xmax)
	legend := make([]string, 0, len(series))
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// PlotTable renders selected columns of a table against its first column.
func PlotTable(t Table, width, height int, cols ...string) (string, error) {
	markers := []byte{'*', 'o', '+', 'x', '#'}
	xs, ok := t.Column(t.Columns[0])
	if !ok {
		return "", fmt.Errorf("sweep: table %s has no columns", t.ID)
	}
	var series []Series
	for i, name := range cols {
		ys, ok := t.Column(name)
		if !ok {
			return "", fmt.Errorf("sweep: table %s has no column %q", t.ID, name)
		}
		series = append(series, Series{
			Name:   name,
			Marker: markers[i%len(markers)],
			X:      xs,
			Y:      ys,
		})
	}
	return AsciiPlot(t.Title, width, height, series...), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
