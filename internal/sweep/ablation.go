package sweep

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/exp"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/volt"
)

// This file holds the ablation studies beyond the paper's figures,
// supporting claims the paper makes in prose:
//
//   - AblationControlPeriod — Sec. IV claims 10 000 cycles "are
//     sufficient" as a control update period: sweep the period and show
//     the tracked delay is insensitive while overhead shrinks.
//   - AblationGains — Sec. IV: the published gains are "a good compromise
//     between stability and reactivity": sweep KI/KP around them.
//   - AblationDiscreteLevels — footnote 2: results remain valid when the
//     controller picks from discrete frequency levels.
//   - AblationRouting — Sec. I claims insensitivity to micro-architectural
//     variations: swap the routing algorithm (XY / YX / O1TURN).
//   - PowerBreakdown — decompose the policies' power into switching,
//     clock and leakage, explaining *where* the V²F savings come from.
//
// Each study's grid points are independent runs (every point builds its
// own controller and injector), so they fan out across the exp engine
// under Options.Workers; rows are collected in grid order.

// ablationScenario returns the baseline with the given load fraction of
// saturation resolved against a fresh calibration.
func ablationBase(ctx context.Context, o Options) (core.Scenario, core.Calibration, error) {
	s := o.baseline()
	cal, err := core.Calibrate(ctx, s)
	return s, cal, err
}

// AblationControlPeriod sweeps the DMSD control update period and reports
// the steady-state delay error and power at a fixed moderate load. The
// paper's claim holds when the tracked delay stays near the target across
// periods spanning two orders of magnitude.
func AblationControlPeriod(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	s, cal, err := ablationBase(ctx, o)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "abl_period",
		Title:   "DMSD steady state vs control update period (load = 0.5 x saturation)",
		Columns: []string{"period_node_cycles", "delay_ns", "delay_err_pct", "power_mw", "avg_freq_ghz"},
		Notes: []string{calNote(cal),
			"paper Sec. IV: 10 000 cycles at the highest frequency are sufficient"},
	}
	rate := 0.5 * cal.SaturationRate
	periods := []int64{1000, 2000, 5000, 10000, 20000, 50000}
	if o.Quick {
		periods = []int64{2000, 10000, 50000}
	}
	rows, err := exp.Map(ctx, o.Workers, len(periods),
		func(ctx context.Context, i int) ([]float64, error) {
			period := periods[i]
			pol, err := dvfs.NewDMSD(cal.TargetDelayNs, dvfs.DefaultRange())
			if err != nil {
				return nil, err
			}
			pol.WarmStart(equilibriumGuess(rate, cal))
			p, err := buildParams(s, rate, pol)
			if err != nil {
				return nil, err
			}
			p.ControlPeriod = period
			p.AdaptiveWarmup = true
			res, err := sim.RunContext(ctx, p)
			if err != nil {
				return nil, err
			}
			errPct := 100 * (res.AvgDelayNs - cal.TargetDelayNs) / cal.TargetDelayNs
			return []float64{float64(period), res.AvgDelayNs, errPct, res.AvgPowerMW, res.AvgFreqHz / 1e9}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// AblationGains sweeps the PI gains around the published values at a
// fixed load, reporting settling behaviour (delay error) and the average
// frequency. Unstable gain choices show up as large residual errors.
func AblationGains(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	s, cal, err := ablationBase(ctx, o)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "abl_gains",
		Title:   "DMSD steady state vs PI gains (load = 0.5 x saturation)",
		Columns: []string{"ki", "kp", "delay_ns", "delay_err_pct", "power_mw"},
		Notes: []string{calNote(cal),
			fmt.Sprintf("paper gains: KI=%.4g KP=%.4g", dvfs.DefaultKI, dvfs.DefaultKP)},
	}
	rate := 0.5 * cal.SaturationRate
	gains := []struct{ ki, kp float64 }{
		{0.005, 0.0025},
		{0.0125, 0.00625},
		{dvfs.DefaultKI, dvfs.DefaultKP},
		{0.05, 0.025},
		{0.1, 0.05},
	}
	if o.Quick {
		gains = gains[1:4]
	}
	rows, err := exp.Map(ctx, o.Workers, len(gains),
		func(ctx context.Context, i int) ([]float64, error) {
			g := gains[i]
			pol, err := dvfs.NewDMSDGains(cal.TargetDelayNs, dvfs.DefaultRange(), g.ki, g.kp)
			if err != nil {
				return nil, err
			}
			pol.WarmStart(equilibriumGuess(rate, cal))
			p, err := buildParams(s, rate, pol)
			if err != nil {
				return nil, err
			}
			p.AdaptiveWarmup = true
			res, err := sim.RunContext(ctx, p)
			if err != nil {
				return nil, err
			}
			errPct := 100 * (res.AvgDelayNs - cal.TargetDelayNs) / cal.TargetDelayNs
			return []float64{g.ki, g.kp, res.AvgDelayNs, errPct, res.AvgPowerMW}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// AblationDiscreteLevels compares continuous actuation against discrete
// frequency tables of a few sizes for both policies (paper footnote 2:
// "the results remain valid in case of discrete values").
func AblationDiscreteLevels(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	s, cal, err := ablationBase(ctx, o)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "abl_levels",
		Title:   "Policies with discrete frequency levels (load = 0.5 x saturation)",
		Columns: []string{"levels", "rmsd_delay_ns", "rmsd_power_mw", "dmsd_delay_ns", "dmsd_power_mw"},
		Notes:   []string{calNote(cal), "levels=0 means continuous actuation"},
	}
	rate := 0.5 * cal.SaturationRate
	vm := volt.New()
	counts := []int{0, 3, 5, 9}
	if o.Quick {
		counts = []int{0, 4}
	}
	rows, err := exp.Map(ctx, o.Workers, len(counts),
		func(ctx context.Context, i int) ([]float64, error) {
			n := counts[i]
			rng := dvfs.DefaultRange()
			if n > 0 {
				levels, err := vm.Quantize(rng.FMin, rng.FMax, n)
				if err != nil {
					return nil, err
				}
				rng.Levels = &levels
			}
			fnode := s.FNode
			if fnode == 0 {
				fnode = 1e9
			}
			rmsd, err := dvfs.NewRMSD(fnode, cal.LambdaMax, rng)
			if err != nil {
				return nil, err
			}
			dmsd, err := dvfs.NewDMSD(cal.TargetDelayNs, rng)
			if err != nil {
				return nil, err
			}
			dmsd.WarmStart(equilibriumGuess(rate, cal))
			pr, err := buildParams(s, rate, rmsd)
			if err != nil {
				return nil, err
			}
			resR, err := sim.RunContext(ctx, pr)
			if err != nil {
				return nil, err
			}
			pd, err := buildParams(s, rate, dmsd)
			if err != nil {
				return nil, err
			}
			pd.AdaptiveWarmup = true
			resD, err := sim.RunContext(ctx, pd)
			if err != nil {
				return nil, err
			}
			return []float64{float64(n), resR.AvgDelayNs, resR.AvgPowerMW, resD.AvgDelayNs, resD.AvgPowerMW}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// AblationRouting repeats the three-policy comparison under XY, YX and
// O1TURN routing at half saturation, checking the conclusions do not hang
// on the routing algorithm.
func AblationRouting(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	t := Table{
		ID:      "abl_routing",
		Title:   "Three policies under different routing algorithms (load = 0.5 x saturation)",
		Columns: []string{"routing", "sat", "nodvfs_mw", "rmsd_mw", "rmsd_delay_ns", "dmsd_mw", "dmsd_delay_ns"},
		Notes:   []string{"routing encoded as 0=xy 1=yx 2=o1turn"},
	}
	routings := []noc.Routing{noc.RoutingXY, noc.RoutingYX, noc.RoutingO1TURN}
	rows, err := exp.Map(ctx, o.Workers, len(routings),
		func(ctx context.Context, i int) ([]float64, error) {
			r := routings[i]
			s := o.baseline()
			s.Noc.Routing = r
			cal, err := core.Calibrate(ctx, s)
			if err != nil {
				return nil, fmt.Errorf("routing %v: %w", r, err)
			}
			rate := 0.5 * cal.SaturationRate
			cmp, err := core.ComparePolicies(ctx, s, []float64{rate}, core.AllPolicies(), cal)
			if err != nil {
				return nil, fmt.Errorf("routing %v: %w", r, err)
			}
			n := cmp.Sweeps[core.NoDVFS].Points[0].Result
			rm := cmp.Sweeps[core.RMSD].Points[0].Result
			dm := cmp.Sweeps[core.DMSD].Points[0].Result
			return []float64{float64(r), cal.SaturationRate, n.AvgPowerMW,
				rm.AvgPowerMW, rm.AvgDelayNs, dm.AvgPowerMW, dm.AvgDelayNs}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// PowerBreakdown decomposes each policy's power at a moderate load into
// switching, clock-tree and leakage shares, showing where the V²F scaling
// bites.
func PowerBreakdown(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	s, cal, err := ablationBase(ctx, o)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "power_breakdown",
		Title:   "Power breakdown by component (load = 0.5 x saturation)",
		Columns: []string{"policy", "total_mw", "switching_mw", "clock_mw", "leakage_mw"},
		Notes:   []string{calNote(cal), "policy encoded as 0=nodvfs 1=rmsd 2=dmsd"},
	}
	rate := 0.5 * cal.SaturationRate
	kinds := core.AllPolicies()
	rows, err := exp.Map(ctx, o.Workers, len(kinds),
		func(ctx context.Context, i int) ([]float64, error) {
			res, err := core.RunOne(ctx, s, kinds[i], rate, cal)
			if err != nil {
				return nil, err
			}
			return []float64{float64(i), res.AvgPowerMW, res.SwitchingMW, res.ClockMW, res.LeakageMW}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// equilibriumGuess estimates the DMSD steady-state frequency at the given
// load: slightly above the RMSD law Fnode·λ/λmax (the frequency pinning
// the network at λmax), since the DMSD setpoint sits just inside the
// stable region. Warm-starting there removes the long cold-start descent
// from FMax without biasing the steady state the ablations measure.
func equilibriumGuess(rate float64, cal core.Calibration) float64 {
	return 1.1 * 1e9 * rate / cal.LambdaMax
}

// buildParams assembles sim parameters for an ablation run on scenario s.
func buildParams(s core.Scenario, load float64, pol dvfs.Policy) (sim.Params, error) {
	pat, err := traffic.ByName(s.Pattern, s.Noc)
	if err != nil {
		return sim.Params{}, err
	}
	inj, err := traffic.NewInjector(s.Noc, pat, load, s.Seed)
	if err != nil {
		return sim.Params{}, err
	}
	pm := power.Default28nm()
	fnode := s.FNode
	if fnode == 0 {
		fnode = 1e9
	}
	p := sim.Params{
		Noc: s.Noc, Injector: inj, Policy: pol, VF: volt.New(), Power: &pm,
		FNode: fnode,
	}
	if s.Quick {
		p.Warmup = 8000
		p.Measure = 20000
		p.MaxWarmup = 150000
	}
	return p, nil
}
