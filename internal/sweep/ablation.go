package sweep

import (
	"context"
	"fmt"

	"repro/internal/dvfs"
	"repro/nocsim"
	"repro/nocsim/manifest"
)

// This file holds the ablation studies beyond the paper's figures,
// supporting claims the paper makes in prose:
//
//   - "period" (AblationControlPeriod) — Sec. IV claims 10 000 cycles
//     "are sufficient" as a control update period: sweep the period and
//     show the tracked delay is insensitive while overhead shrinks.
//   - "gains" (AblationGains) — Sec. IV: the published gains are "a good
//     compromise between stability and reactivity": sweep KI/KP around
//     them.
//   - "levels" (AblationDiscreteLevels) — footnote 2: results remain
//     valid when the controller picks from discrete frequency levels.
//   - "routing" (AblationRouting) — Sec. I claims insensitivity to
//     micro-architectural variations: swap the routing algorithm
//     (XY / YX / O1TURN).
//   - "breakdown" (PowerBreakdown) — decompose the policies' power into
//     switching, clock and leakage, explaining *where* the V²F savings
//     come from.
//
// Like the figures, each study is planned as nocsim grids — one panel
// per swept knob value, the knob carried in the panel's base scenario —
// so an ablation is the same restartable manifest-of-jobs as a figure.

// calibrateBase measures the baseline calibration once for the studies
// whose panels all share it.
func (o *Options) calibrateBase(ctx context.Context) (nocsim.Scenario, nocsim.Calibration, error) {
	base := o.baseScenario()
	base.Workers = o.Workers
	cal, err := nocsim.Calibrate(ctx, base)
	base.Workers = 0
	return base, cal, err
}

// singlePolicyGrid returns a one-load grid for the given policies with a
// pinned calibration.
func singlePolicyGrid(base nocsim.Scenario, cal nocsim.Calibration, load float64, policies ...nocsim.PolicyKind) nocsim.Grid {
	base.Calibration = &cal
	return nocsim.Grid{Base: base, Loads: []float64{load}, Policies: policies}
}

// ablationPeriods is the swept control-period ladder (node cycles).
func ablationPeriods(quick bool) []int64 {
	if quick {
		return []int64{2000, 10000, 50000}
	}
	return []int64{1000, 2000, 5000, 10000, 20000, 50000}
}

func (o *Options) planPeriod(ctx context.Context) ([]manifest.Panel, error) {
	base, cal, err := o.calibrateBase(ctx)
	if err != nil {
		return nil, err
	}
	rate := 0.5 * cal.SaturationRate
	var panels []manifest.Panel
	for _, period := range ablationPeriods(o.Quick) {
		b := base
		b.ControlPeriod = period
		panels = append(panels, manifest.Panel{
			Label: fmt.Sprintf("p%d", period),
			Grid:  singlePolicyGrid(b, cal, rate, nocsim.DMSD),
		})
	}
	return panels, nil
}

// AblationControlPeriod sweeps the DMSD control update period and reports
// the steady-state delay error and power at a fixed moderate load. The
// paper's claim holds when the tracked delay stays near the target across
// periods spanning two orders of magnitude.
func AblationControlPeriod(ctx context.Context, o Options) ([]Table, error) {
	return Tables(ctx, "period", o)
}

func renderPeriod(m *manifest.Manifest, results []nocsim.Result) []Table {
	cal := *m.Panels[0].Grid.Base.Calibration
	t := Table{
		ID:      "abl_period",
		Title:   "DMSD steady state vs control update period (load = 0.5 x saturation)",
		Columns: []string{"period_node_cycles", "delay_ns", "delay_err_pct", "power_mw", "avg_freq_ghz"},
		Notes: []string{calNote(cal),
			"paper Sec. IV: 10 000 cycles at the highest frequency are sufficient"},
	}
	for i, panel := range m.Panels {
		res := results[i]
		errPct := 100 * (res.AvgDelayNs - cal.TargetDelayNs) / cal.TargetDelayNs
		t.AddRow(float64(panel.Grid.Base.ControlPeriod), res.AvgDelayNs, errPct, res.AvgPowerMW, res.AvgFreqHz/1e9)
	}
	return []Table{t}
}

// ablationGains is the swept PI-gain ladder around the published values.
func ablationGains(quick bool) []struct{ KI, KP float64 } {
	gains := []struct{ KI, KP float64 }{
		{0.005, 0.0025},
		{0.0125, 0.00625},
		{dvfs.DefaultKI, dvfs.DefaultKP},
		{0.05, 0.025},
		{0.1, 0.05},
	}
	if quick {
		return gains[1:4]
	}
	return gains
}

func (o *Options) planGains(ctx context.Context) ([]manifest.Panel, error) {
	base, cal, err := o.calibrateBase(ctx)
	if err != nil {
		return nil, err
	}
	rate := 0.5 * cal.SaturationRate
	var panels []manifest.Panel
	for _, g := range ablationGains(o.Quick) {
		b := base
		b.KI, b.KP = g.KI, g.KP
		panels = append(panels, manifest.Panel{
			Label: fmt.Sprintf("ki%g", g.KI),
			Grid:  singlePolicyGrid(b, cal, rate, nocsim.DMSD),
		})
	}
	return panels, nil
}

// AblationGains sweeps the PI gains around the published values at a
// fixed load, reporting settling behaviour (delay error) and the average
// frequency. Unstable gain choices show up as large residual errors.
func AblationGains(ctx context.Context, o Options) ([]Table, error) {
	return Tables(ctx, "gains", o)
}

func renderGains(m *manifest.Manifest, results []nocsim.Result) []Table {
	cal := *m.Panels[0].Grid.Base.Calibration
	t := Table{
		ID:      "abl_gains",
		Title:   "DMSD steady state vs PI gains (load = 0.5 x saturation)",
		Columns: []string{"ki", "kp", "delay_ns", "delay_err_pct", "power_mw"},
		Notes: []string{calNote(cal),
			fmt.Sprintf("paper gains: KI=%.4g KP=%.4g", dvfs.DefaultKI, dvfs.DefaultKP)},
	}
	for i, panel := range m.Panels {
		res := results[i]
		errPct := 100 * (res.AvgDelayNs - cal.TargetDelayNs) / cal.TargetDelayNs
		t.AddRow(panel.Grid.Base.KI, panel.Grid.Base.KP, res.AvgDelayNs, errPct, res.AvgPowerMW)
	}
	return []Table{t}
}

// ablationLevelCounts is the swept discrete-level ladder (0 means
// continuous actuation).
func ablationLevelCounts(quick bool) []int {
	if quick {
		return []int{0, 4}
	}
	return []int{0, 3, 5, 9}
}

func (o *Options) planLevels(ctx context.Context) ([]manifest.Panel, error) {
	base, cal, err := o.calibrateBase(ctx)
	if err != nil {
		return nil, err
	}
	rate := 0.5 * cal.SaturationRate
	var panels []manifest.Panel
	for _, n := range ablationLevelCounts(o.Quick) {
		b := base
		b.FreqLevels = n
		panels = append(panels, manifest.Panel{
			Label: fmt.Sprintf("l%d", n),
			Grid:  singlePolicyGrid(b, cal, rate, nocsim.RMSD, nocsim.DMSD),
		})
	}
	return panels, nil
}

// AblationDiscreteLevels compares continuous actuation against discrete
// frequency tables of a few sizes for both policies (paper footnote 2:
// "the results remain valid in case of discrete values").
func AblationDiscreteLevels(ctx context.Context, o Options) ([]Table, error) {
	return Tables(ctx, "levels", o)
}

func renderLevels(m *manifest.Manifest, results []nocsim.Result) []Table {
	cal := *m.Panels[0].Grid.Base.Calibration
	t := Table{
		ID:      "abl_levels",
		Title:   "Policies with discrete frequency levels (load = 0.5 x saturation)",
		Columns: []string{"levels", "rmsd_delay_ns", "rmsd_power_mw", "dmsd_delay_ns", "dmsd_power_mw"},
		Notes:   []string{calNote(cal), "levels=0 means continuous actuation"},
	}
	off := m.Offsets()
	for pi, panel := range m.Panels {
		resR, resD := results[off[pi]], results[off[pi]+1] // policies: rmsd, dmsd
		t.AddRow(float64(panel.Grid.Base.FreqLevels),
			resR.AvgDelayNs, resR.AvgPowerMW, resD.AvgDelayNs, resD.AvgPowerMW)
	}
	return []Table{t}
}

// ablationRoutings lists the compared routing algorithms; the table
// encodes them by their ladder index.
func ablationRoutings() []nocsim.Routing {
	return []nocsim.Routing{nocsim.RoutingXY, nocsim.RoutingYX, nocsim.RoutingO1Turn}
}

func (o *Options) planRouting(ctx context.Context) ([]manifest.Panel, error) {
	routings := ablationRoutings()
	labels := make([]string, len(routings))
	for i, r := range routings {
		labels[i] = string(r)
	}
	return o.planPanels(ctx, labels, func(ctx context.Context, i int) (nocsim.Grid, error) {
		base := o.baseScenario()
		base.Mesh.Routing = routings[i]
		// Each routing calibrates itself: its saturation point is part of
		// the study.
		return o.resolveComparison(ctx, base, nocsim.AllPolicies(),
			func(cal nocsim.Calibration) []float64 { return []float64{0.5 * cal.SaturationRate} })
	})
}

// AblationRouting repeats the three-policy comparison under XY, YX and
// O1TURN routing at half saturation, checking the conclusions do not hang
// on the routing algorithm.
func AblationRouting(ctx context.Context, o Options) ([]Table, error) {
	return Tables(ctx, "routing", o)
}

func renderRouting(m *manifest.Manifest, results []nocsim.Result) []Table {
	t := Table{
		ID:      "abl_routing",
		Title:   "Three policies under different routing algorithms (load = 0.5 x saturation)",
		Columns: []string{"routing", "sat", "nodvfs_mw", "rmsd_mw", "rmsd_delay_ns", "dmsd_mw", "dmsd_delay_ns"},
		Notes:   []string{"routing encoded as 0=xy 1=yx 2=o1turn"},
	}
	off := m.Offsets()
	for pi, panel := range m.Panels {
		cal := *panel.Grid.Base.Calibration
		rs := results[off[pi]:off[pi+1]] // policies: nodvfs, rmsd, dmsd
		n, rm, dm := rs[0], rs[1], rs[2]
		t.AddRow(float64(pi), cal.SaturationRate, n.AvgPowerMW,
			rm.AvgPowerMW, rm.AvgDelayNs, dm.AvgPowerMW, dm.AvgDelayNs)
	}
	return []Table{t}
}

func (o *Options) planBreakdown(ctx context.Context) ([]manifest.Panel, error) {
	base, cal, err := o.calibrateBase(ctx)
	if err != nil {
		return nil, err
	}
	rate := 0.5 * cal.SaturationRate
	return []manifest.Panel{{
		Label: "breakdown",
		Grid:  singlePolicyGrid(base, cal, rate, nocsim.AllPolicies()...),
	}}, nil
}

// PowerBreakdown decomposes each policy's power at a moderate load into
// switching, clock-tree and leakage shares, showing where the V²F scaling
// bites.
func PowerBreakdown(ctx context.Context, o Options) ([]Table, error) {
	return Tables(ctx, "breakdown", o)
}

func renderBreakdown(m *manifest.Manifest, results []nocsim.Result) []Table {
	cal := *m.Panels[0].Grid.Base.Calibration
	t := Table{
		ID:      "power_breakdown",
		Title:   "Power breakdown by component (load = 0.5 x saturation)",
		Columns: []string{"policy", "total_mw", "switching_mw", "clock_mw", "leakage_mw"},
		Notes:   []string{calNote(cal), "policy encoded as 0=nodvfs 1=rmsd 2=dmsd"},
	}
	for i, res := range results {
		t.AddRow(float64(i), res.AvgPowerMW, res.SwitchingMW, res.ClockMW, res.LeakageMW)
	}
	return []Table{t}
}
