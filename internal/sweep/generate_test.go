package sweep

import (
	"context"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/nocsim"
	"repro/nocsim/manifest"
)

// TestGenerateStoreMatchesInMemory pins the migration contract of the
// manifest machinery: a persisted, store-backed figure run renders
// byte-identical tables to the plain in-memory path (Tables), which is
// itself the migrated form of the pre-refactor per-figure generators.
func TestGenerateStoreMatchesInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	o := Options{Quick: true, Points: 2, Workers: 2}
	direct, err := AblationControlPeriod(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	st, err := manifest.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stored, complete, err := Generate(ctx, "period", o, st, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("unlimited Generate reported incomplete")
	}
	if !reflect.DeepEqual(stored, direct) {
		t.Errorf("store-backed tables differ from in-memory tables:\n got %+v\nwant %+v", stored, direct)
	}
	if m, err := st.LoadManifest("period"); err != nil || m == nil {
		t.Errorf("manifest not persisted: (%v, %v)", m, err)
	}
	have, err := st.LoadPoints("period")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := st.LoadManifest("period")
	if len(have) != m.NumPoints() {
		t.Errorf("points file holds %d results for %d points", len(have), m.NumPoints())
	}
}

// TestBundleMatchesNocsimSweep is the cross-layer golden check behind
// the Fig. 7/8/10 migration: the manifest executor (RunManifest) must
// produce exactly the results of running the same resolved grid through
// the public nocsim.Sweep — the sweep layer no longer has measurement
// semantics of its own. (The absolute DMSD numbers re-rolled once in
// this migration when the sequential warm-start chain became a per-point
// equilibrium warm start; this equivalence is the invariant that now
// pins them.)
func TestBundleMatchesNocsimSweep(t *testing.T) {
	b := getBundle(t)
	direct, err := nocsim.Sweep(context.Background(), b.Grid())
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(b.Results) {
		t.Fatalf("nocsim.Sweep returned %d results, manifest run %d", len(direct), len(b.Results))
	}
	for i := range direct {
		if direct[i].Metrics != b.Results[i].Metrics {
			t.Errorf("point %d metrics diverge:\n manifest %+v\n sweep    %+v", i, b.Results[i].Metrics, direct[i].Metrics)
		}
	}
}

// TestResumeFillsOnlyGaps deletes half of a completed manifest's points
// and verifies the resumed run re-executes exactly the missing ones and
// reassembles byte-identical tables.
func TestResumeFillsOnlyGaps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	o := Options{Quick: true, Points: 2, Workers: 2}
	st, err := manifest.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	full, complete, err := Generate(ctx, "baseline", o, st, false, 0)
	if err != nil || !complete {
		t.Fatalf("reference run: complete=%v err=%v", complete, err)
	}

	// Surgically drop every other recorded point.
	path := st.PointsPath("baseline")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("need >= 2 recorded points to make gaps, have %d", len(lines))
	}
	var kept []string
	for i, l := range lines {
		if i%2 == 0 {
			kept = append(kept, l)
		}
	}
	if err := os.WriteFile(path, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The resumed run must execute only the gaps: afterwards the points
	// file holds the kept lines plus exactly one appended line per gap.
	resumed, complete, err := Generate(ctx, "baseline", o, st, true, 0)
	if err != nil || !complete {
		t.Fatalf("resumed run: complete=%v err=%v", complete, err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Errorf("resumed tables differ from uninterrupted run:\n got %+v\nwant %+v", resumed, full)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	after := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if want := len(lines); len(after) != want {
		t.Errorf("points file has %d lines after resume, want %d (kept %d + gaps %d)",
			len(after), want, len(kept), len(lines)-len(kept))
	}
	for i, l := range kept {
		if after[i] != l {
			t.Errorf("resume rewrote kept line %d", i)
		}
	}

	// Resume under different planning options must refuse rather than mix
	// incompatible points.
	bad := o
	bad.Seed = 99
	if _, _, err := Generate(ctx, "baseline", bad, st, true, 0); err == nil {
		t.Error("resume with mismatched options succeeded, want error")
	}
}

// TestGenerateLimitAndResume drives the interrupted-run workflow the CI
// smoke test uses: stop after a few points (-max-points), observe the
// incomplete verdict, then resume to completion.
func TestGenerateLimitAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	o := Options{Quick: true, Points: 2, Workers: 2}
	st, err := manifest.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tables, complete, err := Generate(ctx, "period", o, st, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if complete || tables != nil {
		t.Fatalf("limited run: complete=%v tables=%v, want incomplete and none", complete, tables)
	}
	have, err := st.LoadPoints("period")
	if err != nil {
		t.Fatal(err)
	}
	if len(have) != 1 {
		t.Fatalf("limited run recorded %d points, want 1", len(have))
	}
	resumed, complete, err := Generate(ctx, "period", o, st, true, 0)
	if err != nil || !complete {
		t.Fatalf("resume: complete=%v err=%v", complete, err)
	}
	direct, err := AblationControlPeriod(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, direct) {
		t.Errorf("interrupt+resume tables differ from uninterrupted run")
	}
}

// TestNestedFig8PanelsRespectLeafBudget is the acceptance check for the
// depth-aware scheduler on the real workload shape: Fig. 8 sensitivity
// panels planned concurrently, each panel fanning out its own saturation
// probes and calibration below — stacked worker pools that used to admit
// W² in-flight sims. The instrumented high-water mark proves the number
// of concurrently executing simulations never exceeds the leaf budget W.
// (A 3-variant subset of the 12 keeps the test affordable; the panels go
// through the exact planPanels/resolveComparison path planFig8 uses.)
func TestNestedFig8PanelsRespectLeafBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const W = 2
	exp.SetLeafBudget(W)
	defer exp.SetLeafBudget(0)
	exp.ResetLeafPeak()

	o := Options{Quick: true, Points: 2, Workers: 4}
	o.setDefaults()
	labels, mutate := fig8Variants()
	pick := []int{0, 4, 9} // vc2, buf8, mesh4x4: distinct fabric shapes
	subLabels := make([]string, len(pick))
	for i, p := range pick {
		subLabels[i] = labels[p]
	}
	panels, err := o.planPanels(context.Background(), subLabels,
		func(ctx context.Context, i int) (nocsim.Grid, error) {
			base := o.baseScenario()
			mutate[pick[i]](&base.Mesh)
			return o.resolveComparison(ctx, base, nocsim.AllPolicies(), o.nearSaturationLoads)
		})
	if err != nil {
		t.Fatal(err)
	}
	m := &manifest.Manifest{Name: "fig8sub", Quick: true, Points: o.Points, Seed: o.Seed, Panels: panels}
	if _, _, err := manifest.Run(context.Background(), m, o.Workers, nil, nil, 0); err != nil {
		t.Fatal(err)
	}

	inFlight, peak := exp.LeafStats()
	if inFlight != 0 {
		t.Errorf("%d leaf sims still in flight after the run", inFlight)
	}
	if peak > W {
		t.Errorf("leaf peak %d exceeded budget %d: nesting multiplied in-flight sims", peak, W)
	}
	if peak < W {
		t.Errorf("leaf peak %d never reached budget %d: instrumentation saw no overlap", peak, W)
	}
}
