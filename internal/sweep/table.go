// Package sweep regenerates every table and figure of the paper's
// evaluation as numeric tables: the RMSD anomaly plots (Fig. 2), the
// three-policy frequency/delay comparison (Fig. 4), the 28-nm
// voltage-frequency curve (Fig. 5), the power comparison (Fig. 6), the
// synthetic-traffic study (Fig. 7), the sensitivity analysis (Fig. 8), the
// multimedia workloads (Fig. 10), plus the PI-transient and summary
// analyses backing the paper's prose claims.
package sweep

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is one reproduced figure panel (or table) as columns of numbers.
type Table struct {
	// ID identifies the panel, e.g. "fig2a".
	ID string
	// Title is the human-readable caption.
	Title string
	// Columns names each column.
	Columns []string
	// Rows holds the data, one row per x-axis sample.
	Rows [][]float64
	// Notes carries provenance remarks (calibration values, annotations
	// to compare against the paper).
	Notes []string
}

// AddRow appends one data row; it panics on column-count mismatch, which
// is a programming error in a figure generator.
func (t *Table) AddRow(vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("sweep: row with %d values for %d columns in %s", len(vals), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, vals)
}

// Column returns the values of the named column.
func (t *Table) Column(name string) ([]float64, bool) {
	for i, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for r, row := range t.Rows {
				out[r] = row[i]
			}
			return out, true
		}
	}
	return nil, false
}

// Format writes the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = formatCell(v)
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], c)
	}
	b.WriteByte('\n')
	for r := range cells {
		for i, cell := range cells[r] {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = formatCell(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// formatCell renders a value compactly: integers without decimals, small
// magnitudes with enough precision, NaN as empty.
func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return ""
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
