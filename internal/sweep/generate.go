package sweep

import (
	"context"
	"fmt"

	"repro/nocsim"
	"repro/nocsim/manifest"
)

// PlanOrResume returns the figure's manifest and its already-completed
// points. With resume and a store holding a manifest planned under the
// same options, the stored plan is reused (skipping calibration) and its
// journaled points are loaded; a stored plan built under different
// options is refused rather than mixed with incompatible points. Without
// resume (or without a stored plan) the figure is planned fresh and —
// when st is non-nil — persisted, invalidating any stale points.
//
// Both the local executor (Generate) and the queue coordinator's serve
// path (cmd/nocsimd) start here, so a crashed coordinator resumes from
// exactly the journal an interrupted local run would.
func PlanOrResume(ctx context.Context, fig string, o Options, st *manifest.DirStore, resume bool) (*manifest.Manifest, map[int]nocsim.Result, error) {
	o.setDefaults()
	var m *manifest.Manifest
	var err error
	have := map[int]nocsim.Result{}
	if st != nil && resume {
		if m, err = st.LoadManifest(fig); err != nil {
			return nil, nil, err
		}
		if m != nil {
			if m.Quick != o.Quick || m.Points != o.Points || m.Seed != o.Seed {
				return nil, nil, fmt.Errorf("sweep: stored %s manifest was planned with quick=%v points=%d seed=%d; re-run with those options or without -resume",
					fig, m.Quick, m.Points, m.Seed)
			}
			if have, err = st.LoadPoints(fig); err != nil {
				return nil, nil, err
			}
		}
	}
	if m == nil {
		if m, err = Plan(ctx, fig, o); err != nil {
			return nil, nil, err
		}
		if st != nil {
			if err := st.SaveManifest(m); err != nil {
				return nil, nil, err
			}
		}
	}
	return m, have, nil
}

// Generate produces the tables of one manifest-backed figure end to end:
// plan (or, with resume, reload) the manifest, run its missing points,
// and render. With a non-nil store the manifest and every completed
// point are persisted as the run proceeds — each journal line is flushed
// and synced before the point counts as saved. When limit > 0 at most
// that many new points are run; the figure is then left incomplete on
// disk (complete=false, no tables) for a later resumed run to finish.
func Generate(ctx context.Context, fig string, o Options, st *manifest.DirStore, resume bool, limit int) (tables []Table, complete bool, err error) {
	o.setDefaults()
	m, have, err := PlanOrResume(ctx, fig, o, st, resume)
	if err != nil {
		return nil, false, err
	}
	var save func(int, nocsim.Result) error
	if st != nil {
		j, err := st.Journal(fig)
		if err != nil {
			return nil, false, err
		}
		defer j.Close()
		save = j.Append
	}
	results, complete, err := manifest.Run(ctx, m, o.Workers, have, save, limit)
	if err != nil || !complete {
		return nil, false, err
	}
	tables, err = Render(m, results)
	if err != nil {
		return nil, false, err
	}
	return tables, true, nil
}
