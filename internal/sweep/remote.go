package sweep

import (
	"context"
	"fmt"
	"time"

	"repro/internal/queue"
	"repro/nocsim"
)

// remoteWait bounds how long GenerateRemote waits for the coordinator
// to serve a figure's manifest. Generous — full-window planning runs a
// calibration per panel — but finite, so a wrong URL or a figure the
// coordinator was never asked to serve errors out instead of hanging.
const remoteWait = 15 * time.Minute

// GenerateRemote produces one figure's tables through a queue
// coordinator instead of running the manifest in-process: it fetches the
// figure's manifest (waiting for a coordinator that is still starting or
// planning), verifies the plan matches the requested options, joins the
// computation as one more worker until every point is posted, and then
// reassembles the coordinator's journaled results into the same tables a
// local run renders.
//
// Because every point is a self-contained deterministic job, the tables
// are byte-identical to Generate on the same options no matter how the
// points were spread across workers — including points whose first lease
// died and was re-issued.
func GenerateRemote(ctx context.Context, fig string, o Options, c *queue.Client) ([]Table, error) {
	o.setDefaults()
	m, err := c.WaitManifest(ctx, fig, remoteWait)
	if err != nil {
		return nil, err
	}
	if m.Quick != o.Quick || m.Points != o.Points || m.Seed != o.Seed {
		return nil, fmt.Errorf("sweep: coordinator's %s manifest was planned with quick=%v points=%d seed=%d; re-run with those options",
			fig, m.Quick, m.Points, m.Seed)
	}
	// Contribute as a worker scoped to this figure. Run returns only when
	// the figure is complete — if other workers hold the last leases we
	// poll until they post or their leases expire and we compute the
	// points ourselves, so completion never hinges on anyone else staying
	// alive.
	w := &queue.Worker{Client: c, Workers: o.Workers, Name: fig}
	if err := w.Run(ctx); err != nil {
		return nil, err
	}
	have, err := c.Points(ctx, fig)
	if err != nil {
		return nil, err
	}
	n := m.NumPoints()
	results := make([]nocsim.Result, n)
	for i := 0; i < n; i++ {
		r, ok := have[i]
		if !ok {
			return nil, fmt.Errorf("sweep: coordinator reported %s done but point %d is missing", fig, i)
		}
		results[i] = r
	}
	return Render(m, results)
}
