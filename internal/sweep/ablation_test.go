package sweep

import (
	"context"
	"math"
	"testing"
)

func ablOpts() Options { return Options{Quick: true, Points: 2, Seed: 1} }

func TestAblationControlPeriod(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := AblationControlPeriod(context.Background(), ablOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "abl_period")
	// Across the swept periods the steady-state delay must stay within a
	// reasonable band of the target (the Sec. IV sufficiency claim).
	for _, row := range tables[0].Rows {
		if errPct := row[2]; math.Abs(errPct) > 50 {
			t.Errorf("period %.0f: delay error %.1f%%, want |err| <= 50%%", row[0], errPct)
		}
	}
}

func TestAblationGains(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := AblationGains(context.Background(), ablOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "abl_gains")
	// The paper's gains must track the target reasonably.
	found := false
	for _, row := range tables[0].Rows {
		if math.Abs(row[0]-0.025) < 1e-9 {
			found = true
			if math.Abs(row[3]) > 40 {
				t.Errorf("paper gains delay error %.1f%%", row[3])
			}
		}
	}
	if !found {
		t.Error("paper gains missing from ablation")
	}
}

func TestAblationDiscreteLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := AblationDiscreteLevels(context.Background(), ablOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "abl_levels")
	rows := tables[0].Rows
	if rows[0][0] != 0 {
		t.Fatal("first row should be continuous actuation")
	}
	// Discrete actuation snaps frequencies *up*, so power may rise
	// slightly and delay may fall slightly — but both must stay in the
	// same ballpark as continuous actuation (footnote 2).
	contR, contD := rows[0][2], rows[0][4]
	for _, row := range rows[1:] {
		if row[2] < contR*0.7 || row[2] > contR*1.6 {
			t.Errorf("levels=%v: RMSD power %.1f far from continuous %.1f", row[0], row[2], contR)
		}
		if row[4] < contD*0.7 || row[4] > contD*1.6 {
			t.Errorf("levels=%v: DMSD power %.1f far from continuous %.1f", row[0], row[4], contD)
		}
	}
}

func TestAblationRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := AblationRouting(context.Background(), ablOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "abl_routing")
	if len(tables[0].Rows) != 3 {
		t.Fatalf("want 3 routing rows, got %d", len(tables[0].Rows))
	}
	// The conclusion must survive every routing algorithm: RMSD power
	// below No-DVFS, DMSD delay below RMSD delay.
	for _, row := range tables[0].Rows {
		routing, pn, pr, dr, pd, dd := row[0], row[2], row[3], row[4], row[5], row[6]
		if pr >= pn {
			t.Errorf("routing %v: RMSD power %.1f not below No-DVFS %.1f", routing, pr, pn)
		}
		if pd < pr*0.95 {
			t.Errorf("routing %v: DMSD power %.1f well below RMSD %.1f", routing, pd, pr)
		}
		if dd >= dr {
			t.Errorf("routing %v: DMSD delay %.1f not below RMSD %.1f", routing, dd, dr)
		}
	}
}

func TestPowerBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := PowerBreakdown(context.Background(), ablOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "power_breakdown")
	for _, row := range tables[0].Rows {
		total, sw, ck, lk := row[1], row[2], row[3], row[4]
		if math.Abs(total-(sw+ck+lk)) > total*0.02 {
			t.Errorf("policy %v: breakdown %g+%g+%g != total %g", row[0], sw, ck, lk, total)
		}
		if sw <= 0 || ck <= 0 || lk <= 0 {
			t.Errorf("policy %v: non-positive component in breakdown", row[0])
		}
	}
	// DVFS cuts the clock component hardest (V²F): the RMSD clock power
	// must be well below the No-DVFS clock power.
	rows := tables[0].Rows
	if rows[1][3] > rows[0][3]*0.6 {
		t.Errorf("RMSD clock power %.2f not well below No-DVFS %.2f", rows[1][3], rows[0][3])
	}
}
