package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/exp"
	"repro/nocsim"
)

// A Manifest is the serialized job form of one figure: every panel's
// resolved nocsim.Grid, flattened into one ordered list of
// self-contained points. Because each grid is resolved (calibration
// pinned) before the manifest is written, any point can be re-run on any
// machine — or after a crash — and reproduce its number bit for bit,
// which is what makes figure runs restartable and, eventually,
// distributable.
type Manifest struct {
	// Fig is the figure identifier ("fig7", "pi", "period", ...).
	Fig string `json:"fig"`
	// Quick, Points and Seed record the Options the figure was planned
	// with; rendering reads them, and a resumed run must reuse them.
	Quick  bool  `json:"quick,omitempty"`
	Points int   `json:"points"`
	Seed   int64 `json:"seed"`
	// Panels are the figure's sub-studies in presentation order.
	Panels []Panel `json:"panels"`
}

// Panel is one sub-study of a figure: a label ("tornado", "vc2", ...)
// and the resolved grid that measures it.
type Panel struct {
	Label string      `json:"label"`
	Grid  nocsim.Grid `json:"grid"`
}

// NumPoints returns the total number of simulation points across the
// manifest's panels.
func (m *Manifest) NumPoints() int {
	n := 0
	for _, p := range m.Panels {
		n += p.Grid.Len()
	}
	return n
}

// offsets returns the starting global point index of each panel, plus a
// final entry holding NumPoints.
func (m *Manifest) offsets() []int {
	off := make([]int, len(m.Panels)+1)
	for i, p := range m.Panels {
		off[i+1] = off[i] + p.Grid.Len()
	}
	return off
}

// Point resolves global point index i to its panel and self-contained
// scenario.
func (m *Manifest) Point(i int) (panel int, sc nocsim.Scenario, err error) {
	off := m.offsets()
	if i < 0 || i >= off[len(off)-1] {
		return 0, nocsim.Scenario{}, fmt.Errorf("sweep: manifest point %d out of range [0, %d)", i, off[len(off)-1])
	}
	panel = sort.SearchInts(off[1:], i+1)
	sc, err = m.Panels[panel].Grid.Point(i - off[panel])
	return panel, sc, err
}

// RunManifest executes the manifest's points that are not already in
// have (keyed by global point index), fanning them across the exp
// engine under the given worker bound. Each completed point is handed to
// save (when non-nil) before the call returns, so an interrupted run
// loses at most the in-flight points. When limit > 0, at most limit
// missing points (lowest indices first) are scheduled — the hook behind
// cmd/figures -max-points and the CI resume smoke test.
//
// It returns the full results in point order and whether the manifest is
// now complete; when incomplete (limit cut the run short), the result
// slice holds zero values at the missing indices and must not be
// rendered.
func RunManifest(ctx context.Context, m *Manifest, workers int, have map[int]nocsim.Result, save func(int, nocsim.Result) error, limit int) ([]nocsim.Result, bool, error) {
	n := m.NumPoints()
	var missing []int
	for i := 0; i < n; i++ {
		if _, ok := have[i]; !ok {
			missing = append(missing, i)
		}
	}
	scheduled := missing
	if limit > 0 && limit < len(missing) {
		scheduled = missing[:limit]
	}
	var saveMu sync.Mutex
	ran, err := exp.Map(ctx, workers, len(scheduled),
		func(ctx context.Context, j int) (nocsim.Result, error) {
			gi := scheduled[j]
			_, sc, err := m.Point(gi)
			if err != nil {
				return nocsim.Result{}, err
			}
			r, err := nocsim.Run(ctx, sc)
			if err != nil {
				return nocsim.Result{}, fmt.Errorf("%s point %d: %w", m.Fig, gi, err)
			}
			r.Meta.PointIndex = gi
			if save != nil {
				saveMu.Lock()
				err = save(gi, r)
				saveMu.Unlock()
				if err != nil {
					return nocsim.Result{}, fmt.Errorf("%s point %d: saving: %w", m.Fig, gi, err)
				}
			}
			return r, nil
		})
	if err != nil {
		return nil, false, err
	}
	results := make([]nocsim.Result, n)
	for i, r := range have {
		if i >= 0 && i < n {
			results[i] = r
		}
	}
	for j, r := range ran {
		results[scheduled[j]] = r
	}
	return results, len(scheduled) == len(missing), nil
}

// DirStore persists manifests and their completed points under one
// directory: <fig>.manifest.json holds the resolved grids, and
// <fig>.points.jsonl accumulates one completed result per line, appended
// as points finish so an interrupted run keeps everything it paid for.
type DirStore struct {
	Dir string
}

// NewDirStore creates (if needed) and opens a manifest directory.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{Dir: dir}, nil
}

func (st *DirStore) manifestPath(fig string) string {
	return filepath.Join(st.Dir, fig+".manifest.json")
}

func (st *DirStore) pointsPath(fig string) string {
	return filepath.Join(st.Dir, fig+".points.jsonl")
}

// LoadManifest reads a figure's stored manifest; it returns (nil, nil)
// when none exists.
func (st *DirStore) LoadManifest(fig string) (*Manifest, error) {
	data, err := os.ReadFile(st.manifestPath(fig))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sweep: manifest %s: %w", st.manifestPath(fig), err)
	}
	return &m, nil
}

// SaveManifest writes a figure's manifest (atomically, via a rename) and
// truncates any stale points file: a fresh manifest invalidates results
// recorded against an older plan.
func (st *DirStore) SaveManifest(m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := st.manifestPath(m.Fig) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, st.manifestPath(m.Fig)); err != nil {
		return err
	}
	if err := os.Remove(st.pointsPath(m.Fig)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// pointRecord is one line of a points file.
type pointRecord struct {
	Index  int           `json:"index"`
	Result nocsim.Result `json:"result"`
}

// LoadPoints reads a figure's completed points. A trailing line that
// does not parse (a crash mid-append) is dropped; a malformed line
// elsewhere is an error.
func (st *DirStore) LoadPoints(fig string) (map[int]nocsim.Result, error) {
	f, err := os.Open(st.pointsPath(fig))
	if errors.Is(err, os.ErrNotExist) {
		return map[int]nocsim.Result{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	have := make(map[int]nocsim.Result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	var parseErr error
	for sc.Scan() {
		if parseErr != nil {
			return nil, fmt.Errorf("sweep: points %s: %w", st.pointsPath(fig), parseErr)
		}
		var rec pointRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			parseErr = err // fatal only if more lines follow
			continue
		}
		have[rec.Index] = rec.Result
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return have, nil
}

// AppendPoint records one completed point. Open-append-close per point
// costs microseconds against simulations that cost seconds, and leaves
// no long-lived descriptor to lose on a crash. A dangling partial line
// left by a crash mid-append is truncated away first — appending after
// it would merge two records into one malformed mid-file line that
// poisons every later LoadPoints.
func (st *DirStore) AppendPoint(fig string, i int, r nocsim.Result) error {
	if err := truncatePartialTail(st.pointsPath(fig)); err != nil {
		return err
	}
	f, err := os.OpenFile(st.pointsPath(fig), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	data, err := json.Marshal(pointRecord{Index: i, Result: r})
	if err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// truncatePartialTail cuts a points file back to its last complete
// (newline-terminated) line. A missing file is fine; so is a healthy
// one — the common case costs one stat and one 1-byte read.
func truncatePartialTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, size-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return err
	}
	keep := int64(bytes.LastIndexByte(data, '\n') + 1)
	return f.Truncate(keep)
}

// Generate produces the tables of one manifest-backed figure end to end:
// plan (or, with resume, reload) the manifest, run its missing points,
// and render. With a non-nil store the manifest and every completed
// point are persisted as the run proceeds; with resume, a stored
// manifest is reused (skipping calibration) and stored points are not
// re-run. When limit > 0 at most that many new points are run; the
// figure is then left incomplete on disk (complete=false, no tables) for
// a later resumed run to finish.
func Generate(ctx context.Context, fig string, o Options, st *DirStore, resume bool, limit int) (tables []Table, complete bool, err error) {
	o.setDefaults()
	var m *Manifest
	have := map[int]nocsim.Result{}
	if st != nil && resume {
		if m, err = st.LoadManifest(fig); err != nil {
			return nil, false, err
		}
		if m != nil {
			if m.Quick != o.Quick || m.Points != o.Points || m.Seed != o.Seed {
				return nil, false, fmt.Errorf("sweep: stored %s manifest was planned with quick=%v points=%d seed=%d; re-run with those options or without -resume",
					fig, m.Quick, m.Points, m.Seed)
			}
			if have, err = st.LoadPoints(fig); err != nil {
				return nil, false, err
			}
		}
	}
	if m == nil {
		if m, err = Plan(ctx, fig, o); err != nil {
			return nil, false, err
		}
		if st != nil {
			if err := st.SaveManifest(m); err != nil {
				return nil, false, err
			}
		}
	}
	var save func(int, nocsim.Result) error
	if st != nil {
		save = func(i int, r nocsim.Result) error { return st.AppendPoint(fig, i, r) }
	}
	results, complete, err := RunManifest(ctx, m, o.Workers, have, save, limit)
	if err != nil || !complete {
		return nil, false, err
	}
	tables, err = Render(m, results)
	if err != nil {
		return nil, false, err
	}
	return tables, true, nil
}
