package sweep

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/queue"
	"repro/nocsim/manifest"
)

// formatAll renders tables to one byte stream for equality checks.
func formatAll(t *testing.T, tables []Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range tables {
		if err := tables[i].Format(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestGenerateAdaptiveLocal runs the whole two-phase flow against a real
// (quick) simulation: coarse pass, refinement, merged render — then the
// same run again with -resume, which must replay entirely from the
// journals and render byte-identical tables.
func TestGenerateAdaptiveLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	st, err := manifest.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Quick: true, Points: 3, Seed: 1}
	ctx := context.Background()

	tables, stats, err := GenerateAdaptive(ctx, "baseline", o, st, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables rendered")
	}
	if stats.CoarsePoints != 9 { // 3 loads x 3 policies
		t.Fatalf("coarse points = %d, want 9", stats.CoarsePoints)
	}
	if stats.RefinedPoints > 6 {
		t.Fatalf("refinement spent %d points, budget was 6", stats.RefinedPoints)
	}
	if stats.ChildName != "" {
		if m, err := st.LoadManifest(stats.ChildName); err != nil || m == nil {
			t.Fatalf("child manifest %q not persisted: (%v, %v)", stats.ChildName, m, err)
		}
	}

	again, stats2, err := GenerateAdaptive(ctx, "baseline", o, st, true, 6)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ChildName != stats.ChildName || stats2.Total() != stats.Total() {
		t.Fatalf("resumed stats %+v differ from first run %+v", stats2, stats)
	}
	if !bytes.Equal(formatAll(t, tables), formatAll(t, again)) {
		t.Fatal("resumed adaptive run rendered different tables")
	}
}

// TestAdaptiveRemoteFollowOn proves the remote flow matches the local
// one byte for byte: the client registers the refinement expectation,
// drains the coarse pass, posts the follow-on manifest to the live
// coordinator, drains it, and renders exactly what GenerateAdaptive
// renders in-process.
func TestAdaptiveRemoteFollowOn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	o := Options{Quick: true, Points: 2, Seed: 1}
	ctx := context.Background()

	local, localStats, err := GenerateAdaptive(ctx, "baseline", o, nil, false, 6)
	if err != nil {
		t.Fatal(err)
	}

	coord := queue.New(queue.Config{})
	m, _, err := PlanOrResume(ctx, "baseline", o, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Add(m, nil); err != nil {
		t.Fatal(err)
	}
	coord.Seal()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	remote, remoteStats, err := GenerateRemoteAdaptive(ctx, "baseline", o, &queue.Client{Base: srv.URL}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if remoteStats.ChildName != localStats.ChildName || remoteStats.Total() != localStats.Total() {
		t.Fatalf("remote stats %+v differ from local %+v", remoteStats, localStats)
	}
	if !bytes.Equal(formatAll(t, local), formatAll(t, remote)) {
		t.Fatal("remote adaptive tables differ from local")
	}
	// No expectation may be left behind: a fleet running -exit-when-done
	// must see the run as complete.
	if !coord.Complete() {
		t.Fatal("coordinator not complete after the adaptive run")
	}
}
