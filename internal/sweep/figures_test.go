package sweep

import (
	"context"
	"testing"
)

// bundle is computed once and shared by the figure tests (Figs. 2/4/6 are
// views of the same sweep, as in the paper).
var sharedBundle *Bundle

func getBundle(t *testing.T) *Bundle {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	if sharedBundle == nil {
		b, err := BaselineBundle(context.Background(), Options{Quick: true, Points: 3})
		if err != nil {
			t.Fatal(err)
		}
		sharedBundle = b
	}
	return sharedBundle
}

func checkTables(t *testing.T, tables []Table, wantIDs ...string) {
	t.Helper()
	ids := map[string]bool{}
	for _, tab := range tables {
		ids[tab.ID] = true
		if len(tab.Rows) == 0 {
			t.Errorf("table %s has no rows", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("table %s has ragged rows", tab.ID)
			}
		}
	}
	for _, id := range wantIDs {
		if !ids[id] {
			t.Errorf("missing table %s (have %v)", id, ids)
		}
	}
}

func TestFig2Tables(t *testing.T) {
	b := getBundle(t)
	tables := Fig2(b)
	checkTables(t, tables, "fig2a", "fig2b")
	// RMSD delay must be at or above the No-DVFS delay at every rate.
	del := tables[1]
	for _, row := range del.Rows {
		if row[2] < row[1]*0.9 {
			t.Errorf("RMSD delay %.1f below No-DVFS %.1f at rate %.2f", row[2], row[1], row[0])
		}
	}
}

func TestFig4Tables(t *testing.T) {
	b := getBundle(t)
	tables := Fig4(b)
	checkTables(t, tables, "fig4a", "fig4b")
	// RMSD frequency ≤ DMSD frequency at every rate (paper Fig. 4a).
	freq := tables[0]
	for _, row := range freq.Rows {
		if row[2] > row[3]+0.02 {
			t.Errorf("RMSD freq %.3f above DMSD %.3f at rate %.2f", row[2], row[3], row[0])
		}
	}
}

func TestFig5Table(t *testing.T) {
	tables := Fig5(Options{Quick: true})
	checkTables(t, tables, "fig5")
	rows := tables[0].Rows
	if rows[0][0] != 0.56 || rows[len(rows)-1][0] != 0.9 {
		t.Errorf("Fig5 voltage endpoints %g..%g", rows[0][0], rows[len(rows)-1][0])
	}
	// Monotone frequency.
	for i := 1; i < len(rows); i++ {
		if rows[i][1] <= rows[i-1][1] {
			t.Error("Fig5 frequency not increasing")
		}
	}
}

func TestFig6Table(t *testing.T) {
	b := getBundle(t)
	tables := Fig6(b)
	checkTables(t, tables, "fig6")
	// Power ordering at every rate: RMSD ≤ DMSD ≤ No-DVFS (tolerances for
	// sampling noise).
	for _, row := range tables[0].Rows {
		rate, pn, pr, pd := row[0], row[1], row[2], row[3]
		if pr > pd*1.05 || pd > pn*1.05 {
			t.Errorf("power ordering violated at rate %.2f: %g/%g/%g", rate, pn, pr, pd)
		}
	}
}

func TestSummaryTable(t *testing.T) {
	b := getBundle(t)
	tables := Summary(b)
	checkTables(t, tables, "summary")
	for _, row := range tables[0].Rows {
		rmsdSave, dmsdSave := row[1], row[2]
		if rmsdSave < dmsdSave-2 {
			t.Errorf("RMSD saving %.1f%% below DMSD %.1f%% at rate %.2f", rmsdSave, dmsdSave, row[0])
		}
	}
}

func TestComparisonTablesHelper(t *testing.T) {
	b := getBundle(t)
	tabs := comparisonTables("figX", "lbl", b.Grid(), b.Results)
	checkTables(t, tabs, "figX_lbl_delay", "figX_lbl_power")
}

func TestPIStepTransient(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := PIStep(context.Background(), Options{Quick: true, Points: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, "pi_step")
	rows := tables[0].Rows
	if len(rows) < 5 {
		t.Fatalf("transient too short: %d samples", len(rows))
	}
	// The trace starts at FMax (cold start) and must descend: the final
	// frequency is below the first.
	first, last := rows[0][1], rows[len(rows)-1][1]
	if first < 0.95 {
		t.Errorf("transient does not start near FMax: %.3f GHz", first)
	}
	if last >= first {
		t.Errorf("PI loop did not slow the clock: %.3f -> %.3f GHz", first, last)
	}
	// Time must advance strictly.
	for i := 1; i < len(rows); i++ {
		if rows[i][0] <= rows[i-1][0] {
			t.Fatal("trace time not increasing")
		}
	}
}

func TestNearestIdx(t *testing.T) {
	loads := []float64{0.1, 0.2, 0.3}
	if got := nearestIdx(loads, 0.19); got != 1 {
		t.Errorf("nearestIdx = %d, want 1", got)
	}
	if got := nearestIdx(nil, 0.2); got != -1 {
		t.Errorf("nearestIdx(nil) = %d, want -1", got)
	}
}

func TestRatio(t *testing.T) {
	if got := ratio(6, 3); got != 2 {
		t.Errorf("ratio = %g", got)
	}
	if got := ratio(1, 0); got == got { // NaN check
		t.Error("ratio by zero should be NaN")
	}
}
