package sweep

import (
	"math"
	"strings"
	"testing"
)

func TestAsciiPlotBasics(t *testing.T) {
	s := Series{Name: "line", Marker: '*', X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}}
	out := AsciiPlot("title", 20, 8, s)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing markers")
	}
	if !strings.Contains(out, "*=line") {
		t.Error("missing legend")
	}
	// A rising line puts a marker in the top row and the bottom row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Error("max row lacks marker")
	}
}

func TestAsciiPlotEmpty(t *testing.T) {
	out := AsciiPlot("nothing", 20, 8)
	if !strings.Contains(out, "(no data)") {
		t.Error("empty plot should say so")
	}
}

func TestAsciiPlotIgnoresNaNAndInf(t *testing.T) {
	s := Series{Name: "s", Marker: 'o', X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), math.Inf(1)}}
	out := AsciiPlot("t", 20, 6, s)
	if strings.Count(out, "o") < 1 {
		t.Error("valid point missing")
	}
}

func TestAsciiPlotDegenerateRanges(t *testing.T) {
	s := Series{Name: "flat", Marker: '+', X: []float64{1, 1}, Y: []float64{5, 5}}
	out := AsciiPlot("flat", 20, 6, s)
	if !strings.Contains(out, "+") {
		t.Error("flat series missing")
	}
}

func TestAsciiPlotMinimumDimensions(t *testing.T) {
	s := Series{Name: "s", Marker: '*', X: []float64{0, 1}, Y: []float64{0, 1}}
	out := AsciiPlot("t", 1, 1, s)
	if len(strings.Split(out, "\n")) < 6 {
		t.Error("plot smaller than clamped minimum")
	}
}

func TestPlotTable(t *testing.T) {
	tab := Table{
		ID: "x", Title: "test", Columns: []string{"rate", "a", "b"},
	}
	tab.AddRow(0.1, 10, 20)
	tab.AddRow(0.2, 15, 25)
	out, err := PlotTable(tab, 24, 8, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestPlotTableUnknownColumn(t *testing.T) {
	tab := Table{ID: "x", Title: "t", Columns: []string{"rate", "a"}}
	tab.AddRow(1, 2)
	if _, err := PlotTable(tab, 24, 8, "nope"); err == nil {
		t.Error("accepted unknown column")
	}
}
