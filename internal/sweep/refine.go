package sweep

import (
	"fmt"
	"math"
	"sort"

	"repro/nocsim"
	"repro/nocsim/manifest"
)

// Adaptive refinement: a fixed load grid burns most of its budget on
// flat regions, while the paper's claims live at saturation knees and
// policy crossovers. Refine turns a completed coarse pass into a child
// manifest of extra loads placed where the measured curves actually
// bend, and MergeRefined folds both passes back into one monotone load
// axis so every existing renderer works unchanged.
//
// Determinism is the contract that lets the rest of the stack stay
// ignorant of refinement: the child manifest is a pure function of the
// parent manifest and its results (no clocks, no randomness, stable
// tie-breaks), and its name embeds the parent's plan fingerprint — so
// two machines refining the same coarse pass emit byte-identical child
// manifests, the coordinator can treat the child as just another plan,
// and stale children from an earlier parent plan can never be confused
// with fresh ones.

const (
	// refineTag joins a parent manifest's name and fingerprint into its
	// child's name ("baseline-refine-8f2a91c03d64e7b1").
	refineTag = "-refine-"
	// flatRelRange is the relative delay range below which a curve is
	// considered flat end to end: nothing to refine, whatever the
	// pointwise differences look like (they are noise).
	flatRelRange = 0.05
	// minScore drops intervals whose normalized signal is indistinguishable
	// from a flat region, so a generous budget is not spent on noise.
	minScore = 0.05
	// kneeBonus is added to the interval entering the detected knee (and
	// half of it to the interval leaving it), so knee bracketing always
	// outranks plain gradient refinement.
	kneeBonus = 1.0
)

// RefineName returns the deterministic name of the refinement manifest
// derived from a parent plan: the parent's name joined with its plan
// fingerprint. Knowing the name before the refinement is computed is
// what lets a remote client register the expectation with a coordinator
// while the coarse pass is still running.
func RefineName(parent *manifest.Manifest) (string, error) {
	sum, err := manifest.Sum(parent)
	if err != nil {
		return "", err
	}
	return parent.Name + refineTag + sum, nil
}

// Knee estimates the saturation knee of one delay curve: the first load
// whose delay is at least double the lowest-load delay — the last load
// when the curve never doubles (no knee inside the grid). The rule is
// deliberately grid-coarse: it is used to annotate tables and to compare
// a refined run against a fixed-grid run within one coarse grid step,
// not to claim sub-interval precision.
func Knee(loads, delays []float64) (load float64, idx int) {
	if len(loads) == 0 || len(loads) != len(delays) {
		return math.NaN(), -1
	}
	for i, d := range delays {
		if d >= 2*delays[0] {
			return loads[i], i
		}
	}
	return loads[len(loads)-1], len(loads) - 1
}

// kneeIdx is the refinement-side knee rule: like Knee but also accepting
// the engine's own saturation guard as evidence, which tables don't
// carry. Returns -1 when the curve never knees.
func kneeIdx(delays []float64, saturated []bool) int {
	for i, d := range delays {
		if saturated[i] || d >= 2*delays[0] {
			return i
		}
	}
	return -1
}

// candidate is one half-open load interval of one panel, scored by how
// much measured signal it contains.
type candidate struct {
	panel int // parent panel index
	ival  int // interval [Loads[ival], Loads[ival+1]]
	score float64
	load  float64 // midpoint: the refinement load this candidate adds
}

// perLoadSims is how many simulated points one added load costs in a
// grid (one per swept policy).
func perLoadSims(g nocsim.Grid) int {
	return max(1, len(g.Policies))
}

// Refine builds the refinement manifest of a completed coarse pass: for
// every panel it scores each load interval by the normalized delay
// gradient and curvature across all policy curves, boosts the intervals
// bracketing the detected saturation knee, and greedily accepts interval
// midpoints in score order until budget added simulated points are
// spent. The result is an ordinary resolved-grid manifest — same base
// scenarios, same pinned calibrations, same policies, only new loads —
// that every executor (local run, journal, coordinator, results store)
// handles unchanged. It returns nil when no interval carries enough
// signal to be worth a simulation.
//
// Refine is deterministic: the same parent manifest and results produce
// a byte-identical child manifest (golden-tested), on any machine.
func Refine(parent *manifest.Manifest, results []nocsim.Result, budget int) (*manifest.Manifest, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("sweep: refine budget must be positive (got %d)", budget)
	}
	if n := parent.NumPoints(); len(results) != n {
		return nil, fmt.Errorf("sweep: refining %s: %d results for %d points", parent.Name, len(results), n)
	}
	off := parent.Offsets()
	var cands []candidate
	for pi, panel := range parent.Panels {
		g := panel.Grid
		nl := len(g.Loads)
		if nl < 2 {
			continue // a single-load panel (e.g. the PI transient) has no axis to refine
		}
		for i := 1; i < nl; i++ {
			if g.Loads[i] <= g.Loads[i-1] {
				return nil, fmt.Errorf("sweep: refining %s: panel %s loads not strictly increasing", parent.Name, panel.Label)
			}
		}
		scores := make([]float64, nl-1)
		for _, curve := range curves(g, results[off[pi]:off[pi+1]]) {
			delays := make([]float64, nl)
			saturated := make([]bool, nl)
			for li, r := range curve {
				delays[li] = r.AvgDelayNs
				saturated[li] = r.Saturated
			}
			lo, hi := delays[0], delays[0]
			for _, d := range delays[1:] {
				lo, hi = math.Min(lo, d), math.Max(hi, d)
			}
			if hi <= 0 || (hi-lo)/hi < flatRelRange {
				continue // flat curve: pointwise differences are noise
			}
			rng := hi - lo
			curv := make([]float64, nl) // normalized |second difference| at interior samples
			for li := 1; li < nl-1; li++ {
				curv[li] = math.Abs(delays[li+1]-2*delays[li]+delays[li-1]) / rng
			}
			knee := kneeIdx(delays, saturated)
			for i := 0; i < nl-1; i++ {
				s := math.Abs(delays[i+1]-delays[i])/rng + 0.5*math.Max(curv[i], curv[i+1])
				if knee >= 1 {
					if i == knee-1 {
						s += kneeBonus
					} else if i == knee {
						s += 0.5 * kneeBonus
					}
				}
				scores[i] = math.Max(scores[i], s)
			}
		}
		for i, s := range scores {
			if s < minScore {
				continue
			}
			cands = append(cands, candidate{
				panel: pi, ival: i, score: s,
				load: 0.5 * (g.Loads[i] + g.Loads[i+1]),
			})
		}
	}
	// Highest signal first; ties break on (panel, interval) so the order —
	// and therefore the budget cut-off — is deterministic.
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.score != cb.score {
			return ca.score > cb.score
		}
		if ca.panel != cb.panel {
			return ca.panel < cb.panel
		}
		return ca.ival < cb.ival
	})
	added := map[int][]float64{}
	spent := 0
	for _, c := range cands {
		cost := perLoadSims(parent.Panels[c.panel].Grid)
		if spent+cost > budget {
			continue // a cheaper panel's candidate may still fit
		}
		spent += cost
		added[c.panel] = append(added[c.panel], c.load)
	}
	if spent == 0 {
		return nil, nil
	}
	name, err := RefineName(parent)
	if err != nil {
		return nil, err
	}
	child := &manifest.Manifest{Name: name, Quick: parent.Quick, Points: parent.Points, Seed: parent.Seed}
	for pi, panel := range parent.Panels {
		loads := added[pi]
		if len(loads) == 0 {
			// Dropped, not emptied: a Grid with no loads still counts one
			// point (Base.Load), which would silently re-run the base.
			continue
		}
		sort.Float64s(loads)
		g := panel.Grid
		child.Panels = append(child.Panels, manifest.Panel{
			Label: panel.Label,
			Grid:  nocsim.Grid{Base: g.Base, Loads: loads, Policies: g.Policies},
		})
	}
	return child, nil
}

// MergeRefined folds a refinement pass back into its parent: per panel,
// the union of both load axes sorted ascending (exact duplicates keep
// the parent's result), with the flat result list rebuilt in the merged
// manifest's own point order (policies outer, loads inner). The merged
// manifest keeps the parent's name, so Render dispatches to the same
// figure renderer and the tables keep their exact existing format — a
// refined table is simply a denser one.
//
// A nil or empty child returns the parent and its results untouched, so
// a run whose refinement found nothing renders byte-identically to a
// plain run of the coarse grid.
func MergeRefined(parent *manifest.Manifest, parentResults []nocsim.Result, child *manifest.Manifest, childResults []nocsim.Result) (*manifest.Manifest, []nocsim.Result, error) {
	if child == nil || child.NumPoints() == 0 {
		return parent, parentResults, nil
	}
	if n := parent.NumPoints(); len(parentResults) != n {
		return nil, nil, fmt.Errorf("sweep: merging %s: %d parent results for %d points", parent.Name, len(parentResults), n)
	}
	if n := child.NumPoints(); len(childResults) != n {
		return nil, nil, fmt.Errorf("sweep: merging %s: %d child results for %d points", child.Name, len(childResults), n)
	}
	poff, coff := parent.Offsets(), child.Offsets()
	childPanel := map[string]int{}
	for i, p := range child.Panels {
		if _, dup := childPanel[p.Label]; dup {
			return nil, nil, fmt.Errorf("sweep: merging %s: duplicate child panel %q", child.Name, p.Label)
		}
		childPanel[p.Label] = i
	}
	merged := &manifest.Manifest{Name: parent.Name, Quick: parent.Quick, Points: parent.Points, Seed: parent.Seed}
	var results []nocsim.Result
	matched := 0
	for pi, panel := range parent.Panels {
		g := panel.Grid
		ci, ok := childPanel[panel.Label]
		if !ok {
			merged.Panels = append(merged.Panels, panel)
			results = append(results, parentResults[poff[pi]:poff[pi+1]]...)
			continue
		}
		matched++
		cg := child.Panels[ci].Grid
		if len(cg.Policies) != len(g.Policies) {
			return nil, nil, fmt.Errorf("sweep: merging %s panel %q: child sweeps %d policies, parent %d", parent.Name, panel.Label, len(cg.Policies), len(g.Policies))
		}
		for i := range g.Policies {
			if cg.Policies[i] != g.Policies[i] {
				return nil, nil, fmt.Errorf("sweep: merging %s panel %q: child policy %d is %s, parent %s", parent.Name, panel.Label, i, cg.Policies[i], g.Policies[i])
			}
		}
		// Merge the two sorted load axes; on an exact tie the parent's
		// sample wins and the child's is dropped.
		type src struct {
			child bool
			idx   int
		}
		var loads []float64
		var srcs []src
		i, j := 0, 0
		for i < len(g.Loads) || j < len(cg.Loads) {
			if j >= len(cg.Loads) || (i < len(g.Loads) && g.Loads[i] <= cg.Loads[j]) {
				if i < len(g.Loads) && j < len(cg.Loads) && g.Loads[i] == cg.Loads[j] {
					j++
				}
				loads = append(loads, g.Loads[i])
				srcs = append(srcs, src{false, i})
				i++
			} else {
				loads = append(loads, cg.Loads[j])
				srcs = append(srcs, src{true, j})
				j++
			}
		}
		for k := 1; k < len(loads); k++ {
			if loads[k] <= loads[k-1] {
				return nil, nil, fmt.Errorf("sweep: merging %s panel %q: merged loads not strictly increasing (are both axes sorted?)", parent.Name, panel.Label)
			}
		}
		pnl, cnl := len(g.Loads), len(cg.Loads)
		for pol := 0; pol < max(1, len(g.Policies)); pol++ {
			for _, s := range srcs {
				if s.child {
					results = append(results, childResults[coff[ci]+pol*cnl+s.idx])
				} else {
					results = append(results, parentResults[poff[pi]+pol*pnl+s.idx])
				}
			}
		}
		merged.Panels = append(merged.Panels, manifest.Panel{
			Label: panel.Label,
			Grid:  nocsim.Grid{Base: g.Base, Loads: loads, Policies: g.Policies},
		})
	}
	if matched != len(child.Panels) {
		return nil, nil, fmt.Errorf("sweep: merging %s: child %s has panels the parent lacks", parent.Name, child.Name)
	}
	return merged, results, nil
}
