package sweep

import (
	"math"
	"strings"
	"testing"
)

func sampleTable() Table {
	t := Table{
		ID:      "t1",
		Title:   "sample",
		Columns: []string{"x", "y"},
		Notes:   []string{"note one"},
	}
	t.AddRow(0.1, 150)
	t.AddRow(0.2, 300.25)
	return t
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	tab := sampleTable()
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow accepted wrong arity")
		}
	}()
	tab.AddRow(1, 2, 3)
}

func TestColumn(t *testing.T) {
	tab := sampleTable()
	ys, ok := tab.Column("y")
	if !ok || len(ys) != 2 || ys[0] != 150 || ys[1] != 300.25 {
		t.Errorf("Column(y) = %v, %v", ys, ok)
	}
	if _, ok := tab.Column("z"); ok {
		t.Error("Column found nonexistent column")
	}
}

func TestFormat(t *testing.T) {
	tab := sampleTable()
	var sb strings.Builder
	if err := tab.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"t1", "sample", "x", "y", "0.1000", "150", "# note one"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	tab := sampleTable()
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.1000,") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestFormatCell(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{150, "150"},
		{0.25, "0.2500"},
		{1234.56, "1234.6"},
		{3.14159, "3.14"},
		{math.NaN(), ""},
	}
	for _, tc := range tests {
		if got := formatCell(tc.v); got != tc.want {
			t.Errorf("formatCell(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
