package sweep

import (
	"context"
	"fmt"
	"time"

	"repro/internal/queue"
	"repro/nocsim"
	"repro/nocsim/manifest"
)

// AdaptiveStats reports what an adaptive run actually simulated, so the
// CLI can print the budget arithmetic ("18 coarse + 6 refined vs 54
// fixed") and the acceptance tests can assert the ≥3× saving.
type AdaptiveStats struct {
	Fig           string
	CoarsePoints  int    // points simulated by the coarse pass
	RefinedPoints int    // points simulated by the refinement pass (0 when none was worth running)
	ChildName     string // refinement manifest name ("" when none was emitted)
}

// Total is the number of points the adaptive run simulated.
func (s *AdaptiveStats) Total() int { return s.CoarsePoints + s.RefinedPoints }

// runManifest runs every missing point of m to completion, journaling
// each accepted point when st is non-nil. Unlike Generate it has no
// point limit: the adaptive flow needs the full pass before it can
// refine or merge.
func runManifest(ctx context.Context, m *manifest.Manifest, o Options, st *manifest.DirStore, have map[int]nocsim.Result) ([]nocsim.Result, error) {
	var save func(int, nocsim.Result) error
	if st != nil {
		j, err := st.Journal(m.Name)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		save = j.Append
	}
	results, complete, err := manifest.Run(ctx, m, o.Workers, have, save, 0)
	if err != nil {
		return nil, err
	}
	if !complete {
		return nil, fmt.Errorf("sweep: %s did not run to completion", m.Name)
	}
	return results, nil
}

// GenerateAdaptive produces one figure's tables with the two-phase
// adaptive planner: run the figure's (coarse) manifest, estimate where
// the curves bend (Refine), run the resulting child manifest — at most
// budget extra points — and render the merged load axis. When the
// coarse pass is already smooth enough that nothing clears the
// refinement threshold, the output is byte-identical to Generate.
//
// The child manifest goes through the same store machinery as any
// figure: it is persisted before running, its points are journaled as
// they complete, and with resume a stored child planned from the same
// coarse results picks up its journaled points.
func GenerateAdaptive(ctx context.Context, fig string, o Options, st *manifest.DirStore, resume bool, budget int) ([]Table, *AdaptiveStats, error) {
	o.setDefaults()
	m, have, err := PlanOrResume(ctx, fig, o, st, resume)
	if err != nil {
		return nil, nil, err
	}
	results, err := runManifest(ctx, m, o, st, have)
	if err != nil {
		return nil, nil, err
	}
	stats := &AdaptiveStats{Fig: fig, CoarsePoints: m.NumPoints()}

	child, err := Refine(m, results, budget)
	if err != nil {
		return nil, nil, err
	}
	if child == nil {
		tables, err := Render(m, results)
		return tables, stats, err
	}
	stats.ChildName = child.Name
	stats.RefinedPoints = child.NumPoints()

	childHave := map[int]nocsim.Result{}
	if st != nil {
		// Reuse a stored child's journal only when it was refined from the
		// same coarse plan (same name ⇒ same parent sum) AND carries the
		// same point grid; anything else is a stale refinement whose points
		// must not leak into this run. SaveManifest truncates them.
		stored, err := st.LoadManifest(child.Name)
		if err != nil {
			return nil, nil, err
		}
		same := false
		if stored != nil {
			ssum, err := manifest.Sum(stored)
			if err != nil {
				return nil, nil, err
			}
			csum, err := manifest.Sum(child)
			if err != nil {
				return nil, nil, err
			}
			same = ssum == csum
		}
		if same && resume {
			if childHave, err = st.LoadPoints(child.Name); err != nil {
				return nil, nil, err
			}
		} else if err := st.SaveManifest(child); err != nil {
			return nil, nil, err
		}
	}
	childResults, err := runManifest(ctx, child, o, st, childHave)
	if err != nil {
		return nil, nil, err
	}

	merged, mergedResults, err := MergeRefined(m, results, child, childResults)
	if err != nil {
		return nil, nil, err
	}
	tables, err := Render(merged, mergedResults)
	return tables, stats, err
}

// fetchDense pulls a manifest's completed points from the coordinator
// and lays them out as the dense slice Render and Refine expect.
func fetchDense(ctx context.Context, c *queue.Client, m *manifest.Manifest) ([]nocsim.Result, error) {
	have, err := c.Points(ctx, m.Name)
	if err != nil {
		return nil, err
	}
	n := m.NumPoints()
	results := make([]nocsim.Result, n)
	for i := 0; i < n; i++ {
		r, ok := have[i]
		if !ok {
			return nil, fmt.Errorf("sweep: coordinator reported %s done but point %d is missing", m.Name, i)
		}
		results[i] = r
	}
	return results, nil
}

// GenerateRemoteAdaptive is GenerateAdaptive through a queue
// coordinator: the coarse pass and the refinement pass both run on the
// coordinator's fleet, with this client joining as one more worker.
//
// The refinement manifest's name is known before the coarse pass
// finishes (it derives from the parent plan alone), so the client
// registers it as an expectation up front — a coordinator running with
// -exit-when-done then keeps its fleet attached through the gap between
// the coarse pass draining and the refinement being posted. The
// expectation is withdrawn if refinement finds nothing (or this client
// fails), releasing the fleet.
func GenerateRemoteAdaptive(ctx context.Context, fig string, o Options, c *queue.Client, budget int) ([]Table, *AdaptiveStats, error) {
	o.setDefaults()
	m, err := c.WaitManifest(ctx, fig, remoteWait)
	if err != nil {
		return nil, nil, err
	}
	if m.Quick != o.Quick || m.Points != o.Points || m.Seed != o.Seed {
		return nil, nil, fmt.Errorf("sweep: coordinator's %s manifest was planned with quick=%v points=%d seed=%d; re-run with those options",
			fig, m.Quick, m.Points, m.Seed)
	}
	childName, err := RefineName(m)
	if err != nil {
		return nil, nil, err
	}
	if err := c.Expect(ctx, childName); err != nil {
		return nil, nil, err
	}
	expectCleared := false
	defer func() {
		if expectCleared {
			return
		}
		// Best effort, on a fresh context: the surrounding ctx may be the
		// very cancellation that aborted us, and a stranded expectation
		// would hold an -exit-when-done fleet open forever.
		cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Unexpect(cctx, childName)
	}()

	w := &queue.Worker{Client: c, Workers: o.Workers, Name: fig}
	if err := w.Run(ctx); err != nil {
		return nil, nil, err
	}
	results, err := fetchDense(ctx, c, m)
	if err != nil {
		return nil, nil, err
	}
	stats := &AdaptiveStats{Fig: fig, CoarsePoints: m.NumPoints()}

	child, err := Refine(m, results, budget)
	if err != nil {
		return nil, nil, err
	}
	if child == nil {
		if err := c.Unexpect(ctx, childName); err != nil {
			return nil, nil, err
		}
		expectCleared = true
		tables, err := Render(m, results)
		return tables, stats, err
	}
	stats.ChildName = child.Name
	stats.RefinedPoints = child.NumPoints()

	// Posting the manifest clears the expectation server-side; a repost of
	// the identical plan (say, after a client restart) is a no-op.
	if err := c.AddManifest(ctx, child); err != nil {
		return nil, nil, err
	}
	expectCleared = true

	w = &queue.Worker{Client: c, Workers: o.Workers, Name: child.Name}
	if err := w.Run(ctx); err != nil {
		return nil, nil, err
	}
	childResults, err := fetchDense(ctx, c, child)
	if err != nil {
		return nil, nil, err
	}

	merged, mergedResults, err := MergeRefined(m, results, child, childResults)
	if err != nil {
		return nil, nil, err
	}
	tables, err := Render(merged, mergedResults)
	return tables, stats, err
}
