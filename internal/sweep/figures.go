package sweep

import (
	"context"
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/exp"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/volt"
)

// Options tunes the figure generators.
type Options struct {
	// Quick shrinks simulation windows and grids for smoke tests and
	// benchmarks.
	Quick bool
	// Points is the number of load-grid samples per curve (default 8,
	// or 4 in Quick mode).
	Points int
	// Seed makes all runs reproducible (default 1).
	Seed int64
	// Workers bounds how many simulation points run concurrently across
	// the figure generators (0 = GOMAXPROCS, 1 = serial). The tables are
	// byte-identical for every value; see package exp.
	Workers int
}

func (o *Options) setDefaults() {
	if o.Points == 0 {
		if o.Quick {
			o.Points = 4
		} else {
			o.Points = 8
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// baseline returns the paper's baseline scenario: uniform traffic on the
// 5x5/8-VC/4-buffer/20-flit mesh.
func (o *Options) baseline() core.Scenario {
	return core.Scenario{
		Noc:     noc.DefaultConfig(),
		Pattern: "uniform",
		Quick:   o.Quick,
		Seed:    o.Seed,
		Workers: o.Workers,
	}
}

// Bundle is the shared baseline comparison behind Figs. 2, 4 and 6: the
// same scenario measured under all three policies over one rate grid.
type Bundle struct {
	Comparison core.Comparison
	Options    Options
}

// BaselineBundle computes (once) the three-policy sweep on the baseline
// scenario that Figs. 2, 4 and 6 all present views of.
func BaselineBundle(ctx context.Context, o Options) (*Bundle, error) {
	o.setDefaults()
	s := o.baseline()
	cal, err := core.Calibrate(ctx, s)
	if err != nil {
		return nil, err
	}
	grid := core.LoadGrid(0.9*cal.SaturationRate, o.Points)
	cmp, err := core.ComparePolicies(ctx, s, grid, core.AllPolicies(), cal)
	if err != nil {
		return nil, err
	}
	return &Bundle{Comparison: cmp, Options: o}, nil
}

func calNote(cal core.Calibration) string {
	return fmt.Sprintf("calibration: saturation=%.3f λmax=%.3f target=%.1f ns",
		cal.SaturationRate, cal.LambdaMax, cal.TargetDelayNs)
}

// Fig2 renders Fig. 2: No-DVFS vs RMSD latency in cycles (a) and delay in
// ns (b) against injection rate, exposing the non-monotonic RMSD delay.
func Fig2(b *Bundle) []Table {
	cal := b.Comparison.Calibration
	lat := Table{
		ID:      "fig2a",
		Title:   "NoC latency (network clock cycles) vs injection rate, uniform 5x5",
		Columns: []string{"rate", "nodvfs_latency_cycles", "rmsd_latency_cycles"},
		Notes:   []string{calNote(cal), "paper: RMSD latency constant for rate in [λmin, λmax]"},
	}
	del := Table{
		ID:      "fig2b",
		Title:   "NoC delay (ns) vs injection rate, uniform 5x5",
		Columns: []string{"rate", "nodvfs_delay_ns", "rmsd_delay_ns"},
		Notes: []string{calNote(cal),
			"paper: RMSD delay non-monotonic, peak near λmin ≈ " + fmt.Sprintf("%.3f", cal.LambdaMax/3)},
	}
	no := b.Comparison.Sweeps[core.NoDVFS].Points
	rm := b.Comparison.Sweeps[core.RMSD].Points
	for i := range no {
		lat.AddRow(no[i].Load, no[i].Result.AvgLatencyCycles, rm[i].Result.AvgLatencyCycles)
		del.AddRow(no[i].Load, no[i].Result.AvgDelayNs, rm[i].Result.AvgDelayNs)
	}
	return []Table{lat, del}
}

// Fig4 renders Fig. 4: network clock frequency (a) and delay (b) for all
// three policies.
func Fig4(b *Bundle) []Table {
	cal := b.Comparison.Calibration
	freq := Table{
		ID:      "fig4a",
		Title:   "Network clock frequency (GHz) vs injection rate",
		Columns: []string{"rate", "nodvfs_ghz", "rmsd_ghz", "dmsd_ghz"},
		Notes:   []string{calNote(cal), "paper: RMSD frequency ≤ DMSD frequency everywhere"},
	}
	del := Table{
		ID:      "fig4b",
		Title:   "Packet delay (ns) vs injection rate, three policies",
		Columns: []string{"rate", "nodvfs_delay_ns", "rmsd_delay_ns", "dmsd_delay_ns"},
		Notes:   []string{calNote(cal), "paper: DMSD flat at the target delay; RMSD up to ~1.9x above"},
	}
	no := b.Comparison.Sweeps[core.NoDVFS].Points
	rm := b.Comparison.Sweeps[core.RMSD].Points
	dm := b.Comparison.Sweeps[core.DMSD].Points
	for i := range no {
		freq.AddRow(no[i].Load, no[i].Result.AvgFreqHz/1e9, rm[i].Result.AvgFreqHz/1e9, dm[i].Result.AvgFreqHz/1e9)
		del.AddRow(no[i].Load, no[i].Result.AvgDelayNs, rm[i].Result.AvgDelayNs, dm[i].Result.AvgDelayNs)
	}
	return []Table{freq, del}
}

// Fig5 renders the 28-nm FDSOI frequency-vs-voltage curve.
func Fig5(o Options) []Table {
	o.setDefaults()
	m := volt.New()
	t := Table{
		ID:      "fig5",
		Title:   "Network clock frequency vs Vdd, 28-nm FDSOI model",
		Columns: []string{"vdd_v", "freq_ghz"},
		Notes: []string{
			fmt.Sprintf("alpha-power fit: Vt=%.2f V, alpha=%.2f", m.Vt(), m.Alpha()),
			"anchors from the paper: 333 MHz @ 0.56 V, 1 GHz @ 0.90 V",
		},
	}
	points := o.Points * 2
	volts, freqs := m.Curve(volt.VMin, volt.VMax, points)
	for i := range volts {
		t.AddRow(volts[i], freqs[i]/1e9)
	}
	return []Table{t}
}

// Fig6 renders total network power vs injection rate for the three
// policies, with the paper's annotated ratios recomputed at 0.2.
func Fig6(b *Bundle) []Table {
	cal := b.Comparison.Calibration
	t := Table{
		ID:      "fig6",
		Title:   "Network power (mW) vs injection rate, three policies",
		Columns: []string{"rate", "nodvfs_mw", "rmsd_mw", "dmsd_mw"},
		Notes:   []string{calNote(cal), "paper at rate 0.2: No-DVFS/RMSD ≈ 2.2x, DMSD/RMSD ≈ 1.3x"},
	}
	no := b.Comparison.Sweeps[core.NoDVFS].Points
	rm := b.Comparison.Sweeps[core.RMSD].Points
	dm := b.Comparison.Sweeps[core.DMSD].Points
	for i := range no {
		t.AddRow(no[i].Load, no[i].Result.AvgPowerMW, rm[i].Result.AvgPowerMW, dm[i].Result.AvgPowerMW)
	}
	if i := nearestIdx(no, 0.2); i >= 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("measured at rate %.2f: No-DVFS/RMSD = %.2fx, DMSD/RMSD = %.2fx",
			no[i].Load,
			ratio(no[i].Result.AvgPowerMW, rm[i].Result.AvgPowerMW),
			ratio(dm[i].Result.AvgPowerMW, rm[i].Result.AvgPowerMW)))
	}
	return []Table{t}
}

// Fig7 renders the four synthetic-pattern panels: delay and power vs
// injection rate under tornado, bit-complement, transpose and neighbor.
// The four panels are independent studies and run concurrently.
func Fig7(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	patterns := traffic.PaperPatterns()
	panels, err := exp.Map(ctx, o.Workers, len(patterns),
		func(ctx context.Context, i int) ([]Table, error) {
			pattern := patterns[i]
			s := o.baseline()
			s.Pattern = pattern
			cal, err := core.Calibrate(ctx, s)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s: %w", pattern, err)
			}
			grid := core.LoadGrid(0.9*cal.SaturationRate, o.Points)
			cmp, err := core.ComparePolicies(ctx, s, grid, core.AllPolicies(), cal)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s: %w", pattern, err)
			}
			return comparisonTables("fig7", pattern, cmp), nil
		})
	if err != nil {
		return nil, err
	}
	return flatten(panels), nil
}

// Fig8 renders the sensitivity study: delay and power when varying the
// number of VCs, buffers per VC, packet size, and mesh size, under uniform
// traffic. The twelve variants are independent studies and run
// concurrently.
func Fig8(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	type variant struct {
		label  string
		mutate func(*noc.Config)
	}
	dims := []struct {
		name     string
		variants []variant
	}{
		{"vcs", []variant{
			{"vc2", func(c *noc.Config) { c.VCs = 2 }},
			{"vc4", func(c *noc.Config) { c.VCs = 4 }},
			{"vc8", func(c *noc.Config) { c.VCs = 8 }},
		}},
		{"buffers", []variant{
			{"buf4", func(c *noc.Config) { c.BufDepth = 4 }},
			{"buf8", func(c *noc.Config) { c.BufDepth = 8 }},
			{"buf16", func(c *noc.Config) { c.BufDepth = 16 }},
		}},
		{"packet", []variant{
			{"pkt10", func(c *noc.Config) { c.PacketSize = 10 }},
			{"pkt15", func(c *noc.Config) { c.PacketSize = 15 }},
			{"pkt20", func(c *noc.Config) { c.PacketSize = 20 }},
		}},
		{"mesh", []variant{
			{"mesh4x4", func(c *noc.Config) { c.Width, c.Height = 4, 4 }},
			{"mesh5x5", func(c *noc.Config) { c.Width, c.Height = 5, 5 }},
			{"mesh8x8", func(c *noc.Config) { c.Width, c.Height = 8, 8 }},
		}},
	}
	var flat []variant
	for _, dim := range dims {
		flat = append(flat, dim.variants...)
	}
	panels, err := exp.Map(ctx, o.Workers, len(flat),
		func(ctx context.Context, i int) ([]Table, error) {
			v := flat[i]
			s := o.baseline()
			v.mutate(&s.Noc)
			cal, err := core.Calibrate(ctx, s)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s: %w", v.label, err)
			}
			grid := core.LoadGrid(0.9*cal.SaturationRate, o.Points)
			cmp, err := core.ComparePolicies(ctx, s, grid, core.AllPolicies(), cal)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s: %w", v.label, err)
			}
			return comparisonTables("fig8", v.label, cmp), nil
		})
	if err != nil {
		return nil, err
	}
	return flatten(panels), nil
}

// Fig10 renders the multimedia panels: delay and power vs application
// speed for the H.264 encoder (4x4) and the VCE (5x5). The two workloads
// run concurrently.
func Fig10(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	workloads := apps.Apps()
	panels, err := exp.Map(ctx, o.Workers, len(workloads),
		func(ctx context.Context, i int) ([]Table, error) {
			app := workloads[i]
			s := core.Scenario{
				Noc:     noc.DefaultConfig(),
				App:     &app,
				Quick:   o.Quick,
				Seed:    o.Seed,
				Workers: o.Workers,
			}
			s.Noc.Width, s.Noc.Height = app.Width, app.Height
			cal, err := core.Calibrate(ctx, s)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s: %w", app.Name, err)
			}
			grid := core.LoadGrid(1.0, o.Points) // speeds up to 1.0 ≡ 75 f/s
			cmp, err := core.ComparePolicies(ctx, s, grid, core.AllPolicies(), cal)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s: %w", app.Name, err)
			}
			ts := comparisonTables("fig10", app.Name, cmp)
			for i := range ts {
				ts[i].Columns[0] = "speed"
				ts[i].Notes = append(ts[i].Notes, "speed 1.0 ≡ 75 frames/s in the paper's normalization")
			}
			return ts, nil
		})
	if err != nil {
		return nil, err
	}
	return flatten(panels), nil
}

// comparisonTables converts one Comparison into a delay table and a power
// table, with the paper-style ratio annotations computed mid-grid.
func comparisonTables(figID, label string, cmp core.Comparison) []Table {
	del := Table{
		ID:      figID + "_" + label + "_delay",
		Title:   fmt.Sprintf("Packet delay (ns) vs load, %s", label),
		Columns: []string{"rate", "nodvfs_delay_ns", "rmsd_delay_ns", "dmsd_delay_ns"},
		Notes:   []string{calNote(cmp.Calibration)},
	}
	pow := Table{
		ID:      figID + "_" + label + "_power",
		Title:   fmt.Sprintf("Network power (mW) vs load, %s", label),
		Columns: []string{"rate", "nodvfs_mw", "rmsd_mw", "dmsd_mw"},
		Notes:   []string{calNote(cmp.Calibration)},
	}
	no := cmp.Sweeps[core.NoDVFS].Points
	rm := cmp.Sweeps[core.RMSD].Points
	dm := cmp.Sweeps[core.DMSD].Points
	for i := range no {
		del.AddRow(no[i].Load, no[i].Result.AvgDelayNs, rm[i].Result.AvgDelayNs, dm[i].Result.AvgDelayNs)
		pow.AddRow(no[i].Load, no[i].Result.AvgPowerMW, rm[i].Result.AvgPowerMW, dm[i].Result.AvgPowerMW)
	}
	if mid := len(no) / 2; mid < len(no) {
		del.Notes = append(del.Notes, fmt.Sprintf("delay ratio RMSD/DMSD at load %.3g: %.2fx",
			no[mid].Load, ratio(rm[mid].Result.AvgDelayNs, dm[mid].Result.AvgDelayNs)))
		pow.Notes = append(pow.Notes, fmt.Sprintf("power ratios at load %.3g: No-DVFS/RMSD %.2fx, DMSD/RMSD %.2fx",
			no[mid].Load,
			ratio(no[mid].Result.AvgPowerMW, rm[mid].Result.AvgPowerMW),
			ratio(dm[mid].Result.AvgPowerMW, rm[mid].Result.AvgPowerMW)))
	}
	return []Table{del, pow}
}

// PIStep renders the DMSD transient: the frequency and window-delay trace
// of the PI loop from cold start (FMax) at a fixed load, supporting the
// paper's stability and control-period claims (Sec. IV).
func PIStep(ctx context.Context, o Options) ([]Table, error) {
	o.setDefaults()
	s := o.baseline()
	cal, err := core.Calibrate(ctx, s)
	if err != nil {
		return nil, err
	}
	pol, err := dvfs.NewDMSD(cal.TargetDelayNs, dvfs.DefaultRange())
	if err != nil {
		return nil, err
	}
	inj, err := traffic.NewInjector(s.Noc, traffic.NewUniform(s.Noc), 0.5*cal.SaturationRate, o.Seed)
	if err != nil {
		return nil, err
	}
	pm := power.Default28nm()
	params := sim.Params{
		Noc: s.Noc, Injector: inj, Policy: pol, VF: volt.New(), Power: &pm,
		Warmup: 1000, Measure: 400000, TraceFreq: true,
	}
	if o.Quick {
		params.Measure = 100000
	}
	res, err := sim.RunContext(ctx, params)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "pi_step",
		Title:   "DMSD PI transient from cold start (load = 0.5 x saturation)",
		Columns: []string{"time_us", "freq_ghz", "window_delay_ns"},
		Notes: []string{calNote(cal),
			fmt.Sprintf("gains KI=%.4g KP=%.4g, control period %d node cycles",
				dvfs.DefaultKI, dvfs.DefaultKP, dvfs.ControlPeriodNodeCycles)},
	}
	for _, sm := range res.Trace {
		t.AddRow(sm.TimeNs/1e3, sm.FreqHz/1e9, sm.DelayNs)
	}
	return []Table{t}, nil
}

// Summary recomputes the paper's headline numbers (Sec. I/VII): the power
// saving of each policy vs No-DVFS, the extra power of DMSD vs RMSD, and
// the delay ratio RMSD/DMSD, at a set of reference loads on the baseline
// scenario.
func Summary(b *Bundle) []Table {
	t := Table{
		ID:    "summary",
		Title: "Headline power-delay trade-off (baseline uniform 5x5)",
		Columns: []string{"rate", "rmsd_power_saving_pct", "dmsd_power_saving_pct",
			"dmsd_extra_power_pct", "rmsd_delay_ratio"},
		Notes: []string{
			calNote(b.Comparison.Calibration),
			"paper: RMSD saves 20-50% more power than DMSD; DMSD cuts delay up to ~3x",
		},
	}
	no := b.Comparison.Sweeps[core.NoDVFS].Points
	rm := b.Comparison.Sweeps[core.RMSD].Points
	dm := b.Comparison.Sweeps[core.DMSD].Points
	for i := range no {
		pn, pr, pd := no[i].Result.AvgPowerMW, rm[i].Result.AvgPowerMW, dm[i].Result.AvgPowerMW
		t.AddRow(no[i].Load,
			100*(1-pr/pn),
			100*(1-pd/pn),
			100*(pd/pr-1),
			ratio(rm[i].Result.AvgDelayNs, dm[i].Result.AvgDelayNs))
	}
	return []Table{t}
}

// flatten concatenates per-panel table slices in panel order.
func flatten(panels [][]Table) []Table {
	var tables []Table
	for _, p := range panels {
		tables = append(tables, p...)
	}
	return tables
}

// nearestIdx returns the index of the point whose load is closest to x.
func nearestIdx(pts []core.Point, x float64) int {
	best, bd := -1, math.Inf(1)
	for i, p := range pts {
		if d := math.Abs(p.Load - x); d < bd {
			best, bd = i, d
		}
	}
	return best
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
