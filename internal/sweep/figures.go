package sweep

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/dvfs"
	"repro/internal/exp"
	"repro/internal/volt"
	"repro/nocsim"
	"repro/nocsim/manifest"
)

// Options tunes the figure generators.
type Options struct {
	// Quick shrinks simulation windows and grids for smoke tests and
	// benchmarks.
	Quick bool
	// Points is the number of load-grid samples per curve (default 8,
	// or 4 in Quick mode).
	Points int
	// Seed makes all runs reproducible (default 1).
	Seed int64
	// Workers bounds the per-grid worker pools (0 = GOMAXPROCS, 1 =
	// serial). The process-wide number of concurrently executing
	// simulations is additionally capped by exp.SetLeafBudget, so nested
	// panels never multiply the bound. The tables are byte-identical for
	// every value; see package exp.
	Workers int
}

func (o *Options) setDefaults() {
	if o.Points == 0 {
		if o.Quick {
			o.Points = 4
		} else {
			o.Points = 8
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// baseScenario returns the paper's baseline scenario: uniform traffic on
// the 5x5/8-VC/4-buffer/20-flit mesh.
func (o *Options) baseScenario() nocsim.Scenario {
	return nocsim.Scenario{
		Mesh:    nocsim.DefaultMesh(),
		Pattern: "uniform",
		Quick:   o.Quick,
		Seed:    o.Seed,
	}.Normalized()
}

// Figures lists the manifest-backed figure identifiers Plan accepts, in
// presentation order. Fig. 5 is analytic (no simulations) and stays
// outside the manifest machinery; "baseline" is the shared three-policy
// sweep that Figs. 2, 4, 6 and the summary table all present views of.
func Figures() []string {
	return []string{"baseline", "fig7", "fig8", "fig10", "pi",
		"period", "gains", "levels", "routing", "breakdown", "burst"}
}

// ResolveFigures expands a comma-separated -fig list into manifest
// figure names — the one vocabulary shared by cmd/figures and
// cmd/nocsimd, so the same selection works against either. It accepts
// the paper tokens (2, 4, 5, 6, 7, 8, 10, pi, summary, ablation),
// manifest names (baseline, fig7, ..., breakdown), and "all", returning
// the selected manifest figures in Figures() order plus whether the
// analytic Fig. 5 (which has no simulation points) was requested.
func ResolveFigures(list string) (figs []string, fig5 bool, err error) {
	want := map[string]bool{}
	for _, f := range strings.Split(list, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want[f] = true
		}
	}
	all := want["all"]
	alias := map[string][]string{
		"2": {"baseline"}, "4": {"baseline"}, "6": {"baseline"}, "summary": {"baseline"},
		"7": {"fig7"}, "8": {"fig8"}, "10": {"fig10"},
		"ablation": {"period", "gains", "levels", "routing", "breakdown"},
		"5":        nil, // analytic: no manifest behind it
	}
	known := map[string]bool{}
	for _, f := range Figures() {
		known[f] = true
	}
	selected := map[string]bool{}
	for tok := range want {
		switch {
		case tok == "all":
		case known[tok]:
			selected[tok] = true
		default:
			expansion, ok := alias[tok]
			if !ok {
				return nil, false, fmt.Errorf("sweep: unknown figure %q (want one of %v, paper tokens 2,4,5,6,7,8,10,pi,summary,ablation, or 'all')", tok, Figures())
			}
			for _, f := range expansion {
				selected[f] = true
			}
		}
	}
	for _, f := range Figures() {
		if all || selected[f] {
			figs = append(figs, f)
		}
	}
	return figs, all || want["5"], nil
}

// Plan builds the resolved-grid manifest of one figure: it runs the
// calibrations the figure needs (fanning independent panels across the
// worker pool) and pins them into the panels' grids, so every point of
// the returned manifest is a self-contained, restartable job. Plan is
// the only part of a figure run that is not resumable; it is also the
// cheap part (a calibration per panel at most).
func Plan(ctx context.Context, fig string, o Options) (*manifest.Manifest, error) {
	o.setDefaults()
	var panels []manifest.Panel
	var err error
	switch fig {
	case "baseline":
		panels, err = o.planBaseline(ctx)
	case "fig7":
		panels, err = o.planFig7(ctx)
	case "fig8":
		panels, err = o.planFig8(ctx)
	case "fig10":
		panels, err = o.planFig10(ctx)
	case "pi":
		panels, err = o.planPI(ctx)
	case "period":
		panels, err = o.planPeriod(ctx)
	case "gains":
		panels, err = o.planGains(ctx)
	case "levels":
		panels, err = o.planLevels(ctx)
	case "routing":
		panels, err = o.planRouting(ctx)
	case "breakdown":
		panels, err = o.planBreakdown(ctx)
	case "burst":
		panels, err = o.planBurst(ctx)
	default:
		return nil, fmt.Errorf("sweep: unknown figure %q (want one of %v)", fig, Figures())
	}
	if err != nil {
		return nil, err
	}
	return &manifest.Manifest{Name: fig, Quick: o.Quick, Points: o.Points, Seed: o.Seed, Panels: panels}, nil
}

// Render assembles a completed manifest's results (in point order) into
// the figure's tables.
func Render(m *manifest.Manifest, results []nocsim.Result) ([]Table, error) {
	if n := m.NumPoints(); len(results) != n {
		return nil, fmt.Errorf("sweep: rendering %s: %d results for %d points", m.Name, len(results), n)
	}
	switch m.Name {
	case "baseline":
		var tables []Table
		tables = append(tables, renderFig2(m, results)...)
		tables = append(tables, renderFig4(m, results)...)
		tables = append(tables, renderFig6(m, results)...)
		tables = append(tables, renderSummary(m, results)...)
		return tables, nil
	case "fig7", "fig8", "fig10":
		return renderComparison(m, results), nil
	case "pi":
		return renderPI(m, results), nil
	case "period":
		return renderPeriod(m, results), nil
	case "gains":
		return renderGains(m, results), nil
	case "levels":
		return renderLevels(m, results), nil
	case "routing":
		return renderRouting(m, results), nil
	case "breakdown":
		return renderBreakdown(m, results), nil
	case "burst":
		return renderBurst(m, results), nil
	default:
		return nil, fmt.Errorf("sweep: unknown figure %q", m.Name)
	}
}

// Tables plans, runs and renders one figure in memory — the
// non-persistent convenience behind the per-figure helpers.
func Tables(ctx context.Context, fig string, o Options) ([]Table, error) {
	tables, _, err := Generate(ctx, fig, o, nil, false, 0)
	return tables, err
}

// resolveComparison resolves one three-policy grid: calibrate the base
// scenario, pin the calibration, and lay the load axis as the given
// fraction ladder of the measured saturation rate. The planning worker
// bound is applied for the calibration only and stripped from the stored
// grid, keeping manifests host-independent.
func (o *Options) resolveComparison(ctx context.Context, base nocsim.Scenario, policies []nocsim.PolicyKind, loads func(cal nocsim.Calibration) []float64) (nocsim.Grid, error) {
	base.Workers = o.Workers
	g, err := nocsim.Grid{Base: base, Policies: policies}.Resolve(ctx)
	if err != nil {
		return nocsim.Grid{}, err
	}
	g.Base.Workers = 0
	g.Loads = loads(*g.Base.Calibration)
	return g, nil
}

// planPanels builds the named panels concurrently: each panel's
// calibration is an independent sub-grid, and the panel jobs themselves
// never hold leaf-budget slots, so however many run at once the
// simulations below them stay capped.
func (o *Options) planPanels(ctx context.Context, labels []string, build func(ctx context.Context, i int) (nocsim.Grid, error)) ([]manifest.Panel, error) {
	grids, err := exp.Map(ctx, o.Workers, len(labels),
		func(ctx context.Context, i int) (nocsim.Grid, error) {
			g, err := build(ctx, i)
			if err != nil {
				return nocsim.Grid{}, fmt.Errorf("panel %s: %w", labels[i], err)
			}
			return g, nil
		})
	if err != nil {
		return nil, err
	}
	panels := make([]manifest.Panel, len(labels))
	for i := range labels {
		panels[i] = manifest.Panel{Label: labels[i], Grid: grids[i]}
	}
	return panels, nil
}

// nearSaturationLoads is the standard comparison axis: Points loads up
// to 90% of the measured saturation rate.
func (o *Options) nearSaturationLoads(cal nocsim.Calibration) []float64 {
	return nocsim.LoadGrid(0.9*cal.SaturationRate, o.Points)
}

func (o *Options) planBaseline(ctx context.Context) ([]manifest.Panel, error) {
	g, err := o.resolveComparison(ctx, o.baseScenario(), nocsim.AllPolicies(), o.nearSaturationLoads)
	if err != nil {
		return nil, err
	}
	return []manifest.Panel{{Label: "uniform", Grid: g}}, nil
}

func (o *Options) planFig7(ctx context.Context) ([]manifest.Panel, error) {
	patterns := nocsim.PaperPatterns()
	return o.planPanels(ctx, patterns, func(ctx context.Context, i int) (nocsim.Grid, error) {
		base := o.baseScenario()
		base.Pattern = patterns[i]
		return o.resolveComparison(ctx, base, nocsim.AllPolicies(), o.nearSaturationLoads)
	})
}

// fig8Variants is the sensitivity study's variant ladder: the number of
// VCs, buffers per VC, packet size, and mesh size, each around the
// baseline (Fig. 8).
func fig8Variants() (labels []string, mutate []func(*nocsim.Mesh)) {
	type variant struct {
		label string
		fn    func(*nocsim.Mesh)
	}
	all := []variant{
		{"vc2", func(m *nocsim.Mesh) { m.VCs = 2 }},
		{"vc4", func(m *nocsim.Mesh) { m.VCs = 4 }},
		{"vc8", func(m *nocsim.Mesh) { m.VCs = 8 }},
		{"buf4", func(m *nocsim.Mesh) { m.BufDepth = 4 }},
		{"buf8", func(m *nocsim.Mesh) { m.BufDepth = 8 }},
		{"buf16", func(m *nocsim.Mesh) { m.BufDepth = 16 }},
		{"pkt10", func(m *nocsim.Mesh) { m.PacketSize = 10 }},
		{"pkt15", func(m *nocsim.Mesh) { m.PacketSize = 15 }},
		{"pkt20", func(m *nocsim.Mesh) { m.PacketSize = 20 }},
		{"mesh4x4", func(m *nocsim.Mesh) { m.Width, m.Height = 4, 4 }},
		{"mesh5x5", func(m *nocsim.Mesh) { m.Width, m.Height = 5, 5 }},
		{"mesh8x8", func(m *nocsim.Mesh) { m.Width, m.Height = 8, 8 }},
	}
	for _, v := range all {
		labels = append(labels, v.label)
		mutate = append(mutate, v.fn)
	}
	return labels, mutate
}

func (o *Options) planFig8(ctx context.Context) ([]manifest.Panel, error) {
	labels, mutate := fig8Variants()
	return o.planPanels(ctx, labels, func(ctx context.Context, i int) (nocsim.Grid, error) {
		base := o.baseScenario()
		mutate[i](&base.Mesh)
		return o.resolveComparison(ctx, base, nocsim.AllPolicies(), o.nearSaturationLoads)
	})
}

func (o *Options) planFig10(ctx context.Context) ([]manifest.Panel, error) {
	apps := nocsim.Apps()
	labels := make([]string, len(apps))
	for i, a := range apps {
		labels[i] = a.Name
	}
	return o.planPanels(ctx, labels, func(ctx context.Context, i int) (nocsim.Grid, error) {
		base := nocsim.Scenario{
			App:   apps[i].Name,
			Quick: o.Quick,
			Seed:  o.Seed,
		}.Normalized() // sizes the mesh to the app's mapping
		return o.resolveComparison(ctx, base, nocsim.AllPolicies(),
			func(nocsim.Calibration) []float64 {
				return nocsim.LoadGrid(1.0, o.Points) // speeds up to 1.0 ≡ 75 f/s
			})
	})
}

func (o *Options) planPI(ctx context.Context) ([]manifest.Panel, error) {
	base := o.baseScenario()
	base.Transient = true
	// Pin the paper's period explicitly: the transient's sample cadence
	// is part of the figure, so quick mode must not shorten it.
	base.ControlPeriod = dvfs.ControlPeriodNodeCycles
	g, err := o.resolveComparison(ctx, base, []nocsim.PolicyKind{nocsim.DMSD},
		func(cal nocsim.Calibration) []float64 { return []float64{0.5 * cal.SaturationRate} })
	if err != nil {
		return nil, err
	}
	return []manifest.Panel{{Label: "pi", Grid: g}}, nil
}

// Bundle is the shared baseline study behind Figs. 2, 4 and 6: the same
// scenario measured under all three policies over one rate grid, in
// manifest form.
type Bundle struct {
	Manifest *manifest.Manifest
	Results  []nocsim.Result
	Options  Options
}

// BaselineBundle computes (once) the three-policy sweep on the baseline
// scenario that Figs. 2, 4 and 6 all present views of.
func BaselineBundle(ctx context.Context, o Options) (*Bundle, error) {
	o.setDefaults()
	m, err := Plan(ctx, "baseline", o)
	if err != nil {
		return nil, err
	}
	results, _, err := manifest.Run(ctx, m, o.Workers, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	return &Bundle{Manifest: m, Results: results, Options: o}, nil
}

// Grid returns the bundle's single comparison grid (calibration pinned,
// policies outer × loads inner).
func (b *Bundle) Grid() nocsim.Grid { return b.Manifest.Panels[0].Grid }

// Curve returns the bundle's measured results for one policy, in load
// order.
func (b *Bundle) Curve(k nocsim.PolicyKind) []nocsim.Result {
	g := b.Grid()
	for i, p := range g.Policies {
		if p == k {
			return curves(g, b.Results)[i]
		}
	}
	return nil
}

// curves splits a comparison grid's results into one slice per policy,
// in the grid's policy order (policies are the outer grid dimension).
func curves(g nocsim.Grid, results []nocsim.Result) [][]nocsim.Result {
	np := max(1, len(g.Loads))
	out := make([][]nocsim.Result, max(1, len(g.Policies)))
	for i := range out {
		out[i] = results[i*np : (i+1)*np]
	}
	return out
}

func calNote(cal nocsim.Calibration) string {
	return fmt.Sprintf("calibration: saturation=%.3f λmax=%.3f target=%.1f ns",
		cal.SaturationRate, cal.LambdaMax, cal.TargetDelayNs)
}

// kneeNote annotates a delay table with the measured saturation knee of
// its No-DVFS curve (see Knee). The fixed %.4f formatting is load-bearing:
// CI's adaptive smoke extracts the value from a fixed-grid run and an
// adaptive run and asserts they agree within one coarse grid step.
func kneeNote(loads, delays []float64) string {
	load, _ := Knee(loads, delays)
	return fmt.Sprintf("saturation knee: rate %.4f (first load with nodvfs delay >= 2x the lowest-load delay)", load)
}

// Fig2 renders Fig. 2: No-DVFS vs RMSD latency in cycles (a) and delay in
// ns (b) against injection rate, exposing the non-monotonic RMSD delay.
func Fig2(b *Bundle) []Table { return renderFig2(b.Manifest, b.Results) }

func renderFig2(m *manifest.Manifest, results []nocsim.Result) []Table {
	g := m.Panels[0].Grid
	cal := *g.Base.Calibration
	lat := Table{
		ID:      "fig2a",
		Title:   "NoC latency (network clock cycles) vs injection rate, uniform 5x5",
		Columns: []string{"rate", "nodvfs_latency_cycles", "rmsd_latency_cycles"},
		Notes:   []string{calNote(cal), "paper: RMSD latency constant for rate in [λmin, λmax]"},
	}
	del := Table{
		ID:      "fig2b",
		Title:   "NoC delay (ns) vs injection rate, uniform 5x5",
		Columns: []string{"rate", "nodvfs_delay_ns", "rmsd_delay_ns"},
		Notes: []string{calNote(cal),
			"paper: RMSD delay non-monotonic, peak near λmin ≈ " + fmt.Sprintf("%.3f", cal.LambdaMax/3)},
	}
	cs := curves(g, results)
	no, rm := cs[0], cs[1]
	noDelays := make([]float64, len(g.Loads))
	for i, load := range g.Loads {
		lat.AddRow(load, no[i].AvgLatencyCycles, rm[i].AvgLatencyCycles)
		del.AddRow(load, no[i].AvgDelayNs, rm[i].AvgDelayNs)
		noDelays[i] = no[i].AvgDelayNs
	}
	del.Notes = append(del.Notes, kneeNote(g.Loads, noDelays))
	return []Table{lat, del}
}

// Fig4 renders Fig. 4: network clock frequency (a) and delay (b) for all
// three policies.
func Fig4(b *Bundle) []Table { return renderFig4(b.Manifest, b.Results) }

func renderFig4(m *manifest.Manifest, results []nocsim.Result) []Table {
	g := m.Panels[0].Grid
	cal := *g.Base.Calibration
	freq := Table{
		ID:      "fig4a",
		Title:   "Network clock frequency (GHz) vs injection rate",
		Columns: []string{"rate", "nodvfs_ghz", "rmsd_ghz", "dmsd_ghz"},
		Notes:   []string{calNote(cal), "paper: RMSD frequency ≤ DMSD frequency everywhere"},
	}
	del := Table{
		ID:      "fig4b",
		Title:   "Packet delay (ns) vs injection rate, three policies",
		Columns: []string{"rate", "nodvfs_delay_ns", "rmsd_delay_ns", "dmsd_delay_ns"},
		Notes:   []string{calNote(cal), "paper: DMSD flat at the target delay; RMSD up to ~1.9x above"},
	}
	cs := curves(g, results)
	no, rm, dm := cs[0], cs[1], cs[2]
	for i, load := range g.Loads {
		freq.AddRow(load, no[i].AvgFreqHz/1e9, rm[i].AvgFreqHz/1e9, dm[i].AvgFreqHz/1e9)
		del.AddRow(load, no[i].AvgDelayNs, rm[i].AvgDelayNs, dm[i].AvgDelayNs)
	}
	return []Table{freq, del}
}

// Fig5 renders the 28-nm FDSOI frequency-vs-voltage curve.
func Fig5(o Options) []Table {
	o.setDefaults()
	m := volt.New()
	t := Table{
		ID:      "fig5",
		Title:   "Network clock frequency vs Vdd, 28-nm FDSOI model",
		Columns: []string{"vdd_v", "freq_ghz"},
		Notes: []string{
			fmt.Sprintf("alpha-power fit: Vt=%.2f V, alpha=%.2f", m.Vt(), m.Alpha()),
			"anchors from the paper: 333 MHz @ 0.56 V, 1 GHz @ 0.90 V",
		},
	}
	points := o.Points * 2
	volts, freqs := m.Curve(volt.VMin, volt.VMax, points)
	for i := range volts {
		t.AddRow(volts[i], freqs[i]/1e9)
	}
	return []Table{t}
}

// Fig6 renders total network power vs injection rate for the three
// policies, with the paper's annotated ratios recomputed at 0.2.
func Fig6(b *Bundle) []Table { return renderFig6(b.Manifest, b.Results) }

func renderFig6(m *manifest.Manifest, results []nocsim.Result) []Table {
	g := m.Panels[0].Grid
	cal := *g.Base.Calibration
	t := Table{
		ID:      "fig6",
		Title:   "Network power (mW) vs injection rate, three policies",
		Columns: []string{"rate", "nodvfs_mw", "rmsd_mw", "dmsd_mw"},
		Notes:   []string{calNote(cal), "paper at rate 0.2: No-DVFS/RMSD ≈ 2.2x, DMSD/RMSD ≈ 1.3x"},
	}
	cs := curves(g, results)
	no, rm, dm := cs[0], cs[1], cs[2]
	for i, load := range g.Loads {
		t.AddRow(load, no[i].AvgPowerMW, rm[i].AvgPowerMW, dm[i].AvgPowerMW)
	}
	if i := nearestIdx(g.Loads, 0.2); i >= 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("measured at rate %.2f: No-DVFS/RMSD = %.2fx, DMSD/RMSD = %.2fx",
			g.Loads[i],
			ratio(no[i].AvgPowerMW, rm[i].AvgPowerMW),
			ratio(dm[i].AvgPowerMW, rm[i].AvgPowerMW)))
	}
	return []Table{t}
}

// Summary recomputes the paper's headline numbers (Sec. I/VII): the power
// saving of each policy vs No-DVFS, the extra power of DMSD vs RMSD, and
// the delay ratio RMSD/DMSD, at a set of reference loads on the baseline
// scenario.
func Summary(b *Bundle) []Table { return renderSummary(b.Manifest, b.Results) }

func renderSummary(m *manifest.Manifest, results []nocsim.Result) []Table {
	g := m.Panels[0].Grid
	t := Table{
		ID:    "summary",
		Title: "Headline power-delay trade-off (baseline uniform 5x5)",
		Columns: []string{"rate", "rmsd_power_saving_pct", "dmsd_power_saving_pct",
			"dmsd_extra_power_pct", "rmsd_delay_ratio"},
		Notes: []string{
			calNote(*g.Base.Calibration),
			"paper: RMSD saves 20-50% more power than DMSD; DMSD cuts delay up to ~3x",
		},
	}
	cs := curves(g, results)
	no, rm, dm := cs[0], cs[1], cs[2]
	for i, load := range g.Loads {
		pn, pr, pd := no[i].AvgPowerMW, rm[i].AvgPowerMW, dm[i].AvgPowerMW
		t.AddRow(load,
			100*(1-pr/pn),
			100*(1-pd/pn),
			100*(pd/pr-1),
			ratio(rm[i].AvgDelayNs, dm[i].AvgDelayNs))
	}
	return []Table{t}
}

// Fig7 renders the four synthetic-pattern panels: delay and power vs
// injection rate under tornado, bit-complement, transpose and neighbor.
func Fig7(ctx context.Context, o Options) ([]Table, error) { return Tables(ctx, "fig7", o) }

// Fig8 renders the sensitivity study: delay and power when varying the
// number of VCs, buffers per VC, packet size, and mesh size, under
// uniform traffic.
func Fig8(ctx context.Context, o Options) ([]Table, error) { return Tables(ctx, "fig8", o) }

// Fig10 renders the multimedia panels: delay and power vs application
// speed for the H.264 encoder (4x4) and the VCE (5x5).
func Fig10(ctx context.Context, o Options) ([]Table, error) { return Tables(ctx, "fig10", o) }

// renderComparison renders a comparison figure (fig7/fig8/fig10): one
// delay table and one power table per panel.
func renderComparison(m *manifest.Manifest, results []nocsim.Result) []Table {
	off := m.Offsets()
	var tables []Table
	for pi, panel := range m.Panels {
		ts := comparisonTables(m.Name, panel.Label, panel.Grid, results[off[pi]:off[pi+1]])
		if m.Name == "fig10" {
			for i := range ts {
				ts[i].Columns[0] = "speed"
				ts[i].Notes = append(ts[i].Notes, "speed 1.0 ≡ 75 frames/s in the paper's normalization")
			}
		}
		tables = append(tables, ts...)
	}
	return tables
}

// comparisonTables converts one three-policy panel into a delay table and
// a power table, with the paper-style ratio annotations computed mid-grid.
func comparisonTables(figID, label string, g nocsim.Grid, results []nocsim.Result) []Table {
	cal := *g.Base.Calibration
	del := Table{
		ID:      figID + "_" + label + "_delay",
		Title:   fmt.Sprintf("Packet delay (ns) vs load, %s", label),
		Columns: []string{"rate", "nodvfs_delay_ns", "rmsd_delay_ns", "dmsd_delay_ns"},
		Notes:   []string{calNote(cal)},
	}
	pow := Table{
		ID:      figID + "_" + label + "_power",
		Title:   fmt.Sprintf("Network power (mW) vs load, %s", label),
		Columns: []string{"rate", "nodvfs_mw", "rmsd_mw", "dmsd_mw"},
		Notes:   []string{calNote(cal)},
	}
	cs := curves(g, results)
	no, rm, dm := cs[0], cs[1], cs[2]
	noDelays := make([]float64, len(g.Loads))
	for i, load := range g.Loads {
		del.AddRow(load, no[i].AvgDelayNs, rm[i].AvgDelayNs, dm[i].AvgDelayNs)
		pow.AddRow(load, no[i].AvgPowerMW, rm[i].AvgPowerMW, dm[i].AvgPowerMW)
		noDelays[i] = no[i].AvgDelayNs
	}
	del.Notes = append(del.Notes, kneeNote(g.Loads, noDelays))
	if mid := len(g.Loads) / 2; mid < len(g.Loads) {
		del.Notes = append(del.Notes, fmt.Sprintf("delay ratio RMSD/DMSD at load %.3g: %.2fx",
			g.Loads[mid], ratio(rm[mid].AvgDelayNs, dm[mid].AvgDelayNs)))
		pow.Notes = append(pow.Notes, fmt.Sprintf("power ratios at load %.3g: No-DVFS/RMSD %.2fx, DMSD/RMSD %.2fx",
			g.Loads[mid],
			ratio(no[mid].AvgPowerMW, rm[mid].AvgPowerMW),
			ratio(dm[mid].AvgPowerMW, rm[mid].AvgPowerMW)))
	}
	return []Table{del, pow}
}

// burstSpecs parameterize the beyond-paper arrival-process panels: the
// same mean load redistributed into geometric (MMPP) and heavy-tailed
// (Pareto) burst trains.
var burstSpecs = map[string]*nocsim.SourceSpec{
	"poisson": nil,
	"mmpp":    {Kind: nocsim.SourceMMPP, BurstRatio: 4, BurstLen: 64},
	"pareto":  {Kind: nocsim.SourcePareto, BurstRatio: 4, BurstLen: 64, ParetoAlpha: 1.5},
}

// planBurst builds the beyond-paper workload study: the baseline
// three-policy comparison repeated under Poisson, MMPP and Pareto on-off
// arrivals. All panels deliberately share the Poisson panel's calibration
// and load axis — the question the figure answers is how the same
// calibrated controllers fare when the same offered load arrives in
// bursts, so operating points must not move between panels.
func (o *Options) planBurst(ctx context.Context) ([]manifest.Panel, error) {
	g, err := o.resolveComparison(ctx, o.baseScenario(), nocsim.AllPolicies(), o.nearSaturationLoads)
	if err != nil {
		return nil, err
	}
	labels := []string{"poisson", "mmpp", "pareto"}
	panels := make([]manifest.Panel, len(labels))
	for i, label := range labels {
		pg := g
		pg.Base.Source = burstSpecs[label]
		panels[i] = manifest.Panel{Label: label, Grid: pg}
	}
	return panels, nil
}

// BurstStudy renders the beyond-paper arrival-process panels: delay and
// power under Poisson, MMPP and Pareto on-off arrivals, plus the direct
// MMPP-vs-Poisson delay comparison EXPERIMENTS.md embeds.
func BurstStudy(ctx context.Context, o Options) ([]Table, error) { return Tables(ctx, "burst", o) }

func renderBurst(m *manifest.Manifest, results []nocsim.Result) []Table {
	off := m.Offsets()
	var tables []Table
	panelRes := make([][]nocsim.Result, len(m.Panels))
	for pi, panel := range m.Panels {
		panelRes[pi] = results[off[pi]:off[pi+1]]
		tables = append(tables, comparisonTables(m.Name, panel.Label, panel.Grid, panelRes[pi])...)
	}
	g := m.Panels[0].Grid
	cmp := Table{
		ID:    "burst_compare",
		Title: "Packet delay (ns): Poisson vs MMPP arrivals, same loads and calibration",
		Columns: []string{"rate", "poisson_nodvfs_delay_ns", "mmpp_nodvfs_delay_ns",
			"poisson_rmsd_delay_ns", "mmpp_rmsd_delay_ns",
			"poisson_dmsd_delay_ns", "mmpp_dmsd_delay_ns"},
		Notes: []string{calNote(*g.Base.Calibration),
			"beyond-paper workload: MMPP burst ratio 4, mean ON burst 64 cycles — identical mean load, burstier arrivals"},
	}
	pc := curves(g, panelRes[0])
	mc := curves(m.Panels[1].Grid, panelRes[1])
	for i, load := range g.Loads {
		cmp.AddRow(load,
			pc[0][i].AvgDelayNs, mc[0][i].AvgDelayNs,
			pc[1][i].AvgDelayNs, mc[1][i].AvgDelayNs,
			pc[2][i].AvgDelayNs, mc[2][i].AvgDelayNs)
	}
	tables = append(tables, cmp)
	return tables
}

// PIStep renders the DMSD transient: the frequency and window-delay trace
// of the PI loop from cold start (FMax) at a fixed load, supporting the
// paper's stability and control-period claims (Sec. IV).
func PIStep(ctx context.Context, o Options) ([]Table, error) { return Tables(ctx, "pi", o) }

func renderPI(m *manifest.Manifest, results []nocsim.Result) []Table {
	g := m.Panels[0].Grid
	res := results[0]
	t := Table{
		ID:      "pi_step",
		Title:   "DMSD PI transient from cold start (load = 0.5 x saturation)",
		Columns: []string{"time_us", "freq_ghz", "window_delay_ns"},
		Notes: []string{calNote(*g.Base.Calibration),
			fmt.Sprintf("gains KI=%.4g KP=%.4g, control period %d node cycles",
				dvfs.DefaultKI, dvfs.DefaultKP, g.Base.ControlPeriod)},
	}
	for _, sm := range res.Trace {
		t.AddRow(sm.TimeNs/1e3, sm.FreqHz/1e9, sm.DelayNs)
	}
	return []Table{t}
}

// nearestIdx returns the index of the load closest to x.
func nearestIdx(loads []float64, x float64) int {
	best, bd := -1, math.Inf(1)
	for i, l := range loads {
		if d := math.Abs(l - x); d < bd {
			best, bd = i, d
		}
	}
	return best
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
