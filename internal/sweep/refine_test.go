package sweep

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/nocsim"
	"repro/nocsim/manifest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// refineParent builds a synthetic but fully resolved coarse manifest:
// one baseline-shaped panel with a pinned calibration, three policies
// and the given loads — everything Refine reads, nothing it doesn't.
func refineParent(loads []float64) *manifest.Manifest {
	base := nocsim.Scenario{
		Mesh:    nocsim.DefaultMesh(),
		Pattern: "uniform",
		Seed:    1,
		Calibration: &nocsim.Calibration{
			SaturationRate: 0.40, LambdaMax: 0.36, TargetDelayNs: 120,
		},
	}
	return &manifest.Manifest{
		Name: "baseline", Points: len(loads), Seed: 1,
		Panels: []manifest.Panel{{
			Label: "uniform",
			Grid:  nocsim.Grid{Base: base, Loads: loads, Policies: nocsim.AllPolicies()},
		}},
	}
}

// refineResults fabricates one result per manifest point with the given
// per-load No-DVFS delay curve; the other policies reuse the same shape
// scaled down so every curve agrees on where the signal is.
func refineResults(m *manifest.Manifest, delays []float64, saturated []bool) []nocsim.Result {
	g := m.Panels[0].Grid
	var out []nocsim.Result
	for pol := range g.Policies {
		for li, load := range g.Loads {
			r := nocsim.Result{Scenario: g.Base}
			r.Scenario.Load = load
			r.Scenario.Policy = g.Policies[pol]
			r.AvgDelayNs = delays[li] / float64(pol+1)
			r.AvgLatencyCycles = delays[li]
			r.AvgPowerMW = 10 + load*float64(pol+1)
			if saturated != nil {
				r.Saturated = saturated[li]
			}
			out = append(out, r)
		}
	}
	return out
}

// kneeDelays is a hockey-stick delay curve: flat at 50 ns until the last
// two samples, where it doubles and then blows up.
func kneeDelays(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 50 + float64(i)
	}
	if n >= 2 {
		d[n-2] = 120
		d[n-1] = 400
	}
	return d
}

func TestRefineDeterministicGolden(t *testing.T) {
	parent := refineParent([]float64{0.09, 0.18, 0.27, 0.36})
	results := refineResults(parent, kneeDelays(4), nil)

	child1, err := Refine(parent, results, 9)
	if err != nil {
		t.Fatal(err)
	}
	if child1 == nil {
		t.Fatal("expected a refinement manifest for a kneeing curve")
	}
	child2, err := Refine(parent, results, 9)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.MarshalIndent(child1, "", "  ")
	b2, _ := json.MarshalIndent(child2, "", "  ")
	if !bytes.Equal(b1, b2) {
		t.Fatal("two Refine calls over the same inputs emitted different manifests")
	}

	wantName, err := RefineName(parent)
	if err != nil {
		t.Fatal(err)
	}
	if child1.Name != wantName {
		t.Fatalf("child name %q, want %q", child1.Name, wantName)
	}

	golden := filepath.Join("testdata", "refine_child.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, append(b1, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(b1, '\n'), want) {
		t.Errorf("refinement manifest differs from golden (re-run with -update if the change is intended)\ngot:\n%s", b1)
	}
}

func TestRefineBudgetCapsAddedPoints(t *testing.T) {
	parent := refineParent([]float64{0.06, 0.12, 0.18, 0.24, 0.30, 0.36})
	results := refineResults(parent, kneeDelays(6), nil)

	for _, budget := range []int{3, 6, 100} {
		child, err := Refine(parent, results, budget)
		if err != nil {
			t.Fatal(err)
		}
		if child == nil {
			t.Fatalf("budget %d: no refinement", budget)
		}
		if n := child.NumPoints(); n > budget {
			t.Errorf("budget %d: child has %d points", budget, n)
		}
	}
	// A budget below one load's cost (3 policies) buys nothing.
	child, err := Refine(parent, results, 2)
	if err != nil {
		t.Fatal(err)
	}
	if child != nil {
		t.Errorf("budget 2 (< one load x 3 policies) still added %d points", child.NumPoints())
	}
	if _, err := Refine(parent, results, 0); err == nil {
		t.Error("non-positive budget accepted")
	}
}

func TestRefineFlatCurveAddsNothing(t *testing.T) {
	parent := refineParent([]float64{0.09, 0.18, 0.27, 0.36})
	flat := []float64{100, 100.5, 101, 101.5} // < flatRelRange end to end
	child, err := Refine(parent, refineResults(parent, flat, nil), 100)
	if err != nil {
		t.Fatal(err)
	}
	if child != nil {
		t.Fatalf("flat curves produced a refinement manifest: %+v", child)
	}
}

func TestRefineBracketsKnee(t *testing.T) {
	loads := []float64{0.09, 0.18, 0.27, 0.36}
	parent := refineParent(loads)
	results := refineResults(parent, kneeDelays(4), nil)
	child, err := Refine(parent, results, 6) // two loads' worth
	if err != nil {
		t.Fatal(err)
	}
	if child == nil {
		t.Fatal("no refinement")
	}
	got := child.Panels[0].Grid.Loads
	// kneeDelays(4) doubles at index 2, so the knee-entry interval is
	// [0.18, 0.27] and the exit interval [0.27, 0.36]: their midpoints
	// must be the two refinement loads.
	want := []float64{(0.18 + 0.27) / 2, (0.27 + 0.36) / 2}
	if len(got) != len(want) {
		t.Fatalf("refinement loads %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("refinement loads %v, want %v", got, want)
		}
	}
	// The saturation guard alone (no delay doubling) must also pull
	// refinement toward the knee.
	gentle := []float64{50, 55, 60, 65}
	sat := []bool{false, false, false, true}
	child, err = Refine(parent, refineResults(parent, gentle, sat), 3)
	if err != nil {
		t.Fatal(err)
	}
	if child == nil {
		t.Fatal("saturated tail produced no refinement")
	}
	if got := child.Panels[0].Grid.Loads; len(got) != 1 || got[0] != (0.27+0.36)/2 {
		t.Fatalf("refinement loads %v, want the saturated interval's midpoint", got)
	}
}

func TestMergeRefinedEmptyChildIsByteIdentical(t *testing.T) {
	parent := refineParent([]float64{0.09, 0.18, 0.27, 0.36})
	results := refineResults(parent, kneeDelays(4), nil)

	plain, err := Render(parent, results)
	if err != nil {
		t.Fatal(err)
	}
	m2, r2, err := MergeRefined(parent, results, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Render(m2, r2)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	for i := range plain {
		if err := plain[i].Format(&a); err != nil {
			t.Fatal(err)
		}
	}
	for i := range merged {
		if err := merged[i].Format(&b); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("rendering after an empty merge is not byte-identical to the plain render")
	}
}

func TestMergeRefinedSortedAndDuplicateFree(t *testing.T) {
	parent := refineParent([]float64{0.09, 0.18, 0.27, 0.36})
	presults := refineResults(parent, kneeDelays(4), nil)

	// A child that interleaves new loads AND repeats an existing one
	// (0.18): the duplicate must collapse onto the parent's sample.
	child := refineParent(nil)
	child.Name = "baseline-refine-test"
	child.Panels[0].Grid.Loads = []float64{0.135, 0.18, 0.315}
	cresults := refineResults(child, []float64{70, 9999, 200}, nil)

	merged, mres, err := MergeRefined(parent, presults, child, cresults)
	if err != nil {
		t.Fatal(err)
	}
	loads := merged.Panels[0].Grid.Loads
	want := []float64{0.09, 0.135, 0.18, 0.27, 0.315, 0.36}
	if len(loads) != len(want) {
		t.Fatalf("merged loads %v, want %v", loads, want)
	}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("merged loads %v, want %v", loads, want)
		}
		if loads[i] <= 0 || (i > 0 && loads[i] <= loads[i-1]) {
			t.Fatalf("merged loads not strictly increasing: %v", loads)
		}
	}
	if n := merged.NumPoints(); n != len(mres) {
		t.Fatalf("%d merged results for %d points", len(mres), n)
	}
	// Every merged result must sit at its own load, in point order
	// (policies outer, loads inner) — and the duplicated 0.18 must carry
	// the parent's delay (51 for nodvfs), not the child's 9999 marker.
	g := merged.Panels[0].Grid
	for i, r := range mres {
		if want := g.Loads[i%len(g.Loads)]; r.Scenario.Load != want {
			t.Fatalf("merged result %d at load %v, want %v", i, r.Scenario.Load, want)
		}
	}
	if d := mres[2].AvgDelayNs; d != 51 {
		t.Fatalf("duplicate load kept delay %v, want the parent's 51", d)
	}

	// A child panel the parent doesn't have must be refused.
	stray := refineParent([]float64{0.1})
	stray.Panels[0].Label = "no-such-panel"
	if _, _, err := MergeRefined(parent, presults, stray, refineResults(stray, []float64{1}, nil)); err == nil {
		t.Error("child with an unknown panel accepted")
	}
}
