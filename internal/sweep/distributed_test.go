package sweep

import (
	"context"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/queue"
	"repro/nocsim/manifest"
)

// TestCoordinatorMatchesInProcess is the acceptance test of the
// distributed runner: the same figure computed through a coordinator and
// several workers — one of which leases a point and dies, forcing an
// expiry and re-issue — renders tables byte-identical to the in-process
// manifest run, and the coordinator's journal holds every point exactly
// once.
func TestCoordinatorMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	o := Options{Quick: true, Points: 2, Workers: 2}

	// Reference: the plain in-process path (plan + manifest.Run + render).
	direct, complete, err := Generate(ctx, "period", o, nil, false, 0)
	if err != nil || !complete {
		t.Fatalf("in-process run: complete=%v err=%v", complete, err)
	}

	// Distributed: a journaling coordinator over the same (deterministic)
	// plan, plus workers.
	st, err := manifest.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, have, err := PlanOrResume(ctx, "period", o, st, false)
	if err != nil {
		t.Fatal(err)
	}
	coord := queue.New(queue.Config{LeaseTTL: 300 * time.Millisecond, Store: st})
	if err := coord.Add(m, have); err != nil {
		t.Fatal(err)
	}
	// As cmd/nocsimd does once planning finishes: without sealing,
	// unscoped workers would treat "all registered manifests complete"
	// as "more planning coming" and wait instead of exiting.
	coord.Seal()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &queue.Client{Base: srv.URL}

	// A worker leases the first point and dies without posting: its lease
	// must expire and the point be recomputed by someone else.
	dead, err := client.Lease(ctx, queue.LeaseRequest{Worker: "dead", Name: "period"})
	if err != nil {
		t.Fatal(err)
	}
	if dead.Status != queue.StatusLease {
		t.Fatalf("dead worker's lease = %+v, want a granted point", dead)
	}

	// Two detached workers (as cmd/nocsimd -worker would attach)...
	wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for i := range werrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &queue.Worker{Client: client, Workers: 1, Poll: 20 * time.Millisecond}
			werrs[i] = w.Run(wctx)
		}()
	}
	// ...plus this process joining through the same path cmd/figures
	// -coordinator uses, which also reassembles the tables.
	remote, err := GenerateRemote(ctx, "period", o, client)
	if err != nil {
		t.Fatalf("GenerateRemote: %v", err)
	}
	wg.Wait()
	for i, err := range werrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	if !reflect.DeepEqual(remote, direct) {
		t.Errorf("distributed tables differ from in-process run:\n got %+v\nwant %+v", remote, direct)
	}

	// Exactly-once journal: one line per manifest point, the dead
	// worker's abandoned point included.
	data, err := os.ReadFile(st.PointsPath("period"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != m.NumPoints() {
		t.Errorf("journal holds %d lines for %d points", len(lines), m.NumPoints())
	}
	final, err := st.LoadPoints("period")
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != m.NumPoints() {
		t.Errorf("journal holds %d distinct points, want %d", len(final), m.NumPoints())
	}
	if _, ok := final[dead.Index]; !ok {
		t.Errorf("abandoned point %d never made it into the journal", dead.Index)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
}
