package traffic

import "math/rand"

// newTestRand returns a deterministic RNG for tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
