package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/noc"
	"repro/internal/trace"
)

// Source kinds recognized by SourceConfig. The empty kind is the plain
// Bernoulli (Poisson-like) process the paper uses everywhere.
const (
	// SourceMMPP is a two-state Markov-modulated process: each source
	// alternates between an OFF state (rate 0) and an ON state (rate
	// BurstRatio times the nominal rate), with geometrically distributed
	// sojourn times. The stationary ON fraction is 1/BurstRatio, so the
	// long-run mean rate stays exactly the scenario's load.
	SourceMMPP = "mmpp"
	// SourcePareto is the same on-off alternation with Pareto-tailed
	// sojourn times (tail index ParetoAlpha in (1,2]), producing
	// self-similar burst trains with the same mean sojourns as the MMPP
	// source.
	SourcePareto = "pareto"
)

// SourceConfig selects and parameterizes a bursty packet-generation
// process layered under a destination pattern. The zero value means the
// default Bernoulli process.
type SourceConfig struct {
	// Kind is "" (Bernoulli), SourceMMPP or SourcePareto.
	Kind string
	// BurstRatio is the ON-state rate multiplier β > 1; the source is ON
	// a 1/β fraction of the time, preserving the mean rate.
	BurstRatio float64
	// BurstLen is the mean ON sojourn in node cycles (≥ 1). The mean OFF
	// sojourn is BurstLen·(BurstRatio−1), fixing the ON fraction at 1/β.
	BurstLen float64
	// ParetoAlpha is the Pareto tail index in (1, 2] (heavier tails as it
	// approaches 1); used only by SourcePareto.
	ParetoAlpha float64
}

// Validate checks the parameter ranges; the zero value is valid.
func (s SourceConfig) Validate() error {
	switch s.Kind {
	case "":
		return nil
	case SourceMMPP, SourcePareto:
	default:
		return fmt.Errorf("traffic: unknown source kind %q", s.Kind)
	}
	if !(s.BurstRatio > 1) {
		return fmt.Errorf("traffic: burst ratio %g must exceed 1", s.BurstRatio)
	}
	if !(s.BurstLen >= 1) {
		return fmt.Errorf("traffic: burst length %g must be at least 1 cycle", s.BurstLen)
	}
	if s.Kind == SourcePareto && !(s.ParetoAlpha > 1 && s.ParetoAlpha <= 2) {
		return fmt.Errorf("traffic: pareto alpha %g outside (1, 2]", s.ParetoAlpha)
	}
	return nil
}

// burstState is the per-node on-off modulation state.
type burstState struct {
	cfg SourceConfig
	// on[s] reports whether source s is in its ON state.
	on []bool
	// left[s] is the number of node cycles remaining in s's sojourn.
	left []int64
}

// offLen returns the mean OFF sojourn in cycles.
func (b *burstState) offLen() float64 { return b.cfg.BurstLen * (b.cfg.BurstRatio - 1) }

// sojourn draws the next sojourn length (≥ 1 cycle) for the given state.
func (b *burstState) sojourn(on bool, rng *rand.Rand) int64 {
	mean := b.cfg.BurstLen
	if !on {
		mean = b.offLen()
	}
	if b.cfg.Kind == SourcePareto {
		// Pareto with scale xm = mean·(α−1)/α has mean exactly `mean`.
		alpha := b.cfg.ParetoAlpha
		xm := mean * (alpha - 1) / alpha
		u := 1 - rng.Float64() // (0, 1]
		d := int64(xm/math.Pow(u, 1/alpha) + 0.5)
		if d < 1 {
			d = 1
		}
		return d
	}
	// Geometric with success probability 1/mean has mean `mean`.
	p := 1 / mean
	if p >= 1 {
		return 1
	}
	u := 1 - rng.Float64() // (0, 1]
	d := int64(math.Floor(math.Log(u)/math.Log(1-p))) + 1
	if d < 1 {
		d = 1
	}
	return d
}

// SetSource configures the injector's per-node on-off modulation. It
// must be called before the first NodeCycle; each node is started in its
// stationary state (ON with probability 1/β) using the node's own RNG,
// so a sweep stays deterministic for any worker count.
func (inj *Injector) SetSource(src SourceConfig) error {
	if err := src.Validate(); err != nil {
		return err
	}
	if src.Kind == "" {
		inj.burst = nil
		return nil
	}
	if inj.replay != nil {
		return fmt.Errorf("traffic: trace replay cannot be combined with a %s source", src.Kind)
	}
	for i, p := range inj.probs {
		if p*src.BurstRatio > 1 {
			return fmt.Errorf("traffic: node %d ON rate %g exceeds one packet per cycle (burst ratio %g)",
				i, inj.rates[i]*src.BurstRatio, src.BurstRatio)
		}
	}
	b := &burstState{
		cfg:  src,
		on:   make([]bool, len(inj.probs)),
		left: make([]int64, len(inj.probs)),
	}
	for i := range inj.probs {
		if inj.probs[i] == 0 {
			continue
		}
		rng := inj.rngs[i]
		b.on[i] = rng.Float64() < 1/src.BurstRatio
		b.left[i] = b.sojourn(b.on[i], rng)
	}
	inj.burst = b
	return nil
}

// Source returns the injector's source configuration (zero value for
// plain Bernoulli sources).
func (inj *Injector) Source() SourceConfig {
	if inj.burst == nil {
		return SourceConfig{}
	}
	return inj.burst.cfg
}

// burstCycle is NodeCycle for on-off modulated sources: advance every
// active node's state machine, then trial at the ON rate while ON.
func (inj *Injector) burstCycle(net *noc.Network, nowNs float64, cycle int64) {
	b := inj.burst
	beta := b.cfg.BurstRatio
	for s := range inj.probs {
		p := inj.probs[s]
		if p == 0 {
			continue
		}
		rng := inj.rngs[s]
		b.left[s]--
		if b.left[s] <= 0 {
			b.on[s] = !b.on[s]
			b.left[s] = b.sojourn(b.on[s], rng)
		}
		if !b.on[s] {
			continue
		}
		if rng.Float64() >= p*beta {
			continue
		}
		inj.emit(net, nowNs, cycle, noc.NodeID(s), rng)
	}
}

// OnFraction returns the fraction of active nodes currently in the ON
// state (1 for Bernoulli sources); exposed for tests.
func (inj *Injector) OnFraction() float64 {
	if inj.burst == nil {
		return 1
	}
	active, on := 0, 0
	for s := range inj.probs {
		if inj.probs[s] == 0 {
			continue
		}
		active++
		if inj.burst.on[s] {
			on++
		}
	}
	if active == 0 {
		return 1
	}
	return float64(on) / float64(active)
}

// StartCapture attaches an injection-trace sink: every generated packet
// is recorded as a trace event, and the trace header is stamped with the
// injector's mesh shape and packet size. The same sink must not be
// shared across concurrent runs.
func (inj *Injector) StartCapture(t *trace.Injection) {
	t.Width = inj.cfg.Width
	t.Height = inj.cfg.Height
	t.PacketSize = inj.cfg.PacketSize
	t.Cycles = 0
	t.Events = t.Events[:0]
	inj.capture = t
}

// replayState holds a trace being replayed.
type replayState struct {
	events []trace.InjectionEvent
	pos    int
}

// NewReplayInjector builds an injector that re-injects the recorded
// events of tr at their recorded node cycles, in recorded order — no
// randomness is consumed, so a replay is bit-identical to its capture
// run. Runs longer than the trace simply stop injecting when the events
// are exhausted. Per-node rates and the destination pattern are derived
// from the trace so rate monitors and capacity estimates keep working.
func NewReplayInjector(cfg noc.Config, tr *trace.Injection) (*Injector, error) {
	if tr == nil {
		return nil, fmt.Errorf("traffic: nil injection trace")
	}
	if err := tr.Validate(cfg); err != nil {
		return nil, err
	}
	m := tr.Matrix()
	pattern, err := NewMatrixPattern("trace", cfg, m)
	if err != nil {
		return nil, err
	}
	rates := make([]float64, cfg.Nodes())
	for _, e := range tr.Events {
		rates[e.Src] += float64(cfg.PacketSize)
	}
	for i := range rates {
		rates[i] /= float64(tr.Cycles)
	}
	inj := &Injector{
		cfg:     cfg,
		pattern: pattern,
		rates:   rates,
		probs:   make([]float64, cfg.Nodes()),
		replay:  &replayState{events: tr.Events},
	}
	return inj, nil
}

// Replaying reports whether the injector replays a recorded trace.
func (inj *Injector) Replaying() bool { return inj.replay != nil }

// replayCycle is NodeCycle for trace replay.
func (inj *Injector) replayCycle(net *noc.Network, nowNs float64, cycle int64) {
	r := inj.replay
	for r.pos < len(r.events) && r.events[r.pos].Cycle == cycle {
		e := r.events[r.pos]
		r.pos++
		net.NewPacket(e.Src, e.Dst, nowNs, e.Dim)
		inj.generatedFlits += int64(inj.cfg.PacketSize)
	}
}
