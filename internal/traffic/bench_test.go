package traffic

import (
	"math/rand"
	"testing"

	"repro/internal/noc"
)

// BenchmarkInjectorNodeCycleDraws measures the injector's per-node-cycle
// fixed cost — one Bernoulli draw per node — with a rate so small that
// packets are (essentially) never generated. This is the floor every
// simulated node cycle pays regardless of load.
func BenchmarkInjectorNodeCycleDraws(b *testing.B) {
	cfg := noc.DefaultConfig()
	inj, err := NewInjector(cfg, NewUniform(cfg), 1e-12, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := noc.NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.NodeCycle(net, 0)
	}
}

// BenchmarkInjectorSteadyState measures injection plus network stepping at
// a moderate load, with the network draining what the injector offers so
// memory stays bounded.
func BenchmarkInjectorSteadyState(b *testing.B) {
	cfg := noc.DefaultConfig()
	inj, err := NewInjector(cfg, NewUniform(cfg), 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := noc.NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.NodeCycle(net, 0)
		net.Step()
	}
}

// benchPattern measures one destination draw.
func benchPattern(b *testing.B, p Pattern) {
	rng := rand.New(rand.NewSource(1))
	cfg := noc.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var sink noc.NodeID
	for i := 0; i < b.N; i++ {
		sink += p.Dest(noc.NodeID(i%cfg.Nodes()), rng)
	}
	_ = sink
}

func BenchmarkPatternUniformDest(b *testing.B) {
	benchPattern(b, NewUniform(noc.DefaultConfig()))
}

func BenchmarkPatternTornadoDest(b *testing.B) {
	benchPattern(b, NewTornado(noc.DefaultConfig()))
}

func BenchmarkPatternTransposeDest(b *testing.B) {
	p, err := NewTranspose(noc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	benchPattern(b, p)
}
