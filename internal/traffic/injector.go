package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/noc"
	"repro/internal/trace"
)

// Injector drives packet generation for every node of a network. It lives
// in the *node* clock domain: the engine tells it how many whole node
// cycles elapsed, and per node cycle each source performs one Bernoulli
// trial with probability rate/packetSize of generating a packet. Under
// DVFS the network clock slows down while the injector keeps its pace,
// which is exactly how the network injection rate λnoc = λnode·Fnode/Fnoc
// of Eq. (1) arises.
type Injector struct {
	cfg     noc.Config
	pattern Pattern
	// rates[s] is node s's injection rate in flits per node clock cycle.
	rates []float64
	// probs[s] is the per-node-cycle packet generation probability.
	probs []float64
	rngs  []*rand.Rand

	// generatedFlits counts flits offered since the last WindowReset; the
	// RMSD controller's rate monitor reads it.
	generatedFlits int64
	// o1turn notes whether destinations need a random dimension order.
	o1turn bool

	// cycle counts node cycles stepped so far (the injection timeline of
	// captured traces).
	cycle int64
	// burst, when non-nil, modulates every source with an on-off state
	// machine (MMPP or Pareto; see source.go).
	burst *burstState
	// capture, when non-nil, records every generated packet as an
	// injection-trace event.
	capture *trace.Injection
	// replay, when non-nil, re-injects recorded events instead of
	// generating packets.
	replay *replayState
}

// NewInjector builds an injector offering rate flits per node per node
// cycle at every node, with destinations from pattern. Each node gets an
// independent deterministic RNG derived from seed.
func NewInjector(cfg noc.Config, pattern Pattern, rate float64, seed int64) (*Injector, error) {
	if rate < 0 {
		return nil, fmt.Errorf("traffic: negative injection rate %g", rate)
	}
	rates := make([]float64, cfg.Nodes())
	for i := range rates {
		rates[i] = rate
	}
	return NewInjectorRates(cfg, pattern, rates, seed)
}

// NewInjectorRates builds an injector with a per-node rate vector (flits
// per node per node cycle), used by the multimedia workloads where nodes
// inject at very different rates.
func NewInjectorRates(cfg noc.Config, pattern Pattern, rates []float64, seed int64) (*Injector, error) {
	if len(rates) != cfg.Nodes() {
		return nil, fmt.Errorf("traffic: %d rates for %d nodes", len(rates), cfg.Nodes())
	}
	inj := &Injector{
		cfg:     cfg,
		pattern: pattern,
		rates:   append([]float64(nil), rates...),
		probs:   make([]float64, len(rates)),
		rngs:    make([]*rand.Rand, len(rates)),
		o1turn:  cfg.Routing == noc.RoutingO1TURN,
	}
	for i, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("traffic: negative rate %g at node %d", r, i)
		}
		p := r / float64(cfg.PacketSize)
		if p > 1 {
			return nil, fmt.Errorf("traffic: node %d rate %g exceeds one packet per cycle", i, r)
		}
		inj.probs[i] = p
		inj.rngs[i] = rand.New(rand.NewSource(seed + int64(i)*7919))
	}
	return inj, nil
}

// Pattern returns the injector's destination pattern.
func (inj *Injector) Pattern() Pattern { return inj.pattern }

// MeanRate returns the average offered rate across nodes (flits per node
// per node cycle).
func (inj *Injector) MeanRate() float64 {
	sum := 0.0
	for _, r := range inj.rates {
		sum += r
	}
	return sum / float64(len(inj.rates))
}

// NodeCycle performs one node-clock cycle of packet generation for every
// node, queueing new packets on net. nowNs is the current simulated time
// used to timestamp packets.
func (inj *Injector) NodeCycle(net *noc.Network, nowNs float64) {
	c := inj.cycle
	inj.cycle++
	switch {
	case inj.replay != nil:
		inj.replayCycle(net, nowNs, c)
	case inj.burst != nil:
		inj.burstCycle(net, nowNs, c)
	default:
		for s := range inj.probs {
			p := inj.probs[s]
			if p == 0 {
				continue
			}
			rng := inj.rngs[s]
			if rng.Float64() >= p {
				continue
			}
			inj.emit(net, nowNs, c, noc.NodeID(s), rng)
		}
	}
	if inj.capture != nil {
		inj.capture.Cycles = inj.cycle
	}
}

// emit generates one packet at src, drawing the destination (and O1TURN
// dimension) from the node's RNG, and records it when a capture sink is
// attached.
func (inj *Injector) emit(net *noc.Network, nowNs float64, cycle int64, src noc.NodeID, rng *rand.Rand) {
	dst := inj.pattern.Dest(src, rng)
	var dim uint8
	if inj.o1turn {
		dim = uint8(rng.Intn(2))
	}
	net.NewPacket(src, dst, nowNs, dim)
	inj.generatedFlits += int64(inj.cfg.PacketSize)
	if inj.capture != nil {
		inj.capture.Events = append(inj.capture.Events, trace.InjectionEvent{
			Cycle: cycle, Src: src, Dst: dst, Dim: dim,
		})
	}
}

// WindowFlits returns the number of flits offered since the last
// WindowReset.
func (inj *Injector) WindowFlits() int64 { return inj.generatedFlits }

// WindowReset clears the offered-flit window counter.
func (inj *Injector) WindowReset() { inj.generatedFlits = 0 }

// NormalizedMatrix returns the traffic matrix weighted by the per-node
// rates, scaled so rows of active nodes keep their destination mix; it is
// used for theoretical capacity estimates. Entry [s][d] carries
// rate_s · frac_{s→d} / meanRate, so a uniform-rate injector reduces to
// the plain pattern matrix.
func (inj *Injector) NormalizedMatrix() [][]float64 {
	base := Matrix(inj.pattern, inj.cfg)
	mean := inj.MeanRate()
	if mean == 0 {
		return base
	}
	n := inj.cfg.Nodes()
	m := make([][]float64, n)
	for s := 0; s < n; s++ {
		m[s] = make([]float64, n)
		for d := 0; d < n; d++ {
			m[s][d] = base[s][d] * inj.rates[s] / mean
		}
	}
	return m
}
