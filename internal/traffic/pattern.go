// Package traffic generates the workloads of the paper: Bernoulli
// injection processes in the node clock domain, the synthetic destination
// patterns of Sec. V (uniform, tornado, bit-complement, transpose,
// neighbor, plus bit-reverse, shuffle and hotspot as extensions), and
// arbitrary traffic matrices for the multimedia applications of Sec. VI.
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/noc"
)

// Pattern maps a source node to a destination for each generated packet.
// Implementations must be deterministic given the supplied rng.
type Pattern interface {
	// Name returns the pattern's short name (e.g. "tornado").
	Name() string
	// Dest picks the destination for a packet injected at src. It must
	// never return src itself.
	Dest(src noc.NodeID, rng *rand.Rand) noc.NodeID
}

// Uniform sends each packet to a destination chosen uniformly at random
// among all other nodes.
type Uniform struct {
	cfg noc.Config
}

// NewUniform returns the uniform-random pattern for cfg's mesh.
func NewUniform(cfg noc.Config) Uniform { return Uniform{cfg: cfg} }

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u Uniform) Dest(src noc.NodeID, rng *rand.Rand) noc.NodeID {
	n := u.cfg.Nodes()
	d := rng.Intn(n - 1)
	if d >= int(src) {
		d++
	}
	return noc.NodeID(d)
}

// permutationPattern is a deterministic pattern defined by a coordinate
// permutation. Sources whose image equals themselves fall back to the
// uniform pattern so that every node still injects (matching Booksim's
// handling of fixed points).
type permutationPattern struct {
	name string
	cfg  noc.Config
	dst  []noc.NodeID
	uni  Uniform
}

// Name implements Pattern.
func (p *permutationPattern) Name() string { return p.name }

// Dest implements Pattern.
func (p *permutationPattern) Dest(src noc.NodeID, rng *rand.Rand) noc.NodeID {
	d := p.dst[src]
	if d == src {
		return p.uni.Dest(src, rng)
	}
	return d
}

// Image returns the permutation image of src (possibly src itself for
// fixed points); exposed for analysis and tests.
func (p *permutationPattern) Image(src noc.NodeID) noc.NodeID { return p.dst[src] }

func newPermutation(name string, cfg noc.Config, f func(x, y int) (int, int)) *permutationPattern {
	p := &permutationPattern{name: name, cfg: cfg, uni: NewUniform(cfg)}
	p.dst = make([]noc.NodeID, cfg.Nodes())
	for id := 0; id < cfg.Nodes(); id++ {
		x, y := cfg.Coord(noc.NodeID(id))
		dx, dy := f(x, y)
		p.dst[id] = cfg.Node(dx, dy)
	}
	return p
}

// NewTornado returns the tornado pattern: each node sends halfway around
// each dimension, dst = ((x + ceil(k/2) - 1) mod kx, (y + ceil(k/2) - 1)
// mod ky). On a mesh (no wraparound links) this stresses the central
// channels heavily.
func NewTornado(cfg noc.Config) Pattern {
	return newPermutation("tornado", cfg, func(x, y int) (int, int) {
		return (x + (cfg.Width+1)/2 - 1) % cfg.Width, (y + (cfg.Height+1)/2 - 1) % cfg.Height
	})
}

// NewBitComplement returns the bit-complement pattern, realized on
// arbitrary mesh sizes as the coordinate complement dst = (kx-1-x, ky-1-y).
func NewBitComplement(cfg noc.Config) Pattern {
	return newPermutation("bitcomp", cfg, func(x, y int) (int, int) {
		return cfg.Width - 1 - x, cfg.Height - 1 - y
	})
}

// NewTranspose returns the transpose pattern dst = (y, x). It requires a
// square mesh.
func NewTranspose(cfg noc.Config) (Pattern, error) {
	if cfg.Width != cfg.Height {
		return nil, fmt.Errorf("traffic: transpose needs a square mesh, got %dx%d", cfg.Width, cfg.Height)
	}
	return newPermutation("transpose", cfg, func(x, y int) (int, int) {
		return y, x
	}), nil
}

// NewNeighbor returns the nearest-neighbor pattern dst = ((x+1) mod kx, y).
func NewNeighbor(cfg noc.Config) Pattern {
	return newPermutation("neighbor", cfg, func(x, y int) (int, int) {
		return (x + 1) % cfg.Width, y
	})
}

// NewBitReverse returns the bit-reverse pattern on the node index; the
// node count must be a power of two (e.g. a 4x4 or 8x8 mesh).
func NewBitReverse(cfg noc.Config) (Pattern, error) {
	n := cfg.Nodes()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		return nil, fmt.Errorf("traffic: bitrev needs a power-of-two node count, got %d", n)
	}
	p := &permutationPattern{name: "bitrev", cfg: cfg, uni: NewUniform(cfg)}
	p.dst = make([]noc.NodeID, n)
	for id := 0; id < n; id++ {
		rev := 0
		for b := 0; b < bits; b++ {
			if id&(1<<b) != 0 {
				rev |= 1 << (bits - 1 - b)
			}
		}
		p.dst[id] = noc.NodeID(rev)
	}
	return p, nil
}

// NewShuffle returns the perfect-shuffle pattern dst = rotate-left(src) on
// the node index bits; the node count must be a power of two.
func NewShuffle(cfg noc.Config) (Pattern, error) {
	n := cfg.Nodes()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		return nil, fmt.Errorf("traffic: shuffle needs a power-of-two node count, got %d", n)
	}
	p := &permutationPattern{name: "shuffle", cfg: cfg, uni: NewUniform(cfg)}
	p.dst = make([]noc.NodeID, n)
	for id := 0; id < n; id++ {
		p.dst[id] = noc.NodeID(((id << 1) | (id >> (bits - 1))) & (n - 1))
	}
	return p, nil
}

// Hotspot sends a fraction of traffic to a designated hotspot node and the
// remainder uniformly; an extension beyond the paper's patterns.
type Hotspot struct {
	cfg      noc.Config
	hot      noc.NodeID
	fraction float64
	uni      Uniform
}

// NewHotspot returns a hotspot pattern directing fraction of each node's
// packets at node hot.
func NewHotspot(cfg noc.Config, hot noc.NodeID, fraction float64) (Pattern, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %g outside [0,1]", fraction)
	}
	if int(hot) < 0 || int(hot) >= cfg.Nodes() {
		return nil, fmt.Errorf("traffic: hotspot node %d outside mesh", hot)
	}
	return Hotspot{cfg: cfg, hot: hot, fraction: fraction, uni: NewUniform(cfg)}, nil
}

// Name implements Pattern.
func (Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (h Hotspot) Dest(src noc.NodeID, rng *rand.Rand) noc.NodeID {
	if src != h.hot && rng.Float64() < h.fraction {
		return h.hot
	}
	return h.uni.Dest(src, rng)
}

// ByName constructs one of the paper's named patterns for cfg. Recognized
// names: uniform, tornado, bitcomp, transpose, neighbor, bitrev, shuffle.
func ByName(name string, cfg noc.Config) (Pattern, error) {
	switch name {
	case "uniform":
		return NewUniform(cfg), nil
	case "tornado":
		return NewTornado(cfg), nil
	case "bitcomp":
		return NewBitComplement(cfg), nil
	case "transpose":
		return NewTranspose(cfg)
	case "neighbor":
		return NewNeighbor(cfg), nil
	case "bitrev":
		return NewBitReverse(cfg)
	case "shuffle":
		return NewShuffle(cfg)
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// PaperPatterns lists the four synthetic patterns of Fig. 7 in paper order.
func PaperPatterns() []string {
	return []string{"tornado", "bitcomp", "transpose", "neighbor"}
}

// Matrix returns the normalized traffic matrix induced by the pattern:
// m[s][d] is the fraction of s's packets destined to d. Random patterns
// are expanded analytically (uniform rows); deterministic permutations get
// a single 1 per row (or a uniform row for fixed points).
func Matrix(p Pattern, cfg noc.Config) [][]float64 {
	n := cfg.Nodes()
	m := make([][]float64, n)
	uniformRow := func(s int) {
		for d := 0; d < n; d++ {
			if d != s {
				m[s][d] = 1 / float64(n-1)
			}
		}
	}
	for s := 0; s < n; s++ {
		m[s] = make([]float64, n)
		switch pt := p.(type) {
		case Uniform:
			uniformRow(s)
		case *permutationPattern:
			d := pt.Image(noc.NodeID(s))
			if d == noc.NodeID(s) {
				uniformRow(s)
			} else {
				m[s][d] = 1
			}
		case *MatrixPattern:
			// Expand the stored cumulative distribution exactly; silent
			// sources keep an all-zero row (they inject at rate 0).
			prev := 0.0
			for i, c := range pt.cum[s] {
				m[s][pt.dst[s][i]] = c - prev
				prev = c
			}
		case Hotspot:
			if noc.NodeID(s) != pt.hot {
				m[s][pt.hot] += pt.fraction
			}
			rem := 1 - m[s][pt.hot]
			for d := 0; d < n; d++ {
				if d != s {
					m[s][d] += rem / float64(n-1)
				}
			}
			// Remove the uniform share that would land on s itself: the
			// uniform fallback never targets src, so the row already sums
			// to 1 by construction above.
		default:
			// Generic fallback: estimate by sampling.
			rng := rand.New(rand.NewSource(1))
			const samples = 4096
			for i := 0; i < samples; i++ {
				m[s][p.Dest(noc.NodeID(s), rng)] += 1.0 / samples
			}
		}
	}
	return m
}
