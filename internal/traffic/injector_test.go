package traffic

import (
	"math"
	"testing"

	"repro/internal/noc"
)

func TestInjectorOfferedRateMatchesTarget(t *testing.T) {
	cfg := cfg5()
	net, err := noc.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rate = 0.3
	inj, err := NewInjector(cfg, NewUniform(cfg), rate, 42)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 20000
	for c := 0; c < cycles; c++ {
		inj.NodeCycle(net, 0)
	}
	got := float64(inj.WindowFlits()) / float64(cycles) / float64(cfg.Nodes())
	if math.Abs(got-rate) > rate*0.05 {
		t.Errorf("offered rate %.4f, want %.4f ± 5%%", got, rate)
	}
}

func TestInjectorWindowReset(t *testing.T) {
	cfg := cfg5()
	net, _ := noc.NewNetwork(cfg)
	inj, err := NewInjector(cfg, NewUniform(cfg), 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 100; c++ {
		inj.NodeCycle(net, 0)
	}
	if inj.WindowFlits() == 0 {
		t.Fatal("no flits offered")
	}
	inj.WindowReset()
	if inj.WindowFlits() != 0 {
		t.Error("WindowReset did not clear the counter")
	}
}

func TestInjectorValidation(t *testing.T) {
	cfg := cfg5()
	if _, err := NewInjector(cfg, NewUniform(cfg), -0.1, 1); err == nil {
		t.Error("accepted negative rate")
	}
	if _, err := NewInjector(cfg, NewUniform(cfg), float64(cfg.PacketSize)+1, 1); err == nil {
		t.Error("accepted rate above one packet per cycle")
	}
	if _, err := NewInjectorRates(cfg, NewUniform(cfg), []float64{0.1}, 1); err == nil {
		t.Error("accepted wrong-length rate vector")
	}
	if _, err := NewInjectorRates(cfg, NewUniform(cfg), make([]float64, 25), 1); err != nil {
		t.Errorf("rejected all-zero rates: %v", err)
	}
}

func TestInjectorDeterministicAcrossRuns(t *testing.T) {
	cfg := cfg5()
	run := func() int64 {
		net, _ := noc.NewNetwork(cfg)
		inj, _ := NewInjector(cfg, NewUniform(cfg), 0.2, 99)
		for c := 0; c < 5000; c++ {
			inj.NodeCycle(net, 0)
		}
		return inj.WindowFlits()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced %d then %d flits", a, b)
	}
}

func TestInjectorMeanRate(t *testing.T) {
	cfg := cfg5()
	rates := make([]float64, 25)
	rates[0], rates[1] = 0.5, 0.25
	inj, err := NewInjectorRates(cfg, NewUniform(cfg), rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := inj.MeanRate(), 0.75/25; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRate = %g, want %g", got, want)
	}
}

func TestInjectorPerNodeRates(t *testing.T) {
	cfg := cfg5()
	cfg.PacketSize = 1 // one flit per packet: flits == packets
	rates := make([]float64, 25)
	rates[3] = 0.4
	net, _ := noc.NewNetwork(cfg)
	inj, err := NewInjectorRates(cfg, NewUniform(cfg), rates, 11)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 20000
	for c := 0; c < cycles; c++ {
		inj.NodeCycle(net, 0)
	}
	got := float64(inj.WindowFlits()) / cycles
	if math.Abs(got-0.4) > 0.05 {
		t.Errorf("node-3-only injector offered %.3f flits/cycle, want 0.4", got)
	}
}

func TestNormalizedMatrixUniformRates(t *testing.T) {
	cfg := cfg5()
	inj, err := NewInjector(cfg, NewNeighbor(cfg), 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := inj.NormalizedMatrix()
	base := Matrix(NewNeighbor(cfg), cfg)
	for s := range m {
		for d := range m[s] {
			if math.Abs(m[s][d]-base[s][d]) > 1e-12 {
				t.Fatalf("uniform-rate normalized matrix differs at [%d][%d]", s, d)
			}
		}
	}
}

func TestMatrixPatternDistribution(t *testing.T) {
	cfg := cfg5()
	w := make([][]float64, 25)
	for i := range w {
		w[i] = make([]float64, 25)
	}
	w[0][1] = 3
	w[0][2] = 1
	mp, err := NewMatrixPattern("test", cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Name() != "test" {
		t.Errorf("Name() = %q", mp.Name())
	}
	rng := newTestRand(6)
	n1, n2 := 0, 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		switch mp.Dest(0, rng) {
		case 1:
			n1++
		case 2:
			n2++
		default:
			t.Fatal("unexpected destination")
		}
	}
	if ratio := float64(n1) / float64(n2); math.Abs(ratio-3) > 0.3 {
		t.Errorf("destination ratio %.2f, want ~3", ratio)
	}
}

func TestMatrixPatternValidation(t *testing.T) {
	cfg := cfg5()
	mk := func() [][]float64 {
		w := make([][]float64, 25)
		for i := range w {
			w[i] = make([]float64, 25)
		}
		return w
	}
	w := mk()
	w[0][0] = 1
	if _, err := NewMatrixPattern("x", cfg, w); err == nil {
		t.Error("accepted self traffic")
	}
	w = mk()
	w[1][2] = -1
	if _, err := NewMatrixPattern("x", cfg, w); err == nil {
		t.Error("accepted negative weight")
	}
	if _, err := NewMatrixPattern("x", cfg, mk()[:10]); err == nil {
		t.Error("accepted short matrix")
	}
	w = mk()
	w[0] = w[0][:10]
	if _, err := NewMatrixPattern("x", cfg, w); err == nil {
		t.Error("accepted short row")
	}
}

func TestMatrixPatternSilentSourcePanics(t *testing.T) {
	cfg := cfg5()
	w := make([][]float64, 25)
	for i := range w {
		w[i] = make([]float64, 25)
	}
	w[0][1] = 1
	mp, err := NewMatrixPattern("x", cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dest for silent source did not panic")
		}
	}()
	mp.Dest(5, newTestRand(1))
}

func TestRowRates(t *testing.T) {
	w := [][]float64{
		{0, 2, 2}, // sum 4
		{1, 0, 1}, // sum 2
		{0, 0, 0}, // silent
	}
	rates, err := RowRates(w)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-12 {
			t.Errorf("rates[%d] = %g, want %g", i, rates[i], want[i])
		}
	}
}

func TestRowRatesNegative(t *testing.T) {
	if _, err := RowRates([][]float64{{0, -1}}); err == nil {
		t.Error("accepted negative weight")
	}
}

func TestRowRatesAllZero(t *testing.T) {
	rates, err := RowRates([][]float64{{0, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rates {
		if r != 0 {
			t.Error("all-zero matrix should give zero rates")
		}
	}
}
