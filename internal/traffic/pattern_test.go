package traffic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/noc"
)

func cfg5() noc.Config {
	c := noc.DefaultConfig()
	return c
}

func TestUniformNeverSelf(t *testing.T) {
	u := NewUniform(cfg5())
	rng := rand.New(rand.NewSource(1))
	for src := 0; src < 25; src++ {
		for i := 0; i < 200; i++ {
			if d := u.Dest(noc.NodeID(src), rng); d == noc.NodeID(src) {
				t.Fatalf("uniform returned src %d", src)
			}
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	u := NewUniform(cfg5())
	rng := rand.New(rand.NewSource(2))
	seen := make(map[noc.NodeID]bool)
	for i := 0; i < 5000; i++ {
		seen[u.Dest(0, rng)] = true
	}
	if len(seen) != 24 {
		t.Errorf("uniform from node 0 reached %d destinations, want 24", len(seen))
	}
}

func TestUniformApproximatelyUniform(t *testing.T) {
	u := NewUniform(cfg5())
	rng := rand.New(rand.NewSource(3))
	counts := make(map[noc.NodeID]int)
	const trials = 48000
	for i := 0; i < trials; i++ {
		counts[u.Dest(12, rng)]++
	}
	want := float64(trials) / 24
	for d, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Errorf("destination %d drawn %d times, want ~%.0f", d, c, want)
		}
	}
}

func TestTornadoDefinition(t *testing.T) {
	// On a 5x5 mesh the tornado offset is ceil(5/2)-1 = 2 in each
	// dimension.
	cfg := cfg5()
	p := NewTornado(cfg).(*permutationPattern)
	tests := []struct{ src, want noc.NodeID }{
		{cfg.Node(0, 0), cfg.Node(2, 2)},
		{cfg.Node(4, 4), cfg.Node(1, 1)},
		{cfg.Node(3, 0), cfg.Node(0, 2)},
	}
	for _, tc := range tests {
		if got := p.Image(tc.src); got != tc.want {
			t.Errorf("tornado(%d) = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestBitComplementDefinition(t *testing.T) {
	cfg := cfg5()
	p := NewBitComplement(cfg).(*permutationPattern)
	tests := []struct{ src, want noc.NodeID }{
		{cfg.Node(0, 0), cfg.Node(4, 4)},
		{cfg.Node(4, 4), cfg.Node(0, 0)},
		{cfg.Node(1, 3), cfg.Node(3, 1)},
		{cfg.Node(2, 2), cfg.Node(2, 2)}, // centre is a fixed point on odd meshes
	}
	for _, tc := range tests {
		if got := p.Image(tc.src); got != tc.want {
			t.Errorf("bitcomp(%d) = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestTransposeDefinition(t *testing.T) {
	cfg := cfg5()
	pat, err := NewTranspose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pat.(*permutationPattern)
	if got := p.Image(cfg.Node(1, 3)); got != cfg.Node(3, 1) {
		t.Errorf("transpose(1,3) = %d, want node(3,1)", got)
	}
	if got := p.Image(cfg.Node(2, 2)); got != cfg.Node(2, 2) {
		t.Errorf("transpose diag should be fixed point")
	}
}

func TestTransposeRequiresSquare(t *testing.T) {
	cfg := cfg5()
	cfg.Width = 4
	if _, err := NewTranspose(cfg); err == nil {
		t.Error("transpose accepted non-square mesh")
	}
}

func TestNeighborDefinition(t *testing.T) {
	cfg := cfg5()
	p := NewNeighbor(cfg).(*permutationPattern)
	if got := p.Image(cfg.Node(0, 2)); got != cfg.Node(1, 2) {
		t.Errorf("neighbor(0,2) = %d", got)
	}
	if got := p.Image(cfg.Node(4, 2)); got != cfg.Node(0, 2) {
		t.Errorf("neighbor wraps: got %d", got)
	}
}

func TestPermutationPatternsAreBijections(t *testing.T) {
	cfg := cfg5()
	transpose, _ := NewTranspose(cfg)
	for _, pat := range []Pattern{NewTornado(cfg), NewBitComplement(cfg), transpose, NewNeighbor(cfg)} {
		p := pat.(*permutationPattern)
		seen := make(map[noc.NodeID]bool)
		for id := 0; id < cfg.Nodes(); id++ {
			img := p.Image(noc.NodeID(id))
			if seen[img] {
				t.Errorf("%s: image %d hit twice", p.Name(), img)
			}
			seen[img] = true
		}
		if len(seen) != cfg.Nodes() {
			t.Errorf("%s: only %d images", p.Name(), len(seen))
		}
	}
}

func TestFixedPointFallsBackToUniform(t *testing.T) {
	cfg := cfg5()
	p := NewBitComplement(cfg)
	rng := rand.New(rand.NewSource(4))
	centre := cfg.Node(2, 2)
	for i := 0; i < 100; i++ {
		if d := p.Dest(centre, rng); d == centre {
			t.Fatal("fixed point returned itself")
		}
	}
}

func TestBitReverse(t *testing.T) {
	cfg := cfg5()
	cfg.Width, cfg.Height = 4, 4
	pat, err := NewBitReverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pat.(*permutationPattern)
	// 16 nodes, 4 bits: 0b0001 -> 0b1000.
	if got := p.Image(1); got != 8 {
		t.Errorf("bitrev(1) = %d, want 8", got)
	}
	if got := p.Image(6); got != 6 { // 0110 reversed is 0110
		t.Errorf("bitrev(6) = %d, want 6", got)
	}
}

func TestBitReverseRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := NewBitReverse(cfg5()); err == nil {
		t.Error("bitrev accepted 25 nodes")
	}
}

func TestShuffle(t *testing.T) {
	cfg := cfg5()
	cfg.Width, cfg.Height = 4, 4
	pat, err := NewShuffle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pat.(*permutationPattern)
	// 4 bits: shuffle(0b0110)=0b1100=12; shuffle(0b1001)=0b0011=3.
	if got := p.Image(6); got != 12 {
		t.Errorf("shuffle(6) = %d, want 12", got)
	}
	if got := p.Image(9); got != 3 {
		t.Errorf("shuffle(9) = %d, want 3", got)
	}
}

func TestShuffleRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := NewShuffle(cfg5()); err == nil {
		t.Error("shuffle accepted 25 nodes")
	}
}

func TestHotspot(t *testing.T) {
	cfg := cfg5()
	p, err := NewHotspot(cfg, 12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	hits := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if p.Dest(0, rng) == 12 {
			hits++
		}
	}
	// Expect fraction + (1-fraction)/24 ≈ 0.52.
	want := 0.5 + 0.5/24
	got := float64(hits) / trials
	if math.Abs(got-want) > 0.03 {
		t.Errorf("hotspot hit rate %.3f, want ~%.3f", got, want)
	}
}

func TestHotspotValidation(t *testing.T) {
	cfg := cfg5()
	if _, err := NewHotspot(cfg, 12, 1.5); err == nil {
		t.Error("accepted fraction > 1")
	}
	if _, err := NewHotspot(cfg, 99, 0.5); err == nil {
		t.Error("accepted node outside mesh")
	}
}

func TestByName(t *testing.T) {
	cfg := cfg5()
	for _, name := range []string{"uniform", "tornado", "bitcomp", "transpose", "neighbor"} {
		p, err := ByName(name, cfg)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("nonsense", cfg); err == nil {
		t.Error("ByName accepted unknown pattern")
	}
	// bitrev/shuffle need power-of-two meshes; on 5x5 they must error.
	if _, err := ByName("bitrev", cfg); err == nil {
		t.Error("bitrev on 25 nodes should fail")
	}
}

func TestPaperPatterns(t *testing.T) {
	want := []string{"tornado", "bitcomp", "transpose", "neighbor"}
	got := PaperPatterns()
	if len(got) != len(want) {
		t.Fatalf("PaperPatterns() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PaperPatterns()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMatrixRowsSumToOne(t *testing.T) {
	cfg := cfg5()
	transpose, _ := NewTranspose(cfg)
	hot, _ := NewHotspot(cfg, 7, 0.3)
	for _, p := range []Pattern{NewUniform(cfg), NewTornado(cfg), transpose, NewNeighbor(cfg), hot} {
		m := Matrix(p, cfg)
		for s, row := range m {
			sum := 0.0
			for d, w := range row {
				if d == s && w != 0 {
					t.Errorf("%s: self weight at %d", p.Name(), s)
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s: row %d sums to %g", p.Name(), s, sum)
			}
		}
	}
}

func TestMatrixPermutationHasUnitEntries(t *testing.T) {
	cfg := cfg5()
	m := Matrix(NewNeighbor(cfg), cfg)
	for s := 0; s < cfg.Nodes(); s++ {
		ones := 0
		for _, w := range m[s] {
			if w == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Errorf("neighbor row %d has %d unit entries", s, ones)
		}
	}
}
