package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/noc"
)

// MatrixPattern draws destinations from an explicit traffic matrix:
// weights[s][d] is the relative amount of traffic from s to d (any
// non-negative scale; rows are normalized internally). Nodes whose row sums
// to zero never inject — pair MatrixPattern with per-node rates via
// NewInjectorRates so such nodes get rate 0.
//
// This is the "custom traffic matrices" Booksim extension the paper built
// for the multimedia workloads of Sec. VI.
type MatrixPattern struct {
	name string
	// cum[s] is the cumulative distribution over destinations for source s
	// (empty when s sends nothing).
	cum [][]float64
	dst [][]noc.NodeID
}

// NewMatrixPattern validates weights and prepares per-source cumulative
// destination distributions.
func NewMatrixPattern(name string, cfg noc.Config, weights [][]float64) (*MatrixPattern, error) {
	n := cfg.Nodes()
	if len(weights) != n {
		return nil, fmt.Errorf("traffic: matrix has %d rows for %d nodes", len(weights), n)
	}
	mp := &MatrixPattern{
		name: name,
		cum:  make([][]float64, n),
		dst:  make([][]noc.NodeID, n),
	}
	for s, row := range weights {
		if len(row) != n {
			return nil, fmt.Errorf("traffic: matrix row %d has %d columns for %d nodes", s, len(row), n)
		}
		total := 0.0
		for d, w := range row {
			if w < 0 {
				return nil, fmt.Errorf("traffic: negative weight at [%d][%d]", s, d)
			}
			if d == s && w != 0 {
				return nil, fmt.Errorf("traffic: self traffic at node %d", s)
			}
			total += w
		}
		if total == 0 {
			continue
		}
		acc := 0.0
		for d, w := range row {
			if w == 0 {
				continue
			}
			acc += w / total
			mp.cum[s] = append(mp.cum[s], acc)
			mp.dst[s] = append(mp.dst[s], noc.NodeID(d))
		}
		// Guard against floating-point shortfall at the top.
		mp.cum[s][len(mp.cum[s])-1] = 1
	}
	return mp, nil
}

// Name implements Pattern.
func (mp *MatrixPattern) Name() string { return mp.name }

// Dest implements Pattern. It panics if called for a source with no
// outgoing traffic; injectors must give such sources rate zero.
func (mp *MatrixPattern) Dest(src noc.NodeID, rng *rand.Rand) noc.NodeID {
	cum := mp.cum[src]
	if len(cum) == 0 {
		panic(fmt.Sprintf("traffic: Dest called for silent source %d", src))
	}
	x := rng.Float64()
	for i, c := range cum {
		if x < c {
			return mp.dst[src][i]
		}
	}
	return mp.dst[src][len(mp.dst[src])-1]
}

// RowRates converts an absolute weights matrix (e.g. packets per frame)
// into per-node relative injection rates proportional to each row sum,
// normalized so the *maximum* row equals 1. Multiply by the desired peak
// rate to get per-node flit rates.
func RowRates(weights [][]float64) ([]float64, error) {
	rates := make([]float64, len(weights))
	max := 0.0
	for s, row := range weights {
		sum := 0.0
		for _, w := range row {
			if w < 0 {
				return nil, fmt.Errorf("traffic: negative weight in row %d", s)
			}
			sum += w
		}
		rates[s] = sum
		if sum > max {
			max = sum
		}
	}
	if max == 0 {
		return rates, nil
	}
	for s := range rates {
		rates[s] /= max
	}
	return rates, nil
}
