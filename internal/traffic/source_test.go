package traffic

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/trace"
)

func TestSourceConfigValidate(t *testing.T) {
	ok := []SourceConfig{
		{},
		{Kind: SourceMMPP, BurstRatio: 4, BurstLen: 64},
		{Kind: SourcePareto, BurstRatio: 2, BurstLen: 10, ParetoAlpha: 1.5},
		{Kind: SourcePareto, BurstRatio: 8, BurstLen: 1, ParetoAlpha: 2},
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
	bad := []SourceConfig{
		{Kind: "lognormal"},
		{Kind: SourceMMPP, BurstRatio: 1, BurstLen: 64},
		{Kind: SourceMMPP, BurstRatio: 4, BurstLen: 0.5},
		{Kind: SourcePareto, BurstRatio: 4, BurstLen: 64, ParetoAlpha: 1},
		{Kind: SourcePareto, BurstRatio: 4, BurstLen: 64, ParetoAlpha: 2.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

// burstInjector builds a uniform-pattern injector with the given source
// layered on, against a network it can inject into.
func burstInjector(t *testing.T, rate float64, src SourceConfig, seed int64) (*Injector, *noc.Network) {
	t.Helper()
	cfg := cfg5()
	net, err := noc.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(cfg, NewUniform(cfg), rate, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.SetSource(src); err != nil {
		t.Fatal(err)
	}
	return inj, net
}

func TestSetSourceRejects(t *testing.T) {
	cfg := cfg5()
	inj, err := NewInjector(cfg, NewUniform(cfg), 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 0.3 flits/cycle is 0.015 packets/cycle; β=4 stays under one packet
	// per cycle, but a huge ratio does not.
	if err := inj.SetSource(SourceConfig{Kind: SourceMMPP, BurstRatio: 100, BurstLen: 10}); err == nil {
		t.Error("accepted an ON rate above one packet per cycle")
	}
	if err := inj.SetSource(SourceConfig{Kind: SourceMMPP, BurstRatio: 4, BurstLen: 10}); err != nil {
		t.Errorf("rejected a feasible source: %v", err)
	}
	if inj.Source().Kind != SourceMMPP {
		t.Errorf("Source() = %+v", inj.Source())
	}
	if err := inj.SetSource(SourceConfig{}); err != nil {
		t.Errorf("clearing the source failed: %v", err)
	}
	if inj.Source().Kind != "" {
		t.Error("zero-value source did not restore Bernoulli")
	}
}

// TestBurstSourcesPreserveMeanRate: bursty modulation redistributes
// traffic in time without changing the long-run offered rate.
func TestBurstSourcesPreserveMeanRate(t *testing.T) {
	const rate, cycles = 0.2, 400_000
	for _, src := range []SourceConfig{
		{Kind: SourceMMPP, BurstRatio: 4, BurstLen: 50},
		{Kind: SourcePareto, BurstRatio: 4, BurstLen: 50, ParetoAlpha: 1.6},
	} {
		inj, net := burstInjector(t, rate, src, 42)
		for c := 0; c < cycles; c++ {
			inj.NodeCycle(net, 0)
		}
		got := float64(inj.WindowFlits()) / float64(cycles) / 25
		if math.Abs(got-rate) > rate*0.08 {
			t.Errorf("%s: offered rate %.4f, want %.4f ± 8%%", src.Kind, got, rate)
		}
	}
}

// TestMMPPOnFraction: the stationary ON fraction is 1/β.
func TestMMPPOnFraction(t *testing.T) {
	src := SourceConfig{Kind: SourceMMPP, BurstRatio: 4, BurstLen: 40}
	inj, net := burstInjector(t, 0.2, src, 7)
	var sum float64
	const cycles = 100_000
	for c := 0; c < cycles; c++ {
		inj.NodeCycle(net, 0)
		sum += inj.OnFraction()
	}
	got := sum / cycles
	if math.Abs(got-0.25) > 0.04 {
		t.Errorf("mean ON fraction %.3f, want 0.25 ± 0.04", got)
	}
}

// TestBurstinessExceedsPoisson: the index of dispersion of per-window
// flit counts is near 1 for Bernoulli sources and clearly above it for
// MMPP and Pareto on-off sources — the property the beyond-paper
// workloads exist to exercise.
func TestBurstinessExceedsPoisson(t *testing.T) {
	dispersion := func(src SourceConfig) float64 {
		cfg := cfg5()
		net, err := noc.NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inj, err := NewInjector(cfg, NewUniform(cfg), 0.2, 11)
		if err != nil {
			t.Fatal(err)
		}
		if src.Kind != "" {
			if err := inj.SetSource(src); err != nil {
				t.Fatal(err)
			}
		}
		const windows, window = 2000, 100
		counts := make([]float64, windows)
		for w := 0; w < windows; w++ {
			for c := 0; c < window; c++ {
				inj.NodeCycle(net, 0)
			}
			counts[w] = float64(inj.WindowFlits())
			inj.WindowReset()
		}
		var mean, varsum float64
		for _, c := range counts {
			mean += c
		}
		mean /= windows
		for _, c := range counts {
			varsum += (c - mean) * (c - mean)
		}
		// Counts are in flits; packets arrive 20 flits at a time, so even
		// Bernoulli counts have dispersion ≈ PacketSize. Normalize it out.
		return varsum / float64(windows-1) / mean / float64(cfg.PacketSize)
	}
	poisson := dispersion(SourceConfig{})
	mmpp := dispersion(SourceConfig{Kind: SourceMMPP, BurstRatio: 6, BurstLen: 60})
	pareto := dispersion(SourceConfig{Kind: SourcePareto, BurstRatio: 6, BurstLen: 60, ParetoAlpha: 1.3})
	if poisson > 1.5 {
		t.Errorf("Bernoulli dispersion %.2f, want ≈ 1", poisson)
	}
	if mmpp < 2*poisson {
		t.Errorf("MMPP dispersion %.2f not clearly above Bernoulli %.2f", mmpp, poisson)
	}
	if pareto < 2*poisson {
		t.Errorf("Pareto dispersion %.2f not clearly above Bernoulli %.2f", pareto, poisson)
	}
}

// TestBurstDeterminism: the same seed reproduces the same injection
// stream, and different seeds do not.
func TestBurstDeterminism(t *testing.T) {
	capture := func(seed int64) []trace.InjectionEvent {
		src := SourceConfig{Kind: SourceMMPP, BurstRatio: 4, BurstLen: 30}
		inj, net := burstInjector(t, 0.2, src, seed)
		var sink trace.Injection
		inj.StartCapture(&sink)
		for c := 0; c < 5000; c++ {
			inj.NodeCycle(net, 0)
		}
		return append([]trace.InjectionEvent(nil), sink.Events...)
	}
	a, b := capture(9), capture(9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different injection streams")
	}
	if c := capture(10); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical injection streams")
	}
}

// TestReplayInjectorReproducesCapture: a trace captured from a live
// injector replays the exact event stream and exposes the trace's rates.
func TestReplayInjectorReproducesCapture(t *testing.T) {
	cfg := cfg5()
	net, err := noc.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(cfg, NewUniform(cfg), 0.25, 13)
	if err != nil {
		t.Fatal(err)
	}
	var tr trace.Injection
	inj.StartCapture(&tr)
	const cycles = 3000
	for c := 0; c < cycles; c++ {
		inj.NodeCycle(net, 0)
	}
	if tr.Cycles != cycles || len(tr.Events) == 0 {
		t.Fatalf("capture recorded %d events over %d cycles", len(tr.Events), tr.Cycles)
	}
	if err := tr.Validate(cfg); err != nil {
		t.Fatalf("captured trace invalid: %v", err)
	}

	rnet, err := noc.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rinj, err := NewReplayInjector(cfg, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if !rinj.Replaying() {
		t.Error("Replaying() = false")
	}
	for c := 0; c < cycles; c++ {
		rinj.NodeCycle(rnet, 0)
	}
	q1, _, _, _ := net.Stats()
	q2, _, _, _ := rnet.Stats()
	if q1 != q2 {
		t.Errorf("replay queued %d packets, capture queued %d", q2, q1)
	}
	if got, want := rinj.MeanRate(), tr.MeanRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("replay MeanRate %g, trace MeanRate %g", got, want)
	}
	// Replay past the end of the trace injects nothing further.
	for c := 0; c < 100; c++ {
		rinj.NodeCycle(rnet, 0)
	}
	if q3, _, _, _ := rnet.Stats(); q3 != q2 {
		t.Error("replay injected past the end of the trace")
	}

	// A mismatched mesh is rejected.
	small := cfg
	small.Width = 4
	if _, err := NewReplayInjector(small, &tr); err == nil {
		t.Error("replay accepted a mismatched mesh")
	}
}
