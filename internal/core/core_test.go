package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/noc"
)

// quickScenario returns the paper's baseline scenario with shrunk windows.
func quickScenario() Scenario {
	return Scenario{
		Noc:     noc.DefaultConfig(),
		Pattern: "uniform",
		Quick:   true,
	}
}

func TestScenarioValidation(t *testing.T) {
	s := Scenario{Noc: noc.DefaultConfig()}
	s.setDefaults()
	if err := s.validate(); err == nil {
		t.Error("accepted scenario without traffic")
	}
	app := apps.H264()
	s = Scenario{Noc: noc.DefaultConfig(), Pattern: "uniform", App: &app}
	s.setDefaults()
	if err := s.validate(); err == nil {
		t.Error("accepted scenario with both pattern and app")
	}
	s = Scenario{Noc: noc.Config{}, Pattern: "uniform"}
	s.setDefaults()
	if err := s.validate(); err == nil {
		t.Error("accepted invalid noc config")
	}
}

func TestLoadGrid(t *testing.T) {
	g := LoadGrid(0.4, 4)
	want := []float64{0.1, 0.2, 0.3, 0.4}
	if len(g) != 4 {
		t.Fatalf("grid %v", g)
	}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("grid[%d] = %g, want %g", i, g[i], want[i])
		}
	}
	if LoadGrid(0.4, 0) != nil {
		t.Error("LoadGrid(_, 0) should be nil")
	}
}

func TestFindSaturationBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: saturation search runs tens of simulations")
	}
	// The paper reports saturation ≈0.42 for the baseline configuration
	// (Sec. III). Accept a band around it: exact value depends on
	// allocator details.
	sat, err := FindSaturation(context.Background(), quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if sat < 0.3 || sat > 0.6 {
		t.Errorf("saturation = %.3f, want in [0.3, 0.6] (paper: 0.42)", sat)
	}
}

func TestFindSaturationFewerVCsIsLower(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: saturation search runs tens of simulations")
	}
	s := quickScenario()
	sat8, err := FindSaturation(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	s.Noc.VCs = 2
	sat2, err := FindSaturation(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if sat2 >= sat8 {
		t.Errorf("2-VC saturation %.3f not below 8-VC %.3f", sat2, sat8)
	}
}

func TestCalibrate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: calibration runs a saturation search")
	}
	cal, err := Calibrate(context.Background(), quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.LambdaMax-0.9*cal.SaturationRate) > 1e-12 {
		t.Errorf("λmax %.3f not 90%% of saturation %.3f", cal.LambdaMax, cal.SaturationRate)
	}
	// The target is the near-saturation delay at 1 GHz: must be well above
	// the zero-load latency (~40 ns) and below the saturation guard.
	if cal.TargetDelayNs < 50 || cal.TargetDelayNs > 2000 {
		t.Errorf("target delay %.1f ns implausible", cal.TargetDelayNs)
	}
}

func TestRunOneNoDVFS(t *testing.T) {
	res, err := RunOne(context.Background(), quickScenario(), NoDVFS, 0.15, Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 || res.Saturated {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestRunOneUnknownPolicy(t *testing.T) {
	_, err := RunOne(context.Background(), quickScenario(), PolicyKind("magic"), 0.1, Calibration{SaturationRate: 0.4, LambdaMax: 0.36, TargetDelayNs: 150})
	if err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestComparePoliciesOrderings(t *testing.T) {
	// One moderate-load point, all three policies, fixed calibration to
	// keep the test fast and deterministic. Verifies the paper's headline
	// orderings: P(RMSD) < P(DMSD) < P(NoDVFS); D(RMSD) > D(DMSD).
	cal := Calibration{SaturationRate: 0.42, LambdaMax: 0.378, TargetDelayNs: 150}
	cmp, err := ComparePolicies(context.Background(), quickScenario(), []float64{0.2}, AllPolicies(), cal)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Sweeps) != 3 {
		t.Fatalf("got %d sweeps", len(cmp.Sweeps))
	}
	pN := cmp.Sweeps[NoDVFS].Points[0].Result
	pR := cmp.Sweeps[RMSD].Points[0].Result
	pD := cmp.Sweeps[DMSD].Points[0].Result
	if !(pR.AvgPowerMW < pD.AvgPowerMW && pD.AvgPowerMW < pN.AvgPowerMW) {
		t.Errorf("power ordering: rmsd %.1f, dmsd %.1f, nodvfs %.1f mW",
			pR.AvgPowerMW, pD.AvgPowerMW, pN.AvgPowerMW)
	}
	if pR.AvgDelayNs <= pD.AvgDelayNs {
		t.Errorf("delay ordering: rmsd %.1f ns not above dmsd %.1f ns",
			pR.AvgDelayNs, pD.AvgDelayNs)
	}
}

func TestComparePoliciesEmptyGrid(t *testing.T) {
	if _, err := ComparePolicies(context.Background(), quickScenario(), nil, nil, Calibration{SaturationRate: 0.4, LambdaMax: 0.36, TargetDelayNs: 150}); err == nil {
		t.Error("accepted empty load grid")
	}
}

func TestComparePoliciesAppScenario(t *testing.T) {
	app := apps.H264()
	s := Scenario{
		Noc:   noc.Config{Width: 4, Height: 4, VCs: 8, BufDepth: 4, PacketSize: 20, Routing: noc.RoutingXY},
		App:   &app,
		Quick: true,
	}
	cal := Calibration{SaturationRate: 0.5, LambdaMax: 0.45, TargetDelayNs: 120}
	cmp, err := ComparePolicies(context.Background(), s, []float64{0.5}, []PolicyKind{NoDVFS, RMSD}, cal)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Sweeps[NoDVFS].Points[0].Result.Packets == 0 {
		t.Error("app scenario measured no packets")
	}
	if cmp.Sweeps[RMSD].Points[0].Result.AvgPowerMW >= cmp.Sweeps[NoDVFS].Points[0].Result.AvgPowerMW {
		t.Error("RMSD power not below No-DVFS on app traffic")
	}
}

func TestAllPolicies(t *testing.T) {
	ps := AllPolicies()
	if len(ps) != 3 || ps[0] != NoDVFS || ps[1] != RMSD || ps[2] != DMSD {
		t.Errorf("AllPolicies() = %v", ps)
	}
}
