package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// goldenCal is a fixed calibration so the golden tests exercise only the
// sweep path, not the saturation search.
func goldenCal() Calibration {
	return Calibration{SaturationRate: 0.42, LambdaMax: 0.378, TargetDelayNs: 150}
}

// TestGoldenParallelMatchesSerial is the determinism contract of the exp
// rewiring: the same root seed must produce bit-identical sweep results
// whether the grid runs serially (Workers=1, the pre-exp reference
// semantics) or fanned out across many workers.
func TestGoldenParallelMatchesSerial(t *testing.T) {
	grid := LoadGrid(0.3, 3)
	workerSet := []int{2, 8}
	if testing.Short() {
		// Scaled-down grid: the determinism contract still gets exercised
		// end to end, just over fewer points and one worker count.
		grid = LoadGrid(0.3, 2)
		workerSet = []int{4}
	}
	run := func(workers int) map[PolicyKind]Sweep {
		s := quickScenario()
		s.Workers = workers
		cmp, err := ComparePolicies(context.Background(), s, grid, AllPolicies(), goldenCal())
		if err != nil {
			t.Fatal(err)
		}
		return cmp.Sweeps
	}
	serial := run(1)
	for _, workers := range workerSet {
		par := run(workers)
		for _, kind := range AllPolicies() {
			if !reflect.DeepEqual(serial[kind], par[kind]) {
				t.Errorf("workers=%d: %s sweep differs from serial:\nserial:   %+v\nparallel: %+v",
					workers, kind, serial[kind], par[kind])
			}
		}
	}
}

// TestGoldenFindSaturationParallelMatchesSerial pins the quarter-section
// search: the probe layout is fixed, so the measured saturation rate must
// not depend on the worker count.
func TestGoldenFindSaturationParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := quickScenario()
	s.Workers = 1
	serial, err := FindSaturation(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 8
	parallel, err := FindSaturation(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("saturation rate depends on workers: serial %v, parallel %v", serial, parallel)
	}
}

// TestParallelSweepSpeedup is the wall-clock acceptance check: on a
// machine with >= 4 cores a multi-point three-policy sweep must run at
// least 2x faster in parallel than serially. It skips on smaller machines
// (and in short mode), where the golden tests above still prove the
// engine's correctness.
func TestParallelSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need >= 4 cores for a meaningful speedup, have %d", cores)
	}
	grid := LoadGrid(0.3, 6)
	timeIt := func(workers int) time.Duration {
		s := quickScenario()
		s.Workers = workers
		start := time.Now()
		if _, err := ComparePolicies(context.Background(), s, grid, AllPolicies(), goldenCal()); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	timeIt(cores) // warm up
	serial := timeIt(1)
	parallel := timeIt(cores)
	t.Logf("serial %v, parallel %v on %d cores (%.1fx)", serial, parallel, cores,
		float64(serial)/float64(parallel))
	if parallel > serial/2 {
		t.Errorf("parallel sweep %v not >= 2x faster than serial %v on %d cores",
			parallel, serial, cores)
	}
}

func BenchmarkComparePoliciesSerial(b *testing.B)   { benchCompare(b, 1) }
func BenchmarkComparePoliciesParallel(b *testing.B) { benchCompare(b, 0) }

func benchCompare(b *testing.B, workers int) {
	grid := LoadGrid(0.3, 4)
	for i := 0; i < b.N; i++ {
		s := quickScenario()
		s.Workers = workers
		if _, err := ComparePolicies(context.Background(), s, grid, AllPolicies(), goldenCal()); err != nil {
			b.Fatal(err)
		}
	}
}
