// Package core is the top of the library: it turns the substrates (noc,
// traffic, dvfs, volt, power, sim) into the paper's experiments. It
// provides saturation-rate search, the paper's auto-calibration recipe
// (λmax = 90% of saturation; DMSD target = the RMSD delay at λmax), and
// policy-comparison sweeps over injection rate or application speed —
// the machinery behind every figure of the evaluation.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/apps"
	"repro/internal/dvfs"
	"repro/internal/exp"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/volt"
)

// PolicyKind names one of the three compared controllers.
type PolicyKind string

// The three policies of the paper.
const (
	NoDVFS PolicyKind = "nodvfs"
	RMSD   PolicyKind = "rmsd"
	DMSD   PolicyKind = "dmsd"
)

// AllPolicies returns the paper's comparison set in presentation order.
func AllPolicies() []PolicyKind { return []PolicyKind{NoDVFS, RMSD, DMSD} }

// Scenario describes one experimental setting: fabric, traffic and the
// frequency plant. Exactly one of Pattern or App must be set.
type Scenario struct {
	// Noc is the fabric configuration.
	Noc noc.Config
	// Pattern is a synthetic pattern name ("uniform", "tornado",
	// "bitcomp", "transpose", "neighbor", ...).
	Pattern string
	// App selects a multimedia workload instead of a synthetic pattern.
	App *apps.App
	// PeakRate is the busiest-node rate at App speed 1 (defaults to
	// apps.DefaultPeakRate).
	PeakRate float64
	// Source layers a bursty generation process (MMPP or Pareto on-off)
	// under the synthetic pattern; the zero value is the plain Bernoulli
	// process. Sources combine with patterns only, not apps or traces.
	Source traffic.SourceConfig
	// Trace, when non-nil, replays a recorded injection trace instead of
	// generating traffic; Pattern and App must then be empty, and
	// policies that need a calibration must carry a pinned one (the
	// calibration search sweeps load, which a fixed trace ignores).
	Trace *trace.Injection
	// TraceCapture, when non-nil, records every generated packet into
	// the sink as injection-trace events. The sink is shared across the
	// scenario's runs, so searches and sweeps run serially and the sink
	// holds the events of the last run that used it.
	TraceCapture *trace.Injection

	// Faults lists directed mesh channels masked out of the fabric; the
	// network routes around them with a minimal fault-aware table.
	Faults []noc.Link
	// Islands are per-region V/F clock dividers layered under the global
	// DVFS frequency.
	Islands []noc.Island

	// FNode is the node clock in Hz (default 1 GHz).
	FNode float64
	// Range is the DVFS actuation range (default 333 MHz – 1 GHz).
	Range dvfs.Range
	// Seed is the root seed that makes runs reproducible. ComparePolicies
	// derives one independent RNG stream per grid point from it through
	// exp.Seed, so replications and variance analysis across points see
	// uncorrelated samples; single runs and the saturation search use the
	// root seed directly.
	Seed int64

	// Quick shrinks warmup/measurement windows roughly 4x for smoke tests
	// and benchmarks.
	Quick bool

	// ControlPeriod overrides the DVFS control update period in node
	// cycles (0 = the engine default, or the shortened Quick period). It
	// wins over the Quick shortening, so a period ablation sweeps the
	// same values in quick and full mode.
	ControlPeriod int64
	// KI and KP override the DMSD PI gains (0 = the paper's published
	// values).
	KI, KP float64
	// FreqLevels quantizes the actuation range into this many discrete
	// frequency levels (0 = continuous actuation, the paper's default).
	FreqLevels int
	// Transient captures the controller's cold-start transient instead of
	// the steady state: no equilibrium warm start, a short fixed warmup,
	// a long measurement window, and a per-control-period frequency trace
	// in the result.
	Transient bool

	// Workers bounds how many simulation points run concurrently in the
	// sweeps and searches (0 = GOMAXPROCS, 1 = serial reference). Results
	// are byte-identical for every value: each point owns its RNG and the
	// exp engine collects results in grid order.
	Workers int

	// StepWorkers is the number of engine threads stepping each
	// simulation's network (0 or 1 = serial). Results are bit-identical
	// for every value. Each run charges max(1, StepWorkers) slots against
	// the exp leaf budget, so intra-simulation threads and concurrent
	// points draw from the same pool of cores.
	StepWorkers int

	// PacketLog, when non-nil, records every measured packet's lifecycle
	// (see package trace). Sweeps reuse the same log across points, so a
	// scenario with a log always runs serially.
	PacketLog *trace.Log
}

// workers returns the exp worker bound for this scenario: serial when a
// shared PacketLog is attached (concurrent runs would interleave its
// records), otherwise Workers.
func (s *Scenario) workers() int {
	if s.PacketLog != nil || s.TraceCapture != nil {
		return 1
	}
	return s.Workers
}

// Calibration fixes the policy operating points for a scenario, following
// Sec. III/IV: λmax 10% below the measured saturation rate, and the DMSD
// target equal to the RMSD delay at λmax.
type Calibration struct {
	// SaturationRate is the measured saturation injection rate in flits
	// per node per node cycle.
	SaturationRate float64
	// LambdaMax is the RMSD target network rate (0.9 × saturation).
	LambdaMax float64
	// TargetDelayNs is the DMSD setpoint.
	TargetDelayNs float64
}

func (s *Scenario) setDefaults() {
	if s.FNode == 0 {
		s.FNode = 1e9
	}
	if s.Range.FMax == 0 {
		s.Range = dvfs.DefaultRange()
	}
	if s.PeakRate == 0 {
		s.PeakRate = apps.DefaultPeakRate
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

func (s *Scenario) validate() error {
	if s.Trace != nil {
		if s.Pattern != "" || s.App != nil {
			return errors.New("core: trace replay excludes patterns and apps")
		}
		if s.Source.Kind != "" {
			return errors.New("core: trace replay excludes bursty sources (the trace already fixes every injection)")
		}
	} else {
		if s.Pattern == "" && s.App == nil {
			return errors.New("core: scenario needs a pattern, an app, or a trace")
		}
		if s.Pattern != "" && s.App != nil {
			return errors.New("core: scenario has both a pattern and an app")
		}
	}
	if s.Source.Kind != "" && s.App != nil {
		return errors.New("core: bursty sources combine with synthetic patterns only, not apps")
	}
	if err := s.Source.Validate(); err != nil {
		return err
	}
	if err := noc.ValidateIslands(s.Noc, s.Islands); err != nil {
		return err
	}
	if err := noc.ValidateFaults(s.Noc, s.Faults); err != nil {
		return err
	}
	if s.ControlPeriod < 0 {
		return fmt.Errorf("core: control period %d", s.ControlPeriod)
	}
	if s.FreqLevels < 0 || s.FreqLevels == 1 {
		return fmt.Errorf("core: %d frequency levels (want 0 for continuous or >= 2)", s.FreqLevels)
	}
	if s.KI < 0 || s.KP < 0 {
		return fmt.Errorf("core: negative PI gains KI=%g KP=%g", s.KI, s.KP)
	}
	return s.Noc.Validate()
}

// injector builds the scenario's traffic source at the given load and
// RNG seed: an injection rate for synthetic patterns, a relative speed
// for apps.
func (s *Scenario) injector(load float64, seed int64) (*traffic.Injector, error) {
	if s.Trace != nil {
		return traffic.NewReplayInjector(s.Noc, s.Trace)
	}
	var inj *traffic.Injector
	var err error
	if s.App != nil {
		inj, err = s.App.Injector(s.Noc, load, s.PeakRate, seed)
	} else {
		var p traffic.Pattern
		if p, err = traffic.ByName(s.Pattern, s.Noc); err == nil {
			inj, err = traffic.NewInjector(s.Noc, p, load, seed)
		}
	}
	if err != nil {
		return nil, err
	}
	if s.Source.Kind != "" {
		if err := inj.SetSource(s.Source); err != nil {
			return nil, err
		}
	}
	if s.TraceCapture != nil {
		inj.StartCapture(s.TraceCapture)
	}
	return inj, nil
}

// simParams assembles sim.Params for one run seeded with seed.
func (s *Scenario) simParams(load float64, pol dvfs.Policy, adaptive bool, seed int64) (sim.Params, error) {
	inj, err := s.injector(load, seed)
	if err != nil {
		return sim.Params{}, err
	}
	pm := power.Default28nm()
	p := sim.Params{
		Noc:            s.Noc,
		Injector:       inj,
		Policy:         pol,
		VF:             volt.New(),
		Power:          &pm,
		FNode:          s.FNode,
		AdaptiveWarmup: adaptive,
		PacketLog:      s.PacketLog,
		StepWorkers:    s.StepWorkers,
		Faults:         s.Faults,
		Islands:        s.Islands,
	}
	if s.Quick {
		// Quick mode shrinks windows 3-4x and shortens the control period
		// so closed-loop settling stays proportionate; steady-state
		// operating points are unaffected (the period only sets the
		// measurement cadence, Sec. IV).
		p.Warmup = 8000
		p.Measure = 20000
		p.MaxWarmup = 150000
		p.ControlPeriod = 2000
	}
	if s.ControlPeriod > 0 {
		p.ControlPeriod = s.ControlPeriod
	}
	if s.Trace != nil {
		// Replay must measure the same node-cycle window the capture run
		// did: adaptive warmup would let a DMSD run idle past the end of
		// the recorded events and measure an empty network.
		p.AdaptiveWarmup = false
	}
	if s.Transient {
		// Transient capture: start measuring almost immediately and keep
		// the window long enough to hold the whole settling trajectory.
		p.AdaptiveWarmup = false
		p.Warmup = 1000
		p.Measure = 400000
		if s.Quick {
			p.Measure = 100000
		}
		p.TraceFreq = true
	}
	return p, nil
}

// runSim executes one simulation under the process-wide leaf budget:
// the slots are held exactly for the duration of the engine run, so no
// matter how many worker pools are stacked above (figure panels fanning
// out policy grids fanning out probes), in-flight simulation threads
// never exceed exp.SetLeafBudget's cap. A run stepped by k engine
// workers charges k slots — intra-run parallelism is not free
// concurrency on top of the grid's. Every sim.RunContext call in this
// package goes through here.
func runSim(ctx context.Context, p sim.Params) (sim.Result, error) {
	slots := p.StepWorkers
	if slots < 1 {
		slots = 1
	}
	release, err := exp.AcquireLeafN(ctx, slots)
	if err != nil {
		return sim.Result{}, err
	}
	defer release()
	return sim.RunContext(ctx, p)
}

// EquilibriumFreq estimates the DMSD steady-state network frequency at
// the given load: 10% above the RMSD law FNode·λ/λmax (the frequency
// that pins the network at λmax), since the DMSD setpoint sits just
// inside the stable region, clipped to the actuation range. Warm-starting
// the PI loop there removes the long cold-start descent from FMax
// without biasing the steady state, which is what makes every DMSD grid
// point an independent job instead of a link in a sequential warm-start
// chain. With an empty calibration (no λmax) it returns FMax — the cold
// start.
func EquilibriumFreq(s Scenario, load float64, cal Calibration) float64 {
	s.setDefaults()
	if cal.LambdaMax <= 0 {
		return s.Range.FMax
	}
	lambda := load
	if s.App != nil || s.Trace != nil {
		// For apps the load is a relative speed (and for traces it is
		// ignored); the offered network rate is the injector's mean
		// per-node rate.
		if inj, err := s.injector(load, s.Seed); err == nil {
			lambda = inj.MeanRate()
		}
	}
	return dvfs.Clip(1.1*s.FNode*lambda/cal.LambdaMax, s.Range.FMin, s.Range.FMax)
}

// FindSaturation locates the saturation injection rate of the scenario's
// fabric under its traffic (No-DVFS, full speed) by bracketing on the
// engine's saturation guards. The search starts from the theoretical
// channel-load capacity and refines to ~2% relative precision with a
// fixed three-probe quarter-section per round, so each round's probes run
// concurrently on the exp engine while the probe layout — and hence the
// returned rate — stays identical for every worker count. When the
// capacity bound proves optimistic, the bracket-expansion rungs are also
// probed concurrently (after the first rung misses) with the same fixed
// layout. Cancelling ctx aborts the in-flight simulations promptly.
func FindSaturation(ctx context.Context, s Scenario) (float64, error) {
	s.setDefaults()
	if err := s.validate(); err != nil {
		return 0, err
	}
	if s.Trace != nil {
		return 0, errors.New("core: saturation search needs load to vary; trace scenarios must carry a pinned calibration")
	}
	// maxLoad is the physical injection ceiling: one flit per cycle per
	// node for synthetic rates; for apps, the speed at which the busiest
	// node reaches one flit per cycle.
	maxLoad := 1.0
	if s.App != nil {
		maxLoad = 0.999 / s.PeakRate
	}
	hi := maxLoad
	if s.Pattern != "" {
		if p, err := traffic.ByName(s.Pattern, s.Noc); err == nil {
			if c := noc.TheoreticalCapacity(s.Noc, traffic.Matrix(p, s.Noc)); c > 0 && c < 1 {
				hi = c * 1.1
				if hi > maxLoad {
					hi = maxLoad
				}
			}
		}
	}
	saturatedAt := func(ctx context.Context, rate float64) (bool, error) {
		pol := dvfs.NewNoDVFS(s.FNode)
		p, err := s.simParams(rate, pol, false, s.Seed)
		if err != nil {
			return false, err
		}
		p.Warmup = 8000
		p.Measure = 25000
		res, err := runSim(ctx, p)
		if err != nil {
			return false, err
		}
		// Beyond saturation the network accepts less than it is offered;
		// the throughput deficit reacts faster than the backlog and
		// latency guards near the knee.
		if res.OfferedRate > 0 && res.Throughput < 0.97*res.OfferedRate {
			return true, nil
		}
		return res.Saturated, nil
	}
	lo := 0.0
	// Ensure hi really saturates; expand if the capacity bound was
	// optimistic for this router configuration. The first rung is probed
	// alone — for capacity-derived brackets it almost always saturates and
	// the expansion ends there — and only when it misses are the remaining
	// rungs of the fixed ×1.3 ladder probed concurrently. The ladder
	// layout does not depend on probe outcomes, so the selected bracket —
	// and hence the returned rate — is identical to the sequential
	// expansion for every worker count.
	sat0, err := saturatedAt(ctx, hi)
	if err != nil {
		return 0, err
	}
	if !sat0 {
		lo = hi
		if hi >= maxLoad {
			return maxLoad, nil // injection-port-limited, never saturates
		}
		rungs := []float64{min(hi*1.3, maxLoad)}
		for len(rungs) < 3 && rungs[len(rungs)-1] < maxLoad {
			rungs = append(rungs, min(rungs[len(rungs)-1]*1.3, maxLoad))
		}
		sats, err := exp.Map(ctx, s.workers(), len(rungs),
			func(ctx context.Context, i int) (bool, error) {
				return saturatedAt(ctx, rungs[i])
			})
		if err != nil {
			return 0, err
		}
		found := false
		for i, sat := range sats {
			if sat {
				hi = rungs[i]
				found = true
				break
			}
			lo = rungs[i]
		}
		if !found {
			if top := rungs[len(rungs)-1]; top >= maxLoad {
				return maxLoad, nil // injection-port-limited, never saturates
			}
			// All probed rungs sustain the load: refine inside the next,
			// unprobed rung, exactly as the sequential expansion did.
			hi = min(lo*1.3, maxLoad)
		}
	}
	// Quarter-section refinement: three interior probes shrink the bracket
	// 4x per round (5 rounds ≈ 10 bisection steps), and the probes of one
	// round are independent runs fanned out across the worker pool. The
	// speculative probes cost up to ~50% more simulations than bisection
	// when run serially — the price of a fixed probe layout, which is what
	// keeps the returned rate independent of the worker count.
	for round := 0; round < 5 && (hi-lo)/hi > 0.02; round++ {
		probes := [3]float64{
			lo + 0.25*(hi-lo),
			lo + 0.50*(hi-lo),
			lo + 0.75*(hi-lo),
		}
		sats, err := exp.Map(ctx, s.workers(), len(probes),
			func(ctx context.Context, i int) (bool, error) {
				return saturatedAt(ctx, probes[i])
			})
		if err != nil {
			return 0, err
		}
		for i, sat := range sats {
			if sat {
				hi = probes[i]
				break
			}
			lo = probes[i]
		}
	}
	// Return the highest load observed to be sustainable (lo), not the
	// bracket midpoint: a conservative saturation estimate keeps λmax and
	// the DMSD target inside the stable region, as the paper's 10% margin
	// intends.
	if lo == 0 {
		return (lo + hi) / 2, nil
	}
	return lo, nil
}

// Calibrate runs the paper's calibration recipe for the scenario: measure
// the saturation rate, set λmax 10% below it, and set the DMSD target to
// the delay the network exhibits at λmax under full frequency (which is
// what RMSD delivers throughout its scaling range — Sec. IV sets the
// target to "the value of RMSD at injection rate λmax").
func Calibrate(ctx context.Context, s Scenario) (Calibration, error) {
	s.setDefaults()
	satLoad, err := FindSaturation(ctx, s)
	if err != nil {
		return Calibration{}, err
	}
	loadStar := 0.9 * satLoad
	// λmax is a *network rate* (flits per node per cycle): for synthetic
	// patterns it equals the load; for apps it is the mean per-node rate
	// the injector offers at the near-saturation speed.
	inj, err := s.injector(loadStar, s.Seed)
	if err != nil {
		return Calibration{}, err
	}
	lmax := inj.MeanRate()
	pol := dvfs.NewNoDVFS(s.FNode)
	p, err := s.simParams(loadStar, pol, false, s.Seed)
	if err != nil {
		return Calibration{}, err
	}
	res, err := runSim(ctx, p)
	if err != nil {
		return Calibration{}, err
	}
	target := res.AvgDelayNs
	if target <= 0 {
		return Calibration{}, fmt.Errorf("core: calibration produced target %g ns", target)
	}
	return Calibration{SaturationRate: satLoad, LambdaMax: lmax, TargetDelayNs: target}, nil
}

// buildPolicy constructs one controller for the scenario and calibration
// at the given load. The DMSD controller is warm-started at the
// equilibrium guess for the load (unless the scenario captures the
// transient), so each grid point emulates a continuously running
// controller without chaining to its neighbours.
func buildPolicy(kind PolicyKind, s *Scenario, cal Calibration, load float64) (dvfs.Policy, error) {
	rng := s.Range
	if s.FreqLevels > 0 {
		levels, err := volt.New().Quantize(rng.FMin, rng.FMax, s.FreqLevels)
		if err != nil {
			return nil, err
		}
		rng.Levels = &levels
	}
	switch kind {
	case NoDVFS:
		return dvfs.NewNoDVFS(s.FNode), nil
	case RMSD:
		return dvfs.NewRMSD(s.FNode, cal.LambdaMax, rng)
	case DMSD:
		ki, kp := s.KI, s.KP
		if ki == 0 {
			ki = dvfs.DefaultKI
		}
		if kp == 0 {
			kp = dvfs.DefaultKP
		}
		pol, err := dvfs.NewDMSDGains(cal.TargetDelayNs, rng, ki, kp)
		if err != nil {
			return nil, err
		}
		if !s.Transient {
			pol.WarmStart(EquilibriumFreq(*s, load, cal))
		}
		return pol, nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q", kind)
	}
}

// Point is one sweep sample: the offered load and the measured result for
// one policy.
type Point struct {
	Load   float64
	Result sim.Result
}

// Sweep holds one policy's curve over the load grid.
type Sweep struct {
	Policy PolicyKind
	Points []Point
}

// Comparison is the full output of ComparePolicies: the calibration used
// plus one curve per policy.
type Comparison struct {
	Scenario    Scenario
	Calibration Calibration
	Sweeps      map[PolicyKind]Sweep
}

// ComparePolicies runs every requested policy across the load grid
// (injection rates for synthetic traffic, speeds for apps) and returns
// the measured curves. A zero-valued cal triggers automatic calibration.
//
// Every (policy, load) point is one independent job fanned out across
// the exp engine under Scenario.Workers: the memoryless policies
// (No-DVFS, RMSD) build a fresh controller per point, and DMSD is
// warm-started at the point's equilibrium guess (EquilibriumFreq), which
// replaces the old sequential warm-start chain and is exactly what
// nocsim.Run does for a standalone grid point — the two paths produce
// identical numbers. Each point owns an independent RNG stream derived
// from the scenario seed and the point's position in the kinds × loads
// grid through exp.Seed, so replication samples across points are
// uncorrelated. Results are byte-identical to serial execution for any
// worker count; cancelling ctx aborts in-flight points promptly.
func ComparePolicies(ctx context.Context, s Scenario, loads []float64, kinds []PolicyKind, cal Calibration) (Comparison, error) {
	s.setDefaults()
	if err := s.validate(); err != nil {
		return Comparison{}, err
	}
	if len(loads) == 0 {
		return Comparison{}, errors.New("core: empty load grid")
	}
	if len(kinds) == 0 {
		kinds = AllPolicies()
	}
	if cal == (Calibration{}) {
		var err error
		cal, err = Calibrate(ctx, s)
		if err != nil {
			return Comparison{}, err
		}
	}
	// One leaf job per (policy, load) point; index i maps to policy
	// i/len(loads) at load i%len(loads), and the per-point seed stream
	// depends only on that flat grid position.
	n := len(kinds) * len(loads)
	curves, err := exp.Map(ctx, s.workers(), n,
		func(ctx context.Context, i int) (Point, error) {
			kind, load := kinds[i/len(loads)], loads[i%len(loads)]
			pol, err := buildPolicy(kind, &s, cal, load)
			if err != nil {
				return Point{}, err
			}
			p, err := s.simParams(load, pol, kind == DMSD, exp.Seed(s.Seed, i))
			if err != nil {
				return Point{}, err
			}
			res, err := runSim(ctx, p)
			if err != nil {
				return Point{}, err
			}
			return Point{Load: load, Result: res}, nil
		})
	if err != nil {
		return Comparison{}, err
	}
	out := Comparison{Scenario: s, Calibration: cal, Sweeps: make(map[PolicyKind]Sweep, len(kinds))}
	for ki, kind := range kinds {
		out.Sweeps[kind] = Sweep{Policy: kind, Points: curves[ki*len(loads) : (ki+1)*len(loads)]}
	}
	return out, nil
}

// RunOne executes a single (policy, load) point with automatic policy
// construction; a convenience for examples and spot checks, and the
// execution path of every nocsim grid point. The run uses the scenario's
// root seed directly and observes ctx. A DMSD run is warm-started at the
// load's equilibrium guess exactly as a ComparePolicies grid point is
// (unless Scenario.Transient captures the cold start), so a grid point
// re-run standalone reproduces the sweep's number.
func RunOne(ctx context.Context, s Scenario, kind PolicyKind, load float64, cal Calibration) (sim.Result, error) {
	s.setDefaults()
	if err := s.validate(); err != nil {
		return sim.Result{}, err
	}
	if cal == (Calibration{}) && kind != NoDVFS {
		var err error
		cal, err = Calibrate(ctx, s)
		if err != nil {
			return sim.Result{}, err
		}
	}
	pol, err := buildPolicy(kind, &s, cal, load)
	if err != nil {
		return sim.Result{}, err
	}
	p, err := s.simParams(load, pol, kind == DMSD, s.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	return runSim(ctx, p)
}

// LoadGrid returns n evenly spaced loads in (0, max], excluding zero.
func LoadGrid(max float64, n int) []float64 {
	if n < 1 {
		return nil
	}
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = max * float64(i+1) / float64(n)
	}
	return grid
}
