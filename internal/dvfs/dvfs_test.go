package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/volt"
)

func TestClip(t *testing.T) {
	tests := []struct{ f, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, tc := range tests {
		if got := Clip(tc.f, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clip(%g,%g,%g) = %g, want %g", tc.f, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestDefaultRangeMatchesPaper(t *testing.T) {
	r := DefaultRange()
	if r.FMin != 333e6 || r.FMax != 1e9 {
		t.Errorf("range = [%g, %g], want [333 MHz, 1 GHz]", r.FMin, r.FMax)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("default range invalid: %v", err)
	}
}

func TestRangeValidate(t *testing.T) {
	bad := []Range{
		{FMin: 0, FMax: 1e9},
		{FMin: -1, FMax: 1e9},
		{FMin: 1e9, FMax: 1e9},
		{FMin: 2e9, FMax: 1e9},
		{FMin: 1e8, FMax: 1e9, Levels: &volt.Levels{Freqs: []float64{1e9}}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid range accepted", i)
		}
	}
}

func TestMeasurementNodeRate(t *testing.T) {
	m := Measurement{NodeCycles: 10000, OfferedFlits: 50000, Nodes: 25}
	if got, want := m.NodeRate(), 0.2; math.Abs(got-want) > 1e-12 {
		t.Errorf("NodeRate = %g, want %g", got, want)
	}
	if got := (Measurement{}).NodeRate(); got != 0 {
		t.Errorf("empty NodeRate = %g", got)
	}
}

func TestNoDVFSConstant(t *testing.T) {
	p := NewNoDVFS(1e9)
	if p.Name() != "nodvfs" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Freq() != 1e9 {
		t.Errorf("Freq = %g", p.Freq())
	}
	for _, m := range []Measurement{{}, {NodeCycles: 1e4, OfferedFlits: 1e6, Nodes: 25, AvgDelayNs: 1e4, DelaySamples: 5}} {
		if got := p.Next(m); got != 1e9 {
			t.Errorf("Next = %g, want 1 GHz always", got)
		}
	}
	p.Reset()
	if p.Freq() != 1e9 {
		t.Error("Reset changed NoDVFS frequency")
	}
}

func newTestRMSD(t *testing.T) *RMSD {
	t.Helper()
	p, err := NewRMSD(1e9, 0.378, DefaultRange())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRMSDFrequencyLaw(t *testing.T) {
	// Eq. (2): Fnoc = Fnode * lambdaNode / lambdaMax within range.
	p := newTestRMSD(t)
	m := Measurement{NodeCycles: 10000, Nodes: 25}

	m.OfferedFlits = int64(0.2 * 10000 * 25) // λnode = 0.2
	want := 1e9 * 0.2 / 0.378
	if got := p.Next(m); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("F(0.2) = %g, want %g", got, want)
	}
}

func TestRMSDClipping(t *testing.T) {
	p := newTestRMSD(t)
	// Above λmax: clip to FMax.
	m := Measurement{NodeCycles: 1000, Nodes: 25, OfferedFlits: int64(0.5 * 1000 * 25)}
	if got := p.Next(m); got != 1e9 {
		t.Errorf("F above λmax = %g, want FMax", got)
	}
	// Near zero rate: clip to FMin.
	m.OfferedFlits = 1
	if got := p.Next(m); got != 333e6 {
		t.Errorf("F near zero rate = %g, want FMin", got)
	}
}

func TestRMSDLambdaMin(t *testing.T) {
	p := newTestRMSD(t)
	want := 0.378 * 333e6 / 1e9
	if got := p.LambdaMin(); math.Abs(got-want) > 1e-12 {
		t.Errorf("LambdaMin = %g, want %g", got, want)
	}
	if p.LambdaMax() != 0.378 {
		t.Errorf("LambdaMax = %g", p.LambdaMax())
	}
	// At exactly λmin the law lands exactly on FMin; at λmax on FMax.
	if got := p.FreqForRate(p.LambdaMin()); math.Abs(got-333e6) > 1 {
		t.Errorf("F(λmin) = %g, want FMin", got)
	}
	if got := p.FreqForRate(p.LambdaMax()); math.Abs(got-1e9) > 1 {
		t.Errorf("F(λmax) = %g, want FMax", got)
	}
}

func TestRMSDFreqMonotoneInRateQuick(t *testing.T) {
	p := newTestRMSD(t)
	f := func(a, b uint16) bool {
		r1 := float64(a) / 65535 * 0.5
		r2 := float64(b) / 65535 * 0.5
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return p.FreqForRate(r1) <= p.FreqForRate(r2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRMSDValidation(t *testing.T) {
	if _, err := NewRMSD(0, 0.4, DefaultRange()); err == nil {
		t.Error("accepted zero node frequency")
	}
	if _, err := NewRMSD(1e9, 0, DefaultRange()); err == nil {
		t.Error("accepted zero lambdaMax")
	}
	if _, err := NewRMSD(1e9, 1.5, DefaultRange()); err == nil {
		t.Error("accepted lambdaMax > 1")
	}
	if _, err := NewRMSD(1e9, 0.4, Range{FMin: 1, FMax: 1}); err == nil {
		t.Error("accepted degenerate range")
	}
}

func TestRMSDResetAndInitialFreq(t *testing.T) {
	p := newTestRMSD(t)
	if p.Freq() != 1e9 {
		t.Errorf("initial Freq = %g, want FMax", p.Freq())
	}
	p.Next(Measurement{NodeCycles: 1000, Nodes: 25, OfferedFlits: 100})
	if p.Freq() == 1e9 {
		t.Fatal("Next did not move the frequency")
	}
	p.Reset()
	if p.Freq() != 1e9 {
		t.Error("Reset did not restore FMax")
	}
}

func TestRMSDSmoothing(t *testing.T) {
	p := newTestRMSD(t)
	p.SetSmoothing(0.5)
	m := Measurement{NodeCycles: 1000, Nodes: 25}
	m.OfferedFlits = int64(0.3 * 1000 * 25)
	f1 := p.Next(m)
	m.OfferedFlits = 0 // rate drops to zero; EWMA keeps 0.15
	f2 := p.Next(m)
	if f2 >= f1 {
		t.Errorf("smoothed frequency did not fall: %g -> %g", f1, f2)
	}
	want := 1e9 * 0.15 / 0.378
	if math.Abs(f2-want)/want > 1e-9 {
		t.Errorf("EWMA frequency = %g, want %g", f2, want)
	}
}

func TestRMSDDiscreteLevels(t *testing.T) {
	vm := volt.New()
	levels, err := vm.Quantize(333e6, 1e9, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := DefaultRange()
	rng.Levels = &levels
	p, err := NewRMSD(1e9, 0.378, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := Measurement{NodeCycles: 1000, Nodes: 25, OfferedFlits: int64(0.2 * 1000 * 25)}
	got := p.Next(m)
	// Continuous law gives 529 MHz; the 4-level table snaps up to 555.3 MHz.
	if math.Abs(got-levels.Freqs[1]) > 1 {
		t.Errorf("discrete F = %g, want level %g", got, levels.Freqs[1])
	}
	if got < 1e9*0.2/0.378 {
		t.Error("discrete actuation went below the continuous law")
	}
}
