package dvfs

import (
	"math"
	"testing"
)

func TestPIRecurrenceMatchesPaperFormula(t *testing.T) {
	// U_n = U_{n-1} + KI*E_n + KP*(E_n - E_{n-1}) with wide bounds.
	pi := NewPI(0.025, 0.0125, -100, 100, 0)
	errs := []float64{1, 0.5, -0.25, 2, 0}
	u, prev := 0.0, 0.0
	for i, e := range errs {
		d := e - prev
		if i == 0 {
			d = 0 // no error history on the first sample
		}
		u += 0.025*e + 0.0125*d
		prev = e
		if got := pi.Update(e); math.Abs(got-u) > 1e-12 {
			t.Fatalf("step %d: U = %g, want %g", i, got, u)
		}
	}
}

func TestPIClampsOutput(t *testing.T) {
	pi := NewPI(1, 0, 0, 1, 0.5)
	if got := pi.Update(10); got != 1 {
		t.Errorf("U = %g, want clamp at 1", got)
	}
	if got := pi.Update(-10); got < 0 || got > 1 {
		t.Errorf("U = %g escaped bounds", got)
	}
}

func TestPIAntiWindup(t *testing.T) {
	// Saturate high for many steps, then reverse: with anti-windup the
	// output must leave the upper bound on the very next negative step of
	// sufficient size, instead of staying stuck while a wound-up integral
	// unwinds.
	pi := NewPI(0.5, 0, 0, 1, 0)
	for i := 0; i < 100; i++ {
		pi.Update(10)
	}
	got := pi.Update(-1)
	if got >= 1 {
		t.Errorf("anti-windup failed: U = %g after negative error", got)
	}
	if want := 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("U = %g, want %g (1 + 0.5*(-1))", got, want)
	}
}

func TestPIConvergesOnFirstOrderPlant(t *testing.T) {
	// Plant: delay(u) decreases linearly in u (higher frequency, lower
	// delay). The loop must settle with the measured value at the target.
	pi := NewPI(0.05, 0.025, 0, 1, 1)
	target := 150.0
	plant := func(u float64) float64 { return 400 - 300*u } // delay in "ns"
	u := pi.Output()
	for i := 0; i < 2000; i++ {
		meas := plant(u)
		e := (meas - target) / target
		u = pi.Update(e)
	}
	if got := plant(u); math.Abs(got-target) > 1.0 {
		t.Errorf("loop settled at %g, want %g", got, target)
	}
}

func TestPIStableWithPaperGains(t *testing.T) {
	// With the published gains the loop must not oscillate divergently on
	// a monotone plant: the error amplitude must shrink over time.
	pi := NewPI(DefaultKI, DefaultKP, 0, 1, 1)
	target := 150.0
	plant := func(u float64) float64 { return 50 + 400*math.Exp(-3*u) }
	u := pi.Output()
	var early, late float64
	for i := 0; i < 3000; i++ {
		meas := plant(u)
		e := (meas - target) / target
		if i < 100 {
			early += math.Abs(e)
		}
		if i >= 2900 {
			late += math.Abs(e)
		}
		u = pi.Update(e)
	}
	if late/100 > early/100*0.1 {
		t.Errorf("loop not converging: early mean |e| %.4f, late %.4f", early/100, late/100)
	}
}

func TestPIReset(t *testing.T) {
	pi := NewPI(0.1, 0.1, 0, 1, 0.3)
	pi.Update(5)
	pi.Reset(0.7)
	if pi.Output() != 0.7 {
		t.Errorf("Reset output = %g, want 0.7", pi.Output())
	}
	// After reset the derivative term must not see the stale error.
	got := pi.Update(1)
	want := Clip(0.7+0.1*1, 0, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("post-reset update = %g, want %g", got, want)
	}
}

func TestPIInitialOutputClamped(t *testing.T) {
	pi := NewPI(0.1, 0.1, 0, 1, 5)
	if pi.Output() != 1 {
		t.Errorf("initial output = %g, want clamped to 1", pi.Output())
	}
}
