// Package dvfs implements the paper's two global DVFS policies for the NoC
// plus the No-DVFS baseline:
//
//   - RMSD (Rate-based Max Slow Down, Sec. III): open-loop. From the
//     measured average node injection rate λnode it sets
//     Fnoc = Fnode·λnode/λmax clipped to [Fmin, Fmax] (Eq. 2), keeping the
//     network injection rate pinned at λmax just below saturation.
//   - DMSD (Delay-based Max Slow Down, Sec. IV): closed-loop. A
//     proportional-integral controller drives Fnoc so the measured average
//     end-to-end packet delay tracks a target delay.
//
// Controllers consume one Measurement per control period (10 000 node
// cycles in the paper) and return the next network frequency. An optional
// discrete level table quantizes the actuation (paper footnote 2).
package dvfs

import (
	"errors"
	"fmt"

	"repro/internal/volt"
)

// Measurement is the per-control-period input to a policy, aggregated by
// the controller node from the per-node monitors.
type Measurement struct {
	// NodeCycles is the number of node clock cycles in the window.
	NodeCycles float64
	// OfferedFlits is the number of flits generated network-wide during
	// the window (the transmitting nodes' rate reports in RMSD).
	OfferedFlits int64
	// Nodes is the number of injecting nodes.
	Nodes int
	// AvgDelayNs is the average end-to-end packet delay, in nanoseconds,
	// of packets received during the window (the receiving nodes' delay
	// reports in DMSD). It is NaN-free: when no packets arrived,
	// DelaySamples is 0 and AvgDelayNs is 0.
	AvgDelayNs float64
	// DelaySamples is the number of packets behind AvgDelayNs.
	DelaySamples int64
}

// NodeRate returns the measured average injection rate λnode in flits per
// node per node cycle.
func (m Measurement) NodeRate() float64 {
	if m.NodeCycles == 0 || m.Nodes == 0 {
		return 0
	}
	return float64(m.OfferedFlits) / m.NodeCycles / float64(m.Nodes)
}

// Policy is a global DVFS controller: it receives one Measurement per
// control period and returns the network clock frequency for the next
// period, in Hz, already clipped to the actuator's range.
type Policy interface {
	// Name returns the policy's short name ("nodvfs", "rmsd", "dmsd").
	Name() string
	// Next consumes one control-period measurement and returns the next
	// network frequency in Hz.
	Next(m Measurement) float64
	// Freq returns the currently commanded frequency in Hz.
	Freq() float64
	// Reset restores the controller's initial state.
	Reset()
}

// Clip bounds f to [lo, hi].
func Clip(f, lo, hi float64) float64 {
	if f < lo {
		return lo
	}
	if f > hi {
		return hi
	}
	return f
}

// Range is the actuator frequency range shared by the policies.
type Range struct {
	FMin, FMax float64
	// Levels, when non-nil, quantizes commanded frequencies up to the
	// nearest discrete operating point.
	Levels *volt.Levels
}

// DefaultRange returns the paper's range: 333 MHz to 1 GHz, continuous.
func DefaultRange() Range { return Range{FMin: volt.FMin, FMax: volt.FMax} }

// Validate checks the range.
func (r Range) Validate() error {
	if r.FMin <= 0 || r.FMin >= r.FMax {
		return fmt.Errorf("dvfs: invalid frequency range [%g, %g]", r.FMin, r.FMax)
	}
	if r.Levels != nil && len(r.Levels.Freqs) < 2 {
		return errors.New("dvfs: level table needs at least 2 entries")
	}
	return nil
}

// apply clips and optionally quantizes a commanded frequency.
func (r Range) apply(f float64) float64 {
	f = Clip(f, r.FMin, r.FMax)
	if r.Levels != nil {
		f = Clip(r.Levels.Snap(f), r.FMin, r.FMax)
	}
	return f
}

// NoDVFS is the baseline: the network always runs at the node frequency.
type NoDVFS struct {
	fnode float64
}

// NewNoDVFS returns the baseline policy pinned at fnode Hz.
func NewNoDVFS(fnode float64) *NoDVFS { return &NoDVFS{fnode: fnode} }

// Name implements Policy.
func (*NoDVFS) Name() string { return "nodvfs" }

// Next implements Policy.
func (p *NoDVFS) Next(Measurement) float64 { return p.fnode }

// Freq implements Policy.
func (p *NoDVFS) Freq() float64 { return p.fnode }

// Reset implements Policy.
func (p *NoDVFS) Reset() {}
