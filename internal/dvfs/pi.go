package dvfs

// PI is the discrete-time proportional-integral controller of Fig. 3:
//
//	U_n = U_{n-1} + KI·E_n + KP·(E_n − E_{n-1})
//
// (velocity form: the accumulated state U *is* the integral action, and the
// KP term adds the proportional correction as a difference). The output U
// is clamped to [UMin, UMax], with integral anti-windup: U does not
// accumulate past its bounds.
type PI struct {
	KI, KP     float64
	UMin, UMax float64

	u       float64
	prevErr float64
	started bool
}

// NewPI constructs a PI controller with the given gains, output bounds and
// initial output u0 (clamped into bounds).
func NewPI(ki, kp, uMin, uMax, u0 float64) *PI {
	p := &PI{KI: ki, KP: kp, UMin: uMin, UMax: uMax}
	p.u = Clip(u0, uMin, uMax)
	return p
}

// Update consumes one error sample E_n = measured − target and returns the
// new output U_n.
func (p *PI) Update(err float64) float64 {
	dErr := 0.0
	if p.started {
		dErr = err - p.prevErr
	}
	p.started = true
	p.prevErr = err
	p.u = Clip(p.u+p.KI*err+p.KP*dErr, p.UMin, p.UMax)
	return p.u
}

// Output returns the current controller output.
func (p *PI) Output() float64 { return p.u }

// Reset restores the controller to output u0 with no error history.
func (p *PI) Reset(u0 float64) {
	p.u = Clip(u0, p.UMin, p.UMax)
	p.prevErr = 0
	p.started = false
}
