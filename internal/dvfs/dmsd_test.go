package dvfs

import (
	"math"
	"testing"
)

func newTestDMSD(t *testing.T) *DMSD {
	t.Helper()
	p, err := NewDMSD(150, DefaultRange())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDMSDBasics(t *testing.T) {
	p := newTestDMSD(t)
	if p.Name() != "dmsd" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.TargetNs() != 150 {
		t.Errorf("TargetNs = %g", p.TargetNs())
	}
	if p.Freq() != 1e9 {
		t.Errorf("initial Freq = %g, want FMax", p.Freq())
	}
}

func TestDMSDValidation(t *testing.T) {
	if _, err := NewDMSD(0, DefaultRange()); err == nil {
		t.Error("accepted zero target")
	}
	if _, err := NewDMSD(-10, DefaultRange()); err == nil {
		t.Error("accepted negative target")
	}
	if _, err := NewDMSDGains(150, DefaultRange(), 0, 0.01); err == nil {
		t.Error("accepted zero KI")
	}
	if _, err := NewDMSDGains(150, DefaultRange(), 0.025, -1); err == nil {
		t.Error("accepted negative KP")
	}
	if _, err := NewDMSD(150, Range{FMin: 5, FMax: 1}); err == nil {
		t.Error("accepted bad range")
	}
}

func TestDMSDSlowsDownWhenDelayBelowTarget(t *testing.T) {
	p := newTestDMSD(t)
	m := Measurement{AvgDelayNs: 40, DelaySamples: 100}
	f1 := p.Next(m)
	f2 := p.Next(m)
	if !(f2 <= f1 && f1 <= 1e9) {
		t.Errorf("frequency not decreasing: %g, %g", f1, f2)
	}
	for i := 0; i < 5000; i++ {
		p.Next(m)
	}
	// A delay permanently far below target must drive F to the floor.
	if p.Freq() != 333e6 {
		t.Errorf("frequency settled at %g, want FMin", p.Freq())
	}
}

func TestDMSDSpeedsUpWhenDelayAboveTarget(t *testing.T) {
	p := newTestDMSD(t)
	// First push it down...
	for i := 0; i < 5000; i++ {
		p.Next(Measurement{AvgDelayNs: 10, DelaySamples: 10})
	}
	low := p.Freq()
	// ...then present a delay violation.
	f := p.Next(Measurement{AvgDelayNs: 600, DelaySamples: 10})
	if f <= low {
		t.Errorf("frequency did not rise on delay violation: %g -> %g", low, f)
	}
	for i := 0; i < 5000; i++ {
		p.Next(Measurement{AvgDelayNs: 600, DelaySamples: 10})
	}
	if p.Freq() != 1e9 {
		t.Errorf("persistent violation settled at %g, want FMax", p.Freq())
	}
}

func TestDMSDTracksTargetOnPlant(t *testing.T) {
	// Synthetic plant with delay falling in frequency, mimicking an
	// unsaturated NoC: delay(F) = L0 / (F in GHz) with L0 chosen so the
	// target is reachable inside the range.
	p := newTestDMSD(t)
	plant := func(f float64) float64 { return 80 / (f / 1e9) } // 80 ns at 1 GHz
	f := p.Freq()
	for i := 0; i < 4000; i++ {
		f = p.Next(Measurement{AvgDelayNs: plant(f), DelaySamples: 50})
	}
	got := plant(f)
	if math.Abs(got-150) > 3 {
		t.Errorf("loop settled at delay %.1f ns, want 150 ± 3", got)
	}
}

func TestDMSDCoastsDownWithNoTraffic(t *testing.T) {
	p := newTestDMSD(t)
	for i := 0; i < 5000; i++ {
		p.Next(Measurement{DelaySamples: 0})
	}
	if p.Freq() != 333e6 {
		t.Errorf("idle network frequency %g, want FMin", p.Freq())
	}
}

func TestDMSDReset(t *testing.T) {
	p := newTestDMSD(t)
	for i := 0; i < 100; i++ {
		p.Next(Measurement{AvgDelayNs: 10, DelaySamples: 10})
	}
	p.Reset()
	if p.Freq() != 1e9 {
		t.Errorf("Reset Freq = %g, want FMax", p.Freq())
	}
}

func TestDMSDFrequencyAlwaysInRange(t *testing.T) {
	p := newTestDMSD(t)
	delays := []float64{0, 1, 150, 1e6, 75, 3000, 150, 150, 0.1}
	for i := 0; i < 2000; i++ {
		d := delays[i%len(delays)]
		f := p.Next(Measurement{AvgDelayNs: d, DelaySamples: 7})
		if f < 333e6-1 || f > 1e9+1 {
			t.Fatalf("frequency %g escaped range", f)
		}
	}
}

func TestDMSDGainAblation(t *testing.T) {
	// Higher KI converges faster on a step; verify ordering of settling
	// behaviour rather than absolute values.
	settle := func(ki float64) int {
		p, err := NewDMSDGains(150, DefaultRange(), ki, ki/2)
		if err != nil {
			t.Fatal(err)
		}
		plant := func(f float64) float64 { return 80 / (f / 1e9) }
		f := p.Freq()
		for i := 0; i < 8000; i++ {
			f = p.Next(Measurement{AvgDelayNs: plant(f), DelaySamples: 10})
			if math.Abs(plant(f)-150) < 2 {
				return i
			}
		}
		return 8000
	}
	fast := settle(0.1)
	slow := settle(0.005)
	if fast >= slow {
		t.Errorf("KI=0.1 settled in %d periods, KI=0.005 in %d: expected faster convergence with higher gain", fast, slow)
	}
}
