package dvfs

import "fmt"

// RMSD is the Rate-based Max Slow Down policy (Sec. III, Fig. 1). The
// controller node receives the average injection rate measured by the
// transmitting nodes and applies the open-loop frequency law of Eq. (2):
//
//	Fnoc = Fnode · λnode / λmax
//
// clipped to [FMin, FMax]. λmax is the target network injection rate, set
// a safety margin below the saturation rate (10% in the paper), so the
// network always operates just below saturation at the minimum frequency
// able to sustain the offered load.
type RMSD struct {
	fnode  float64
	lmax   float64
	rng    Range
	f      float64
	smooth float64 // EWMA coefficient on the measured rate, 0 = off
	ewma   float64
	seeded bool
}

// NewRMSD builds the policy. fnode is the node clock (Hz), lambdaMax the
// target network injection rate in flits per node per network cycle, and
// rng the actuator range. The initial frequency is FMax (the network boots
// at full speed, as a DVFS controller would before its first measurement).
func NewRMSD(fnode, lambdaMax float64, rng Range) (*RMSD, error) {
	if err := rng.Validate(); err != nil {
		return nil, err
	}
	if fnode <= 0 {
		return nil, fmt.Errorf("dvfs: node frequency %g must be positive", fnode)
	}
	if lambdaMax <= 0 || lambdaMax > 1 {
		return nil, fmt.Errorf("dvfs: lambdaMax %g outside (0, 1]", lambdaMax)
	}
	return &RMSD{fnode: fnode, lmax: lambdaMax, rng: rng, f: rng.FMax}, nil
}

// SetSmoothing enables exponential smoothing of the measured rate with
// coefficient alpha in (0,1]; alpha=1 (or 0) disables smoothing. Smoothing
// is an extension for bursty traffic; the paper's experiments use the raw
// window average.
func (p *RMSD) SetSmoothing(alpha float64) { p.smooth = alpha }

// LambdaMax returns the configured target network injection rate.
func (p *RMSD) LambdaMax() float64 { return p.lmax }

// LambdaMin returns the node injection rate below which the frequency
// clips at FMin: λmin = λmax·FMin/Fnode (Sec. III).
func (p *RMSD) LambdaMin() float64 { return p.lmax * p.rng.FMin / p.fnode }

// Name implements Policy.
func (*RMSD) Name() string { return "rmsd" }

// Next implements Policy: the frequency-scaling law of Eq. (2).
func (p *RMSD) Next(m Measurement) float64 {
	rate := m.NodeRate()
	if p.smooth > 0 && p.smooth < 1 {
		if !p.seeded {
			p.ewma = rate
			p.seeded = true
		} else {
			p.ewma += p.smooth * (rate - p.ewma)
		}
		rate = p.ewma
	}
	p.f = p.rng.apply(p.fnode * rate / p.lmax)
	return p.f
}

// Freq implements Policy.
func (p *RMSD) Freq() float64 { return p.f }

// Reset implements Policy.
func (p *RMSD) Reset() {
	p.f = p.rng.FMax
	p.ewma = 0
	p.seeded = false
}

// FreqForRate returns the steady-state frequency Eq. (2) commands at node
// rate λnode, without mutating the controller; useful for analysis and the
// Fig. 4(a) curves.
func (p *RMSD) FreqForRate(lambdaNode float64) float64 {
	return p.rng.apply(p.fnode * lambdaNode / p.lmax)
}
