package dvfs

import "fmt"

// DMSD is the Delay-based Max Slow Down policy (Sec. IV, Fig. 3). The
// receiving nodes measure end-to-end packet delays from header timestamps;
// the controller node averages them each control period, subtracts the
// target delay, and feeds the error to a PI controller whose output maps
// linearly onto the frequency range:
//
//	E_n = (avgDelay − targetDelay) / targetDelay
//	U_n = U_{n−1} + KI·E_n + KP·(E_n − E_{n−1}),  U ∈ [0, 1]
//	Fnoc = FMin + U·(FMax − FMin)
//
// A positive error (delay above target) raises U and hence the frequency.
// The error is normalized by the target so the published gains (KI=0.025,
// KP=0.0125) are dimensionless and independent of the target's magnitude.
type DMSD struct {
	targetNs float64
	rng      Range
	pi       *PI
	f        float64
	u0       float64
}

// Paper-published PI gains (Sec. IV).
const (
	DefaultKI = 0.025
	DefaultKP = 0.0125
)

// ControlPeriodNodeCycles is the paper's control update period: 10 000
// clock cycles at the highest frequency (i.e. node clock cycles).
const ControlPeriodNodeCycles = 10000

// NewDMSD builds the policy with the paper's gains. targetNs is the delay
// setpoint in nanoseconds. The controller starts at FMax (U=1): the
// network boots at full speed and the loop slows it down until the delay
// rises to the target.
func NewDMSD(targetNs float64, rng Range) (*DMSD, error) {
	return NewDMSDGains(targetNs, rng, DefaultKI, DefaultKP)
}

// NewDMSDGains builds the policy with explicit PI gains, supporting the
// gain-sensitivity ablation.
func NewDMSDGains(targetNs float64, rng Range, ki, kp float64) (*DMSD, error) {
	if err := rng.Validate(); err != nil {
		return nil, err
	}
	if targetNs <= 0 {
		return nil, fmt.Errorf("dvfs: target delay %g ns must be positive", targetNs)
	}
	if ki <= 0 {
		return nil, fmt.Errorf("dvfs: KI %g must be positive", ki)
	}
	if kp < 0 {
		return nil, fmt.Errorf("dvfs: KP %g must be non-negative", kp)
	}
	d := &DMSD{
		targetNs: targetNs,
		rng:      rng,
		pi:       NewPI(ki, kp, 0, 1, 1),
		f:        rng.FMax,
		u0:       1,
	}
	return d, nil
}

// WarmStart sets the controller's initial (and Reset) operating point to
// frequency f, clipped into range. A sweep harness that chains operating
// points warm-starts each run from the previous settled frequency — the
// behaviour of a continuously running on-chip controller — which removes
// the long FMax-to-setpoint transient the published gains would otherwise
// have to traverse at every point.
func (p *DMSD) WarmStart(f float64) {
	f = Clip(f, p.rng.FMin, p.rng.FMax)
	p.u0 = (f - p.rng.FMin) / (p.rng.FMax - p.rng.FMin)
	p.Reset()
}

// TargetNs returns the delay setpoint in nanoseconds.
func (p *DMSD) TargetNs() float64 { return p.targetNs }

// Name implements Policy.
func (*DMSD) Name() string { return "dmsd" }

// Next implements Policy.
func (p *DMSD) Next(m Measurement) float64 {
	if m.DelaySamples == 0 {
		// No packets arrived in the window: with nothing in flight the
		// delay constraint is trivially met, so coast down gently by
		// feeding the most optimistic error (delay 0).
		u := p.pi.Update(-1)
		p.f = p.rng.apply(p.rng.FMin + u*(p.rng.FMax-p.rng.FMin))
		return p.f
	}
	err := (m.AvgDelayNs - p.targetNs) / p.targetNs
	u := p.pi.Update(err)
	p.f = p.rng.apply(p.rng.FMin + u*(p.rng.FMax-p.rng.FMin))
	return p.f
}

// Freq implements Policy.
func (p *DMSD) Freq() float64 { return p.f }

// Reset implements Policy: the controller returns to its initial operating
// point (FMax unless WarmStart moved it).
func (p *DMSD) Reset() {
	p.pi.Reset(p.u0)
	p.f = p.rng.apply(p.rng.FMin + p.u0*(p.rng.FMax-p.rng.FMin))
}
