package dvfs_test

import (
	"fmt"

	"repro/internal/dvfs"
)

// ExampleRMSD shows the open-loop frequency law of the paper's Eq. (2):
// the controller scales the clock linearly with the measured injection
// rate, clipping at the range limits.
func ExampleRMSD() {
	rmsd, err := dvfs.NewRMSD(1e9, 0.378, dvfs.DefaultRange())
	if err != nil {
		panic(err)
	}
	for _, rate := range []float64{0.05, 0.2, 0.378, 0.5} {
		fmt.Printf("λnode=%.3f -> %.0f MHz\n", rate, rmsd.FreqForRate(rate)/1e6)
	}
	fmt.Printf("λmin=%.3f\n", rmsd.LambdaMin())
	// Output:
	// λnode=0.050 -> 333 MHz
	// λnode=0.200 -> 529 MHz
	// λnode=0.378 -> 1000 MHz
	// λnode=0.500 -> 1000 MHz
	// λmin=0.126
}

// ExampleDMSD drives the closed-loop controller against a toy plant whose
// delay falls as the clock rises; the loop settles with the delay at the
// 150 ns target.
func ExampleDMSD() {
	dmsd, err := dvfs.NewDMSD(150, dvfs.DefaultRange())
	if err != nil {
		panic(err)
	}
	plant := func(f float64) float64 { return 80 / (f / 1e9) } // ns
	f := dmsd.Freq()
	for i := 0; i < 3000; i++ {
		f = dmsd.Next(dvfs.Measurement{AvgDelayNs: plant(f), DelaySamples: 100})
	}
	fmt.Printf("settled: %.0f MHz, delay %.0f ns\n", f/1e6, plant(f))
	// Output:
	// settled: 533 MHz, delay 150 ns
}
