// Package queueing provides the single-server analytic model underlying
// the paper's delay anomaly. The non-monotonic delay of a rate-based DVFS
// policy was first shown for M/M/1-style systems by Bianco, Casu,
// Giaccone & Ricca, "Joint delay and power control in single-server
// queueing systems" (IEEE GreenCom 2013) — the paper's reference [12];
// Sec. III observes the same behaviour "was never observed before in the
// context of an NoC with DVFS".
//
// The model: packets arrive as a Poisson process with rate λ (packets per
// second); the server completes work at rate µ(F) = µ0·F packets per
// second, where F is the DVFS-controlled clock. The M/M/1 sojourn time is
//
//	W(λ, F) = 1 / (µ0·F − λ),   λ < µ0·F.
//
// The three policies map to frequency laws:
//
//	No-DVFS:  F = Fmax
//	RMSD:     F such that the utilization ρ = λ/(µ0·F) equals a fixed
//	          ρmax < 1 (serve just above the arrival rate), clipped to
//	          [Fmin, Fmax] — the queueing analogue of Eq. (2)
//	DMSD:     F such that W equals a target delay, clipped — the analogue
//	          of the PI loop's fixed point
//
// Under RMSD the delay is non-monotonic in λ: below the clipping point
// λmin = ρmax·µ0·Fmin the server is pinned at Fmin and W grows with λ;
// above it the utilization is constant and W = ρmax/(λ·(1−ρmax)) *falls*
// as 1/λ. The peak sits exactly at λmin — the shape of Fig. 2(b).
//
// Power combines the same components as package power: dynamic ∝ V²F and
// leakage ∝ V³, with voltages from the alpha-power model of package volt.
// The model is deliberately coarse — its role is to corroborate the
// simulator's *shapes*, not its numbers.
package queueing

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/volt"
)

// Model is the single-server DVFS plant.
type Model struct {
	// Mu0 is the service capacity per hertz: µ(F) = Mu0·F packets/s.
	Mu0 float64
	// FMin, FMax bound the actuator, in Hz.
	FMin, FMax float64
	// VF maps frequency to supply voltage.
	VF volt.Model

	// PDyn0 is the dynamic power at (FMax, VNom) and full utilization, in
	// watts; it scales with V²F and linearly with utilization.
	PDyn0 float64
	// PIdle0 is the utilization-independent dynamic power (clock tree) at
	// (FMax, VNom), in watts; it scales with V²F.
	PIdle0 float64
	// PLeak0 is the leakage at VNom, in watts; it scales with V³.
	PLeak0 float64
	// VNom is the voltage at FMax.
	VNom float64
}

// New returns a model matched to the paper's operating range with
// power weights qualitatively matching the 5x5 NoC calibration: at
// (1 GHz, 0.9 V) the fully loaded server burns ~180 mW of activity power,
// ~37 mW of clock power and ~12 mW of leakage.
func New() Model {
	return Model{
		Mu0:    1.0, // one packet per clock cycle at full speed
		FMin:   volt.FMin,
		FMax:   volt.FMax,
		VF:     volt.New(),
		PDyn0:  180e-3,
		PIdle0: 37e-3,
		PLeak0: 12e-3,
		VNom:   volt.VMax,
	}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	var errs []error
	if m.Mu0 <= 0 {
		errs = append(errs, fmt.Errorf("Mu0 %g must be positive", m.Mu0))
	}
	if m.FMin <= 0 || m.FMin >= m.FMax {
		errs = append(errs, fmt.Errorf("bad frequency range [%g, %g]", m.FMin, m.FMax))
	}
	if m.VNom <= 0 {
		errs = append(errs, fmt.Errorf("VNom %g must be positive", m.VNom))
	}
	if m.PDyn0 < 0 || m.PIdle0 < 0 || m.PLeak0 < 0 {
		errs = append(errs, errors.New("negative power weight"))
	}
	return errors.Join(errs...)
}

// MaxArrivalRate returns the largest sustainable λ (packets/s): the
// service rate at FMax.
func (m Model) MaxArrivalRate() float64 { return m.Mu0 * m.FMax }

// Sojourn returns the M/M/1 mean sojourn time in seconds at arrival rate
// lambda and frequency f, or +Inf when the queue is unstable.
func (m Model) Sojourn(lambda, f float64) float64 {
	mu := m.Mu0 * f
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// clip bounds f to the actuator range.
func (m Model) clip(f float64) float64 {
	return math.Min(m.FMax, math.Max(m.FMin, f))
}

// FreqNoDVFS returns FMax regardless of load.
func (m Model) FreqNoDVFS(float64) float64 { return m.FMax }

// FreqRMSD returns the rate-based frequency law: the frequency pinning
// the utilization at rhoMax, clipped — the analogue of Eq. (2).
func (m Model) FreqRMSD(lambda, rhoMax float64) float64 {
	if rhoMax <= 0 || rhoMax >= 1 {
		return m.FMax
	}
	return m.clip(lambda / (rhoMax * m.Mu0))
}

// FreqDMSD returns the delay-based frequency law: the minimum frequency
// whose sojourn time does not exceed targetS, clipped. Above the range the
// target is unreachable and the law returns FMax (the PI loop rails).
func (m Model) FreqDMSD(lambda, targetS float64) float64 {
	if targetS <= 0 {
		return m.FMax
	}
	// W = 1/(µ0 F − λ) = target  ⇒  F = (λ + 1/target)/µ0.
	return m.clip((lambda + 1/targetS) / m.Mu0)
}

// LambdaMin returns the arrival rate at which the RMSD law leaves the
// FMin clip: ρmax·µ0·FMin — the delay peak location.
func (m Model) LambdaMin(rhoMax float64) float64 {
	return rhoMax * m.Mu0 * m.FMin
}

// Power returns the model power in watts at arrival rate lambda and
// frequency f: utilization-scaled dynamic power plus clock and leakage.
func (m Model) Power(lambda, f float64) float64 {
	v := m.VF.VoltageFor(f)
	sv := v / m.VNom
	rho := math.Min(1, lambda/(m.Mu0*f))
	dyn := (m.PDyn0*rho + m.PIdle0) * sv * sv * (f / m.FMax)
	leak := m.PLeak0 * sv * sv * sv
	return dyn + leak
}

// PolicyPoint is one analytic operating point.
type PolicyPoint struct {
	Lambda float64 // packets per second
	Freq   float64 // Hz
	DelayS float64 // seconds (+Inf when unstable)
	PowerW float64
}

// Curve evaluates a frequency law over n arrival rates spanning
// (0, frac·MaxArrivalRate].
type FreqLaw func(lambda float64) float64

// Sweep evaluates the law across n points up to frac of the maximum
// arrival rate.
func (m Model) Sweep(law FreqLaw, frac float64, n int) []PolicyPoint {
	if n < 1 {
		return nil
	}
	out := make([]PolicyPoint, 0, n)
	max := frac * m.MaxArrivalRate()
	for i := 1; i <= n; i++ {
		lambda := max * float64(i) / float64(n)
		f := law(lambda)
		out = append(out, PolicyPoint{
			Lambda: lambda,
			Freq:   f,
			DelayS: m.Sojourn(lambda, f),
			PowerW: m.Power(lambda, f),
		})
	}
	return out
}

// RMSDPeakRatio returns the analytic ratio between the RMSD delay peak
// (at λmin) and the No-DVFS delay at the same arrival rate — the
// queueing-model counterpart of the "about 9x" annotation of Fig. 2(b).
func (m Model) RMSDPeakRatio(rhoMax float64) float64 {
	lmin := m.LambdaMin(rhoMax)
	wr := m.Sojourn(lmin, m.FreqRMSD(lmin, rhoMax))
	wn := m.Sojourn(lmin, m.FMax)
	return wr / wn
}
