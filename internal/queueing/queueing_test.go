package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if err := New().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	m := New()
	m.Mu0 = 0
	if err := m.Validate(); err == nil {
		t.Error("accepted zero Mu0")
	}
	m = New()
	m.FMin, m.FMax = 2e9, 1e9
	if err := m.Validate(); err == nil {
		t.Error("accepted reversed range")
	}
	m = New()
	m.PDyn0 = -1
	if err := m.Validate(); err == nil {
		t.Error("accepted negative power weight")
	}
}

func TestSojournMatchesMM1(t *testing.T) {
	m := New()
	// µ = 1e9 at FMax; at λ = 0.5e9, W = 1/(1e9-0.5e9) = 2 ns.
	if got := m.Sojourn(0.5e9, m.FMax); math.Abs(got-2e-9) > 1e-15 {
		t.Errorf("W = %g, want 2 ns", got)
	}
	if got := m.Sojourn(2e9, m.FMax); !math.IsInf(got, 1) {
		t.Errorf("unstable queue W = %g, want +Inf", got)
	}
}

func TestFreqRMSDLaw(t *testing.T) {
	m := New()
	const rho = 0.9
	// In-range: F = λ/(ρ·µ0).
	lambda := 0.6e9
	want := lambda / rho
	if got := m.FreqRMSD(lambda, rho); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("F = %g, want %g", got, want)
	}
	// Clipping.
	if got := m.FreqRMSD(1e6, rho); got != m.FMin {
		t.Errorf("low-rate F = %g, want FMin", got)
	}
	if got := m.FreqRMSD(2e9, rho); got != m.FMax {
		t.Errorf("high-rate F = %g, want FMax", got)
	}
	// Degenerate rho falls back to FMax.
	if got := m.FreqRMSD(0.5e9, 0); got != m.FMax {
		t.Errorf("rho=0 F = %g, want FMax", got)
	}
}

func TestFreqDMSDHitsTarget(t *testing.T) {
	m := New()
	target := 5e-9
	for _, lambda := range []float64{0.2e9, 0.4e9, 0.6e9} {
		f := m.FreqDMSD(lambda, target)
		if f == m.FMin || f == m.FMax {
			continue // clipped: target not exactly met
		}
		if got := m.Sojourn(lambda, f); math.Abs(got-target)/target > 1e-9 {
			t.Errorf("λ=%g: W = %g, want %g", lambda, got, target)
		}
	}
	if got := m.FreqDMSD(0.5e9, 0); got != m.FMax {
		t.Errorf("zero target F = %g, want FMax", got)
	}
}

func TestRMSDUtilizationConstantInRangeQuick(t *testing.T) {
	m := New()
	const rho = 0.9
	f := func(raw uint16) bool {
		lambda := m.LambdaMin(rho) + (rho*m.MaxArrivalRate()-m.LambdaMin(rho))*float64(raw)/65535
		fr := m.FreqRMSD(lambda, rho)
		if fr == m.FMin || fr == m.FMax {
			return true
		}
		util := lambda / (m.Mu0 * fr)
		return math.Abs(util-rho) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRMSDDelayNonMonotonic(t *testing.T) {
	// The analytic anomaly: delay rises up to λmin, then falls.
	m := New()
	const rho = 0.9
	law := func(l float64) float64 { return m.FreqRMSD(l, rho) }
	pts := m.Sweep(law, rho*0.99, 200)
	lmin := m.LambdaMin(rho)
	peakIdx := 0
	for i, p := range pts {
		if p.DelayS > pts[peakIdx].DelayS {
			peakIdx = i
		}
	}
	peakLambda := pts[peakIdx].Lambda
	if math.Abs(peakLambda-lmin)/lmin > 0.05 {
		t.Errorf("delay peak at λ=%g, want λmin=%g", peakLambda, lmin)
	}
	// Monotone increasing before the peak, decreasing after.
	for i := 1; i <= peakIdx; i++ {
		if pts[i].DelayS < pts[i-1].DelayS {
			t.Fatalf("delay not increasing below λmin at %d", i)
		}
	}
	for i := peakIdx + 1; i < len(pts); i++ {
		if pts[i].DelayS > pts[i-1].DelayS {
			t.Fatalf("delay not decreasing above λmin at %d", i)
		}
	}
}

func TestRMSDPeakRatioOrderOfMagnitude(t *testing.T) {
	// The paper annotates ~9x in the NoC; the pure M/M/1 model gives the
	// same order of magnitude for ρmax = 0.9.
	m := New()
	ratio := m.RMSDPeakRatio(0.9)
	if ratio < 3 || ratio > 40 {
		t.Errorf("analytic peak ratio %.1f outside plausible band [3, 40]", ratio)
	}
}

func TestPowerOrderingAcrossPolicies(t *testing.T) {
	// At every stable arrival rate: P(RMSD) <= P(DMSD) <= P(NoDVFS),
	// because RMSD runs at the lowest frequency of the three.
	m := New()
	const rho = 0.9
	target := 4e-9
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7} {
		lambda := frac * m.MaxArrivalRate()
		fr := m.FreqRMSD(lambda, rho)
		fd := m.FreqDMSD(lambda, target)
		pn := m.Power(lambda, m.FMax)
		pr := m.Power(lambda, fr)
		pd := m.Power(lambda, fd)
		if pr > pd+1e-12 || pd > pn+1e-12 {
			t.Errorf("λ=%.2g: power ordering violated: rmsd %.3g dmsd %.3g nodvfs %.3g",
				lambda, pr, pd, pn)
		}
	}
}

func TestPowerMonotoneInFrequencyQuick(t *testing.T) {
	m := New()
	f := func(a, b uint16) bool {
		f1 := m.FMin + (m.FMax-m.FMin)*float64(a)/65535
		f2 := m.FMin + (m.FMax-m.FMin)*float64(b)/65535
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		lambda := 0.2 * m.MaxArrivalRate()
		return m.Power(lambda, f1) <= m.Power(lambda, f2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSweepShapes(t *testing.T) {
	m := New()
	pts := m.Sweep(m.FreqNoDVFS, 0.9, 10)
	if len(pts) != 10 {
		t.Fatalf("sweep length %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Lambda <= pts[i-1].Lambda {
			t.Fatal("sweep not monotone in lambda")
		}
		if pts[i].DelayS < pts[i-1].DelayS {
			t.Fatal("No-DVFS delay must rise with load")
		}
	}
	if m.Sweep(m.FreqNoDVFS, 0.9, 0) != nil {
		t.Error("zero-point sweep should be nil")
	}
}

func TestDMSDDelayFlatWhereFeasible(t *testing.T) {
	m := New()
	target := 4e-9
	law := func(l float64) float64 { return m.FreqDMSD(l, target) }
	pts := m.Sweep(law, 0.9, 50)
	for _, p := range pts {
		if p.Freq > m.FMin && p.Freq < m.FMax {
			if math.Abs(p.DelayS-target)/target > 1e-9 {
				t.Fatalf("λ=%g: DMSD delay %g, want %g", p.Lambda, p.DelayS, target)
			}
		}
	}
}
