package queue

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/nocsim"
	"repro/nocsim/manifest"
	"repro/nocsim/results"
)

// Config tunes a Coordinator.
type Config struct {
	// LeaseTTL is how long a worker holds a leased point before it may be
	// re-issued — but only until the coordinator has observed enough of a
	// manifest's point latencies to estimate its own TTL (see TTLFloor).
	// Zero means 60 seconds — generous against full-window simulation
	// points that take tens of seconds.
	LeaseTTL time.Duration
	// MaxLeases caps the number of outstanding leases across all
	// manifests; further requests get StatusWait until a lease resolves
	// or expires. Zero means 1024. This is the coordinator's only
	// concurrency knob: how many sims actually run at once is each worker
	// process's own leaf budget.
	MaxLeases int
	// TTLFloor and TTLCeil clamp the adaptive lease TTL the coordinator
	// derives from observed point latencies (per manifest, decayed
	// mean + variance; LeaseTTL is the fallback until warmed up). Zero
	// means 2 seconds and 10 minutes.
	TTLFloor time.Duration
	TTLCeil  time.Duration
	// AuthToken, when non-empty, requires every HTTP request — lease,
	// post, status, metrics, all of them — to carry it as
	// "Authorization: Bearer <token>"; anything else is answered 401.
	// In-process method calls are unaffected (they are already trusted).
	AuthToken string
	// Store, when non-nil, journals every accepted result so a restarted
	// coordinator resumes from disk (hand the loaded points to Add).
	Store *manifest.DirStore
	// Results, when non-nil, mirrors every registered plan and accepted
	// point into the persistent results store the query service reads.
	// The journal stays the durable source of truth: a results-store
	// write failure is counted (results_store_errors_total) but does not
	// fail the post — a backfill import over the journal repairs the
	// store.
	Results *results.Store
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// A Coordinator owns the lease state of a set of manifests and exposes
// it over HTTP (Handler). It is safe for concurrent use and runs no
// background goroutines; create it, Add manifests, serve Handler, and
// Close it when the server is down.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	names    []string        // registration order, for fair scanning
	jobs     map[string]*job // keyed by manifest name
	sealed   bool            // no more Adds coming (see Seal)
	quiesced bool            // draining for shutdown: no new leases (see Quiesce)
	expected map[string]bool // follow-on manifests promised but not yet added (see Expect)
	met      metricsState
}

type job struct {
	m       *manifest.Manifest
	sum     string // plan fingerprint, echoed in leases and checked on post
	total   int
	done    map[int]nocsim.Result
	pending map[int]bool // being journaled right now (c.mu released for the fsync)
	leases  map[int]lease
	expired map[int]bool // lease expired; the next grant is a re-issue
	// firstGrant remembers when each in-flight point was FIRST leased,
	// surviving expiry and re-issue, so the latency fed to the adaptive
	// TTL is first-grant to first-accepted-post. Measuring only live
	// leases would be fatal: a too-short TTL estimate would expire every
	// slow point's lease before its post, the slow latency would never be
	// sampled, and the estimate could never recover. Across a re-issue
	// this overestimates (it includes the dead worker's silence), which
	// errs toward longer TTLs — the safe direction.
	firstGrant map[int]time.Time
	lat        ttlEstimator      // observed point latencies of this manifest
	journal    *manifest.Journal // nil without a store
}

// ttlLocked is the TTL a lease granted now would get: adaptive once the
// manifest's latency estimate has warmed up, the configured fallback
// before. Callers hold c.mu.
func (j *job) ttlLocked(cfg Config) time.Duration {
	return j.lat.ttl(cfg.LeaseTTL, cfg.TTLFloor, cfg.TTLCeil)
}

type lease struct {
	worker   string
	deadline time.Time
}

// New returns an empty coordinator.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 60 * time.Second
	}
	if cfg.MaxLeases <= 0 {
		cfg.MaxLeases = 1024
	}
	if cfg.TTLFloor <= 0 {
		cfg.TTLFloor = 2 * time.Second
	}
	if cfg.TTLCeil <= 0 {
		cfg.TTLCeil = 10 * time.Minute
	}
	if cfg.TTLCeil < cfg.TTLFloor {
		cfg.TTLCeil = cfg.TTLFloor
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Coordinator{
		cfg:      cfg,
		jobs:     map[string]*job{},
		expected: map[string]bool{},
		met: metricsState{
			rate:    rateWindow{window: rateWindowSize},
			workers: map[string]*workerStats{},
		},
	}
}

// Add registers a manifest and its already-completed points (from a
// resumed journal; nil for a fresh run). With a store configured, the
// journal for the manifest is opened for appends — persist the manifest
// itself (DirStore.SaveManifest or sweep.PlanOrResume) before calling
// Add, since saving later would truncate the very journal the
// coordinator writes.
func (c *Coordinator) Add(m *manifest.Manifest, have map[int]nocsim.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[m.Name]; ok {
		return fmt.Errorf("queue: manifest %q already registered", m.Name)
	}
	sum, err := manifest.Sum(m)
	if err != nil {
		return err
	}
	return c.registerLocked(m, sum, have)
}

// registerLocked is the shared registration body behind Add and
// AddFollowOn: mirror the plan (and any resumed points) into the results
// store, build the job, and open its journal. Callers hold c.mu and have
// already verified the name is free.
func (c *Coordinator) registerLocked(m *manifest.Manifest, sum string, have map[int]nocsim.Result) error {
	if c.cfg.Results != nil {
		// Register the plan and backfill the resumed points, so the store
		// is complete even when it was attached after the journal already
		// held results. Unlike per-point mirroring this is registration:
		// failing it loudly here beats serving a store that silently
		// cannot accept this plan's points.
		if _, _, err := c.cfg.Results.ImportJournal(m, have); err != nil {
			return err
		}
	}
	j := &job{
		m:          m,
		sum:        sum,
		total:      m.NumPoints(),
		done:       map[int]nocsim.Result{},
		pending:    map[int]bool{},
		leases:     map[int]lease{},
		expired:    map[int]bool{},
		firstGrant: map[int]time.Time{},
	}
	for i, r := range have {
		if i >= 0 && i < j.total {
			j.done[i] = r
		}
	}
	if c.cfg.Store != nil {
		journal, err := c.cfg.Store.Journal(m.Name)
		if err != nil {
			return err
		}
		j.journal = journal
	}
	c.jobs[m.Name] = j
	c.names = append(c.names, m.Name)
	return nil
}

// Expect promises that a follow-on manifest with the given name will be
// added later — typically an adaptive client registering its refinement
// pass before the coarse results that determine it exist. While any
// expectation is outstanding, unscoped workers are told to wait instead
// of "done" (even after Seal) and Complete reports false, so a fleet
// never drains away between a coarse pass finishing and its refinement
// arriving. The expectation is cleared by AddFollowOn of that name, or
// by Unexpect when the refinement turns out to be empty.
func (c *Coordinator) Expect(name string) error {
	if name == "" {
		return fmt.Errorf("queue: expectation needs a manifest name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[name]; ok {
		return nil // already registered: nothing left to expect
	}
	c.expected[name] = true
	return nil
}

// Unexpect withdraws an expectation registered with Expect — the
// adaptive client's way of saying "no refinement after all". Unknown
// names are a no-op so error-path cleanup can call it unconditionally.
func (c *Coordinator) Unexpect(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.expected, name)
}

// AddFollowOn registers a manifest appended to a live (possibly sealed)
// plan — the refinement pass of an adaptive sweep. Unlike Add it is
// idempotent: re-adding a manifest already registered under the same
// plan fingerprint succeeds silently (two adaptive clients refining the
// same coarse results compute byte-identical children), while the same
// name under a different fingerprint is refused — that can only be a
// stale child derived from an earlier parent plan. With a store
// configured the manifest is persisted (or, when an identical plan is
// already on disk, its journaled points resumed) before registration,
// exactly like the serve path does for its initial manifests. Any
// expectation registered for the name is cleared.
func (c *Coordinator) AddFollowOn(m *manifest.Manifest) error {
	sum, err := manifest.Sum(m)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[m.Name]; ok {
		if j.sum != sum {
			return fmt.Errorf("queue: follow-on manifest %q already registered with plan %s (got %s): stale refinement of an earlier parent", m.Name, j.sum, sum)
		}
		delete(c.expected, m.Name)
		return nil
	}
	var have map[int]nocsim.Result
	if c.cfg.Store != nil {
		stored, err := c.cfg.Store.LoadManifest(m.Name)
		if err != nil {
			return err
		}
		storedSum := ""
		if stored != nil {
			if storedSum, err = manifest.Sum(stored); err != nil {
				return err
			}
		}
		if storedSum == sum {
			// The same refinement was journaled by an earlier run (a
			// restarted coordinator, a previous adaptive client): resume
			// its completed points instead of recomputing them.
			if have, err = c.cfg.Store.LoadPoints(m.Name); err != nil {
				return err
			}
		} else if err := c.cfg.Store.SaveManifest(m); err != nil {
			return err
		}
	}
	if err := c.registerLocked(m, sum, have); err != nil {
		return err
	}
	delete(c.expected, m.Name)
	c.met.followOnTotal++
	return nil
}

// Seal declares registration finished: no more Adds are coming. Until a
// coordinator is sealed, an unscoped lease request never answers
// StatusDone — only StatusWait — so workers that attach while the serve
// loop is still planning later manifests don't drain away after the
// first one completes. Leases scoped to a named manifest are unaffected
// (that manifest's completion is its own answer).
func (c *Coordinator) Seal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sealed = true
}

// Quiesce puts the coordinator into shutdown drain: every further lease
// request is answered StatusWait, so no new work leaves the building,
// while posts of already-leased points are still accepted and journaled.
// It is the first step of a graceful shutdown — quiesce, let the HTTP
// server drain in-flight requests, then Close to flush and fsync the
// journals.
func (c *Coordinator) Quiesce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quiesced = true
}

// Close releases the journals. Call it after the HTTP server is shut
// down.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, j := range c.jobs {
		if j.journal != nil {
			if err := j.journal.Close(); err != nil && first == nil {
				first = err
			}
			j.journal = nil
		}
	}
	return first
}

// pruneLocked drops expired leases (re-issuable from now on) and returns
// the number still outstanding. Callers hold c.mu.
func (c *Coordinator) pruneLocked(now time.Time) int {
	outstanding := 0
	for _, j := range c.jobs {
		for i, l := range j.leases {
			if !l.deadline.After(now) {
				delete(j.leases, i)
				j.expired[i] = true
			}
		}
		outstanding += len(j.leases)
	}
	return outstanding
}

// freeLocked returns the lowest free (not done, not being journaled,
// not leased) index of j, or -1 when none.
func (j *job) freeLocked() int {
	for i := 0; i < j.total; i++ {
		if _, ok := j.done[i]; ok {
			continue
		}
		if j.pending[i] {
			continue
		}
		if _, ok := j.leases[i]; ok {
			continue
		}
		return i
	}
	return -1
}

// Lease grants one point of the requested scope, or reports wait/done.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	c.met.touchWorkerLocked(req.Worker, now) // every lease request is a heartbeat
	if c.quiesced {
		// Draining for shutdown: grant nothing new, and don't claim
		// "done" either — the worker should simply wait until the server
		// goes away (or the operator changes their mind).
		return LeaseResponse{Status: StatusWait}, nil
	}
	outstanding := c.pruneLocked(now)

	scope := c.names
	if req.Name != "" {
		if _, ok := c.jobs[req.Name]; !ok {
			return LeaseResponse{}, fmt.Errorf("queue: unknown manifest %q", req.Name)
		}
		scope = []string{req.Name}
	}
	if len(scope) == 0 {
		// Nothing registered yet (the coordinator may still be planning):
		// tell the worker to wait for work rather than "done".
		return LeaseResponse{Status: StatusWait}, nil
	}
	complete := true
	for _, name := range scope {
		if len(c.jobs[name].done) < c.jobs[name].total {
			complete = false
			break
		}
	}
	if complete {
		// An unscoped "done" is only trustworthy once registration is
		// sealed AND no follow-on manifest is still expected: while the
		// serve loop is planning later manifests, or an adaptive client
		// has promised a refinement pass it hasn't posted yet,
		// "everything registered so far is complete" must read as "wait
		// for more work", or attached workers drain away early.
		if req.Name == "" && (!c.sealed || len(c.expected) > 0) {
			return LeaseResponse{Status: StatusWait}, nil
		}
		return LeaseResponse{Status: StatusDone}, nil
	}
	if outstanding >= c.cfg.MaxLeases {
		return LeaseResponse{Status: StatusWait}, nil
	}
	for _, name := range scope {
		j := c.jobs[name]
		if i := j.freeLocked(); i >= 0 {
			if j.expired[i] {
				c.met.reissuedTotal++
				delete(j.expired, i)
			}
			if _, ok := j.firstGrant[i]; !ok {
				j.firstGrant[i] = now
			}
			deadline := now.Add(j.ttlLocked(c.cfg))
			j.leases[i] = lease{worker: req.Worker, deadline: deadline}
			return LeaseResponse{Status: StatusLease, Name: name, Index: i, Sum: j.sum, Deadline: deadline}, nil
		}
	}
	// Everything incomplete is leased out; the caller should poll again
	// (a lease will resolve or expire).
	return LeaseResponse{Status: StatusWait}, nil
}

// PostResult accepts one computed point. The first result for a point is
// journaled and recorded; a duplicate (a slow worker posting after its
// lease expired and the point was recomputed) is acknowledged without a
// second journal line, so the journal holds each point exactly once.
//
// The journal fsync happens outside the coordinator mutex — Journal has
// its own lock — so lease grants and status polls from other workers
// never queue behind per-line disk syncs; the pending set is what keeps
// a concurrent duplicate from writing a second line meanwhile.
func (c *Coordinator) PostResult(req ResultRequest) error {
	c.mu.Lock()
	now := c.cfg.Clock()
	c.met.touchWorkerLocked(req.Worker, now)
	j, ok := c.jobs[req.Name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("queue: unknown manifest %q", req.Name)
	}
	if req.Index < 0 || req.Index >= j.total {
		c.mu.Unlock()
		return fmt.Errorf("queue: %s result index %d out of range [0, %d)", req.Name, req.Index, j.total)
	}
	if req.Sum != "" && req.Sum != j.sum {
		// The worker computed against a different plan (a coordinator
		// restarted with new options between its lease and its post):
		// journaling it would silently corrupt the tables.
		c.met.staleRejected++
		c.mu.Unlock()
		return fmt.Errorf("queue: %s result computed against plan %s, serving %s; re-lease", req.Name, req.Sum, j.sum)
	}
	if _, done := j.done[req.Index]; done || j.pending[req.Index] {
		c.mu.Unlock()
		return nil // duplicate: first result won (or is being journaled)
	}
	j.pending[req.Index] = true
	journal := j.journal
	sum := j.sum
	c.mu.Unlock()

	var err error
	if journal != nil {
		err = journal.Append(req.Index, req.Result)
	}
	var storeErr error
	if err == nil && c.cfg.Results != nil {
		// Mirror into the results store only once the journal line is
		// durable: the journal is the source of truth, and a store hiccup
		// must not fail the post (the backfill importer repairs the store
		// from the journal).
		storeErr = c.cfg.Results.AddPoint(sum, req.Index, req.Result)
	}

	c.mu.Lock()
	delete(j.pending, req.Index)
	if storeErr != nil {
		c.met.resultsStoreErrors++
	}
	if err == nil {
		j.done[req.Index] = req.Result
		delete(j.leases, req.Index)
		delete(j.expired, req.Index)
		if t0, ok := j.firstGrant[req.Index]; ok {
			// First grant to first accepted post: the latency sample that
			// feeds the adaptive TTL (see the firstGrant field comment).
			j.lat.observe(now.Sub(t0))
			delete(j.firstGrant, req.Index)
		}
		c.met.completedTotal++
		c.met.rate.observe(now)
		if ws := c.met.touchWorkerLocked(req.Worker, now); ws != nil {
			ws.points++
		}
	}
	c.mu.Unlock()
	if err != nil {
		// Not recorded: the lease stands (or expires) and the point will
		// be posted again.
		return fmt.Errorf("queue: journaling %s point %d: %w", req.Name, req.Index, err)
	}
	return nil
}

// Manifest returns a registered manifest by name.
func (c *Coordinator) Manifest(name string) (*manifest.Manifest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[name]
	if !ok {
		return nil, false
	}
	return j.m, true
}

// Names returns the registered manifest names in registration order.
func (c *Coordinator) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.names...)
}

// Points returns a manifest's completed results, keyed by point index.
func (c *Coordinator) Points(name string) (map[int]nocsim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[name]
	if !ok {
		return nil, false
	}
	out := make(map[int]nocsim.Result, len(j.done))
	for i, r := range j.done {
		out[i] = r
	}
	return out, true
}

// Status reports one manifest's progress.
func (c *Coordinator) Status(name string) (Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[name]
	if !ok {
		return Status{}, false
	}
	return Status{
		Name:       name,
		Total:      j.total,
		Done:       len(j.done),
		Leased:     len(j.leases),
		Complete:   len(j.done) == j.total,
		TTLSeconds: j.ttlLocked(c.cfg).Seconds(),
	}, true
}

// Complete reports whether every registered manifest is fully computed
// and no promised follow-on manifest is still outstanding — so a serve
// loop's -exit-when-done cannot fire between a coarse pass finishing and
// its refinement arriving.
func (c *Coordinator) Complete() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.expected) > 0 {
		return false
	}
	for _, j := range c.jobs {
		if len(j.done) < j.total {
			return false
		}
	}
	return true
}

// Handler returns the coordinator's HTTP API:
//
//	GET  /v1/manifests           -> {"names": [...]}
//	GET  /v1/manifest/{name}     -> the manifest JSON
//	POST /v1/manifest            -> manifest JSON -> 204 (AddFollowOn)
//	POST /v1/expect/{name}       -> 204 (Expect a follow-on manifest)
//	DELETE /v1/expect/{name}     -> 204 (Unexpect)
//	POST /v1/lease               -> LeaseRequest -> LeaseResponse
//	POST /v1/result              -> ResultRequest -> 204
//	GET  /v1/points/{name}       -> sorted [{index, result}, ...]
//	GET  /v1/status/{name}       -> Status
//	GET  /metrics                -> Prometheus text format (see metrics.go)
//
// With Config.AuthToken set, every route — /metrics included — demands
// "Authorization: Bearer <token>" and answers 401 otherwise.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/manifests", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Names []string `json:"names"`
		}{c.Names()})
	})
	mux.HandleFunc("GET /v1/manifest/{name}", func(w http.ResponseWriter, r *http.Request) {
		m, ok := c.Manifest(r.PathValue("name"))
		if !ok {
			http.Error(w, "unknown manifest", http.StatusNotFound)
			return
		}
		writeJSON(w, m)
	})
	mux.HandleFunc("POST /v1/manifest", func(w http.ResponseWriter, r *http.Request) {
		var m manifest.Manifest
		// A manifest is small (panels of grids); 16 MiB is far beyond any
		// real plan and keeps a hostile peer from streaming gigabytes.
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&m); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if m.Name == "" {
			http.Error(w, "manifest without a name", http.StatusBadRequest)
			return
		}
		if err := c.AddFollowOn(&m); err != nil {
			// The only registration-time refusal is a name collision under
			// a different plan fingerprint: a conflict, not a server fault.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/expect/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Expect(r.PathValue("name")); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /v1/expect/{name}", func(w http.ResponseWriter, r *http.Request) {
		c.Unexpect(r.PathValue("name"))
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := c.Lease(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/result", func(w http.ResponseWriter, r *http.Request) {
		var req ResultRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.PostResult(req); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/points/{name}", func(w http.ResponseWriter, r *http.Request) {
		have, ok := c.Points(r.PathValue("name"))
		if !ok {
			http.Error(w, "unknown manifest", http.StatusNotFound)
			return
		}
		recs := make([]manifest.Record, 0, len(have))
		for i, res := range have {
			recs = append(recs, manifest.Record{Index: i, Result: res})
		}
		sort.Slice(recs, func(a, b int) bool { return recs[a].Index < recs[b].Index })
		writeJSON(w, recs)
	})
	mux.HandleFunc("GET /v1/status/{name}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.Status(r.PathValue("name"))
		if !ok {
			http.Error(w, "unknown manifest", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.writeMetrics(w)
	})
	if c.cfg.AuthToken == "" {
		return mux
	}
	return requireToken(c.cfg.AuthToken, mux)
}

// requireToken demands "Authorization: Bearer <token>" on every request.
// The comparison is constant-time; a miss gets 401 with a WWW-Authenticate
// challenge so curl/worker logs show exactly what was expected.
func requireToken(token string, next http.Handler) http.Handler {
	want := []byte(token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="nocsimd"`)
			http.Error(w, "401 unauthorized: missing or wrong bearer token (coordinator runs with -auth-token)", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
