package queue

import (
	"math"
	"time"
)

// Adaptive lease TTLs. A static -lease-ttl has to be guessed against the
// slowest point anyone will ever serve: set it for quick-mode points and
// full-window runs double-compute every heavy point; set it for
// full-window points and a crashed worker's quick points sit unleased
// for a minute. Instead the coordinator measures how long this
// manifest's points actually take (lease grant to accepted post) and
// sets each new lease's deadline from the estimate — quick points
// re-issue in seconds, heavy points get the headroom they need. The
// configured TTL remains the fallback until enough samples exist.
const (
	// ttlWarmup is how many latencies a manifest must have observed
	// before the estimate replaces the configured fallback TTL.
	ttlWarmup = 8
	// ttlAlpha is the decay of the exponentially weighted mean/variance:
	// high enough to track a drifting fleet (thermal throttling, noisy
	// neighbours), low enough that one straggler doesn't triple the TTL.
	ttlAlpha = 0.25
	// ttlSafety multiplies the upper latency estimate: a lease should
	// only expire on a genuinely dead worker, never on an honest slow
	// one, because expiry means double-computing the point.
	ttlSafety = 3.0
	// ttlMaxDecay shrinks the remembered worst latency a little with
	// every new sample, so a one-off straggler (network hiccup, swapped
	// host) loosens its grip over ~a hundred points instead of pinning
	// the TTL high forever.
	ttlMaxDecay = 0.97
)

// ttlEstimator tracks one manifest's observed point latencies as an
// exponentially decayed mean and variance. It is not safe for concurrent
// use; the coordinator guards it with its own mutex.
type ttlEstimator struct {
	n       int     // latencies observed
	mean    float64 // decayed mean, seconds
	vari    float64 // decayed variance, seconds^2
	maxSeen float64 // slowly decayed worst latency, seconds
}

// observe folds one lease-to-post latency into the estimate.
func (e *ttlEstimator) observe(d time.Duration) {
	x := d.Seconds()
	if e.n == 0 {
		e.mean = x
	} else {
		diff := x - e.mean
		incr := ttlAlpha * diff
		e.mean += incr
		e.vari = (1 - ttlAlpha) * (e.vari + diff*incr)
	}
	e.maxSeen = math.Max(x, e.maxSeen*ttlMaxDecay)
	e.n++
}

// ttl returns the lease TTL to grant now: the configured fallback until
// warmed up, then safety × (mean + 2σ) — roughly k·p95 of the observed
// latency distribution — clamped to [floor, ceil]. The (decayed) worst
// latency seen is an extra lower bound: in a manifest that mixes quick
// and heavy points, the EWMA drifts back toward the quick majority
// between heavy samples, and without the bound the TTL would dip below
// the heavy points' known compute time and expire every one of their
// leases mid-compute.
func (e *ttlEstimator) ttl(fallback, floor, ceil time.Duration) time.Duration {
	if e.n < ttlWarmup {
		return fallback
	}
	est := math.Max(ttlSafety*(e.mean+2*math.Sqrt(e.vari)), e.maxSeen)
	d := time.Duration(est * float64(time.Second))
	if d < floor {
		d = floor
	}
	if d > ceil {
		d = ceil
	}
	return d
}
