package queue

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/nocsim"
	"repro/nocsim/manifest"
)

// A Worker drains a coordinator: it leases points, resolves each to its
// self-contained scenario (Manifest.Point, which carries the point's own
// exp.Seed-derived RNG stream), computes it with nocsim.Run, and posts
// the result back with retry. Results are therefore bit-identical to an
// in-process manifest.Run of the same manifest, wherever the worker
// happens to execute.
//
// Workers bounds the parallel lease loops; the number of concurrently
// executing simulations inside this process additionally stays under the
// process-wide leaf budget (exp.SetLeafBudget), exactly as in a local
// run.
type Worker struct {
	// Client is the coordinator connection.
	Client *Client
	// ID attributes this worker's leases; empty derives host-pid.
	ID string
	// Workers bounds the parallel lease loops (<= 0 means GOMAXPROCS).
	Workers int
	// Name restricts the worker to one manifest; empty drains them all.
	Name string
	// Poll is the back-off between lease attempts while the coordinator
	// reports wait (zero means 500 ms).
	Poll time.Duration
	// MaxErrors is how many consecutive coordinator failures (unreachable,
	// bad responses) a lease loop tolerates before giving up; zero means
	// 10. A restarting coordinator is survived; a dead one is not spun on
	// forever.
	MaxErrors int
	// OnPoint, when non-nil, is called after each successfully posted
	// point. Calls may be concurrent across lease loops.
	OnPoint func(name string, index int)

	mu    sync.Mutex
	cache map[string]cachedManifest
}

type cachedManifest struct {
	m   *manifest.Manifest
	sum string
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

func (w *Worker) maxErrors() int {
	if w.MaxErrors > 0 {
		return w.MaxErrors
	}
	return 10
}

// manifest returns the named manifest matching the lease's plan
// fingerprint, fetching (or re-fetching) and caching it as needed: a
// worker pays one manifest download per study, then every lease is just
// {name, index, sum} over the wire. A cached manifest whose sum no
// longer matches — a coordinator restarted with a different plan — is
// discarded rather than silently computed against.
func (w *Worker) manifest(ctx context.Context, name, sum string) (*manifest.Manifest, error) {
	w.mu.Lock()
	c, ok := w.cache[name]
	w.mu.Unlock()
	if ok && (sum == "" || c.sum == sum) {
		return c.m, nil
	}
	m, err := w.Client.Manifest(ctx, name)
	if err != nil {
		return nil, err
	}
	got, err := manifest.Sum(m)
	if err != nil {
		return nil, err
	}
	if sum != "" && got != sum {
		// The plan changed between the lease and the fetch (coordinator
		// replanning); treat as transient and re-lease.
		return nil, fmt.Errorf("queue: fetched manifest %q has plan %s, lease says %s", name, got, sum)
	}
	w.mu.Lock()
	if w.cache == nil {
		w.cache = map[string]cachedManifest{}
	}
	w.cache[name] = cachedManifest{m: m, sum: got}
	w.mu.Unlock()
	return m, nil
}

// Run leases and computes points until the coordinator reports the scope
// done (returning nil), the context is cancelled, or a point fails.
// Cancelling ctx mid-point simply abandons the lease — it expires and is
// re-issued elsewhere, which is the crash story too.
func (w *Worker) Run(ctx context.Context) error {
	n := w.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	_, err := exp.Map(ctx, n, n, func(ctx context.Context, _ int) (struct{}, error) {
		return struct{}{}, w.loop(ctx)
	})
	return err
}

// loop is one lease loop: lease, compute, post, repeat.
func (w *Worker) loop(ctx context.Context) error {
	id := w.id()
	// consecutive counts coordinator failures of any kind — lease,
	// manifest fetch, post — and only a fully delivered point resets it,
	// so a coordinator that answers leases but can never serve the
	// manifest (or accept results) still trips the backstop instead of
	// being hammered forever. Every failure also backs off by the poll
	// interval before the next attempt.
	consecutive := 0
	fail := func(err error) (bool, error) {
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		if errors.Is(err, ErrUnauthorized) {
			// Wrong or missing credentials are a configuration error, not
			// a transient hiccup: retrying would hammer the coordinator
			// with requests it will never accept.
			return true, fmt.Errorf("queue: worker %s: %w", id, err)
		}
		consecutive++
		if consecutive >= w.maxErrors() {
			return true, fmt.Errorf("queue: worker %s giving up after %d consecutive coordinator errors: %w", id, consecutive, err)
		}
		if err := sleep(ctx, w.poll()); err != nil {
			return true, err
		}
		return false, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ls, err := w.Client.Lease(ctx, LeaseRequest{Worker: id, Name: w.Name})
		if err != nil {
			if stop, err := fail(err); stop {
				return err
			}
			continue
		}
		switch ls.Status {
		case StatusDone:
			return nil
		case StatusWait:
			if err := sleep(ctx, w.poll()); err != nil {
				return err
			}
		case StatusLease:
			m, err := w.manifest(ctx, ls.Name, ls.Sum)
			if err != nil {
				if stop, err := fail(err); stop {
					return err
				}
				continue
			}
			_, sc, err := m.Point(ls.Index)
			if err != nil {
				return fmt.Errorf("queue: worker %s: %w", id, err)
			}
			r, err := nocsim.Run(ctx, sc)
			if err != nil {
				// A failed simulation is not a coordinator hiccup: the same
				// point would fail on every worker, so surface it rather
				// than let the lease cycle forever.
				return fmt.Errorf("queue: worker %s: %s point %d: %w", id, ls.Name, ls.Index, err)
			}
			r.Meta.PointIndex = ls.Index
			if err := w.Client.PostResultRetry(ctx, ResultRequest{
				Worker: id, Name: ls.Name, Index: ls.Index, Sum: ls.Sum, Result: r,
			}, 0); err != nil {
				if stop, err := fail(err); stop {
					return err
				}
				continue
			}
			consecutive = 0 // one point fully delivered
			if w.OnPoint != nil {
				w.OnPoint(ls.Name, ls.Index)
			}
		default:
			if stop, err := fail(fmt.Errorf("queue: unknown lease status %q", ls.Status)); stop {
				return err
			}
		}
	}
}

func sleep(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
