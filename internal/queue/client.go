package queue

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/nocsim"
	"repro/nocsim/manifest"
)

// ErrUnknownManifest reports that the coordinator does not (yet) serve
// the requested manifest — possibly because it is still planning it.
var ErrUnknownManifest = errors.New("queue: coordinator does not serve this manifest")

// ErrUnauthorized reports that the coordinator rejected the request with
// 401: it runs with -auth-token and this client's token is missing or
// wrong. Credentials don't fix themselves — callers should fail fast
// rather than retry (Worker and WaitManifest do).
var ErrUnauthorized = errors.New("queue: coordinator rejected credentials (401 unauthorized)")

// Client talks to a coordinator's HTTP API.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://10.0.0.7:9090".
	Base string
	// Token, when non-empty, is attached to every request as
	// "Authorization: Bearer <token>" — the shared secret a coordinator
	// started with -auth-token demands.
	Token string
	// HTTP overrides the transport; nil uses a client with a 30-second
	// per-request timeout (every coordinator response is small and
	// immediate — leases are granted or refused, never held open).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// do performs one request and decodes the JSON response into out (when
// non-nil). A 404 maps to ErrUnknownManifest so pollers can tell "not
// planned yet" from transport failures.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w (%s %s: %s)", ErrUnauthorized, method, path, bytes.TrimSpace(msg))
	}
	if resp.StatusCode == http.StatusNotFound {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w (%s %s: %s)", ErrUnknownManifest, method, path, bytes.TrimSpace(msg))
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("queue: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Manifests lists the manifest names the coordinator serves.
func (c *Client) Manifests(ctx context.Context) ([]string, error) {
	var out struct {
		Names []string `json:"names"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/manifests", nil, &out); err != nil {
		return nil, err
	}
	return out.Names, nil
}

// Manifest fetches one manifest by name.
func (c *Client) Manifest(ctx context.Context, name string) (*manifest.Manifest, error) {
	var m manifest.Manifest
	if err := c.do(ctx, http.MethodGet, "/v1/manifest/"+name, nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// WaitManifest polls until the coordinator serves the named manifest —
// covering both a coordinator still binding its listener and one still
// planning (calibrating) the manifest — or the timeout elapses (<= 0
// means no bound beyond ctx). The timeout is what surfaces a wrong URL
// or a figure the coordinator was never asked to serve, instead of
// hanging forever; the returned error carries the last failure so a
// connection refusal reads differently from a 404.
func (c *Client) WaitManifest(ctx context.Context, name string, timeout time.Duration) (*manifest.Manifest, error) {
	const poll = 500 * time.Millisecond
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	for {
		m, err := c.Manifest(ctx, name)
		if err == nil {
			return m, nil
		}
		if errors.Is(err, ErrUnauthorized) {
			// Polling won't mint credentials; surface the 401 now.
			return nil, fmt.Errorf("queue: waiting for manifest %q: %w", name, err)
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("queue: waiting for manifest %q: %w (last: %v)", name, ctx.Err(), err)
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, fmt.Errorf("queue: waiting for manifest %q: %w (last: %v)", name, ctx.Err(), err)
		}
	}
}

// AddManifest posts a follow-on manifest to the coordinator
// (Coordinator.AddFollowOn): the adaptive client's way to append its
// refinement pass to a live plan. Idempotent for a byte-identical plan;
// a name collision under a different plan fingerprint is an error.
func (c *Client) AddManifest(ctx context.Context, m *manifest.Manifest) error {
	return c.do(ctx, http.MethodPost, "/v1/manifest", m, nil)
}

// Expect registers the promise of a follow-on manifest
// (Coordinator.Expect), keeping unscoped workers attached until it is
// posted or withdrawn.
func (c *Client) Expect(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodPost, "/v1/expect/"+name, nil, nil)
}

// Unexpect withdraws an Expect — the "no refinement after all" path.
func (c *Client) Unexpect(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/expect/"+name, nil, nil)
}

// Lease asks the coordinator for one point to compute.
func (c *Client) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/lease", req, &resp)
	return resp, err
}

// PostResult posts one computed point back.
func (c *Client) PostResult(ctx context.Context, req ResultRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/result", req, nil)
}

// PostResultRetry posts with retry: a computed point is too expensive to
// drop on a transient network error, so the post is retried with
// exponential backoff (attempts tries total) before giving up.
func (c *Client) PostResultRetry(ctx context.Context, req ResultRequest, attempts int) error {
	if attempts <= 0 {
		attempts = 5
	}
	backoff := 100 * time.Millisecond
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
		}
		if err = c.PostResult(ctx, req); err == nil {
			return nil
		}
		if ctx.Err() != nil || errors.Is(err, ErrUnauthorized) {
			return err
		}
	}
	return fmt.Errorf("queue: posting %s point %d failed after %d attempts: %w",
		req.Name, req.Index, attempts, err)
}

// Points fetches a manifest's completed results, keyed by point index.
func (c *Client) Points(ctx context.Context, name string) (map[int]nocsim.Result, error) {
	var recs []manifest.Record
	if err := c.do(ctx, http.MethodGet, "/v1/points/"+name, nil, &recs); err != nil {
		return nil, err
	}
	have := make(map[int]nocsim.Result, len(recs))
	for _, rec := range recs {
		have[rec.Index] = rec.Result
	}
	return have, nil
}

// Metrics fetches the coordinator's raw Prometheus /metrics text — the
// feed the results dashboard proxies so a browser needs no coordinator
// credentials of its own.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		return nil, fmt.Errorf("%w (GET /metrics)", ErrUnauthorized)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("queue: GET /metrics: %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// Status fetches one manifest's progress.
func (c *Client) Status(ctx context.Context, name string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/v1/status/"+name, nil, &st)
	return st, err
}
