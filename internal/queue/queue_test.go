package queue

import (
	"context"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/nocsim"
	"repro/nocsim/manifest"
)

// testManifest builds a small manifest whose points never need real
// simulation in these tests: the coordinator only hands out indices and
// records whatever results are posted.
func testManifest(t *testing.T, name string, loads int) *manifest.Manifest {
	t.Helper()
	base := nocsim.Scenario{Mesh: nocsim.DefaultMesh(), Pattern: "uniform", Quick: true, Seed: 1}.Normalized()
	base.Calibration = &nocsim.Calibration{SaturationRate: 0.6, LambdaMax: 0.54, TargetDelayNs: 100}
	ls := make([]float64, loads)
	for i := range ls {
		ls[i] = 0.1 * float64(i+1)
	}
	return &manifest.Manifest{Name: name, Quick: true, Points: loads, Seed: 1, Panels: []manifest.Panel{
		{Label: "a", Grid: nocsim.Grid{Base: base, Loads: ls, Policies: []nocsim.PolicyKind{nocsim.NoDVFS}}},
	}}
}

func fakeResult(i int) nocsim.Result {
	var r nocsim.Result
	r.AvgDelayNs = float64(100 + i)
	r.Meta.PointIndex = i
	return r
}

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// journalLines returns the journal's raw lines (one per durable record).
func journalLines(t *testing.T, st *manifest.DirStore, name string) []string {
	t.Helper()
	data, err := os.ReadFile(st.PointsPath(name))
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(data), "\n"), "\n")
}

// TestLeaseExpiryReissueExactlyOnce is the fault-model acceptance test:
// a worker that leases a point and dies has its lease re-issued after
// the TTL, the point lands exactly once in the journal even when the
// dead worker's result arrives late, and the coordinator leaves no
// goroutines behind (it runs none; the assertion pins that).
func TestLeaseExpiryReissueExactlyOnce(t *testing.T) {
	before := runtime.NumGoroutine()

	clock := &fakeClock{now: time.Unix(1000, 0)}
	st, err := manifest.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "x", 2)
	if err := st.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	c := New(Config{LeaseTTL: time.Second, Store: st, Clock: clock.Now})
	if err := c.Add(m, nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	srv := httptest.NewServer(c.Handler())
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	// Worker "dead" leases point 0 and never posts.
	ls, err := client.Lease(ctx, LeaseRequest{Worker: "dead"})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Status != StatusLease || ls.Index != 0 {
		t.Fatalf("first lease = %+v, want lease of point 0", ls)
	}

	// While the lease is live the point is not handed out again.
	ls2, err := client.Lease(ctx, LeaseRequest{Worker: "live"})
	if err != nil {
		t.Fatal(err)
	}
	if ls2.Status != StatusLease || ls2.Index != 1 {
		t.Fatalf("second lease = %+v, want lease of point 1", ls2)
	}
	if err := client.PostResult(ctx, ResultRequest{Worker: "live", Name: "x", Index: 1, Result: fakeResult(1)}); err != nil {
		t.Fatal(err)
	}
	if ls3, err := client.Lease(ctx, LeaseRequest{Worker: "live"}); err != nil || ls3.Status != StatusWait {
		t.Fatalf("lease while point 0 still held = (%+v, %v), want wait", ls3, err)
	}

	// The dead worker's lease expires; the point is re-issued.
	clock.Advance(2 * time.Second)
	ls4, err := client.Lease(ctx, LeaseRequest{Worker: "live"})
	if err != nil {
		t.Fatal(err)
	}
	if ls4.Status != StatusLease || ls4.Index != 0 {
		t.Fatalf("post-expiry lease = %+v, want re-issued point 0", ls4)
	}
	if err := client.PostResult(ctx, ResultRequest{Worker: "live", Name: "x", Index: 0, Result: fakeResult(0)}); err != nil {
		t.Fatal(err)
	}

	// The dead worker turns out to have been merely slow: its late post
	// is acknowledged but must not add a second journal line.
	if err := client.PostResult(ctx, ResultRequest{Worker: "dead", Name: "x", Index: 0, Result: fakeResult(0)}); err != nil {
		t.Fatalf("late duplicate post rejected: %v", err)
	}

	if ls5, err := client.Lease(ctx, LeaseRequest{Worker: "live"}); err != nil || ls5.Status != StatusDone {
		t.Fatalf("lease after completion = (%+v, %v), want done", ls5, err)
	}
	st2, err := client.Status(ctx, "x")
	if err != nil || !st2.Complete || st2.Done != 2 {
		t.Fatalf("status = (%+v, %v), want complete 2/2", st2, err)
	}

	srv.Close()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if lines := journalLines(t, st, "x"); len(lines) != 2 {
		t.Fatalf("journal holds %d lines, want exactly 2 (one per point): %v", len(lines), lines)
	}

	// The coordinator spawns no goroutines (expiry is lazy); whatever the
	// HTTP test server used must drain too.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestCoordinatorResumeFromJournal kills a coordinator mid-run and
// starts a fresh one over the same directory: the journaled points are
// not recomputed, the remaining points are leaseable, and the final
// journal still holds each point exactly once.
func TestCoordinatorResumeFromJournal(t *testing.T) {
	st, err := manifest.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "x", 3)
	if err := st.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	c1 := New(Config{Store: st})
	if err := c1.Add(m, nil); err != nil {
		t.Fatal(err)
	}
	c1.Seal()
	if _, err := c1.Lease(LeaseRequest{Worker: "w"}); err != nil {
		t.Fatal(err)
	}
	if err := c1.PostResult(ResultRequest{Worker: "w", Name: "x", Index: 0, Result: fakeResult(0)}); err != nil {
		t.Fatal(err)
	}
	// Crash: no graceful close beyond releasing the file handle.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same store: the journal is the coordinator's state.
	stored, err := st.LoadManifest("x")
	if err != nil || stored == nil {
		t.Fatalf("stored manifest = (%v, %v)", stored, err)
	}
	have, err := st.LoadPoints("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(have) != 1 || have[0].AvgDelayNs != 100 {
		t.Fatalf("journal after crash = %v, want point 0 only", have)
	}
	c2 := New(Config{Store: st})
	if err := c2.Add(stored, have); err != nil {
		t.Fatal(err)
	}
	c2.Seal()
	status, _ := c2.Status("x")
	if status.Done != 1 || status.Complete {
		t.Fatalf("resumed status = %+v, want 1/3 done", status)
	}
	for want := 1; want <= 2; want++ {
		ls, err := c2.Lease(LeaseRequest{Worker: "w"})
		if err != nil || ls.Status != StatusLease || ls.Index != want {
			t.Fatalf("resumed lease = (%+v, %v), want point %d", ls, err, want)
		}
		if err := c2.PostResult(ResultRequest{Worker: "w", Name: "x", Index: ls.Index, Result: fakeResult(ls.Index)}); err != nil {
			t.Fatal(err)
		}
	}
	if !c2.Complete() {
		t.Fatal("coordinator not complete after resume finished the points")
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if lines := journalLines(t, st, "x"); len(lines) != 3 {
		t.Fatalf("journal holds %d lines, want exactly 3: %v", len(lines), lines)
	}
	have, err = st.LoadPoints("x")
	if err != nil || len(have) != 3 {
		t.Fatalf("final journal = (%v, %v), want 3 points", have, err)
	}
}

// TestLeaseCap pins the outstanding-lease cap: the coordinator refuses
// further leases once MaxLeases are out, and frees capacity as results
// land or leases expire.
func TestLeaseCap(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	c := New(Config{LeaseTTL: time.Second, MaxLeases: 2, Clock: clock.Now})
	if err := c.Add(testManifest(t, "x", 5), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusLease {
			t.Fatalf("lease %d = (%+v, %v), want granted", i, ls, err)
		}
	}
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusWait {
		t.Fatalf("lease over cap = (%+v, %v), want wait", ls, err)
	}
	if err := c.PostResult(ResultRequest{Worker: "w", Name: "x", Index: 0, Result: fakeResult(0)}); err != nil {
		t.Fatal(err)
	}
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusLease {
		t.Fatalf("lease after post = (%+v, %v), want granted", ls, err)
	}
	// Cap reached again; expiry frees it too.
	clock.Advance(2 * time.Second)
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusLease {
		t.Fatalf("lease after expiry = (%+v, %v), want granted", ls, err)
	}
}

// TestWorkerDrainsCoordinator runs two real Workers against a served
// manifest of genuine (quick, No-DVFS) simulation points and checks the
// coordinator ends complete with every point posted exactly once.
func TestWorkerDrainsCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	st, err := manifest.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "x", 3)
	if err := st.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	c := New(Config{LeaseTTL: 30 * time.Second, Store: st})
	if err := c.Add(m, nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{Client: &Client{Base: srv.URL}, ID: "w", Workers: 2, Poll: 20 * time.Millisecond}
			errs[i] = w.Run(ctx)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !c.Complete() {
		t.Fatal("coordinator incomplete after workers drained it")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if lines := journalLines(t, st, "x"); len(lines) != 3 {
		t.Fatalf("journal holds %d lines, want exactly 3: %v", len(lines), lines)
	}
	have, err := st.LoadPoints("x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := have[i]; !ok {
			t.Errorf("point %d missing from journal", i)
		}
		if have[i].Meta.PointIndex != i {
			t.Errorf("point %d carries index %d", i, have[i].Meta.PointIndex)
		}
	}
}

// TestUnsealedCoordinatorNeverReportsDone pins the incremental-planning
// window: while the serve loop is still Adding manifests, an unscoped
// worker asking for work must be told to wait — not "done" — even if
// everything registered so far is complete; a lease scoped to a
// complete manifest still gets its "done".
func TestUnsealedCoordinatorNeverReportsDone(t *testing.T) {
	c := New(Config{})
	// Nothing registered at all: wait.
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusWait {
		t.Fatalf("lease on empty unsealed coordinator = (%+v, %v), want wait", ls, err)
	}
	m := testManifest(t, "x", 1)
	if err := c.Add(m, nil); err != nil {
		t.Fatal(err)
	}
	ls, err := c.Lease(LeaseRequest{Worker: "w"})
	if err != nil || ls.Status != StatusLease {
		t.Fatalf("lease = (%+v, %v), want granted", ls, err)
	}
	if err := c.PostResult(ResultRequest{Worker: "w", Name: "x", Index: 0, Result: fakeResult(0)}); err != nil {
		t.Fatal(err)
	}
	// All registered manifests complete, but unsealed: unscoped wait,
	// scoped done.
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusWait {
		t.Fatalf("unscoped lease on complete unsealed coordinator = (%+v, %v), want wait", ls, err)
	}
	if ls, err := c.Lease(LeaseRequest{Worker: "w", Name: "x"}); err != nil || ls.Status != StatusDone {
		t.Fatalf("scoped lease on complete manifest = (%+v, %v), want done", ls, err)
	}
	c.Seal()
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusDone {
		t.Fatalf("unscoped lease after seal = (%+v, %v), want done", ls, err)
	}
}

// TestStalePlanResultRejected pins the plan-identity check: a result
// computed against a different manifest (a coordinator restarted with
// new options between lease and post) is refused instead of journaled,
// while a result echoing the current plan's sum is accepted.
func TestStalePlanResultRejected(t *testing.T) {
	c := New(Config{})
	if err := c.Add(testManifest(t, "x", 2), nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	ls, err := c.Lease(LeaseRequest{Worker: "w"})
	if err != nil || ls.Status != StatusLease {
		t.Fatalf("lease = (%+v, %v), want granted", ls, err)
	}
	if ls.Sum == "" {
		t.Fatal("lease carries no plan sum")
	}
	if err := c.PostResult(ResultRequest{Worker: "w", Name: "x", Index: ls.Index, Sum: "deadbeef", Result: fakeResult(0)}); err == nil {
		t.Fatal("stale-plan result accepted, want rejection")
	}
	if st, _ := c.Status("x"); st.Done != 0 {
		t.Fatalf("stale result was recorded: %+v", st)
	}
	if err := c.PostResult(ResultRequest{Worker: "w", Name: "x", Index: ls.Index, Sum: ls.Sum, Result: fakeResult(0)}); err != nil {
		t.Fatalf("matching-plan result rejected: %v", err)
	}
}
