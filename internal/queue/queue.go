// Package queue turns a manifest into a distributed work-queue: a
// Coordinator serves a set of manifests' points over HTTP as expiring
// {manifest, index} leases, and Workers lease points, compute them with
// nocsim.Run, and post the results back.
//
// The design leans entirely on the manifest layer's guarantees. Every
// point is a self-contained, deterministic job (resolved grid + index +
// per-point exp.Seed stream), so the coordinator never ships code or
// state — only a name and an index — and a point computes bit-identically
// wherever it runs. Results are journaled through the same
// manifest.DirStore the offline path uses: a coordinator restarted over
// its directory resumes from the journal exactly as a resumed local run
// would, and the final journal is what cmd/figures reassembles tables
// from.
//
// Fault model: a worker that leases a point and dies simply lets the
// lease expire; the next Lease call re-issues the point. A worker that
// was only slow and posts after expiry is harmless — the first result
// for a point wins and duplicates are acknowledged without a second
// journal line, so every point appears exactly once in the journal. The
// coordinator caps only the number of outstanding leases; simulation
// concurrency stays bounded per worker process by its own leaf budget
// (exp.SetLeafBudget).
//
// The coordinator runs no background goroutines: expired leases are
// pruned lazily inside each Lease call, so shutting the HTTP server down
// leaves nothing behind.
//
// Fleet hardening: with Config.AuthToken set the whole HTTP surface
// demands "Authorization: Bearer <token>" (Client.Token attaches it; a
// 401 is fatal for a Worker — wrong credentials never retry). GET
// /metrics exposes Prometheus-text counters: leases outstanding,
// completed points and a windowed points/s, re-issued leases, rejected
// stale posts, and per-worker attribution keyed by the worker id already
// carried in every lease and post. Lease TTLs adapt per manifest: the
// coordinator folds each observed lease-to-post latency into a decayed
// mean/variance and grants deadlines of roughly 3·p95, clamped to
// [Config.TTLFloor, Config.TTLCeil], so quick points re-issue in seconds
// while heavy full-window points aren't double-computed; the configured
// LeaseTTL only serves until the estimate warms up.
package queue

import (
	"time"

	"repro/nocsim"
)

// Lease statuses returned by the coordinator.
const (
	// StatusLease grants one point: run it and post the result.
	StatusLease = "lease"
	// StatusWait means no point is currently available (all leased, or
	// the lease cap is reached) but the work is not finished: back off
	// and ask again.
	StatusWait = "wait"
	// StatusDone means every point of the requested scope is complete.
	StatusDone = "done"
)

// LeaseRequest asks the coordinator for one point to compute.
type LeaseRequest struct {
	// Worker identifies the requester, for lease attribution and logs.
	Worker string `json:"worker"`
	// Name restricts the lease to one manifest; empty means any manifest
	// the coordinator serves.
	Name string `json:"name,omitempty"`
}

// LeaseResponse is the coordinator's answer to a lease request.
type LeaseResponse struct {
	// Status is one of StatusLease, StatusWait, StatusDone.
	Status string `json:"status"`
	// Name and Index identify the granted point when Status is
	// StatusLease: the {manifest, index} pair that, with Manifest.Point,
	// is the complete job description.
	Name  string `json:"name,omitempty"`
	Index int    `json:"index,omitempty"`
	// Sum fingerprints the plan the lease belongs to. A worker whose
	// cached manifest carries a different sum must re-fetch before
	// computing — a coordinator restarted with different options would
	// otherwise be handed results from a stale plan.
	Sum string `json:"sum,omitempty"`
	// Deadline is when the lease expires; a result posted later is still
	// accepted (first result wins), but the point may be re-issued.
	Deadline time.Time `json:"deadline,omitzero"`
}

// ResultRequest posts one computed point back to the coordinator.
type ResultRequest struct {
	Worker string `json:"worker"`
	Name   string `json:"name"`
	Index  int    `json:"index"`
	// Sum is the plan fingerprint the result was computed against
	// (echoed from the lease). The coordinator rejects a mismatch rather
	// than journal a number from a different plan; empty skips the check
	// (trusted in-process callers).
	Sum    string        `json:"sum,omitempty"`
	Result nocsim.Result `json:"result"`
}

// Status reports one manifest's progress.
type Status struct {
	Name     string `json:"name"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Leased   int    `json:"leased"`
	Complete bool   `json:"complete"`
	// TTLSeconds is the lease TTL a point of this manifest would be
	// granted right now: the adaptive estimate once the coordinator has
	// observed enough point latencies, the configured fallback before.
	TTLSeconds float64 `json:"ttl_seconds"`
}
