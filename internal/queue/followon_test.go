package queue

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/nocsim/manifest"
	"repro/nocsim/results"
)

// postAll posts fake results for every point of the named manifest.
func postAll(t *testing.T, c *Coordinator, m *manifest.Manifest) {
	t.Helper()
	for i := 0; i < m.NumPoints(); i++ {
		if err := c.PostResult(ResultRequest{Worker: "w", Name: m.Name, Index: i, Result: fakeResult(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFollowOnKeepsWorkersAttached is the adaptive-sweep fleet contract:
// an expectation registered before the coarse pass completes keeps
// unscoped workers (and Complete, i.e. -exit-when-done) from declaring
// the run over, the follow-on manifest is drained by the same workers
// with no restart, and only then does the coordinator report done.
func TestFollowOnKeepsWorkersAttached(t *testing.T) {
	c := New(Config{})
	parent := testManifest(t, "x", 2)
	if err := c.Add(parent, nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()

	child := testManifest(t, "x-refine-abc", 1)
	if err := c.Expect(child.Name); err != nil {
		t.Fatal(err)
	}
	postAll(t, c, parent)

	// Sealed and every registered manifest complete — but a follow-on is
	// promised, so nobody gets told "done".
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusWait {
		t.Fatalf("unscoped lease with an outstanding expectation = (%+v, %v), want wait", ls, err)
	}
	if c.Complete() {
		t.Fatal("Complete() true with an outstanding expectation")
	}
	// A lease scoped to the complete parent still reads done: its own
	// completion is its own answer.
	if ls, err := c.Lease(LeaseRequest{Worker: "w", Name: "x"}); err != nil || ls.Status != StatusDone {
		t.Fatalf("scoped lease of the complete parent = (%+v, %v), want done", ls, err)
	}

	if err := c.AddFollowOn(child); err != nil {
		t.Fatal(err)
	}
	ls, err := c.Lease(LeaseRequest{Worker: "w"})
	if err != nil || ls.Status != StatusLease || ls.Name != child.Name {
		t.Fatalf("unscoped lease after follow-on = (%+v, %v), want a %s point", ls, err, child.Name)
	}
	postAll(t, c, child)
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusDone {
		t.Fatalf("unscoped lease after draining the follow-on = (%+v, %v), want done", ls, err)
	}
	if !c.Complete() {
		t.Fatal("Complete() false after the follow-on drained")
	}
}

// TestExpectWithdrawnReleasesWorkers covers the empty-refinement path:
// withdrawing the expectation lets the fleet drain normally.
func TestExpectWithdrawnReleasesWorkers(t *testing.T) {
	c := New(Config{})
	parent := testManifest(t, "x", 1)
	if err := c.Add(parent, nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	if err := c.Expect("x-refine-abc"); err != nil {
		t.Fatal(err)
	}
	postAll(t, c, parent)
	if ls, _ := c.Lease(LeaseRequest{Worker: "w"}); ls.Status != StatusWait {
		t.Fatalf("lease = %+v, want wait while expected", ls)
	}
	c.Unexpect("x-refine-abc")
	if ls, err := c.Lease(LeaseRequest{Worker: "w"}); err != nil || ls.Status != StatusDone {
		t.Fatalf("lease after Unexpect = (%+v, %v), want done", ls, err)
	}
	if err := c.Expect(""); err == nil {
		t.Fatal("empty expectation name accepted")
	}
}

// TestFollowOnIdempotentAndConflict pins AddFollowOn's identity rules:
// the same plan twice converges, the same name under a different plan
// fingerprint — a stale refinement — is refused, over HTTP as a 409.
func TestFollowOnIdempotentAndConflict(t *testing.T) {
	c := New(Config{})
	if err := c.Add(testManifest(t, "x", 1), nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	child := testManifest(t, "x-refine-abc", 1)
	if err := c.AddFollowOn(child); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFollowOn(child); err != nil {
		t.Fatalf("re-adding an identical follow-on: %v", err)
	}
	if got := len(c.Names()); got != 2 {
		t.Fatalf("%d manifests registered, want 2", got)
	}
	stale := testManifest(t, "x-refine-abc", 2) // same name, different plan
	if err := c.AddFollowOn(stale); err == nil {
		t.Fatal("stale follow-on (same name, different sum) accepted")
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()
	if err := client.AddManifest(ctx, child); err != nil {
		t.Fatalf("idempotent re-post over HTTP: %v", err)
	}
	err := client.AddManifest(ctx, stale)
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("stale follow-on over HTTP: %v, want a 409 conflict", err)
	}
	if err := client.Expect(ctx, child.Name); err != nil {
		t.Fatalf("Expect of a registered manifest: %v", err)
	}
	if err := client.Unexpect(ctx, child.Name); err != nil {
		t.Fatal(err)
	}
}

// TestFollowOnJournalAndResume proves a follow-on manifest runs through
// the persistence machinery unchanged: it is saved to the manifest
// store, its accepted points are journaled and mirrored into the
// results store, and a restarted coordinator re-adding the same
// follow-on resumes the journaled points instead of recomputing them.
func TestFollowOnJournalAndResume(t *testing.T) {
	dir := t.TempDir()
	st, err := manifest.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := results.Open(dir + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	parent := testManifest(t, "x", 1)
	if err := st.SaveManifest(parent); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Store: st, Results: rs})
	if err := c.Add(parent, nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()

	child := testManifest(t, "x-refine-abc", 2)
	if err := c.AddFollowOn(child); err != nil {
		t.Fatal(err)
	}
	stored, err := st.LoadManifest(child.Name)
	if err != nil || stored == nil {
		t.Fatalf("follow-on manifest not persisted: (%v, %v)", stored, err)
	}
	postAll(t, c, child)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(journalLines(t, st, child.Name)); got != 2 {
		t.Fatalf("%d journal lines for the follow-on, want 2", got)
	}
	childSum, err := manifest.Sum(child)
	if err != nil {
		t.Fatal(err)
	}
	if pts, ok := rs.PointsOf(childSum); !ok || len(pts) != 2 {
		t.Fatalf("results store holds %d follow-on points (ok=%v), want 2", len(pts), ok)
	}

	// "Restart": a fresh coordinator over the same store resumes the
	// follow-on's journaled points.
	c2 := New(Config{Store: st, Results: rs})
	if err := c2.Add(parent, nil); err != nil {
		t.Fatal(err)
	}
	if err := c2.AddFollowOn(child); err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	stat, ok := c2.Status(child.Name)
	if !ok || stat.Done != 2 {
		t.Fatalf("resumed follow-on status = (%+v, %v), want 2 points done", stat, ok)
	}
}
