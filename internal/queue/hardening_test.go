package queue

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// --- shared-token auth ---

// authedCoordinator is a sealed single-manifest coordinator behind an
// HTTP test server that demands the given token.
func authedCoordinator(t *testing.T, token string) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := New(Config{AuthToken: token})
	if err := c.Add(testManifest(t, "x", 2), nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// TestAuthRejectsEveryRoute pins the 401 contract: with a token
// configured, every route — leases, posts, status, manifests, points and
// /metrics alike — refuses requests with a missing or wrong token and
// serves requests with the right one.
func TestAuthRejectsEveryRoute(t *testing.T) {
	const token = "s3cret"
	_, srv := authedCoordinator(t, token)

	routes := []struct {
		method, path, body string
	}{
		{http.MethodGet, "/v1/manifests", ""},
		{http.MethodGet, "/v1/manifest/x", ""},
		{http.MethodPost, "/v1/manifest", `{"name":"y","points":1,"seed":1,"panels":[]}`},
		{http.MethodPost, "/v1/expect/y", ""},
		{http.MethodDelete, "/v1/expect/y", ""},
		{http.MethodPost, "/v1/lease", `{"worker":"w"}`},
		{http.MethodPost, "/v1/result", `{"worker":"w","name":"x","index":0,"result":{}}`},
		{http.MethodGet, "/v1/points/x", ""},
		{http.MethodGet, "/v1/status/x", ""},
		{http.MethodGet, "/metrics", ""},
	}
	cases := []struct {
		label  string
		header string
		reject bool
	}{
		{"no credentials", "", true},
		{"wrong token", "Bearer wrong", true},
		{"malformed scheme", "Basic " + token, true},
		{"right token", "Bearer " + token, false},
	}
	for _, rt := range routes {
		for _, tc := range cases {
			var rd io.Reader
			if rt.body != "" {
				rd = strings.NewReader(rt.body)
			}
			req, err := http.NewRequest(rt.method, srv.URL+rt.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			if tc.header != "" {
				req.Header.Set("Authorization", tc.header)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if tc.reject && resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("%s %s with %s: status %d, want 401", rt.method, rt.path, tc.label, resp.StatusCode)
			}
			if !tc.reject && resp.StatusCode == http.StatusUnauthorized {
				t.Errorf("%s %s with %s: got 401, want authorized", rt.method, rt.path, tc.label)
			}
		}
	}
}

// TestClientTokenRoundTrip drives the authed API through the Client: a
// token-carrying client leases, posts and reads status exactly as
// against an open coordinator.
func TestClientTokenRoundTrip(t *testing.T) {
	c, srv := authedCoordinator(t, "s3cret")
	client := &Client{Base: srv.URL, Token: "s3cret"}
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		ls, err := client.Lease(ctx, LeaseRequest{Worker: "w"})
		if err != nil || ls.Status != StatusLease {
			t.Fatalf("authed lease = (%+v, %v), want granted", ls, err)
		}
		if err := client.PostResult(ctx, ResultRequest{Worker: "w", Name: "x", Index: ls.Index, Sum: ls.Sum, Result: fakeResult(ls.Index)}); err != nil {
			t.Fatalf("authed post: %v", err)
		}
	}
	st, err := client.Status(ctx, "x")
	if err != nil || !st.Complete {
		t.Fatalf("authed status = (%+v, %v), want complete", st, err)
	}
	if !c.Complete() {
		t.Fatal("coordinator incomplete after authed drain")
	}
}

// TestUnauthorizedIsFatal pins the fail-fast contract: a worker (and a
// WaitManifest poller) with wrong credentials surfaces ErrUnauthorized
// immediately instead of burning its retry budget against requests the
// coordinator will never accept.
func TestUnauthorizedIsFatal(t *testing.T) {
	_, srv := authedCoordinator(t, "s3cret")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Poll and MaxErrors are hostile to retries: if the 401 were treated
	// as transient, the worker would sleep an hour before its second try
	// and this test would time out rather than pass.
	w := &Worker{
		Client:    &Client{Base: srv.URL, Token: "wrong"},
		ID:        "w",
		Workers:   1,
		Poll:      time.Hour,
		MaxErrors: 1000,
	}
	start := time.Now()
	err := w.Run(ctx)
	if !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("worker with wrong token returned %v, want ErrUnauthorized", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("worker took %s to fail, want immediate", elapsed)
	}

	if _, err := (&Client{Base: srv.URL}).WaitManifest(ctx, "x", time.Hour); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("WaitManifest without token returned %v, want ErrUnauthorized", err)
	}
}

// --- adaptive lease TTLs ---

// TestTTLEstimator feeds the estimator deterministic latency streams and
// checks the granted TTLs: the configured fallback before warmup, then
// safety × (mean + 2σ) of the observed latencies, clamped at the floor
// and ceiling.
func TestTTLEstimator(t *testing.T) {
	const (
		fallback = 60 * time.Second
		floor    = 2 * time.Second
		ceil     = 10 * time.Minute
	)
	t.Run("fallback before warmup", func(t *testing.T) {
		var e ttlEstimator
		for i := 0; i < ttlWarmup; i++ {
			if got := e.ttl(fallback, floor, ceil); got != fallback {
				t.Fatalf("ttl after %d samples = %s, want fallback %s", i, got, fallback)
			}
			e.observe(time.Second)
		}
		if got := e.ttl(fallback, floor, ceil); got == fallback {
			t.Fatalf("ttl after %d samples still the fallback, want adapted", ttlWarmup)
		}
	})
	t.Run("constant latency", func(t *testing.T) {
		// Constant 1 s latencies: mean 1, variance 0, so the TTL is
		// exactly safety × 1 s — way below the 60 s static flag.
		var e ttlEstimator
		for i := 0; i < ttlWarmup; i++ {
			e.observe(time.Second)
		}
		want := time.Duration(ttlSafety * float64(time.Second))
		if got := e.ttl(fallback, floor, ceil); got != want {
			t.Fatalf("ttl for constant 1s latency = %s, want %s", got, want)
		}
	})
	t.Run("clamp at floor", func(t *testing.T) {
		var e ttlEstimator
		for i := 0; i < ttlWarmup; i++ {
			e.observe(100 * time.Millisecond) // 3×0.1s = 0.3s, below the floor
		}
		if got := e.ttl(fallback, floor, ceil); got != floor {
			t.Fatalf("ttl for 100ms latency = %s, want floor %s", got, floor)
		}
	})
	t.Run("clamp at ceiling", func(t *testing.T) {
		var e ttlEstimator
		for i := 0; i < ttlWarmup; i++ {
			e.observe(400 * time.Second) // 3×400s = 1200s, above the ceiling
		}
		if got := e.ttl(fallback, floor, ceil); got != ceil {
			t.Fatalf("ttl for 400s latency = %s, want ceiling %s", got, ceil)
		}
	})
	t.Run("worst latency bounds a mixed manifest", func(t *testing.T) {
		// Quick warmup, one heavy point, then a long run of quick points:
		// the EWMA drifts back toward the quick majority, but the TTL must
		// stay above the (slowly decaying) 30 s witness — the next heavy
		// point's lease may not expire mid-compute.
		var e ttlEstimator
		for i := 0; i < ttlWarmup; i++ {
			e.observe(time.Second)
		}
		e.observe(30 * time.Second)
		for i := 0; i < 30; i++ {
			e.observe(time.Second)
		}
		got := e.ttl(fallback, floor, ceil)
		if got < 10*time.Second {
			t.Fatalf("ttl after quick run-out = %s, want >= 10s (bounded by the 30s witness)", got)
		}
		if got >= 30*time.Second {
			t.Fatalf("ttl after quick run-out = %s, want the witness decayed below 30s", got)
		}
	})
	t.Run("variance widens the ttl", func(t *testing.T) {
		jittery, steady := ttlEstimator{}, ttlEstimator{}
		for i := 0; i < 4*ttlWarmup; i++ {
			steady.observe(10 * time.Second)
			if i%2 == 0 {
				jittery.observe(5 * time.Second)
			} else {
				jittery.observe(15 * time.Second)
			}
		}
		// Same mean, but the jittery stream must get more headroom.
		if j, s := jittery.ttl(fallback, floor, ceil), steady.ttl(fallback, floor, ceil); j <= s {
			t.Fatalf("jittery ttl %s <= steady ttl %s, want wider", j, s)
		}
	})
}

// TestAdaptiveLeaseDeadlines is the coordinator-level acceptance test:
// lease deadlines start at the static fallback and, once enough point
// latencies are observed, track safety × observed latency instead of the
// flag — so a 60 s -lease-ttl turns into ~6 s deadlines on a manifest
// whose points take 2 s.
func TestAdaptiveLeaseDeadlines(t *testing.T) {
	const fallback = 60 * time.Second
	clock := &fakeClock{now: time.Unix(1000, 0)}
	c := New(Config{LeaseTTL: fallback, Clock: clock.Now})
	if err := c.Add(testManifest(t, "x", ttlWarmup+2), nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()

	// Warmup: every point takes exactly 2 s from lease to post.
	for i := 0; i < ttlWarmup; i++ {
		ls, err := c.Lease(LeaseRequest{Worker: "w"})
		if err != nil || ls.Status != StatusLease {
			t.Fatalf("lease %d = (%+v, %v), want granted", i, ls, err)
		}
		if got := ls.Deadline.Sub(clock.Now()); got != fallback {
			t.Fatalf("pre-warmup lease %d deadline = now+%s, want the static fallback %s", i, got, fallback)
		}
		clock.Advance(2 * time.Second)
		if err := c.PostResult(ResultRequest{Worker: "w", Name: "x", Index: ls.Index, Result: fakeResult(ls.Index)}); err != nil {
			t.Fatal(err)
		}
	}

	// Post-warmup the deadline must track the observed 2 s latency
	// (safety × 2 s), not the 60 s flag.
	want := time.Duration(ttlSafety * 2 * float64(time.Second))
	ls, err := c.Lease(LeaseRequest{Worker: "w"})
	if err != nil || ls.Status != StatusLease {
		t.Fatalf("post-warmup lease = (%+v, %v), want granted", ls, err)
	}
	if got := ls.Deadline.Sub(clock.Now()); got != want {
		t.Fatalf("post-warmup deadline = now+%s, want adapted %s (not the %s flag)", got, want, fallback)
	}
	if st, _ := c.Status("x"); st.TTLSeconds != want.Seconds() {
		t.Fatalf("status ttl_seconds = %g, want %g", st.TTLSeconds, want.Seconds())
	}
}

// TestSlowPointStillFeedsEstimator pins the recovery property: a point
// whose lease expires (and is even re-issued to another worker) before
// its first post lands still contributes its full first-grant-to-post
// latency to the estimator. If only live leases were measured, a
// too-short TTL estimate would expire every slow point's lease before
// the post, never sample the slow latency, and lock in forever —
// double-computing exactly the heavy points adaptive TTLs exist to
// protect.
func TestSlowPointStillFeedsEstimator(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	c := New(Config{LeaseTTL: time.Second, Clock: clock.Now}) // far below the real 10 s latency
	if err := c.Add(testManifest(t, "x", ttlWarmup+1), nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	for i := 0; i < ttlWarmup; i++ {
		ls, err := c.Lease(LeaseRequest{Worker: "slow"})
		if err != nil || ls.Status != StatusLease {
			t.Fatalf("lease %d = (%+v, %v), want granted", i, ls, err)
		}
		clock.Advance(2 * time.Second) // the 1 s lease expires mid-compute
		re, err := c.Lease(LeaseRequest{Worker: "fast"})
		if err != nil || re.Status != StatusLease || re.Index != ls.Index {
			t.Fatalf("re-issue %d = (%+v, %v), want point %d again", i, re, err, ls.Index)
		}
		clock.Advance(8 * time.Second) // the slow worker finally posts, 10 s after its grant
		if err := c.PostResult(ResultRequest{Worker: "slow", Name: "x", Index: ls.Index, Result: fakeResult(ls.Index)}); err != nil {
			t.Fatal(err)
		}
	}
	// Every sample was 10 s first-grant-to-post, so the adapted TTL must
	// be safety × 10 s — it climbed far above the hopeless 1 s flag.
	want := time.Duration(ttlSafety * 10 * float64(time.Second))
	ls, err := c.Lease(LeaseRequest{Worker: "w"})
	if err != nil || ls.Status != StatusLease {
		t.Fatalf("post-warmup lease = (%+v, %v), want granted", ls, err)
	}
	if got := ls.Deadline.Sub(clock.Now()); got != want {
		t.Fatalf("post-warmup deadline = now+%s, want %s (learned from expired leases)", got, want)
	}
}

// --- /metrics ---

// scrapeMetrics GETs /metrics and returns the series as "name{labels}" ->
// value.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q, want text/plain", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[cut+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:cut]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpoint drives a small scenario — two completions by one
// worker, one lease expiry and re-issue, one stale-plan rejection — and
// checks every advertised series reports it.
func TestMetricsEndpoint(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	c := New(Config{LeaseTTL: time.Second, Clock: clock.Now})
	if err := c.Add(testManifest(t, "x", 3), nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	// w1 completes point 0 immediately.
	ls, err := client.Lease(ctx, LeaseRequest{Worker: "w1"})
	if err != nil || ls.Status != StatusLease {
		t.Fatalf("lease = (%+v, %v), want granted", ls, err)
	}
	if err := client.PostResult(ctx, ResultRequest{Worker: "w1", Name: "x", Index: ls.Index, Result: fakeResult(ls.Index)}); err != nil {
		t.Fatal(err)
	}
	// w2 leases point 1 and dies; the lease expires and w1 recomputes it.
	if ls, err = client.Lease(ctx, LeaseRequest{Worker: "w2"}); err != nil || ls.Index != 1 {
		t.Fatalf("w2 lease = (%+v, %v), want point 1", ls, err)
	}
	clock.Advance(2 * time.Second)
	if ls, err = client.Lease(ctx, LeaseRequest{Worker: "w1"}); err != nil || ls.Index != 1 {
		t.Fatalf("re-issue lease = (%+v, %v), want point 1 again", ls, err)
	}
	if err := client.PostResult(ctx, ResultRequest{Worker: "w1", Name: "x", Index: 1, Result: fakeResult(1)}); err != nil {
		t.Fatal(err)
	}
	// A worker posting a result computed against another plan is counted.
	if err := client.PostResult(ctx, ResultRequest{Worker: "w3", Name: "x", Index: 2, Sum: "deadbeef", Result: fakeResult(2)}); err == nil {
		t.Fatal("stale-plan post accepted, want rejection")
	}

	got := scrapeMetrics(t, srv.URL)
	want := map[string]float64{
		"nocsim_leases_outstanding":                              0,
		"nocsim_points_completed_total":                          2,
		"nocsim_leases_reissued_total":                           1,
		"nocsim_posts_rejected_stale_total":                      1,
		`nocsim_manifest_points_total{manifest="x"}`:             3,
		`nocsim_manifest_points_done{manifest="x"}`:              2,
		`nocsim_lease_ttl_seconds{manifest="x"}`:                 1, // pre-warmup: the configured fallback
		`nocsim_worker_points_completed_total{worker="w1"}`:      2,
		`nocsim_worker_points_completed_total{worker="w2"}`:      0,
		`nocsim_worker_last_seen_timestamp_seconds{worker="w2"}`: 1000, // leased at t0, never seen again
		`nocsim_worker_last_seen_timestamp_seconds{worker="w1"}`: 1002,
	}
	for series, val := range want {
		g, ok := got[series]
		if !ok {
			t.Errorf("series %s missing from /metrics", series)
			continue
		}
		if g != val {
			t.Errorf("%s = %g, want %g", series, g, val)
		}
	}
	// Both completions happened inside the rate window.
	if rate, ok := got["nocsim_points_per_second"]; !ok || math.Abs(rate-2.0/rateWindowSize.Seconds()) > 1e-9 {
		t.Errorf("nocsim_points_per_second = %g (present %v), want %g", rate, ok, 2.0/rateWindowSize.Seconds())
	}
}

// TestMetricsRateWindowSlides pins the windowed (not lifetime) nature of
// the points/s gauge: completions older than the window stop counting.
func TestMetricsRateWindowSlides(t *testing.T) {
	now := time.Unix(1000, 0)
	r := rateWindow{window: rateWindowSize}
	r.observe(now)
	r.observe(now.Add(time.Second))
	if got := r.perSecond(now.Add(2 * time.Second)); got != 2.0/rateWindowSize.Seconds() {
		t.Fatalf("rate inside window = %g, want %g", got, 2.0/rateWindowSize.Seconds())
	}
	if got := r.perSecond(now.Add(rateWindowSize + 2*time.Second)); got != 0 {
		t.Fatalf("rate after window slid past = %g, want 0", got)
	}
}
