package queue

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/nocsim/manifest"
	"repro/nocsim/results"
)

// TestQuiesceDrainsLeasesButAcceptsPosts pins the graceful-shutdown
// contract: after Quiesce no new leases are granted (workers are told to
// wait), but results for already-leased points are still accepted and
// journaled — nothing a worker paid for is lost to the shutdown.
func TestQuiesceDrainsLeasesButAcceptsPosts(t *testing.T) {
	st, err := manifest.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "x", 2)
	if err := st.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	c := New(Config{LeaseTTL: time.Minute, Store: st})
	if err := c.Add(m, nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	ls, err := client.Lease(ctx, LeaseRequest{Worker: "w"})
	if err != nil || ls.Status != StatusLease {
		t.Fatalf("pre-quiesce lease = (%+v, %v), want a lease", ls, err)
	}

	c.Quiesce()

	// No new work is handed out — not even though points remain.
	if ls2, err := client.Lease(ctx, LeaseRequest{Worker: "w2"}); err != nil || ls2.Status != StatusWait {
		t.Fatalf("post-quiesce lease = (%+v, %v), want wait", ls2, err)
	}
	// The in-flight point still lands, durably.
	if err := client.PostResult(ctx, ResultRequest{Worker: "w", Name: ls.Name, Index: ls.Index, Result: fakeResult(ls.Index)}); err != nil {
		t.Fatalf("post-quiesce post rejected: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if lines := journalLines(t, st, "x"); len(lines) != 1 {
		t.Fatalf("journal holds %d lines, want the drained point: %v", len(lines), lines)
	}
}

// TestCoordinatorMirrorsToResultsStore: with Config.Results set, every
// plan and accepted point is mirrored into the results store alongside
// the journal, and a store that stops accepting writes is counted in
// /metrics rather than failing the post — the journal stays the source
// of truth.
func TestCoordinatorMirrorsToResultsStore(t *testing.T) {
	dir := t.TempDir()
	st, err := manifest.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := results.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "x", 2)
	if err := st.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	c := New(Config{LeaseTTL: time.Minute, Store: st, Results: rs})
	if err := c.Add(m, nil); err != nil {
		t.Fatal(err)
	}
	c.Seal()
	sum, err := manifest.Sum(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Plans()) != 1 || !ok2(rs, sum) {
		t.Fatalf("plan not mirrored on Add: %+v", rs.Plans())
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	client := &Client{Base: srv.URL}
	ctx := context.Background()

	ls, err := client.Lease(ctx, LeaseRequest{Worker: "w"})
	if err != nil || ls.Status != StatusLease {
		t.Fatalf("lease = (%+v, %v)", ls, err)
	}
	if err := client.PostResult(ctx, ResultRequest{Worker: "w", Name: ls.Name, Index: ls.Index, Result: fakeResult(ls.Index)}); err != nil {
		t.Fatal(err)
	}
	if pts, _ := rs.PointsOf(sum); len(pts) != 1 {
		t.Fatalf("results store holds %d points after post, want 1", len(pts))
	}

	// Kill the store mid-run: the next post must still succeed (journal
	// first) and the failure must surface as a counted metric.
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	ls2, err := client.Lease(ctx, LeaseRequest{Worker: "w"})
	if err != nil || ls2.Status != StatusLease {
		t.Fatalf("second lease = (%+v, %v)", ls2, err)
	}
	if err := client.PostResult(ctx, ResultRequest{Worker: "w", Name: ls2.Name, Index: ls2.Index, Result: fakeResult(ls2.Index)}); err != nil {
		t.Fatalf("post with broken results store rejected: %v", err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "nocsim_results_store_errors_total 1") {
		t.Fatalf("store failure not counted:\n%s", body)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if lines := journalLines(t, st, "x"); len(lines) != 2 {
		t.Fatalf("journal holds %d lines, want both points: %v", len(lines), lines)
	}
}

// ok2 reports whether the store resolves the given fingerprint.
func ok2(rs *results.Store, sum string) bool {
	_, ok := rs.Resolve(sum)
	return ok
}
