package queue

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Runtime visibility for the coordinator: GET /metrics renders the
// counters below in the Prometheus text exposition format, so a fleet
// operator can watch leases outstanding, throughput, re-issue churn and
// per-worker attribution without attaching a debugger. Everything is
// counted under the coordinator's existing mutex — no separate metrics
// lock, no background goroutines.

// rateWindowSize is the sliding window behind the points/s gauge: long
// enough to smooth lease polling jitter, short enough that a stalled
// fleet reads as zero within a minute.
const rateWindowSize = 60 * time.Second

// maxWorkerStats caps the per-worker attribution map so a fleet of
// ephemeral workers (fresh host-pid ids on every restart) cannot grow
// coordinator memory without bound; the stalest entry is evicted.
const maxWorkerStats = 1024

// rateWindow counts events inside a sliding window.
type rateWindow struct {
	window time.Duration
	times  []time.Time
}

func (r *rateWindow) observe(now time.Time) {
	r.pruneBefore(now)
	r.times = append(r.times, now)
}

func (r *rateWindow) pruneBefore(now time.Time) {
	cut := now.Add(-r.window)
	i := 0
	for i < len(r.times) && !r.times[i].After(cut) {
		i++
	}
	if i > 0 {
		r.times = append(r.times[:0], r.times[i:]...)
	}
}

// perSecond is the windowed event rate at time now.
func (r *rateWindow) perSecond(now time.Time) float64 {
	r.pruneBefore(now)
	return float64(len(r.times)) / r.window.Seconds()
}

// workerStats attributes completed points to the worker ids carried by
// LeaseRequest/ResultRequest; lastSeen is refreshed by every lease
// request (a heartbeat) and every accepted result.
type workerStats struct {
	points   int64
	lastSeen time.Time
}

// metricsState is the coordinator's aggregate counters, guarded by the
// coordinator mutex.
type metricsState struct {
	completedTotal     int64 // results accepted (journaled) by this process
	reissuedTotal      int64 // points re-leased after their lease expired
	staleRejected      int64 // posts refused for a plan-fingerprint mismatch
	resultsStoreErrors int64 // accepted points the results store failed to mirror
	followOnTotal      int64 // manifests appended to the live plan (AddFollowOn)
	rate               rateWindow
	workers            map[string]*workerStats
}

// touchWorkerLocked refreshes (or creates) a worker's attribution entry.
// Callers hold c.mu.
func (m *metricsState) touchWorkerLocked(id string, now time.Time) *workerStats {
	if id == "" {
		return nil
	}
	ws, ok := m.workers[id]
	if !ok {
		if len(m.workers) >= maxWorkerStats {
			m.evictStalestLocked()
		}
		ws = &workerStats{}
		m.workers[id] = ws
	}
	ws.lastSeen = now
	return ws
}

func (m *metricsState) evictStalestLocked() {
	var stalest string
	var when time.Time
	for id, ws := range m.workers {
		if stalest == "" || ws.lastSeen.Before(when) {
			stalest, when = id, ws.lastSeen
		}
	}
	delete(m.workers, stalest)
}

// writeMetrics renders the Prometheus text format into a buffer under
// the lock — every series is in-memory state, so that costs
// microseconds — and only then writes it out. Writing to the network
// under the mutex would let one slow (or hostile) scraper stall every
// lease and post behind TCP backpressure.
func (c *Coordinator) writeMetrics(out io.Writer) {
	var buf bytes.Buffer
	c.renderMetrics(&buf)
	out.Write(buf.Bytes())
}

func (c *Coordinator) renderMetrics(w *bytes.Buffer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	outstanding := c.pruneLocked(now)

	fmt.Fprintf(w, "# HELP nocsim_leases_outstanding Leases currently granted and unexpired across all manifests.\n")
	fmt.Fprintf(w, "# TYPE nocsim_leases_outstanding gauge\n")
	fmt.Fprintf(w, "nocsim_leases_outstanding %d\n", outstanding)

	fmt.Fprintf(w, "# HELP nocsim_points_completed_total Results accepted and journaled by this coordinator process.\n")
	fmt.Fprintf(w, "# TYPE nocsim_points_completed_total counter\n")
	fmt.Fprintf(w, "nocsim_points_completed_total %d\n", c.met.completedTotal)

	fmt.Fprintf(w, "# HELP nocsim_points_per_second Completed points per second over the last %v.\n", rateWindowSize)
	fmt.Fprintf(w, "# TYPE nocsim_points_per_second gauge\n")
	fmt.Fprintf(w, "nocsim_points_per_second %g\n", c.met.rate.perSecond(now))

	fmt.Fprintf(w, "# HELP nocsim_leases_reissued_total Points re-leased after a previous lease expired.\n")
	fmt.Fprintf(w, "# TYPE nocsim_leases_reissued_total counter\n")
	fmt.Fprintf(w, "nocsim_leases_reissued_total %d\n", c.met.reissuedTotal)

	fmt.Fprintf(w, "# HELP nocsim_posts_rejected_stale_total Posted results refused because they were computed against a different plan.\n")
	fmt.Fprintf(w, "# TYPE nocsim_posts_rejected_stale_total counter\n")
	fmt.Fprintf(w, "nocsim_posts_rejected_stale_total %d\n", c.met.staleRejected)

	fmt.Fprintf(w, "# HELP nocsim_results_store_errors_total Accepted points the results store failed to mirror (journal still holds them; backfill repairs).\n")
	fmt.Fprintf(w, "# TYPE nocsim_results_store_errors_total counter\n")
	fmt.Fprintf(w, "nocsim_results_store_errors_total %d\n", c.met.resultsStoreErrors)

	fmt.Fprintf(w, "# HELP nocsim_followon_manifests_total Manifests appended to the live plan after registration (adaptive refinement passes).\n")
	fmt.Fprintf(w, "# TYPE nocsim_followon_manifests_total counter\n")
	fmt.Fprintf(w, "nocsim_followon_manifests_total %d\n", c.met.followOnTotal)

	fmt.Fprintf(w, "# HELP nocsim_manifest_points_total Points in the manifest's plan.\n")
	fmt.Fprintf(w, "# TYPE nocsim_manifest_points_total gauge\n")
	for _, name := range c.names {
		fmt.Fprintf(w, "nocsim_manifest_points_total{manifest=%s} %d\n", quoteLabel(name), c.jobs[name].total)
	}
	fmt.Fprintf(w, "# HELP nocsim_manifest_points_done Points of the manifest completed (including any resumed from the journal).\n")
	fmt.Fprintf(w, "# TYPE nocsim_manifest_points_done gauge\n")
	for _, name := range c.names {
		fmt.Fprintf(w, "nocsim_manifest_points_done{manifest=%s} %d\n", quoteLabel(name), len(c.jobs[name].done))
	}
	fmt.Fprintf(w, "# HELP nocsim_lease_ttl_seconds TTL a lease granted now would get: adaptive once warmed up, the configured fallback before.\n")
	fmt.Fprintf(w, "# TYPE nocsim_lease_ttl_seconds gauge\n")
	for _, name := range c.names {
		fmt.Fprintf(w, "nocsim_lease_ttl_seconds{manifest=%s} %g\n", quoteLabel(name), c.jobs[name].ttlLocked(c.cfg).Seconds())
	}

	ids := make([]string, 0, len(c.met.workers))
	for id := range c.met.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "# HELP nocsim_worker_points_completed_total Accepted results attributed to each worker id.\n")
	fmt.Fprintf(w, "# TYPE nocsim_worker_points_completed_total counter\n")
	for _, id := range ids {
		fmt.Fprintf(w, "nocsim_worker_points_completed_total{worker=%s} %d\n", quoteLabel(id), c.met.workers[id].points)
	}
	fmt.Fprintf(w, "# HELP nocsim_worker_last_seen_timestamp_seconds Unix time each worker last leased or posted.\n")
	fmt.Fprintf(w, "# TYPE nocsim_worker_last_seen_timestamp_seconds gauge\n")
	for _, id := range ids {
		fmt.Fprintf(w, "nocsim_worker_last_seen_timestamp_seconds{worker=%s} %d\n", quoteLabel(id), c.met.workers[id].lastSeen.Unix())
	}
}

// quoteLabel escapes a label value per the Prometheus text format
// (worker ids are host-derived and untrusted).
func quoteLabel(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
