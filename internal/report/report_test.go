package report

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// fakeTables builds a minimal table set that satisfies every baseline
// claim, so the extraction plumbing can be tested without simulations.
func fakeTables() []sweep.Table {
	mk := func(id string, cols []string, rows ...[]float64) sweep.Table {
		t := sweep.Table{ID: id, Columns: cols}
		for _, r := range rows {
			t.AddRow(r...)
		}
		return t
	}
	return []sweep.Table{
		mk("fig2b", []string{"rate", "nodvfs_delay_ns", "rmsd_delay_ns"},
			[]float64{0.07, 41, 160},
			[]float64{0.14, 47, 530},
			[]float64{0.21, 55, 380},
			[]float64{0.41, 181, 188},
		),
		mk("fig4a", []string{"rate", "nodvfs_ghz", "rmsd_ghz", "dmsd_ghz"},
			[]float64{0.07, 1, 0.333, 0.45},
			[]float64{0.21, 1, 0.50, 0.57},
		),
		mk("fig4b", []string{"rate", "nodvfs_delay_ns", "rmsd_delay_ns", "dmsd_delay_ns"},
			[]float64{0.07, 41, 160, 107},
			[]float64{0.14, 47, 530, 188},
			[]float64{0.21, 55, 380, 180},
			[]float64{0.28, 67, 310, 173},
		),
		mk("fig5", []string{"vdd_v", "freq_ghz"},
			[]float64{0.56, 0.333},
			[]float64{0.90, 1.0},
		),
		mk("fig6", []string{"rate", "nodvfs_mw", "rmsd_mw", "dmsd_mw"},
			[]float64{0.14, 109, 31, 39},
			[]float64{0.21, 139, 61, 69},
		),
		mk("summary", []string{"rate", "a", "b", "c", "ratio"},
			[]float64{0.14, 70, 60, 10, 2.8},
			[]float64{0.21, 60, 55, 8, 2.1},
		),
	}
}

func TestBaselineClaimsAllPassOnPaperLikeData(t *testing.T) {
	verdicts := Check(BaselineClaims(), fakeTables())
	for _, v := range verdicts {
		if v.Err != nil {
			t.Errorf("%s: %v", v.Claim.ID, v.Err)
			continue
		}
		if !v.Pass {
			t.Errorf("%s: measured %g outside [%g, %g]", v.Claim.ID, v.Measured, v.Claim.Lo, v.Claim.Hi)
		}
	}
}

func TestCheckReportsMissingTables(t *testing.T) {
	verdicts := Check(BaselineClaims(), nil)
	for _, v := range verdicts {
		if v.Err == nil {
			t.Errorf("%s: expected missing-table error", v.Claim.ID)
		}
	}
}

func TestCheckFlagsDeviation(t *testing.T) {
	tables := fakeTables()
	// Break the fig6 ratio: make RMSD as expensive as No-DVFS.
	for i := range tables {
		if tables[i].ID == "fig6" {
			for r := range tables[i].Rows {
				tables[i].Rows[r][2] = tables[i].Rows[r][1]
			}
		}
	}
	verdicts := Check(BaselineClaims(), tables)
	found := false
	for _, v := range verdicts {
		if v.Claim.ID == "fig6-nodvfs-rmsd" {
			found = true
			if v.Pass {
				t.Error("broken ratio passed")
			}
		}
	}
	if !found {
		t.Fatal("fig6 claim missing")
	}
}

func TestWriteMarkdown(t *testing.T) {
	verdicts := Check(BaselineClaims(), fakeTables())
	var sb strings.Builder
	if err := WriteMarkdown(&sb, "Baseline", verdicts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## Baseline", "| claim |", "PASS", "claims within band"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestWriteMarkdownShowsErrors(t *testing.T) {
	claims := []Claim{{
		ID: "x", Statement: "s", Expected: "e", Lo: 0, Hi: 1,
		Extract: func(map[string]sweep.Table) (float64, error) {
			return 0, errors.New("boom")
		},
	}}
	var sb strings.Builder
	if err := WriteMarkdown(&sb, "T", Check(claims, nil)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ERROR: boom") {
		t.Error("markdown did not surface the error")
	}
}

func TestPatternClaims(t *testing.T) {
	tabs := []sweep.Table{
		{ID: "fig7_tornado_delay", Columns: []string{"r", "n", "rm", "dm"},
			Rows: [][]float64{{0.1, 60, 300, 150}, {0.2, 70, 400, 180}}},
		{ID: "fig7_tornado_power", Columns: []string{"r", "n", "rm", "dm"},
			Rows: [][]float64{{0.1, 150, 60, 66}, {0.2, 170, 80, 90}}},
	}
	verdicts := Check(PatternClaims("tornado", "2.5x"), tabs)
	for _, v := range verdicts {
		if v.Err != nil || !v.Pass {
			t.Errorf("%s: measured %g err %v", v.Claim.ID, v.Measured, v.Err)
		}
	}
}

func TestAppClaims(t *testing.T) {
	tabs := []sweep.Table{
		{ID: "fig10_h264_delay", Columns: []string{"s", "n", "rm", "dm"},
			Rows: [][]float64{{0.5, 32, 124, 84}, {1.0, 36, 200, 72}}},
		{ID: "fig10_h264_power", Columns: []string{"s", "n", "rm", "dm"},
			Rows: [][]float64{{0.5, 37, 7, 10}, {1.0, 42, 16, 19}}},
	}
	verdicts := Check(AppClaims("h264"), tabs)
	for _, v := range verdicts {
		if v.Err != nil || !v.Pass {
			t.Errorf("%s: measured %g err %v", v.Claim.ID, v.Measured, v.Err)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median = %g", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %g", got)
	}
}

func TestFormatValue(t *testing.T) {
	if formatValue(math.NaN()) != "NaN" {
		t.Error("NaN formatting")
	}
	if formatValue(123.4) != "123" {
		t.Errorf("got %s", formatValue(123.4))
	}
	if formatValue(2.25) != "2.25" {
		t.Errorf("got %s", formatValue(2.25))
	}
	if formatValue(0.5) != "0.500" {
		t.Errorf("got %s", formatValue(0.5))
	}
}
