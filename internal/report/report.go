// Package report checks reproduced figure data against the paper's
// published claims and renders a paper-vs-measured markdown report (the
// generator behind EXPERIMENTS.md).
//
// Each Claim names a quantity the paper states (an annotation on a figure
// or a number in the prose), how to extract it from the regenerated
// tables, and the acceptance band within which the reproduction is
// considered to match. Bands are deliberately generous where the paper's
// number depends on the authors' specific router RTL or standard-cell
// library; see DESIGN.md §2.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/sweep"
)

// Claim is one published statement checked against measured data.
type Claim struct {
	// ID names the claim (e.g. "fig2b-peak-ratio").
	ID string
	// Source cites where the paper states it.
	Source string
	// Statement is the paper's claim in words.
	Statement string
	// Expected describes the published value.
	Expected string
	// Lo, Hi bound the acceptance band for Extract's value.
	Lo, Hi float64
	// Extract pulls the measured value out of the table set; it returns
	// an error when the needed table is missing.
	Extract func(tables map[string]sweep.Table) (float64, error)
}

// Verdict is the outcome of checking one claim.
type Verdict struct {
	Claim    Claim
	Measured float64
	Pass     bool
	Err      error
}

// Check evaluates every claim against the tables (indexed by table ID).
func Check(claims []Claim, tables []sweep.Table) []Verdict {
	index := make(map[string]sweep.Table, len(tables))
	for _, t := range tables {
		index[t.ID] = t
	}
	out := make([]Verdict, 0, len(claims))
	for _, c := range claims {
		v := Verdict{Claim: c}
		val, err := c.Extract(index)
		if err != nil {
			v.Err = err
		} else {
			v.Measured = val
			v.Pass = val >= c.Lo && val <= c.Hi
		}
		out = append(out, v)
	}
	return out
}

// WriteMarkdown renders verdicts as a markdown table with a summary line.
func WriteMarkdown(w io.Writer, title string, verdicts []Verdict) error {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", title)
	b.WriteString("| claim | paper | measured | band | verdict |\n")
	b.WriteString("|---|---|---|---|---|\n")
	pass := 0
	for _, v := range verdicts {
		verdict := "**PASS**"
		measured := formatValue(v.Measured)
		switch {
		case v.Err != nil:
			verdict = "ERROR: " + v.Err.Error()
			measured = "—"
		case !v.Pass:
			verdict = "DEVIATION"
		default:
			pass++
		}
		fmt.Fprintf(&b, "| %s (%s) | %s | %s | [%s, %s] | %s |\n",
			v.Claim.Statement, v.Claim.Source, v.Claim.Expected,
			measured, formatValue(v.Claim.Lo), formatValue(v.Claim.Hi), verdict)
	}
	fmt.Fprintf(&b, "\n%d/%d claims within band.\n\n", pass, len(verdicts))
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// ---- extraction helpers ----

// need returns the named table or an error.
func need(tables map[string]sweep.Table, id string) (sweep.Table, error) {
	t, ok := tables[id]
	if !ok {
		return sweep.Table{}, fmt.Errorf("table %s not generated", id)
	}
	if len(t.Rows) == 0 {
		return sweep.Table{}, fmt.Errorf("table %s is empty", id)
	}
	return t, nil
}

// colRatioAt returns col(a)/col(b) of the row whose first column is
// closest to x.
func colRatioAt(t sweep.Table, a, b int, x float64) float64 {
	best, bd := 0, math.Inf(1)
	for i, row := range t.Rows {
		if d := math.Abs(row[0] - x); d < bd {
			best, bd = i, d
		}
	}
	if t.Rows[best][b] == 0 {
		return math.NaN()
	}
	return t.Rows[best][a] / t.Rows[best][b]
}

// maxRatio returns the maximum over rows of col(a)/col(b).
func maxRatio(t sweep.Table, a, b int) float64 {
	out := math.Inf(-1)
	for _, row := range t.Rows {
		if row[b] == 0 {
			continue
		}
		if r := row[a] / row[b]; r > out {
			out = r
		}
	}
	return out
}

// BaselineClaims returns the claims checkable from the baseline bundle
// tables (Figs. 2, 4, 5, 6 and the summary).
func BaselineClaims() []Claim {
	return []Claim{
		{
			ID: "fig2b-peak-ratio", Source: "Sec. III / Fig. 2b",
			Statement: "RMSD delay peak over No-DVFS delay at the same rate",
			Expected:  "about 9x", Lo: 4, Hi: 16,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "fig2b")
				if err != nil {
					return 0, err
				}
				return maxRatio(t, 2, 1), nil
			},
		},
		{
			ID: "fig2b-nonmonotonic", Source: "Sec. III / Fig. 2b",
			Statement: "RMSD delay non-monotonic: peak strictly inside the rate range",
			Expected:  "peak near λmin", Lo: 1, Hi: 1,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "fig2b")
				if err != nil {
					return 0, err
				}
				peak := 0
				for i, row := range t.Rows {
					if row[2] > t.Rows[peak][2] {
						peak = i
					}
				}
				if peak > 0 && peak < len(t.Rows)-1 {
					return 1, nil // interior peak: anomaly present
				}
				return 0, nil
			},
		},
		{
			ID: "fig4a-freq-order", Source: "Sec. IV / Fig. 4a",
			Statement: "RMSD frequency ≤ DMSD frequency at every rate",
			Expected:  "always", Lo: 1, Hi: 1,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "fig4a")
				if err != nil {
					return 0, err
				}
				for _, row := range t.Rows {
					if row[2] > row[3]*1.03 {
						return 0, nil
					}
				}
				return 1, nil
			},
		},
		{
			ID: "fig4b-dmsd-flat", Source: "Sec. IV / Fig. 4b",
			Statement: "DMSD delay within 30% of its target across the scaling range",
			Expected:  "flat at target", Lo: 1, Hi: 1,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "fig4b")
				if err != nil {
					return 0, err
				}
				// The target is recorded in the calibration note; recover
				// it from the last column's high-load plateau instead:
				// use the median of the DMSD column.
				vals := make([]float64, 0, len(t.Rows))
				for _, row := range t.Rows {
					vals = append(vals, row[3])
				}
				med := median(vals)
				for _, row := range t.Rows[1:] { // first point may clip at FMin
					if math.Abs(row[3]-med)/med > 0.30 {
						return 0, nil
					}
				}
				return 1, nil
			},
		},
		{
			ID: "fig6-nodvfs-rmsd", Source: "Fig. 6 annotation",
			Statement: "No-DVFS / RMSD power at 0.2 injection rate",
			Expected:  "2.2x", Lo: 1.6, Hi: 3.2,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "fig6")
				if err != nil {
					return 0, err
				}
				return colRatioAt(t, 1, 2, 0.2), nil
			},
		},
		{
			ID: "fig6-dmsd-rmsd", Source: "Fig. 6 annotation",
			Statement: "DMSD / RMSD power at 0.2 injection rate",
			Expected:  "1.3x", Lo: 1.0, Hi: 1.8,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "fig6")
				if err != nil {
					return 0, err
				}
				return colRatioAt(t, 3, 2, 0.2), nil
			},
		},
		{
			ID: "fig5-anchor-low", Source: "Sec. IV-A / Fig. 5",
			Statement: "frequency at 0.56 V",
			Expected:  "333 MHz", Lo: 0.32, Hi: 0.35,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "fig5")
				if err != nil {
					return 0, err
				}
				return t.Rows[0][1], nil
			},
		},
		{
			ID: "fig5-anchor-high", Source: "Sec. IV-A / Fig. 5",
			Statement: "frequency at 0.90 V",
			Expected:  "1 GHz", Lo: 0.99, Hi: 1.01,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "fig5")
				if err != nil {
					return 0, err
				}
				return t.Rows[len(t.Rows)-1][1], nil
			},
		},
		{
			ID: "summary-delay-ratio", Source: "Sec. I / Sec. VII",
			Statement: "maximum RMSD/DMSD delay ratio across the rate grid",
			Expected:  "up to ~3x", Lo: 1.3, Hi: 6,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "summary")
				if err != nil {
					return 0, err
				}
				out := math.Inf(-1)
				for _, row := range t.Rows {
					if row[4] > out {
						out = row[4]
					}
				}
				return out, nil
			},
		},
	}
}

// PatternClaims returns the Fig. 7 claims for one synthetic pattern: the
// delay-ratio annotations (2x–2.5x) and the power-ordering statement.
func PatternClaims(pattern string, expectedDelayRatio string) []Claim {
	delayID := "fig7_" + pattern + "_delay"
	powerID := "fig7_" + pattern + "_power"
	return []Claim{
		{
			ID: "fig7-" + pattern + "-delay", Source: "Fig. 7 annotation",
			Statement: fmt.Sprintf("max RMSD/DMSD delay ratio, %s", pattern),
			Expected:  expectedDelayRatio, Lo: 1.15, Hi: 6,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, delayID)
				if err != nil {
					return 0, err
				}
				return maxRatio(t, 2, 3), nil
			},
		},
		{
			ID: "fig7-" + pattern + "-power", Source: "Sec. V",
			Statement: fmt.Sprintf("DMSD/RMSD power at mid grid, %s", pattern),
			Expected:  "1.2x-1.4x", Lo: 0.98, Hi: 1.8,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, powerID)
				if err != nil {
					return 0, err
				}
				mid := t.Rows[len(t.Rows)/2][0]
				return colRatioAt(t, 3, 2, mid), nil
			},
		},
	}
}

// AppClaims returns the Fig. 10 claims for one multimedia workload.
func AppClaims(app string) []Claim {
	delayID := "fig10_" + app + "_delay"
	powerID := "fig10_" + app + "_power"
	return []Claim{
		{
			ID: "fig10-" + app + "-delay", Source: "Fig. 10 annotation",
			Statement: fmt.Sprintf("max RMSD/DMSD delay ratio, %s", app),
			Expected:  "~2x", Lo: 1.1, Hi: 8,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, delayID)
				if err != nil {
					return 0, err
				}
				return maxRatio(t, 2, 3), nil
			},
		},
		{
			ID: "fig10-" + app + "-power", Source: "Fig. 10 annotation",
			Statement: fmt.Sprintf("No-DVFS/DMSD power at full speed, %s", app),
			Expected:  "≥1.4x", Lo: 1.2, Hi: 12,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, powerID)
				if err != nil {
					return 0, err
				}
				last := t.Rows[len(t.Rows)-1]
				if last[3] == 0 {
					return math.NaN(), nil
				}
				return last[1] / last[3], nil
			},
		},
	}
}

// BurstClaims returns the beyond-paper workload checks: the burst study
// repeats the baseline three-policy comparison under MMPP arrivals with
// the same mean load and the same calibration, so the claims are about
// orderings the DVFS story predicts rather than numbers the paper
// publishes (it only evaluates Poisson-like sources).
func BurstClaims() []Claim {
	// burst_compare columns: rate, then {poisson,mmpp} delay for
	// nodvfs (1,2), rmsd (3,4) and dmsd (5,6).
	return []Claim{
		{
			ID: "burst-nodvfs-inflation", Source: "beyond paper",
			Statement: "max MMPP/Poisson No-DVFS delay ratio (bursts at equal mean load cost latency)",
			Expected:  ">1.3x", Lo: 1.3, Hi: 20,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "burst_compare")
				if err != nil {
					return 0, err
				}
				return maxRatio(t, 2, 1), nil
			},
		},
		{
			ID: "burst-dmsd-tracking", Source: "beyond paper",
			Statement: "MMPP/Poisson DMSD delay at mid load (the controller still holds its target under bursts)",
			Expected:  "≈1x", Lo: 0.6, Hi: 2.5,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "burst_compare")
				if err != nil {
					return 0, err
				}
				mid := t.Rows[len(t.Rows)/2][0]
				return colRatioAt(t, 6, 5, mid), nil
			},
		},
		{
			ID: "burst-rmsd-vs-dmsd", Source: "beyond paper",
			Statement: "RMSD/DMSD delay at mid load under MMPP (rate-only control degrades more than delay control)",
			Expected:  ">1.3x", Lo: 1.3, Hi: 20,
			Extract: func(tables map[string]sweep.Table) (float64, error) {
				t, err := need(tables, "burst_compare")
				if err != nil {
					return 0, err
				}
				mid := t.Rows[len(t.Rows)/2][0]
				return colRatioAt(t, 4, 6, mid), nil
			},
		},
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}
