package noc

import "math/bits"

// linkEvent records one link (or injection) traversal staged during cycle
// t and applied at the start of cycle t+1. The flit itself has already
// been written into the destination VC's ring slot by the sender — the
// sending stage is that slot's only writer in the cycle, since exactly one
// flit per (router, input port) can arrive per cycle — so the event
// carries only the arrival notice and the piggybacked credit for the
// freed upstream slot. Targets are precomputed at staging time from the
// flat link tables, so delivery never chases neighbour pointers.
//
// node/port/vc locate the arrival: input port `port`, VC `vc` of router
// `node`. credNode/credTarget/credVC locate the credit: credNode is the
// upstream node id (deciding which band applies it; < 0 means no credit,
// used for source injections, which track their own credits), and
// credTarget >= 0 is the flat output-port index node*NumPorts+port of
// the upstream router (the credit lands at outState[credTarget*VCs+
// credVC]) while credTarget < 0 means the upstream feeder is the
// injection source of node -credTarget-1.
//
// The six fields are packed into one word: staging and draining these
// events is the hottest memory traffic in the engine (one per flit-hop
// per cycle), and a single 8-byte store halves it against the naive
// 16-byte struct. The field widths bound the mesh at levMaxNodes nodes
// (Config.Validate enforces it) and ride on the existing VCs <= 64 cap.
type linkEvent uint64

const (
	// linkEvent bit layout, LSB up: node(14) port(3) vc(6) credVC(6)
	// credNode+1(15) credTarget+levCredBias(18).
	levNodeBits        = 14
	levMaxNodes        = 1 << levNodeBits
	levPortShift       = levNodeBits
	levVCShift         = levPortShift + 3
	levCredVCShift     = levVCShift + 6
	levCredNodeShift   = levCredVCShift + 6
	levCredTargetShift = levCredNodeShift + 15
	// levCredBias shifts credTarget (>= -nodes-1) into unsigned range.
	levCredBias = levMaxNodes + 1
)

// makeLinkEvent packs an arrival notice (node, port, vc) and its
// piggybacked credit (credNode, credTarget, credVC; credNode < 0 for
// none) into one event word.
func makeLinkEvent(node int32, port, vc int8, credNode, credTarget int32, credVC int8) linkEvent {
	return linkEvent(uint64(node) |
		uint64(port)<<levPortShift |
		uint64(vc)<<levVCShift |
		uint64(credVC)<<levCredVCShift |
		uint64(credNode+1)<<levCredNodeShift |
		uint64(credTarget+levCredBias)<<levCredTargetShift)
}

func (e linkEvent) node() int32       { return int32(e & (levMaxNodes - 1)) }
func (e linkEvent) port() int8        { return int8(e >> levPortShift & 7) }
func (e linkEvent) vc() int8          { return int8(e >> levVCShift & 63) }
func (e linkEvent) credVC() int8      { return int8(e >> levCredVCShift & 63) }
func (e linkEvent) credNode() int32   { return int32(e>>levCredNodeShift&(1<<15-1)) - 1 }
func (e linkEvent) credTarget() int32 { return int32(e>>levCredTargetShift&(1<<18-1)) - levCredBias }

// ejectEvent is a flit leaving the network at a local ejection port,
// carrying the upstream credit for its freed slot. Ejects are applied
// serially (OnArrive ordering), so the credit is applied there too. The
// phase needs no flit payload — only packet completion on the tail — so
// the event carries the packet pointer (nil for body flits) instead of
// a 16-byte flit copy.
type ejectEvent struct {
	packet     *Packet
	credTarget int32
	credVC     int8
}

// band is a contiguous range of node ids [lo, hi) stepped as a unit by one
// worker of the step-worker group (row bands of the mesh, since ids are
// row-major). Routers never read or write each other's state within a
// cycle — they interact only through events staged for the next cycle — so
// any contiguous partition preserves exact semantics; each band owns the
// delivery and compute of its routers and sources and stages outbound
// events into its own buffers, which keeps the parallel phases free of
// shared mutable state.
type band struct {
	lo, hi int

	// Active-set bitmasks over the band's id range: bit k of word w set
	// means node lo+w*64+k holds work. Iterating set bits in word order
	// visits nodes in ascending id, matching the event order of the naive
	// router-major loop. The counters make the quiescence check O(bands).
	routerWords    []uint64
	sourceWords    []uint64
	nActiveRouters int
	nActiveSources int

	// Per-stage router bitmasks: bit k of rcWords/vaWords/saWords is set
	// exactly while router lo+w*64+k has a nonzero nRouting/nWaitVC/
	// nActive counter. Each stage pass sweeps only its own mask, so a
	// router streaming a packet body (SA work every cycle, RC/VA work
	// once per packet) costs the RC and VA passes nothing. The stage
	// functions keep the bits in sync at counter 0<->nonzero transitions.
	rcWords []uint64
	vaWords []uint64
	saWords []uint64

	// Two-phase event staging: events produced during cycle t are applied
	// at the start of cycle t+1, modelling one-cycle link and credit
	// delays. Each band appends only to its own staged buffers; the
	// delivery phase reads all bands' pending buffers but applies only
	// events targeting its own id range.
	stagedLinks   []linkEvent
	pendingLinks  []linkEvent
	stagedEjects  []ejectEvent
	pendingEjects []ejectEvent

	// flitsInjected counts source->router flit deliveries staged by this
	// band's sources (summed across bands by Network.Stats).
	flitsInjected int64

	// VA slow-path scratch (NumPorts*VCs > 64), shared by the band's
	// routers so the fallback allocator stays allocation-free.
	vaReq   [NumPorts][]int32
	vaIsReq []bool
}

// workerPhase selects which half of a Step a band worker runs.
type workerPhase uint8

const (
	phaseDeliver workerPhase = iota + 1
	phaseCompute
)

// buildBands partitions the mesh into w contiguous bands and rebinds every
// router and source to its band. Callers ensure the network is quiescent
// (no staged events, no active work), so only the cumulative injection
// counter needs carrying over.
func (n *Network) buildBands(w int) {
	nodes := len(n.routers)
	if w < 1 {
		w = 1
	}
	if w > nodes {
		w = nodes
	}
	var injected int64
	for _, b := range n.bands {
		injected += b.flitsInjected
	}
	bands := make([]*band, w)
	for i := range bands {
		lo := i * nodes / w
		hi := (i + 1) * nodes / w
		words := (hi - lo + 63) / 64
		bands[i] = &band{
			lo:          lo,
			hi:          hi,
			routerWords: make([]uint64, words),
			sourceWords: make([]uint64, words),
			rcWords:     make([]uint64, words),
			vaWords:     make([]uint64, words),
			saWords:     make([]uint64, words),
		}
	}
	bands[0].flitsInjected = injected
	for _, b := range bands {
		for id := b.lo; id < b.hi; id++ {
			n.routers[id].band = b
			n.sources[id].band = b
		}
	}
	n.bands = bands
	n.stepWorkers = w
}

// startWorkers launches the persistent band workers (bands 1..W-1; the
// caller of Step acts as the worker for band 0). Each worker blocks on its
// phase channel, runs the requested phase over its band, and signals the
// phase WaitGroup. The channel send in runPhase happens-before the
// worker's phase execution, and the WaitGroup happens-before the caller's
// return, so cross-phase state is properly synchronized.
func (n *Network) startWorkers() {
	if n.stepWorkers <= 1 {
		return
	}
	n.phaseCh = make([]chan workerPhase, n.stepWorkers-1)
	for i := 1; i < n.stepWorkers; i++ {
		ch := make(chan workerPhase, 1)
		n.phaseCh[i-1] = ch
		b := n.bands[i]
		n.workerWG.Add(1)
		go func() {
			defer n.workerWG.Done()
			for ph := range ch {
				switch ph {
				case phaseDeliver:
					n.deliverBand(b)
				case phaseCompute:
					n.computeBand(b, n.cycle)
				}
				n.phaseWG.Done()
			}
		}()
	}
}

// stopWorkers shuts the worker group down and waits for the goroutines to
// exit. Idempotent.
func (n *Network) stopWorkers() {
	for _, ch := range n.phaseCh {
		close(ch)
	}
	n.phaseCh = nil
	n.workerWG.Wait()
}

// runPhase fans one phase out to all band workers, runs band 0 on the
// calling goroutine, and waits for the barrier.
func (n *Network) runPhase(ph workerPhase) {
	n.phaseWG.Add(len(n.phaseCh))
	for _, ch := range n.phaseCh {
		ch <- ph
	}
	b := n.bands[0]
	if ph == phaseDeliver {
		n.deliverBand(b)
	} else {
		n.computeBand(b, n.cycle)
	}
	n.phaseWG.Wait()
}

// deliverBand applies last cycle's link events targeting this band's
// nodes: arrival commits for flits already sitting in their destination
// ring slots, and upstream credits. It scans every band's pending buffers
// (read-only during the delivery phase) and filters by target id, so no
// two workers ever write the same router, source, or credit counter: at
// most one flit per (router, input port) and one credit per (router,
// output port, vc) exist per cycle, and delivery order across sibling
// events is commutative.
func (n *Network) deliverBand(b *band) {
	cycle := n.cycle
	if len(n.bands) == 1 {
		// Serial fast path: every event targets this band.
		for _, ev := range b.pendingLinks {
			n.routers[ev.node()].commitArrival(Port(ev.port()), int(ev.vc()), cycle)
			if cn := ev.credNode(); cn >= 0 {
				if ct := ev.credTarget(); ct < 0 {
					n.sources[-ct-1].acceptCredit(int(ev.credVC()))
				} else {
					n.returnCredit(ct, ev.credVC())
				}
			}
		}
		return
	}
	lo, hi := int32(b.lo), int32(b.hi)
	for _, src := range n.bands {
		for _, ev := range src.pendingLinks {
			if node := ev.node(); node >= lo && node < hi {
				n.routers[node].commitArrival(Port(ev.port()), int(ev.vc()), cycle)
			}
			if cn := ev.credNode(); cn >= lo && cn < hi {
				if ct := ev.credTarget(); ct < 0 {
					n.sources[-ct-1].acceptCredit(int(ev.credVC()))
				} else {
					n.returnCredit(ct, ev.credVC())
				}
			}
		}
	}
}

// returnCredit restores one credit to output VC credVC of the flat output
// port credTarget (= node*NumPorts+port), keeping the owning router's
// credit mask in sync. Callers hold exclusive access to that router's
// state (its band worker, or the serial eject phase).
func (n *Network) returnCredit(credTarget int32, credVC int8) {
	o := &n.outState[int(credTarget)*n.cfg.VCs+int(credVC)]
	o.credits++
	if o.credits == 1 {
		r := &n.routers[int(credTarget)/NumPorts]
		r.creditMask[int(credTarget)%NumPorts] |= 1 << uint(credVC)
		// A 0->1 transition may restore SA eligibility for the input VC
		// holding this output VC (if it still has flits to send).
		if owner := o.owner; owner >= 0 && r.vc[owner].bufLen > 0 {
			r.saEligMask[int(owner)/r.vcs] |= 1 << uint(int(owner)%r.vcs)
		}
	} else if o.credits > int32(n.cfg.BufDepth) {
		panic("noc: credit overflow (more credits than buffer slots)")
	}
}

// computeBand runs one stage-major cycle over the band: each pipeline
// stage sweeps the active-router bitmask once, in ascending id order, over
// the contiguous per-VC state, before the next stage starts; then the
// band's active sources inject. Routers that end the cycle with no work
// are pruned from the active set, as are drained sources.
func (n *Network) computeBand(b *band, cycle int64) {
	routers := n.routers
	// gated is false on homogeneous meshes, keeping the island check out
	// of the hot path; stalled nodes skip every stage (and injection) but
	// stay in the active sets until they run again.
	gated := n.islandOf != nil
	for w, word := range b.rcWords {
		if word == 0 {
			continue
		}
		base := b.lo + w*64
		for ; word != 0; word &= word - 1 {
			id := base + bits.TrailingZeros64(word)
			if gated && n.nodeStalled(id) {
				continue
			}
			routers[id].stageRC(cycle)
		}
	}
	for w, word := range b.vaWords {
		if word == 0 {
			continue
		}
		base := b.lo + w*64
		for ; word != 0; word &= word - 1 {
			id := base + bits.TrailingZeros64(word)
			if gated && n.nodeStalled(id) {
				continue
			}
			routers[id].stageVA(cycle)
		}
	}
	// A router can only run out of work during its SA pass (flits leave
	// nowhere else), so pruning the band's active set here catches every
	// router the moment it goes idle.
	for w, word := range b.saWords {
		if word == 0 {
			continue
		}
		base := b.lo + w*64
		for ; word != 0; word &= word - 1 {
			k := bits.TrailingZeros64(word)
			if gated && n.nodeStalled(base+k) {
				continue
			}
			r := &routers[base+k]
			r.stageSA(cycle)
			if !r.hasWork() {
				r.active = false
				b.routerWords[w] &^= 1 << uint(k)
				b.nActiveRouters--
			}
		}
	}
	sources := n.sources
	for w, word := range b.sourceWords {
		if word == 0 {
			continue
		}
		base := b.lo + w*64
		for ; word != 0; word &= word - 1 {
			k := bits.TrailingZeros64(word)
			if gated && n.nodeStalled(base+k) {
				continue
			}
			s := sources[base+k]
			s.step(cycle, &n.cfg)
			if !s.hasWork() {
				s.active = false
				b.sourceWords[w] &^= 1 << uint(k)
				b.nActiveSources--
			}
		}
	}
}
