// Package noc implements a cycle-accurate network-on-chip simulator for a
// 2-D mesh of input-queued virtual-channel wormhole routers with
// credit-based flow control, in the style of Stanford's Booksim 2 (the
// simulator used by Casu & Giaccone, "Rate-based vs Delay-based Control for
// DVFS in NoC", DATE 2015).
//
// The router is the canonical four-stage pipeline:
//
//	RC  — route computation for the head flit at the front of an input VC
//	VA  — virtual-channel allocation (separable, input-first, round-robin)
//	SA  — switch allocation (two-phase round-robin: per-input then per-output)
//	ST+LT — switch and link traversal; the flit is written into the
//	        downstream input buffer one cycle later, and a credit is
//	        returned upstream with one cycle of delay
//
// The package is deliberately agnostic of real time: it advances in network
// clock cycles. DVFS (variable network frequency against a fixed node
// frequency) is layered on top by package sim, which converts cycles to
// seconds and drives the injection processes in the node clock domain.
//
// All randomness used inside the network (e.g. O1TURN dimension selection)
// is injected by the caller, keeping simulations fully deterministic for a
// given seed.
//
// # Stage-major stepping
//
// The hot loop is stage-major, not router-major: each cycle sweeps every
// active router's RC stage, then every VA, then every SA, walking
// per-stage bitmasks over contiguous per-VC state (one packed 16-byte
// record per virtual channel, flit payloads in flat per-network rings).
// A router streaming a packet body has SA work every cycle but RC and VA
// work only once per packet, so the per-stage masks let the RC and VA
// sweeps skip it entirely. Within a cycle routers interact only through
// events staged for the next cycle: a sender writes the outgoing flit
// directly into the destination ring slot (exactly one flit per router
// and input port can arrive per cycle, so the slot has a single writer)
// and stages a 16-byte link event carrying the arrival notice and the
// piggybacked upstream credit, applied at the start of cycle t+1.
//
// # Step workers
//
// SetStepWorkers(n) shards the mesh into n contiguous-id bands, each
// stepped by one worker of a persistent goroutine group under a
// two-phase barrier per cycle: deliver (each band applies last cycle's
// events targeting its own routers) then compute (each band runs its
// stage sweeps and stages new events into its own buffers). Ejections
// run serially between the phases in band order, so OnArrive ordering —
// and every other observable — is bit-identical to the serial engine for
// every worker count; the golden tests in step_test.go enforce it.
// Callers that run many simulations concurrently should charge one
// leaf-budget slot per step worker (see exp.AcquireLeafN) so intra-sim
// threads and concurrent sims draw from the same pool of cores.
package noc
