// Package noc implements a cycle-accurate network-on-chip simulator for a
// 2-D mesh of input-queued virtual-channel wormhole routers with
// credit-based flow control, in the style of Stanford's Booksim 2 (the
// simulator used by Casu & Giaccone, "Rate-based vs Delay-based Control for
// DVFS in NoC", DATE 2015).
//
// The router is the canonical four-stage pipeline:
//
//	RC  — route computation for the head flit at the front of an input VC
//	VA  — virtual-channel allocation (separable, input-first, round-robin)
//	SA  — switch allocation (two-phase round-robin: per-input then per-output)
//	ST+LT — switch and link traversal; the flit is written into the
//	        downstream input buffer one cycle later, and a credit is
//	        returned upstream with one cycle of delay
//
// The package is deliberately agnostic of real time: it advances in network
// clock cycles. DVFS (variable network frequency against a fixed node
// frequency) is layered on top by package sim, which converts cycles to
// seconds and drives the injection processes in the node clock domain.
//
// All randomness used inside the network (e.g. O1TURN dimension selection)
// is injected by the caller, keeping simulations fully deterministic for a
// given seed.
package noc
