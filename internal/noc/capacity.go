package noc

// ChannelLoads computes, for a normalized traffic matrix m (m[s][d] is the
// fraction of node s's injected flits destined to node d, with rows summing
// to at most 1), the load placed on every directed mesh channel under the
// configured deterministic routing, assuming every node injects at rate 1
// flit per cycle. The result maps the flat channel index (see ChannelIndex)
// to its load in flits per cycle.
//
// The theoretical per-node capacity of the network under this matrix is
// 1/maxLoad: no injection rate above it can be sustained because the most
// loaded channel would have to carry more than one flit per cycle. The
// simulator's empirically measured saturation rate is lower (allocator and
// buffer limits); both values are useful to sanity-check each other and to
// seed the RMSD policy's λmax.
func ChannelLoads(cfg Config, m [][]float64) []float64 {
	loads := make([]float64, cfg.Nodes()*NumPorts)
	for s := 0; s < cfg.Nodes(); s++ {
		for d := 0; d < cfg.Nodes(); d++ {
			if s == d || m[s][d] == 0 {
				continue
			}
			w := m[s][d]
			yFirst := cfg.Routing == RoutingYX
			if cfg.Routing == RoutingO1TURN {
				// O1TURN splits traffic evenly over XY and YX.
				addPathLoad(cfg, loads, NodeID(s), NodeID(d), w/2, false)
				addPathLoad(cfg, loads, NodeID(s), NodeID(d), w/2, true)
				continue
			}
			addPathLoad(cfg, loads, NodeID(s), NodeID(d), w, yFirst)
		}
	}
	return loads
}

// addPathLoad walks the dimension-ordered route from s to d adding w to
// every traversed channel.
func addPathLoad(cfg Config, loads []float64, s, d NodeID, w float64, yFirst bool) {
	cur := s
	for cur != d {
		p := routeDOR(&cfg, cur, d, yFirst)
		loads[ChannelIndex(cfg, cur, p)] += w
		dx, dy := p.delta()
		x, y := cfg.Coord(cur)
		cur = cfg.Node(x+dx, y+dy)
	}
}

// ChannelIndex returns the flat index of the directed channel leaving node
// id through port p.
func ChannelIndex(cfg Config, id NodeID, p Port) int {
	return int(id)*NumPorts + int(p)
}

// MaxChannelLoad returns the maximum element of loads.
func MaxChannelLoad(loads []float64) float64 {
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// TheoreticalCapacity returns the per-node injection-rate upper bound
// (flits per node per cycle) for the matrix m: 1 / max channel load.
// It returns +Inf only for an empty matrix, which callers should treat as
// "no traffic".
func TheoreticalCapacity(cfg Config, m [][]float64) float64 {
	max := MaxChannelLoad(ChannelLoads(cfg, m))
	if max == 0 {
		return 0
	}
	return 1 / max
}

// UniformMatrix returns the uniform-random traffic matrix over n nodes:
// every source spreads its traffic evenly over the n-1 other nodes.
func UniformMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	for s := range m {
		m[s] = make([]float64, n)
		for d := range m[s] {
			if s != d {
				m[s][d] = 1 / float64(n-1)
			}
		}
	}
	return m
}
