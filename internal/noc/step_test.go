package noc

import (
	"testing"
)

// stepTraffic drives a deterministic packet mix through the network: one
// packet every injectEvery cycles, cycling over a fixed set of flows.
func stepTraffic(net *Network, cycles int, injectEvery int) {
	flows := [][2]NodeID{{0, 24}, {24, 0}, {4, 20}, {12, 7}, {3, 18}}
	fi := 0
	for c := 0; c < cycles; c++ {
		if injectEvery > 0 && c%injectEvery == 0 {
			f := flows[fi%len(flows)]
			fi++
			net.NewPacket(f[0], f[1], float64(net.Cycle()), 0)
		}
		net.Step()
	}
}

// TestStepZeroAllocsSteadyState asserts the tentpole's zero-alloc claim:
// once the free lists, staging buffers and work lists are warm, a steady
// state of injection + stepping never touches the heap.
func TestStepZeroAllocsSteadyState(t *testing.T) {
	net, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: grow every pool, queue and staging buffer to steady-state
	// capacity, then drain so the free lists are fully stocked.
	stepTraffic(net, 4000, 8)
	if !net.Drain(10_000) {
		t.Fatal("warm-up traffic did not drain")
	}

	c := 0
	flows := [][2]NodeID{{0, 24}, {24, 0}, {4, 20}, {12, 7}}
	allocs := testing.AllocsPerRun(4000, func() {
		if c%8 == 0 {
			f := flows[(c/8)%len(flows)]
			net.NewPacket(f[0], f[1], float64(net.Cycle()), 0)
		}
		net.Step()
		c++
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.2f objects/cycle, want 0", allocs)
	}
}

// TestQuiescentStepZeroAllocs covers the skip-ahead fast path: stepping an
// idle network is allocation-free from the first call.
func TestQuiescentStepZeroAllocs(t *testing.T) {
	net, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, net.Step); allocs != 0 {
		t.Errorf("quiescent Step allocates %.2f objects/cycle, want 0", allocs)
	}
}

// TestSkipAheadMatchesNaiveLoop runs the identical traffic script with the
// fast paths on and off and requires identical cycle-by-cycle observable
// state: packet/flit counters, per-router activity, and arrival order.
func TestSkipAheadMatchesNaiveLoop(t *testing.T) {
	type arrival struct {
		id    int64
		cycle int64
	}
	run := func(skip bool) ([]arrival, [4]int64, []RouterActivity) {
		net, err := NewNetwork(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		net.SetSkipAhead(skip)
		var arrivals []arrival
		net.OnArrive = func(p *Packet, cycle int64) {
			arrivals = append(arrivals, arrival{id: p.ID, cycle: cycle})
		}
		// Bursts separated by long idle gaps, so skip-ahead actually skips.
		stepTraffic(net, 300, 3)
		stepTraffic(net, 500, 0) // idle: quiescent fast path
		stepTraffic(net, 300, 5)
		if !net.Drain(10_000) {
			t.Fatal("traffic did not drain")
		}
		net.CheckInvariants()
		q, a, i, e := net.Stats()
		return arrivals, [4]int64{q, a, i, e}, net.RouterActivities()
	}
	fastArr, fastStats, fastAct := run(true)
	naiveArr, naiveStats, naiveAct := run(false)
	if fastStats != naiveStats {
		t.Errorf("counters diverge: fast %v naive %v", fastStats, naiveStats)
	}
	if len(fastArr) != len(naiveArr) {
		t.Fatalf("arrival counts diverge: %d vs %d", len(fastArr), len(naiveArr))
	}
	for i := range fastArr {
		if fastArr[i] != naiveArr[i] {
			t.Fatalf("arrival %d diverges: fast %+v naive %+v", i, fastArr[i], naiveArr[i])
		}
	}
	for id := range fastAct {
		if fastAct[id] != naiveAct[id] {
			t.Errorf("router %d activity diverges:\nfast:  %+v\nnaive: %+v", id, fastAct[id], naiveAct[id])
		}
	}
}

// runWorkersGolden drives the shared traffic script with the given worker
// count and returns every observable: arrival order (id, cycle, latency),
// cumulative counters, and per-router activity.
func runWorkersGolden(t *testing.T, workers int) ([][3]int64, [4]int64, []RouterActivity) {
	t.Helper()
	net, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	net.SetStepWorkers(workers)
	defer net.Close()
	if got := net.StepWorkers(); got != workers {
		t.Fatalf("StepWorkers() = %d after SetStepWorkers(%d)", got, workers)
	}
	var arrivals [][3]int64
	net.OnArrive = func(p *Packet, cycle int64) {
		arrivals = append(arrivals, [3]int64{p.ID, cycle, p.ArriveCycle - p.CreateCycle})
	}
	stepTraffic(net, 400, 2)
	stepTraffic(net, 300, 0)
	stepTraffic(net, 400, 5)
	if !net.Drain(10_000) {
		t.Fatal("traffic did not drain")
	}
	net.CheckInvariants()
	q, a, i, e := net.Stats()
	return arrivals, [4]int64{q, a, i, e}, net.RouterActivities()
}

// TestStepWorkersMatchSerial asserts the tentpole's determinism claim: the
// banded parallel engine is bit-identical to the serial engine for every
// worker count — same arrival order, same latencies, same counters, same
// per-router activity. Under -race this doubles as the data-race proof for
// the two-phase deliver/compute barrier and the direct-write flit rings.
func TestStepWorkersMatchSerial(t *testing.T) {
	serialArr, serialStats, serialAct := runWorkersGolden(t, 1)
	for _, w := range []int{2, 3, 4, 8, 25} {
		arr, stats, act := runWorkersGolden(t, w)
		if stats != serialStats {
			t.Errorf("workers=%d: counters diverge: %v vs serial %v", w, stats, serialStats)
		}
		if len(arr) != len(serialArr) {
			t.Fatalf("workers=%d: arrival counts diverge: %d vs %d", w, len(arr), len(serialArr))
		}
		for i := range arr {
			if arr[i] != serialArr[i] {
				t.Fatalf("workers=%d: arrival %d diverges: %v vs serial %v", w, i, arr[i], serialArr[i])
			}
		}
		for id := range act {
			if act[id] != serialAct[id] {
				t.Errorf("workers=%d: router %d activity diverges:\nparallel: %+v\nserial:   %+v", w, id, act[id], serialAct[id])
			}
		}
	}
}

// TestStepWorkersReconfigure exercises the worker-group lifecycle: resizing
// between drained bursts keeps results identical to serial, worker counts
// clamp to [1, nodes], and Close is idempotent.
func TestStepWorkersReconfigure(t *testing.T) {
	cfg := DefaultConfig()
	run := func(resize bool) ([4]int64, []RouterActivity) {
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		for burst, w := range []int{4, 1, 2} {
			if resize {
				net.SetStepWorkers(w)
			}
			stepTraffic(net, 300, 3+burst)
			if !net.Drain(10_000) {
				t.Fatal("burst did not drain")
			}
			net.CheckInvariants()
		}
		q, a, i, e := net.Stats()
		return [4]int64{q, a, i, e}, net.RouterActivities()
	}
	serialStats, serialAct := run(false)
	resizedStats, resizedAct := run(true)
	if resizedStats != serialStats {
		t.Errorf("counters diverge after resizing: %v vs %v", resizedStats, serialStats)
	}
	for id := range resizedAct {
		if resizedAct[id] != serialAct[id] {
			t.Errorf("router %d activity diverges after resizing", id)
		}
	}

	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.SetStepWorkers(1000)
	if got := net.StepWorkers(); got != cfg.Nodes() {
		t.Errorf("StepWorkers() = %d, want clamp to %d nodes", got, cfg.Nodes())
	}
	net.SetStepWorkers(0)
	if got := net.StepWorkers(); got != 1 {
		t.Errorf("StepWorkers() = %d, want clamp to 1", got)
	}
	net.Close()
	net.Close() // idempotent
}

// TestSetStepWorkersPanicsMidFlight pins the quiescence precondition:
// repartitioning with staged events or buffered flits would misroute
// in-flight work, so the engine refuses it loudly.
func TestSetStepWorkersPanicsMidFlight(t *testing.T) {
	net, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.NewPacket(0, 24, 0, 0)
	stepN(net, 3)
	defer func() {
		if recover() == nil {
			t.Error("SetStepWorkers with work in flight did not panic")
		}
	}()
	net.SetStepWorkers(4)
}
