package noc

import (
	"testing"
)

// stepTraffic drives a deterministic packet mix through the network: one
// packet every injectEvery cycles, cycling over a fixed set of flows.
func stepTraffic(net *Network, cycles int, injectEvery int) {
	flows := [][2]NodeID{{0, 24}, {24, 0}, {4, 20}, {12, 7}, {3, 18}}
	fi := 0
	for c := 0; c < cycles; c++ {
		if injectEvery > 0 && c%injectEvery == 0 {
			f := flows[fi%len(flows)]
			fi++
			net.NewPacket(f[0], f[1], float64(net.Cycle()), 0)
		}
		net.Step()
	}
}

// TestStepZeroAllocsSteadyState asserts the tentpole's zero-alloc claim:
// once the free lists, staging buffers and work lists are warm, a steady
// state of injection + stepping never touches the heap.
func TestStepZeroAllocsSteadyState(t *testing.T) {
	net, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: grow every pool, queue and staging buffer to steady-state
	// capacity, then drain so the free lists are fully stocked.
	stepTraffic(net, 4000, 8)
	if !net.Drain(10_000) {
		t.Fatal("warm-up traffic did not drain")
	}

	c := 0
	flows := [][2]NodeID{{0, 24}, {24, 0}, {4, 20}, {12, 7}}
	allocs := testing.AllocsPerRun(4000, func() {
		if c%8 == 0 {
			f := flows[(c/8)%len(flows)]
			net.NewPacket(f[0], f[1], float64(net.Cycle()), 0)
		}
		net.Step()
		c++
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.2f objects/cycle, want 0", allocs)
	}
}

// TestQuiescentStepZeroAllocs covers the skip-ahead fast path: stepping an
// idle network is allocation-free from the first call.
func TestQuiescentStepZeroAllocs(t *testing.T) {
	net, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, net.Step); allocs != 0 {
		t.Errorf("quiescent Step allocates %.2f objects/cycle, want 0", allocs)
	}
}

// TestSkipAheadMatchesNaiveLoop runs the identical traffic script with the
// fast paths on and off and requires identical cycle-by-cycle observable
// state: packet/flit counters, per-router activity, and arrival order.
func TestSkipAheadMatchesNaiveLoop(t *testing.T) {
	type arrival struct {
		id    int64
		cycle int64
	}
	run := func(skip bool) ([]arrival, [4]int64, []RouterActivity) {
		net, err := NewNetwork(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		net.SetSkipAhead(skip)
		var arrivals []arrival
		net.OnArrive = func(p *Packet, cycle int64) {
			arrivals = append(arrivals, arrival{id: p.ID, cycle: cycle})
		}
		// Bursts separated by long idle gaps, so skip-ahead actually skips.
		stepTraffic(net, 300, 3)
		stepTraffic(net, 500, 0) // idle: quiescent fast path
		stepTraffic(net, 300, 5)
		if !net.Drain(10_000) {
			t.Fatal("traffic did not drain")
		}
		net.CheckInvariants()
		q, a, i, e := net.Stats()
		return arrivals, [4]int64{q, a, i, e}, net.RouterActivities()
	}
	fastArr, fastStats, fastAct := run(true)
	naiveArr, naiveStats, naiveAct := run(false)
	if fastStats != naiveStats {
		t.Errorf("counters diverge: fast %v naive %v", fastStats, naiveStats)
	}
	if len(fastArr) != len(naiveArr) {
		t.Fatalf("arrival counts diverge: %d vs %d", len(fastArr), len(naiveArr))
	}
	for i := range fastArr {
		if fastArr[i] != naiveArr[i] {
			t.Fatalf("arrival %d diverges: fast %+v naive %+v", i, fastArr[i], naiveArr[i])
		}
	}
	for id := range fastAct {
		if fastAct[id] != naiveAct[id] {
			t.Errorf("router %d activity diverges:\nfast:  %+v\nnaive: %+v", id, fastAct[id], naiveAct[id])
		}
	}
}
