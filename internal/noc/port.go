package noc

import "fmt"

// Port identifies one of the five ports of a mesh router. PortLocal connects
// the router to its processing element (injection on the input side,
// ejection on the output side); the four cardinal ports connect to the
// neighbouring routers.
type Port int

// Router port indices. The coordinate convention is x growing eastwards and
// y growing southwards, so PortNorth leads to the router at (x, y-1) and
// PortSouth to (x, y+1).
const (
	PortLocal Port = iota
	PortNorth
	PortEast
	PortSouth
	PortWest

	// NumPorts is the number of ports on a mesh router.
	NumPorts int = iota
)

var portNames = [...]string{"local", "north", "east", "south", "west"}

// String returns the lower-case name of the port.
func (p Port) String() string {
	if p < 0 || int(p) >= NumPorts {
		return fmt.Sprintf("port(%d)", int(p))
	}
	return portNames[p]
}

// Opposite returns the port on the neighbouring router that faces p: a flit
// leaving through PortEast arrives on the neighbour's PortWest, and so on.
// Opposite panics for PortLocal, which has no peer router.
func (p Port) Opposite() Port {
	switch p {
	case PortNorth:
		return PortSouth
	case PortSouth:
		return PortNorth
	case PortEast:
		return PortWest
	case PortWest:
		return PortEast
	}
	panic("noc: PortLocal has no opposite port")
}

// delta returns the coordinate displacement of the router reached through p.
func (p Port) delta() (dx, dy int) {
	switch p {
	case PortNorth:
		return 0, -1
	case PortSouth:
		return 0, 1
	case PortEast:
		return 1, 0
	case PortWest:
		return -1, 0
	}
	return 0, 0
}
