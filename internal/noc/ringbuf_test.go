package noc

import "testing"

func TestPacketQueueFIFO(t *testing.T) {
	var q packetQueue
	if q.Len() != 0 || q.Front() != nil || q.Pop() != nil {
		t.Fatal("empty queue misbehaves")
	}
	pkts := make([]*Packet, 10)
	for i := range pkts {
		pkts[i] = &Packet{ID: int64(i)}
		q.Push(pkts[i])
	}
	for i := range pkts {
		if q.Front() != pkts[i] {
			t.Fatalf("Front() out of order at %d", i)
		}
		if q.Pop() != pkts[i] {
			t.Fatalf("Pop() out of order at %d", i)
		}
	}
}

func TestPacketQueueCompaction(t *testing.T) {
	// Exercise the compaction path: push and pop many packets and check
	// order is preserved throughout.
	var q packetQueue
	next, expect := int64(0), int64(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			q.Push(&Packet{ID: next})
			next++
		}
		for i := 0; i < 5; i++ {
			p := q.Pop()
			if p.ID != expect {
				t.Fatalf("popped %d, want %d", p.ID, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		p := q.Pop()
		if p.ID != expect {
			t.Fatalf("drain popped %d, want %d", p.ID, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d packets, pushed %d", expect, next)
	}
}

// TestVCRingWrapAround exercises the inline per-VC flit ring (bufHead/
// bufLen over the network's flat bufs array) through the router's public
// accept/step path at a non-power-of-two depth, forcing wrap-around.
func TestVCRingWrapAround(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufDepth = 3
	cfg.PacketSize = 7
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []int32
	n.OnArrive = func(p *Packet, cycle int64) { got = append(got, int32(p.Hops)) }
	for i := 0; i < 5; i++ {
		n.NewPacket(0, 24, 0, 0)
	}
	if !n.Drain(10000) {
		t.Fatal("network did not drain")
	}
	n.CheckInvariants()
	if len(got) != 5 {
		t.Fatalf("got %d arrivals, want 5", len(got))
	}
	for i, h := range got {
		if h != 8 {
			t.Fatalf("packet %d took %d hops, want 8", i, h)
		}
	}
}
