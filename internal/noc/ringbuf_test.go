package noc

import "testing"

func TestFlitRingFIFO(t *testing.T) {
	r := newFlitRing(4)
	if r.Len() != 0 || r.Cap() != 4 || r.Full() {
		t.Fatalf("fresh ring: len=%d cap=%d full=%v", r.Len(), r.Cap(), r.Full())
	}
	flits := make([]*Flit, 4)
	for i := range flits {
		flits[i] = &Flit{Seq: i}
		r.Push(flits[i])
	}
	if !r.Full() {
		t.Error("ring should be full after 4 pushes")
	}
	for i := range flits {
		if got := r.Front(); got != flits[i] {
			t.Fatalf("Front() = %v, want flit %d", got, i)
		}
		if got := r.Pop(); got != flits[i] {
			t.Fatalf("Pop() = %v, want flit %d", got, i)
		}
	}
	if r.Front() != nil {
		t.Error("Front() on empty ring should be nil")
	}
}

func TestFlitRingWrapAround(t *testing.T) {
	r := newFlitRing(3)
	seq := 0
	// Repeatedly push 2, pop 1 to force wrap-around, checking order.
	expect := 0
	for i := 0; i < 50; i++ {
		for j := 0; j < 2 && !r.Full(); j++ {
			r.Push(&Flit{Seq: seq})
			seq++
		}
		got := r.Pop()
		if got.Seq != expect {
			t.Fatalf("iteration %d: popped seq %d, want %d", i, got.Seq, expect)
		}
		expect++
	}
}

func TestFlitRingOverflowPanics(t *testing.T) {
	r := newFlitRing(2)
	r.Push(&Flit{})
	r.Push(&Flit{})
	defer func() {
		if recover() == nil {
			t.Fatal("push to full ring did not panic")
		}
	}()
	r.Push(&Flit{})
}

func TestFlitRingUnderflowPanics(t *testing.T) {
	r := newFlitRing(2)
	defer func() {
		if recover() == nil {
			t.Fatal("pop from empty ring did not panic")
		}
	}()
	r.Pop()
}

func TestPacketQueueFIFO(t *testing.T) {
	var q packetQueue
	if q.Len() != 0 || q.Front() != nil || q.Pop() != nil {
		t.Fatal("empty queue misbehaves")
	}
	pkts := make([]*Packet, 10)
	for i := range pkts {
		pkts[i] = &Packet{ID: int64(i)}
		q.Push(pkts[i])
	}
	for i := range pkts {
		if q.Front() != pkts[i] {
			t.Fatalf("Front() out of order at %d", i)
		}
		if q.Pop() != pkts[i] {
			t.Fatalf("Pop() out of order at %d", i)
		}
	}
}

func TestPacketQueueCompaction(t *testing.T) {
	// Exercise the compaction path: push and pop many packets and check
	// order is preserved throughout.
	var q packetQueue
	next, expect := int64(0), int64(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			q.Push(&Packet{ID: next})
			next++
		}
		for i := 0; i < 5; i++ {
			p := q.Pop()
			if p.ID != expect {
				t.Fatalf("popped %d, want %d", p.ID, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		p := q.Pop()
		if p.ID != expect {
			t.Fatalf("drain popped %d, want %d", p.ID, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d packets, pushed %d", expect, next)
	}
}
