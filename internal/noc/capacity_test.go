package noc

import (
	"math"
	"testing"
)

func TestUniformMatrixRowsSumToOne(t *testing.T) {
	m := UniformMatrix(25)
	for s, row := range m {
		if row[s] != 0 {
			t.Fatalf("self traffic at node %d", s)
		}
		sum := 0.0
		for _, w := range row {
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", s, sum)
		}
	}
}

func TestChannelLoadsSinglePair(t *testing.T) {
	// One source sending all traffic (0,0)->(2,0): the route traverses
	// two east channels, each with load 1.
	cfg := Config{Width: 3, Height: 1, Routing: RoutingXY}
	m := make([][]float64, 3)
	for i := range m {
		m[i] = make([]float64, 3)
	}
	m[0][2] = 1
	loads := ChannelLoads(cfg, m)
	if got := loads[ChannelIndex(cfg, 0, PortEast)]; got != 1 {
		t.Errorf("channel (0,east) load = %g, want 1", got)
	}
	if got := loads[ChannelIndex(cfg, 1, PortEast)]; got != 1 {
		t.Errorf("channel (1,east) load = %g, want 1", got)
	}
	if got := MaxChannelLoad(loads); got != 1 {
		t.Errorf("max load = %g, want 1", got)
	}
	if got := TheoreticalCapacity(cfg, m); got != 1 {
		t.Errorf("capacity = %g, want 1", got)
	}
}

func TestChannelLoadsMatchBruteForceTrace(t *testing.T) {
	// ChannelLoads must agree with an independent accumulation along
	// RouteTrace for a handful of matrices.
	cfg := Config{Width: 4, Height: 3, Routing: RoutingXY}
	m := UniformMatrix(cfg.Nodes())
	got := ChannelLoads(cfg, m)
	want := make([]float64, cfg.Nodes()*NumPorts)
	for s := 0; s < cfg.Nodes(); s++ {
		for d := 0; d < cfg.Nodes(); d++ {
			if s == d {
				continue
			}
			trace := RouteTrace(&cfg, NodeID(s), NodeID(d), false)
			for i := 0; i+1 < len(trace); i++ {
				// Identify the port used between consecutive nodes.
				x0, y0 := cfg.Coord(trace[i])
				x1, y1 := cfg.Coord(trace[i+1])
				var p Port
				switch {
				case x1 == x0+1:
					p = PortEast
				case x1 == x0-1:
					p = PortWest
				case y1 == y0+1:
					p = PortSouth
				default:
					p = PortNorth
				}
				want[ChannelIndex(cfg, trace[i], p)] += m[s][d]
			}
		}
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("channel %d: load %g, want %g", i, got[i], want[i])
		}
	}
}

func TestTheoreticalCapacityUniform5x5(t *testing.T) {
	// For uniform traffic on a k x k mesh under XY routing the most loaded
	// channels are the vertical bisection channels; the classic result for
	// odd k gives capacity close to 4k/(k^2-1) (≈0.833 for k=5, per-node,
	// with self-traffic excluded). Accept a generous band and symmetry.
	cfg := Config{Width: 5, Height: 5, Routing: RoutingXY}
	cap5 := TheoreticalCapacity(cfg, UniformMatrix(25))
	if cap5 < 0.6 || cap5 > 1.0 {
		t.Errorf("5x5 uniform capacity = %g, want in [0.6, 1.0]", cap5)
	}
	// Capacity must shrink as the mesh grows.
	cfg8 := Config{Width: 8, Height: 8, Routing: RoutingXY}
	cap8 := TheoreticalCapacity(cfg8, UniformMatrix(64))
	if cap8 >= cap5 {
		t.Errorf("8x8 capacity %g not below 5x5 capacity %g", cap8, cap5)
	}
	cfg4 := Config{Width: 4, Height: 4, Routing: RoutingXY}
	cap4 := TheoreticalCapacity(cfg4, UniformMatrix(16))
	if cap4 <= cap5 {
		t.Errorf("4x4 capacity %g not above 5x5 capacity %g", cap4, cap5)
	}
}

func TestChannelLoadsO1TURNSplitsTraffic(t *testing.T) {
	cfg := Config{Width: 3, Height: 3, Routing: RoutingO1TURN}
	m := make([][]float64, 9)
	for i := range m {
		m[i] = make([]float64, 9)
	}
	m[0][8] = 1 // (0,0) -> (2,2)
	loads := ChannelLoads(cfg, m)
	// XY half goes east from node 0; YX half goes south from node 0.
	if got := loads[ChannelIndex(cfg, 0, PortEast)]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("east load = %g, want 0.5", got)
	}
	if got := loads[ChannelIndex(cfg, 0, PortSouth)]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("south load = %g, want 0.5", got)
	}
}

func TestTheoreticalCapacityEmptyMatrix(t *testing.T) {
	cfg := Config{Width: 3, Height: 3, Routing: RoutingXY}
	m := make([][]float64, 9)
	for i := range m {
		m[i] = make([]float64, 9)
	}
	if got := TheoreticalCapacity(cfg, m); got != 0 {
		t.Errorf("capacity of empty matrix = %g, want 0", got)
	}
}

func TestChannelLoadsYXDiffersFromXY(t *testing.T) {
	cfgXY := Config{Width: 4, Height: 4, Routing: RoutingXY}
	cfgYX := Config{Width: 4, Height: 4, Routing: RoutingYX}
	m := make([][]float64, 16)
	for i := range m {
		m[i] = make([]float64, 16)
	}
	m[0][15] = 1 // corner to corner
	lXY := ChannelLoads(cfgXY, m)
	lYX := ChannelLoads(cfgYX, m)
	if lXY[ChannelIndex(cfgXY, 0, PortEast)] != 1 {
		t.Error("XY should leave node 0 eastwards")
	}
	if lYX[ChannelIndex(cfgYX, 0, PortSouth)] != 1 {
		t.Error("YX should leave node 0 southwards")
	}
}
