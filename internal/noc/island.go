package noc

import "fmt"

// Island is one rectangular voltage/frequency region of the mesh:
// routers and injection serializers with X0 ≤ x ≤ X1 and Y0 ≤ y ≤ Y1 run
// their pipelines at Speed times the network clock (a static relative
// divider layered under whatever global frequency the DVFS policy
// commands). Later islands win where rectangles overlap; tiles covered
// by no island run at full speed.
type Island struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
	// Speed is the relative clock multiplier in (0, 1].
	Speed float64 `json:"speed"`
}

// Contains reports whether the tile (x, y) lies inside the rectangle.
func (i Island) Contains(x, y int) bool {
	return x >= i.X0 && x <= i.X1 && y >= i.Y0 && y <= i.Y1
}

// ValidateIslands checks every rectangle lies inside cfg's mesh with a
// usable speed.
func ValidateIslands(cfg Config, islands []Island) error {
	for k, isl := range islands {
		if isl.X0 > isl.X1 || isl.Y0 > isl.Y1 {
			return fmt.Errorf("noc: island %d rectangle (%d,%d)-(%d,%d) is empty", k, isl.X0, isl.Y0, isl.X1, isl.Y1)
		}
		if !cfg.InMesh(isl.X0, isl.Y0) || !cfg.InMesh(isl.X1, isl.Y1) {
			return fmt.Errorf("noc: island %d rectangle (%d,%d)-(%d,%d) exceeds the %dx%d mesh",
				k, isl.X0, isl.Y0, isl.X1, isl.Y1, cfg.Width, cfg.Height)
		}
		if !(isl.Speed > 0 && isl.Speed <= 1) {
			return fmt.Errorf("noc: island %d speed %g outside (0, 1]", k, isl.Speed)
		}
	}
	return nil
}

// SetIslands installs per-region clock dividers. The network must be
// quiescent (freshly built or drained): island phase accumulators start
// at zero, and retrofitting them mid-flight would change results.
// Passing an empty slice removes all islands.
func (n *Network) SetIslands(islands []Island) error {
	if err := ValidateIslands(n.cfg, islands); err != nil {
		return err
	}
	if !n.Quiescent() {
		panic("noc: SetIslands requires a quiescent network")
	}
	if len(islands) == 0 {
		n.islandOf = nil
		n.islandAcc = nil
		n.islandRun = nil
		n.islands = nil
		return nil
	}
	n.islands = append([]Island(nil), islands...)
	n.islandOf = make([]int16, len(n.routers))
	for id := range n.islandOf {
		n.islandOf[id] = -1
		x, y := n.cfg.Coord(NodeID(id))
		for k, isl := range islands {
			if isl.Contains(x, y) {
				n.islandOf[id] = int16(k)
			}
		}
	}
	n.islandAcc = make([]float64, len(islands))
	n.islandRun = make([]bool, len(islands))
	return nil
}

// Islands returns a copy of the installed island set.
func (n *Network) Islands() []Island {
	return append([]Island(nil), n.islands...)
}

// advanceIslands ticks every island's fractional clock accumulator by
// its speed and decides whether the island's routers run this cycle. It
// runs unconditionally at the top of Step — before the quiescent fast
// path returns — so the stall phase is identical between the skip-ahead
// and naive engines for any step-worker count (it is a serial point of
// the cycle).
func (n *Network) advanceIslands() {
	for k := range n.islandAcc {
		n.islandAcc[k] += n.islands[k].Speed
		if n.islandAcc[k] >= 1 {
			n.islandAcc[k]--
			n.islandRun[k] = true
		} else {
			n.islandRun[k] = false
		}
	}
}

// nodeStalled reports whether node id sits in an island that skips this
// cycle. Stalled routers and sources keep their state and active-set
// membership; arrivals and credits still land (input latches run at the
// link clock), but no pipeline stage or injection serializer advances —
// and therefore no credits return upstream — which is what produces the
// natural backpressure onto faster neighbours.
func (n *Network) nodeStalled(id int) bool {
	k := n.islandOf[id]
	return k >= 0 && !n.islandRun[k]
}
