package noc

import (
	"fmt"
	"sort"
)

// flitEvent is a flit in flight on a link, to be delivered at Cycle.
type flitEvent struct {
	router *Router
	port   Port
	flit   *Flit
}

// creditEvent is a credit in flight back towards the sender feeding
// router's input (port, vc).
type creditEvent struct {
	router *Router
	port   Port
	vc     int
}

// ejectEvent is a flit leaving the network at a local ejection port.
type ejectEvent struct {
	node NodeID
	flit *Flit
}

// Network is the complete mesh fabric: routers, links, and per-node
// injection sources. It advances strictly one network clock cycle per Step
// call; real-time semantics under DVFS are handled by the caller.
//
// Step is optimized for the common case of a lightly loaded or quiescent
// fabric: it maintains id-ordered work lists of routers and sources that
// currently hold work, and when the whole network is quiescent (nothing
// buffered, staged, or queued) it advances the clock in O(1) — the
// skip-ahead fast path. Both optimizations are exact: an idle router or
// source's step is a guaranteed no-op, and the work lists are kept in node
// id order so every staged event (and therefore every OnArrive callback)
// fires in exactly the order the naive all-routers loop would produce.
// SetSkipAhead(false) restores the naive loop for tests and benchmarks.
type Network struct {
	cfg     Config
	routers []*Router
	sources []*source

	cycle int64

	// Two-phase event staging: events produced during cycle t are applied
	// at the start of cycle t+1, modelling one-cycle link and credit
	// delays.
	stagedFlits    []flitEvent
	pendingFlits   []flitEvent
	stagedCredits  []creditEvent
	pendingCredits []creditEvent
	stagedEjects   []ejectEvent
	pendingEjects  []ejectEvent

	// activeRouters and activeSources are the work lists, kept sorted by
	// node id (see the type comment for why ordering matters).
	activeRouters []*Router
	activeSources []*source

	// fullStep disables the skip-ahead fast path and the work lists,
	// restoring the naive iterate-everything loop.
	fullStep bool

	// flitFree and packetFree are free lists recycling Flit and Packet
	// objects on tail ejection, keeping the steady-state hot path
	// allocation-free. Callers of OnArrive must not retain the *Packet
	// beyond the callback (copy what they need; see trace.Log.AddPacket).
	flitFree   []*Flit
	packetFree []*Packet

	// OnArrive, if non-nil, is invoked when a packet's tail flit is
	// ejected. The cycle argument is the ejection cycle. The packet is
	// recycled when the callback returns: implementations must copy any
	// fields they keep.
	OnArrive func(p *Packet, cycle int64)

	nextPacketID int64

	// Counters for conservation checks and throughput statistics.
	packetsQueued  int64
	packetsArrived int64
	flitsInjected  int64
	flitsEjected   int64
}

// NewNetwork builds a mesh network from cfg. It returns an error if the
// configuration is invalid.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("noc: invalid config: %w", err)
	}
	n := &Network{cfg: cfg}
	nodes := cfg.Nodes()
	n.routers = make([]*Router, nodes)
	n.sources = make([]*source, nodes)
	n.activeRouters = make([]*Router, 0, nodes)
	n.activeSources = make([]*source, 0, nodes)
	for id := 0; id < nodes; id++ {
		n.routers[id] = newRouter(n, NodeID(id))
	}
	for id := 0; id < nodes; id++ {
		r := n.routers[id]
		for p := PortNorth; p <= PortWest; p++ {
			dx, dy := p.delta()
			x, y := cfg.Coord(NodeID(id))
			if cfg.InMesh(x+dx, y+dy) {
				r.neighbor[p] = n.routers[cfg.Node(x+dx, y+dy)]
			}
		}
		n.sources[id] = newSource(NodeID(id), r, &cfg)
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the current network clock cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Router returns the router at node id.
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// SetSkipAhead enables or disables the quiescent fast path and the active
// work lists (both are on by default). With skip-ahead disabled, Step
// iterates every router and source every cycle — the naive loop. Results
// are bit-identical either way; the knob exists so tests can assert that
// and benchmarks can measure the difference.
func (n *Network) SetSkipAhead(on bool) { n.fullStep = !on }

// Quiescent reports whether the network holds no work at all: no flits
// buffered or in flight, no staged credits, and no source with queued or
// partially sent packets. A quiescent Step only advances the clock.
func (n *Network) Quiescent() bool {
	return len(n.stagedFlits) == 0 && len(n.stagedCredits) == 0 &&
		len(n.stagedEjects) == 0 && len(n.activeRouters) == 0 &&
		len(n.activeSources) == 0
}

// activateRouter inserts r into the active work list, keeping it sorted by
// node id. Callers must check r.active first.
func (n *Network) activateRouter(r *Router) {
	r.active = true
	i := sort.Search(len(n.activeRouters), func(i int) bool {
		return n.activeRouters[i].id >= r.id
	})
	n.activeRouters = append(n.activeRouters, nil)
	copy(n.activeRouters[i+1:], n.activeRouters[i:])
	n.activeRouters[i] = r
}

// activateSource inserts s into the active work list, keeping it sorted by
// node id. Callers must check s.active first.
func (n *Network) activateSource(s *source) {
	s.active = true
	i := sort.Search(len(n.activeSources), func(i int) bool {
		return n.activeSources[i].node >= s.node
	})
	n.activeSources = append(n.activeSources, nil)
	copy(n.activeSources[i+1:], n.activeSources[i:])
	n.activeSources[i] = s
}

// getFlit returns a recycled Flit or a fresh one.
func (n *Network) getFlit() *Flit {
	if k := len(n.flitFree); k > 0 {
		f := n.flitFree[k-1]
		n.flitFree = n.flitFree[:k-1]
		return f
	}
	return new(Flit)
}

// putFlit recycles an ejected flit.
func (n *Network) putFlit(f *Flit) {
	f.Packet = nil
	n.flitFree = append(n.flitFree, f)
}

// getPacket returns a recycled Packet or a fresh one.
func (n *Network) getPacket() *Packet {
	if k := len(n.packetFree); k > 0 {
		p := n.packetFree[k-1]
		n.packetFree = n.packetFree[:k-1]
		return p
	}
	return new(Packet)
}

// NewPacket creates a packet from src to dst stamped with the current
// cycle and the caller-supplied real time (ns), and appends it to the
// source queue of src. dimOrder selects XY (0) or YX (1) traversal for
// O1TURN routing; it is ignored for plain XY/YX.
//
// The returned packet is owned by the network and recycled once its tail
// flit is ejected (after OnArrive returns): callers that keep per-packet
// data beyond delivery must copy the fields they need.
func (n *Network) NewPacket(src, dst NodeID, nowNs float64, dimOrder uint8) *Packet {
	if src == dst {
		panic("noc: packet to self")
	}
	n.nextPacketID++
	p := n.getPacket()
	*p = Packet{
		ID:          n.nextPacketID,
		Src:         src,
		Dst:         dst,
		Size:        n.cfg.PacketSize,
		CreateCycle: n.cycle,
		CreateTime:  nowNs,
		DimOrder:    dimOrder,
	}
	s := n.sources[src]
	s.queue.Push(p)
	if !s.active {
		n.activateSource(s)
	}
	n.packetsQueued++
	return p
}

// stageFlit schedules delivery of a flit into router's input port at the
// next cycle.
func (n *Network) stageFlit(router *Router, port Port, f *Flit, _ int64) {
	n.stagedFlits = append(n.stagedFlits, flitEvent{router: router, port: port, flit: f})
	n.flitsInjected += boolToInt64(port == PortLocal)
}

// stageCredit schedules a credit return towards whatever feeds router's
// input (port, vc): the upstream router for a mesh port, the injection
// source for the local port.
func (n *Network) stageCredit(router *Router, port Port, vc int, _ int64) {
	n.stagedCredits = append(n.stagedCredits, creditEvent{router: router, port: port, vc: vc})
}

// stageEject schedules final delivery of an ejected flit to the node's PE.
func (n *Network) stageEject(node NodeID, f *Flit, _ int64) {
	n.stagedEjects = append(n.stagedEjects, ejectEvent{node: node, flit: f})
}

// Step advances the network by one clock cycle: it delivers flits and
// credits staged in the previous cycle, runs every router pipeline with
// staged work, and lets every source with pending packets inject at most
// one flit. When the network is quiescent the whole call is the skip-ahead
// fast path: the clock advances and nothing else runs.
func (n *Network) Step() {
	n.cycle++
	if !n.fullStep && n.Quiescent() {
		return
	}
	cycle := n.cycle

	// Swap staging buffers: everything staged during cycle-1 is delivered
	// now; new events are staged for cycle+1.
	n.pendingFlits, n.stagedFlits = n.stagedFlits, n.pendingFlits[:0]
	n.pendingCredits, n.stagedCredits = n.stagedCredits, n.pendingCredits[:0]
	n.pendingEjects, n.stagedEjects = n.stagedEjects, n.pendingEjects[:0]

	for _, ev := range n.pendingEjects {
		n.flitsEjected++
		if ev.flit.Tail {
			p := ev.flit.Packet
			p.ArriveCycle = cycle
			n.packetsArrived++
			if n.OnArrive != nil {
				n.OnArrive(p, cycle)
			}
			n.packetFree = append(n.packetFree, p)
		}
		n.putFlit(ev.flit)
	}
	for _, ev := range n.pendingFlits {
		ev.router.acceptFlit(ev.port, ev.flit, cycle)
	}
	for _, ev := range n.pendingCredits {
		if ev.port == PortLocal {
			n.sources[ev.router.id].acceptCredit(ev.vc)
			continue
		}
		up := ev.router.neighbor[ev.port]
		if up == nil {
			panic("noc: credit towards a missing neighbour")
		}
		up.acceptCredit(ev.port.Opposite(), ev.vc)
	}

	if n.fullStep {
		for _, r := range n.routers {
			r.step(cycle)
		}
		for _, s := range n.sources {
			s.step(cycle, &n.cfg)
		}
		return
	}

	// Work-list iteration: step only routers and sources that hold work,
	// dropping the ones that went idle. Both lists are in node id order,
	// so the event stream matches the naive loop exactly.
	liveR := n.activeRouters[:0]
	for _, r := range n.activeRouters {
		r.step(cycle)
		if r.hasWork() {
			liveR = append(liveR, r)
		} else {
			r.active = false
		}
	}
	n.activeRouters = liveR

	liveS := n.activeSources[:0]
	for _, s := range n.activeSources {
		s.step(cycle, &n.cfg)
		if s.hasWork() {
			liveS = append(liveS, s)
		} else {
			s.active = false
		}
	}
	n.activeSources = liveS
}

// InFlight returns the number of flits currently inside the network:
// buffered in routers or in flight on links (including flits owed by the
// sources' partially sent packets and queued packets).
func (n *Network) InFlight() int64 {
	total := int64(len(n.stagedFlits)) + int64(len(n.stagedEjects))
	if n.fullStep {
		// The work lists are stale supersets in naive mode; walk everything.
		for _, r := range n.routers {
			total += int64(r.occupancy())
		}
		for _, s := range n.sources {
			total += s.pendingFlits(&n.cfg)
		}
		return total
	}
	for _, r := range n.activeRouters {
		total += int64(r.occupancy())
	}
	for _, s := range n.activeSources {
		total += s.pendingFlits(&n.cfg)
	}
	return total
}

// SourceBacklog returns the total number of packets waiting in all source
// queues (excluding packets currently being serialized). It is the primary
// saturation signal: under sustained overload the backlog grows without
// bound.
func (n *Network) SourceBacklog() int64 {
	var total int64
	for _, s := range n.sources {
		total += int64(s.queue.Len())
	}
	return total
}

// Stats returns cumulative packet and flit counters: packets queued,
// packets arrived, flits injected into routers, flits ejected.
func (n *Network) Stats() (queued, arrived, injected, ejected int64) {
	return n.packetsQueued, n.packetsArrived, n.flitsInjected, n.flitsEjected
}

// Activity returns the aggregate activity of all routers plus the elapsed
// cycle count.
func (n *Network) Activity() NetworkActivity {
	var agg NetworkActivity
	for _, r := range n.routers {
		agg.RouterActivity.Add(r.Activity)
	}
	agg.Cycles = n.cycle
	return agg
}

// RouterActivities returns a snapshot of each router's activity counters,
// indexed by node id.
func (n *Network) RouterActivities() []RouterActivity {
	out := make([]RouterActivity, len(n.routers))
	for i, r := range n.routers {
		out[i] = r.Activity
	}
	return out
}

// CheckInvariants panics if any router's credit or VC state is
// inconsistent. Tests call it liberally; production code does not need to.
func (n *Network) CheckInvariants() {
	for _, r := range n.routers {
		r.checkInvariants()
	}
	for i, r := range n.activeRouters {
		if i > 0 && n.activeRouters[i-1].id >= r.id {
			panic("noc: active router list out of order")
		}
	}
	for i, s := range n.activeSources {
		if i > 0 && n.activeSources[i-1].node >= s.node {
			panic("noc: active source list out of order")
		}
	}
}

// Drain advances the network until all injected traffic has been delivered
// or maxCycles elapse; it reports whether the network fully drained.
// Callers must stop generating new packets first.
func (n *Network) Drain(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if n.InFlight() == 0 {
			return true
		}
		n.Step()
	}
	return n.InFlight() == 0
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
