package noc

import (
	"fmt"
	"math/bits"
	"sync"
)

// linkInfo is one packed row of the flat link table (see Network.links):
// node/port name the downstream router and its input port behind this
// output port (node < 0 where the mesh ends), and target/upNode name the
// credit destination for slots this *input* port frees (the linkEvent
// credTarget encoding; upNode < 0 where there is no upstream router).
type linkInfo struct {
	node   int32
	target int32
	upNode int32
	port   int8
}

// Network is the complete mesh fabric: routers, links, and per-node
// injection sources. It advances strictly one network clock cycle per Step
// call; real-time semantics under DVFS are handled by the caller.
//
// The engine steps the mesh stage-major: for each pipeline stage (route
// computation, VC allocation, switch allocation + link traversal,
// ejection) it sweeps the active-router bitmask once over flat
// struct-of-arrays state (vc/bufs/outState) owned by the network, and link
// traversal resolves targets through flat link tables instead of chasing
// per-router neighbour pointers. The mesh is sharded into contiguous id
// bands (SetStepWorkers) stepped by a persistent worker group under a
// two-phase deliver->compute barrier per cycle; routers interact only
// through events staged for the next cycle, so any band count produces
// results bit-identical to serial (golden-tested). A quiescent network
// (nothing buffered, staged, or queued) advances the clock in O(bands) —
// the skip-ahead fast path. SetSkipAhead(false) restores the naive
// router-major iterate-everything loop, kept as the reference
// implementation that equivalence tests compare against.
type Network struct {
	cfg Config
	// routers holds the mesh's routers contiguously (never reallocated
	// after construction, so interior pointers — neighbor links, source
	// backrefs — stay valid). Contiguity keeps the per-router allocator
	// state of adjacent routers on neighbouring cache lines for the
	// band sweeps.
	routers []Router
	sources []*source

	cycle int64

	// Flat per-VC state of the whole mesh, router-major. vc[g] and
	// outState[g] are the input/output records of global flat VC
	// g = (node*NumPorts+port)*VCs+vc; bufs holds the per-VC flit rings
	// at bufs[g*BufDepth : (g+1)*BufDepth]. Routers hold subslice views.
	vc       []vcState
	bufs     []Flit
	outState []outVCState

	// links is the flat link table, indexed by node*NumPorts+port. One
	// packed 16-byte record per port keeps the downstream half (node/port,
	// read when the port sends) and the upstream half (upNode/target, read
	// when the port frees a slot) on a single cache line, so the SA
	// traversal path pays one load instead of four scattered ones.
	links []linkInfo

	// faults lists the directed channels masked out of the link table, and
	// routeTable (nodes×nodes next-hop ports, non-nil only with faults)
	// replaces algorithmic route computation on faulted meshes. See
	// fault.go.
	faults     []Link
	routeTable []int8

	// Per-region V/F island state (see island.go): islandOf maps node id
	// to island index (-1 for none); islandAcc/islandRun are the
	// per-island fractional clock accumulators and this-cycle run flags.
	islands   []Island
	islandOf  []int16
	islandAcc []float64
	islandRun []bool

	// bands partition the node id space; band workers 1..W-1 run on
	// persistent goroutines fed by phaseCh, with phaseWG as the per-phase
	// barrier and workerWG tracking goroutine lifetime for Close.
	bands       []*band
	stepWorkers int
	phaseCh     []chan workerPhase
	phaseWG     sync.WaitGroup
	workerWG    sync.WaitGroup

	// fullStep disables the skip-ahead fast path, the active sets, and
	// the stage-major order, restoring the naive router-major loop
	// (always serial, regardless of SetStepWorkers).
	fullStep bool

	// packetFree recycles Packet objects on tail ejection, keeping the
	// steady-state hot path allocation-free. Flits are plain values and
	// need no pooling.
	packetFree []*Packet

	// OnArrive, if non-nil, is invoked when a packet's tail flit is
	// ejected. The cycle argument is the ejection cycle. The packet is
	// recycled when the callback returns: implementations must copy any
	// fields they keep.
	OnArrive func(p *Packet, cycle int64)

	nextPacketID int64

	// Counters for conservation checks and throughput statistics
	// (flit injections are counted per band; see band.flitsInjected).
	packetsQueued  int64
	packetsArrived int64
	flitsEjected   int64
}

// NewNetwork builds a mesh network from cfg. It returns an error if the
// configuration is invalid. The network starts with one step worker; use
// SetStepWorkers to shard the mesh, and Close to stop the worker group
// when done (a no-op for the serial default).
func NewNetwork(cfg Config) (*Network, error) {
	return NewNetworkWithFaults(cfg, nil)
}

// NewNetworkWithFaults builds a mesh with the given directed channels
// masked out of the link table and a fault-aware minimal route table
// installed in place of algorithmic routing (see fault.go). It returns
// an error if any fault is malformed or the surviving channels leave any
// node pair disconnected. An empty fault list is exactly NewNetwork.
func NewNetworkWithFaults(cfg Config, faults []Link) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("noc: invalid config: %w", err)
	}
	if err := validateFaults(cfg, faults); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg}
	nodes := cfg.Nodes()
	total := NumPorts * cfg.VCs
	depth := cfg.BufDepth

	n.vc = make([]vcState, nodes*total)
	n.bufs = make([]Flit, nodes*total*depth)
	n.outState = make([]outVCState, nodes*total)
	for i := range n.vc {
		n.vc[i].outVC = -1
	}
	for i := range n.outState {
		n.outState[i] = outVCState{owner: -1, credits: int32(depth)}
	}

	n.routers = make([]Router, nodes)
	n.sources = make([]*source, nodes)
	for id := 0; id < nodes; id++ {
		r := &n.routers[id]
		*r = Router{
			id:       NodeID(id),
			net:      n,
			vcs:      cfg.VCs,
			depth:    depth,
			vc:       n.vc[id*total : (id+1)*total],
			bufs:     n.bufs[id*total*depth : (id+1)*total*depth],
			outState: n.outState[id*total : (id+1)*total],
			linkBase: id * NumPorts,
		}
		r.x, r.y = cfg.Coord(NodeID(id))
		vcBits := ^uint64(0)
		if cfg.VCs < 64 {
			vcBits = uint64(1)<<uint(cfg.VCs) - 1
		}
		for p := range r.creditMask {
			r.creditMask[p] = vcBits
		}
	}

	n.links = make([]linkInfo, nodes*NumPorts)
	for id := 0; id < nodes; id++ {
		r := &n.routers[id]
		x, y := cfg.Coord(NodeID(id))
		li := id * NumPorts
		n.links[li+int(PortLocal)] = linkInfo{node: -1, target: -int32(id) - 1, upNode: int32(id)}
		for p := PortNorth; p <= PortWest; p++ {
			dx, dy := p.delta()
			if !cfg.InMesh(x+dx, y+dy) {
				n.links[li+int(p)] = linkInfo{node: -1, upNode: -1}
				continue
			}
			nb := &n.routers[cfg.Node(x+dx, y+dy)]
			r.neighbor[p] = nb
			// A slot freed in r's input port p returns a credit to nb's
			// output port facing r.
			n.links[li+int(p)] = linkInfo{
				node:   int32(nb.id),
				port:   int8(p.Opposite()),
				target: int32(int(nb.id)*NumPorts + int(p.Opposite())),
				upNode: int32(nb.id),
			}
		}
		n.sources[id] = newSource(NodeID(id), r, &cfg)
	}

	if len(faults) > 0 {
		n.faults = append([]Link(nil), faults...)
		n.maskFaults(n.faults)
		if err := n.buildRouteTable(); err != nil {
			return nil, err
		}
	}

	n.buildBands(1)
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Cycle returns the current network clock cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Router returns the router at node id.
func (n *Network) Router(id NodeID) *Router { return &n.routers[id] }

// SetSkipAhead enables or disables the quiescent fast path, the active
// sets, and the stage-major order (all on by default). With skip-ahead
// disabled, Step iterates every router and source every cycle in
// router-major order — the naive reference loop. Results are bit-identical
// either way; the knob exists so tests can assert that and benchmarks can
// measure the difference.
func (n *Network) SetSkipAhead(on bool) { n.fullStep = !on }

// SetStepWorkers shards the mesh into w contiguous id bands (clamped to
// [1, nodes]) stepped in parallel by a persistent worker group. Because
// routers interact only through events staged for the next cycle, results
// are bit-identical for every w. The network must be quiescent (freshly
// built, or fully drained); changing the partition with work in flight
// would need event rebucketing, which no caller requires.
func (n *Network) SetStepWorkers(w int) {
	if w < 1 {
		w = 1
	}
	if w > len(n.routers) {
		w = len(n.routers)
	}
	if w == n.stepWorkers {
		return
	}
	if !n.Quiescent() {
		panic("noc: SetStepWorkers requires a quiescent network")
	}
	n.stopWorkers()
	n.buildBands(w)
	n.startWorkers()
}

// StepWorkers returns the current step-worker count.
func (n *Network) StepWorkers() int { return n.stepWorkers }

// Close stops the band worker goroutines. It is idempotent and a no-op
// for the serial default; the network must not be stepped after Close.
func (n *Network) Close() { n.stopWorkers() }

// Quiescent reports whether the network holds no work at all: no flits
// buffered or in flight, no staged credits, and no source with queued or
// partially sent packets. A quiescent Step only advances the clock.
func (n *Network) Quiescent() bool {
	for _, b := range n.bands {
		if b.nActiveRouters != 0 || b.nActiveSources != 0 ||
			len(b.stagedLinks) != 0 || len(b.stagedEjects) != 0 {
			return false
		}
	}
	return true
}

// activateRouter sets r's bit in its band's active mask. Callers must
// check r.active first. During the delivery phase only the band worker
// that owns r calls this, so the mask update needs no synchronization.
func (n *Network) activateRouter(r *Router) {
	r.active = true
	b := r.band
	k := int(r.id) - b.lo
	b.routerWords[k>>6] |= 1 << uint(k&63)
	b.nActiveRouters++
}

// activateSource sets s's bit in its band's active mask. Callers must
// check s.active first.
func (n *Network) activateSource(s *source) {
	s.active = true
	b := s.band
	k := int(s.node) - b.lo
	b.sourceWords[k>>6] |= 1 << uint(k&63)
	b.nActiveSources++
}

// getPacket returns a recycled Packet or a fresh one.
func (n *Network) getPacket() *Packet {
	if k := len(n.packetFree); k > 0 {
		p := n.packetFree[k-1]
		n.packetFree = n.packetFree[:k-1]
		return p
	}
	return new(Packet)
}

// NewPacket creates a packet from src to dst stamped with the current
// cycle and the caller-supplied real time (ns), and appends it to the
// source queue of src. dimOrder selects XY (0) or YX (1) traversal for
// O1TURN routing; it is ignored for plain XY/YX.
//
// The returned packet is owned by the network and recycled once its tail
// flit is ejected (after OnArrive returns): callers that keep per-packet
// data beyond delivery must copy the fields they need.
func (n *Network) NewPacket(src, dst NodeID, nowNs float64, dimOrder uint8) *Packet {
	if src == dst {
		panic("noc: packet to self")
	}
	n.nextPacketID++
	p := n.getPacket()
	*p = Packet{
		ID:          n.nextPacketID,
		Src:         src,
		Dst:         dst,
		Size:        n.cfg.PacketSize,
		CreateCycle: n.cycle,
		CreateTime:  nowNs,
		DimOrder:    dimOrder,
	}
	s := n.sources[src]
	s.queue.Push(p)
	if !s.active {
		n.activateSource(s)
	}
	n.packetsQueued++
	return p
}

// Step advances the network by one clock cycle: it completes last cycle's
// ejections, delivers staged flits and credits, runs the router pipelines
// stage-major over the active sets, and lets every source with pending
// packets inject at most one flit. With step workers configured, delivery
// and compute each fan out across the bands under a barrier. When the
// network is quiescent the whole call is the skip-ahead fast path: the
// clock advances and nothing else runs.
func (n *Network) Step() {
	n.cycle++
	if n.islandRun != nil {
		n.advanceIslands()
	}
	if !n.fullStep && n.Quiescent() {
		return
	}
	cycle := n.cycle

	// Swap staging buffers: everything staged during cycle-1 is delivered
	// now; new events are staged for cycle+1.
	for _, b := range n.bands {
		b.pendingLinks, b.stagedLinks = b.stagedLinks, b.pendingLinks[:0]
		b.pendingEjects, b.stagedEjects = b.stagedEjects, b.pendingEjects[:0]
	}

	// Ejection completes serially, in band order: bands hold contiguous
	// ascending id ranges and each band staged its ejects in ascending
	// router id order, so the concatenation reproduces exactly the
	// OnArrive order of the naive loop. Keeping this phase (and with it
	// the packet free list and the caller's OnArrive accumulators) on one
	// goroutine is what lets the rest of the cycle parallelize. The
	// piggybacked upstream credits are applied here too — still before the
	// parallel phases start, and commutative with the credits those will
	// deliver (distinct (output port, vc) slots or plain increments).
	for _, b := range n.bands {
		for i := range b.pendingEjects {
			ev := &b.pendingEjects[i]
			n.flitsEjected++
			if ev.credTarget < 0 {
				n.sources[-ev.credTarget-1].acceptCredit(int(ev.credVC))
			} else {
				n.returnCredit(ev.credTarget, ev.credVC)
			}
			if p := ev.packet; p != nil {
				p.ArriveCycle = cycle
				n.packetsArrived++
				if n.OnArrive != nil {
					n.OnArrive(p, cycle)
				}
				n.packetFree = append(n.packetFree, p)
			}
		}
	}

	if n.fullStep {
		// Naive reference loop: serial router-major over everything.
		// Island gating mirrors computeBand exactly: stalled nodes still
		// receive deliveries but run no pipeline stage or injection.
		for _, b := range n.bands {
			n.deliverBand(b)
		}
		gated := n.islandOf != nil
		for id := range n.routers {
			if gated && n.nodeStalled(id) {
				continue
			}
			n.routers[id].step(cycle)
		}
		for id, s := range n.sources {
			if gated && n.nodeStalled(id) {
				continue
			}
			s.step(cycle, &n.cfg)
		}
		return
	}

	if n.stepWorkers == 1 {
		b := n.bands[0]
		n.deliverBand(b)
		n.computeBand(b, cycle)
		return
	}
	n.runPhase(phaseDeliver)
	n.runPhase(phaseCompute)
}

// InFlight returns the number of flits currently inside the network:
// buffered in routers or in flight on links (including flits owed by the
// sources' partially sent packets and queued packets).
func (n *Network) InFlight() int64 {
	var total int64
	for _, b := range n.bands {
		total += int64(len(b.stagedLinks)) + int64(len(b.stagedEjects))
	}
	if n.fullStep {
		// The active sets are stale supersets in naive mode; walk everything.
		for id := range n.routers {
			total += int64(n.routers[id].occupancy())
		}
		for _, s := range n.sources {
			total += s.pendingFlits(&n.cfg)
		}
		return total
	}
	for _, b := range n.bands {
		for w, word := range b.routerWords {
			base := b.lo + w*64
			for ; word != 0; word &= word - 1 {
				total += int64(n.routers[base+bits.TrailingZeros64(word)].occupancy())
			}
		}
		for w, word := range b.sourceWords {
			base := b.lo + w*64
			for ; word != 0; word &= word - 1 {
				total += n.sources[base+bits.TrailingZeros64(word)].pendingFlits(&n.cfg)
			}
		}
	}
	return total
}

// SourceBacklog returns the total number of packets waiting in all source
// queues (excluding packets currently being serialized). It is the primary
// saturation signal: under sustained overload the backlog grows without
// bound.
func (n *Network) SourceBacklog() int64 {
	var total int64
	for _, s := range n.sources {
		total += int64(s.queue.Len())
	}
	return total
}

// Stats returns cumulative packet and flit counters: packets queued,
// packets arrived, flits injected into routers, flits ejected.
func (n *Network) Stats() (queued, arrived, injected, ejected int64) {
	for _, b := range n.bands {
		injected += b.flitsInjected
	}
	return n.packetsQueued, n.packetsArrived, injected, n.flitsEjected
}

// Activity returns the aggregate activity of all routers plus the elapsed
// cycle count.
func (n *Network) Activity() NetworkActivity {
	var agg NetworkActivity
	for id := range n.routers {
		agg.RouterActivity.Add(n.routers[id].Activity)
	}
	agg.Cycles = n.cycle
	return agg
}

// RouterActivities returns a snapshot of each router's activity counters,
// indexed by node id.
func (n *Network) RouterActivities() []RouterActivity {
	out := make([]RouterActivity, len(n.routers))
	for i := range n.routers {
		out[i] = n.routers[i].Activity
	}
	return out
}

// CheckInvariants panics if any router's credit or VC state, or the band
// active-set bookkeeping, is inconsistent. Tests call it liberally;
// production code does not need to.
func (n *Network) CheckInvariants() {
	for id := range n.routers {
		n.routers[id].checkInvariants()
	}
	for _, b := range n.bands {
		nr, ns := 0, 0
		for w, word := range b.routerWords {
			base := b.lo + w*64
			for ; word != 0; word &= word - 1 {
				id := base + bits.TrailingZeros64(word)
				if id >= b.hi {
					panic("noc: active router bit outside band range")
				}
				if !n.routers[id].active {
					panic("noc: active router bit set for inactive router")
				}
				nr++
			}
		}
		for w, word := range b.sourceWords {
			base := b.lo + w*64
			for ; word != 0; word &= word - 1 {
				id := base + bits.TrailingZeros64(word)
				if id >= b.hi {
					panic("noc: active source bit outside band range")
				}
				if !n.sources[id].active {
					panic("noc: active source bit set for inactive source")
				}
				ns++
			}
		}
		if nr != b.nActiveRouters || ns != b.nActiveSources {
			panic("noc: band active counts out of sync")
		}
		for id := b.lo; id < b.hi; id++ {
			k := id - b.lo
			bit := uint64(1) << uint(k&63)
			r := n.routers[id]
			if (b.rcWords[k>>6]&bit != 0) != (r.nRouting > 0) ||
				(b.vaWords[k>>6]&bit != 0) != (r.nWaitVC > 0) ||
				(b.saWords[k>>6]&bit != 0) != (r.nActive > 0) {
				panic("noc: band per-stage words out of sync with stage counters")
			}
		}
	}
	for id := range n.routers {
		r := &n.routers[id]
		if r.active {
			b := r.band
			k := int(r.id) - b.lo
			if b.routerWords[k>>6]&(1<<uint(k&63)) == 0 {
				panic("noc: active router missing from band mask")
			}
		}
	}
}

// Drain advances the network until all injected traffic has been delivered
// or maxCycles elapse; it reports whether the network fully drained.
// Callers must stop generating new packets first.
func (n *Network) Drain(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if n.InFlight() == 0 {
			return true
		}
		n.Step()
	}
	return n.InFlight() == 0
}
