package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// runUniform drives a network with Bernoulli uniform traffic at the given
// flit rate for the given number of cycles, then stops injecting and
// drains. It returns the network for inspection.
func runUniform(t *testing.T, cfg Config, rate float64, cycles int64, seed int64) *Network {
	t.Helper()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pktProb := rate / float64(cfg.PacketSize)
	for c := int64(0); c < cycles; c++ {
		for s := 0; s < cfg.Nodes(); s++ {
			if rng.Float64() < pktProb {
				d := s
				for d == s {
					d = rng.Intn(cfg.Nodes())
				}
				n.NewPacket(NodeID(s), NodeID(d), 0, uint8(rng.Intn(2)))
			}
		}
		n.Step()
		if c%64 == 0 {
			n.CheckInvariants()
		}
	}
	return n
}

func TestSinglePacketZeroLoadLatency(t *testing.T) {
	// At zero load the head flit takes 4 cycles per router (RC, VA, SA,
	// link) plus 1 cycle from the source and 1 into the ejector; the tail
	// follows PacketSize-1 cycles behind. Verify the closed form across
	// several pairs and packet sizes.
	for _, size := range []int{1, 4, 20} {
		cfg := DefaultConfig()
		cfg.PacketSize = size
		pairs := []struct{ src, dst NodeID }{
			{0, 1}, {0, 24}, {24, 0}, {12, 13}, {4, 20}, {7, 17},
		}
		for _, pair := range pairs {
			n, err := NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var got *Packet
			n.OnArrive = func(p *Packet, cycle int64) { got = p }
			p := n.NewPacket(pair.src, pair.dst, 0, 0)
			for i := 0; i < 500 && got == nil; i++ {
				n.Step()
			}
			if got == nil {
				t.Fatalf("size=%d %d->%d: packet lost", size, pair.src, pair.dst)
			}
			hops := cfg.Distance(pair.src, pair.dst)
			want := int64(4*(hops+1) + 2 + (size - 1))
			latency := p.ArriveCycle - p.CreateCycle
			if latency != want {
				t.Errorf("size=%d %d->%d: latency %d cycles, want %d",
					size, pair.src, pair.dst, latency, want)
			}
			if p.Hops != hops {
				t.Errorf("size=%d %d->%d: hops=%d, want %d", size, pair.src, pair.dst, p.Hops, hops)
			}
		}
	}
}

func TestPacketConservation(t *testing.T) {
	// Everything injected is eventually delivered, exactly once.
	cfg := DefaultConfig()
	n := runUniform(t, cfg, 0.2, 2000, 1)
	if !n.Drain(20000) {
		t.Fatal("network failed to drain")
	}
	queued, arrived, injected, ejected := n.Stats()
	if queued != arrived {
		t.Errorf("queued %d packets but %d arrived", queued, arrived)
	}
	if injected != ejected {
		t.Errorf("injected %d flits but %d ejected", injected, ejected)
	}
	if wantFlits := queued * int64(cfg.PacketSize); ejected != wantFlits {
		t.Errorf("ejected %d flits, want %d", ejected, wantFlits)
	}
	if n.InFlight() != 0 {
		t.Errorf("%d flits still in flight after drain", n.InFlight())
	}
}

func TestPacketConservationQuick(t *testing.T) {
	// Property: conservation holds for random small configurations.
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(wRaw, hRaw, vcRaw, bufRaw, sizeRaw uint8, seed int64) bool {
		cfg := Config{
			Width:      int(wRaw%3) + 2, // 2..4
			Height:     int(hRaw%3) + 2,
			VCs:        int(vcRaw%4) + 1,  // 1..4
			BufDepth:   int(bufRaw%4) + 1, // 1..4
			PacketSize: int(sizeRaw%8) + 1,
			Routing:    RoutingXY,
		}
		n, err := NewNetwork(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for c := 0; c < 300; c++ {
			for s := 0; s < cfg.Nodes(); s++ {
				if rng.Float64() < 0.05/float64(cfg.PacketSize) {
					d := s
					for d == s {
						d = rng.Intn(cfg.Nodes())
					}
					n.NewPacket(NodeID(s), NodeID(d), 0, 0)
				}
			}
			n.Step()
		}
		if !n.Drain(50000) {
			return false
		}
		queued, arrived, injected, ejected := n.Stats()
		return queued == arrived && injected == ejected
	}
	cfgQ := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Error(err)
	}
}

func TestArrivalOrderWithinSourceDestPair(t *testing.T) {
	// Deterministic routing plus per-VC FIFO order means two packets from
	// the same source to the same destination on the same VC cannot be
	// reordered; with multiple VCs reordering between VCs is possible, so
	// restrict to 1 VC where ordering must be strict.
	cfg := DefaultConfig()
	cfg.VCs = 1
	cfg.PacketSize = 4
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []int64
	n.OnArrive = func(p *Packet, cycle int64) {
		if p.Src == 0 && p.Dst == 24 {
			arrivals = append(arrivals, p.ID)
		}
	}
	var want []int64
	for i := 0; i < 10; i++ {
		p := n.NewPacket(0, 24, 0, 0)
		want = append(want, p.ID)
	}
	for i := 0; i < 5000 && len(arrivals) < len(want); i++ {
		n.Step()
	}
	if len(arrivals) != len(want) {
		t.Fatalf("only %d/%d packets arrived", len(arrivals), len(want))
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival order %v, want %v", arrivals, want)
		}
	}
}

func TestLowLoadStable(t *testing.T) {
	cfg := DefaultConfig()
	n := runUniform(t, cfg, 0.1, 5000, 2)
	if backlog := n.SourceBacklog(); backlog > 25 {
		t.Errorf("backlog %d at 0.1 load: network should be stable", backlog)
	}
}

func TestOverloadSaturates(t *testing.T) {
	// Far above capacity the source backlog must grow roughly linearly.
	cfg := DefaultConfig()
	n := runUniform(t, cfg, 0.9, 5000, 3)
	if backlog := n.SourceBacklog(); backlog < 100 {
		t.Errorf("backlog %d at 0.9 load: expected saturation", backlog)
	}
}

func TestThroughputTracksOfferedLoadBelowSaturation(t *testing.T) {
	cfg := DefaultConfig()
	cycles := int64(20000)
	for _, rate := range []float64{0.05, 0.15, 0.3} {
		n := runUniform(t, cfg, rate, cycles, 4)
		_, _, _, ejected := n.Stats()
		accepted := float64(ejected) / float64(cycles) / float64(cfg.Nodes())
		if accepted < rate*0.9 || accepted > rate*1.1 {
			t.Errorf("rate %.2f: accepted %.3f flits/node/cycle, want within 10%%", rate, accepted)
		}
	}
}

func TestHopsMatchManhattanDistance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketSize = 2
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	n.OnArrive = func(p *Packet, cycle int64) {
		if p.Hops != cfg.Distance(p.Src, p.Dst) {
			bad++
		}
	}
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 3000; c++ {
		if c < 2000 && rng.Float64() < 0.3 {
			s := rng.Intn(25)
			d := s
			for d == s {
				d = rng.Intn(25)
			}
			n.NewPacket(NodeID(s), NodeID(d), 0, 0)
		}
		n.Step()
	}
	if bad != 0 {
		t.Errorf("%d packets took non-minimal routes", bad)
	}
}

func TestLatencyIncludesSourceQueueTime(t *testing.T) {
	// Queue two packets back to back on a 1-VC network; the second must
	// report a latency that includes waiting behind the first.
	cfg := DefaultConfig()
	cfg.VCs = 1
	var latencies []int64
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.OnArrive = func(p *Packet, cycle int64) {
		latencies = append(latencies, p.ArriveCycle-p.CreateCycle)
	}
	n.NewPacket(0, 4, 0, 0)
	n.NewPacket(0, 4, 0, 0)
	for i := 0; i < 1000 && len(latencies) < 2; i++ {
		n.Step()
	}
	if len(latencies) != 2 {
		t.Fatal("packets lost")
	}
	if latencies[1] <= latencies[0] {
		t.Errorf("second packet latency %d not above first %d", latencies[1], latencies[0])
	}
}

func TestNewPacketToSelfPanics(t *testing.T) {
	n, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewPacket(0,0) did not panic")
		}
	}()
	n.NewPacket(0, 0, 0, 0)
}

func TestNewNetworkRejectsInvalidConfig(t *testing.T) {
	if _, err := NewNetwork(Config{}); err == nil {
		t.Fatal("NewNetwork accepted zero config")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, int64, int64) {
		cfg := DefaultConfig()
		n := runUniform(t, cfg, 0.25, 3000, 42)
		return n.Stats()
	}
	q1, a1, i1, e1 := run()
	q2, a2, i2, e2 := run()
	if q1 != q2 || a1 != a2 || i1 != i2 || e1 != e2 {
		t.Errorf("two identical runs diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			q1, a1, i1, e1, q2, a2, i2, e2)
	}
}

func TestActivityCountersConsistent(t *testing.T) {
	cfg := DefaultConfig()
	n := runUniform(t, cfg, 0.2, 3000, 5)
	if !n.Drain(20000) {
		t.Fatal("drain failed")
	}
	act := n.Activity()
	// Every flit written into a buffer is eventually read out of it.
	if act.BufWrites != act.BufReads {
		t.Errorf("buffer writes %d != reads %d after drain", act.BufWrites, act.BufReads)
	}
	// Every buffer read is a crossbar traversal.
	if act.BufReads != act.XbarTraversals {
		t.Errorf("reads %d != crossbar traversals %d", act.BufReads, act.XbarTraversals)
	}
	// Flits leave the network exactly as often as they enter it.
	if act.InjectFlits != act.EjectFlits {
		t.Errorf("injected %d != ejected %d", act.InjectFlits, act.EjectFlits)
	}
	// Each flit is written once per router it traverses: inject writes plus
	// one write per link traversal.
	if act.BufWrites != act.InjectFlits+act.LinkFlits {
		t.Errorf("writes %d != inject %d + link %d", act.BufWrites, act.InjectFlits, act.LinkFlits)
	}
	// SA grants equal crossbar traversals in this router (one grant moves
	// one flit).
	if act.SAAllocs != act.XbarTraversals {
		t.Errorf("SA grants %d != traversals %d", act.SAAllocs, act.XbarTraversals)
	}
	// One VC allocation per packet per traversed router.
	queued, _, _, _ := n.Stats()
	if act.VCAllocs < queued {
		t.Errorf("VC allocations %d below packet count %d", act.VCAllocs, queued)
	}
}

func TestRouterActivitySubAdd(t *testing.T) {
	a := RouterActivity{BufWrites: 10, BufReads: 8, XbarTraversals: 8, VCAllocs: 2, SAAllocs: 8, LinkFlits: 5, EjectFlits: 3, InjectFlits: 4}
	b := RouterActivity{BufWrites: 4, BufReads: 3, XbarTraversals: 3, VCAllocs: 1, SAAllocs: 3, LinkFlits: 2, EjectFlits: 1, InjectFlits: 2}
	d := a.Sub(b)
	d.Add(b)
	if d != a {
		t.Errorf("Sub then Add != identity: %+v vs %+v", d, a)
	}
}

func TestSingleVCNetworkStillDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VCs = 1
	cfg.BufDepth = 1
	cfg.PacketSize = 3
	n := runUniform(t, cfg, 0.05, 2000, 9)
	if !n.Drain(50000) {
		t.Fatal("1-VC/1-buffer network failed to drain")
	}
	queued, arrived, _, _ := n.Stats()
	if queued == 0 {
		t.Fatal("no packets generated")
	}
	if queued != arrived {
		t.Errorf("queued %d != arrived %d", queued, arrived)
	}
}

func TestYXRoutingDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = RoutingYX
	n := runUniform(t, cfg, 0.15, 2000, 11)
	if !n.Drain(20000) {
		t.Fatal("YX network failed to drain")
	}
	queued, arrived, _, _ := n.Stats()
	if queued != arrived {
		t.Errorf("queued %d != arrived %d", queued, arrived)
	}
}

func TestO1TURNRoutingDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = RoutingO1TURN
	n := runUniform(t, cfg, 0.15, 2000, 13)
	if !n.Drain(20000) {
		t.Fatal("O1TURN network failed to drain")
	}
	queued, arrived, _, _ := n.Stats()
	if queued != arrived {
		t.Errorf("queued %d != arrived %d", queued, arrived)
	}
}

func TestRectangularMeshes(t *testing.T) {
	for _, dims := range [][2]int{{2, 8}, {8, 2}, {1, 9}, {3, 5}} {
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = dims[0], dims[1]
		cfg.PacketSize = 5
		n := runUniform(t, cfg, 0.05, 1500, 17)
		if !n.Drain(50000) {
			t.Fatalf("%dx%d mesh failed to drain", dims[0], dims[1])
		}
		queued, arrived, _, _ := n.Stats()
		if queued != arrived {
			t.Errorf("%dx%d: queued %d != arrived %d", dims[0], dims[1], queued, arrived)
		}
	}
}
