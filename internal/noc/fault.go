package noc

import (
	"fmt"
	"strconv"
	"strings"
)

// Link names one directed mesh channel by its endpoint node ids. Faults
// are directed: masking a→b removes only that channel, leaving b→a up
// (mask both directions for a fully dead wire).
type Link struct {
	From NodeID `json:"from"`
	To   NodeID `json:"to"`
}

// String renders the link in the "from>to" wire form.
func (l Link) String() string { return fmt.Sprintf("%d>%d", l.From, l.To) }

// ParseLink parses the "from>to" wire form of a directed link.
func ParseLink(s string) (Link, error) {
	a, b, ok := strings.Cut(s, ">")
	if !ok {
		return Link{}, fmt.Errorf("noc: link %q is not of the form \"from>to\"", s)
	}
	from, err := strconv.Atoi(strings.TrimSpace(a))
	if err != nil {
		return Link{}, fmt.Errorf("noc: bad link source in %q: %w", s, err)
	}
	to, err := strconv.Atoi(strings.TrimSpace(b))
	if err != nil {
		return Link{}, fmt.Errorf("noc: bad link destination in %q: %w", s, err)
	}
	return Link{From: NodeID(from), To: NodeID(to)}, nil
}

// maxFaultyNodes bounds meshes that carry a fault-aware routing table:
// the table is nodes² entries, so very large meshes would pay hundreds
// of megabytes for it.
const maxFaultyNodes = 4096

// ValidateFaults checks every fault names an existing mesh channel, no
// fault is duplicated, and the routing algorithm supports table routing.
// It is the eager structural check; whether the surviving channels keep
// the mesh connected is only known once the route table is built
// (NewNetworkWithFaults reports that).
func ValidateFaults(cfg Config, faults []Link) error {
	return validateFaults(cfg, faults)
}

// validateFaults checks each fault names an existing mesh channel and
// that the routing algorithm supports table routing.
func validateFaults(cfg Config, faults []Link) error {
	if len(faults) == 0 {
		return nil
	}
	if cfg.Routing == RoutingO1TURN {
		return fmt.Errorf("noc: o1turn routing cannot respect faulty links (per-packet dimension order defeats the route table)")
	}
	if cfg.Nodes() > maxFaultyNodes {
		return fmt.Errorf("noc: faulty meshes are capped at %d nodes, got %d", maxFaultyNodes, cfg.Nodes())
	}
	seen := make(map[Link]bool, len(faults))
	for _, f := range faults {
		if int(f.From) < 0 || int(f.From) >= cfg.Nodes() || int(f.To) < 0 || int(f.To) >= cfg.Nodes() {
			return fmt.Errorf("noc: faulty link %s references a node outside the %dx%d mesh", f, cfg.Width, cfg.Height)
		}
		if cfg.Distance(f.From, f.To) != 1 {
			return fmt.Errorf("noc: faulty link %s does not name adjacent nodes", f)
		}
		if seen[f] {
			return fmt.Errorf("noc: duplicate faulty link %s", f)
		}
		seen[f] = true
	}
	return nil
}

// portTowards returns the output port of from facing the adjacent node
// to. Callers guarantee adjacency.
func portTowards(cfg *Config, from, to NodeID) Port {
	fx, fy := cfg.Coord(from)
	tx, ty := cfg.Coord(to)
	switch {
	case tx == fx+1:
		return PortEast
	case tx == fx-1:
		return PortWest
	case ty == fy+1:
		return PortSouth
	default:
		return PortNorth
	}
}

// maskFaults removes the faulted channels from the link table: the
// sender's output half is cleared (node = -1, like a mesh edge) and the
// receiver's facing input half forgets its upstream feeder, so any flit
// or credit that would cross the dead wire panics instead of silently
// traversing it. The sender's neighbour pointer for that direction is
// cleared too.
func (n *Network) maskFaults(faults []Link) {
	for _, f := range faults {
		p := portTowards(&n.cfg, f.From, f.To)
		out := &n.links[int(f.From)*NumPorts+int(p)]
		out.node = -1
		out.port = 0
		n.routers[f.From].neighbor[p] = nil
		in := &n.links[int(f.To)*NumPorts+int(p.Opposite())]
		in.upNode = -1
		in.target = 0
	}
}

// buildRouteTable computes the per-destination next-hop table over the
// surviving directed channels: entry cur*nodes+dst is the output port a
// packet at cur takes towards dst. Ports come from a reverse
// breadth-first search per destination, so every route is minimal on
// the faulted topology. Among shortest-path candidate ports the one
// dimension-ordered routing would pick is preferred when it survives
// (the table then reduces exactly to DOR on a fault-free mesh), falling
// back to the lowest-numbered candidate.
//
// The table guarantees minimal progress, not deadlock freedom: an
// adversarial fault set can reintroduce cyclic channel dependencies
// that XY routing excluded. The engine's saturation guards abort such
// runs instead of hanging.
func (n *Network) buildRouteTable() error {
	cfg := &n.cfg
	nodes := cfg.Nodes()
	yFirst := cfg.Routing == RoutingYX
	table := make([]int8, nodes*nodes)
	dist := make([]int32, nodes)
	queue := make([]NodeID, 0, nodes)
	for dst := 0; dst < nodes; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], NodeID(dst))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			// Relax every upstream node u with a surviving channel u→v.
			for p := PortNorth; p <= PortWest; p++ {
				dx, dy := p.delta()
				vx, vy := cfg.Coord(v)
				ux, uy := vx+dx, vy+dy
				if !cfg.InMesh(ux, uy) {
					continue
				}
				u := cfg.Node(ux, uy)
				if n.links[int(u)*NumPorts+int(p.Opposite())].node != int32(v) {
					continue // channel u→v is faulted
				}
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for cur := 0; cur < nodes; cur++ {
			if cur == dst {
				table[cur*nodes+dst] = int8(PortLocal)
				continue
			}
			if dist[cur] < 0 {
				return fmt.Errorf("noc: faults disconnect node %d from node %d", cur, dst)
			}
			preferred := routeDOR(cfg, NodeID(cur), NodeID(dst), yFirst)
			chosen := Port(-1)
			for p := PortNorth; p <= PortWest; p++ {
				next := n.links[cur*NumPorts+int(p)].node
				if next < 0 || dist[next] != dist[cur]-1 {
					continue
				}
				if p == preferred {
					chosen = p
					break
				}
				if chosen < 0 {
					chosen = p
				}
			}
			if chosen < 0 {
				// Unreachable: dist[cur] ≥ 1 implies a relaxed channel exists.
				panic("noc: route table found no next hop for a reachable node")
			}
			table[cur*nodes+dst] = int8(chosen)
		}
	}
	n.routeTable = table
	return nil
}

// routePort is the engine's route computation: the fault-aware table
// when one is installed, otherwise the algorithmic RoutePort.
func (n *Network) routePort(cur NodeID, p *Packet) Port {
	if n.routeTable != nil {
		return Port(n.routeTable[int(cur)*len(n.routers)+int(p.Dst)])
	}
	return RoutePort(&n.cfg, cur, p)
}

// Faults returns a copy of the faulted links the network was built with.
func (n *Network) Faults() []Link {
	return append([]Link(nil), n.faults...)
}
