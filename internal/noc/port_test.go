package noc

import "testing"

func TestPortString(t *testing.T) {
	tests := []struct {
		p    Port
		want string
	}{
		{PortLocal, "local"},
		{PortNorth, "north"},
		{PortEast, "east"},
		{PortSouth, "south"},
		{PortWest, "west"},
		{Port(9), "port(9)"},
		{Port(-1), "port(-1)"},
	}
	for _, tc := range tests {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("Port(%d).String() = %q, want %q", int(tc.p), got, tc.want)
		}
	}
}

func TestPortOpposite(t *testing.T) {
	tests := []struct{ p, want Port }{
		{PortNorth, PortSouth},
		{PortSouth, PortNorth},
		{PortEast, PortWest},
		{PortWest, PortEast},
	}
	for _, tc := range tests {
		if got := tc.p.Opposite(); got != tc.want {
			t.Errorf("%v.Opposite() = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPortOppositeInvolution(t *testing.T) {
	for p := PortNorth; p <= PortWest; p++ {
		if got := p.Opposite().Opposite(); got != p {
			t.Errorf("%v.Opposite().Opposite() = %v", p, got)
		}
	}
}

func TestPortOppositeLocalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PortLocal.Opposite() did not panic")
		}
	}()
	PortLocal.Opposite()
}

func TestPortDelta(t *testing.T) {
	tests := []struct {
		p      Port
		dx, dy int
	}{
		{PortLocal, 0, 0},
		{PortNorth, 0, -1},
		{PortSouth, 0, 1},
		{PortEast, 1, 0},
		{PortWest, -1, 0},
	}
	for _, tc := range tests {
		dx, dy := tc.p.delta()
		if dx != tc.dx || dy != tc.dy {
			t.Errorf("%v.delta() = (%d,%d), want (%d,%d)", tc.p, dx, dy, tc.dx, tc.dy)
		}
	}
}

func TestPortDeltaMatchesOpposite(t *testing.T) {
	// Moving through p and then through p.Opposite() must return to the
	// starting coordinates.
	for p := PortNorth; p <= PortWest; p++ {
		dx1, dy1 := p.delta()
		dx2, dy2 := p.Opposite().delta()
		if dx1+dx2 != 0 || dy1+dy2 != 0 {
			t.Errorf("%v and its opposite do not cancel: (%d,%d)+(%d,%d)", p, dx1, dy1, dx2, dy2)
		}
	}
}
