package noc

import "testing"

// BenchmarkRouterPipeline isolates the router pipeline cost: a 1x2 mesh
// with a continuously refilled stream from node 0 to node 1 keeps one
// router's RC/VA/SA stages busy every cycle, so ns/op tracks the per-router
// per-cycle cost with almost no network-level overhead.
func BenchmarkRouterPipeline(b *testing.B) {
	cfg := Config{Width: 2, Height: 1, VCs: 8, BufDepth: 4, PacketSize: 5, Routing: RoutingXY}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.sources[0].queue.Len() < 4 {
			n.NewPacket(0, 1, 0, 0)
		}
		n.Step()
	}
}

// BenchmarkRouterCrossTraffic saturates the center router of a 3x3 mesh
// with four crossing flows, exercising switch-allocation contention (the
// historical hot spot) rather than a single uncontended stream.
func BenchmarkRouterCrossTraffic(b *testing.B) {
	cfg := Config{Width: 3, Height: 3, VCs: 8, BufDepth: 4, PacketSize: 5, Routing: RoutingXY}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Flows crossing the center router 4: west-east, east-west, north-south,
	// south-north.
	flows := [][2]NodeID{{3, 5}, {5, 3}, {1, 7}, {7, 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range flows {
			if n.sources[f[0]].queue.Len() < 2 {
				n.NewPacket(f[0], f[1], 0, 0)
			}
		}
		n.Step()
	}
}
