package noc

import (
	"fmt"
	"math/bits"
)

// vcStage is the pipeline state of an input virtual channel.
type vcStage uint8

const (
	// vcIdle: no packet occupies the VC.
	vcIdle vcStage = iota
	// vcRouting: a head flit is at the front and awaits route computation.
	vcRouting
	// vcWaitVC: route computed, waiting for a downstream VC grant.
	vcWaitVC
	// vcActive: output VC allocated, flits compete for the switch.
	vcActive
)

// vcState is the complete pipeline record of one input VC, packed into 16
// bytes so a single cache-line load answers everything the stage passes ask
// (the previous layout spread this over four parallel slices and the SA
// eligibility check paid one load per slice). All input VCs of the whole
// mesh live in one flat network-owned array, router-major, so a stage pass
// over the active-router bitmask walks memory mostly forward.
type vcState struct {
	// ready is the earliest cycle for the VC's next pipeline step.
	ready int64
	// port is the routed output port (valid from vcWaitVC onwards).
	port int8
	// outVC is the allocated downstream VC (valid in vcActive, else -1).
	outVC int8
	// stage is the pipeline stage (vcIdle..vcActive).
	stage vcStage
	// bufHead/bufLen locate the VC's flit ring inside the network's flat
	// bufs array. Config.Validate caps BufDepth at 255 to keep them bytes.
	bufHead uint8
	bufLen  uint8
	// wrHead is the ring slot the next arriving flit is written to. It is
	// owned by the upstream writer (the neighbouring router's SA stage, or
	// the local source), which stores the flit directly into the ring
	// during its compute phase and stages only a small arrival notice; the
	// VC's owner commits bufLen (and never touches wrHead) the next cycle.
	// Credit flow guarantees at most one uncommitted arrival per input
	// port per cycle, so the split-cursor ring is single-writer,
	// single-reader with no overlapping field access.
	wrHead uint8
}

// outVCState pairs the downstream credit count of an output VC with the
// flat input VC index that currently owns it (-1 when free).
type outVCState struct {
	owner int32
	// credits is the number of free slots in the downstream input buffer.
	// Ejection (local) output VCs are replenished implicitly: the PE
	// consumes flits at link rate, so their credits stay at BufDepth.
	credits int32
}

// Router is one input-queued virtual-channel router of the mesh. The bulk
// per-VC state lives in flat network-owned arrays (vc/bufs/outState); the
// Router holds subslice views over its own records plus the allocator
// round-robin pointers and the per-stage occupancy bitmasks that drive the
// stage-major engine.
type Router struct {
	id   NodeID
	x, y int
	net  *Network
	band *band

	vcs   int // cached Config.VCs
	depth int // cached Config.BufDepth

	// vc[i] is the record of local flat input VC i = port*vcs+vc; a
	// subslice of net.vc starting at global index id*NumPorts*vcs.
	vc []vcState
	// bufs holds the flit rings of the local input VCs: VC i's ring is
	// bufs[i*depth : (i+1)*depth]. Subslice of net.bufs.
	bufs []Flit
	// outState[o] is the record of local output VC o = port*vcs+vc.
	// Subslice of net.outState.
	outState []outVCState

	// linkBase is id*NumPorts, the router's row in the network's flat
	// link table (Network.links).
	linkBase int

	// neighbor[port] is the adjacent router reached through port, or nil
	// at mesh edges and for PortLocal. (The hot path uses the link tables
	// instead; this stays for construction and tests.)
	neighbor [NumPorts]*Router

	// Round-robin priority pointers for the allocators.
	vaPri    [NumPorts]int // per output port, rotates over flat input VC index
	saInPri  [NumPorts]int // per input port, rotates over its VCs
	saOutPri [NumPorts]int // per output port, rotates over input ports

	// Stage population counters let a stage pass skip the router cheaply;
	// the per-input-port bitmasks (bit v set when VC v of the port is in
	// that stage) let it visit only occupied VCs. Config.Validate caps VCs
	// at 64 to keep the masks single words.
	nRouting    int
	nWaitVC     int
	nActive     int
	routingMask [NumPorts]uint64
	waitMask    [NumPorts]uint64
	activeMask  [NumPorts]uint64

	// creditMask mirrors the credit counters: bit v of word p is set while
	// outState[p*vcs+v].credits > 0. SA eligibility tests this
	// register-hot word instead of loading the counter's cache line; the
	// counters stay authoritative and the mask is updated on every 0<->1
	// transition. Only this router's band worker writes it (SA decrements
	// in compute, credit returns in this band's delivery or the serial
	// eject phase).
	creditMask [NumPorts]uint64

	// saEligMask caches full SA eligibility per input port: bit v is set
	// while input VC v is in vcActive with a buffered flit and a credit
	// available on its allocated output VC. The SA input phase rotates
	// this word and takes the first ready bit instead of probing per-VC
	// state; the mask is updated at the transitions that change any of
	// the three conditions (VA grant, SA send, arrival commit, credit
	// return). Same single-writer discipline as creditMask.
	saEligMask [NumPorts]uint64

	// buffered is the total number of flits held in input VC buffers;
	// it makes occupancy O(1) for the quiescence check.
	buffered int

	// active reports membership in the band's active-router bitmask.
	active bool

	// Activity is the per-router event accumulator for power estimation.
	Activity RouterActivity
}

// ID returns the router's node id.
func (r *Router) ID() NodeID { return r.id }

// setStageBit / clearStageBit keep one of the band's per-stage word sets
// (rcWords/vaWords/saWords) in sync with this router's stage counter at a
// 0<->nonzero transition. Only this router's band worker calls them.
func (r *Router) setStageBit(words []uint64) {
	k := int(r.id) - r.band.lo
	words[k>>6] |= 1 << uint(k&63)
}

func (r *Router) clearStageBit(words []uint64) {
	k := int(r.id) - r.band.lo
	words[k>>6] &^= 1 << uint(k&63)
}

// hasWork reports whether the router holds any flits or any input VC in a
// non-idle pipeline stage; an idle router's step is a guaranteed no-op, so
// the engine drops it from the active set.
func (r *Router) hasWork() bool {
	return r.buffered > 0 || r.nRouting+r.nWaitVC+r.nActive > 0
}

// commitArrival is called by the delivery phase when a flit staged last
// cycle (already sitting in the ring slot its writer stored it to)
// becomes visible on input port p. Only the band worker that owns this
// router calls it.
func (r *Router) commitArrival(p Port, vc int, cycle int64) {
	i := int(p)*r.vcs + vc
	st := &r.vc[i]
	if int(st.bufLen) == r.depth {
		panic(fmt.Sprintf("noc: buffer overflow at router %d port %s vc %d (flow control violated)", r.id, p, vc))
	}
	wasEmpty := st.bufLen == 0
	st.bufLen++
	r.buffered++
	r.Activity.BufWrites++
	if p == PortLocal {
		r.Activity.InjectFlits++
	}
	// A head flit arriving at the front of an idle VC starts the pipeline
	// on the next cycle; a flit refilling an empty active VC makes it SA-
	// eligible again if its output VC has a credit.
	if wasEmpty {
		if st.stage == vcIdle {
			if !r.bufs[i*r.depth+int(st.bufHead)].Head {
				panic("noc: body flit arrived at idle VC without a head")
			}
			st.stage = vcRouting
			st.ready = cycle + 1
			r.nRouting++
			r.routingMask[p] |= 1 << uint(vc)
			if r.nRouting == 1 {
				r.setStageBit(r.band.rcWords)
			}
		} else if st.stage == vcActive && r.creditMask[st.port]&(1<<uint(st.outVC)) != 0 {
			r.saEligMask[p] |= 1 << uint(vc)
		}
	}
	if !r.active {
		r.net.activateRouter(r)
	}
}

// stageRC performs route computation for all input VCs that are ready.
func (r *Router) stageRC(cycle int64) {
	net := r.net
	for p := 0; p < NumPorts; p++ {
		m := r.routingMask[p]
		if m == 0 {
			continue
		}
		base := p * r.vcs
		for ; m != 0; m &= m - 1 {
			v := bits.TrailingZeros64(m)
			i := base + v
			st := &r.vc[i]
			if st.ready > cycle || st.bufLen == 0 {
				continue
			}
			head := r.bufs[i*r.depth+int(st.bufHead)]
			st.port = int8(net.routePort(r.id, head.Packet))
			st.stage = vcWaitVC
			st.ready = cycle + 1
			r.nRouting--
			r.nWaitVC++
			r.routingMask[p] &^= 1 << uint(v)
			r.waitMask[p] |= 1 << uint(v)
		}
	}
	if r.nRouting == 0 {
		r.clearStageBit(r.band.rcWords)
	}
	if r.nWaitVC > 0 {
		r.setStageBit(r.band.vaWords)
	}
}

// stageVA performs separable input-first round-robin VC allocation: each
// waiting input VC requests its routed output port; each output port grants
// its free VCs (in index order) to requesters in round-robin order starting
// at the priority pointer.
func (r *Router) stageVA(cycle int64) {
	if NumPorts*r.vcs <= 64 {
		r.stageVAMask(cycle)
	} else {
		r.stageVASlow(cycle)
	}
	if r.nWaitVC == 0 {
		r.clearStageBit(r.band.vaWords)
	}
	if r.nActive > 0 {
		r.setStageBit(r.band.saWords)
	}
}

// stageVAMask is the VA fast path for NumPorts*VCs <= 64 (every practical
// configuration): requester sets are uint64 masks over flat input VC
// indices and the round-robin scan is a rotate + trailing-zeros loop that
// visits requesters in exactly the order the linear scan would. Every
// requester encountered is granted until the free list runs out, so a
// single rotation by the initial priority pointer suffices.
func (r *Router) stageVAMask(cycle int64) {
	vcs := r.vcs
	total := NumPorts * vcs
	var req [NumPorts]uint64
	var anyOps uint32
	for p := 0; p < NumPorts; p++ {
		m := r.waitMask[p]
		if m == 0 {
			continue
		}
		base := p * vcs
		for ; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			st := &r.vc[i]
			if st.ready > cycle {
				continue
			}
			op := uint(st.port)
			req[op] |= 1 << uint(i)
			anyOps |= 1 << op
		}
	}
	for ; anyOps != 0; anyOps &= anyOps - 1 {
		op := bits.TrailingZeros32(anyOps)
		obase := op * vcs
		var free [64]int8
		nfree := 0
		for ov := 0; ov < vcs; ov++ {
			if r.outState[obase+ov].owner < 0 {
				free[nfree] = int8(ov)
				nfree++
			}
		}
		if nfree == 0 {
			continue
		}
		pri := r.vaPri[op]
		rot := req[op]>>uint(pri) | req[op]<<uint(total-pri)
		if total < 64 {
			rot &= uint64(1)<<uint(total) - 1
		}
		granted := 0
		for ; rot != 0 && granted < nfree; rot &= rot - 1 {
			want := pri + bits.TrailingZeros64(rot)
			if want >= total {
				want -= total
			}
			ip := want / vcs
			iv := want - ip*vcs
			ov := int(free[granted])
			granted++
			r.outState[obase+ov].owner = int32(want)
			st := &r.vc[want]
			st.outVC = int8(ov)
			st.stage = vcActive
			st.ready = cycle + 1
			r.nWaitVC--
			r.nActive++
			r.waitMask[ip] &^= 1 << uint(iv)
			r.activeMask[ip] |= 1 << uint(iv)
			// The granted VC holds at least the head flit (nothing
			// dequeues before vcActive), so SA eligibility only hinges
			// on a credit.
			if r.creditMask[op]&(1<<uint(ov)) != 0 {
				r.saEligMask[ip] |= 1 << uint(iv)
			}
			r.Activity.VCAllocs++
			r.vaPri[op] = want + 1
			if r.vaPri[op] >= total {
				r.vaPri[op] = 0
			}
		}
	}
}

// stageVASlow is the list-based VA fallback for NumPorts*VCs > 64. Its
// scratch (vaReq/vaIsReq) is shared across the routers of a band, so it
// stays allocation-free in steady state.
func (r *Router) stageVASlow(cycle int64) {
	b := r.band
	vcs := r.vcs
	total := NumPorts * vcs
	if len(b.vaIsReq) < total {
		b.vaIsReq = make([]bool, total)
	}
	for p := range b.vaReq {
		b.vaReq[p] = b.vaReq[p][:0]
	}
	anyReq := false
	for p := 0; p < NumPorts; p++ {
		m := r.waitMask[p]
		if m == 0 {
			continue
		}
		base := p * vcs
		for ; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			st := &r.vc[i]
			if st.ready > cycle {
				continue
			}
			b.vaReq[st.port] = append(b.vaReq[st.port], int32(i))
			b.vaIsReq[i] = true
			anyReq = true
		}
	}
	if !anyReq {
		return
	}
	for op := 0; op < NumPorts; op++ {
		reqs := b.vaReq[op]
		if len(reqs) == 0 {
			continue
		}
		obase := op * vcs
		var free [64]int8
		nfree := 0
		for ov := 0; ov < vcs; ov++ {
			if r.outState[obase+ov].owner < 0 {
				free[nfree] = int8(ov)
				nfree++
			}
		}
		if nfree > 0 {
			granted := 0
			pri := r.vaPri[op]
			for off := 0; off < total && granted < nfree; off++ {
				want := pri + off
				if want >= total {
					want -= total
				}
				if !b.vaIsReq[want] {
					continue
				}
				b.vaIsReq[want] = false
				ip := want / vcs
				iv := want - ip*vcs
				ov := int(free[granted])
				granted++
				r.outState[obase+ov].owner = int32(want)
				st := &r.vc[want]
				st.outVC = int8(ov)
				st.stage = vcActive
				st.ready = cycle + 1
				r.nWaitVC--
				r.nActive++
				r.waitMask[ip] &^= 1 << uint(iv)
				r.activeMask[ip] |= 1 << uint(iv)
				if r.creditMask[op]&(1<<uint(ov)) != 0 {
					r.saEligMask[ip] |= 1 << uint(iv)
				}
				r.Activity.VCAllocs++
				r.vaPri[op] = want + 1
				if r.vaPri[op] >= total {
					r.vaPri[op] = 0
				}
			}
		}
		for _, req := range reqs {
			b.vaIsReq[req] = false
		}
	}
}

// stageSA performs two-phase round-robin switch allocation and, for the
// winners, switch traversal: the flit is dequeued, staged onto the output
// link (arriving downstream next cycle) and a credit is staged upstream.
// The link pass reads the network's flat link tables instead of chasing
// neighbour pointers.
func (r *Router) stageSA(cycle int64) {
	vcs := r.vcs
	depth := r.depth
	widthMask := uint64(1)<<uint(vcs) - 1
	// Input phase: each input port nominates one eligible VC and requests
	// its output port. Requests are collected as bitmasks (NumPorts ≤ 5
	// bits) so the output phase can resolve each grant with bit tricks
	// instead of a NumPorts×NumPorts scan.
	var reqOps uint32          // output ports with at least one requester
	var reqIn [NumPorts]uint32 // per output port: requesting input ports
	var saInWin [NumPorts]int8 // winning VC of the input phase, per port
	for p := 0; p < NumPorts; p++ {
		em := r.saEligMask[p]
		if em == 0 {
			continue
		}
		base := p * vcs
		if em&(em-1) == 0 {
			// One eligible VC: it wins regardless of the round-robin
			// pointer, no rotation needed (the overwhelmingly common
			// case — a port streams one packet at a time).
			v := bits.TrailingZeros64(em)
			st := &r.vc[base+v]
			if st.ready <= cycle {
				saInWin[p] = int8(v)
				out := uint(st.port)
				reqOps |= 1 << out
				reqIn[out] |= 1 << uint(p)
			}
			continue
		}
		// Rotate the eligibility mask right by the round-robin pointer so
		// that trailing-zeros iteration visits VCs in priority order. The
		// mask already encodes buffered-flit and credit availability; only
		// the ready stamp (excluding VCs granted by VA this very cycle)
		// still needs the per-VC record.
		pri := r.saInPri[p]
		rot := (em>>uint(pri) | em<<uint(vcs-pri)) & widthMask
		for ; rot != 0; rot &= rot - 1 {
			v := pri + bits.TrailingZeros64(rot)
			if v >= vcs {
				v -= vcs
			}
			st := &r.vc[base+v]
			if st.ready > cycle {
				continue
			}
			saInWin[p] = int8(v)
			out := uint(st.port)
			reqOps |= 1 << out
			reqIn[out] |= 1 << uint(p)
			break
		}
	}
	if reqOps == 0 {
		return
	}
	net := r.net
	b := r.band
	links := b.stagedLinks
	ejects := b.stagedEjects
	// Output phase + traversal, in ascending output-port order. Each
	// requested port grants the first requesting input port at or after
	// its round-robin pointer: rotating the request mask right by the
	// pointer makes that a single trailing-zeros count.
	for ; reqOps != 0; reqOps &= reqOps - 1 {
		op := bits.TrailingZeros32(reqOps)
		m := reqIn[op]
		var ip int
		if m&(m-1) == 0 {
			// One requester: wins regardless of the pointer.
			ip = bits.TrailingZeros32(m)
		} else {
			pri := r.saOutPri[op]
			rot := (m>>uint(pri) | m<<uint(NumPorts-pri)) & (1<<NumPorts - 1)
			ip = pri + bits.TrailingZeros32(rot)
			if ip >= NumPorts {
				ip -= NumPorts
			}
		}
		v := int(saInWin[ip])
		i := ip*vcs + v
		st := &r.vc[i]

		flit := r.bufs[i*depth+int(st.bufHead)]
		if h := int(st.bufHead) + 1; h == depth {
			st.bufHead = 0
		} else {
			st.bufHead = uint8(h)
		}
		st.bufLen--
		r.buffered--
		r.Activity.BufReads++
		r.Activity.XbarTraversals++
		r.Activity.SAAllocs++
		r.saInPri[ip] = v + 1
		if r.saInPri[ip] >= vcs {
			r.saInPri[ip] = 0
		}
		r.saOutPri[op] = ip + 1
		if r.saOutPri[op] >= NumPorts {
			r.saOutPri[op] = 0
		}

		outVC := int(st.outVC)
		o := op*vcs + outVC
		flit.VC = int8(outVC)

		// The freed buffer slot returns upstream as a credit, riding the
		// same staged event as the flit (or the eject).
		up := &net.links[r.linkBase+ip]
		if up.upNode < 0 {
			panic("noc: credit towards a missing neighbour")
		}

		// Send the flit: ejection to the local PE, otherwise on the link.
		if Port(op) == PortLocal {
			r.Activity.EjectFlits++
			var done *Packet
			if flit.Tail {
				done = flit.Packet
			}
			ejects = append(ejects, ejectEvent{packet: done, credTarget: up.target, credVC: int8(v)})
			// Ejection consumes at link rate: the credit is restored
			// immediately, so local output VCs never block on credits.
		} else {
			r.Activity.LinkFlits++
			os := &r.outState[o]
			os.credits--
			if os.credits == 0 {
				r.creditMask[op] &^= 1 << uint(outVC)
			}
			lk := &net.links[r.linkBase+op]
			dest := lk.node
			if dest < 0 {
				panic(fmt.Sprintf("noc: router %d sent a flit off-mesh through port %s", r.id, Port(op)))
			}
			// Store the flit directly into the destination VC's ring slot
			// (this stage is the slot's only writer this cycle; the owner
			// commits it next cycle) and stage the arrival+credit notice.
			dp := int(lk.port)
			g := (int(dest)*NumPorts+dp)*vcs + outVC
			dst := &net.vc[g]
			slot := int(dst.wrHead)
			net.bufs[g*depth+slot] = flit
			if slot++; slot == depth {
				slot = 0
			}
			dst.wrHead = uint8(slot)
			links = append(links, makeLinkEvent(dest, int8(dp), int8(outVC), up.upNode, up.target, int8(v)))
			if flit.Head {
				flit.Packet.Hops++
			}
		}

		// Tail departure releases the input VC and the output VC.
		if flit.Tail {
			r.outState[o].owner = -1
			st.stage = vcIdle
			st.outVC = -1
			r.nActive--
			r.activeMask[ip] &^= 1 << uint(v)
			r.saEligMask[ip] &^= 1 << uint(v)
			// If the next packet's head is already buffered behind the
			// tail, restart the pipeline for it.
			if st.bufLen > 0 {
				next := r.bufs[i*depth+int(st.bufHead)]
				if !next.Head {
					panic("noc: flit following a tail is not a head")
				}
				st.stage = vcRouting
				st.ready = cycle + 1
				r.nRouting++
				r.routingMask[ip] |= 1 << uint(v)
			}
		} else if st.bufLen == 0 || r.creditMask[op]&(1<<uint(outVC)) == 0 {
			// The sender stays active but lost a precondition: drained
			// buffer, or the last credit of its output VC just went.
			r.saEligMask[ip] &^= 1 << uint(v)
		}
	}
	b.stagedLinks = links
	b.stagedEjects = ejects
	if r.nActive == 0 {
		r.clearStageBit(b.saWords)
	}
	if r.nRouting > 0 {
		r.setStageBit(b.rcWords)
	}
}

// step runs one router-major cycle (RC, VA, SA in sequence), skipping empty
// stages via the population counters. The stage-major engine instead calls
// the stage functions directly, batched across the routers of a band; this
// router-major order is kept as the naive-mode reference path
// (SetSkipAhead(false)) that the golden equivalence tests compare against.
func (r *Router) step(cycle int64) {
	if r.nRouting > 0 {
		r.stageRC(cycle)
	}
	if r.nWaitVC > 0 {
		r.stageVA(cycle)
	}
	if r.nActive > 0 {
		r.stageSA(cycle)
	}
}

// occupancy returns the total number of flits buffered in the router.
func (r *Router) occupancy() int { return r.buffered }

// checkInvariants panics if derived state is inconsistent; used by tests
// via Network.CheckInvariants.
func (r *Router) checkInvariants() {
	var nR, nW, nA int
	var mR, mW, mA, mE [NumPorts]uint64
	buffered := 0
	for p := 0; p < NumPorts; p++ {
		for v := 0; v < r.vcs; v++ {
			i := p*r.vcs + v
			st := &r.vc[i]
			buffered += int(st.bufLen)
			switch st.stage {
			case vcRouting:
				nR++
				mR[p] |= 1 << uint(v)
			case vcWaitVC:
				nW++
				mW[p] |= 1 << uint(v)
			case vcActive:
				nA++
				mA[p] |= 1 << uint(v)
				o := int(st.port)*r.vcs + int(st.outVC)
				if r.outState[o].owner != int32(i) {
					panic("noc: active input VC does not own its output VC")
				}
				if st.bufLen > 0 && r.outState[o].credits > 0 {
					mE[p] |= 1 << uint(v)
				}
			}
		}
	}
	if nR != r.nRouting || nW != r.nWaitVC || nA != r.nActive {
		panic("noc: stage population counters out of sync")
	}
	if mR != r.routingMask || mW != r.waitMask || mA != r.activeMask {
		panic("noc: per-port stage occupancy masks out of sync")
	}
	if mE != r.saEligMask {
		panic("noc: SA eligibility mask out of sync")
	}
	if buffered != r.buffered {
		panic("noc: buffered flit counter out of sync")
	}
	if r.hasWork() && !r.active {
		panic("noc: router with work is not in the active set")
	}
	for p := 0; p < NumPorts; p++ {
		for v := 0; v < r.vcs; v++ {
			i := p*r.vcs + v
			st := &r.vc[i]
			if r.outState[i].credits < 0 || r.outState[i].credits > int32(r.depth) {
				panic("noc: output VC credits out of range")
			}
			if hasCredits := r.outState[i].credits > 0; hasCredits != (r.creditMask[p]&(1<<uint(v)) != 0) {
				panic("noc: credit mask out of sync with credit counters")
			}
			if st.stage == vcIdle && st.bufLen != 0 {
				panic("noc: idle input VC holds flits")
			}
		}
	}
}
