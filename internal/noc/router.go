package noc

// vcStage is the pipeline state of an input virtual channel.
type vcStage uint8

const (
	// vcIdle: no packet occupies the VC.
	vcIdle vcStage = iota
	// vcRouting: a head flit is at the front and awaits route computation.
	vcRouting
	// vcWaitVC: route computed, waiting for a downstream VC grant.
	vcWaitVC
	// vcActive: output VC allocated, flits compete for the switch.
	vcActive
)

// inputVC is the per-virtual-channel state of a router input port.
type inputVC struct {
	buf   flitRing
	stage vcStage
	// outPort is the routed output port (valid from vcWaitVC onwards).
	outPort Port
	// outVC is the allocated downstream VC (valid in vcActive).
	outVC int
	// readyCycle is the earliest network cycle at which this VC may take
	// its next pipeline step; it enforces one stage per cycle.
	readyCycle int64
}

// outputVC is the per-virtual-channel state of a router output port. It
// tracks downstream buffer credits and the current owning input VC.
type outputVC struct {
	// owner is the flat input VC index (port*VCs+vc) holding this output
	// VC, or -1 when free.
	owner int
	// credits is the number of free slots in the downstream input buffer.
	// Ejection (local) output VCs are replenished implicitly: the PE
	// consumes flits at link rate, so credits are pinned at BufDepth.
	credits int
}

// Router is one input-queued virtual-channel router of the mesh.
type Router struct {
	id   NodeID
	x, y int
	net  *Network

	// in[port][vc] and out[port][vc] hold the VC state.
	in  [][]inputVC
	out [][]outputVC

	// neighbor[port] is the adjacent router reached through port, or nil
	// at mesh edges and for PortLocal.
	neighbor [NumPorts]*Router

	// Round-robin priority pointers for the allocators.
	vaPri    [NumPorts]int // per output port, rotates over flat input VC index
	saInPri  [NumPorts]int // per input port, rotates over its VCs
	saOutPri [NumPorts]int // per output port, rotates over input ports

	// Scratch space reused every cycle by the allocators.
	vaReq    [NumPorts][]int // requester flat input VC indices per output port
	saInWin  [NumPorts]int   // per input port: winning VC of SA input phase, -1 none
	saOutWin [NumPorts]int   // per output port: winning input port, -1 none

	// Stage population counters let step skip empty pipeline stages; they
	// are pure accounting and carry no semantics beyond "how many input
	// VCs are currently in each stage".
	nRouting int
	nWaitVC  int
	nActive  int

	// Activity is the per-router event accumulator for power estimation.
	Activity RouterActivity
}

// ID returns the router's node id.
func (r *Router) ID() NodeID { return r.id }

func newRouter(net *Network, id NodeID) *Router {
	cfg := &net.cfg
	r := &Router{id: id, net: net}
	r.x, r.y = cfg.Coord(id)
	r.in = make([][]inputVC, NumPorts)
	r.out = make([][]outputVC, NumPorts)
	for p := 0; p < NumPorts; p++ {
		r.in[p] = make([]inputVC, cfg.VCs)
		r.out[p] = make([]outputVC, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			r.in[p][v] = inputVC{buf: newFlitRing(cfg.BufDepth)}
			r.out[p][v] = outputVC{owner: -1, credits: cfg.BufDepth}
		}
		r.vaReq[p] = make([]int, 0, NumPorts*cfg.VCs)
	}
	return r
}

// flatVC packs (port, vc) into a single index.
func (r *Router) flatVC(p Port, vc int) int { return int(p)*r.net.cfg.VCs + vc }

// unflatVC unpacks a flat input VC index.
func (r *Router) unflatVC(idx int) (Port, int) {
	return Port(idx / r.net.cfg.VCs), idx % r.net.cfg.VCs
}

// acceptFlit is called by the network's delivery phase when a flit arrives
// on an input port (from a neighbouring router's link or from the local
// injection source).
func (r *Router) acceptFlit(p Port, f *Flit, cycle int64) {
	ivc := &r.in[p][f.VC]
	wasEmpty := ivc.buf.Len() == 0
	ivc.buf.Push(f)
	r.Activity.BufWrites++
	if p == PortLocal {
		r.Activity.InjectFlits++
	}
	// A head flit arriving at the front of an idle VC starts the pipeline
	// on the next cycle.
	if wasEmpty && ivc.stage == vcIdle {
		if !f.Head {
			panic("noc: body flit arrived at idle VC without a head")
		}
		ivc.stage = vcRouting
		ivc.readyCycle = cycle + 1
		r.nRouting++
	}
}

// acceptCredit is called by the delivery phase when a credit returns for
// output port p, virtual channel vc.
func (r *Router) acceptCredit(p Port, vc int) {
	ovc := &r.out[p][vc]
	ovc.credits++
	if ovc.credits > r.net.cfg.BufDepth {
		panic("noc: credit overflow (more credits than buffer slots)")
	}
}

// stageRC performs route computation for all input VCs that are ready.
func (r *Router) stageRC(cycle int64) {
	cfg := &r.net.cfg
	for p := 0; p < NumPorts; p++ {
		for v := range r.in[p] {
			ivc := &r.in[p][v]
			if ivc.stage != vcRouting || ivc.readyCycle > cycle {
				continue
			}
			head := ivc.buf.Front()
			if head == nil {
				continue // head flit not yet buffered
			}
			ivc.outPort = RoutePort(cfg, r.id, head.Packet)
			ivc.stage = vcWaitVC
			ivc.readyCycle = cycle + 1
			r.nRouting--
			r.nWaitVC++
		}
	}
}

// stageVA performs separable input-first round-robin VC allocation: each
// waiting input VC requests its routed output port; each output port grants
// its free VCs to requesters in round-robin order.
func (r *Router) stageVA(cycle int64) {
	cfg := &r.net.cfg
	for p := range r.vaReq {
		r.vaReq[p] = r.vaReq[p][:0]
	}
	for p := 0; p < NumPorts; p++ {
		for v := range r.in[p] {
			ivc := &r.in[p][v]
			if ivc.stage == vcWaitVC && ivc.readyCycle <= cycle {
				r.vaReq[ivc.outPort] = append(r.vaReq[ivc.outPort], r.flatVC(Port(p), v))
			}
		}
	}
	total := NumPorts * cfg.VCs
	for op := 0; op < NumPorts; op++ {
		reqs := r.vaReq[op]
		if len(reqs) == 0 {
			continue
		}
		// Free output VCs in index order.
		free := make([]int, 0, cfg.VCs)
		for ov := range r.out[op] {
			if r.out[op][ov].owner < 0 {
				free = append(free, ov)
			}
		}
		if len(free) == 0 {
			continue
		}
		// Requesters in round-robin order starting at the priority pointer.
		granted := 0
		pri := r.vaPri[op]
		for off := 0; off < total && granted < len(free); off++ {
			want := (pri + off) % total
			for _, req := range reqs {
				if req != want {
					continue
				}
				ip, iv := r.unflatVC(req)
				ivc := &r.in[ip][iv]
				ov := free[granted]
				granted++
				r.out[op][ov].owner = req
				ivc.outVC = ov
				ivc.stage = vcActive
				ivc.readyCycle = cycle + 1
				r.nWaitVC--
				r.nActive++
				r.Activity.VCAllocs++
				r.vaPri[op] = (req + 1) % total
				break
			}
		}
	}
}

// stageSA performs two-phase round-robin switch allocation and, for the
// winners, switch traversal: the flit is dequeued, sent on the output link
// (arriving downstream next cycle) and a credit is scheduled upstream.
func (r *Router) stageSA(cycle int64) {
	cfg := &r.net.cfg
	// Input phase: each input port nominates one eligible VC.
	for p := 0; p < NumPorts; p++ {
		r.saInWin[p] = -1
		pri := r.saInPri[p]
		for off := 0; off < cfg.VCs; off++ {
			v := (pri + off) % cfg.VCs
			ivc := &r.in[p][v]
			if ivc.stage != vcActive || ivc.readyCycle > cycle || ivc.buf.Len() == 0 {
				continue
			}
			if r.out[ivc.outPort][ivc.outVC].credits <= 0 {
				continue
			}
			r.saInWin[p] = v
			break
		}
	}
	// Output phase: each output port grants one input port.
	for op := 0; op < NumPorts; op++ {
		r.saOutWin[op] = -1
		pri := r.saOutPri[op]
		for off := 0; off < NumPorts; off++ {
			ip := (pri + off) % NumPorts
			v := r.saInWin[ip]
			if v < 0 || r.in[ip][v].outPort != Port(op) {
				continue
			}
			r.saOutWin[op] = ip
			break
		}
	}
	// Traversal for the winners.
	for op := 0; op < NumPorts; op++ {
		ip := r.saOutWin[op]
		if ip < 0 {
			continue
		}
		v := r.saInWin[ip]
		ivc := &r.in[ip][v]
		flit := ivc.buf.Pop()
		r.Activity.BufReads++
		r.Activity.XbarTraversals++
		r.Activity.SAAllocs++
		r.saInPri[ip] = (v + 1) % cfg.VCs
		r.saOutPri[op] = (ip + 1) % NumPorts

		ovc := &r.out[op][ivc.outVC]
		flit.VC = ivc.outVC

		// Send the flit: ejection to the local PE, otherwise on the link.
		if Port(op) == PortLocal {
			r.Activity.EjectFlits++
			r.net.stageEject(r.id, flit, cycle+1)
			// Ejection consumes at link rate: restore the credit
			// immediately so local output VCs never block on credits.
		} else {
			r.Activity.LinkFlits++
			ovc.credits--
			r.net.stageFlit(r.neighbor[op], Port(op).Opposite(), flit, cycle+1)
			if flit.Head {
				flit.Packet.Hops++
			}
		}

		// Return a credit upstream for the freed buffer slot.
		r.net.stageCredit(r, Port(ip), v, cycle+1)

		// Tail departure releases the input VC and the output VC.
		if flit.Tail {
			ovc.owner = -1
			ivc.stage = vcIdle
			ivc.outVC = -1
			r.nActive--
			// If the next packet's head is already buffered behind the
			// tail, restart the pipeline for it.
			if next := ivc.buf.Front(); next != nil {
				if !next.Head {
					panic("noc: flit following a tail is not a head")
				}
				ivc.stage = vcRouting
				ivc.readyCycle = cycle + 1
				r.nRouting++
			}
		}
	}
}

// step runs one cycle of the router pipeline. Delivery of staged flits and
// credits has already happened for this cycle. Empty stages are skipped
// via the population counters.
func (r *Router) step(cycle int64) {
	if r.nRouting > 0 {
		r.stageRC(cycle)
	}
	if r.nWaitVC > 0 {
		r.stageVA(cycle)
	}
	if r.nActive > 0 {
		r.stageSA(cycle)
	}
}

// occupancy returns the total number of flits buffered in the router.
func (r *Router) occupancy() int {
	n := 0
	for p := 0; p < NumPorts; p++ {
		for v := range r.in[p] {
			n += r.in[p][v].buf.Len()
		}
	}
	return n
}

// checkInvariants panics if credit accounting is inconsistent; used by
// tests via Network.CheckInvariants.
func (r *Router) checkInvariants() {
	cfg := &r.net.cfg
	var nR, nW, nA int
	for p := 0; p < NumPorts; p++ {
		for v := range r.in[p] {
			switch r.in[p][v].stage {
			case vcRouting:
				nR++
			case vcWaitVC:
				nW++
			case vcActive:
				nA++
			}
		}
	}
	if nR != r.nRouting || nW != r.nWaitVC || nA != r.nActive {
		panic("noc: stage population counters out of sync")
	}
	for p := 0; p < NumPorts; p++ {
		for v := range r.out[p] {
			ovc := &r.out[p][v]
			if ovc.credits < 0 || ovc.credits > cfg.BufDepth {
				panic("noc: output VC credits out of range")
			}
		}
		for v := range r.in[p] {
			ivc := &r.in[p][v]
			if ivc.stage == vcIdle && ivc.buf.Len() != 0 {
				panic("noc: idle input VC holds flits")
			}
		}
	}
}
