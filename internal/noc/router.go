package noc

import "math/bits"

// vcStage is the pipeline state of an input virtual channel.
type vcStage uint8

const (
	// vcIdle: no packet occupies the VC.
	vcIdle vcStage = iota
	// vcRouting: a head flit is at the front and awaits route computation.
	vcRouting
	// vcWaitVC: route computed, waiting for a downstream VC grant.
	vcWaitVC
	// vcActive: output VC allocated, flits compete for the switch.
	vcActive
)

// Router is one input-queued virtual-channel router of the mesh.
//
// The per-VC pipeline state is held in struct-of-arrays form, flattened to
// flat index port*VCs+vc: the allocators scan the stage bytes of all VCs
// every active cycle, and keeping them contiguous (40 bytes for the default
// 5-port, 8-VC router — a single cache line) instead of strided through a
// per-VC struct is the difference between a scan that lives in L1 and one
// that misses on every port.
type Router struct {
	id   NodeID
	x, y int
	net  *Network
	vcs  int // cached Config.VCs

	// Input VC state, indexed by flat VC (port*VCs+vc).
	inStage []vcStage // pipeline stage
	inReady []int64   // earliest cycle for the next pipeline step
	inPort  []int32   // routed output port (valid from vcWaitVC onwards)
	inVC    []int32   // allocated downstream VC (valid in vcActive)
	inBuf   []flitRing

	// Output VC state, indexed by flat VC (port*VCs+vc).
	outOwner []int32 // owning flat input VC, -1 when free
	// outCredits is the number of free slots in the downstream input
	// buffer. Ejection (local) output VCs are replenished implicitly: the
	// PE consumes flits at link rate, so credits are pinned at BufDepth.
	outCredits []int32

	// neighbor[port] is the adjacent router reached through port, or nil
	// at mesh edges and for PortLocal.
	neighbor [NumPorts]*Router

	// Round-robin priority pointers for the allocators.
	vaPri    [NumPorts]int // per output port, rotates over flat input VC index
	saInPri  [NumPorts]int // per input port, rotates over its VCs
	saOutPri [NumPorts]int // per output port, rotates over input ports

	// Scratch space reused every cycle by the allocators; all of it is
	// allocated once in newRouter so the steady-state pipeline never
	// touches the heap.
	vaReq   [NumPorts][]int32 // requester flat input VC indices per output port
	vaFree  []int32           // free output VC list, reused per output port
	vaIsReq []bool            // per flat input VC: requesting the current port
	// saInWin[p] is the winning VC of the SA input phase for input port p;
	// it is only valid for ports present in the current cycle's request
	// masks, so it needs no per-cycle reset.
	saInWin [NumPorts]int

	// Stage population counters let step skip empty pipeline stages; they
	// are pure accounting and carry no semantics beyond "how many input
	// VCs are currently in each stage".
	nRouting int
	nWaitVC  int
	nActive  int
	// Per-input-port stage occupancy bitmasks (bit v set when VC v of the
	// port is in that stage), so the stage loops iterate set bits instead
	// of scanning every VC. Config.Validate caps VCs at 64 to keep these
	// in a single word.
	routingMask [NumPorts]uint64
	waitMask    [NumPorts]uint64
	activeMask  [NumPorts]uint64

	// buffered is the total number of flits held in input VC buffers;
	// it makes occupancy O(1) for the quiescence check.
	buffered int

	// active reports whether the router is on the network's work list.
	active bool

	// Activity is the per-router event accumulator for power estimation.
	Activity RouterActivity
}

// ID returns the router's node id.
func (r *Router) ID() NodeID { return r.id }

func newRouter(net *Network, id NodeID) *Router {
	cfg := &net.cfg
	r := &Router{id: id, net: net, vcs: cfg.VCs}
	r.x, r.y = cfg.Coord(id)
	total := NumPorts * cfg.VCs
	r.inStage = make([]vcStage, total)
	r.inReady = make([]int64, total)
	r.inPort = make([]int32, total)
	r.inVC = make([]int32, total)
	r.inBuf = make([]flitRing, total)
	r.outOwner = make([]int32, total)
	r.outCredits = make([]int32, total)
	for i := 0; i < total; i++ {
		r.inBuf[i] = newFlitRing(cfg.BufDepth)
		r.outOwner[i] = -1
		r.outCredits[i] = int32(cfg.BufDepth)
	}
	for p := 0; p < NumPorts; p++ {
		r.vaReq[p] = make([]int32, 0, total)
	}
	r.vaFree = make([]int32, 0, cfg.VCs)
	r.vaIsReq = make([]bool, total)
	return r
}

// hasWork reports whether the router holds any flits or any input VC in a
// non-idle pipeline stage; an idle router's step is a guaranteed no-op, so
// the network drops it from the active work list.
func (r *Router) hasWork() bool {
	return r.buffered > 0 || r.nRouting+r.nWaitVC+r.nActive > 0
}

// acceptFlit is called by the network's delivery phase when a flit arrives
// on an input port (from a neighbouring router's link or from the local
// injection source).
func (r *Router) acceptFlit(p Port, f *Flit, cycle int64) {
	i := int(p)*r.vcs + f.VC
	wasEmpty := r.inBuf[i].Len() == 0
	r.inBuf[i].Push(f)
	r.buffered++
	r.Activity.BufWrites++
	if p == PortLocal {
		r.Activity.InjectFlits++
	}
	// A head flit arriving at the front of an idle VC starts the pipeline
	// on the next cycle.
	if wasEmpty && r.inStage[i] == vcIdle {
		if !f.Head {
			panic("noc: body flit arrived at idle VC without a head")
		}
		r.inStage[i] = vcRouting
		r.inReady[i] = cycle + 1
		r.nRouting++
		r.routingMask[p] |= 1 << uint(f.VC)
	}
	if !r.active {
		r.net.activateRouter(r)
	}
}

// acceptCredit is called by the delivery phase when a credit returns for
// output port p, virtual channel vc.
func (r *Router) acceptCredit(p Port, vc int) {
	i := int(p)*r.vcs + vc
	r.outCredits[i]++
	if r.outCredits[i] > int32(r.net.cfg.BufDepth) {
		panic("noc: credit overflow (more credits than buffer slots)")
	}
}

// stageRC performs route computation for all input VCs that are ready.
func (r *Router) stageRC(cycle int64) {
	cfg := &r.net.cfg
	for p := 0; p < NumPorts; p++ {
		base := p * r.vcs
		for m := r.routingMask[p]; m != 0; m &= m - 1 {
			v := bits.TrailingZeros64(m)
			i := base + v
			if r.inReady[i] > cycle {
				continue
			}
			head := r.inBuf[i].Front()
			if head == nil {
				continue // head flit not yet buffered
			}
			r.inPort[i] = int32(RoutePort(cfg, r.id, head.Packet))
			r.inStage[i] = vcWaitVC
			r.inReady[i] = cycle + 1
			r.nRouting--
			r.nWaitVC++
			r.routingMask[p] &^= 1 << uint(v)
			r.waitMask[p] |= 1 << uint(v)
		}
	}
}

// stageVA performs separable input-first round-robin VC allocation: each
// waiting input VC requests its routed output port; each output port grants
// its free VCs to requesters in round-robin order.
func (r *Router) stageVA(cycle int64) {
	vcs := r.vcs
	for p := range r.vaReq {
		r.vaReq[p] = r.vaReq[p][:0]
	}
	anyReq := false
	for p := 0; p < NumPorts; p++ {
		base := p * vcs
		for m := r.waitMask[p]; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			if r.inReady[i] > cycle {
				continue
			}
			r.vaReq[r.inPort[i]] = append(r.vaReq[r.inPort[i]], int32(i))
			anyReq = true
		}
	}
	if !anyReq {
		return
	}
	total := NumPorts * vcs
	for op := 0; op < NumPorts; op++ {
		reqs := r.vaReq[op]
		if len(reqs) == 0 {
			continue
		}
		// Free output VCs in index order.
		free := r.vaFree[:0]
		obase := op * vcs
		for ov := 0; ov < vcs; ov++ {
			if r.outOwner[obase+ov] < 0 {
				free = append(free, int32(ov))
			}
		}
		if len(free) == 0 {
			continue
		}
		// Requesters in round-robin order starting at the priority pointer.
		// vaIsReq turns the inner requester match into an O(1) lookup while
		// preserving the exact grant order of a linear scan.
		for _, req := range reqs {
			r.vaIsReq[req] = true
		}
		granted := 0
		pri := r.vaPri[op]
		for off := 0; off < total && granted < len(free); off++ {
			want := pri + off
			if want >= total {
				want -= total
			}
			if !r.vaIsReq[want] {
				continue
			}
			r.vaIsReq[want] = false
			ip := want / vcs
			iv := want - ip*vcs
			ov := free[granted]
			granted++
			r.outOwner[obase+int(ov)] = int32(want)
			r.inVC[want] = ov
			r.inStage[want] = vcActive
			r.inReady[want] = cycle + 1
			r.nWaitVC--
			r.nActive++
			r.waitMask[ip] &^= 1 << uint(iv)
			r.activeMask[ip] |= 1 << uint(iv)
			r.Activity.VCAllocs++
			r.vaPri[op] = want + 1
			if r.vaPri[op] >= total {
				r.vaPri[op] = 0
			}
		}
		for _, req := range reqs {
			r.vaIsReq[req] = false
		}
	}
}

// stageSA performs two-phase round-robin switch allocation and, for the
// winners, switch traversal: the flit is dequeued, sent on the output link
// (arriving downstream next cycle) and a credit is scheduled upstream.
func (r *Router) stageSA(cycle int64) {
	vcs := r.vcs
	// Input phase: each input port nominates one eligible VC and requests
	// its output port. Requests are collected as bitmasks (NumPorts ≤ 5
	// bits) so the output phase can resolve each grant with bit tricks
	// instead of a NumPorts×NumPorts scan.
	var reqOps uint32          // output ports with at least one requester
	var reqIn [NumPorts]uint32 // per output port: requesting input ports
	for p := 0; p < NumPorts; p++ {
		am := r.activeMask[p]
		if am == 0 {
			continue
		}
		// Rotate the active mask right by the round-robin pointer so that
		// trailing-zeros iteration visits VCs in priority order.
		pri := r.saInPri[p]
		rot := (am>>uint(pri) | am<<uint(vcs-pri)) & (uint64(1)<<uint(vcs) - 1)
		base := p * vcs
		for ; rot != 0; rot &= rot - 1 {
			v := pri + bits.TrailingZeros64(rot)
			if v >= vcs {
				v -= vcs
			}
			i := base + v
			if r.inReady[i] > cycle || r.inBuf[i].Len() == 0 {
				continue
			}
			out := int(r.inPort[i])
			if r.outCredits[out*vcs+int(r.inVC[i])] <= 0 {
				continue
			}
			r.saInWin[p] = v
			reqOps |= 1 << out
			reqIn[out] |= 1 << p
			break
		}
	}
	// Output phase + traversal, in ascending output-port order. Each
	// requested port grants the first requesting input port at or after
	// its round-robin pointer: rotating the request mask right by the
	// pointer makes that a single trailing-zeros count.
	for ; reqOps != 0; reqOps &= reqOps - 1 {
		op := bits.TrailingZeros32(reqOps)
		pri := r.saOutPri[op]
		m := reqIn[op]
		rot := (m>>pri | m<<(NumPorts-pri)) & (1<<NumPorts - 1)
		ip := pri + bits.TrailingZeros32(rot)
		if ip >= NumPorts {
			ip -= NumPorts
		}
		v := r.saInWin[ip]
		i := ip*vcs + v
		flit := r.inBuf[i].Pop()
		r.buffered--
		r.Activity.BufReads++
		r.Activity.XbarTraversals++
		r.Activity.SAAllocs++
		r.saInPri[ip] = v + 1
		if r.saInPri[ip] >= vcs {
			r.saInPri[ip] = 0
		}
		r.saOutPri[op] = ip + 1
		if r.saOutPri[op] >= NumPorts {
			r.saOutPri[op] = 0
		}

		outVC := int(r.inVC[i])
		o := op*vcs + outVC
		flit.VC = outVC

		// Send the flit: ejection to the local PE, otherwise on the link.
		if Port(op) == PortLocal {
			r.Activity.EjectFlits++
			r.net.stageEject(r.id, flit, cycle+1)
			// Ejection consumes at link rate: restore the credit
			// immediately so local output VCs never block on credits.
		} else {
			r.Activity.LinkFlits++
			r.outCredits[o]--
			r.net.stageFlit(r.neighbor[op], Port(op).Opposite(), flit, cycle+1)
			if flit.Head {
				flit.Packet.Hops++
			}
		}

		// Return a credit upstream for the freed buffer slot.
		r.net.stageCredit(r, Port(ip), v, cycle+1)

		// Tail departure releases the input VC and the output VC.
		if flit.Tail {
			r.outOwner[o] = -1
			r.inStage[i] = vcIdle
			r.inVC[i] = -1
			r.nActive--
			r.activeMask[ip] &^= 1 << uint(v)
			// If the next packet's head is already buffered behind the
			// tail, restart the pipeline for it.
			if next := r.inBuf[i].Front(); next != nil {
				if !next.Head {
					panic("noc: flit following a tail is not a head")
				}
				r.inStage[i] = vcRouting
				r.inReady[i] = cycle + 1
				r.nRouting++
				r.routingMask[ip] |= 1 << uint(v)
			}
		}
	}
}

// step runs one cycle of the router pipeline. Delivery of staged flits and
// credits has already happened for this cycle. Empty stages are skipped
// via the population counters.
func (r *Router) step(cycle int64) {
	if r.nRouting > 0 {
		r.stageRC(cycle)
	}
	if r.nWaitVC > 0 {
		r.stageVA(cycle)
	}
	if r.nActive > 0 {
		r.stageSA(cycle)
	}
}

// occupancy returns the total number of flits buffered in the router.
func (r *Router) occupancy() int { return r.buffered }

// checkInvariants panics if credit accounting is inconsistent; used by
// tests via Network.CheckInvariants.
func (r *Router) checkInvariants() {
	cfg := &r.net.cfg
	var nR, nW, nA int
	var mR, mW, mA [NumPorts]uint64
	buffered := 0
	for p := 0; p < NumPorts; p++ {
		for v := 0; v < r.vcs; v++ {
			i := p*r.vcs + v
			buffered += r.inBuf[i].Len()
			switch r.inStage[i] {
			case vcRouting:
				nR++
				mR[p] |= 1 << uint(v)
			case vcWaitVC:
				nW++
				mW[p] |= 1 << uint(v)
			case vcActive:
				nA++
				mA[p] |= 1 << uint(v)
			}
		}
	}
	if nR != r.nRouting || nW != r.nWaitVC || nA != r.nActive {
		panic("noc: stage population counters out of sync")
	}
	if mR != r.routingMask || mW != r.waitMask || mA != r.activeMask {
		panic("noc: per-port stage occupancy masks out of sync")
	}
	if buffered != r.buffered {
		panic("noc: buffered flit counter out of sync")
	}
	if r.hasWork() && !r.active {
		panic("noc: router with work is not on the active list")
	}
	for p := 0; p < NumPorts; p++ {
		for v := 0; v < r.vcs; v++ {
			i := p*r.vcs + v
			if r.outCredits[i] < 0 || r.outCredits[i] > int32(cfg.BufDepth) {
				panic("noc: output VC credits out of range")
			}
			if r.inStage[i] == vcIdle && r.inBuf[i].Len() != 0 {
				panic("noc: idle input VC holds flits")
			}
		}
	}
}
