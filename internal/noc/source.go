package noc

// source models the traffic injection port of one node: an unbounded
// source queue of generated packets feeding the router's local input port
// one flit per network cycle, with per-VC credit tracking. It mirrors
// Booksim's infinite source queue, so measured packet latency includes
// source-queue waiting time — essential for the latency blow-up at
// saturation that the RMSD policy exploits.
type source struct {
	node   NodeID
	queue  packetQueue
	router *Router
	band   *band

	// credits[v] counts free slots in the router's local input VC v.
	credits []int
	// outstanding[v] counts flits sent on VC v whose credits have not yet
	// returned; the VC can host a new packet only when it has fully
	// drained (outstanding == 0) after the tail was sent.
	outstanding []int
	// tailSent[v] reports whether the tail of the current packet on VC v
	// has been sent.
	tailSent []bool
	// busy[v] reports whether VC v is reserved by a (possibly draining)
	// packet.
	busy []bool

	// cur is the packet currently being serialized, if any.
	cur    *Packet
	curVC  int
	curSeq int

	rrVC int // round-robin pointer for VC selection

	// active reports membership in the band's active-source bitmask.
	active bool
}

// hasWork reports whether the source still owes the network flits: a
// packet mid-serialization or queued packets. A source without work is a
// guaranteed no-op in step, so the engine drops it from the active set
// (credit returns are delivered independently of step).
func (s *source) hasWork() bool { return s.cur != nil || s.queue.Len() > 0 }

func newSource(node NodeID, r *Router, cfg *Config) *source {
	s := &source{
		node:        node,
		router:      r,
		credits:     make([]int, cfg.VCs),
		outstanding: make([]int, cfg.VCs),
		tailSent:    make([]bool, cfg.VCs),
		busy:        make([]bool, cfg.VCs),
	}
	for v := range s.credits {
		s.credits[v] = cfg.BufDepth
		s.tailSent[v] = true
	}
	return s
}

// acceptCredit processes a credit returned by the router's local input port.
func (s *source) acceptCredit(vc int) {
	s.credits[vc]++
	s.outstanding[vc]--
	if s.outstanding[vc] < 0 {
		panic("noc: source credit underflow")
	}
	if s.busy[vc] && s.tailSent[vc] && s.outstanding[vc] == 0 {
		s.busy[vc] = false
	}
}

// step sends at most one flit into the router's local input port: the
// flit is written directly into the local VC's ring slot (the source is
// that slot's only writer this cycle) and the arrival notice is staged on
// the source's band for delivery next cycle. No credit rides along
// (credNode < 0): the source tracks its own credits and the router
// returns them through the link tables when the slot drains.
func (s *source) step(cycle int64, cfg *Config) {
	if s.cur == nil {
		s.startPacket(cycle, cfg)
	}
	if s.cur == nil {
		return
	}
	if s.credits[s.curVC] <= 0 {
		return
	}
	p := s.cur
	f := Flit{
		Packet: p,
		Seq:    int32(s.curSeq),
		Head:   s.curSeq == 0,
		Tail:   s.curSeq == p.Size-1,
		VC:     int8(s.curVC),
	}
	s.credits[s.curVC]--
	s.outstanding[s.curVC]++
	r := s.router
	g := (int(s.node)*NumPorts+int(PortLocal))*r.vcs + s.curVC
	dst := &r.net.vc[g]
	slot := int(dst.wrHead)
	r.net.bufs[g*r.depth+slot] = f
	if slot++; slot == r.depth {
		slot = 0
	}
	dst.wrHead = uint8(slot)
	b := s.band
	b.stagedLinks = append(b.stagedLinks, makeLinkEvent(int32(s.node), int8(PortLocal), int8(s.curVC), -1, 0, 0))
	b.flitsInjected++
	if f.Head {
		p.InjectCycle = cycle
	}
	s.curSeq++
	if f.Tail {
		s.tailSent[s.curVC] = true
		s.cur = nil
	}
}

// startPacket pops the next queued packet and reserves a free local VC for
// it, if one is available.
func (s *source) startPacket(cycle int64, cfg *Config) {
	if s.queue.Len() == 0 {
		return
	}
	for off := 0; off < cfg.VCs; off++ {
		v := (s.rrVC + off) % cfg.VCs
		if s.busy[v] {
			continue
		}
		s.rrVC = (v + 1) % cfg.VCs
		s.cur = s.queue.Pop()
		s.curVC = v
		s.curSeq = 0
		s.busy[v] = true
		s.tailSent[v] = false
		return
	}
}

// pendingFlits returns the number of flits still owed to the network:
// queued packets plus the unsent remainder of the current packet.
func (s *source) pendingFlits(cfg *Config) int64 {
	n := int64(s.queue.Len()) * int64(cfg.PacketSize)
	if s.cur != nil {
		n += int64(s.cur.Size - s.curSeq)
	}
	return n
}
