package noc

// RouterActivity accumulates per-router switching-event counts over a
// simulation. These counts are the inputs to the power model (package
// power), mirroring the paper's flow of importing Booksim activity traces
// into the Synopsys power estimator (Sec. IV-A).
type RouterActivity struct {
	// BufWrites counts flits written into input VC buffers.
	BufWrites int64
	// BufReads counts flits read out of input VC buffers.
	BufReads int64
	// XbarTraversals counts flits crossing the switch (ST stage).
	XbarTraversals int64
	// VCAllocs counts successful virtual-channel allocation grants.
	VCAllocs int64
	// SAAllocs counts successful switch allocation grants.
	SAAllocs int64
	// LinkFlits counts flits sent on router-to-router output links.
	LinkFlits int64
	// EjectFlits counts flits delivered to the local ejection port.
	EjectFlits int64
	// InjectFlits counts flits received on the local injection port.
	InjectFlits int64
}

// Add accumulates other into a.
func (a *RouterActivity) Add(other RouterActivity) {
	a.BufWrites += other.BufWrites
	a.BufReads += other.BufReads
	a.XbarTraversals += other.XbarTraversals
	a.VCAllocs += other.VCAllocs
	a.SAAllocs += other.SAAllocs
	a.LinkFlits += other.LinkFlits
	a.EjectFlits += other.EjectFlits
	a.InjectFlits += other.InjectFlits
}

// Sub returns a minus other, used to compute per-window activity deltas.
func (a RouterActivity) Sub(other RouterActivity) RouterActivity {
	return RouterActivity{
		BufWrites:      a.BufWrites - other.BufWrites,
		BufReads:       a.BufReads - other.BufReads,
		XbarTraversals: a.XbarTraversals - other.XbarTraversals,
		VCAllocs:       a.VCAllocs - other.VCAllocs,
		SAAllocs:       a.SAAllocs - other.SAAllocs,
		LinkFlits:      a.LinkFlits - other.LinkFlits,
		EjectFlits:     a.EjectFlits - other.EjectFlits,
		InjectFlits:    a.InjectFlits - other.InjectFlits,
	}
}

// NetworkActivity is the aggregate of all router activities plus cycle
// bookkeeping for clock-tree power.
type NetworkActivity struct {
	RouterActivity
	// Cycles is the number of network clock cycles elapsed.
	Cycles int64
}
