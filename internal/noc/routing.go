package noc

// routeDOR computes the output port for a packet at node cur heading to dst
// using dimension-ordered routing. When yFirst is false the X offset is
// consumed first (XY routing); when true the Y offset is consumed first.
// A packet at its destination routes to the local (ejection) port.
func routeDOR(cfg *Config, cur, dst NodeID, yFirst bool) Port {
	cx, cy := cfg.Coord(cur)
	dx, dy := cfg.Coord(dst)
	if yFirst {
		switch {
		case dy > cy:
			return PortSouth
		case dy < cy:
			return PortNorth
		case dx > cx:
			return PortEast
		case dx < cx:
			return PortWest
		}
		return PortLocal
	}
	switch {
	case dx > cx:
		return PortEast
	case dx < cx:
		return PortWest
	case dy > cy:
		return PortSouth
	case dy < cy:
		return PortNorth
	}
	return PortLocal
}

// RoutePort returns the output port a packet takes at node cur. The
// packet's DimOrder field selects between XY and YX when the configured
// algorithm is O1TURN; for plain XY or YX the configuration wins.
func RoutePort(cfg *Config, cur NodeID, p *Packet) Port {
	switch cfg.Routing {
	case RoutingYX:
		return routeDOR(cfg, cur, p.Dst, true)
	case RoutingO1TURN:
		return routeDOR(cfg, cur, p.Dst, p.DimOrder == 1)
	default:
		return routeDOR(cfg, cur, p.Dst, false)
	}
}

// PathLength returns the number of router-to-router hops a packet travels
// between src and dst under any minimal dimension-ordered route (both XY
// and YX are minimal on a mesh, so the length is the Manhattan distance).
func PathLength(cfg *Config, src, dst NodeID) int {
	return cfg.Distance(src, dst)
}

// RouteTrace returns the ordered list of nodes visited by a packet from src
// to dst under the given dimension order (yFirst selects YX). The trace
// includes both endpoints. It is primarily a testing and analysis aid.
func RouteTrace(cfg *Config, src, dst NodeID, yFirst bool) []NodeID {
	trace := []NodeID{src}
	cur := src
	for cur != dst {
		p := routeDOR(cfg, cur, dst, yFirst)
		dx, dy := p.delta()
		x, y := cfg.Coord(cur)
		cur = cfg.Node(x+dx, y+dy)
		trace = append(trace, cur)
	}
	return trace
}
