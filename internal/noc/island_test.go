package noc

import "testing"

func TestValidateIslandsRejects(t *testing.T) {
	cfg := DefaultConfig()
	cases := map[string][]Island{
		"empty rect":   {{X0: 3, Y0: 3, X1: 2, Y1: 3, Speed: 0.5}},
		"outside mesh": {{X0: 0, Y0: 0, X1: 9, Y1: 9, Speed: 0.5}},
		"negative":     {{X0: -1, Y0: 0, X1: 1, Y1: 1, Speed: 0.5}},
		"zero speed":   {{X0: 0, Y0: 0, X1: 1, Y1: 1}},
		"fast island":  {{X0: 0, Y0: 0, X1: 1, Y1: 1, Speed: 1.5}},
	}
	for name, islands := range cases {
		if err := ValidateIslands(cfg, islands); err == nil {
			t.Errorf("%s: ValidateIslands accepted %+v", name, islands)
		}
	}
	ok := []Island{{X0: 0, Y0: 0, X1: 4, Y1: 4, Speed: 1}, {X0: 2, Y0: 2, X1: 3, Y1: 3, Speed: 0.25}}
	if err := ValidateIslands(cfg, ok); err != nil {
		t.Errorf("valid islands rejected: %v", err)
	}
}

// TestIslandSlowsDelivery: a packet crossing a half-speed island takes
// substantially longer than on a uniform mesh. The slowdown is less than
// the full 2x because staged link events still land on stalled cycles
// (the input-latch model): only pipeline stages and injection stall.
func TestIslandSlowsDelivery(t *testing.T) {
	latency := func(islands []Island) int64 {
		net, err := NewNetwork(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		if err := net.SetIslands(islands); err != nil {
			t.Fatal(err)
		}
		var arrive int64 = -1
		net.OnArrive = func(p *Packet, cycle int64) { arrive = cycle }
		net.NewPacket(0, 24, 0, 0)
		for i := 0; i < 10_000 && arrive < 0; i++ {
			net.Step()
		}
		if arrive < 0 {
			t.Fatal("packet never arrived")
		}
		return arrive
	}
	full := latency(nil)
	half := latency([]Island{{X0: 0, Y0: 0, X1: 4, Y1: 4, Speed: 0.5}})
	if half < full*3/2 || half > full*5/2 {
		t.Errorf("half-speed island latency %d, full-speed %d (want 1.5x-2.5x)", half, full)
	}
}

// TestIslandOverlapLaterWins: the later island in the list owns the
// overlapping routers.
func TestIslandOverlapLaterWins(t *testing.T) {
	net, err := NewNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	err = net.SetIslands([]Island{
		{X0: 0, Y0: 0, X1: 4, Y1: 4, Speed: 0.5},
		{X0: 2, Y0: 2, X1: 2, Y1: 2, Speed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	center := DefaultConfig().Node(2, 2)
	if got := net.islandOf[center]; got != 1 {
		t.Errorf("overlapped node %d assigned to island %d, want 1", center, got)
	}
	if got := net.islandOf[0]; got != 0 {
		t.Errorf("corner node assigned to island %d, want 0", got)
	}
	if got := net.Islands(); len(got) != 2 {
		t.Errorf("Islands() returned %d, want 2", len(got))
	}
}

// TestIslandsMatchAcrossEngines locks determinism for clock-gated
// regions: the naive loop, the stage-major fast path and banded step
// workers must agree bit for bit when part of the mesh is stalled.
func TestIslandsMatchAcrossEngines(t *testing.T) {
	islands := []Island{
		{X0: 0, Y0: 0, X1: 1, Y1: 4, Speed: 0.5},
		{X0: 3, Y0: 0, X1: 4, Y1: 2, Speed: 0.3},
	}
	run := func(skip bool, workers int) ([][2]int64, [4]int64, []RouterActivity) {
		net, err := NewNetwork(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		if err := net.SetIslands(islands); err != nil {
			t.Fatal(err)
		}
		net.SetSkipAhead(skip)
		if workers > 1 {
			net.SetStepWorkers(workers)
		}
		var arr [][2]int64
		net.OnArrive = func(p *Packet, cycle int64) {
			arr = append(arr, [2]int64{p.ID, cycle})
		}
		stepTraffic(net, 600, 3)
		stepTraffic(net, 300, 0)
		stepTraffic(net, 400, 5)
		if !net.Drain(50_000) {
			t.Fatal("traffic did not drain")
		}
		net.CheckInvariants()
		q, a, i, e := net.Stats()
		return arr, [4]int64{q, a, i, e}, net.RouterActivities()
	}
	refArr, refStats, refAct := run(true, 1)
	for _, v := range []struct {
		name    string
		skip    bool
		workers int
	}{{"naive", false, 1}, {"workers3", true, 3}, {"workers25", true, 25}} {
		arr, stats, act := run(v.skip, v.workers)
		if stats != refStats {
			t.Errorf("%s: counters diverge: %v vs %v", v.name, stats, refStats)
		}
		if len(arr) != len(refArr) {
			t.Fatalf("%s: arrival counts diverge: %d vs %d", v.name, len(arr), len(refArr))
		}
		for i := range arr {
			if arr[i] != refArr[i] {
				t.Fatalf("%s: arrival %d diverges: %v vs %v", v.name, i, arr[i], refArr[i])
			}
		}
		for id := range act {
			if act[id] != refAct[id] {
				t.Errorf("%s: router %d activity diverges", v.name, id)
			}
		}
	}
}
