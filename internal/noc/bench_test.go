package noc

import (
	"math/rand"
	"testing"
)

// benchStep measures Network.Step cost at a given packet-generation
// probability per node per cycle.
func benchStep(b *testing.B, pktProb float64) {
	cfg := DefaultConfig()
	n, _ := NewNetwork(cfg)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < cfg.Nodes(); s++ {
			if rng.Float64() < pktProb {
				d := s
				for d == s {
					d = rng.Intn(cfg.Nodes())
				}
				n.NewPacket(NodeID(s), NodeID(d), 0, 0)
			}
		}
		n.Step()
	}
}

func BenchmarkNetworkStepIdle(b *testing.B)     { benchStep(b, 0) }
func BenchmarkNetworkStepLight(b *testing.B)    { benchStep(b, 0.002) } // ~0.04 flits/node/cycle
func BenchmarkNetworkStepModerate(b *testing.B) { benchStep(b, 0.01) }  // ~0.2 flits/node/cycle
func BenchmarkNetworkStepHeavy(b *testing.B)    { benchStep(b, 0.02) }  // ~0.4 flits/node/cycle
