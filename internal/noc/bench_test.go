package noc

import (
	"math/rand"
	"testing"
)

// benchStep measures Network.Step cost at a given packet-generation
// probability per node per cycle. naive disables the skip-ahead and
// active-list fast paths, so the *Naive variants quantify their win.
func benchStep(b *testing.B, pktProb float64, naive bool) {
	cfg := DefaultConfig()
	n, _ := NewNetwork(cfg)
	n.SetSkipAhead(!naive)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < cfg.Nodes(); s++ {
			if rng.Float64() < pktProb {
				d := s
				for d == s {
					d = rng.Intn(cfg.Nodes())
				}
				n.NewPacket(NodeID(s), NodeID(d), 0, 0)
			}
		}
		n.Step()
	}
}

func BenchmarkNetworkStepIdle(b *testing.B)     { benchStep(b, 0, false) }
func BenchmarkNetworkStepLight(b *testing.B)    { benchStep(b, 0.002, false) } // ~0.04 flits/node/cycle
func BenchmarkNetworkStepModerate(b *testing.B) { benchStep(b, 0.01, false) }  // ~0.2 flits/node/cycle
func BenchmarkNetworkStepHeavy(b *testing.B)    { benchStep(b, 0.02, false) }  // ~0.4 flits/node/cycle

// Naive variants: every router and source stepped every cycle, no
// quiescent skip. The Idle pair is the headline skip-ahead comparison.
func BenchmarkNetworkStepIdleNaive(b *testing.B)     { benchStep(b, 0, true) }
func BenchmarkNetworkStepModerateNaive(b *testing.B) { benchStep(b, 0.01, true) }
