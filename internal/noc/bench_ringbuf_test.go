package noc

import "testing"

// BenchmarkPacketQueue measures the unbounded source queue in its
// steady-state push/pop regime (including the amortized compaction).
func BenchmarkPacketQueue(b *testing.B) {
	var q packetQueue
	p := &Packet{}
	for i := 0; i < 8; i++ {
		q.Push(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(p)
		q.Pop()
	}
}
