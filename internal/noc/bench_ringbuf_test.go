package noc

import "testing"

// BenchmarkFlitRingPushPop measures the VC buffer FIFO at typical depth.
func BenchmarkFlitRingPushPop(b *testing.B) {
	r := newFlitRing(4)
	f := &Flit{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(f)
		r.Push(f)
		r.Pop()
		r.Pop()
	}
}

// BenchmarkFlitRingFrontLen measures the read-only accessors the switch
// allocator hits every eligibility check.
func BenchmarkFlitRingFrontLen(b *testing.B) {
	r := newFlitRing(4)
	r.Push(&Flit{})
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += r.Len()
		if r.Front() != nil {
			sink++
		}
	}
	_ = sink
}

// BenchmarkPacketQueue measures the unbounded source queue in its
// steady-state push/pop regime (including the amortized compaction).
func BenchmarkPacketQueue(b *testing.B) {
	var q packetQueue
	p := &Packet{}
	for i := 0; i < 8; i++ {
		q.Push(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(p)
		q.Pop()
	}
}
