package noc

import (
	"math/rand"
	"testing"
)

// stepN advances the network n cycles.
func stepN(n *Network, cycles int) {
	for i := 0; i < cycles; i++ {
		n.Step()
	}
}

func TestWormholeFlitsStayContiguousPerVC(t *testing.T) {
	// With a single VC, flits of different packets must never interleave
	// on a link: every body flit follows its own head. The router panics
	// on violations (body-without-head, non-head behind tail), so heavy
	// random traffic passing cleanly is the assertion.
	cfg := DefaultConfig()
	cfg.VCs = 1
	cfg.BufDepth = 2
	cfg.PacketSize = 5
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for c := 0; c < 4000; c++ {
		for s := 0; s < cfg.Nodes(); s++ {
			if rng.Float64() < 0.02 {
				d := s
				for d == s {
					d = rng.Intn(cfg.Nodes())
				}
				net.NewPacket(NodeID(s), NodeID(d), 0, 0)
			}
		}
		net.Step()
		if c%128 == 0 {
			net.CheckInvariants()
		}
	}
	if !net.Drain(100000) {
		t.Fatal("failed to drain")
	}
}

func TestHeadOfLineBlockingRelievedByVCs(t *testing.T) {
	// Construct interference: a long stream 0->4 (east row) competes with
	// a stream 20->24 that shares no channel, plus a crossing stream
	// 2->22. More VCs must never *hurt* the crossing stream's mean
	// latency, and typically help. Use deterministic comparison between
	// VCs=1 and VCs=4.
	meanLatency := func(vcs int) float64 {
		cfg := DefaultConfig()
		cfg.VCs = vcs
		cfg.PacketSize = 8
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum, n int64
		net.OnArrive = func(p *Packet, cycle int64) {
			if p.Src == 2 && p.Dst == 22 {
				sum += p.ArriveCycle - p.CreateCycle
				n++
			}
		}
		rng := rand.New(rand.NewSource(33))
		for c := 0; c < 8000; c++ {
			if rng.Float64() < 0.10 {
				net.NewPacket(0, 4, 0, 0)
			}
			if rng.Float64() < 0.10 {
				net.NewPacket(20, 24, 0, 0)
			}
			if rng.Float64() < 0.05 {
				net.NewPacket(2, 22, 0, 0)
			}
			net.Step()
		}
		if n == 0 {
			t.Fatal("no crossing packets arrived")
		}
		return float64(sum) / float64(n)
	}
	l1 := meanLatency(1)
	l4 := meanLatency(4)
	if l4 > l1*1.25 {
		t.Errorf("4-VC crossing latency %.1f much worse than 1-VC %.1f", l4, l1)
	}
}

func TestSwitchAllocatorSharesOutputFairly(t *testing.T) {
	// Two sources (west and north neighbours) stream packets through one
	// router towards the same ejection-adjacent path; round-robin SA must
	// give each a comparable share of deliveries.
	cfg := DefaultConfig()
	cfg.PacketSize = 4
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[NodeID]int{}
	net.OnArrive = func(p *Packet, cycle int64) { counts[p.Src]++ }
	// Saturating streams 10->14 and 2->14... both cross router 12 region.
	// Use 11->14 (east) and 13->14? 13 is adjacent. Take 10->14 (east
	// along row 2) and 2->14? (2,0)->(4,2): XY goes east to x=4 then
	// south — uses different row. Instead: 10->14 and 12->14 share the
	// east channel out of router 12.
	for c := 0; c < 6000; c++ {
		if c%4 == 0 {
			net.NewPacket(10, 14, 0, 0)
			net.NewPacket(12, 14, 0, 0)
		}
		net.Step()
	}
	a, b := counts[10], counts[12]
	if a == 0 || b == 0 {
		t.Fatalf("one source starved: %d vs %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("unfair sharing: %d vs %d packets (ratio %.2f)", a, b, ratio)
	}
}

func TestCreditsLimitInFlightFlits(t *testing.T) {
	// With BufDepth=1 and a single VC, at most one flit can occupy each
	// input buffer; the network must still deliver (slowly) and never
	// panic on credit violations.
	cfg := DefaultConfig()
	cfg.VCs = 1
	cfg.BufDepth = 1
	cfg.PacketSize = 3
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		net.NewPacket(0, 24, 0, 0)
	}
	arrived := 0
	net.OnArrive = func(p *Packet, cycle int64) { arrived++ }
	stepN(net, 2000)
	net.CheckInvariants()
	if arrived != 5 {
		t.Errorf("arrived %d/5 with minimal buffering", arrived)
	}
}

func TestBackpressurePropagatesToSource(t *testing.T) {
	// Eject-side congestion: many sources target one node; its ejection
	// port delivers at most one flit per cycle, so sustained aggregate
	// input above 1 flit/cycle must queue at the sources.
	cfg := DefaultConfig()
	cfg.PacketSize = 10
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 8000; c++ {
		for s := 0; s < cfg.Nodes(); s++ {
			// Aggregate offered to node 12: 24 nodes x 0.01 packets x 10
			// flits = 2.4 flits/cycle >> 1.
			if s != 12 && rng.Float64() < 0.01 {
				net.NewPacket(NodeID(s), 12, 0, 0)
			}
		}
		net.Step()
	}
	if backlog := net.SourceBacklog(); backlog < 50 {
		t.Errorf("hotspot backlog %d, expected heavy queueing", backlog)
	}
	// The ejection port delivered at most one flit per cycle.
	act := net.Router(12).Activity
	if act.EjectFlits > net.Cycle() {
		t.Errorf("node 12 ejected %d flits in %d cycles", act.EjectFlits, net.Cycle())
	}
}

func TestVCAllocationReleasedOnTail(t *testing.T) {
	// After a packet fully drains, every output VC must be free again.
	cfg := DefaultConfig()
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.NewPacket(0, 24, 0, 0)
	net.NewPacket(24, 0, 0, 0)
	if !net.Drain(5000) {
		t.Fatal("drain failed")
	}
	for id := 0; id < cfg.Nodes(); id++ {
		r := net.Router(NodeID(id))
		for p := 0; p < NumPorts; p++ {
			for v := 0; v < cfg.VCs; v++ {
				o := r.outState[p*cfg.VCs+v]
				if o.owner != -1 {
					t.Fatalf("router %d out[%d][%d] still owned after drain", id, p, v)
				}
				if o.credits != int32(cfg.BufDepth) {
					t.Fatalf("router %d out[%d][%d] credits %d != %d after drain",
						id, p, v, o.credits, cfg.BufDepth)
				}
			}
		}
		if r.nRouting != 0 || r.nWaitVC != 0 || r.nActive != 0 {
			t.Fatalf("router %d stage counters nonzero after drain", id)
		}
	}
}

func TestMinimalMeshTwoNodes(t *testing.T) {
	cfg := Config{Width: 2, Height: 1, VCs: 2, BufDepth: 2, PacketSize: 3, Routing: RoutingXY}
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arrived := 0
	net.OnArrive = func(p *Packet, cycle int64) { arrived++ }
	net.NewPacket(0, 1, 0, 0)
	net.NewPacket(1, 0, 0, 0)
	stepN(net, 200)
	if arrived != 2 {
		t.Errorf("arrived %d/2 on 2-node mesh", arrived)
	}
}

func TestDeadlockFreedomUnderSustainedSaturation(t *testing.T) {
	// Dimension-ordered routing on a mesh is deadlock-free; under deep
	// saturation the network must keep making forward progress (flits
	// keep ejecting) rather than wedging.
	cfg := DefaultConfig()
	cfg.VCs = 1 // hardest case
	cfg.BufDepth = 1
	cfg.PacketSize = 4
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var lastEjected int64
	for epoch := 0; epoch < 20; epoch++ {
		for c := 0; c < 500; c++ {
			for s := 0; s < cfg.Nodes(); s++ {
				if rng.Float64() < 0.25 {
					d := s
					for d == s {
						d = rng.Intn(cfg.Nodes())
					}
					net.NewPacket(NodeID(s), NodeID(d), 0, 0)
				}
			}
			net.Step()
		}
		_, _, _, ejected := net.Stats()
		if ejected == lastEjected {
			t.Fatalf("no forward progress during epoch %d: deadlock?", epoch)
		}
		lastEjected = ejected
	}
}

func TestLongPacketsSpanningManyRouters(t *testing.T) {
	// A packet longer than the total buffering along its path exercises
	// pipelined wormhole transmission across several routers at once.
	cfg := DefaultConfig()
	cfg.PacketSize = 64
	cfg.BufDepth = 2
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got *Packet
	net.OnArrive = func(p *Packet, cycle int64) { got = p }
	net.NewPacket(0, 24, 0, 0)
	stepN(net, 1000)
	if got == nil {
		t.Fatal("64-flit packet lost")
	}
	want := int64(4*(8+1) + 2 + 63)
	if latency := got.ArriveCycle - got.CreateCycle; latency != want {
		t.Errorf("latency %d, want %d", latency, want)
	}
}
