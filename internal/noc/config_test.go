package noc

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Width != 5 || cfg.Height != 5 {
		t.Errorf("mesh = %dx%d, want 5x5", cfg.Width, cfg.Height)
	}
	if cfg.VCs != 8 {
		t.Errorf("VCs = %d, want 8", cfg.VCs)
	}
	if cfg.BufDepth != 4 {
		t.Errorf("BufDepth = %d, want 4", cfg.BufDepth)
	}
	if cfg.PacketSize != 20 {
		t.Errorf("PacketSize = %d, want 20", cfg.PacketSize)
	}
	if cfg.Routing != RoutingXY {
		t.Errorf("Routing = %v, want xy", cfg.Routing)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default", func(c *Config) {}, false},
		{"min mesh 1x2", func(c *Config) { c.Width, c.Height = 1, 2 }, false},
		{"zero width", func(c *Config) { c.Width = 0 }, true},
		{"negative height", func(c *Config) { c.Height = -3 }, true},
		{"single node", func(c *Config) { c.Width, c.Height = 1, 1 }, true},
		{"zero VCs", func(c *Config) { c.VCs = 0 }, true},
		{"one VC ok", func(c *Config) { c.VCs = 1 }, false},
		{"zero buffers", func(c *Config) { c.BufDepth = 0 }, true},
		{"zero packet size", func(c *Config) { c.PacketSize = 0 }, true},
		{"single flit packets ok", func(c *Config) { c.PacketSize = 1 }, false},
		{"bad routing", func(c *Config) { c.Routing = Routing(42) }, true},
		{"yx routing ok", func(c *Config) { c.Routing = RoutingYX }, false},
		{"o1turn ok", func(c *Config) { c.Routing = RoutingO1TURN }, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() error = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestConfigValidateJoinsAllErrors(t *testing.T) {
	cfg := Config{Width: 0, Height: 0, VCs: 0, BufDepth: 0, PacketSize: 0, Routing: Routing(9)}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("expected error for fully invalid config")
	}
}

func TestCoordNodeRoundTrip(t *testing.T) {
	cfg := Config{Width: 7, Height: 3}
	for id := 0; id < 21; id++ {
		x, y := cfg.Coord(NodeID(id))
		if !cfg.InMesh(x, y) {
			t.Fatalf("Coord(%d) = (%d,%d) outside mesh", id, x, y)
		}
		if got := cfg.Node(x, y); got != NodeID(id) {
			t.Fatalf("Node(Coord(%d)) = %d", id, got)
		}
	}
}

func TestCoordNodeRoundTripQuick(t *testing.T) {
	f := func(w, h uint8, raw uint16) bool {
		cfg := Config{Width: int(w%10) + 1, Height: int(h%10) + 1}
		id := NodeID(int(raw) % cfg.Nodes())
		x, y := cfg.Coord(id)
		return cfg.InMesh(x, y) && cfg.Node(x, y) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInMesh(t *testing.T) {
	cfg := Config{Width: 4, Height: 5}
	tests := []struct {
		x, y int
		want bool
	}{
		{0, 0, true}, {3, 4, true}, {4, 4, false}, {3, 5, false},
		{-1, 0, false}, {0, -1, false}, {2, 2, true},
	}
	for _, tc := range tests {
		if got := cfg.InMesh(tc.x, tc.y); got != tc.want {
			t.Errorf("InMesh(%d,%d) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestDistance(t *testing.T) {
	cfg := Config{Width: 5, Height: 5}
	tests := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 24, 8},  // (0,0) -> (4,4)
		{0, 4, 4},   // (0,0) -> (4,0)
		{0, 20, 4},  // (0,0) -> (0,4)
		{12, 12, 0}, // centre
		{2, 22, 4},  // (2,0) -> (2,4)
	}
	for _, tc := range tests {
		if got := cfg.Distance(tc.a, tc.b); got != tc.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := cfg.Distance(tc.b, tc.a); got != tc.want {
			t.Errorf("Distance(%d,%d) = %d, want %d (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestDistanceTriangleInequalityQuick(t *testing.T) {
	cfg := Config{Width: 6, Height: 6}
	f := func(a, b, c uint16) bool {
		n := NodeID(int(a) % cfg.Nodes())
		m := NodeID(int(b) % cfg.Nodes())
		k := NodeID(int(c) % cfg.Nodes())
		return cfg.Distance(n, m)+cfg.Distance(m, k) >= cfg.Distance(n, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRouting(t *testing.T) {
	for _, name := range []string{"xy", "yx", "o1turn"} {
		r, err := ParseRouting(name)
		if err != nil {
			t.Fatalf("ParseRouting(%q): %v", name, err)
		}
		if r.String() != name {
			t.Errorf("round trip %q -> %v", name, r)
		}
	}
	if _, err := ParseRouting("west-first"); err == nil {
		t.Error("ParseRouting accepted unknown algorithm")
	}
}

func TestRoutingString(t *testing.T) {
	if got := Routing(77).String(); got != "routing(77)" {
		t.Errorf("Routing(77).String() = %q", got)
	}
}

func TestNodes(t *testing.T) {
	tests := []struct {
		w, h, want int
	}{{4, 4, 16}, {5, 5, 25}, {8, 8, 64}, {1, 2, 2}}
	for _, tc := range tests {
		cfg := Config{Width: tc.w, Height: tc.h}
		if got := cfg.Nodes(); got != tc.want {
			t.Errorf("%dx%d Nodes() = %d, want %d", tc.w, tc.h, got, tc.want)
		}
	}
}
