package noc

import (
	"strings"
	"testing"
)

func TestParseLinkRoundTrip(t *testing.T) {
	for _, s := range []string{"0>1", "7>6", "12>17"} {
		l, err := ParseLink(s)
		if err != nil {
			t.Fatalf("ParseLink(%q): %v", s, err)
		}
		if l.String() != s {
			t.Errorf("ParseLink(%q).String() = %q", s, l.String())
		}
	}
	for _, s := range []string{"", "3", "a>b", "1>", ">2", "1-2"} {
		if _, err := ParseLink(s); err == nil {
			t.Errorf("ParseLink(%q) accepted a malformed link", s)
		}
	}
}

func TestValidateFaultsRejects(t *testing.T) {
	cfg := DefaultConfig()
	o1 := cfg
	o1.Routing = RoutingO1TURN
	cases := map[string]struct {
		cfg    Config
		faults []Link
	}{
		"outside mesh": {cfg, []Link{{From: 0, To: 99}}},
		"not adjacent": {cfg, []Link{{From: 0, To: 7}}},
		"self link":    {cfg, []Link{{From: 3, To: 3}}},
		"duplicate":    {cfg, []Link{{From: 0, To: 1}, {From: 0, To: 1}}},
		"o1turn":       {o1, []Link{{From: 0, To: 1}}},
	}
	for name, c := range cases {
		if err := ValidateFaults(c.cfg, c.faults); err == nil {
			t.Errorf("%s: ValidateFaults accepted %v", name, c.faults)
		}
	}
	if err := ValidateFaults(cfg, nil); err != nil {
		t.Errorf("empty fault set rejected: %v", err)
	}
	if err := ValidateFaults(cfg, []Link{{From: 0, To: 1}, {From: 1, To: 0}}); err != nil {
		t.Errorf("valid fault set rejected: %v", err)
	}
}

// TestRouteTableAvoidsFaults follows the table from every source to every
// destination and requires a minimal path that never crosses a dead
// channel, and that pairs whose dimension-ordered path survives keep
// exactly that path.
func TestRouteTableAvoidsFaults(t *testing.T) {
	cfg := DefaultConfig()
	faults := []Link{{From: 6, To: 7}, {From: 7, To: 6}, {From: 11, To: 12}}
	net, err := NewNetworkWithFaults(cfg, faults)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	dead := map[Link]bool{}
	for _, f := range faults {
		dead[f] = true
	}
	nodes := cfg.Nodes()
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			// Walk the table, counting hops and recording the path.
			cur := NodeID(src)
			var path []NodeID
			usesDead := false
			for hops := 0; cur != NodeID(dst); hops++ {
				if hops > nodes {
					t.Fatalf("route %d->%d does not converge", src, dst)
				}
				p := Port(net.routeTable[int(cur)*nodes+dst])
				dx, dy := p.delta()
				cx, cy := cfg.Coord(cur)
				if !cfg.InMesh(cx+dx, cy+dy) {
					t.Fatalf("route %d->%d walks off-mesh at node %d port %v", src, dst, cur, p)
				}
				next := cfg.Node(cx+dx, cy+dy)
				if dead[Link{From: cur, To: next}] {
					usesDead = true
				}
				cur = next
				path = append(path, cur)
			}
			if usesDead {
				t.Errorf("route %d->%d crosses a faulted channel: %v", src, dst, path)
			}
			// Minimality on the faulted topology is at least the Manhattan
			// distance; routes detouring around faults may be longer, but a
			// fault-free DOR pair must keep its exact DOR path.
			dorOK := true
			c := NodeID(src)
			var dorPath []NodeID
			for c != NodeID(dst) {
				p := routeDOR(&cfg, c, NodeID(dst), false)
				dx, dy := p.delta()
				cx, cy := cfg.Coord(c)
				n := cfg.Node(cx+dx, cy+dy)
				if dead[Link{From: c, To: n}] {
					dorOK = false
					break
				}
				c = n
				dorPath = append(dorPath, c)
			}
			if dorOK {
				if len(path) != len(dorPath) {
					t.Errorf("route %d->%d: table path %v, want DOR path %v", src, dst, path, dorPath)
					continue
				}
				for i := range path {
					if path[i] != dorPath[i] {
						t.Errorf("route %d->%d diverges from surviving DOR path: %v vs %v", src, dst, path, dorPath)
						break
					}
				}
			}
		}
	}
}

// TestPortTowardsMatchesDelta guards the port/delta convention the walk
// above relies on: an output port p leads to the router displaced by
// p.delta(), and portTowards inverts that mapping.
func TestPortTowardsMatchesDelta(t *testing.T) {
	cfg := DefaultConfig()
	for p := PortNorth; p <= PortWest; p++ {
		from := cfg.Node(2, 2)
		dx, dy := p.delta()
		to := cfg.Node(2+dx, 2+dy)
		if got := portTowards(&cfg, from, to); got != p {
			t.Errorf("portTowards(%d, %d) = %v, want %v", from, to, got, p)
		}
	}
}

func TestFaultsDisconnectError(t *testing.T) {
	cfg := DefaultConfig()
	// Cutting both outgoing channels of corner node 0 strands it.
	_, err := NewNetworkWithFaults(cfg, []Link{{From: 0, To: 1}, {From: 0, To: 5}})
	if err == nil || !strings.Contains(err.Error(), "disconnect") {
		t.Fatalf("disconnected fault set: err = %v", err)
	}
}

// TestFaultedTrafficDrains runs the standard traffic script over a faulted
// mesh. The masked channels panic if anything crosses them, so a clean
// drain plus invariant check proves the table is respected end to end.
func TestFaultedTrafficDrains(t *testing.T) {
	cfg := DefaultConfig()
	net, err := NewNetworkWithFaults(cfg, []Link{{From: 6, To: 7}, {From: 7, To: 6}, {From: 16, To: 17}})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	stepTraffic(net, 1500, 4)
	if !net.Drain(20_000) {
		t.Fatal("faulted traffic did not drain")
	}
	net.CheckInvariants()
	if got := net.Faults(); len(got) != 3 {
		t.Errorf("Faults() returned %d links, want 3", len(got))
	}
}

// TestFaultedMatchesAcrossEngines locks the determinism contract for the
// heterogeneous extensions: the faulted route table produces identical
// arrivals under the naive loop, the stage-major fast path and banded
// step workers.
func TestFaultedMatchesAcrossEngines(t *testing.T) {
	cfg := DefaultConfig()
	faults := []Link{{From: 6, To: 7}, {From: 11, To: 12}}
	run := func(skip bool, workers int) ([][2]int64, [4]int64) {
		net, err := NewNetworkWithFaults(cfg, faults)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		net.SetSkipAhead(skip)
		if workers > 1 {
			net.SetStepWorkers(workers)
		}
		var arr [][2]int64
		net.OnArrive = func(p *Packet, cycle int64) {
			arr = append(arr, [2]int64{p.ID, cycle})
		}
		stepTraffic(net, 600, 3)
		if !net.Drain(20_000) {
			t.Fatal("traffic did not drain")
		}
		net.CheckInvariants()
		q, a, i, e := net.Stats()
		return arr, [4]int64{q, a, i, e}
	}
	refArr, refStats := run(true, 1)
	for _, v := range []struct {
		name    string
		skip    bool
		workers int
	}{{"naive", false, 1}, {"workers3", true, 3}, {"workers8", true, 8}} {
		arr, stats := run(v.skip, v.workers)
		if stats != refStats {
			t.Errorf("%s: counters diverge: %v vs %v", v.name, stats, refStats)
		}
		if len(arr) != len(refArr) {
			t.Fatalf("%s: arrival counts diverge: %d vs %d", v.name, len(arr), len(refArr))
		}
		for i := range arr {
			if arr[i] != refArr[i] {
				t.Fatalf("%s: arrival %d diverges: %v vs %v", v.name, i, arr[i], refArr[i])
			}
		}
	}
}
