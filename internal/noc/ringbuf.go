package noc

// flitRing is a fixed-capacity FIFO of flits used as a virtual-channel
// buffer. It never allocates after construction.
type flitRing struct {
	items []*Flit
	head  int
	count int
}

func newFlitRing(capacity int) flitRing {
	return flitRing{items: make([]*Flit, capacity)}
}

// Len returns the number of buffered flits.
func (r *flitRing) Len() int { return r.count }

// Cap returns the buffer capacity in flits.
func (r *flitRing) Cap() int { return len(r.items) }

// Full reports whether the buffer has no free slots.
func (r *flitRing) Full() bool { return r.count == len(r.items) }

// Push appends a flit; it panics on overflow, which indicates a flow
// control bug (credits must prevent overflow).
func (r *flitRing) Push(f *Flit) {
	if r.Full() {
		panic("noc: VC buffer overflow (flow-control violation)")
	}
	i := r.head + r.count
	if i >= len(r.items) {
		i -= len(r.items)
	}
	r.items[i] = f
	r.count++
}

// Front returns the oldest flit without removing it, or nil if empty.
func (r *flitRing) Front() *Flit {
	if r.count == 0 {
		return nil
	}
	return r.items[r.head]
}

// Pop removes and returns the oldest flit; it panics if the buffer is empty.
func (r *flitRing) Pop() *Flit {
	if r.count == 0 {
		panic("noc: pop from empty VC buffer")
	}
	f := r.items[r.head]
	r.items[r.head] = nil
	r.head++
	if r.head >= len(r.items) {
		r.head = 0
	}
	r.count--
	return f
}

// packetQueue is an unbounded FIFO of packets backing a node's source
// queue. It uses a slice with amortized compaction.
type packetQueue struct {
	items []*Packet
	head  int
}

// Len returns the number of queued packets.
func (q *packetQueue) Len() int { return len(q.items) - q.head }

// Push appends a packet.
func (q *packetQueue) Push(p *Packet) { q.items = append(q.items, p) }

// Front returns the oldest packet, or nil if the queue is empty.
func (q *packetQueue) Front() *Packet {
	if q.Len() == 0 {
		return nil
	}
	return q.items[q.head]
}

// Pop removes and returns the oldest packet; nil if empty.
func (q *packetQueue) Pop() *Packet {
	if q.Len() == 0 {
		return nil
	}
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}
