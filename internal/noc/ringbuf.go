package noc

// packetQueue is an unbounded FIFO of packets backing a node's source
// queue. It uses a slice with amortized compaction.
//
// (Flit buffering needs no counterpart: the per-VC flit rings live inline
// in the network's flat bufs array, managed by the bufHead/bufLen fields
// of each vcState record.)
type packetQueue struct {
	items []*Packet
	head  int
}

// Len returns the number of queued packets.
func (q *packetQueue) Len() int { return len(q.items) - q.head }

// Push appends a packet.
func (q *packetQueue) Push(p *Packet) { q.items = append(q.items, p) }

// Front returns the oldest packet, or nil if the queue is empty.
func (q *packetQueue) Front() *Packet {
	if q.Len() == 0 {
		return nil
	}
	return q.items[q.head]
}

// Pop removes and returns the oldest packet; nil if empty.
func (q *packetQueue) Pop() *Packet {
	if q.Len() == 0 {
		return nil
	}
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}
