package noc

import (
	"errors"
	"fmt"
)

// Routing selects the deterministic routing algorithm used by the routers.
type Routing int

const (
	// RoutingXY is dimension-ordered routing, X first (the paper's choice).
	RoutingXY Routing = iota
	// RoutingYX is dimension-ordered routing, Y first.
	RoutingYX
	// RoutingO1TURN picks XY or YX uniformly at random per packet; it is
	// provided as an ablation beyond the paper.
	RoutingO1TURN
)

var routingNames = [...]string{"xy", "yx", "o1turn"}

// String returns the lower-case name of the routing algorithm.
func (r Routing) String() string {
	if r < 0 || int(r) >= len(routingNames) {
		return fmt.Sprintf("routing(%d)", int(r))
	}
	return routingNames[r]
}

// ParseRouting converts a name ("xy", "yx", "o1turn") to a Routing value.
func ParseRouting(s string) (Routing, error) {
	for i, n := range routingNames {
		if s == n {
			return Routing(i), nil
		}
	}
	return 0, fmt.Errorf("noc: unknown routing algorithm %q", s)
}

// Config describes the network fabric. The zero value is not usable; start
// from DefaultConfig and override fields as needed.
type Config struct {
	// Width and Height are the mesh dimensions in routers.
	Width, Height int
	// VCs is the number of virtual channels per input port.
	VCs int
	// BufDepth is the number of flit slots per virtual-channel buffer.
	BufDepth int
	// PacketSize is the packet length in flits.
	PacketSize int
	// Routing selects the routing algorithm.
	Routing Routing
}

// DefaultConfig returns the paper's baseline configuration: a 5x5 mesh with
// dimension-ordered (XY) routing, 8 virtual channels, 4 flit buffers per
// channel and 20-flit packets (Sec. III, Fig. 2).
func DefaultConfig() Config {
	return Config{
		Width:      5,
		Height:     5,
		VCs:        8,
		BufDepth:   4,
		PacketSize: 20,
		Routing:    RoutingXY,
	}
}

// Nodes returns the number of nodes in the mesh.
func (c Config) Nodes() int { return c.Width * c.Height }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	var errs []error
	if c.Width < 1 || c.Height < 1 {
		errs = append(errs, fmt.Errorf("mesh dimensions must be at least 1x1, got %dx%d", c.Width, c.Height))
	}
	if c.Width*c.Height < 2 {
		errs = append(errs, errors.New("mesh must contain at least 2 nodes"))
	}
	if c.Width*c.Height > 16384 {
		// The staged link-event word packs node ids into 14 bits.
		errs = append(errs, fmt.Errorf("at most 16384 nodes are supported, got %dx%d", c.Width, c.Height))
	}
	if c.VCs < 1 {
		errs = append(errs, fmt.Errorf("need at least 1 virtual channel, got %d", c.VCs))
	}
	if c.VCs > 64 {
		// Router allocators track per-port VC occupancy in 64-bit masks.
		errs = append(errs, fmt.Errorf("at most 64 virtual channels are supported, got %d", c.VCs))
	}
	if c.BufDepth < 1 {
		errs = append(errs, fmt.Errorf("need at least 1 buffer slot per VC, got %d", c.BufDepth))
	}
	if c.BufDepth > 255 {
		// The packed per-VC pipeline record stores ring head/length as bytes.
		errs = append(errs, fmt.Errorf("at most 255 buffer slots per VC are supported, got %d", c.BufDepth))
	}
	if c.PacketSize < 1 {
		errs = append(errs, fmt.Errorf("packet size must be at least 1 flit, got %d", c.PacketSize))
	}
	if c.Routing < RoutingXY || c.Routing > RoutingO1TURN {
		errs = append(errs, fmt.Errorf("unknown routing algorithm %d", c.Routing))
	}
	return errors.Join(errs...)
}

// Coord returns the (x, y) mesh coordinates of node id.
func (c Config) Coord(id NodeID) (x, y int) {
	return int(id) % c.Width, int(id) / c.Width
}

// Node returns the node id at mesh coordinates (x, y).
func (c Config) Node(x, y int) NodeID {
	return NodeID(y*c.Width + x)
}

// InMesh reports whether (x, y) lies inside the mesh.
func (c Config) InMesh(x, y int) bool {
	return x >= 0 && x < c.Width && y >= 0 && y < c.Height
}

// Distance returns the Manhattan (hop) distance between two nodes.
func (c Config) Distance(a, b NodeID) int {
	ax, ay := c.Coord(a)
	bx, by := c.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
