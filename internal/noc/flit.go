package noc

// NodeID identifies a node (router plus attached processing element) in the
// mesh. Nodes are numbered row-major: id = y*Width + x.
type NodeID int

// Packet is a multi-flit message. A packet of Size flits is serialized into
// one head flit, Size-2 body flits and one tail flit (a single-flit packet
// has one flit that is both head and tail).
//
// The timestamps support the paper's two delay metrics: CreateCycle is in
// network clock cycles (latency "in cycles", Fig. 2a) while CreateTime is in
// nanoseconds of simulated real time (delay "in ns", Fig. 2b), accumulated
// by the engine at the then-current network frequency.
type Packet struct {
	ID   int64
	Src  NodeID
	Dst  NodeID
	Size int

	// CreateCycle is the network cycle at which the packet was generated
	// and entered the (unbounded) source queue.
	CreateCycle int64
	// CreateTime is the simulated real time, in nanoseconds, at generation.
	CreateTime float64
	// InjectCycle is the network cycle at which the head flit left the
	// source queue and entered the router's local input port.
	InjectCycle int64
	// ArriveCycle is the network cycle at which the tail flit was ejected.
	ArriveCycle int64

	// DimOrder selects the dimension traversal order for routing:
	// 0 routes X first (XY), 1 routes Y first (YX). It is chosen at packet
	// creation (per-packet random for O1TURN).
	DimOrder uint8

	// Hops counts router-to-router link traversals, filled in during
	// transit; useful for statistics and tests.
	Hops int
}

// Flit is the flow-control unit. Flits belong to exactly one packet and are
// delivered in order within a virtual channel.
//
// Flits are plain 16-byte values, stored by value in the VC buffers and in
// the staged link events: copying one is cheaper than chasing a pointer to
// it, and value storage is what lets the stage-major engine keep all flit
// state in flat contiguous arrays with no free lists (and no shared pool
// for the banded step workers to race on).
type Flit struct {
	Packet *Packet
	Seq    int32 // index of this flit within the packet, 0-based
	// VC is the virtual channel the flit occupies in the input buffer it
	// is currently stored in (or is in flight towards). Config.Validate
	// caps VCs at 64, so int8 always holds it.
	VC   int8
	Head bool // first flit of the packet
	Tail bool // last flit of the packet
}
