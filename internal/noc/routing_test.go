package noc

import (
	"testing"
	"testing/quick"
)

func TestRouteDORXY(t *testing.T) {
	cfg := Config{Width: 5, Height: 5}
	tests := []struct {
		name     string
		cur, dst NodeID
		want     Port
	}{
		{"east first", 0, 24, PortEast},          // (0,0)->(4,4): X first
		{"west first", 4, 20, PortWest},          // (4,0)->(0,4)
		{"south when aligned", 2, 22, PortSouth}, // (2,0)->(2,4)
		{"north when aligned", 22, 2, PortNorth},
		{"local at destination", 12, 12, PortLocal},
		{"east one", 0, 1, PortEast},
		{"west one", 1, 0, PortWest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := routeDOR(&cfg, tc.cur, tc.dst, false); got != tc.want {
				t.Errorf("routeDOR(%d->%d, XY) = %v, want %v", tc.cur, tc.dst, got, tc.want)
			}
		})
	}
}

func TestRouteDORYX(t *testing.T) {
	cfg := Config{Width: 5, Height: 5}
	tests := []struct {
		cur, dst NodeID
		want     Port
	}{
		{0, 24, PortSouth}, // YX goes south first
		{24, 0, PortNorth},
		{0, 4, PortEast}, // aligned in Y: X move
		{12, 12, PortLocal},
	}
	for _, tc := range tests {
		if got := routeDOR(&cfg, tc.cur, tc.dst, true); got != tc.want {
			t.Errorf("routeDOR(%d->%d, YX) = %v, want %v", tc.cur, tc.dst, got, tc.want)
		}
	}
}

func TestRoutePortHonoursConfig(t *testing.T) {
	cfgXY := Config{Width: 5, Height: 5, Routing: RoutingXY}
	cfgYX := Config{Width: 5, Height: 5, Routing: RoutingYX}
	p := &Packet{Src: 0, Dst: 24}
	if got := RoutePort(&cfgXY, 0, p); got != PortEast {
		t.Errorf("XY RoutePort = %v, want east", got)
	}
	if got := RoutePort(&cfgYX, 0, p); got != PortSouth {
		t.Errorf("YX RoutePort = %v, want south", got)
	}
}

func TestRoutePortO1TURNUsesDimOrder(t *testing.T) {
	cfg := Config{Width: 5, Height: 5, Routing: RoutingO1TURN}
	pXY := &Packet{Src: 0, Dst: 24, DimOrder: 0}
	pYX := &Packet{Src: 0, Dst: 24, DimOrder: 1}
	if got := RoutePort(&cfg, 0, pXY); got != PortEast {
		t.Errorf("O1TURN DimOrder=0 = %v, want east", got)
	}
	if got := RoutePort(&cfg, 0, pYX); got != PortSouth {
		t.Errorf("O1TURN DimOrder=1 = %v, want south", got)
	}
}

func TestRouteTraceLengthIsDistance(t *testing.T) {
	cfg := Config{Width: 6, Height: 4}
	for src := 0; src < cfg.Nodes(); src++ {
		for dst := 0; dst < cfg.Nodes(); dst++ {
			for _, yFirst := range []bool{false, true} {
				trace := RouteTrace(&cfg, NodeID(src), NodeID(dst), yFirst)
				wantLen := cfg.Distance(NodeID(src), NodeID(dst)) + 1
				if len(trace) != wantLen {
					t.Fatalf("trace %d->%d yFirst=%v: len=%d want %d",
						src, dst, yFirst, len(trace), wantLen)
				}
				if trace[0] != NodeID(src) || trace[len(trace)-1] != NodeID(dst) {
					t.Fatalf("trace endpoints wrong: %v", trace)
				}
			}
		}
	}
}

func TestRouteTraceMonotoneProgress(t *testing.T) {
	// Every step of a dimension-ordered route strictly decreases the
	// Manhattan distance to the destination (minimal routing).
	cfg := Config{Width: 8, Height: 8}
	f := func(a, b uint16, yFirst bool) bool {
		src := NodeID(int(a) % cfg.Nodes())
		dst := NodeID(int(b) % cfg.Nodes())
		trace := RouteTrace(&cfg, src, dst, yFirst)
		for i := 1; i < len(trace); i++ {
			if cfg.Distance(trace[i], dst) != cfg.Distance(trace[i-1], dst)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXYTraceTurnsAtMostOnce(t *testing.T) {
	// Dimension-ordered XY routes consist of a horizontal segment followed
	// by a vertical segment: once the route moves vertically it never
	// moves horizontally again.
	cfg := Config{Width: 7, Height: 7}
	for src := 0; src < cfg.Nodes(); src += 3 {
		for dst := 0; dst < cfg.Nodes(); dst += 2 {
			trace := RouteTrace(&cfg, NodeID(src), NodeID(dst), false)
			vertical := false
			for i := 1; i < len(trace); i++ {
				x0, _ := cfg.Coord(trace[i-1])
				x1, _ := cfg.Coord(trace[i])
				if x0 != x1 {
					if vertical {
						t.Fatalf("XY route %d->%d moved horizontally after turning: %v", src, dst, trace)
					}
				} else {
					vertical = true
				}
			}
		}
	}
}

func TestPathLength(t *testing.T) {
	cfg := Config{Width: 5, Height: 5}
	if got := PathLength(&cfg, 0, 24); got != 8 {
		t.Errorf("PathLength(0,24) = %d, want 8", got)
	}
	if got := PathLength(&cfg, 7, 7); got != 0 {
		t.Errorf("PathLength(7,7) = %d, want 0", got)
	}
}
