package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags registers the -cpuprofile and -memprofile flags shared by
// the simulation-running commands. Pass the parsed values to
// StartProfiles after flag.Parse.
func ProfileFlags() (cpu, mem *string) {
	cpu = flag.String("cpuprofile", "", "write a CPU profile to this file")
	mem = flag.String("memprofile", "", "write a heap profile to this file on exit")
	return cpu, mem
}

// StartProfiles starts CPU profiling into cpuFile (when non-empty) and
// returns a stop function that ends the CPU profile and writes the heap
// profile to memFile (when non-empty). Callers must run stop before
// exiting — including on the error paths, so a failed run still yields
// its profile; stop is safe to call more than once. Empty file names
// disable the corresponding profile, so the helper can be wired
// unconditionally.
func StartProfiles(cpuFile, memFile string) (stop func() error, err error) {
	var cpuOut *os.File
	if cpuFile != "" {
		cpuOut, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memFile != "" {
			out, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			defer out.Close()
			// An explicit GC makes the live-heap numbers reflect reachable
			// memory, not collection timing.
			runtime.GC()
			if err := pprof.WriteHeapProfile(out); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
