package cli

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// TestSignalContextSIGTERM pins the daemon shutdown path: SIGTERM — the
// fleet supervisor's stop signal, not just Ctrl-C's SIGINT — cancels the
// context, which is what lets nocsimd quiesce and flush its journals
// instead of dying mid-write.
func TestSignalContextSIGTERM(t *testing.T) {
	ctx, stop := SignalContext()
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the signal context")
	}
}
