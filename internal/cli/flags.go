package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
)

// WorkersFlag registers the -workers flag shared by every command: a
// positive concurrency bound defaulting to GOMAXPROCS. Validate the
// parsed value with CheckWorkers after flag.Parse.
func WorkersFlag(usage string) *int {
	return flag.Int("workers", runtime.GOMAXPROCS(0), usage)
}

// CheckWorkers rejects a non-positive -workers value with the shared
// error wording (results never depend on the value — only wall clock —
// so the only invalid inputs are the meaningless ones).
func CheckWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("-workers must be positive (got %d); use 1 for serial", n)
	}
	return nil
}

// StepWorkersFlag registers the -step-workers flag shared by the
// simulation-running commands: the number of engine threads stepping
// each simulation's network. Results are bit-identical for every value;
// each run charges step-workers slots of the process-wide leaf budget,
// so -workers × -step-workers in-flight threads never exceed the
// available cores. Validate with CheckStepWorkers after flag.Parse.
func StepWorkersFlag() *int {
	return flag.Int("step-workers", 1, "engine threads per simulation (bit-identical results; each run charges this many leaf-budget slots)")
}

// CheckStepWorkers rejects a non-positive -step-workers value with the
// shared error wording.
func CheckStepWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("-step-workers must be positive (got %d); use 1 for serial", n)
	}
	return nil
}

// AuthTokenFlag registers the -auth-token flag shared by the queue
// commands (coordinator, workers, -coordinator clients). Read the
// parsed value with AuthToken, which falls back to $NOCSIM_TOKEN — the
// env route keeps the secret out of process listings and shell history.
// The flag's registered default stays empty on purpose: baking the env
// value in would print the secret in -h output and in the usage text of
// every flag-parse error.
func AuthTokenFlag(usage string) *string {
	return flag.String("auth-token", "", usage+" (default $NOCSIM_TOKEN)")
}

// RefineFlags registers the adaptive-sweep flags shared by figures and
// report: -adaptive turns on the two-phase planner (coarse pass, refine
// where the curves bend, merged render) and -refine-budget caps how many
// extra simulation points the refinement pass may spend. Validate the
// parsed combination with CheckRefine after flag.Parse.
func RefineFlags() (adaptive *bool, budget *int) {
	adaptive = flag.Bool("adaptive", false, "two-phase adaptive sweep: coarse pass, then refine where the curves bend")
	budget = flag.Int("refine-budget", 16, "with -adaptive: max extra simulation points the refinement pass may add")
	return adaptive, budget
}

// FlagWasSet reports whether the named flag was passed explicitly on the
// command line (flag.Visit only walks set flags). Call after flag.Parse.
func FlagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// CheckRefine rejects meaningless adaptive flag combinations with the
// shared wording. persistent says whether the run has somewhere durable
// to put the coarse pass and its refinement (-manifest or -coordinator);
// without one the refinement manifest would be computed and thrown away,
// unresumable and invisible to the results store.
func CheckRefine(adaptive bool, budget int, budgetSet, persistent bool) error {
	if !adaptive {
		if budgetSet {
			return fmt.Errorf("-refine-budget needs -adaptive (the budget only bounds the refinement pass)")
		}
		return nil
	}
	if budget <= 0 {
		return fmt.Errorf("-refine-budget must be positive with -adaptive (got %d)", budget)
	}
	if !persistent {
		return fmt.Errorf("-adaptive needs a journal for the coarse pass: pass -manifest DIR or -coordinator URL")
	}
	return nil
}

// AuthToken resolves the parsed -auth-token value after flag.Parse: the
// flag when set, else $NOCSIM_TOKEN. An explicitly passed
// -auth-token "" disables auth even with the env var exported — the
// documented "empty = open" escape hatch — which is why the env
// fallback only applies when the flag was not given at all.
func AuthToken(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "auth-token" {
			explicit = true
		}
	})
	if explicit {
		return ""
	}
	return os.Getenv("NOCSIM_TOKEN")
}
