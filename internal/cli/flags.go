package cli

import (
	"flag"
	"fmt"
	"runtime"
)

// WorkersFlag registers the -workers flag shared by every command: a
// positive concurrency bound defaulting to GOMAXPROCS. Validate the
// parsed value with CheckWorkers after flag.Parse.
func WorkersFlag(usage string) *int {
	return flag.Int("workers", runtime.GOMAXPROCS(0), usage)
}

// CheckWorkers rejects a non-positive -workers value with the shared
// error wording (results never depend on the value — only wall clock —
// so the only invalid inputs are the meaningless ones).
func CheckWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("-workers must be positive (got %d); use 1 for serial", n)
	}
	return nil
}
